# WhoPay build/test entry points. Everything is plain `go` underneath;
# these targets just bundle the flags the repo's CI and the chaos suite
# expect.

GO ?= go

# Optional: make chaos CHAOS_SEED=42 replays one failing schedule.
CHAOS_SEED ?=
# Optional: make crash-suite CRASH_SEED=42 pins the crash sweep's sampling
# seed (only matters once journals outgrow the exhaustive-sweep cap).
CRASH_SEED ?=

.PHONY: all vet build test race chaos crash-suite dht-suite bench bench-concurrent bench-wal bench-obs bench-wire bench-deposit bench-dht fuzz-wire load-smoke load-failover load-dht

all: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Full suite under the race detector — the locking discipline is part of
# the protocol's correctness story, so plain `go test` is not enough.
test: vet build
	$(GO) test -race ./...

race:
	$(GO) test -race ./internal/bus/... ./internal/core/... ./internal/obs/ ./internal/federation/

# Fault-injection smoke: the chaos lifecycles, retry-enabled chaos, and the
# seed-reproducibility check. WHOPAY_CHAOS_SEED is honored when CHAOS_SEED
# is set.
chaos:
	WHOPAY_CHAOS_SEED=$(CHAOS_SEED) $(GO) test -race -count=1 -v \
		-run 'TestChaos' ./internal/core/

# Crash-injection suite: the WAL's own unit tests, byte-level crash sweeps
# for broker and peer (every byte boundary of the journal while it fits the
# exhaustive cap), corrupt-tail recovery, the DHT restart/epoch-fence
# tests, and the gob round-trip net. A failing sweep budget prints the
# WHOPAY_CRASH_BUDGET=<n> WHOPAY_CRASH_SEED=<n> pair that replays it.
crash-suite:
	$(GO) test -race -count=1 ./internal/wal/...
	WHOPAY_CRASH_SEED=$(CRASH_SEED) $(GO) test -race -count=1 \
		-run 'Crash|CorruptTail|GobRoundTrip|WALBatch' ./internal/core/
	$(GO) test -race -count=1 -run 'Restart|Epoch' ./internal/dht/

# Replication suite for the double-spend DHT (DESIGN.md §14): the replica
# package units (quorum math, digests, the lease cache), the quorum
# write/read, read-repair, anti-entropy, and sub-failover tests, the
# seeded node-kill property test, and the core-level chaos extension that
# crash-stops a replica mid-transfer-storm. WHOPAY_CHAOS_SEED is honored
# when CHAOS_SEED is set.
dht-suite:
	$(GO) test -race -count=1 ./internal/dht/...
	WHOPAY_CHAOS_SEED=$(CHAOS_SEED) $(GO) test -race -count=1 -v \
		-run 'TestChaosDHTNodeKill' ./internal/core/

# Open-loop load smoke: a small steady-profile run plus a micropay run
# (channels + broker deposit batching) against a live tcpbus broker
# (wal-off), strict-gated — any protocol error outside the scenario's
# expected set, any unclassified error, or any post-run ledger audit
# violation (conservation, no-double-spend) fails the target. The
# BENCH_load_<scenario>.json artifacts land under bench-out/.
load-smoke:
	$(GO) run ./cmd/whopay-bench -load -scenario steady \
		-actors 40 -rate 120/s -load-duration 20s -strict -out bench-out
	$(GO) run ./cmd/whopay-bench -load -scenario micropay \
		-actors 24 -rate 120/s -load-duration 15s -strict -out bench-out

# Federated failover under load: a 2-shard × 2-replica trust root with two
# shard leaders crashed mid-run. The strict gate plus the post-run audit
# prove a promoted follower lost no committed state; the artifact's
# "failover" section records time-to-recover per kill and the client
# redirect rate. Runs twice — wal-off and fsync-per-commit journals — so
# both BENCH_load_broker_failover[_wal].json land under bench-out/.
load-failover:
	$(GO) run ./cmd/whopay-bench -load -scenario broker-failover \
		-actors 24 -rate 120/s -load-duration 15s -strict -out bench-out
	$(GO) run ./cmd/whopay-bench -load -scenario broker-failover \
		-actors 24 -rate 120/s -load-duration 15s -wal -fsync always \
		-strict -out bench-out

# DHT replica crash under open-loop load: a 3/2/2-replicated journaled
# ring with one node crash-stopped mid-run and recovered by anti-entropy.
# The strict gate plus the audit require zero double-spends, zero stale
# quorum reads, and digest parity across the replica set before the run
# ends; BENCH_load_dht_node_kill.json lands under bench-out/.
load-dht:
	$(GO) run ./cmd/whopay-bench -load -scenario dht-node-kill \
		-actors 24 -rate 120/s -load-duration 15s -strict -out bench-out

bench:
	$(GO) test -bench=. -benchmem ./...

# WAL overhead on transfer and deposit, per fsync policy. Reference
# numbers live in results/wal_bench.txt.
bench-wal:
	$(GO) test ./internal/core/ -run '^$$' -bench WAL -benchtime 2000x -count 3

# Observability overhead on the transfer hop: registry off vs on, under
# the production ECDSA scheme and the null-crypto skeleton. Reference
# numbers live in results/obs_bench.txt.
bench-obs:
	$(GO) test ./internal/core/ -run '^$$' \
		-bench 'BenchmarkTransfer(WhoPay|Obs)' -benchtime 1s -count 3

# Wire codec vs gob, both as micro-benchmarks (one TransferRequest) and
# end to end (one transfer hop over TCP, framed vs legacy gob wire).
# Reference numbers live in results/wire_bench.txt.
bench-wire:
	$(GO) test ./internal/core/ -run '^$$' \
		-bench 'BenchmarkWireCodecTransferRequest|BenchmarkTransferWhoPayTCP' \
		-benchmem -benchtime 2s

# Short fuzz pass over the frame decoder and the registered-codec decoder —
# the corpus regression net plus a fixed wall-clock budget of new inputs.
# CI runs this; longer local runs just raise FUZZ_TIME.
FUZZ_TIME ?= 20s
fuzz-wire:
	$(GO) test ./internal/wire/ -run '^$$' -fuzz FuzzParseFrame -fuzztime $(FUZZ_TIME)
	$(GO) test ./internal/wire/ -run '^$$' -fuzz FuzzReadFrame -fuzztime $(FUZZ_TIME)
	$(GO) test ./internal/core/ -run '^$$' -fuzz FuzzWireDecodeRegistered -fuzztime $(FUZZ_TIME)
	$(GO) test ./internal/payword/ -run '^$$' -fuzz FuzzPaywordSpend -fuzztime $(FUZZ_TIME)

# Deposit-batch amortization: broker deposit throughput under an
# fsync-per-commit journal with 64 concurrent depositors, sequential
# (batch=1) vs batched (batch=64) — one signature fan-out and one journal
# append per group. Reference numbers live in results/deposit_bench.txt.
bench-deposit:
	$(GO) test ./internal/core/ -run '^$$' \
		-bench BenchmarkDepositBatch -benchtime 1000x -count 3

# Hot-coin read path, three ways: lease-cached quorum reads, uncached
# quorum reads, and the legacy single-copy read — plus quorum vs legacy
# put. Reference numbers live in results/dht_replica_bench.txt.
bench-dht:
	$(GO) test ./internal/dht/ -run '^$$' \
		-bench 'BenchmarkGetHot|BenchmarkQuorumPut|BenchmarkLegacyPut' \
		-benchtime 1s -count 3

# Goroutine-sweep benchmarks for the sharded state store: broker purchase
# and owner transfer throughput as client concurrency grows. Reference
# numbers live in results/concurrency_bench.txt.
bench-concurrent:
	$(GO) test ./internal/core/ -run '^$$' \
		-bench 'BenchmarkBrokerConcurrentPurchase|BenchmarkOwnerConcurrentTransfer' \
		-cpu 1,2,4,8 -benchtime 2s
