# WhoPay build/test entry points. Everything is plain `go` underneath;
# these targets just bundle the flags the repo's CI and the chaos suite
# expect.

GO ?= go

# Optional: make chaos CHAOS_SEED=42 replays one failing schedule.
CHAOS_SEED ?=

.PHONY: all vet build test race chaos bench bench-concurrent

all: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Full suite under the race detector — the locking discipline is part of
# the protocol's correctness story, so plain `go test` is not enough.
test: vet build
	$(GO) test -race ./...

race:
	$(GO) test -race ./internal/bus/... ./internal/core/...

# Fault-injection smoke: the chaos lifecycles, retry-enabled chaos, and the
# seed-reproducibility check. WHOPAY_CHAOS_SEED is honored when CHAOS_SEED
# is set.
chaos:
	WHOPAY_CHAOS_SEED=$(CHAOS_SEED) $(GO) test -race -count=1 -v \
		-run 'TestChaos' ./internal/core/

bench:
	$(GO) test -bench=. -benchmem ./...

# Goroutine-sweep benchmarks for the sharded state store: broker purchase
# and owner transfer throughput as client concurrency grows. Reference
# numbers live in results/concurrency_bench.txt.
bench-concurrent:
	$(GO) test ./internal/core/ -run '^$$' \
		-bench 'BenchmarkBrokerConcurrentPurchase|BenchmarkOwnerConcurrentTransfer' \
		-cpu 1,2,4,8 -benchtime 2s
