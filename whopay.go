// Package whopay is a complete implementation of WhoPay, the scalable and
// anonymous peer-to-peer payment system of Wei, Chen, Smith and Vo (UC
// Berkeley UCB/CSD-5-1386, ICDCS 2006), together with every substrate the
// paper relies on: group signatures with judge-side opening, Shamir key
// escrow, blind signatures, PayWord/lottery micropayment aggregation, a
// Chord-style access-controlled DHT for real-time double-spending
// detection, an i3-style indirection layer for owner-anonymous coins, the
// PPay and centralized-anonymous baselines, and the discrete-event
// simulator that regenerates the paper's entire evaluation.
//
// # Quick start
//
//	net := whopay.NewMemoryNetwork()
//	judge, _ := whopay.NewJudge(whopay.ECDSA())
//	dir := whopay.NewDirectory()
//	broker, _ := whopay.NewBroker(whopay.BrokerConfig{
//	        Network: net, Scheme: whopay.ECDSA(),
//	        Directory: dir, GroupPub: judge.GroupPublicKey(),
//	})
//	alice, _ := whopay.NewPeer(whopay.PeerConfig{
//	        ID: "alice", Network: net, Scheme: whopay.ECDSA(),
//	        Directory: dir, BrokerAddr: broker.Addr(),
//	        BrokerPub: broker.PublicKey(), Judge: judge,
//	})
//	// ... create bob, then:
//	id, _ := alice.Purchase(1, false)
//	_ = alice.IssueTo(bob.Addr(), id)
//
// Coins are public keys; holdership is a signed binding to a fresh one-time
// holder key, so payments are anonymous; group signatures keep them fair
// (the judge can open them under investigation); transfers are serviced by
// coin owners, not the broker, so the system scales.
//
// See the examples directory for runnable scenarios and cmd/whopay-sim for
// the paper's evaluation harness.
package whopay

import (
	"whopay/internal/bus"
	"whopay/internal/core"
	"whopay/internal/sig"
	"whopay/internal/wal"
)

// Core entities.
type (
	// Broker is WhoPay's central bank (mint, redemption, downtime
	// service, fraud adjudication).
	Broker = core.Broker
	// BrokerConfig configures a Broker.
	BrokerConfig = core.BrokerConfig
	// Peer is a WhoPay participant (owner, holder, payer, payee).
	Peer = core.Peer
	// PeerConfig configures a Peer.
	PeerConfig = core.PeerConfig
	// Judge is the fairness authority (group manager).
	Judge = core.Judge
	// Directory is the trusted identity/address registry.
	Directory = core.Directory
	// Shop is a coin shop (issuer-anonymity extension).
	Shop = core.Shop
	// FraudCase is a broker-recorded fraud investigation.
	FraudCase = core.FraudCase
	// FraudAlert is a peer-side double-spend alarm.
	FraudAlert = core.FraudAlert
	// Policy is a spending-method preference order.
	Policy = core.Policy
	// Method is one payment method.
	Method = core.Method
	// Op is a coarse-grained protocol operation.
	Op = core.Op
	// OpCounts tallies operations by type.
	OpCounts = core.OpCounts
	// SyncMode selects proactive or lazy owner synchronization.
	SyncMode = core.SyncMode
	// Scheme is a pluggable signature scheme.
	Scheme = sig.Scheme
	// Network is the message transport abstraction.
	Network = bus.Network
	// Address names an endpoint on a Network.
	Address = bus.Address
	// WALConfig configures an entity's write-ahead log; set it as
	// BrokerConfig/PeerConfig.Persistence (nil keeps the entity purely
	// in-memory). See DESIGN.md §10.
	WALConfig = wal.Config
	// FsyncPolicy selects when journal appends reach stable storage.
	FsyncPolicy = wal.Policy
	// ChannelOptions configures a micropayment channel opened with
	// Peer.OpenChannel: capacity (PayWord chain length), auto-settle
	// threshold, TTL, and optional lottery terms. See DESIGN.md §12.
	ChannelOptions = core.ChannelOptions
	// ChannelReceipt is the payer-visible outcome of one
	// Peer.ChannelPay: the vendor-reported unsettled balance and, on
	// lottery channels, whether this payment's ticket won.
	ChannelReceipt = core.ChannelReceipt
	// DepositBatchConfig enables the broker's deposit-batching stage;
	// set it as BrokerConfig.DepositBatch (nil keeps the exact
	// sequential deposit path). See DESIGN.md §12.
	DepositBatchConfig = core.DepositBatchConfig
)

// DefaultChannelCapacity is the chain length used when
// ChannelOptions.Capacity is zero.
const DefaultChannelCapacity = core.DefaultChannelCapacity

// Fsync policies for WALConfig.Policy.
const (
	FsyncNever    = wal.FsyncNever
	FsyncInterval = wal.FsyncInterval
	FsyncAlways   = wal.FsyncAlways
)

// Policies and sync modes (paper Section 6.1 / 5.2).
const (
	PolicyI        = core.PolicyI
	PolicyIIa      = core.PolicyIIa
	PolicyIIb      = core.PolicyIIb
	PolicyIII      = core.PolicyIII
	SyncProactive  = core.SyncProactive
	SyncLazy       = core.SyncLazy
	DefaultRenewal = core.DefaultRenewalPeriod
)

// Operation kinds (the paper's load-study vocabulary).
const (
	OpPurchase         = core.OpPurchase
	OpIssue            = core.OpIssue
	OpTransfer         = core.OpTransfer
	OpDeposit          = core.OpDeposit
	OpRenewal          = core.OpRenewal
	OpDowntimeTransfer = core.OpDowntimeTransfer
	OpDowntimeRenewal  = core.OpDowntimeRenewal
	OpSync             = core.OpSync
	OpCheck            = core.OpCheck
	OpLazySync         = core.OpLazySync
)

// NewBroker starts a broker.
func NewBroker(cfg BrokerConfig) (*Broker, error) { return core.NewBroker(cfg) }

// NewPeer starts a peer.
func NewPeer(cfg PeerConfig) (*Peer, error) { return core.NewPeer(cfg) }

// RecoverBroker rebuilds a broker from its write-ahead log (the config's
// Persistence must point at the dead broker's journal directory).
func RecoverBroker(cfg BrokerConfig) (*Broker, error) { return core.RecoverBroker(cfg) }

// RecoverPeer rebuilds a peer and its wallet from its write-ahead log.
func RecoverPeer(cfg PeerConfig) (*Peer, error) { return core.RecoverPeer(cfg) }

// NewJudge creates the fairness authority.
func NewJudge(scheme Scheme) (*Judge, error) { return core.NewJudge(scheme) }

// NewDirectory creates an identity registry.
func NewDirectory() *Directory { return core.NewDirectory() }

// NewShop upgrades a peer into a coin shop.
func NewShop(p *Peer, feePercent int) *Shop { return core.NewShop(p, feePercent) }

// NewMemoryNetwork creates the in-process transport (tests, simulations,
// single-process demos). For real deployments use the TCP transport in
// cmd/whopayd.
func NewMemoryNetwork() *bus.Memory { return bus.NewMemory() }

// ECDSA returns the production signature scheme (P-256, the paper's
// DSA-1024 stand-in).
func ECDSA() Scheme { return sig.ECDSA{} }

// Ed25519 returns the alternative high-throughput scheme.
func Ed25519() Scheme { return sig.Ed25519{} }
