package whopay

// Re-exports of the substrate packages a WhoPay deployment composes with:
// the DHT behind real-time double-spending detection, the indirection layer
// behind owner-anonymous coins, PayWord/lottery micropayment aggregation,
// group signatures, and the crypto utilities. Examples and downstream users
// reach everything through this facade.

import (
	"whopay/internal/blind"
	"whopay/internal/bus"
	"whopay/internal/dht"
	"whopay/internal/groupsig"
	"whopay/internal/indirect"
	"whopay/internal/layered"
	"whopay/internal/payword"
	"whopay/internal/shamir"
	"whopay/internal/sig"
)

// DHT substrate (paper Section 5.1).
type (
	// DHTCluster is the trusted public-binding-list infrastructure.
	DHTCluster = dht.Cluster
	// DHTClient reads/writes/subscribes to the public binding list.
	DHTClient = dht.Client
)

// NewDHTCluster starts n DHT nodes with the given replication factor;
// trusted keys (the broker's) may write to any slot.
func NewDHTCluster(network Network, scheme Scheme, n, replicas int, trusted ...sig.PublicKey) (*DHTCluster, error) {
	return dht.NewCluster(network, scheme, n, replicas, trusted...)
}

// Indirection substrate (paper Section 5.2, owner-anonymous coins).
type (
	// IndirectServer forwards messages to anonymous trigger targets.
	IndirectServer = indirect.Server
)

// NewIndirectServer starts one indirection server.
func NewIndirectServer(network Network, addr Address, scheme Scheme) (*IndirectServer, error) {
	return indirect.NewServer(network, addr, scheme)
}

// PayWord micropayment aggregation (paper Section 7).
type (
	// PayWordChain is the payer side of a hash chain.
	PayWordChain = payword.Chain
	// PayWordVendor is the vendor side.
	PayWordVendor = payword.Vendor
	// PayWordCommitment backs a chain.
	PayWordCommitment = payword.Commitment
	// PayWordPayment is one released payword.
	PayWordPayment = payword.Payment
	// LotteryTicket is a probabilistic micropayment.
	LotteryTicket = payword.Ticket
	// KeyPair bundles a public and private key.
	KeyPair = sig.KeyPair
	// Suite bundles a scheme with an optional micro-op recorder.
	Suite = sig.Suite
)

// NewPayWordChain builds a vendor-dedicated chain of n unit payments.
func NewPayWordChain(suite Suite, payerKeys KeyPair, vendor string, n int) (*PayWordChain, error) {
	return payword.NewChain(suite, payerKeys, vendor, n)
}

// NewPayWordVendor accepts a commitment and verifies subsequent payments.
func NewPayWordVendor(suite Suite, name string, c PayWordCommitment) (*PayWordVendor, error) {
	return payword.NewVendor(suite, name, c)
}

// VerifyPayWordClaim validates settlement evidence and returns the owed
// units.
func VerifyPayWordClaim(suite Suite, claim payword.SettlementClaim) (int, error) {
	return payword.VerifyClaim(suite, claim)
}

// Group signatures and escrow.
type (
	// GroupSignature is an anonymous, judge-openable signature.
	GroupSignature = groupsig.Signature
	// GroupMemberKey is a member's signing key.
	GroupMemberKey = groupsig.MemberKey
	// EscrowShare is one judge-panel share of the master key.
	EscrowShare = groupsig.KeyShare
	// SecretShare is a raw Shamir share.
	SecretShare = shamir.Share
)

// SplitSecret shares a secret k-of-n (Shamir).
func SplitSecret(secret []byte, k, n int) ([]SecretShare, error) { return shamir.Split(secret, k, n) }

// CombineSecret reconstructs a shared secret.
func CombineSecret(shares []SecretShare, secretLen int) ([]byte, error) {
	return shamir.Combine(shares, secretLen)
}

// Layered coins (paper Section 7): offline transfer without the broker by
// appending holder-signed layers, bounded by a maximum layer count.
type (
	// LayeredCoin is a coin plus its offline hop chain.
	LayeredCoin = layered.Coin
	// Layer is one offline hop.
	Layer = layered.Layer
)

// LayeredHop appends an offline hop to a layered coin.
func LayeredHop(suite Suite, lc *LayeredCoin, holderPriv []byte, member *GroupMemberKey, nextHolder []byte, maxLayers int) (*LayeredCoin, error) {
	return layered.Hop(suite, lc, holderPriv, member, nextHolder, maxLayers)
}

// BlindSigner issues Chaum blind signatures (coin-shop blind issuance).
type BlindSigner = blind.Signer

// NewBlindSigner creates an RSA blind signer with the given modulus size.
func NewBlindSigner(bits int) (*BlindSigner, error) { return blind.NewSigner(bits) }

// MemoryNetwork is the in-process transport.
type MemoryNetwork = bus.Memory
