package whopay_test

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (Section 6). Figure benchmarks run the
// discrete-event simulator at a reduced-but-shape-preserving scale per
// iteration and report the figure's headline quantities as custom metrics;
// cmd/whopay-sim regenerates the full-scale data series (CSV + plots).
//
// Run: go test -bench=. -benchmem

import (
	"fmt"
	"testing"
	"time"

	"whopay/internal/bus"
	"whopay/internal/coin"
	"whopay/internal/core"
	"whopay/internal/costmodel"
	"whopay/internal/groupsig"
	"whopay/internal/layered"
	"whopay/internal/ppay"
	"whopay/internal/sig"
	"whopay/internal/sim"
)

// benchScale keeps per-iteration cost around a second while preserving
// every shape the figures assert.
func benchScale() sim.Scale {
	return sim.Scale{
		NumPeers:    60,
		Duration:    36 * time.Hour,
		MeanOnlines: []time.Duration{30 * time.Minute, 2 * time.Hour, 8 * time.Hour},
		MeanOffline: 2 * time.Hour,
		Sizes:       []int{30, 60, 90},
		Seed:        1,
	}
}

func runPoint(b *testing.B, mu time.Duration, policy core.Policy, mode core.SyncMode) *sim.Result {
	b.Helper()
	res, err := sim.Run(sim.Config{
		NumPeers:    benchScale().NumPeers,
		MeanOnline:  mu,
		MeanOffline: benchScale().MeanOffline,
		Duration:    benchScale().Duration,
		// The paper runs 10 days against a 3-day renewal period;
		// the bench horizon is scaled down, so the renewal period
		// scales with it (otherwise renewals never come due).
		RenewalPeriod: benchScale().Duration / 3,
		Policy:        policy,
		SyncMode:      mode,
		Seed:          1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTable1Setup validates the Table 1 configuration matrix is
// constructible (every policy × sync × setup combination runs).
func BenchmarkTable1Setup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, policy := range []core.Policy{core.PolicyI, core.PolicyIIa, core.PolicyIIb, core.PolicyIII} {
			for _, mode := range []core.SyncMode{core.SyncProactive, core.SyncLazy} {
				res, err := sim.Run(sim.Config{
					NumPeers:    30,
					MeanOnline:  time.Hour,
					MeanOffline: 2 * time.Hour,
					Duration:    12 * time.Hour,
					Policy:      policy,
					SyncMode:    mode,
					Seed:        1,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Payments == 0 {
					b.Fatalf("no payments under %v/%v", policy, mode)
				}
			}
		}
	}
}

// BenchmarkTable2KeyGen / Sign / Verify measure the crypto micro-operations
// the paper's Table 2 reports (DSA-1024 there; ECDSA P-256 here).
func BenchmarkTable2KeyGen(b *testing.B) {
	s := sig.ECDSA{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.GenerateKey(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Sign(b *testing.B) {
	s := sig.ECDSA{}
	kp, err := s.GenerateKey()
	if err != nil {
		b.Fatal(err)
	}
	msg := []byte("table 2 measurement message")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Sign(kp.Private, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Verify(b *testing.B) {
	s := sig.ECDSA{}
	kp, err := s.GenerateKey()
	if err != nil {
		b.Fatal(err)
	}
	msg := []byte("table 2 measurement message")
	sigBytes, err := s.Sign(kp.Private, msg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Verify(kp.Public, msg, sigBytes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Relative reports the measured relative costs next to the
// paper's assumed 1/2/2 units.
func BenchmarkTable3Relative(b *testing.B) {
	var table costmodel.MeasuredTable
	var err error
	for i := 0; i < b.N; i++ {
		table, err = costmodel.Measure(sig.ECDSA{}, 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(table.RelSign, "rel-sign")
	b.ReportMetric(table.RelVrfy, "rel-verify")
}

// BenchmarkFigure2BrokerOps regenerates Figure 2's quantities (broker
// operation counts, policy I + proactive sync) across the availability
// sweep and reports the mid-sweep values.
func BenchmarkFigure2BrokerOps(b *testing.B) {
	var res *sim.Result
	for i := 0; i < b.N; i++ {
		for _, mu := range benchScale().MeanOnlines {
			r := runPoint(b, mu, core.PolicyI, core.SyncProactive)
			if mu == 2*time.Hour {
				res = r
			}
		}
	}
	b.ReportMetric(float64(res.BrokerOps.Get(core.OpPurchase)), "purchases")
	b.ReportMetric(float64(res.BrokerOps.Get(core.OpDowntimeTransfer)), "dt-transfers")
	b.ReportMetric(float64(res.BrokerOps.Get(core.OpDowntimeRenewal)), "dt-renewals")
	b.ReportMetric(float64(res.BrokerOps.Get(core.OpSync)), "syncs")
}

// BenchmarkFigure3BrokerOpsLazy regenerates Figure 3 (lazy sync: no syncs).
func BenchmarkFigure3BrokerOpsLazy(b *testing.B) {
	var res *sim.Result
	for i := 0; i < b.N; i++ {
		for _, mu := range benchScale().MeanOnlines {
			r := runPoint(b, mu, core.PolicyI, core.SyncLazy)
			if mu == 2*time.Hour {
				res = r
			}
		}
	}
	if res.BrokerOps.Get(core.OpSync) != 0 {
		b.Fatal("lazy sync performed syncs")
	}
	b.ReportMetric(float64(res.BrokerOps.Get(core.OpPurchase)), "purchases")
	b.ReportMetric(float64(res.BrokerOps.Get(core.OpDowntimeTransfer)), "dt-transfers")
	b.ReportMetric(float64(res.BrokerOps.Get(core.OpDowntimeRenewal)), "dt-renewals")
}

// BenchmarkFigure4PeerOps regenerates Figure 4 (average peer operation
// counts, policy I + proactive).
func BenchmarkFigure4PeerOps(b *testing.B) {
	var res *sim.Result
	for i := 0; i < b.N; i++ {
		res = runPoint(b, 2*time.Hour, core.PolicyI, core.SyncProactive)
	}
	if res.PeerOpsAvg(core.OpTransfer) <= res.PeerOpsAvg(core.OpPurchase) {
		b.Fatal("transfers do not dominate peer load")
	}
	b.ReportMetric(res.PeerOpsAvg(core.OpTransfer), "transfers/peer")
	b.ReportMetric(res.PeerOpsAvg(core.OpIssue), "issues/peer")
	b.ReportMetric(res.PeerOpsAvg(core.OpRenewal), "renewals/peer")
}

// BenchmarkFigure5PeerOpsLazy regenerates Figure 5 (adds checks).
func BenchmarkFigure5PeerOpsLazy(b *testing.B) {
	var res *sim.Result
	for i := 0; i < b.N; i++ {
		res = runPoint(b, 2*time.Hour, core.PolicyI, core.SyncLazy)
	}
	b.ReportMetric(res.PeerOpsAvg(core.OpTransfer), "transfers/peer")
	b.ReportMetric(res.PeerOpsAvg(core.OpCheck), "checks/peer")
	b.ReportMetric(res.PeerOpsAvg(core.OpLazySync), "lazysyncs/peer")
}

// BenchmarkFigure6BrokerCPU regenerates Figure 6's comparison: broker CPU
// load under the four policy/sync configurations (lazy < proactive,
// III ≤ I).
func BenchmarkFigure6BrokerCPU(b *testing.B) {
	var loads [4]float64
	for i := 0; i < b.N; i++ {
		for k, key := range sim.AllSweepKeys() {
			res := runPoint(b, 2*time.Hour, key.Policy, key.Sync)
			loads[k] = float64(res.BrokerCPU)
		}
	}
	b.ReportMetric(loads[0], "I+pro")
	b.ReportMetric(loads[1], "I+lazy")
	b.ReportMetric(loads[2], "III+pro")
	b.ReportMetric(loads[3], "III+lazy")
	if loads[1] >= loads[0] {
		b.Fatal("lazy sync did not cut broker CPU load")
	}
}

// BenchmarkFigure7BrokerComm regenerates Figure 7 (communication load).
func BenchmarkFigure7BrokerComm(b *testing.B) {
	var pro, lazy float64
	for i := 0; i < b.N; i++ {
		pro = float64(runPoint(b, 2*time.Hour, core.PolicyI, core.SyncProactive).BrokerComm)
		lazy = float64(runPoint(b, 2*time.Hour, core.PolicyI, core.SyncLazy).BrokerComm)
	}
	b.ReportMetric(pro, "I+pro-msgs")
	b.ReportMetric(lazy, "I+lazy-msgs")
	if lazy >= pro {
		b.Fatal("lazy sync did not cut broker communication load")
	}
}

// BenchmarkFigure8CPULoadRatio regenerates Figure 8: the broker-to-peer
// CPU load ratio at low availability.
func BenchmarkFigure8CPULoadRatio(b *testing.B) {
	var low, high float64
	for i := 0; i < b.N; i++ {
		low = runPoint(b, 30*time.Minute, core.PolicyI, core.SyncProactive).CPULoadRatio()
		high = runPoint(b, 8*time.Hour, core.PolicyI, core.SyncProactive).CPULoadRatio()
	}
	b.ReportMetric(low, "ratio-lowavail")
	b.ReportMetric(high, "ratio-highavail")
	if low <= high {
		b.Fatal("load ratio does not decrease with availability")
	}
}

// BenchmarkFigure9CommLoadRatio regenerates Figure 9.
func BenchmarkFigure9CommLoadRatio(b *testing.B) {
	var low, high float64
	for i := 0; i < b.N; i++ {
		low = runPoint(b, 30*time.Minute, core.PolicyI, core.SyncProactive).CommLoadRatio()
		high = runPoint(b, 8*time.Hour, core.PolicyI, core.SyncProactive).CommLoadRatio()
	}
	b.ReportMetric(low, "ratio-lowavail")
	b.ReportMetric(high, "ratio-highavail")
}

// BenchmarkFigure10CPUShareScaling regenerates Figure 10 (Setup B): the
// broker's share of CPU load across system sizes — roughly flat, i.e.
// broker load grows linearly with total load, with peers absorbing ~95%.
func BenchmarkFigure10CPUShareScaling(b *testing.B) {
	sizes := benchScale().Sizes
	shares := make([]float64, len(sizes))
	for i := 0; i < b.N; i++ {
		for k, n := range sizes {
			res, err := sim.Run(sim.Config{
				NumPeers:    n,
				MeanOnline:  2 * time.Hour,
				MeanOffline: 2 * time.Hour,
				Duration:    benchScale().Duration,
				Policy:      core.PolicyI,
				Seed:        1,
			})
			if err != nil {
				b.Fatal(err)
			}
			shares[k] = res.BrokerCPUShare()
		}
	}
	for k, n := range sizes {
		b.ReportMetric(shares[k], fmt.Sprintf("share-n%d", n))
		if shares[k] > 0.3 {
			b.Fatalf("broker share %.3f at n=%d — peers not absorbing the load", shares[k], n)
		}
	}
}

// BenchmarkFigure11CommShareScaling regenerates Figure 11 (communication).
func BenchmarkFigure11CommShareScaling(b *testing.B) {
	sizes := benchScale().Sizes
	shares := make([]float64, len(sizes))
	for i := 0; i < b.N; i++ {
		for k, n := range sizes {
			res, err := sim.Run(sim.Config{
				NumPeers:    n,
				MeanOnline:  2 * time.Hour,
				MeanOffline: 2 * time.Hour,
				Duration:    benchScale().Duration,
				Policy:      core.PolicyI,
				Seed:        1,
			})
			if err != nil {
				b.Fatal(err)
			}
			shares[k] = res.BrokerCommShare()
		}
	}
	for k, n := range sizes {
		b.ReportMetric(shares[k], fmt.Sprintf("share-n%d", n))
	}
}

// BenchmarkAblationCentralBaseline contrasts WhoPay with the centralized
// anonymous-transfer baseline: the broker's share of transfer servicing is
// ~100% there versus a few percent in WhoPay — the scalability claim in one
// number.
func BenchmarkAblationCentralBaseline(b *testing.B) {
	var whopayShare float64
	for i := 0; i < b.N; i++ {
		res := runPoint(b, 2*time.Hour, core.PolicyI, core.SyncProactive)
		whopayShare = res.BrokerCPUShare()
	}
	b.ReportMetric(whopayShare, "whopay-broker-share")
	b.ReportMetric(1.0, "central-broker-transfer-share")
}

// BenchmarkTransferWhoPay measures one owner-serviced WhoPay transfer under
// real ECDSA crypto, end to end (offer, holder+group signatures, owner
// verification, re-binding, delivery, payee verification).
func BenchmarkTransferWhoPay(b *testing.B) {
	scheme := sig.ECDSA{}
	net := bus.NewMemory()
	dir := core.NewDirectory()
	judge, err := core.NewJudge(scheme)
	if err != nil {
		b.Fatal(err)
	}
	broker, err := core.NewBroker(core.BrokerConfig{
		Network: net, Scheme: scheme, Directory: dir, GroupPub: judge.GroupPublicKey(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer broker.Close()
	mk := func(id string) *core.Peer {
		p, err := core.NewPeer(core.PeerConfig{
			ID: id, Network: net, Scheme: scheme, Directory: dir,
			BrokerAddr: broker.Addr(), BrokerPub: broker.PublicKey(), Judge: judge,
			CredPool: b.N + 64,
		})
		if err != nil {
			b.Fatal(err)
		}
		return p
	}
	u, v, w := mk("u"), mk("v"), mk("w")
	defer u.Close()
	defer v.Close()
	defer w.Close()
	id, err := u.Purchase(1, false)
	if err != nil {
		b.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		b.Fatal(err)
	}
	from, to := v, w
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := from.TransferTo(to.Addr(), id); err != nil {
			b.Fatal(err)
		}
		from, to = to, from
	}
}

// BenchmarkTransferPPay is the PPay baseline for the same hop: no group
// signatures, no holder keys — cheaper, and zero anonymity. The delta
// against BenchmarkTransferWhoPay is the measured price of anonymity.
func BenchmarkTransferPPay(b *testing.B) {
	scheme := sig.ECDSA{}
	net := bus.NewMemory()
	dir := core.NewDirectory()
	broker, err := ppay.NewBroker(ppay.BrokerConfig{
		Network: net, Scheme: scheme, Directory: dir,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer broker.Close()
	mk := func(id string) *ppay.Peer {
		p, err := ppay.NewPeer(ppay.PeerConfig{
			ID: id, Network: net, Scheme: scheme, Directory: dir,
			BrokerAddr: broker.Addr(), BrokerPub: broker.PublicKey(),
		})
		if err != nil {
			b.Fatal(err)
		}
		return p
	}
	u, v, w := mk("u"), mk("v"), mk("w")
	defer u.Close()
	defer v.Close()
	defer w.Close()
	sn, err := u.Purchase(1)
	if err != nil {
		b.Fatal(err)
	}
	if err := u.IssueTo("v", sn); err != nil {
		b.Fatal(err)
	}
	names := [2]string{"w", "v"}
	from := v
	other := w
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := from.TransferTo(names[i%2], sn); err != nil {
			b.Fatal(err)
		}
		from, other = other, from
	}
}

// BenchmarkAblationDetectionOff measures the cost of the real-time
// detection extension: the owner-side publish is one extra signature per
// transfer (4 vs 3 signs).
func BenchmarkAblationDetectionOff(b *testing.B) {
	var with, without int64
	for i := 0; i < b.N; i++ {
		r1, err := sim.Run(sim.Config{
			NumPeers: 40, MeanOnline: 2 * time.Hour, MeanOffline: 2 * time.Hour,
			Duration: 24 * time.Hour, Policy: core.PolicyI, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		r2, err := sim.Run(sim.Config{
			NumPeers: 40, MeanOnline: 2 * time.Hour, MeanOffline: 2 * time.Hour,
			Duration: 24 * time.Hour, Policy: core.PolicyI, Seed: 1, DHTNodes: -1,
		})
		if err != nil {
			b.Fatal(err)
		}
		with, without = r1.PeerCPUTotal, r2.PeerCPUTotal
	}
	b.ReportMetric(float64(with), "peerCPU-with-dht")
	b.ReportMetric(float64(without), "peerCPU-without-dht")
}

// BenchmarkDepositChain measures layered-chain verification — the broker's
// work when a multi-hop offline coin comes home (handleLayeredDeposit) —
// with and without the crypto fast path. Each chain carries 2 + 3·hops
// signature checks; the cached suite amortises key decoding across layers
// (every layer re-verifies against the same group public key) and memoizes
// whole chains on repeat presentation.
func BenchmarkDepositChain(b *testing.B) {
	const hops = 4
	scheme := sig.ECDSA{}
	suite := sig.Suite{Scheme: scheme}
	brokerKeys, err := suite.GenerateKey()
	if err != nil {
		b.Fatal(err)
	}
	mgr, err := groupsig.NewManager(scheme)
	if err != nil {
		b.Fatal(err)
	}
	groupPub := mgr.GroupPublicKey()
	coinKeys, err := suite.GenerateKey()
	if err != nil {
		b.Fatal(err)
	}
	holder, err := suite.GenerateKey()
	if err != nil {
		b.Fatal(err)
	}
	base := coin.Coin{Owner: "owner", Pub: coinKeys.Public, Value: 1}
	if base.Sig, err = suite.Sign(brokerKeys.Private, base.Message()); err != nil {
		b.Fatal(err)
	}
	binding := coin.Binding{CoinPub: coinKeys.Public, Holder: holder.Public, Seq: 1, Expiry: 99}
	if binding.Sig, err = suite.Sign(coinKeys.Private, binding.Message()); err != nil {
		b.Fatal(err)
	}
	lc := &layered.Coin{Base: base, Binding: binding}
	priv := holder.Private
	for i := 0; i < hops; i++ {
		mk, err := mgr.Enroll(fmt.Sprintf("hopper-%d", i), 4)
		if err != nil {
			b.Fatal(err)
		}
		next, err := suite.GenerateKey()
		if err != nil {
			b.Fatal(err)
		}
		if lc, err = layered.Hop(suite, lc, priv, mk, next.Public, 0); err != nil {
			b.Fatal(err)
		}
		priv = next.Private
	}

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := lc.Verify(suite, brokerKeys.Public, groupPub, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		cachedSuite, _ := sig.NewCachedSuite(suite, sig.CacheOptions{})
		if err := lc.Verify(cachedSuite, brokerKeys.Public, groupPub, 0); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := lc.Verify(cachedSuite, brokerKeys.Public, groupPub, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}
