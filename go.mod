module whopay

go 1.22
