// Command whopay-bench regenerates the paper's Table 2 (measured crypto
// operation cost) and Table 3 (relative operation cost) on this machine.
//
// The paper measured DSA 1024-bit operations under Bouncy Castle on a
// 3.06 GHz Xeon (keygen 7.8 ms, sign 13.9 ms, verify 12.3 ms); this tool
// measures the ECDSA P-256 stand-in (and optionally Ed25519) with the same
// methodology — N iterations of each micro-operation, averaged.
//
// Usage:
//
//	whopay-bench -scheme ecdsa -iters 1000
//	whopay-bench -relative
package main

import (
	"flag"
	"fmt"
	"os"

	"whopay/internal/costmodel"
	"whopay/internal/sig"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "whopay-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		schemeName = flag.String("scheme", "ecdsa", "scheme to measure: ecdsa, ed25519, all")
		iters      = flag.Int("iters", 500, "iterations per micro-operation")
		relative   = flag.Bool("relative", false, "also print Table 3 (relative cost units)")
	)
	flag.Parse()

	var schemes []sig.Scheme
	switch *schemeName {
	case "ecdsa":
		schemes = []sig.Scheme{sig.ECDSA{}}
	case "ed25519":
		schemes = []sig.Scheme{sig.Ed25519{}}
	case "all":
		schemes = []sig.Scheme{sig.ECDSA{}, sig.Ed25519{}}
	default:
		return fmt.Errorf("unknown scheme %q (ecdsa|ed25519|all)", *schemeName)
	}

	fmt.Printf("Table 2 analog — %d iterations per operation\n", *iters)
	fmt.Println("(paper, DSA-1024 on a 3.06GHz Xeon: keygen 7.8ms, sign 13.9ms, verify 12.3ms)")
	fmt.Println()
	for _, s := range schemes {
		table, err := costmodel.Measure(s, *iters)
		if err != nil {
			return err
		}
		fmt.Print(table.String())
		fmt.Println()
	}
	if *relative {
		fmt.Print(costmodel.RelativeTable())
	}
	return nil
}
