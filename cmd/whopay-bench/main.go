// Command whopay-bench regenerates the paper's Table 2 (measured crypto
// operation cost) and Table 3 (relative operation cost) on this machine.
//
// The paper measured DSA 1024-bit operations under Bouncy Castle on a
// 3.06 GHz Xeon (keygen 7.8 ms, sign 13.9 ms, verify 12.3 ms); this tool
// measures the ECDSA P-256 stand-in (and optionally Ed25519) with the same
// methodology — N iterations of each micro-operation, averaged.
//
// The -protocol mode instead measures end-to-end protocol operations
// (transfer hops and deposit cycles) over the in-memory bus, optionally
// with the write-ahead log enabled, to put a number on durability's cost:
//
//	whopay-bench -protocol -ops 2000
//	whopay-bench -protocol -persist /tmp/whopay-wal -fsync always
//
// The -load mode runs the open-loop load harness (internal/load): many
// lightweight peer actors against a live broker (and optional DHT) over
// real TCP, issuing operations at a configured arrival rate. Latency is
// measured from each operation's intended start, so a stalled broker shows
// up in the tail instead of thinning the arrival stream. Each run writes a
// BENCH_load_<scenario>.json artifact and ends with a ledger audit:
//
//	whopay-bench -load -scenario steady -actors 500 -rate 200/s
//	whopay-bench -load -scenario all -wal -fsync interval -strict -out bench
//
// Usage:
//
//	whopay-bench -scheme ecdsa -iters 1000
//	whopay-bench -relative
//	whopay-bench -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"whopay/internal/bus"
	"whopay/internal/core"
	"whopay/internal/costmodel"
	"whopay/internal/obs"
	"whopay/internal/sig"
	"whopay/internal/wal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "whopay-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		schemeName = flag.String("scheme", "ecdsa", "scheme to measure: ecdsa, ed25519, all")
		iters      = flag.Int("iters", 500, "iterations per micro-operation")
		relative   = flag.Bool("relative", false, "also print Table 3 (relative cost units)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		protocol   = flag.Bool("protocol", false, "measure protocol operations (transfer, deposit) instead of crypto micro-ops")
		ops        = flag.Int("ops", 2000, "protocol operations per measurement")
		persistDir = flag.String("persist", "", "journal broker and payer state under this directory (protocol mode; empty: in-memory)")
		fsyncMode  = flag.String("fsync", "never", "journal fsync policy: never, interval, always")
		dump       = flag.Bool("metrics-dump", false, "instrument the protocol bench with a live obs registry and print the Prometheus exposition on exit")

		loadMode = flag.Bool("load", false, "run the open-loop load harness against a live tcpbus world (see -scenario)")
		scenario = flag.String("scenario", "steady", "load scenario to run, or 'all' for the whole matrix")
		actors   = flag.Int("actors", 200, "load mode: number of peer actors")
		rateStr  = flag.String("rate", "200/s", "load mode: open-loop arrival rate, e.g. 200/s")
		loadOps  = flag.Int("load-ops", 0, "load mode: bound the schedule by operation count (0: by -load-duration)")
		loadDur  = flag.Duration("load-duration", 30*time.Second, "load mode: bound the schedule by time")
		loadSeed = flag.Int64("load-seed", 1, "load mode: seed for the op mix and fault schedules")
		walOn    = flag.Bool("wal", false, "load mode: journal the broker (under -persist, or a temp dir)")
		gobWire  = flag.Bool("gob-wire", false, "load mode: force the legacy one-connection-per-call gob wire (baseline for the framed binary protocol)")
		outDir   = flag.String("out", ".", "load mode: directory for BENCH_load_<scenario>.json artifacts")
		strict   = flag.Bool("strict", false, "load mode: exit nonzero on unexpected protocol errors or audit violations")
		depBatch = flag.Int("deposit-batch", 0, "load mode: broker deposit-batch flush size (0: scenario default)")
		depLing  = flag.Duration("deposit-linger", 0, "load mode: deposit-batch linger (0: 2ms default when batching is on)")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "whopay-bench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "whopay-bench: memprofile:", err)
			}
		}()
	}

	var schemes []sig.Scheme
	switch *schemeName {
	case "ecdsa":
		schemes = []sig.Scheme{sig.ECDSA{}}
	case "ed25519":
		schemes = []sig.Scheme{sig.Ed25519{}}
	case "all":
		schemes = []sig.Scheme{sig.ECDSA{}, sig.Ed25519{}}
	default:
		return fmt.Errorf("unknown scheme %q (ecdsa|ed25519|all)", *schemeName)
	}

	if *loadMode {
		return runLoadBench(loadOpts{
			scenario: *scenario,
			actors:   *actors,
			rate:     *rateStr,
			ops:      *loadOps,
			duration: *loadDur,
			seed:     *loadSeed,
			scheme:   schemes[0],
			wal:      *walOn,
			gobWire:  *gobWire,
			walDir:   *persistDir,
			fsync:    *fsyncMode,
			out:      *outDir,
			strict:   *strict,
			dump:     *dump,

			depositBatch:  *depBatch,
			depositLinger: *depLing,
		})
	}

	if *protocol || *persistDir != "" {
		var reg *obs.Registry
		if *dump {
			reg = obs.NewRegistry()
		}
		if err := runProtocolBench(schemes[0], *ops, *persistDir, *fsyncMode, reg); err != nil {
			return err
		}
		if reg != nil {
			fmt.Println()
			fmt.Println("--- metrics dump (Prometheus exposition) ---")
			return reg.WritePrometheus(os.Stdout)
		}
		return nil
	}
	if *dump {
		return fmt.Errorf("-metrics-dump requires -protocol or -load (crypto micro-ops carry no registry)")
	}

	fmt.Printf("Table 2 analog — %d iterations per operation\n", *iters)
	fmt.Println("(paper, DSA-1024 on a 3.06GHz Xeon: keygen 7.8ms, sign 13.9ms, verify 12.3ms)")
	fmt.Println()
	for _, s := range schemes {
		table, err := costmodel.Measure(s, *iters)
		if err != nil {
			return err
		}
		fmt.Print(table.String())
		fmt.Println()
	}
	if *relative {
		fmt.Print(costmodel.RelativeTable())
	}
	return nil
}

// runProtocolBench measures end-to-end transfer hops and full deposit
// cycles over the in-memory bus, so the numbers isolate protocol +
// journaling cost from TCP. With -persist, the broker and every
// participating peer journal under persistDir with the given fsync policy.
func runProtocolBench(scheme sig.Scheme, ops int, persistDir, fsyncMode string, reg *obs.Registry) error {
	if ops < 1 {
		return fmt.Errorf("ops must be >= 1")
	}
	walConfig := func(role string) (*wal.Config, error) {
		if persistDir == "" {
			return nil, nil
		}
		policy, err := wal.ParsePolicy(fsyncMode)
		if err != nil {
			return nil, err
		}
		sub := filepath.Join(persistDir, role)
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, err
		}
		return &wal.Config{Dir: sub, Policy: policy}, nil
	}

	network := bus.NewMemory()
	dir := core.NewDirectory()
	judge, err := core.NewJudge(scheme)
	if err != nil {
		return err
	}
	brokerWAL, err := walConfig("broker")
	if err != nil {
		return err
	}
	broker, err := core.NewBroker(core.BrokerConfig{
		Network:     network,
		Addr:        "broker",
		Scheme:      scheme,
		Directory:   dir,
		GroupPub:    judge.GroupPublicKey(),
		Persistence: brokerWAL,
		Obs:         reg,
	})
	if err != nil {
		return err
	}
	defer broker.Close()

	mkPeer := func(id string) (*core.Peer, error) {
		cfg, err := walConfig(id)
		if err != nil {
			return nil, err
		}
		return core.NewPeer(core.PeerConfig{
			ID:          id,
			Network:     network,
			Addr:        bus.Address("addr:" + id),
			Scheme:      scheme,
			Directory:   dir,
			BrokerAddr:  broker.Addr(),
			BrokerPub:   broker.PublicKey(),
			Judge:       judge,
			Persistence: cfg,
			Obs:         reg,
		})
	}
	owner, err := mkPeer("owner")
	if err != nil {
		return err
	}
	defer owner.Close()
	x, err := mkPeer("x")
	if err != nil {
		return err
	}
	defer x.Close()
	y, err := mkPeer("y")
	if err != nil {
		return err
	}
	defer y.Close()

	if persistDir == "" {
		fmt.Printf("Protocol bench — %d ops per measurement, scheme %s, persistence off\n", ops, scheme.Name())
	} else {
		fmt.Printf("Protocol bench — %d ops per measurement, scheme %s, journal under %s (fsync=%s)\n",
			ops, scheme.Name(), persistDir, fsyncMode)
	}

	// Transfer: one coin ping-pongs between x and y through its owner, so
	// each op is a full transfer round (owner re-binding + broker watch).
	id, err := owner.Purchase(1, false)
	if err != nil {
		return fmt.Errorf("purchase: %w", err)
	}
	if err := owner.IssueTo(x.Addr(), id); err != nil {
		return fmt.Errorf("issue: %w", err)
	}
	// A coin's record grows with every re-binding, so retire the coin and
	// mint a fresh one every 64 hops (off the clock) to measure the
	// steady-state hop cost rather than history growth.
	const freshEvery = 64
	cur, nxt := x, y
	var transferTime time.Duration
	for i := 0; i < ops; i++ {
		if i > 0 && i%freshEvery == 0 {
			if err := cur.Deposit(id, "payout:bench"); err != nil {
				return fmt.Errorf("retire %d: %w", i, err)
			}
			if id, err = owner.Purchase(1, false); err != nil {
				return fmt.Errorf("re-mint %d: %w", i, err)
			}
			if err := owner.IssueTo(cur.Addr(), id); err != nil {
				return fmt.Errorf("re-issue %d: %w", i, err)
			}
		}
		t0 := time.Now()
		if err := cur.TransferTo(nxt.Addr(), id); err != nil {
			return fmt.Errorf("transfer %d: %w", i, err)
		}
		transferTime += time.Since(t0)
		cur, nxt = nxt, cur
	}
	reportOps("transfer hop", ops, transferTime)

	// Deposit: a full coin lifecycle per op — purchase, self-issue,
	// deposit — the heaviest journaling path on the broker.
	start := time.Now()
	for i := 0; i < ops; i++ {
		id, err := owner.Purchase(1, false)
		if err != nil {
			return fmt.Errorf("purchase %d: %w", i, err)
		}
		if err := owner.IssueTo(owner.Addr(), id); err != nil {
			return fmt.Errorf("issue %d: %w", i, err)
		}
		if err := owner.Deposit(id, "payout:bench"); err != nil {
			return fmt.Errorf("deposit %d: %w", i, err)
		}
	}
	reportOps("deposit cycle", ops, time.Since(start))

	if err := broker.PersistenceErr(); err != nil {
		return fmt.Errorf("broker journal: %w", err)
	}
	return nil
}

func reportOps(name string, ops int, elapsed time.Duration) {
	per := elapsed / time.Duration(ops)
	fmt.Printf("  %-14s %8d ops  %12v total  %10v/op  %8.0f ops/s\n",
		name, ops, elapsed.Round(time.Millisecond), per.Round(time.Microsecond),
		float64(ops)/elapsed.Seconds())
}
