// Command whopay-bench regenerates the paper's Table 2 (measured crypto
// operation cost) and Table 3 (relative operation cost) on this machine.
//
// The paper measured DSA 1024-bit operations under Bouncy Castle on a
// 3.06 GHz Xeon (keygen 7.8 ms, sign 13.9 ms, verify 12.3 ms); this tool
// measures the ECDSA P-256 stand-in (and optionally Ed25519) with the same
// methodology — N iterations of each micro-operation, averaged.
//
// Usage:
//
//	whopay-bench -scheme ecdsa -iters 1000
//	whopay-bench -relative
//	whopay-bench -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"whopay/internal/costmodel"
	"whopay/internal/sig"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "whopay-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		schemeName = flag.String("scheme", "ecdsa", "scheme to measure: ecdsa, ed25519, all")
		iters      = flag.Int("iters", 500, "iterations per micro-operation")
		relative   = flag.Bool("relative", false, "also print Table 3 (relative cost units)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "whopay-bench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "whopay-bench: memprofile:", err)
			}
		}()
	}

	var schemes []sig.Scheme
	switch *schemeName {
	case "ecdsa":
		schemes = []sig.Scheme{sig.ECDSA{}}
	case "ed25519":
		schemes = []sig.Scheme{sig.Ed25519{}}
	case "all":
		schemes = []sig.Scheme{sig.ECDSA{}, sig.Ed25519{}}
	default:
		return fmt.Errorf("unknown scheme %q (ecdsa|ed25519|all)", *schemeName)
	}

	fmt.Printf("Table 2 analog — %d iterations per operation\n", *iters)
	fmt.Println("(paper, DSA-1024 on a 3.06GHz Xeon: keygen 7.8ms, sign 13.9ms, verify 12.3ms)")
	fmt.Println()
	for _, s := range schemes {
		table, err := costmodel.Measure(s, *iters)
		if err != nil {
			return err
		}
		fmt.Print(table.String())
		fmt.Println()
	}
	if *relative {
		fmt.Print(costmodel.RelativeTable())
	}
	return nil
}
