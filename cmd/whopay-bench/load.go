package main

import (
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"whopay/internal/load"
	"whopay/internal/obs"
	"whopay/internal/sig"
	"whopay/internal/wal"
)

// loadOpts carries the -load mode's flag values.
type loadOpts struct {
	scenario string // a matrix name, or "all"
	actors   int
	rate     string // "200/s" (or bare "200")
	ops      int
	duration time.Duration
	seed     int64
	scheme   sig.Scheme
	wal      bool
	gobWire  bool   // force the legacy gob wire (A/B baseline)
	walDir   string // -persist when set; otherwise a temp dir per run
	fsync    string
	out      string
	strict   bool
	dump     bool

	depositBatch  int           // broker deposit-batch flush size (0: scenario default)
	depositLinger time.Duration // deposit-batch linger (0: default)
}

// parseRate accepts "200/s" or a bare number.
func parseRate(s string) (float64, error) {
	s = strings.TrimSuffix(strings.TrimSpace(s), "/s")
	r, err := strconv.ParseFloat(s, 64)
	if err != nil || r <= 0 {
		return 0, fmt.Errorf("bad -rate %q (want e.g. 200/s)", s)
	}
	return r, nil
}

// runLoadBench drives the scenario matrix: for each selected scenario it
// builds a live world over tcpbus, runs the open-loop schedule, drains and
// audits the ledger, and writes BENCH_load_<scenario>.json. On SIGINT the
// schedule stops, a partial artifact (audit skipped, Interrupted set) is
// still written, and -metrics-dump still flushes the registry — partial
// JSON instead of nothing.
func runLoadBench(opts loadOpts) error {
	rate, err := parseRate(opts.rate)
	if err != nil {
		return err
	}
	if opts.ops <= 0 && opts.duration <= 0 {
		return fmt.Errorf("-load needs -load-ops or -load-duration")
	}
	fsync, err := wal.ParsePolicy(opts.fsync)
	if err != nil {
		return err
	}

	var names []string
	if opts.scenario == "all" {
		names = load.ScenarioNames()
	} else {
		if _, ok := load.FindScenario(opts.scenario); !ok {
			return fmt.Errorf("unknown scenario %q (have: %s, or all)",
				opts.scenario, strings.Join(load.ScenarioNames(), ", "))
		}
		names = []string{opts.scenario}
	}

	// One handler for the whole matrix: the first SIGINT stops the run in
	// flight (the drain and the artifact still happen); a second one kills
	// the process the default way.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	var current atomic.Pointer[load.Driver]
	var interrupted atomic.Bool
	go func() {
		<-sigCh
		interrupted.Store(true)
		fmt.Fprintln(os.Stderr, "whopay-bench: interrupt — stopping the schedule, writing a partial artifact")
		if d := current.Load(); d != nil {
			d.Stop()
		}
		signal.Stop(sigCh)
	}()

	var gateFailures []string
	for _, name := range names {
		if interrupted.Load() {
			break
		}
		failure, err := runLoadScenario(name, rate, fsync, opts, &current)
		if err != nil {
			return err
		}
		if failure != "" {
			gateFailures = append(gateFailures, failure)
		}
	}
	if interrupted.Load() {
		return fmt.Errorf("interrupted")
	}
	if opts.strict && len(gateFailures) > 0 {
		return fmt.Errorf("strict gate failed:\n  %s", strings.Join(gateFailures, "\n  "))
	}
	return nil
}

// runLoadScenario runs one scenario end to end and returns a non-empty
// strict-gate failure description when the run had unexpected protocol
// errors or the audit found violations.
func runLoadScenario(name string, rate float64, fsync wal.Policy, opts loadOpts, current *atomic.Pointer[load.Driver]) (string, error) {
	sc, _ := load.FindScenario(name)
	reg := obs.NewRegistry()

	walDir := ""
	if opts.wal {
		walDir = opts.walDir
		if walDir == "" {
			tmp, err := os.MkdirTemp("", "whopay-load-wal-")
			if err != nil {
				return "", fmt.Errorf("wal dir: %w", err)
			}
			defer os.RemoveAll(tmp)
			walDir = tmp
		}
	}

	wcfg := sc.WorldConfig(load.WorldConfig{
		Actors:        opts.actors,
		Scheme:        opts.scheme,
		Seed:          opts.seed,
		WALDir:        walDir,
		Fsync:         fsync,
		Reg:           reg,
		GobWire:       opts.gobWire,
		DepositBatch:  opts.depositBatch,
		DepositLinger: opts.depositLinger,
	})
	fmt.Printf("==> scenario %s: %s\n", sc.Name, sc.Summary)
	fmt.Printf("    actors=%d rate=%.0f/s ops=%d duration=%s wal=%v detection=%v faults=%v channels=%d deposit-batch=%d\n",
		opts.actors, rate, opts.ops, opts.duration, opts.wal, sc.Detection, sc.Faults,
		wcfg.Channels, wcfg.DepositBatch)
	if wcfg.Shards > 1 || wcfg.Replicas > 1 {
		fmt.Printf("    federation: shards=%d replicas=%d lease-ttl=%s\n",
			wcfg.Shards, wcfg.Replicas, wcfg.LeaseTTL)
	}

	w, err := load.NewWorld(wcfg)
	if err != nil {
		return "", fmt.Errorf("scenario %s: %w", name, err)
	}
	defer w.Close()

	run := load.NewRun(w, sc, load.RunConfig{
		Rate:     rate,
		Ops:      opts.ops,
		Duration: opts.duration,
		Seed:     opts.seed,
	})
	current.Store(run.Driver)
	res := run.Run()
	current.Store(nil)

	// An aborted schedule skips the drain: the partial artifact reports
	// what happened, with conservation unasserted (coins are still in
	// flight by construction).
	var audit load.Audit
	if res.Stopped {
		audit = w.AuditOnly()
	} else {
		audit = w.DrainAndAudit()
	}
	rep := load.BuildReport(run, res, audit)
	path, err := load.WriteReport(opts.out, rep)
	if err != nil {
		return "", err
	}
	printLoadSummary(rep, path)
	if opts.dump {
		fmt.Println()
		fmt.Printf("--- metrics dump (%s, Prometheus exposition) ---\n", sc.Name)
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			return "", err
		}
	}

	var problems []string
	if rep.Errors.ProtocolUnexpected > 0 {
		problems = append(problems, fmt.Sprintf("%d unexpected protocol errors %v", rep.Errors.ProtocolUnexpected, rep.Errors.Rejections))
	}
	if rep.Errors.Other > 0 {
		problems = append(problems, fmt.Sprintf("%d unclassified errors", rep.Errors.Other))
	}
	if len(audit.Violations) > 0 {
		problems = append(problems, fmt.Sprintf("audit violations: %v", audit.Violations))
	}
	if len(problems) > 0 {
		return fmt.Sprintf("%s: %s", name, strings.Join(problems, "; ")), nil
	}
	return "", nil
}

// printLoadSummary renders one run's result for humans; the JSON artifact
// is the machine-readable record.
func printLoadSummary(rep load.Report, path string) {
	fmt.Printf("    scheduled %d  completed %d  failed %d  skipped %d  dropped %d  (%.1f/s achieved, target %.1f/s)\n",
		rep.Scheduled, rep.Completed, rep.Failed, rep.SkippedOps, rep.Dropped, rep.AchievedRate, rep.TargetRate)
	fmt.Printf("    latency ms: p50=%.2f p90=%.2f p99=%.2f p999=%.2f max=%.2f mean=%.2f\n",
		rep.LatencyMs.P50, rep.LatencyMs.P90, rep.LatencyMs.P99, rep.LatencyMs.P999, rep.LatencyMs.Max, rep.LatencyMs.Mean)
	fmt.Printf("    errors: timeouts=%d transport=%d protocol=%d (unexpected %d) other=%d\n",
		rep.Errors.Timeouts, rep.Errors.Transport, rep.Errors.Protocol, rep.Errors.ProtocolUnexpected, rep.Errors.Other)
	if len(rep.EventsFired) > 0 {
		fmt.Printf("    events fired: %s\n", strings.Join(rep.EventsFired, ", "))
	}
	if fo := rep.Failover; fo != nil {
		fmt.Printf("    failover: %d leaders killed, recover max %.0fms (promote mean %.1fms), %d redirects (%.3f/op)\n",
			fo.LeadersKilled, fo.RecoverMsMax, fo.PromoteMsMean, fo.Redirects, fo.RedirectRate)
	}
	switch {
	case rep.Audit.Skipped:
		fmt.Printf("    audit: skipped (run interrupted); no hard double-spend evidence: %v\n", rep.Audit.NoDoubleSpend)
	case len(rep.Audit.Violations) == 0:
		fmt.Printf("    audit: clean — issued %d, redeemed %d, ghost %d, conserved and no double spend\n",
			rep.Audit.Issued, rep.Audit.Deposited, rep.Audit.Ghost)
	default:
		fmt.Printf("    audit: VIOLATIONS %v\n", rep.Audit.Violations)
	}
	fmt.Printf("    artifact: %s\n", path)
}
