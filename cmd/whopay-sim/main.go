// Command whopay-sim regenerates the paper's evaluation (Section 6): every
// figure's data series as CSV plus quick ASCII plots.
//
// Usage:
//
//	whopay-sim -figure all -scale quick -out results/
//	whopay-sim -figure 2 -scale paper -plot
//	whopay-sim -print-setup
//
// Figures 2-9 sweep mean online session length (Setup A, policy I and III,
// proactive and lazy sync); Figures 10-11 sweep system size (Setup B). The
// "paper" scale is the full 1000-peer, 10-day configuration and takes tens
// of minutes; "quick" preserves the shapes in about a minute.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"whopay/internal/core"
	"whopay/internal/sim"
	"whopay/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "whopay-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		figure     = flag.String("figure", "all", "figure to regenerate: all, or one of 2..11")
		scale      = flag.String("scale", "quick", "sweep scale: quick or paper")
		outDir     = flag.String("out", "", "directory for CSV output (empty: stdout summary only)")
		plot       = flag.Bool("plot", true, "print ASCII plots")
		printSetup = flag.Bool("print-setup", false, "print Table 1 (simulation setup) and exit")
		nuSens     = flag.Bool("downtime-sensitivity", false, "run the nu = 1/2/4 h sensitivity sweep instead of figures")
		ppayCmp    = flag.Bool("compare-ppay", false, "run the WhoPay-vs-PPay scalability comparison instead of figures")
		quiet      = flag.Bool("quiet", false, "suppress progress output")
	)
	flag.Parse()

	if *printSetup {
		fmt.Print(sim.SetupTable())
		return nil
	}

	var sc sim.Scale
	switch *scale {
	case "quick":
		sc = sim.QuickScale()
	case "mid":
		sc = sim.MidScale()
	case "paper":
		sc = sim.PaperScale()
	default:
		return fmt.Errorf("unknown scale %q (quick|mid|paper)", *scale)
	}

	wanted, err := parseFigures(*figure)
	if err != nil {
		return err
	}

	progress := func(msg string) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "  %s\n", msg)
		}
	}

	if *ppayCmp {
		return comparePPay(sc, progress)
	}

	if *nuSens {
		byNu, err := sim.RunDowntimeSensitivity(sc, sim.SweepKey{Policy: core.PolicyI, Sync: core.SyncProactive}, progress)
		if err != nil {
			return err
		}
		fig := sim.FigureDowntimeSensitivity(byNu)
		if *plot {
			fmt.Print(fig.ASCII(64, 16))
		}
		fmt.Print(fig.CSV())
		return nil
	}

	// Which sweeps do the requested figures need?
	needA := map[sim.SweepKey]bool{}
	needB := map[sim.SweepKey]bool{}
	for f := range wanted {
		switch {
		case f <= 5:
			needA[sim.SweepKey{Policy: core.PolicyI, Sync: core.SyncProactive}] = true // policy I + proactive
			needA[sim.SweepKey{Policy: core.PolicyI, Sync: core.SyncLazy}] = true      // policy I + lazy
		case f <= 9:
			for _, k := range sim.AllSweepKeys() {
				needA[k] = true
			}
		default:
			for _, k := range sim.AllSweepKeys() {
				needB[k] = true
			}
		}
	}

	start := time.Now()
	setupA := map[sim.SweepKey][]*sim.Result{}
	for _, key := range sim.AllSweepKeys() {
		if !needA[key] {
			continue
		}
		results, err := sim.RunSetupA(sc, key, progress)
		if err != nil {
			return err
		}
		setupA[key] = results
	}
	setupB := map[sim.SweepKey][]*sim.Result{}
	for _, key := range sim.AllSweepKeys() {
		if !needB[key] {
			continue
		}
		results, err := sim.RunSetupB(sc, key, progress)
		if err != nil {
			return err
		}
		setupB[key] = results
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "sweeps done in %v\n", time.Since(start).Round(time.Second))
	}

	iPro := setupA[sim.SweepKey{Policy: core.PolicyI, Sync: core.SyncProactive}]
	iLazy := setupA[sim.SweepKey{Policy: core.PolicyI, Sync: core.SyncLazy}]

	figures := map[int]*stats.Figure{}
	for f := range wanted {
		switch f {
		case 2:
			figures[f] = sim.FigureBrokerOps(iPro, "Figure 2: Broker Load — Policy I + Proactive Sync")
		case 3:
			figures[f] = sim.FigureBrokerOps(iLazy, "Figure 3: Broker Load — Policy I + Lazy Sync")
		case 4:
			figures[f] = sim.FigurePeerOps(iPro, "Figure 4: Average Peer Load — Policy I + Proactive Sync")
		case 5:
			figures[f] = sim.FigurePeerOps(iLazy, "Figure 5: Average Peer Load — Policy I + Lazy Sync")
		case 6:
			figures[f] = sim.FigureBrokerLoad(setupA, false, "Figure 6: Broker CPU Load")
		case 7:
			figures[f] = sim.FigureBrokerLoad(setupA, true, "Figure 7: Broker Communication Load")
		case 8:
			figures[f] = sim.FigureLoadRatio(setupA, false, "Figure 8: Broker-Peer CPU Load Ratio", 6)
		case 9:
			figures[f] = sim.FigureLoadRatio(setupA, true, "Figure 9: Broker-Peer Communication Load Ratio", 6)
		case 10:
			figures[f] = sim.FigureLoadScaling(setupB, false, "Figure 10: Broker CPU Load Scaling")
		case 11:
			figures[f] = sim.FigureLoadScaling(setupB, true, "Figure 11: Broker Communication Load Scaling")
		}
	}

	for f := 2; f <= 11; f++ {
		fig, ok := figures[f]
		if !ok {
			continue
		}
		if *plot {
			fmt.Println()
			fmt.Print(fig.ASCII(64, 16))
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*outDir, fmt.Sprintf("figure%02d.csv", f))
			if err := os.WriteFile(path, []byte(fig.CSV()), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		} else if !*plot {
			fmt.Println()
			fmt.Println(fig.Title)
			fmt.Print(fig.CSV())
		}
	}
	return nil
}

// comparePPay runs the identical workload over WhoPay and PPay and prints
// the paper's headline comparison: same load distribution, bounded
// anonymity premium.
func comparePPay(sc sim.Scale, progress func(string)) error {
	fmt.Println("WhoPay vs PPay under the identical workload (user-centric spending)")
	fmt.Printf("%-8s  %-22s  %-22s  %-10s\n", "mu", "WhoPay broker share", "PPay broker share", "CPU premium")
	for _, mu := range sc.MeanOnlines {
		if progress != nil {
			progress(fmt.Sprintf("compare: mu=%s", mu))
		}
		cfg := sim.Config{
			NumPeers:      sc.NumPeers,
			MeanOnline:    mu,
			MeanOffline:   sc.MeanOffline,
			Duration:      sc.Duration,
			RenewalPeriod: sc.RenewalPeriod,
			Policy:        core.PolicyI,
			Seed:          sc.Seed,
		}
		who, err := sim.Run(cfg)
		if err != nil {
			return err
		}
		pp, err := sim.RunPPay(cfg)
		if err != nil {
			return err
		}
		premium := float64(who.BrokerCPU+who.PeerCPUTotal) / float64(pp.BrokerCPU+pp.PeerCPUTotal)
		fmt.Printf("%-8s  %-22.4f  %-22.4f  %.2fx\n",
			mu, who.BrokerCPUShare(), pp.BrokerCPUShare(), premium)
	}
	fmt.Println("\nWhoPay adds anonymity (one-time holder keys + judge-openable group signatures);")
	fmt.Println("the premium is the bounded constant factor above — the broker share does not regress.")
	return nil
}

func parseFigures(spec string) (map[int]bool, error) {
	out := map[int]bool{}
	if spec == "all" {
		for f := 2; f <= 11; f++ {
			out[f] = true
		}
		return out, nil
	}
	for _, part := range strings.Split(spec, ",") {
		var f int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &f); err != nil || f < 2 || f > 11 {
			return nil, fmt.Errorf("bad figure %q (want 2..11 or all)", part)
		}
		out[f] = true
	}
	return out, nil
}
