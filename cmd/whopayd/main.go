// Command whopayd runs a WhoPay deployment over real TCP sockets: a broker,
// a judge, a DHT-less directory, and a configurable number of peers, then
// drives a demonstration payment scenario end to end — purchase, issue,
// multi-hop anonymous transfers, a renewal, a downtime operation through the
// broker after an owner "disconnects", and a final deposit.
//
// All traffic — payments AND judge enrollment — crosses real sockets on the
// framed binary wire (see PROTOCOL.md, "Wire format"; -gob-wire falls back
// to the legacy gob framing) under ECDSA P-256 signatures. Only the identity directory is
// shared in-process configuration (the PKI of the paper's model). Note the
// enrollment responses carry credential private keys: production transports
// must add TLS.
//
// With -admin the process also serves the observability admin endpoint
// (DESIGN.md §11): /metrics, /healthz, /traces, and /debug/pprof. All
// entities share one registry, so a single multi-hop transfer shows up as
// one trace with spans from payer, owner, payee, and broker; the demo
// prints one such trace before exiting. Use -linger to keep the process
// (and the admin endpoint) alive after the demo for scraping.
//
// Usage:
//
//	whopayd -peers 4 -hops 3 -admin 127.0.0.1:9090 -linger 30s
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"whopay/internal/bus"
	"whopay/internal/bus/tcpbus"
	"whopay/internal/coin"
	"whopay/internal/core"
	"whopay/internal/dht"
	"whopay/internal/dht/replica"
	"whopay/internal/federation"
	"whopay/internal/obs"
	"whopay/internal/sig"
	"whopay/internal/wal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "whopayd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		numPeers = flag.Int("peers", 4, "number of peers (≥ 2)")
		hops     = flag.Int("hops", 3, "transfer hops for the demo coin (clamped to peers-1)")
		host     = flag.String("host", "127.0.0.1", "host/interface to bind")
		admin    = flag.String("admin", "", "serve the admin endpoint (/metrics, /healthz, /traces, pprof) on this address")
		linger   = flag.Duration("linger", 0, "keep the process alive this long after the demo (for scraping the admin endpoint)")
		gobWire  = flag.Bool("gob-wire", false, "force the legacy one-connection-per-call gob wire instead of the framed binary protocol")
		depBatch = flag.Int("deposit-batch", 0, "enable broker deposit batching with this flush size (0: off, the sequential path)")
		depLing  = flag.Duration("deposit-linger", 2*time.Millisecond, "how long the first deposit of a batch waits for company (with -deposit-batch)")
		chanPays = flag.Int("channel-pays", 12, "paywords streamed in the micropayment-channel demo (0: skip the demo)")
		shards   = flag.Int("shards", 1, "federate the trust root over this many broker shards (coin IDs partition by hash)")
		replicas = flag.Int("replicas", 1, "replicas per broker shard (WAL-streamed mirrors with lease failover)")
		leaseTTL = flag.Duration("lease-ttl", 500*time.Millisecond, "federation lease TTL — the worst-case leaderless window after a leader crash")
		fedKill  = flag.Bool("fed-kill", false, "federated demo: crash shard 0's leader after the demo, watch /healthz flip, and pay again post-failover")
		dhtNodes = flag.Int("dht-nodes", 0, "run the real-time double-spend DHT with this many replicated nodes; peers publish and watch bindings (0: the DHT-less demo)")
		dhtNWR   = flag.String("dht-nwr", "3/2/2", "DHT replication quorums as N/W/R — writes ack after W of N replicas, reads consult R (with -dht-nodes; see DESIGN.md §14)")
		dhtLease = flag.Duration("dht-lease", 150*time.Millisecond, "hot-coin lease TTL for the client-side read cache (with -dht-nodes)")
	)
	flag.Parse()
	if *numPeers < 2 {
		return fmt.Errorf("need at least 2 peers")
	}
	if *hops > *numPeers-1 {
		*hops = *numPeers - 1
	}
	if *hops < 1 {
		return fmt.Errorf("hops must be ≥ 1")
	}

	// Observability is opt-in: without -admin, reg stays nil and every
	// instrumentation hook below is a no-op.
	var reg *obs.Registry
	var adminSrv *obs.Server
	if *admin != "" {
		reg = obs.NewRegistry()
		srv, err := obs.Serve(*admin, reg)
		if err != nil {
			return fmt.Errorf("admin endpoint: %w", err)
		}
		defer srv.Close()
		adminSrv = srv
		fmt.Printf("admin endpoint on http://%s (/metrics /healthz /traces /debug/pprof)\n", srv.Addr())
	}

	core.RegisterWireTypes()
	topts := []tcpbus.Option{tcpbus.WithObs(reg)}
	if *gobWire {
		topts = append(topts, tcpbus.WithGobWire())
	}
	network := tcpbus.New(topts...)
	scheme := sig.ECDSA{}
	dir := core.NewDirectory()

	judge, err := core.NewJudge(scheme)
	if err != nil {
		return err
	}
	// The judge serves enrollment over TCP like everything else.
	judgeSrv, err := core.NewJudgeServer(network, bus.Address(*host+":0"), judge, scheme)
	if err != nil {
		return err
	}
	defer judgeSrv.Close()
	fmt.Printf("judge listening on %s\n", judgeSrv.Addr())

	// The replicated double-spend DHT (DESIGN.md §14). The cluster starts
	// before the trust root because brokers and peers need the node
	// addresses; the broker's key is trusted into the ring right after.
	var (
		dhtCl    *dht.Cluster
		dhtAddrs []bus.Address
		dhtRep   *replica.Config
	)
	if *dhtNodes > 0 {
		cfg, err := parseNWR(*dhtNWR)
		if err != nil {
			return fmt.Errorf("-dht-nwr: %w", err)
		}
		cfg.LeaseTTL = *dhtLease
		dhtRep = &cfg
		dhtCl, err = dht.NewClusterWithConfig(dht.ClusterConfig{
			Network:     network,
			Scheme:      scheme,
			Nodes:       *dhtNodes,
			AddrFor:     func(int) bus.Address { return bus.Address(*host + ":0") },
			Obs:         reg,
			Replication: dhtRep,
		})
		if err != nil {
			return err
		}
		defer dhtCl.Close()
		dhtAddrs = dhtCl.Addrs()
		norm := cfg.WithDefaults(*dhtNodes)
		fmt.Printf("dht: %d nodes, quorums %d/%d/%d, lease TTL %v\n",
			*dhtNodes, norm.N, norm.W, norm.R, *dhtLease)
		for i, a := range dhtAddrs {
			fmt.Printf("dht node %d listening on %s\n", i, a)
		}
	}

	var depositBatch *core.DepositBatchConfig
	if *depBatch > 0 {
		depositBatch = &core.DepositBatchConfig{MaxBatch: *depBatch, MaxLinger: *depLing}
	}

	// The trust root: a single broker, or a federated cluster of
	// WAL-replicated shards when -shards/-replicas federate it.
	var (
		broker     *core.Broker
		fed        *federation.Cluster
		brokerAddr bus.Address
		brokerPub  sig.PublicKey
		router     core.ShardRouter
		retry      *bus.RetryPolicy
	)
	if *shards > 1 || *replicas > 1 {
		federation.RegisterWireTypes()
		fedDir, err := os.MkdirTemp("", "whopayd-fed-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(fedDir)
		fed, err = federation.Start(federation.Config{
			Shards:   *shards,
			Replicas: *replicas,
			Network:  network,
			Broker: core.BrokerConfig{
				Scheme:         scheme,
				Directory:      dir,
				GroupPub:       judge.GroupPublicKey(),
				DepositBatch:   depositBatch,
				DHTNodes:       dhtAddrs,
				DHTReplication: dhtRep,
			},
			Wal:      wal.Config{Dir: fedDir, Policy: wal.FsyncNever},
			LeaseTTL: *leaseTTL,
			Obs:      reg,
			AddrFor:  func(int, int) bus.Address { return bus.Address(*host + ":0") },
		})
		if err != nil {
			return err
		}
		defer fed.Close()
		for s := 0; s < fed.Shards(); s++ {
			for r := 0; r < fed.Replicas(); r++ {
				role := "follower"
				if _, rep, ok := fed.LeaderBroker(s); ok && rep == r {
					role = "leader"
				}
				fmt.Printf("federation shard %d replica %d (%s) listening on %s\n",
					s, r, role, fed.Node(s, r).Addr())
			}
		}
		brokerAddr, _ = fed.Leader(0)
		brokerPub = fed.BrokerPub(0)
		router = fed
		// The retry budget must outlive a leaderless window so payments
		// issued into a failover ride redirects to the promoted follower.
		retry = &bus.RetryPolicy{
			MaxAttempts: 8,
			BaseDelay:   25 * time.Millisecond,
			MaxDelay:    2 * *leaseTTL,
			Factor:      2,
		}
		if reg != nil {
			reg.RegisterHealth("bus", func() (string, error) {
				addr, ok := fed.Leader(0)
				if !ok {
					return "", fmt.Errorf("shard 0 has no leader")
				}
				conn, err := net.DialTimeout("tcp", string(addr), time.Second)
				if err != nil {
					return "", fmt.Errorf("dial shard 0 leader: %w", err)
				}
				conn.Close()
				return fmt.Sprintf("shard 0 leader %s reachable", addr), nil
			})
		}
	} else {
		broker, err = core.NewBroker(core.BrokerConfig{
			Network:        network,
			Addr:           bus.Address(*host + ":0"),
			Scheme:         scheme,
			Directory:      dir,
			GroupPub:       judge.GroupPublicKey(),
			Obs:            reg,
			DepositBatch:   depositBatch,
			DHTNodes:       dhtAddrs,
			DHTReplication: dhtRep,
		})
		if err != nil {
			return err
		}
		defer broker.Close()
		brokerAddr = broker.BoundAddr()
		brokerPub = broker.PublicKey()
		fmt.Printf("broker listening on %s\n", brokerAddr)
		if reg != nil {
			// Bus liveness: the broker listener is the hub every payment
			// touches, so a bare TCP dial is a faithful "is the bus up" probe.
			reg.RegisterHealth("bus", func() (string, error) {
				conn, err := net.DialTimeout("tcp", string(brokerAddr), time.Second)
				if err != nil {
					return "", fmt.Errorf("dial broker: %w", err)
				}
				conn.Close()
				return fmt.Sprintf("broker listener %s reachable", brokerAddr), nil
			})
		}
	}
	// The ring accepts trusted-writer publishes (downtime operations) only
	// from the trust root's keys, which exist only now.
	if dhtCl != nil {
		if fed != nil {
			for s := 0; s < fed.Shards(); s++ {
				dhtCl.Trust(fed.BrokerPub(s))
			}
		} else {
			dhtCl.Trust(broker.PublicKey())
		}
	}

	// payoutBalance reads a payout reference's credit — on its home shard
	// under federation, on the one broker otherwise.
	payoutBalance := func(ref string) int64 {
		if fed == nil {
			return broker.Balance(ref)
		}
		var total int64
		for s := 0; s < fed.Shards(); s++ {
			if b, _, ok := fed.LeaderBroker(s); ok {
				total += b.Balance(ref)
			}
		}
		return total
	}

	peers := make([]*core.Peer, *numPeers)
	for i := range peers {
		id := fmt.Sprintf("peer-%d", i)
		p, err := core.NewPeer(core.PeerConfig{
			ID:         id,
			Network:    network,
			Addr:       bus.Address(*host + ":0"),
			Scheme:     scheme,
			Directory:  dir,
			BrokerAddr: brokerAddr,
			BrokerPub:  brokerPub,
			Router:     router,
			Retry:      retry,
			JudgeAddr:  judgeSrv.Addr(),
			CredPool:   8,
			Obs:        reg,

			DHTNodes:           dhtAddrs,
			DHTReplication:     dhtRep,
			PublishBindings:    dhtCl != nil,
			WatchHeldCoins:     dhtCl != nil,
			CheckPublicBinding: dhtCl != nil,
		})
		if err != nil {
			return err
		}
		defer p.Close()
		dir.Register(id, p.PublicKey(), p.BoundAddr())
		peers[i] = p
		fmt.Printf("%s listening on %s\n", id, p.BoundAddr())
	}

	start := time.Now()
	fmt.Println()
	fmt.Println("=== purchase + issue ===")
	id, err := peers[0].Purchase(10, false)
	if err != nil {
		return fmt.Errorf("purchase: %w", err)
	}
	fmt.Printf("peer-0 purchased coin %s (value 10)\n", id)
	if err := peers[0].IssueTo(peers[1].BoundAddr(), id); err != nil {
		return fmt.Errorf("issue: %w", err)
	}
	fmt.Println("peer-0 issued the coin to peer-1 (payee stays anonymous)")

	fmt.Println()
	fmt.Println("=== anonymous multi-hop transfers via the owner ===")
	for h := 0; h < *hops; h++ {
		from := peers[1+h%(*numPeers-1)]
		to := peers[1+(h+1)%(*numPeers-1)]
		if from == to {
			continue
		}
		if err := from.TransferTo(to.BoundAddr(), id); err != nil {
			return fmt.Errorf("hop %d: %w", h, err)
		}
		fmt.Printf("hop %d: %s -> %s (owner peer-0 serviced it; identities hidden)\n", h+1, from.ID(), to.ID())
	}

	holder := currentHolder(peers, id)
	fmt.Println()
	fmt.Println("=== renewal via owner ===")
	if _, err := holder.Renew(id); err != nil {
		return fmt.Errorf("renew: %w", err)
	}
	fmt.Printf("%s renewed the coin through the owner\n", holder.ID())

	fmt.Println()
	fmt.Println("=== downtime operation via broker ===")
	peers[0].GoOffline()
	// Over TCP "offline" means the listener is really gone.
	if err := peers[0].Close(); err != nil {
		return err
	}
	fmt.Println("peer-0 (the owner) went offline")
	target := peers[*numPeers-1]
	if target == holder {
		target = peers[1]
	}
	if target == holder {
		// Two-peer deployment: the holder has nobody to pay, so exercise
		// the other downtime path — a renewal through the broker.
		if err := holder.RenewViaBroker(id); err != nil {
			return fmt.Errorf("downtime renewal: %w", err)
		}
		fmt.Printf("%s renewed the coin through the broker (owner offline)\n", holder.ID())
	} else {
		if err := holder.TransferViaBroker(target.BoundAddr(), id); err != nil {
			return fmt.Errorf("downtime transfer: %w", err)
		}
		fmt.Printf("%s paid %s through the broker\n", holder.ID(), target.ID())
		holder = target
	}

	fmt.Println()
	fmt.Println("=== deposit ===")
	if err := holder.Deposit(id, "demo-payout"); err != nil {
		return fmt.Errorf("deposit: %w", err)
	}
	fmt.Printf("%s deposited the coin; broker credited payout ref 'demo-payout' with %d\n",
		holder.ID(), payoutBalance("demo-payout"))

	if *chanPays > 0 && *numPeers >= 3 {
		fmt.Println()
		fmt.Println("=== micropayment channel ===")
		payer, vendor := peers[1], peers[*numPeers-1]
		root, err := payer.OpenChannel(vendor.BoundAddr(), core.ChannelOptions{
			Capacity: *chanPays + 1,
		})
		if err != nil {
			return fmt.Errorf("channel open: %w", err)
		}
		fmt.Printf("%s opened a %d-unit channel to %s (a PayWord chain under a fresh keypair)\n",
			payer.ID(), *chanPays+1, vendor.ID())
		for i := 0; i < *chanPays; i++ {
			if _, err := payer.ChannelPay(root); err != nil {
				return fmt.Errorf("channel pay %d: %w", i, err)
			}
		}
		owed, _, _ := payer.ChannelBalance(root)
		fmt.Printf("%s streamed %d paywords — hash checks only, no signatures, no broker; the vendor is owed %d\n",
			payer.ID(), *chanPays, owed)
		settled, err := payer.CloseChannel(root)
		if err != nil {
			return fmt.Errorf("channel close: %w", err)
		}
		fmt.Printf("channel closed: %d units settled in one WhoPay payment to %s\n", settled, vendor.ID())
	}

	if fed != nil && *fedKill {
		fmt.Println()
		fmt.Println("=== shard leader failover ===")
		killedRep, err := fed.KillLeader(0)
		if err != nil {
			return err
		}
		fmt.Printf("crashed shard 0 leader (replica %d); the %s lease TTL must expire before a mirror can promote\n",
			killedRep, *leaseTTL)
		if adminSrv != nil {
			if !awaitHealth(adminSrv.Addr(), false, 10*time.Second) {
				return fmt.Errorf("/healthz never flipped unhealthy after the leader kill")
			}
			fmt.Println("/healthz flipped unhealthy: shard 0 is leaderless")
		}
		rep, err := fed.WaitLeader(0, 15*time.Second)
		if err != nil {
			return err
		}
		fmt.Printf("shard 0 failed over to replica %d, recovered from its mirrored journal (same signing key)\n", rep)
		if adminSrv != nil {
			if !awaitHealth(adminSrv.Addr(), true, 15*time.Second) {
				return fmt.Errorf("/healthz never recovered after the failover")
			}
			fmt.Println("/healthz healthy again: the promoted follower is serving")
		}
		// A full payment against the recovered shard: purchase until a coin
		// homes on shard 0 (IDs hash-partition), then redeem it there.
		survivor := peers[1]
		const ref = "post-failover-payout"
		var onShard0 coin.ID
		for try := 0; try < 32 && onShard0 == ""; try++ {
			cid, err := survivor.Purchase(1, false)
			if err != nil {
				return fmt.Errorf("post-failover purchase: %w", err)
			}
			if err := survivor.IssueTo(survivor.BoundAddr(), cid); err != nil {
				return fmt.Errorf("post-failover issue: %w", err)
			}
			if err := survivor.Deposit(cid, ref); err != nil {
				return fmt.Errorf("post-failover deposit: %w", err)
			}
			if core.ShardOfKey(string(cid), fed.Shards()) == 0 {
				onShard0 = cid
			}
		}
		if onShard0 == "" {
			return fmt.Errorf("no purchase homed on shard 0 in 32 tries")
		}
		fmt.Printf("post-failover transfer complete: coin %s redeemed on the recovered shard, payout ref credited %d\n",
			onShard0, payoutBalance(ref))
	}

	fmt.Println()
	if broker != nil {
		fmt.Printf("broker ops: %s\n", opsString(broker.Ops()))
	} else {
		for s := 0; s < fed.Shards(); s++ {
			if b, rep, ok := fed.LeaderBroker(s); ok {
				fmt.Printf("shard %d ops (leader replica %d): %s\n", s, rep, opsString(b.Ops()))
			}
		}
	}
	fmt.Printf("owner ops:  %s\n", opsString(peers[0].Ops()))
	if dhtCl != nil {
		var hits, misses, stale, repaired uint64
		for _, p := range peers {
			h, m, s, r := p.DHTLeaseStats()
			hits, misses, stale, repaired = hits+h, misses+m, stale+s, repaired+r
		}
		fmt.Printf("dht: lease hits=%d misses=%d stale-reads=%d read-repairs=%d, replica divergence=%d\n",
			hits, misses, stale, repaired, dhtCl.Divergence())
	}
	fmt.Printf("done in %v over real TCP\n", time.Since(start).Round(time.Millisecond))

	if reg != nil {
		printSampleTrace(reg.Tracer())
		fmt.Printf("\nadmin endpoint still serving on http://%s\n", adminSrv.Addr())
	}
	if *linger > 0 {
		fmt.Printf("lingering for %v...\n", *linger)
		time.Sleep(*linger)
	}
	return nil
}

// printSampleTrace picks the demo's most interesting trace — preferring a
// multi-hop transfer — and prints its span tree, showing one trace ID
// stitched across payer, owner/broker, and payee over real sockets.
func printSampleTrace(tr *obs.Tracer) {
	spans := tr.Spans()
	traceID := ""
	for _, want := range []string{"transfer", "downtime-transfer", "downtime-renewal", "deposit"} {
		for i := len(spans) - 1; i >= 0; i-- {
			if spans[i].Op == want {
				traceID = spans[i].TraceID
				break
			}
		}
		if traceID != "" {
			break
		}
	}
	if traceID == "" && len(spans) > 0 {
		traceID = spans[len(spans)-1].TraceID
	}
	if traceID == "" {
		return
	}
	recs := tr.Trace(traceID)
	fmt.Printf("\n=== sample trace %s (%d spans) ===\n", traceID, len(recs))
	inTrace := make(map[string]bool, len(recs))
	for _, r := range recs {
		inTrace[r.SpanID] = true
	}
	children := make(map[string][]obs.SpanRecord)
	var roots []obs.SpanRecord
	for _, r := range recs {
		if r.ParentID != "" && inTrace[r.ParentID] {
			children[r.ParentID] = append(children[r.ParentID], r)
		} else {
			roots = append(roots, r)
		}
	}
	var walk func(r obs.SpanRecord, depth int)
	walk = func(r obs.SpanRecord, depth int) {
		for i := 0; i < depth; i++ {
			fmt.Print("  ")
		}
		line := fmt.Sprintf("%s %s", r.Entity, r.Op)
		fmt.Printf("%-40s %v\n", line, r.Duration.Round(time.Microsecond))
		kids := children[r.SpanID]
		sort.Slice(kids, func(i, j int) bool { return kids[i].Start.Before(kids[j].Start) })
		for _, kid := range kids {
			walk(kid, depth+1)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Start.Before(roots[j].Start) })
	for _, r := range roots {
		walk(r, 0)
	}
}

// awaitHealth polls the admin endpoint's /healthz until its overall verdict
// matches wantHealthy or the timeout passes. The demo uses it to show the
// endpoint flipping unhealthy while a shard is leaderless and back once a
// follower promotes.
func awaitHealth(adminAddr string, wantHealthy bool, timeout time.Duration) bool {
	want := `"healthy":false`
	if wantHealthy {
		want = `"healthy":true`
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + adminAddr + "/healthz")
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if strings.Contains(string(body), want) {
				return true
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	return false
}

// parseNWR parses a "N/W/R" quorum triple ("3/2/2"). Values are validated
// and clamped against the actual node count by replica.WithDefaults.
func parseNWR(s string) (replica.Config, error) {
	parts := strings.Split(s, "/")
	if len(parts) != 3 {
		return replica.Config{}, fmt.Errorf("want N/W/R, got %q", s)
	}
	var vals [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return replica.Config{}, fmt.Errorf("bad quorum %q in %q", p, s)
		}
		vals[i] = v
	}
	return replica.Config{N: vals[0], W: vals[1], R: vals[2]}, nil
}

// currentHolder finds who holds the coin now.
func currentHolder(peers []*core.Peer, id coin.ID) *core.Peer {
	for _, p := range peers {
		for _, held := range p.HeldCoins() {
			if held == id {
				return p
			}
		}
	}
	return peers[1]
}

func opsString(ops core.OpCounts) string {
	out := ""
	for op := core.Op(0); op < core.NumOps; op++ {
		if n := ops.Get(op); n > 0 {
			out += fmt.Sprintf("%s=%d ", op, n)
		}
	}
	if out == "" {
		return "(none)"
	}
	return out
}
