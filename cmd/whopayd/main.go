// Command whopayd runs a WhoPay deployment over real TCP sockets: a broker,
// a judge, a DHT-less directory, and a configurable number of peers, then
// drives a demonstration payment scenario end to end — purchase, issue,
// multi-hop anonymous transfers, a renewal, a downtime transfer through the
// broker after an owner "disconnects", and a final deposit.
//
// All traffic — payments AND judge enrollment — crosses real sockets with
// gob framing under ECDSA P-256 signatures. Only the identity directory is
// shared in-process configuration (the PKI of the paper's model). Note the
// enrollment responses carry credential private keys: production transports
// must add TLS.
//
// Usage:
//
//	whopayd -peers 4 -hops 3
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"whopay/internal/bus"
	"whopay/internal/bus/tcpbus"
	"whopay/internal/coin"
	"whopay/internal/core"
	"whopay/internal/sig"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "whopayd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		numPeers = flag.Int("peers", 4, "number of peers (≥ 3)")
		hops     = flag.Int("hops", 3, "transfer hops for the demo coin")
		host     = flag.String("host", "127.0.0.1", "host/interface to bind")
	)
	flag.Parse()
	if *numPeers < 3 {
		return fmt.Errorf("need at least 3 peers")
	}
	if *hops < 1 || *hops > *numPeers-1 {
		return fmt.Errorf("hops must be in [1, peers-1]")
	}

	core.RegisterWireTypes()
	network := tcpbus.New()
	scheme := sig.ECDSA{}
	dir := core.NewDirectory()

	judge, err := core.NewJudge(scheme)
	if err != nil {
		return err
	}
	// The judge serves enrollment over TCP like everything else.
	judgeSrv, err := core.NewJudgeServer(network, bus.Address(*host+":0"), judge, scheme)
	if err != nil {
		return err
	}
	defer judgeSrv.Close()
	fmt.Printf("judge listening on %s\n", judgeSrv.Addr())

	broker, err := core.NewBroker(core.BrokerConfig{
		Network:   network,
		Addr:      bus.Address(*host + ":0"),
		Scheme:    scheme,
		Directory: dir,
		GroupPub:  judge.GroupPublicKey(),
	})
	if err != nil {
		return err
	}
	defer broker.Close()
	brokerAddr := broker.BoundAddr()
	fmt.Printf("broker listening on %s\n", brokerAddr)

	peers := make([]*core.Peer, *numPeers)
	for i := range peers {
		id := fmt.Sprintf("peer-%d", i)
		p, err := core.NewPeer(core.PeerConfig{
			ID:         id,
			Network:    network,
			Addr:       bus.Address(*host + ":0"),
			Scheme:     scheme,
			Directory:  dir,
			BrokerAddr: brokerAddr,
			BrokerPub:  broker.PublicKey(),
			JudgeAddr:  judgeSrv.Addr(),
			CredPool:   8,
		})
		if err != nil {
			return err
		}
		defer p.Close()
		dir.Register(id, p.PublicKey(), p.BoundAddr())
		peers[i] = p
		fmt.Printf("%s listening on %s\n", id, p.BoundAddr())
	}

	start := time.Now()
	fmt.Println()
	fmt.Println("=== purchase + issue ===")
	id, err := peers[0].Purchase(10, false)
	if err != nil {
		return fmt.Errorf("purchase: %w", err)
	}
	fmt.Printf("peer-0 purchased coin %s (value 10)\n", id)
	if err := peers[0].IssueTo(peers[1].BoundAddr(), id); err != nil {
		return fmt.Errorf("issue: %w", err)
	}
	fmt.Println("peer-0 issued the coin to peer-1 (payee stays anonymous)")

	fmt.Println()
	fmt.Println("=== anonymous multi-hop transfers via the owner ===")
	for h := 0; h < *hops; h++ {
		from := peers[1+h%(*numPeers-1)]
		to := peers[1+(h+1)%(*numPeers-1)]
		if from == to {
			continue
		}
		if err := from.TransferTo(to.BoundAddr(), id); err != nil {
			return fmt.Errorf("hop %d: %w", h, err)
		}
		fmt.Printf("hop %d: %s -> %s (owner peer-0 serviced it; identities hidden)\n", h+1, from.ID(), to.ID())
	}

	holder := currentHolder(peers, id)
	fmt.Println()
	fmt.Println("=== renewal via owner ===")
	if _, err := holder.Renew(id); err != nil {
		return fmt.Errorf("renew: %w", err)
	}
	fmt.Printf("%s renewed the coin through the owner\n", holder.ID())

	fmt.Println()
	fmt.Println("=== downtime transfer via broker ===")
	peers[0].GoOffline()
	// Over TCP "offline" means the listener is really gone.
	if err := peers[0].Close(); err != nil {
		return err
	}
	fmt.Println("peer-0 (the owner) went offline")
	target := peers[*numPeers-1]
	if target == holder {
		target = peers[1]
	}
	if err := holder.TransferViaBroker(target.BoundAddr(), id); err != nil {
		return fmt.Errorf("downtime transfer: %w", err)
	}
	fmt.Printf("%s paid %s through the broker\n", holder.ID(), target.ID())

	fmt.Println()
	fmt.Println("=== deposit ===")
	if err := target.Deposit(id, "demo-payout"); err != nil {
		return fmt.Errorf("deposit: %w", err)
	}
	fmt.Printf("%s deposited the coin; broker credited payout ref 'demo-payout' with %d\n",
		target.ID(), broker.Balance("demo-payout"))

	fmt.Println()
	fmt.Printf("broker ops: %s\n", opsString(broker.Ops()))
	fmt.Printf("owner ops:  %s\n", opsString(peers[0].Ops()))
	fmt.Printf("done in %v over real TCP\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// currentHolder finds who holds the coin now.
func currentHolder(peers []*core.Peer, id coin.ID) *core.Peer {
	for _, p := range peers {
		for _, held := range p.HeldCoins() {
			if held == id {
				return p
			}
		}
	}
	return peers[1]
}

func opsString(ops core.OpCounts) string {
	out := ""
	for op := core.Op(0); op < core.NumOps; op++ {
		if n := ops.Get(op); n > 0 {
			out += fmt.Sprintf("%s=%d ", op, n)
		}
	}
	if out == "" {
		return "(none)"
	}
	return out
}
