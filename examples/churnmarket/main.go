// Churnmarket: a small marketplace under peer churn, exercising everything
// the paper's downtime machinery exists for — transfers and renewals via
// the broker while owners sleep, proactive synchronization on rejoin, lazy
// synchronization driven by public-binding-list checks, and the watchers
// that keep real-time double-spending detection alive through it all.
//
// Run: go run ./examples/churnmarket
package main

import (
	"fmt"
	"log"
	"math/rand"

	"whopay"
)

const (
	numPeers = 8
	rounds   = 120
)

func main() {
	scheme := whopay.Ed25519()
	net := whopay.NewMemoryNetwork()
	judge, err := whopay.NewJudge(scheme)
	if err != nil {
		log.Fatal(err)
	}
	dir := whopay.NewDirectory()
	broker, err := whopay.NewBroker(whopay.BrokerConfig{
		Network: net, Scheme: scheme, Directory: dir,
		GroupPub: judge.GroupPublicKey(), DHTNodes: dhtAddrs(4),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer broker.Close()
	cluster, err := whopay.NewDHTCluster(net, scheme, 4, 2, broker.PublicKey())
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	peers := make([]*whopay.Peer, numPeers)
	online := make([]bool, numPeers)
	for i := range peers {
		mode := whopay.SyncProactive
		if i%2 == 1 {
			mode = whopay.SyncLazy // odd peers reconcile lazily
		}
		p, err := whopay.NewPeer(whopay.PeerConfig{
			ID:      fmt.Sprintf("trader-%d", i),
			Network: net, Scheme: scheme, Directory: dir,
			BrokerAddr: broker.Addr(), BrokerPub: broker.PublicKey(), Judge: judge,
			DHTNodes: cluster.Addrs(), PublishBindings: true,
			WatchHeldCoins: true, CheckPublicBinding: true,
			SyncMode: mode, Prober: net, Presence: net,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer p.Close()
		peers[i] = p
		online[i] = true
	}

	rng := rand.New(rand.NewSource(99))
	payments, failures := 0, 0
	for round := 0; round < rounds; round++ {
		// Churn: each round one random peer flips availability.
		flip := rng.Intn(numPeers)
		if online[flip] {
			peers[flip].GoOffline()
			online[flip] = false
		} else {
			if err := peers[flip].GoOnline(); err != nil {
				log.Fatal(err)
			}
			online[flip] = true
		}

		// Trades: a few random payments among online peers.
		for t := 0; t < 3; t++ {
			payer := rng.Intn(numPeers)
			payee := rng.Intn(numPeers)
			if payer == payee || !online[payer] || !online[payee] {
				continue
			}
			if _, err := peers[payer].Pay(peers[payee].Addr(), 1, whopay.PolicyI); err != nil {
				failures++
				continue
			}
			payments++
		}
	}
	for i := range peers {
		if !online[i] {
			if err := peers[i].GoOnline(); err != nil {
				log.Fatal(err)
			}
		}
	}

	fmt.Printf("marketplace ran %d rounds with churn: %d payments, %d failures\n\n", rounds, payments, failures)
	var totals whopay.OpCounts
	for _, p := range peers {
		totals = totals.Add(p.Ops())
	}
	fmt.Println("aggregate peer operations:")
	printOps(totals)
	fmt.Println("\nbroker operations (note how little reaches it):")
	printOps(broker.Ops())

	alerts := 0
	for _, p := range peers {
		alerts += len(p.Alerts())
	}
	fmt.Printf("\nfalse double-spend alarms under churn: %d (watchers stayed quiet — no fraud happened)\n", alerts)
	fmt.Printf("broker handled %.1f%% of all operations; the peers did the rest\n",
		100*float64(broker.Ops().Total())/float64(totals.Total()+broker.Ops().Total()))
}

func printOps(ops whopay.OpCounts) {
	for op := whopay.Op(0); op < 10; op++ {
		if n := ops.Get(op); n > 0 {
			fmt.Printf("  %-20s %6d\n", op.String(), n)
		}
	}
}

func dhtAddrs(n int) []whopay.Address {
	out := make([]whopay.Address, n)
	for i := range out {
		out[i] = whopay.Address(fmt.Sprintf("dht:%d", i))
	}
	return out
}
