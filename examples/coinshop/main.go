// Coinshop: the paper's issuer-anonymity extensions (Section 5.2) —
// approach two, coin shops ("peers do not own, and hence never issue coins
// ... peers spend coins only using the transfer procedure, which is
// anonymous"), and approach three, owner-anonymous coins reached through an
// i3-style indirection layer so not even coin ownership is exposed.
//
// Run: go run ./examples/coinshop
package main

import (
	"fmt"
	"log"

	"whopay"
)

func main() {
	scheme := whopay.ECDSA()
	net := whopay.NewMemoryNetwork()
	judge, err := whopay.NewJudge(scheme)
	if err != nil {
		log.Fatal(err)
	}
	dir := whopay.NewDirectory()
	broker, err := whopay.NewBroker(whopay.BrokerConfig{
		Network: net, Scheme: scheme, Directory: dir, GroupPub: judge.GroupPublicKey(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer broker.Close()

	// Two indirection servers shard the anonymous-owner handles.
	for i := 0; i < 2; i++ {
		srv, err := whopay.NewIndirectServer(net, whopay.Address(fmt.Sprintf("i3:%d", i)), scheme)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
	}
	indirAddrs := []whopay.Address{"i3:0", "i3:1"}

	newPeer := func(id string) *whopay.Peer {
		p, err := whopay.NewPeer(whopay.PeerConfig{
			ID: id, Network: net, Scheme: scheme, Directory: dir,
			BrokerAddr: broker.Addr(), BrokerPub: broker.PublicKey(), Judge: judge,
			IndirectServers: indirAddrs, Prober: net, Presence: net,
		})
		if err != nil {
			log.Fatal(err)
		}
		return p
	}

	fmt.Println("== Approach 2: coin shops ==")
	shopPeer := newPeer("acme-coins")
	defer shopPeer.Close()
	shop := whopay.NewShop(shopPeer, 2)
	if err := shop.Stock(10, 1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the shop stocked %d coins (it is in this business for profit, not privacy)\n", shop.Inventory(1))

	alice := newPeer("alice")
	bob := newPeer("bob")
	carol := newPeer("carol")
	defer alice.Close()
	defer bob.Close()
	defer carol.Close()

	// Customers buy from the shop (the only identified interaction), then
	// every subsequent spend is an anonymous transfer.
	for _, customer := range []*whopay.Peer{alice, bob} {
		for i := 0; i < 2; i++ {
			if _, err := shop.Vend(customer.Addr(), 1); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Println("alice and bob bought 2 coins each from the shop")

	for _, hop := range []struct {
		from *whopay.Peer
		to   *whopay.Peer
	}{{alice, carol}, {bob, carol}, {carol, alice}} {
		method, err := hop.from.Pay(hop.to.Addr(), 1, whopay.PolicyIII)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s paid %s: %v (the shop serviced it; nobody's identity crossed the wire)\n",
			hop.from.ID(), hop.to.ID(), method)
	}
	fmt.Printf("the shop serviced %d transfers of its coins\n\n", shop.Ops().Get(whopay.OpTransfer))

	fmt.Println("== Approach 3: owner-anonymous coins over the indirection layer ==")
	dave := newPeer("dave")
	erin := newPeer("erin")
	defer dave.Close()
	defer erin.Close()

	id, err := dave.Purchase(1, true) // anonymous purchase: no owner in the coin
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dave purchased owner-anonymous coin %s — it names a handle, not dave\n", id)
	if err := dave.IssueTo(erin.Addr(), id); err != nil {
		log.Fatal(err)
	}
	fmt.Println("dave issued it to erin, proving ownership with the coin key and a group signature")
	if err := erin.TransferTo(alice.Addr(), id); err != nil {
		log.Fatal(err)
	}
	fmt.Println("erin paid alice: the transfer request traveled through the i3 servers to the hidden owner")
	fmt.Printf("dave (unknowably) serviced %d transfer(s)\n", dave.Ops().Get(whopay.OpTransfer))
	if err := alice.Deposit(id, "alice-ref"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice deposited it; broker credited %d without learning the chain of hands\n",
		broker.Balance("alice-ref"))
}
