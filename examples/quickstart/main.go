// Quickstart: the full WhoPay coin lifecycle from the paper's Figure 1 —
// purchase, issue, anonymous transfer via the owner, deposit — followed by
// a double-spend attempt that the real-time detection machinery catches and
// the judge resolves by opening a group signature.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"whopay"
)

func main() {
	scheme := whopay.ECDSA()
	net := whopay.NewMemoryNetwork()

	// Trusted infrastructure: the judge (fairness), the directory (PKI),
	// the broker (mint), and the DHT (public binding list).
	judge, err := whopay.NewJudge(scheme)
	if err != nil {
		log.Fatal(err)
	}
	dir := whopay.NewDirectory()
	broker, err := whopay.NewBroker(whopay.BrokerConfig{
		Network:   net,
		Scheme:    scheme,
		Directory: dir,
		GroupPub:  judge.GroupPublicKey(),
		DHTNodes:  dhtAddrs(4),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer broker.Close()
	cluster, err := whopay.NewDHTCluster(net, scheme, 4, 2, broker.PublicKey())
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	newPeer := func(id string) *whopay.Peer {
		p, err := whopay.NewPeer(whopay.PeerConfig{
			ID:                 id,
			Network:            net,
			Scheme:             scheme,
			Directory:          dir,
			BrokerAddr:         broker.Addr(),
			BrokerPub:          broker.PublicKey(),
			Judge:              judge,
			DHTNodes:           cluster.Addrs(),
			PublishBindings:    true,
			WatchHeldCoins:     true,
			CheckPublicBinding: true,
			Prober:             net,
			Presence:           net,
		})
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	alice := newPeer("alice")
	bob := newPeer("bob")
	carol := newPeer("carol")
	defer alice.Close()
	defer bob.Close()
	defer carol.Close()

	fmt.Println("== The coin lifecycle (paper Figure 1) ==")
	id, err := alice.Purchase(1, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1. alice purchased coin %s from the broker\n", id)
	if err := alice.IssueTo(bob.Addr(), id); err != nil {
		log.Fatal(err)
	}
	fmt.Println("2. alice issued it to bob — bob's holdership is a fresh one-time key, invisible to everyone")
	if err := bob.TransferTo(carol.Addr(), id); err != nil {
		log.Fatal(err)
	}
	fmt.Println("3. bob transferred it to carol through alice (the owner) — alice cannot tell who paid whom")
	if err := carol.Deposit(id, "carols-payout-ref"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4. carol deposited it anonymously; broker credited the payout ref: %d unit(s)\n\n",
		broker.Balance("carols-payout-ref"))

	fmt.Println("== Double spending: detected in real time, punished fairly ==")
	id2, err := alice.Purchase(1, false)
	if err != nil {
		log.Fatal(err)
	}
	if err := alice.IssueTo(bob.Addr(), id2); err != nil {
		log.Fatal(err)
	}
	fmt.Println("alice issued a second coin to bob ...")

	// Alice turns rogue: she signs a conflicting binding moving bob's
	// coin to an accomplice and publishes it to the public binding list.
	accomplice, err := whopay.ECDSA().GenerateKey()
	if err != nil {
		log.Fatal(err)
	}
	ob, _ := alice.OwnerBinding(id2)
	forged, err := alice.ForgeRebind(id2, accomplice.Public, ob.Seq+1)
	if err != nil {
		log.Fatal(err)
	}
	if err := alice.PublishForgedBinding(id2, forged); err != nil {
		log.Fatal(err)
	}
	fmt.Println("... then she re-bound it to an accomplice behind bob's back!")

	for _, alert := range bob.Alerts() {
		fmt.Printf("bob's DHT watch fired: coin %s re-bound without consent\n", alert.CoinID)
		fmt.Printf("broker verdict after the audit-trail dispute: %s\n", alert.Verdict)
	}
	if broker.Frozen("alice") {
		fmt.Println("alice is frozen: no further purchases for the double spender")
	}
	for _, c := range broker.FraudCases() {
		fmt.Printf("fraud case #%d (%s): %s\n", c.ID, c.Kind, c.Verdict)
	}
}

func dhtAddrs(n int) []whopay.Address {
	out := make([]whopay.Address, n)
	for i := range out {
		out[i] = whopay.Address(fmt.Sprintf("dht:%d", i))
	}
	return out
}
