// Offlinepay: the paper's Section 7 "layered coins" extension — paying
// while BOTH the coin's owner and the broker are unreachable, by appending
// holder-signed layers to the coin. The run then demonstrates the two
// trade-offs the paper calls out: coins grow with every hop, and an
// offline double-spend fork is only caught at redemption — where the
// judge-openable layer signatures identify the cheater.
//
// Run: go run ./examples/offlinepay
package main

import (
	"fmt"
	"log"

	"whopay"
)

func main() {
	scheme := whopay.ECDSA()
	net := whopay.NewMemoryNetwork()
	judge, err := whopay.NewJudge(scheme)
	if err != nil {
		log.Fatal(err)
	}
	dir := whopay.NewDirectory()
	broker, err := whopay.NewBroker(whopay.BrokerConfig{
		Network: net, Scheme: scheme, Directory: dir, GroupPub: judge.GroupPublicKey(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer broker.Close()
	newPeer := func(id string) *whopay.Peer {
		p, err := whopay.NewPeer(whopay.PeerConfig{
			ID: id, Network: net, Scheme: scheme, Directory: dir,
			BrokerAddr: broker.Addr(), BrokerPub: broker.PublicKey(), Judge: judge,
		})
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	owner := newPeer("owner")
	alice := newPeer("alice")
	bob := newPeer("bob")
	carol := newPeer("carol")
	defer owner.Close()
	defer alice.Close()
	defer bob.Close()
	defer carol.Close()

	id, err := owner.Purchase(1, false)
	if err != nil {
		log.Fatal(err)
	}
	if err := owner.IssueTo(alice.Addr(), id); err != nil {
		log.Fatal(err)
	}
	fmt.Println("alice received a coin; now the owner AND the broker become unreachable ...")
	owner.GoOffline()

	// Alice converts her held coin into a layered coin: from here on, the
	// chain itself is the money and hops need no network at all.
	lc, aliceKeys, err := alice.ExportLayered(id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("layered coin exported: %d bytes, 0 layers\n", lc.Size())

	bobKeys, err := scheme.GenerateKey()
	if err != nil {
		log.Fatal(err)
	}
	lc, err = whopay.LayeredHop(alice.Suite(), lc, aliceKeys.Private, alice.GroupMember(), bobKeys.Public, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice -> bob offline: %d bytes, 1 layer (the growth the paper warns about)\n", lc.Size())

	carolKeys, err := scheme.GenerateKey()
	if err != nil {
		log.Fatal(err)
	}
	forkCarol, err := whopay.LayeredHop(bob.Suite(), lc, bobKeys.Private, bob.GroupMember(), carolKeys.Public, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bob -> carol offline: %d bytes, 2 layers\n", forkCarol.Size())

	// Bob cheats: he forks the chain and 'pays' a rival with the same
	// coin. Offline, nothing can stop him — both chains verify.
	rivalKeys, err := scheme.GenerateKey()
	if err != nil {
		log.Fatal(err)
	}
	forkRival, err := whopay.LayeredHop(bob.Suite(), lc, bobKeys.Private, bob.GroupMember(), rivalKeys.Public, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bob double-spends offline: a second fork of the same coin — undetectable until redemption")

	// Back online: carol redeems first.
	if err := carol.DepositLayered(forkCarol, carolKeys.Private, "carol-ref"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("carol redeemed her fork: broker credited %d\n", broker.Balance("carol-ref"))

	// The rival's fork bounces, and the evidence identifies bob.
	if err := carol.DepositLayered(forkRival, rivalKeys.Private, "rival-ref"); err != nil {
		fmt.Printf("rival's fork rejected: %v\n", err)
	}
	for _, c := range broker.FraudCases() {
		fmt.Printf("fraud case #%d (%s): %s\n", c.ID, c.Kind, c.Verdict)
		for _, pair := range c.GroupSigs {
			msg := pair[0].([]byte)
			gs := pair[1].(whopay.GroupSignature)
			if identity, err := judge.Open(msg, gs); err == nil {
				fmt.Printf("  judge opened a layer signature: signed by %q\n", identity)
			}
		}
	}
}
