// Filesharing: the paper's motivating application — "a pay-per-download
// file sharing system, where a virtual payment system is used to encourage
// fair sharing of resources among peers and discourage free riders"
// (Section 1) — combined with the Section 7 extension: PayWord hash chains
// aggregate many per-chunk micropayments into a few WhoPay settlements
// ("each pair of users maintains a soft credit window between themselves
// and only makes payments when this window reaches a threshold value").
//
// Leechers pay seeders one payword per 64 KiB chunk; when a seeder's credit
// window hits the threshold, the aggregate is settled with one real WhoPay
// payment. The run prints how many micropayments collapsed into how many
// coin transfers.
//
// Run: go run ./examples/filesharing
package main

import (
	"fmt"
	"log"

	"whopay"
)

const (
	fileChunks     = 48  // chunks per file
	chainLength    = 200 // paywords per chain (credit ceiling per pair)
	settleEvery    = 25  // credit window: settle after this many units
	numLeechers    = 3
	filesPerLeech  = 2
	coinValueUnits = settleEvery
)

type seeder struct {
	peer    *whopay.Peer
	suite   whopay.Suite
	vendors map[string]*whopay.PayWordVendor // per leecher
	settled int
	chunks  int
}

type leecher struct {
	name   string
	peer   *whopay.Peer
	suite  whopay.Suite
	keys   whopay.KeyPair
	chains map[string]*whopay.PayWordChain // per seeder
	micro  int
}

func main() {
	scheme := whopay.ECDSA()
	net := whopay.NewMemoryNetwork()
	judge, err := whopay.NewJudge(scheme)
	if err != nil {
		log.Fatal(err)
	}
	dir := whopay.NewDirectory()
	broker, err := whopay.NewBroker(whopay.BrokerConfig{
		Network: net, Scheme: scheme, Directory: dir, GroupPub: judge.GroupPublicKey(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer broker.Close()

	newPeer := func(id string) *whopay.Peer {
		p, err := whopay.NewPeer(whopay.PeerConfig{
			ID: id, Network: net, Scheme: scheme, Directory: dir,
			BrokerAddr: broker.Addr(), BrokerPub: broker.PublicKey(), Judge: judge,
			Prober: net, Presence: net,
		})
		if err != nil {
			log.Fatal(err)
		}
		return p
	}

	suite := whopay.Suite{Scheme: scheme}
	seed := &seeder{peer: newPeer("seeder"), suite: suite, vendors: map[string]*whopay.PayWordVendor{}}
	defer seed.peer.Close()

	leechers := make([]*leecher, numLeechers)
	for i := range leechers {
		name := fmt.Sprintf("leecher-%d", i)
		keys, err := scheme.GenerateKey()
		if err != nil {
			log.Fatal(err)
		}
		leechers[i] = &leecher{
			name: name, peer: newPeer(name), suite: suite, keys: keys,
			chains: map[string]*whopay.PayWordChain{},
		}
		defer leechers[i].peer.Close()
	}

	fmt.Printf("swarm: 1 seeder, %d leechers; %d chunks per file; 1 payword per chunk; settle every %d units\n\n",
		numLeechers, fileChunks, settleEvery)

	for _, l := range leechers {
		for f := 0; f < filesPerLeech; f++ {
			if err := download(l, seed); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Final settlement of outstanding windows.
	for _, l := range leechers {
		v := seed.vendors[l.name]
		if v == nil {
			continue
		}
		outstanding := v.Owed() % settleEvery
		if outstanding > 0 {
			fmt.Printf("%s: %d units below the window stay unsettled (soft credit)\n", l.name, outstanding)
		}
	}

	fmt.Println()
	fmt.Printf("micropayments made:    %d paywords (hash operations only)\n", seed.chunks)
	fmt.Printf("WhoPay settlements:    %d coin payments of %d units each\n", seed.settled, coinValueUnits)
	fmt.Printf("settlement reduction:  %.0fx fewer payment-system transactions\n",
		float64(seed.chunks)/float64(max(seed.settled, 1)))
	fmt.Printf("seeder wallet value:   %d units\n", seed.peer.HeldValue())
	fmt.Printf("broker payments seen:  %d (vs %d chunk payments it never saw)\n",
		broker.Ops().Get(whopay.OpPurchase), seed.chunks)
}

// download streams one file: a payword per chunk, settled via WhoPay
// whenever the window fills.
func download(l *leecher, seed *seeder) error {
	// First contact: hand the seeder a signed PayWord commitment.
	if l.chains[seed.peer.ID()] == nil {
		chain, err := whopay.NewPayWordChain(l.suite, l.keys, seed.peer.ID(), chainLength)
		if err != nil {
			return err
		}
		l.chains[seed.peer.ID()] = chain
		vendor, err := whopay.NewPayWordVendor(seed.suite, seed.peer.ID(), chain.Commitment())
		if err != nil {
			return err
		}
		seed.vendors[l.name] = vendor
		fmt.Printf("%s opened a %d-unit payword chain with the seeder\n", l.name, chainLength)
	}
	chain := l.chains[seed.peer.ID()]
	vendor := seed.vendors[l.name]

	for chunk := 0; chunk < fileChunks; chunk++ {
		p, err := chain.Pay()
		if err != nil {
			return err
		}
		if _, err := vendor.Receive(p); err != nil {
			return fmt.Errorf("seeder rejected chunk payment: %w", err)
		}
		l.micro++
		seed.chunks++
		// Window full? Settle the aggregate with one real payment.
		if vendor.Owed()%settleEvery == 0 {
			method, err := l.peer.Pay(seed.peer.Addr(), coinValueUnits, whopay.PolicyI)
			if err != nil {
				return fmt.Errorf("settlement: %w", err)
			}
			seed.settled++
			fmt.Printf("  %s settled %d units via WhoPay (%v)\n", l.name, settleEvery, method)
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
