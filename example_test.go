package whopay_test

import (
	"fmt"
	"log"
	"time"

	"whopay"
)

// Example walks the paper's Figure 1 lifecycle through the public API:
// purchase, issue, transfer via the owner, deposit.
func Example() {
	net := whopay.NewMemoryNetwork()
	scheme := whopay.Ed25519()
	judge, err := whopay.NewJudge(scheme)
	if err != nil {
		log.Fatal(err)
	}
	dir := whopay.NewDirectory()
	broker, err := whopay.NewBroker(whopay.BrokerConfig{
		Network: net, Scheme: scheme, Directory: dir, GroupPub: judge.GroupPublicKey(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer broker.Close()
	newPeer := func(id string) *whopay.Peer {
		p, err := whopay.NewPeer(whopay.PeerConfig{
			ID: id, Network: net, Scheme: scheme, Directory: dir,
			BrokerAddr: broker.Addr(), BrokerPub: broker.PublicKey(), Judge: judge,
		})
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	alice := newPeer("alice")
	bob := newPeer("bob")
	carol := newPeer("carol")
	defer alice.Close()
	defer bob.Close()
	defer carol.Close()

	id, err := alice.Purchase(1, false)
	if err != nil {
		log.Fatal(err)
	}
	if err := alice.IssueTo(bob.Addr(), id); err != nil {
		log.Fatal(err)
	}
	if err := bob.TransferTo(carol.Addr(), id); err != nil {
		log.Fatal(err)
	}
	if err := carol.Deposit(id, "payout"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("credited:", broker.Balance("payout"))
	// Output: credited: 1
}

// ExamplePeer_OpenChannel shows a micropayment channel (DESIGN.md §12):
// unit payments stream as PayWord hash-chain preimages — no signatures, no
// broker — and the accumulated window settles as a single WhoPay payment on
// close. The broker runs with deposit batching enabled, the other half of
// the batched-settlement pair.
func ExamplePeer_OpenChannel() {
	net := whopay.NewMemoryNetwork()
	scheme := whopay.Ed25519()
	judge, err := whopay.NewJudge(scheme)
	if err != nil {
		log.Fatal(err)
	}
	dir := whopay.NewDirectory()
	broker, err := whopay.NewBroker(whopay.BrokerConfig{
		Network: net, Scheme: scheme, Directory: dir, GroupPub: judge.GroupPublicKey(),
		DepositBatch: &whopay.DepositBatchConfig{MaxBatch: 16, MaxLinger: time.Millisecond},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer broker.Close()
	mk := func(id string) *whopay.Peer {
		p, err := whopay.NewPeer(whopay.PeerConfig{
			ID: id, Network: net, Scheme: scheme, Directory: dir,
			BrokerAddr: broker.Addr(), BrokerPub: broker.PublicKey(), Judge: judge,
		})
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	payer := mk("payer")
	vendor := mk("vendor")
	defer payer.Close()
	defer vendor.Close()

	root, err := payer.OpenChannel(vendor.Addr(), whopay.ChannelOptions{Capacity: 64})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := payer.ChannelPay(root); err != nil { // a hash check, off the hot path
			log.Fatal(err)
		}
	}
	settled, err := payer.CloseChannel(root) // one WhoPay payment for the window
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("settled:", settled)
	for _, id := range vendor.HeldCoins() { // the settlement coin is real value
		if err := vendor.Deposit(id, "vendor-payout"); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("credited:", broker.Balance("vendor-payout"))
	// Output:
	// settled: 5
	// credited: 5
}

// ExamplePeer_Pay shows policy-driven payment: the peer picks the cheapest
// available method per the paper's policy I.
func ExamplePeer_Pay() {
	net := whopay.NewMemoryNetwork()
	scheme := whopay.Ed25519()
	judge, _ := whopay.NewJudge(scheme)
	dir := whopay.NewDirectory()
	broker, err := whopay.NewBroker(whopay.BrokerConfig{
		Network: net, Scheme: scheme, Directory: dir, GroupPub: judge.GroupPublicKey(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer broker.Close()
	mk := func(id string) *whopay.Peer {
		p, err := whopay.NewPeer(whopay.PeerConfig{
			ID: id, Network: net, Scheme: scheme, Directory: dir,
			BrokerAddr: broker.Addr(), BrokerPub: broker.PublicKey(), Judge: judge,
			Prober: net, Presence: net,
		})
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	payer := mk("payer")
	payee := mk("payee")
	defer payer.Close()
	defer payee.Close()

	method, err := payer.Pay(payee.Addr(), 1, whopay.PolicyI)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("empty wallet pays by:", method)
	method, err = payee.Pay(payer.Addr(), 1, whopay.PolicyI)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("received coin pays by:", method)
	// Output:
	// empty wallet pays by: purchase-issue
	// received coin pays by: transfer-online
}
