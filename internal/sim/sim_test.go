package sim

import (
	"strings"
	"sync"
	"testing"
	"time"

	"whopay/internal/core"
	"whopay/internal/stats"
)

// testScale is small enough for CI but large enough to exhibit the paper's
// shapes.
func testScale() Scale {
	return Scale{
		NumPeers:      80,
		Duration:      72 * time.Hour,
		RenewalPeriod: 24 * time.Hour, // paper's 10d:3d ratio, scaled
		MeanOnlines: []time.Duration{
			5 * time.Minute, 30 * time.Minute, 2 * time.Hour, 8 * time.Hour,
		},
		MeanOffline: 2 * time.Hour,
		Sizes:       []int{40, 80, 120},
		Seed:        7,
	}
}

// sweepCache shares sweep results across shape tests (each sweep costs
// seconds; the assertions all read the same data).
var (
	sweepOnce  sync.Once
	sweepByKey map[SweepKey][]*Result
	sweepErr   error
)

func sweeps(t *testing.T) map[SweepKey][]*Result {
	t.Helper()
	sweepOnce.Do(func() {
		sweepByKey = make(map[SweepKey][]*Result)
		for _, key := range AllSweepKeys() {
			results, err := RunSetupA(testScale(), key, nil)
			if err != nil {
				sweepErr = err
				return
			}
			sweepByKey[key] = results
		}
	})
	if sweepErr != nil {
		t.Fatal(sweepErr)
	}
	return sweepByKey
}

func series(results []*Result, get func(*Result) float64) []float64 {
	out := make([]float64, len(results))
	for i, r := range results {
		out[i] = get(r)
	}
	return out
}

func TestRunBasicInvariants(t *testing.T) {
	res, err := Run(Config{
		NumPeers:    50,
		MeanOnline:  2 * time.Hour,
		MeanOffline: 2 * time.Hour,
		Duration:    24 * time.Hour,
		Policy:      core.PolicyI,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Payments == 0 {
		t.Fatal("no payments happened")
	}
	if res.Payments+res.Failed > res.Candidates {
		t.Fatal("more payments than candidates")
	}
	// Candidate rate: N peers × duration / 5 min, ±20%.
	expected := float64(50) * 24 * 12
	if float64(res.Candidates) < 0.8*expected || float64(res.Candidates) > 1.2*expected {
		t.Fatalf("candidates = %d, expected ≈ %.0f", res.Candidates, expected)
	}
	// Thinning: actual ≈ α × candidates (α = 0.5), ±15%.
	ratio := float64(res.Payments+res.Failed) / float64(res.Candidates)
	if ratio < 0.35 || ratio > 0.65 {
		t.Fatalf("actual/candidate ratio = %.3f, expected ≈ 0.5", ratio)
	}
	// Every payment is accounted to a method.
	var methodTotal int64
	for _, n := range res.ByMethod {
		methodTotal += n
	}
	if methodTotal != res.Payments {
		t.Fatalf("method totals %d != payments %d", methodTotal, res.Payments)
	}
	// Peer-side issue count must equal broker purchases under policy I
	// (every purchased coin is issued immediately).
	if res.PeerOpsTotal.Get(core.OpIssue) != res.BrokerOps.Get(core.OpPurchase) {
		t.Fatalf("issues %d != purchases %d",
			res.PeerOpsTotal.Get(core.OpIssue), res.BrokerOps.Get(core.OpPurchase))
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{
		NumPeers:    30,
		MeanOnline:  time.Hour,
		MeanOffline: time.Hour,
		Duration:    12 * time.Hour,
		Policy:      core.PolicyI,
		Seed:        11,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Payments != b.Payments || a.Candidates != b.Candidates || a.BrokerOps != b.BrokerOps {
		t.Fatalf("same seed, different results: %d/%d vs %d/%d",
			a.Payments, a.Candidates, b.Payments, b.Candidates)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{NumPeers: 1}); err == nil {
		t.Fatal("single-peer run accepted")
	}
}

func TestAvailability(t *testing.T) {
	c := Config{MeanOnline: 2 * time.Hour, MeanOffline: 2 * time.Hour}
	if got := c.Availability(); got != 0.5 {
		t.Fatalf("alpha = %v", got)
	}
	if (Config{}).Availability() != 0 {
		t.Fatal("zero config alpha")
	}
}

// TestShapeFigure2 asserts the paper's Figure 2 trends: purchases grow with
// availability, syncs shrink, downtime transfers and renewals are unimodal
// (or at least eventually declining past the peak).
func TestShapeFigure2(t *testing.T) {
	results := sweeps(t)[SweepKey{Policy: core.PolicyI, Sync: core.SyncProactive}]

	purchases := series(results, func(r *Result) float64 { return float64(r.BrokerOps.Get(core.OpPurchase)) })
	if shape := stats.Classify(purchases, 0.1); shape != stats.Increasing {
		t.Errorf("purchases %v not increasing (%v)", purchases, shape)
	}
	syncs := series(results, func(r *Result) float64 { return float64(r.BrokerOps.Get(core.OpSync)) })
	if shape := stats.Classify(syncs, 0.1); shape != stats.Decreasing {
		t.Errorf("syncs %v not decreasing (%v)", syncs, shape)
	}
	dtTransfers := series(results, func(r *Result) float64 { return float64(r.BrokerOps.Get(core.OpDowntimeTransfer)) })
	if shape := stats.Classify(dtTransfers, 0.1); shape != stats.Unimodal && shape != stats.Decreasing {
		t.Errorf("downtime transfers %v neither unimodal nor decreasing (%v)", dtTransfers, shape)
	}
	dtRenewals := series(results, func(r *Result) float64 { return float64(r.BrokerOps.Get(core.OpDowntimeRenewal)) })
	if shape := stats.Classify(dtRenewals, 0.1); shape != stats.Unimodal && shape != stats.Increasing {
		// At test scale the falling edge may sit right of the last
		// point; accept rise or rise-then-fall, never decline-only.
		t.Errorf("downtime renewals %v = %v, want unimodal/increasing", dtRenewals, shape)
	}
}

// TestShapeFigure3 asserts lazy sync eliminates syncs entirely.
func TestShapeFigure3(t *testing.T) {
	results := sweeps(t)[SweepKey{Policy: core.PolicyI, Sync: core.SyncLazy}]
	for _, r := range results {
		if r.BrokerOps.Get(core.OpSync) != 0 {
			t.Fatalf("lazy sync run performed %d syncs", r.BrokerOps.Get(core.OpSync))
		}
		if r.PeerOpsTotal.Get(core.OpCheck) == 0 {
			t.Fatalf("lazy sync run performed no checks (mu=%s)", r.Config.MeanOnline)
		}
	}
}

// TestShapeFigure4 asserts transfers dominate average peer load and peer
// load rises with availability. The domination claim is the paper's "under
// all configurations, transfers dominate peer load", stated for its µ ≥
// 15 min sweep; our extra 5-minute point sits below that range (α ≈ 0.04,
// nearly everything routes through the broker) and is excluded.
func TestShapeFigure4(t *testing.T) {
	results := sweeps(t)[SweepKey{Policy: core.PolicyI, Sync: core.SyncProactive}]
	for _, r := range results {
		if r.Config.MeanOnline < 15*time.Minute {
			continue
		}
		transfers := r.PeerOpsAvg(core.OpTransfer)
		for op := core.Op(0); op < core.NumOps; op++ {
			if op == core.OpTransfer {
				continue
			}
			if r.PeerOpsAvg(op) > transfers {
				t.Errorf("mu=%s: %v (%.1f) exceeds transfers (%.1f)",
					r.Config.MeanOnline, op, r.PeerOpsAvg(op), transfers)
			}
		}
	}
	load := series(results, func(r *Result) float64 { return r.PeerCPUAvg() })
	if shape := stats.Classify(load, 0.1); shape != stats.Increasing {
		t.Errorf("avg peer CPU %v not increasing (%v)", load, shape)
	}
}

// TestShapeFigures6and7 asserts lazy sync cuts broker load and the
// broker-centric policy yields less broker load than the user-centric one.
func TestShapeFigures6and7(t *testing.T) {
	byKey := sweeps(t)
	iPro := byKey[SweepKey{Policy: core.PolicyI, Sync: core.SyncProactive}]
	iLazy := byKey[SweepKey{Policy: core.PolicyI, Sync: core.SyncLazy}]
	iiiPro := byKey[SweepKey{Policy: core.PolicyIII, Sync: core.SyncProactive}]
	for i := range iPro {
		mu := iPro[i].Config.MeanOnline
		if iLazy[i].BrokerCPU >= iPro[i].BrokerCPU {
			t.Errorf("mu=%s: lazy broker CPU %d ≥ proactive %d", mu, iLazy[i].BrokerCPU, iPro[i].BrokerCPU)
		}
		if iLazy[i].BrokerComm >= iPro[i].BrokerComm {
			t.Errorf("mu=%s: lazy broker comm %d ≥ proactive %d", mu, iLazy[i].BrokerComm, iPro[i].BrokerComm)
		}
		// Policy III ≤ policy I on broker CPU (the paper's
		// conjecture, confirmed by its Figure 6); allow 10% noise.
		if float64(iiiPro[i].BrokerCPU) > 1.1*float64(iPro[i].BrokerCPU) {
			t.Errorf("mu=%s: policy III broker CPU %d > policy I %d",
				mu, iiiPro[i].BrokerCPU, iPro[i].BrokerCPU)
		}
	}
}

// TestShapeFigures8and9 asserts the broker-to-peer load ratio is largest at
// low availability and declines as availability grows.
func TestShapeFigures8and9(t *testing.T) {
	results := sweeps(t)[SweepKey{Policy: core.PolicyI, Sync: core.SyncProactive}]
	ratios := series(results, func(r *Result) float64 { return r.CPULoadRatio() })
	if shape := stats.Classify(ratios, 0.05); shape != stats.Decreasing {
		t.Errorf("CPU load ratio %v not decreasing (%v)", ratios, shape)
	}
	if ratios[0] < 10 {
		t.Errorf("lowest-availability ratio = %.1f, want ≫ 1 (paper: orders of magnitude)", ratios[0])
	}
	comm := series(results, func(r *Result) float64 { return r.CommLoadRatio() })
	if shape := stats.Classify(comm, 0.05); shape != stats.Decreasing {
		t.Errorf("comm load ratio %v not decreasing (%v)", comm, shape)
	}
}

// TestShapeFigures10and11 asserts Setup B's result: the broker's share of
// system load stays in a narrow band as the system grows (broker load
// scales linearly with total load), with peers absorbing the vast majority.
func TestShapeFigures10and11(t *testing.T) {
	key := SweepKey{Policy: core.PolicyI, Sync: core.SyncProactive}
	results, err := RunSetupB(testScale(), key, nil)
	if err != nil {
		t.Fatal(err)
	}
	shares := series(results, func(r *Result) float64 { return r.BrokerCPUShare() })
	for i, s := range shares {
		if s > 0.25 {
			t.Errorf("n=%d: broker CPU share %.3f too high", results[i].Config.NumPeers, s)
		}
	}
	// Narrow band: max/min within 2.5x across sizes.
	minS, maxS := shares[0], shares[0]
	for _, s := range shares {
		if s < minS {
			minS = s
		}
		if s > maxS {
			maxS = s
		}
	}
	if maxS > 2.5*minS {
		t.Errorf("broker share varies too much across sizes: %v", shares)
	}
}

// TestPolicyIIIDepositsInSweep: the broker-centric policy actually
// deposits offline coins ("In policy III, peers deposit offline coins, and
// purchase new coins to issue") — the behaviour our preference-order
// interpretation exists to produce.
func TestPolicyIIIDepositsInSweep(t *testing.T) {
	results := sweeps(t)[SweepKey{Policy: core.PolicyIII, Sync: core.SyncProactive}]
	totalDeposits := int64(0)
	for _, r := range results {
		totalDeposits += r.BrokerOps.Get(core.OpDeposit)
		if r.BrokerOps.Get(core.OpDowntimeTransfer) != 0 {
			t.Fatalf("policy III performed downtime transfers (mu=%s)", r.Config.MeanOnline)
		}
	}
	if totalDeposits == 0 {
		t.Fatal("policy III never deposited an offline coin")
	}
}

// TestRenewalsAppearAtScale: with the horizon exceeding the renewal
// period, renewals and downtime renewals occur (the load Figures 2-5
// plot).
func TestRenewalsAppearAtScale(t *testing.T) {
	results := sweeps(t)[SweepKey{Policy: core.PolicyI, Sync: core.SyncProactive}]
	var renewals, dtRenewals int64
	for _, r := range results {
		renewals += r.PeerOpsTotal.Get(core.OpRenewal)
		dtRenewals += r.BrokerOps.Get(core.OpDowntimeRenewal)
	}
	if renewals == 0 || dtRenewals == 0 {
		t.Fatalf("renewals=%d dtRenewals=%d, want both > 0", renewals, dtRenewals)
	}
}

// TestDowntimeSensitivity reproduces the paper's Section 6.1 remark: "the
// results for the short downtime simulation, median downtime simulation,
// and long downtime simulation are pretty similar to each other" — i.e.,
// every Figure 2 shape holds at ν = 1, 2, and 4 hours alike.
func TestDowntimeSensitivity(t *testing.T) {
	scale := testScale()
	scale.MeanOnlines = []time.Duration{30 * time.Minute, 2 * time.Hour, 8 * time.Hour}
	byNu, err := RunDowntimeSensitivity(scale, SweepKey{Policy: core.PolicyI, Sync: core.SyncProactive}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(byNu) != 3 {
		t.Fatalf("nu settings = %d", len(byNu))
	}
	for nu, results := range byNu {
		// Purchases rise with availability; at extreme availability
		// (α ≈ 0.9, reached when ν = 1 h) they plateau — the
		// documented deviation (EXPERIMENTS.md) — so unimodal is
		// acceptable, decline-only is not.
		purchases := series(results, func(r *Result) float64 { return float64(r.BrokerOps.Get(core.OpPurchase)) })
		if shape := stats.Classify(purchases, 0.1); shape != stats.Increasing && shape != stats.Unimodal {
			t.Errorf("nu=%s: purchases %v = %v, want increasing/unimodal", nu, purchases, shape)
		}
		syncs := series(results, func(r *Result) float64 { return float64(r.BrokerOps.Get(core.OpSync)) })
		if shape := stats.Classify(syncs, 0.1); shape != stats.Decreasing {
			t.Errorf("nu=%s: syncs %v not decreasing (%v)", nu, syncs, shape)
		}
		ratios := series(results, func(r *Result) float64 { return r.CPULoadRatio() })
		if shape := stats.Classify(ratios, 0.05); shape != stats.Decreasing {
			t.Errorf("nu=%s: load ratio %v not decreasing (%v)", nu, ratios, shape)
		}
	}
	if fig := FigureDowntimeSensitivity(byNu); len(fig.Series) != 3 {
		t.Fatalf("sensitivity figure series = %d", len(fig.Series))
	}
}

// TestFigureBuilders exercises the figure constructors end to end.
func TestFigureBuilders(t *testing.T) {
	byKey := sweeps(t)
	iPro := byKey[SweepKey{Policy: core.PolicyI, Sync: core.SyncProactive}]
	iLazy := byKey[SweepKey{Policy: core.PolicyI, Sync: core.SyncLazy}]

	f2 := FigureBrokerOps(iPro, "Figure 2")
	if len(f2.Series) != 4 {
		t.Fatalf("figure 2 series = %d", len(f2.Series))
	}
	f3 := FigureBrokerOps(iLazy, "Figure 3")
	for _, s := range f3.Series {
		if s.Name == "syncs" {
			t.Fatal("figure 3 (lazy) contains a syncs series")
		}
	}
	f4 := FigurePeerOps(iPro, "Figure 4")
	hasChecks := false
	for _, s := range f4.Series {
		if s.Name == "checks" {
			hasChecks = true
		}
	}
	if hasChecks {
		t.Fatal("figure 4 (proactive) contains checks")
	}
	f5 := FigurePeerOps(iLazy, "Figure 5")
	hasChecks = false
	for _, s := range f5.Series {
		if s.Name == "checks" {
			hasChecks = true
		}
	}
	if !hasChecks {
		t.Fatal("figure 5 (lazy) missing checks")
	}
	f6 := FigureBrokerLoad(byKey, false, "Figure 6")
	if len(f6.Series) != 4 {
		t.Fatalf("figure 6 series = %d", len(f6.Series))
	}
	f8 := FigureLoadRatio(byKey, false, "Figure 8", 6)
	if len(f8.Series) == 0 {
		t.Fatal("figure 8 empty")
	}
	if csv := f2.CSV(); !strings.Contains(csv, "purchases") {
		t.Fatal("figure 2 CSV missing purchases column")
	}
}

func TestSetupTable(t *testing.T) {
	if !strings.Contains(SetupTable(), "100 - 1000") {
		t.Fatal("setup table content")
	}
}

func TestSweepKeyString(t *testing.T) {
	k := SweepKey{Policy: core.PolicyIII, Sync: core.SyncLazy}
	if k.String() != "policy III + lazy sync" {
		t.Fatalf("key string = %q", k.String())
	}
}

// TestResultZeroGuards: ratio/share helpers do not divide by zero.
func TestResultZeroGuards(t *testing.T) {
	r := &Result{Config: Config{NumPeers: 10}}
	if r.CPULoadRatio() != 0 || r.CommLoadRatio() != 0 || r.BrokerCPUShare() != 0 || r.BrokerCommShare() != 0 {
		t.Fatal("zero-state ratios not zero")
	}
	pr := &PPayResult{}
	if pr.BrokerCPUShare() != 0 || pr.BrokerCommShare() != 0 {
		t.Fatal("zero-state PPay shares not zero")
	}
}

// TestScalesDistinct: the three scales are well-formed and ordered.
func TestScalesDistinct(t *testing.T) {
	q, m, p := QuickScale(), MidScale(), PaperScale()
	if !(q.NumPeers < m.NumPeers && m.NumPeers < p.NumPeers) {
		t.Fatal("scale peer counts not increasing")
	}
	if !(q.Duration < m.Duration && m.Duration < p.Duration) {
		t.Fatal("scale durations not increasing")
	}
	for _, s := range []Scale{q, m, p} {
		if len(s.MeanOnlines) == 0 || len(s.Sizes) == 0 || s.RenewalPeriod <= 0 {
			t.Fatalf("malformed scale: %+v", s)
		}
		if s.Duration < 2*s.RenewalPeriod {
			t.Fatalf("horizon %v too short for renewals (period %v)", s.Duration, s.RenewalPeriod)
		}
	}
}

// TestRequirePayerOnline: the stricter thinning knob reduces actual
// payments to roughly alpha^2 of candidates.
func TestRequirePayerOnline(t *testing.T) {
	cfg := Config{
		NumPeers:    60,
		MeanOnline:  2 * time.Hour,
		MeanOffline: 2 * time.Hour,
		Duration:    24 * time.Hour,
		Policy:      core.PolicyI,
		Seed:        13,
	}
	loose, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.RequirePayerOnline = true
	strict, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lr := float64(loose.Payments) / float64(loose.Candidates)
	sr := float64(strict.Payments) / float64(strict.Candidates)
	if lr < 0.4 || lr > 0.6 {
		t.Fatalf("loose ratio = %.3f, want ≈ alpha = 0.5", lr)
	}
	if sr < 0.15 || sr > 0.35 {
		t.Fatalf("strict ratio = %.3f, want ≈ alpha^2 = 0.25", sr)
	}
}
