package sim

import (
	"fmt"
	"time"

	"whopay/internal/core"
	"whopay/internal/stats"
)

// Scale describes the sweep dimensions. PaperScale is the full Table 1
// setup; QuickScale shrinks it for CI and benchmarks while preserving the
// shapes.
type Scale struct {
	NumPeers      int
	Duration      time.Duration
	RenewalPeriod time.Duration
	MeanOnlines   []time.Duration
	MeanOffline   time.Duration
	Sizes         []int // Setup B system sizes
	Seed          int64
}

// PaperScale reproduces the paper's Setup A/B (median downtime: ν = 2 h).
func PaperScale() Scale {
	return Scale{
		NumPeers:      1000,
		Duration:      240 * time.Hour,
		RenewalPeriod: 72 * time.Hour,
		MeanOnlines: []time.Duration{
			5 * time.Minute, 15 * time.Minute, 30 * time.Minute, time.Hour,
			2 * time.Hour, 4 * time.Hour, 8 * time.Hour, 16 * time.Hour, 32 * time.Hour,
		},
		MeanOffline: 2 * time.Hour,
		Sizes:       []int{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000},
		Seed:        1,
	}
}

// MidScale is a middle ground: large enough for magnitudes comparable to
// the paper (hundreds of peers, multi-day horizon), small enough to finish
// in minutes.
func MidScale() Scale {
	return Scale{
		NumPeers:      400,
		Duration:      120 * time.Hour,
		RenewalPeriod: 36 * time.Hour,
		MeanOnlines: []time.Duration{
			5 * time.Minute, 15 * time.Minute, time.Hour,
			2 * time.Hour, 8 * time.Hour, 32 * time.Hour,
		},
		MeanOffline: 2 * time.Hour,
		Sizes:       []int{100, 200, 300, 400},
		Seed:        1,
	}
}

// QuickScale is a reduced sweep for fast runs.
func QuickScale() Scale {
	return Scale{
		NumPeers: 120,
		Duration: 48 * time.Hour,
		// Scaled with the horizon, preserving the paper's 10d:3d
		// run-to-renewal ratio.
		RenewalPeriod: 16 * time.Hour,
		MeanOnlines: []time.Duration{
			5 * time.Minute, 30 * time.Minute, time.Hour, 2 * time.Hour, 4 * time.Hour, 8 * time.Hour,
		},
		MeanOffline: 2 * time.Hour,
		Sizes:       []int{40, 80, 120, 160, 200},
		Seed:        1,
	}
}

// SweepKey identifies one policy/sync configuration.
type SweepKey struct {
	Policy core.Policy
	Sync   core.SyncMode
}

// String renders the key as the paper's legends do.
func (k SweepKey) String() string {
	syncName := "proactive sync"
	if k.Sync == core.SyncLazy {
		syncName = "lazy sync"
	}
	return fmt.Sprintf("policy %s + %s", k.Policy, syncName)
}

// AllSweepKeys are the four configurations Figures 6-11 plot.
func AllSweepKeys() []SweepKey {
	return []SweepKey{
		{Policy: core.PolicyI, Sync: core.SyncProactive},
		{Policy: core.PolicyI, Sync: core.SyncLazy},
		{Policy: core.PolicyIII, Sync: core.SyncProactive},
		{Policy: core.PolicyIII, Sync: core.SyncLazy},
	}
}

// RunSetupA sweeps mean online session length (Setup A): one Result per µ.
// Progress, if non-nil, is called before each run.
func RunSetupA(scale Scale, key SweepKey, progress func(string)) ([]*Result, error) {
	results := make([]*Result, 0, len(scale.MeanOnlines))
	for _, mu := range scale.MeanOnlines {
		if progress != nil {
			progress(fmt.Sprintf("setup A: %s, mu=%s", key, mu))
		}
		res, err := Run(Config{
			NumPeers:      scale.NumPeers,
			MeanOnline:    mu,
			MeanOffline:   scale.MeanOffline,
			Duration:      scale.Duration,
			RenewalPeriod: scale.RenewalPeriod,
			Policy:        key.Policy,
			SyncMode:      key.Sync,
			Seed:          scale.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("sim: setup A (%s, mu=%s): %w", key, mu, err)
		}
		results = append(results, res)
	}
	return results, nil
}

// RunSetupB sweeps system size at fixed 50% availability (Setup B).
func RunSetupB(scale Scale, key SweepKey, progress func(string)) ([]*Result, error) {
	results := make([]*Result, 0, len(scale.Sizes))
	for _, n := range scale.Sizes {
		if progress != nil {
			progress(fmt.Sprintf("setup B: %s, n=%d", key, n))
		}
		res, err := Run(Config{
			NumPeers:      n,
			MeanOnline:    2 * time.Hour,
			MeanOffline:   2 * time.Hour,
			Duration:      scale.Duration,
			RenewalPeriod: scale.RenewalPeriod,
			Policy:        key.Policy,
			SyncMode:      key.Sync,
			Seed:          scale.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("sim: setup B (%s, n=%d): %w", key, n, err)
		}
		results = append(results, res)
	}
	return results, nil
}

func hours(d time.Duration) float64 { return d.Hours() }

// FigureBrokerOps builds Figures 2 (proactive) and 3 (lazy): broker
// operation counts vs mean session length under policy I.
func FigureBrokerOps(results []*Result, title string) *stats.Figure {
	f := stats.NewFigure(title, "Mean Session Length (hrs)", "Number of Operations")
	ops := []core.Op{core.OpPurchase, core.OpDowntimeTransfer, core.OpDowntimeRenewal, core.OpSync}
	for _, res := range results {
		for _, op := range ops {
			if op == core.OpSync && res.Config.SyncMode == core.SyncLazy {
				continue
			}
			f.AddSeries(op.String()).Add(hours(res.Config.MeanOnline), float64(res.BrokerOps.Get(op)))
		}
	}
	return f
}

// FigurePeerOps builds Figures 4 (proactive) and 5 (lazy): average peer
// operation counts vs mean session length.
func FigurePeerOps(results []*Result, title string) *stats.Figure {
	f := stats.NewFigure(title, "Mean Session Length (hrs)", "Number of Operations")
	ops := []core.Op{
		core.OpPurchase, core.OpIssue, core.OpTransfer, core.OpRenewal,
		core.OpDowntimeTransfer, core.OpDowntimeRenewal, core.OpSync, core.OpCheck,
	}
	for _, res := range results {
		lazy := res.Config.SyncMode == core.SyncLazy
		for _, op := range ops {
			if op == core.OpSync && lazy {
				continue
			}
			if op == core.OpCheck && !lazy {
				continue
			}
			f.AddSeries(op.String()).Add(hours(res.Config.MeanOnline), res.PeerOpsAvg(op))
		}
	}
	return f
}

// FigureBrokerLoad builds Figures 6 (CPU) and 7 (communication): broker
// load vs mean session length, one series per configuration.
func FigureBrokerLoad(byKey map[SweepKey][]*Result, comm bool, title string) *stats.Figure {
	ylabel := "CPU Load"
	if comm {
		ylabel = "Communication Load"
	}
	f := stats.NewFigure(title, "Mean Session Length (hrs)", ylabel)
	for _, key := range AllSweepKeys() {
		for _, res := range byKey[key] {
			y := float64(res.BrokerCPU)
			if comm {
				y = float64(res.BrokerComm)
			}
			f.AddSeries(key.String()).Add(hours(res.Config.MeanOnline), y)
		}
	}
	return f
}

// FigureLoadRatio builds Figures 8 (CPU) and 9 (communication):
// broker-to-average-peer load ratio, plotted for the low-availability
// region as in the paper.
func FigureLoadRatio(byKey map[SweepKey][]*Result, comm bool, title string, maxHours float64) *stats.Figure {
	f := stats.NewFigure(title, "Mean Session Length (hrs)", "Load Ratio")
	for _, key := range AllSweepKeys() {
		for _, res := range byKey[key] {
			x := hours(res.Config.MeanOnline)
			if maxHours > 0 && x > maxHours {
				continue
			}
			y := res.CPULoadRatio()
			if comm {
				y = res.CommLoadRatio()
			}
			f.AddSeries(key.String()).Add(x, y)
		}
	}
	return f
}

// FigureLoadScaling builds Figures 10 (CPU) and 11 (communication): the
// broker's share of total system load vs system size (Setup B).
func FigureLoadScaling(byKey map[SweepKey][]*Result, comm bool, title string) *stats.Figure {
	f := stats.NewFigure(title, "Number of Peers", "Load Ratio")
	for _, key := range AllSweepKeys() {
		for _, res := range byKey[key] {
			y := res.BrokerCPUShare()
			if comm {
				y = res.BrokerCommShare()
			}
			f.AddSeries(key.String()).Add(float64(res.Config.NumPeers), y)
		}
	}
	return f
}

// RunDowntimeSensitivity reruns Setup A for the paper's three downtime
// settings (ν = 1, 2, 4 h — "short", "median", "long"). The paper plots
// only the median because "the results ... are pretty similar to each
// other"; this sweep reproduces that claim.
func RunDowntimeSensitivity(scale Scale, key SweepKey, progress func(string)) (map[time.Duration][]*Result, error) {
	out := make(map[time.Duration][]*Result, 3)
	for _, nu := range []time.Duration{time.Hour, 2 * time.Hour, 4 * time.Hour} {
		s := scale
		s.MeanOffline = nu
		if progress != nil {
			progress(fmt.Sprintf("downtime sensitivity: nu=%s", nu))
		}
		results, err := RunSetupA(s, key, progress)
		if err != nil {
			return nil, err
		}
		out[nu] = results
	}
	return out, nil
}

// FigureDowntimeSensitivity plots total broker operations vs µ, one series
// per ν — the visual form of the paper's "pretty similar" remark.
func FigureDowntimeSensitivity(byNu map[time.Duration][]*Result) *stats.Figure {
	f := stats.NewFigure("Downtime Sensitivity: Broker Ops (nu = 1, 2, 4 hrs)",
		"Mean Session Length (hrs)", "Number of Operations")
	for nu, results := range byNu {
		name := fmt.Sprintf("nu=%s", nu)
		for _, res := range results {
			f.AddSeries(name).Add(hours(res.Config.MeanOnline), float64(res.BrokerOps.Total()))
		}
	}
	return f
}

// SetupTable renders the paper's Table 1 (simulation setup matrix).
func SetupTable() string {
	return "Table 1: Simulation Setup\n" +
		"  Setup  Policies            Sync              mu               nu              Peers\n" +
		"  A      I, II.a, II.b, III  proactive, lazy   15 min - 32 hrs  1, 2, 4 hrs     1000\n" +
		"  B      I, II.a, II.b, III  proactive, lazy   2 hrs            2 hrs           100 - 1000\n"
}
