// Package sim is the discrete-event simulator reproducing the paper's
// evaluation (Section 6): 1000 peers with exponential online/offline
// sessions, Poisson candidate payments thinned by payee availability,
// spending policies I/II/III, proactive vs lazy synchronization, a renewal
// period of 3 days, and 10 simulated days per run.
//
// Unlike a counts-only model, the simulator drives the *real* protocol
// implementation in internal/core over the in-memory bus, under the null
// signature scheme with per-entity recorders: every operation count, crypto
// micro-operation, and message the figures report was actually performed by
// the production code path.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	mrand "math/rand"
	"time"

	"whopay/internal/bus"
	"whopay/internal/core"
	"whopay/internal/costmodel"
	"whopay/internal/dht"
	"whopay/internal/sig"
)

// Config parameterizes one simulation run. Zero fields take the paper's
// defaults (Table 1, Setup A, median downtime).
type Config struct {
	// NumPeers is the system size (paper: 1000 for Setup A, 100-1000
	// for Setup B).
	NumPeers int
	// MeanOnline is µ, the mean online session length (paper: 15 min -
	// 32 h).
	MeanOnline time.Duration
	// MeanOffline is ν, the mean offline session length (paper: 1/2/4 h;
	// all plotted results use 2 h).
	MeanOffline time.Duration
	// PaymentInterval is the mean candidate-payment interarrival per
	// peer (paper: 5 min).
	PaymentInterval time.Duration
	// RenewalPeriod is the coin renewal period (paper: 3 days).
	RenewalPeriod time.Duration
	// SweepInterval is how often holders scan for coins nearing expiry.
	SweepInterval time.Duration
	// Duration is the simulated horizon (paper: 10 days).
	Duration time.Duration
	// Policy is the spending policy (paper: I, II.a, II.b, III).
	Policy core.Policy
	// SyncMode selects proactive or lazy owner synchronization.
	SyncMode core.SyncMode
	// Seed makes the run reproducible.
	Seed int64
	// DHTNodes sizes the public-binding-list infrastructure (0 takes
	// the default of 8; negative disables it entirely, in which case
	// lazy sync relies on presented bindings).
	DHTNodes int
	// RequirePayerOnline additionally thins candidate payments by payer
	// availability. The paper thins by payee only (actual rate α per
	// 5 min), so this defaults to false.
	RequirePayerOnline bool
	// CredPool sizes each member's group-credential pool.
	CredPool int
	// InitialCash, when positive, gives each peer a finite purchase
	// budget at the broker; deposits (with the peer's identity as
	// payout reference) refill it. The default is unlimited (purchases
	// are backed by out-of-band money, as the paper assumes); the knob
	// exists for budget-constrained ablations.
	InitialCash int64
	// AuditLogCap bounds per-coin owner audit trails (simulation memory
	// control; disputes are not exercised by the load model).
	AuditLogCap int
}

func (c Config) withDefaults() Config {
	if c.NumPeers == 0 {
		c.NumPeers = 1000
	}
	if c.MeanOnline == 0 {
		c.MeanOnline = 2 * time.Hour
	}
	if c.MeanOffline == 0 {
		c.MeanOffline = 2 * time.Hour
	}
	if c.PaymentInterval == 0 {
		c.PaymentInterval = 5 * time.Minute
	}
	if c.RenewalPeriod == 0 {
		c.RenewalPeriod = 72 * time.Hour
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = time.Hour
	}
	if c.Duration == 0 {
		c.Duration = 240 * time.Hour
	}
	switch {
	case c.DHTNodes == 0:
		c.DHTNodes = 8
	case c.DHTNodes < 0:
		// Negative disables the public binding list entirely.
		c.DHTNodes = 0
	}
	if c.CredPool == 0 {
		c.CredPool = 64
	}
	if c.AuditLogCap == 0 {
		c.AuditLogCap = 4
	}
	if c.InitialCash < 0 {
		c.InitialCash = 0
	}
	return c
}

// Availability returns α = µ/(µ+ν), the steady-state online probability.
func (c Config) Availability() float64 {
	mu := float64(c.MeanOnline)
	nu := float64(c.MeanOffline)
	if mu+nu == 0 {
		return 0
	}
	return mu / (mu + nu)
}

// Result aggregates one run's measurements.
type Result struct {
	Config Config

	// Operation counts (the quantities of Figures 2-5).
	BrokerOps    core.OpCounts
	PeerOpsTotal core.OpCounts

	// Weighted loads (Figures 6-11).
	BrokerCPU     int64
	PeerCPUTotal  int64
	BrokerComm    int64
	PeerCommTotal int64

	// Traffic bookkeeping.
	Candidates int64
	Payments   int64
	Failed     int64
	ByMethod   map[core.Method]int64
	Renewals   int64
}

// PeerOpsAvg returns the per-peer average for an operation (Figures 4-5).
func (r *Result) PeerOpsAvg(op core.Op) float64 {
	return float64(r.PeerOpsTotal.Get(op)) / float64(r.Config.NumPeers)
}

// PeerCPUAvg is the average peer CPU load.
func (r *Result) PeerCPUAvg() float64 {
	return float64(r.PeerCPUTotal) / float64(r.Config.NumPeers)
}

// PeerCommAvg is the average peer communication load.
func (r *Result) PeerCommAvg() float64 {
	return float64(r.PeerCommTotal) / float64(r.Config.NumPeers)
}

// CPULoadRatio is broker CPU over average peer CPU (Figure 8).
func (r *Result) CPULoadRatio() float64 {
	avg := r.PeerCPUAvg()
	if avg == 0 {
		return 0
	}
	return float64(r.BrokerCPU) / avg
}

// CommLoadRatio is broker comm over average peer comm (Figure 9).
func (r *Result) CommLoadRatio() float64 {
	avg := r.PeerCommAvg()
	if avg == 0 {
		return 0
	}
	return float64(r.BrokerComm) / avg
}

// BrokerCPUShare is the broker's fraction of total (broker+peers) CPU load
// (Figure 10).
func (r *Result) BrokerCPUShare() float64 {
	total := float64(r.BrokerCPU + r.PeerCPUTotal)
	if total == 0 {
		return 0
	}
	return float64(r.BrokerCPU) / total
}

// BrokerCommShare is the broker's fraction of total communication load
// (Figure 11).
func (r *Result) BrokerCommShare() float64 {
	total := float64(r.BrokerComm + r.PeerCommTotal)
	if total == 0 {
		return 0
	}
	return float64(r.BrokerComm) / total
}

// event kinds.
const (
	evChurn = iota
	evPayment
	evSweep
)

type event struct {
	at   time.Duration
	seq  uint64
	kind int
	peer int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h eventHeap) Peek() (event, bool) {
	if len(h) == 0 {
		return event{}, false
	}
	return h[0], true
}

// world is the running simulation state.
type world struct {
	cfg    Config
	rng    *mrand.Rand
	now    time.Time
	epoch  time.Time
	net    *bus.Memory
	broker *core.Broker
	peers  []*core.Peer
	online []bool
	recs   []*sig.Counter
	bRec   sig.Counter
	events eventHeap
	evSeq  uint64
	res    *Result
}

func (w *world) clock() time.Time { return w.now }

func (w *world) schedule(after time.Duration, kind, peer int) {
	w.evSeq++
	heap.Push(&w.events, event{
		at:   w.now.Sub(w.epoch) + after,
		seq:  w.evSeq,
		kind: kind,
		peer: peer,
	})
}

// exp draws an exponential variate with the given mean.
func (w *world) exp(mean time.Duration) time.Duration {
	return time.Duration(w.rng.ExpFloat64() * float64(mean))
}

// Run executes one simulation.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.NumPeers < 2 {
		return nil, errors.New("sim: need at least 2 peers")
	}
	w := &world{
		cfg:   cfg,
		rng:   mrand.New(mrand.NewSource(cfg.Seed)),
		epoch: time.Unix(1_700_000_000, 0),
		net:   bus.NewMemory(),
		res:   &Result{Config: cfg, ByMethod: make(map[core.Method]int64)},
	}
	w.now = w.epoch
	scheme := sig.NewNull(uint32(cfg.Seed))

	judge, err := core.NewJudge(scheme)
	if err != nil {
		return nil, err
	}
	dir := core.NewDirectory()

	var dhtAddrs []bus.Address
	for i := 0; i < cfg.DHTNodes; i++ {
		dhtAddrs = append(dhtAddrs, bus.Address(fmt.Sprintf("dht:%d", i)))
	}
	broker, err := core.NewBroker(core.BrokerConfig{
		Network:       w.net,
		Addr:          "broker",
		Scheme:        scheme,
		Recorder:      &w.bRec,
		Clock:         w.clock,
		RenewalPeriod: cfg.RenewalPeriod,
		Directory:     dir,
		GroupPub:      judge.GroupPublicKey(),
		DHTNodes:      dhtAddrs,
		InitialCredit: cfg.InitialCash,
	})
	if err != nil {
		return nil, err
	}
	defer broker.Close()
	w.broker = broker

	var cluster *dht.Cluster
	if cfg.DHTNodes > 0 {
		cluster, err = dht.NewCluster(w.net, scheme, cfg.DHTNodes, 1, broker.PublicKey())
		if err != nil {
			return nil, err
		}
		defer cluster.Close()
	}

	w.peers = make([]*core.Peer, cfg.NumPeers)
	w.online = make([]bool, cfg.NumPeers)
	w.recs = make([]*sig.Counter, cfg.NumPeers)
	for i := 0; i < cfg.NumPeers; i++ {
		rec := &sig.Counter{}
		w.recs[i] = rec
		p, err := core.NewPeer(core.PeerConfig{
			ID:              fmt.Sprintf("peer-%d", i),
			Network:         w.net,
			Addr:            bus.Address(fmt.Sprintf("p:%d", i)),
			Scheme:          scheme,
			Recorder:        rec,
			Clock:           w.clock,
			RenewalPeriod:   cfg.RenewalPeriod,
			Directory:       dir,
			BrokerAddr:      "broker",
			BrokerPub:       broker.PublicKey(),
			Judge:           judge,
			CredPool:        cfg.CredPool,
			DHTNodes:        dhtAddrs,
			PublishBindings: cfg.DHTNodes > 0,
			// Watch/cross-check are the detection extension; the
			// paper's load study counts the publish and the lazy
			// checks only.
			WatchHeldCoins:     false,
			CheckPublicBinding: false,
			SyncMode:           cfg.SyncMode,
			Prober:             w.net,
			Presence:           w.net,
			Rand:               mrand.New(mrand.NewSource(cfg.Seed ^ int64(i)*0x5851F42D4C957F2D)),
			AuditLogCap:        cfg.AuditLogCap,
		})
		if err != nil {
			return nil, err
		}
		defer p.Close()
		w.peers[i] = p
	}

	// Steady-state initial availability: online with probability α; the
	// exponential's memorylessness makes the residual session length the
	// full Exp again.
	alpha := cfg.Availability()
	for i := range w.peers {
		w.online[i] = w.rng.Float64() < alpha
		if !w.online[i] {
			w.peers[i].GoOffline()
		}
		mean := cfg.MeanOnline
		if !w.online[i] {
			mean = cfg.MeanOffline
		}
		w.schedule(w.exp(mean), evChurn, i)
		w.schedule(w.exp(cfg.PaymentInterval), evPayment, i)
	}
	w.schedule(cfg.SweepInterval, evSweep, -1)

	// Main loop.
	for {
		ev, ok := w.events.Peek()
		if !ok || ev.at > cfg.Duration {
			break
		}
		heap.Pop(&w.events)
		w.now = w.epoch.Add(ev.at)
		switch ev.kind {
		case evChurn:
			w.handleChurn(ev.peer)
		case evPayment:
			w.handlePayment(ev.peer)
		case evSweep:
			w.handleSweep()
			w.schedule(cfg.SweepInterval, evSweep, -1)
		}
	}

	w.collect()
	return w.res, nil
}

func (w *world) handleChurn(i int) {
	if w.online[i] {
		w.online[i] = false
		w.peers[i].GoOffline()
		w.schedule(w.exp(w.cfg.MeanOffline), evChurn, i)
		return
	}
	w.online[i] = true
	// GoOnline performs the proactive sync (or marks coins dirty under
	// lazy sync). A sync failure would need a live broker outage, which
	// the model does not include.
	_ = w.peers[i].GoOnline()
	w.schedule(w.exp(w.cfg.MeanOnline), evChurn, i)
}

func (w *world) handlePayment(i int) {
	defer w.schedule(w.exp(w.cfg.PaymentInterval), evPayment, i)
	w.res.Candidates++
	if w.cfg.RequirePayerOnline && !w.online[i] {
		return
	}
	// Uniform random payee; candidate becomes actual iff payee online.
	j := w.rng.Intn(w.cfg.NumPeers - 1)
	if j >= i {
		j++
	}
	if !w.online[j] {
		return
	}
	method, err := w.peers[i].Pay(w.peers[j].Addr(), 1, w.cfg.Policy)
	if err != nil {
		w.res.Failed++
		return
	}
	w.res.Payments++
	w.res.ByMethod[method]++
}

// handleSweep renews held coins that would expire before the next sweep —
// via the owner when it is online, via the broker otherwise. Offline
// holders renew at their first sweep after rejoining.
func (w *world) handleSweep() {
	deadline := w.now.Add(w.cfg.SweepInterval)
	for i, p := range w.peers {
		if !w.online[i] {
			continue
		}
		for _, id := range p.HeldCoins() {
			expiry, ok := p.HeldBindingExpiry(id)
			if !ok || expiry.After(deadline) {
				continue
			}
			owner, _ := p.HeldCoinOwner(id)
			var err error
			if owner != "" && w.ownerOnline(owner) {
				err = p.RenewViaOwner(id)
			} else {
				err = p.RenewViaBroker(id)
			}
			if err == nil {
				w.res.Renewals++
			}
		}
	}
}

func (w *world) ownerOnline(identity string) bool {
	var idx int
	if _, err := fmt.Sscanf(identity, "peer-%d", &idx); err != nil {
		return false
	}
	if idx < 0 || idx >= len(w.online) {
		return false
	}
	return w.online[idx]
}

func (w *world) collect() {
	res := w.res
	res.BrokerOps = w.broker.Ops()
	for _, p := range w.peers {
		res.PeerOpsTotal = res.PeerOpsTotal.Add(p.Ops())
	}
	res.BrokerCPU = costmodel.CPU(w.bRec.Snapshot())
	for _, rec := range w.recs {
		res.PeerCPUTotal += costmodel.CPU(rec.Snapshot())
	}
	res.BrokerComm = costmodel.Comm(w.net.Stats("broker"))
	for i := range w.peers {
		res.PeerCommTotal += costmodel.Comm(w.net.Stats(bus.Address(fmt.Sprintf("p:%d", i))))
	}
}
