package sim

import (
	"container/heap"
	"errors"
	"fmt"
	mrand "math/rand"
	"time"

	"whopay/internal/bus"
	"whopay/internal/core"
	"whopay/internal/costmodel"
	"whopay/internal/ppay"
	"whopay/internal/sig"
)

// PPay comparison mode: the paper positions WhoPay as "as secure and
// scalable as existing peer-to-peer payment schemes such as PPay, while
// providing a much higher level of user anonymity". RunPPay runs the same
// stochastic workload (churn, Poisson candidates thinned by payee
// availability, user-centric spending) over the PPay implementation so the
// two systems' load distributions can be compared head to head: similar
// broker shares, with WhoPay paying a constant-factor crypto premium for
// anonymity (the group signatures and one-time holder keys PPay lacks).

// PPayResult aggregates one PPay run.
type PPayResult struct {
	Config        Config
	BrokerOps     core.OpCounts
	PeerOpsTotal  core.OpCounts
	BrokerCPU     int64
	PeerCPUTotal  int64
	BrokerComm    int64
	PeerCommTotal int64
	Candidates    int64
	Payments      int64
	Failed        int64
}

// BrokerCPUShare mirrors Result.BrokerCPUShare.
func (r *PPayResult) BrokerCPUShare() float64 {
	total := float64(r.BrokerCPU + r.PeerCPUTotal)
	if total == 0 {
		return 0
	}
	return float64(r.BrokerCPU) / total
}

// BrokerCommShare mirrors Result.BrokerCommShare.
func (r *PPayResult) BrokerCommShare() float64 {
	total := float64(r.BrokerComm + r.PeerCommTotal)
	if total == 0 {
		return 0
	}
	return float64(r.BrokerComm) / total
}

// ppayWorld is the PPay analog of world.
type ppayWorld struct {
	cfg    Config
	rng    *mrand.Rand
	now    time.Time
	epoch  time.Time
	net    *bus.Memory
	broker *ppay.Broker
	peers  []*ppay.Peer
	online []bool
	recs   []*sig.Counter
	bRec   sig.Counter
	events eventHeap
	evSeq  uint64
	res    *PPayResult
}

func (w *ppayWorld) clock() time.Time { return w.now }

func (w *ppayWorld) schedule(after time.Duration, kind, peer int) {
	w.evSeq++
	heap.Push(&w.events, event{at: w.now.Sub(w.epoch) + after, seq: w.evSeq, kind: kind, peer: peer})
}

func (w *ppayWorld) exp(mean time.Duration) time.Duration {
	return time.Duration(w.rng.ExpFloat64() * float64(mean))
}

// RunPPay executes one PPay simulation under the same workload model as
// Run. Renewals do not exist in our PPay reduction (its sweep events are
// skipped); policies beyond the user-centric order are meaningless there,
// so the Policy field is ignored.
func RunPPay(cfg Config) (*PPayResult, error) {
	cfg = cfg.withDefaults()
	if cfg.NumPeers < 2 {
		return nil, errors.New("sim: need at least 2 peers")
	}
	w := &ppayWorld{
		cfg:   cfg,
		rng:   mrand.New(mrand.NewSource(cfg.Seed)),
		epoch: time.Unix(1_700_000_000, 0),
		net:   bus.NewMemory(),
		res:   &PPayResult{Config: cfg},
	}
	w.now = w.epoch
	scheme := sig.NewNull(uint32(cfg.Seed) ^ 0x5050)
	dir := core.NewDirectory()
	broker, err := ppay.NewBroker(ppay.BrokerConfig{
		Network:   w.net,
		Addr:      "broker",
		Scheme:    scheme,
		Recorder:  &w.bRec,
		Clock:     w.clock,
		Directory: dir,
	})
	if err != nil {
		return nil, err
	}
	defer broker.Close()
	w.broker = broker

	w.peers = make([]*ppay.Peer, cfg.NumPeers)
	w.online = make([]bool, cfg.NumPeers)
	w.recs = make([]*sig.Counter, cfg.NumPeers)
	for i := 0; i < cfg.NumPeers; i++ {
		rec := &sig.Counter{}
		w.recs[i] = rec
		p, err := ppay.NewPeer(ppay.PeerConfig{
			ID:         fmt.Sprintf("peer-%d", i),
			Network:    w.net,
			Addr:       bus.Address(fmt.Sprintf("p:%d", i)),
			Scheme:     scheme,
			Recorder:   rec,
			Clock:      w.clock,
			Directory:  dir,
			BrokerAddr: "broker",
			BrokerPub:  broker.PublicKey(),
		})
		if err != nil {
			return nil, err
		}
		defer p.Close()
		w.peers[i] = p
	}

	alpha := cfg.Availability()
	for i := range w.peers {
		w.online[i] = w.rng.Float64() < alpha
		if !w.online[i] {
			w.net.SetOnline(bus.Address(fmt.Sprintf("p:%d", i)), false)
		}
		mean := cfg.MeanOnline
		if !w.online[i] {
			mean = cfg.MeanOffline
		}
		w.schedule(w.exp(mean), evChurn, i)
		w.schedule(w.exp(cfg.PaymentInterval), evPayment, i)
	}

	for {
		ev, ok := w.events.Peek()
		if !ok || ev.at > cfg.Duration {
			break
		}
		heap.Pop(&w.events)
		w.now = w.epoch.Add(ev.at)
		switch ev.kind {
		case evChurn:
			w.handleChurn(ev.peer)
		case evPayment:
			w.handlePayment(ev.peer)
		}
	}

	w.collect()
	return w.res, nil
}

func (w *ppayWorld) handleChurn(i int) {
	addr := bus.Address(fmt.Sprintf("p:%d", i))
	if w.online[i] {
		w.online[i] = false
		w.net.SetOnline(addr, false)
		w.schedule(w.exp(w.cfg.MeanOffline), evChurn, i)
		return
	}
	w.online[i] = true
	w.net.SetOnline(addr, true)
	// PPay's downtime protocol requires rejoin synchronization
	// unconditionally (the paper: "Peers must synchronize state with the
	// broker after they rejoin the system").
	_ = w.peers[i].Sync()
	w.schedule(w.exp(w.cfg.MeanOnline), evChurn, i)
}

// handlePayment applies the user-centric (policy I analog) preference
// order: transfer a coin with an online owner, else via the broker, else
// purchase and issue.
func (w *ppayWorld) handlePayment(i int) {
	defer w.schedule(w.exp(w.cfg.PaymentInterval), evPayment, i)
	w.res.Candidates++
	j := w.rng.Intn(w.cfg.NumPeers - 1)
	if j >= i {
		j++
	}
	if !w.online[j] {
		return
	}
	payer := w.peers[i]
	payeeID := fmt.Sprintf("peer-%d", j)

	var paid bool
	var offlineCoin uint64
	var haveOffline bool
	for _, sn := range payer.HeldCoins() {
		a, ok := payer.HeldAssignment(sn)
		if !ok {
			continue
		}
		var ownerIdx int
		if _, err := fmt.Sscanf(a.Coin.Owner, "peer-%d", &ownerIdx); err != nil {
			continue
		}
		if ownerIdx >= 0 && ownerIdx < len(w.online) && w.online[ownerIdx] {
			if err := payer.TransferTo(payeeID, sn); err == nil {
				paid = true
				break
			}
		} else if !haveOffline {
			offlineCoin, haveOffline = sn, true
		}
	}
	if !paid && haveOffline {
		paid = payer.TransferViaBroker(payeeID, offlineCoin) == nil
	}
	if !paid {
		sn, err := payer.Purchase(1)
		if err == nil {
			paid = payer.IssueTo(payeeID, sn) == nil
		}
	}
	if paid {
		w.res.Payments++
	} else {
		w.res.Failed++
	}
}

func (w *ppayWorld) collect() {
	res := w.res
	res.BrokerOps = w.broker.Ops()
	for _, p := range w.peers {
		res.PeerOpsTotal = res.PeerOpsTotal.Add(p.Ops())
	}
	res.BrokerCPU = costmodel.CPU(w.bRec.Snapshot())
	for _, rec := range w.recs {
		res.PeerCPUTotal += costmodel.CPU(rec.Snapshot())
	}
	res.BrokerComm = costmodel.Comm(w.net.Stats("broker"))
	for i := range w.peers {
		res.PeerCommTotal += costmodel.Comm(w.net.Stats(bus.Address(fmt.Sprintf("p:%d", i))))
	}
}
