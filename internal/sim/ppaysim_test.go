package sim

import (
	"testing"
	"time"

	"whopay/internal/core"
)

// TestWhoPayAsScalableAsPPay reproduces the paper's headline comparative
// claim: "This basic version of WhoPay is as secure and scalable as
// existing peer-to-peer payment schemes such as PPay". Under the identical
// workload, the broker's share of system load must be of the same order in
// both systems — WhoPay pays a constant crypto premium for anonymity, it
// does not re-centralize anything.
func TestWhoPayAsScalableAsPPay(t *testing.T) {
	cfg := Config{
		NumPeers:    80,
		MeanOnline:  2 * time.Hour,
		MeanOffline: 2 * time.Hour,
		Duration:    48 * time.Hour,
		Policy:      core.PolicyI,
		Seed:        9,
	}
	who, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := RunPPay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pp.Payments == 0 || who.Payments == 0 {
		t.Fatalf("payments: whopay=%d ppay=%d", who.Payments, pp.Payments)
	}
	// Same workload → same payment volume (within noise from the
	// different RNG streams feeding protocol internals).
	ratio := float64(who.Payments) / float64(pp.Payments)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("payment volumes diverge: whopay=%d ppay=%d", who.Payments, pp.Payments)
	}
	// Scalability: broker share of the same order. WhoPay's share is
	// typically LOWER (group signatures inflate peer-side work), so the
	// bound that matters is "not meaningfully worse than PPay".
	ws, ps := who.BrokerCPUShare(), pp.BrokerCPUShare()
	if ws > 2*ps {
		t.Fatalf("WhoPay broker CPU share %.4f more than doubles PPay's %.4f", ws, ps)
	}
	wc, pc := who.BrokerCommShare(), pp.BrokerCommShare()
	if wc > 2*pc {
		t.Fatalf("WhoPay broker comm share %.4f more than doubles PPay's %.4f", wc, pc)
	}
	// The anonymity premium is visible and bounded: total system CPU
	// higher in WhoPay, but by a constant factor (< 4x), not a blowup.
	whoTotal := who.BrokerCPU + who.PeerCPUTotal
	ppTotal := pp.BrokerCPU + pp.PeerCPUTotal
	if whoTotal <= ppTotal {
		t.Fatalf("WhoPay CPU %d not above PPay %d — group signatures cost something", whoTotal, ppTotal)
	}
	if float64(whoTotal) > 4*float64(ppTotal) {
		t.Fatalf("anonymity premium blew up: whopay=%d ppay=%d", whoTotal, ppTotal)
	}
	t.Logf("broker CPU share: whopay=%.4f ppay=%.4f; anonymity premium: %.2fx",
		ws, ps, float64(whoTotal)/float64(ppTotal))
}

// TestRunPPayBasics sanity-checks the PPay world.
func TestRunPPayBasics(t *testing.T) {
	res, err := RunPPay(Config{
		NumPeers:    40,
		MeanOnline:  time.Hour,
		MeanOffline: 2 * time.Hour,
		Duration:    24 * time.Hour,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Payments == 0 {
		t.Fatal("no PPay payments")
	}
	if res.BrokerOps.Get(core.OpPurchase) == 0 {
		t.Fatal("no purchases")
	}
	if res.PeerOpsTotal.Get(core.OpTransfer) == 0 {
		t.Fatal("no owner-serviced transfers")
	}
	if res.BrokerOps.Get(core.OpDowntimeTransfer) == 0 {
		t.Fatal("no downtime transfers at 33% availability")
	}
	// No group signatures anywhere in PPay.
	if res.BrokerCPU == 0 || res.PeerCPUTotal == 0 {
		t.Fatal("no CPU accounted")
	}
}

func TestRunPPayValidation(t *testing.T) {
	if _, err := RunPPay(Config{NumPeers: 1}); err == nil {
		t.Fatal("single-peer PPay run accepted")
	}
}
