package load

import (
	"errors"
	"math/rand"

	"whopay/internal/core"
	"whopay/internal/payword"
)

// Micropayment-channel verbs: paywords stream between actor pairs off the
// broker's hot path, and only window settlements — one WhoPay purchase for
// a whole balance — touch the coin layer. Channels follow the coin
// checkout discipline: a verb takes a channel out of the pool, uses it
// exclusively, and returns it, so the harness's view of the unsettled
// balance (ch.owed) stays exact and settlement value can be counted into
// the minted ledger the audit checks.

// loadChannelCapacity is the chain length load channels open with: small
// enough that a smoke run recycles whole windows (exhaustion settle +
// reopen), large enough that paywords dominate the traffic.
const loadChannelCapacity = 128

// loadChannel is one pooled payer→vendor channel.
type loadChannel struct {
	payer  *Actor
	vendor *Actor
	root   payword.Word
	owed   int64 // vendor-reported unsettled balance after the last verb
}

// openChannelBetween opens one channel and registers it with the pool.
func (w *World) openChannelBetween(payer, vendor *Actor) (*loadChannel, error) {
	root, err := payer.Peer.OpenChannel(vendor.Peer.Addr(), core.ChannelOptions{
		Capacity: loadChannelCapacity,
	})
	if err != nil {
		return nil, err
	}
	w.channelsOpened.Add(1)
	ch := &loadChannel{payer: payer, vendor: vendor, root: root}
	w.chanMu.Lock()
	w.allChans = append(w.allChans, ch)
	w.chans = append(w.chans, ch)
	w.chanMu.Unlock()
	return ch, nil
}

// takeChannel checks a random channel out of the pool for exclusive use.
func (w *World) takeChannel(rng *rand.Rand) (*loadChannel, bool) {
	w.chanMu.Lock()
	defer w.chanMu.Unlock()
	if len(w.chans) == 0 {
		return nil, false
	}
	i := rng.Intn(len(w.chans))
	ch := w.chans[i]
	w.chans[i] = w.chans[len(w.chans)-1]
	w.chans = w.chans[:len(w.chans)-1]
	return ch, true
}

// giveChannel returns a channel to the pool.
func (w *World) giveChannel(ch *loadChannel) {
	w.chanMu.Lock()
	w.chans = append(w.chans, ch)
	w.chanMu.Unlock()
}

// OpChannelPay streams one payword down a pooled channel, opening a fresh
// channel when the pool runs dry (every channel checked out, or recycled).
// A window that closes underneath the payment (chain exhausted) was
// settled by the peer layer on the way out; the harness observes the
// settlement value and lets the next dry intent open a replacement.
func (w *World) OpChannelPay(rng *rand.Rand) error {
	ch, ok := w.takeChannel(rng)
	if !ok {
		nc, err := w.openLoadChannel(rng)
		if err != nil {
			return err
		}
		ch = nc
	}
	rc, err := ch.payer.Peer.ChannelPay(ch.root)
	switch {
	case err == nil:
		ch.owed = rc.Owed
		w.channelPays.Add(1)
		w.giveChannel(ch)
		return nil
	case errors.Is(err, core.ErrChannelClosed):
		// The exhaustion settle inside ChannelPay bought one WhoPay coin
		// for the whole window balance and issued it to the vendor —
		// value the broker minted that this harness must observe, or the
		// post-run conservation check would flag the vendor's deposit.
		w.observeSettlement(ch.owed)
		w.channelRecycled.Add(1)
		return nil // window recycling is the scenario working as designed
	case errors.Is(err, core.ErrNoChannel):
		return ErrSkip // raced a close; a replacement opens on the next dry intent
	default:
		// A payword burned on a failed call self-heals on the next
		// release (the vendor credits skipped indices), so the channel
		// stays in rotation. The payer-side balance only moves on
		// success; refresh our copy from it.
		if owed, _, found := ch.payer.Peer.ChannelBalance(ch.root); found {
			ch.owed = owed
		}
		w.giveChannel(ch)
		return err
	}
}

// OpChannelSettle settles a pooled channel's balance now — the explicit
// end-of-window payment, one WhoPay purchase covering every payword since
// the last settlement — and keeps the window open.
func (w *World) OpChannelSettle(rng *rand.Rand) error {
	ch, ok := w.takeChannel(rng)
	if !ok {
		return ErrSkip
	}
	n, err := ch.payer.Peer.SettleChannel(ch.root)
	switch {
	case err == nil:
		w.observeSettlement(n)
		ch.owed = 0
	case errors.Is(err, core.ErrNoChannel), errors.Is(err, core.ErrChannelClosed):
		return ErrSkip // raced a close; not returned to the pool
	default:
		if owed, _, found := ch.payer.Peer.ChannelBalance(ch.root); found {
			ch.owed = owed
		}
	}
	w.giveChannel(ch)
	return err
}

// openLoadChannel opens a channel between two random online actors.
func (w *World) openLoadChannel(rng *rand.Rand) (*loadChannel, error) {
	payer := w.pickOnline(rng, -1)
	if payer == nil {
		return nil, ErrSkip
	}
	vendor := w.pickOnline(rng, payer.Idx)
	if vendor == nil {
		return nil, ErrSkip
	}
	return w.openChannelBetween(payer, vendor)
}

// observeSettlement books one settlement's value as minted: the purchase
// happened inside the peer's channel layer, invisible to the verbs that
// normally count minted value at Purchase call sites.
func (w *World) observeSettlement(n int64) {
	if n <= 0 {
		return
	}
	w.minted.Add(n)
	w.channelSettles.Add(1)
	w.channelSettled.Add(n)
}

// settleChannels closes every channel the run opened, converting any
// unsettled window balance into WhoPay coins before the ledger drain
// deposits the vendors' wallets. A channel that already recycled answers
// ErrNoChannel and is skipped; transient failures get retried.
func (w *World) settleChannels() {
	w.chanMu.Lock()
	chans := append([]*loadChannel(nil), w.allChans...)
	w.chans = nil
	w.chanMu.Unlock()
	for _, ch := range chans {
		for attempt := 0; attempt < 3; attempt++ {
			n, err := ch.payer.Peer.CloseChannel(ch.root)
			if err == nil {
				w.observeSettlement(n)
				break
			}
			if errors.Is(err, core.ErrNoChannel) || errors.Is(err, core.ErrChannelClosed) {
				break
			}
		}
	}
}
