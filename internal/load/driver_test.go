package load

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"whopay/internal/bus"
	"whopay/internal/core"
)

// virtualClock is a deterministic test clock: Wait jumps time forward to
// the requested instant, so a schedule "runs" instantly and every timing
// decision the driver makes is exact arithmetic.
type virtualClock struct {
	mu  sync.Mutex
	now time.Time
}

func newVirtualClock() *virtualClock {
	return &virtualClock{now: time.Unix(1000, 0)}
}

func (c *virtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *virtualClock) Wait(t time.Time, cancel <-chan struct{}) {
	select {
	case <-cancel:
		return
	default:
	}
	c.mu.Lock()
	if t.After(c.now) {
		c.now = t
	}
	c.mu.Unlock()
}

// TestDriverOpenLoopNoBackpressure is the coordinated-omission proof
// (satellite: deterministic fake-clock scheduler test). Operation 0 wedges
// for the whole run; a closed-loop driver would stall the arrival stream
// behind it. This driver must keep dispatching every later intent at its
// exact intended virtual time, and when the wedged operation finally
// finishes, its latency must be charged from its *intended* start — the
// full stall, not the cheap tail end.
func TestDriverOpenLoopNoBackpressure(t *testing.T) {
	const (
		ops      = 50
		rate     = 100.0 // 10ms interval
		interval = 10 * time.Millisecond
	)
	clock := newVirtualClock()
	base := clock.Now()

	block := make(chan struct{})
	var mu sync.Mutex
	intended := make(map[int]time.Time, ops)
	lats := make(map[int]time.Duration, ops)
	var finished atomic.Int64

	d := NewDriver(DriverConfig{
		Rate:       rate,
		Ops:        ops,
		Clock:      clock,
		DrainGrace: 30 * time.Second, // wall-clock; never reached
		Do: func(seq int) error {
			if seq == 0 {
				<-block // the stalled target
			}
			return nil
		},
		OnDone: func(seq int, at time.Time, lat time.Duration, err error) {
			mu.Lock()
			intended[seq] = at
			lats[seq] = lat
			mu.Unlock()
			finished.Add(1)
		},
	})

	resCh := make(chan Result, 1)
	go func() { resCh <- d.Run() }()

	// Every intent except the wedged one must complete while op 0 still
	// blocks — the scheduler applied no backpressure.
	deadline := time.Now().Add(10 * time.Second)
	for finished.Load() != ops-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d ops finished while op 0 blocked — scheduler applied backpressure", finished.Load(), ops-1)
		}
		time.Sleep(time.Millisecond)
	}
	lastIntent := base.Add(time.Duration(float64(ops-1) * float64(time.Second) / rate))
	if got := clock.Now(); !got.Equal(lastIntent) {
		t.Fatalf("virtual clock at %v, want schedule end %v", got, lastIntent)
	}

	close(block)
	res := <-resCh

	if res.Scheduled != ops || res.Completed != ops || res.Failed != 0 || res.Dropped != 0 {
		t.Fatalf("scheduled/completed/failed/dropped = %d/%d/%d/%d", res.Scheduled, res.Completed, res.Failed, res.Dropped)
	}
	// Queued intents kept their intended start timestamps: exact virtual
	// arithmetic, no drift from the wedged operation.
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < ops; i++ {
		want := base.Add(time.Duration(float64(i) * float64(time.Second) / rate))
		if got, ok := intended[i]; !ok || !got.Equal(want) {
			t.Fatalf("op %d intended start = %v (recorded %v), want %v", i, got, ok, want)
		}
	}
	// The wedged op is charged its whole stall: it started at base and the
	// virtual clock ended at base + 49*interval.
	if want := time.Duration(ops-1) * interval; lats[0] != want {
		t.Fatalf("wedged op latency = %v, want full stall %v", lats[0], want)
	}
	if res.Hist.Max() != time.Duration(ops-1)*interval {
		t.Fatalf("hist max = %v", res.Hist.Max())
	}
}

// TestDriverTallies: success / skip / failure split into the right
// counters, and protocol rejections get a per-code breakdown.
func TestDriverTallies(t *testing.T) {
	clock := newVirtualClock()
	d := NewDriver(DriverConfig{
		Rate:  1000,
		Ops:   40,
		Clock: clock,
		Do: func(seq int) error {
			switch seq % 4 {
			case 0:
				return nil
			case 1:
				return ErrSkip
			case 2:
				return fmt.Errorf("wrapped: %w", bus.ErrUnreachable)
			default:
				return &bus.RemoteError{Msg: "busy", Code: "core.coin_busy"}
			}
		},
	})
	res := d.Run()
	if res.Completed != 10 || res.Skipped != 10 || res.Failed != 20 {
		t.Fatalf("completed/skipped/failed = %d/%d/%d", res.Completed, res.Skipped, res.Failed)
	}
	if res.Errors.Transport != 10 || res.Errors.Protocol != 10 {
		t.Fatalf("transport/protocol = %d/%d", res.Errors.Transport, res.Errors.Protocol)
	}
	if res.Errors.Rejections["core.coin_busy"] != 10 {
		t.Fatalf("rejections = %v", res.Errors.Rejections)
	}
	if res.Hist.Count() != 10 {
		t.Fatalf("hist only records successes, count = %d", res.Hist.Count())
	}
}

// stopClock lets the first 10 waits through instantly, then parks every
// later wait on the cancel channel — a deterministic window in which to
// call Stop.
type stopClock struct {
	*virtualClock
	waits atomic.Int64
}

func (c *stopClock) Wait(t time.Time, cancel <-chan struct{}) {
	if c.waits.Add(1) > 10 {
		<-cancel
		return
	}
	c.virtualClock.Wait(t, cancel)
}

// TestDriverStop: stopping mid-schedule dispatches no further intents and
// marks the result.
func TestDriverStop(t *testing.T) {
	clock := &stopClock{virtualClock: newVirtualClock()}
	d := NewDriver(DriverConfig{
		Rate:  100,
		Ops:   1000,
		Clock: clock,
		Do:    func(int) error { return nil },
	})
	resCh := make(chan Result, 1)
	go func() { resCh <- d.Run() }()
	deadline := time.Now().Add(10 * time.Second)
	for clock.waits.Load() < 11 {
		if time.Now().After(deadline) {
			t.Fatal("scheduler never reached the parked wait")
		}
		time.Sleep(time.Millisecond)
	}
	d.Stop()
	res := <-resCh
	if !res.Stopped {
		t.Fatal("result not marked stopped")
	}
	if res.Scheduled != 10 {
		t.Fatalf("scheduled = %d intents, want exactly the 10 pre-Stop ones", res.Scheduled)
	}
}

// TestClassify pins the class precedence: a handler that answered is a
// protocol rejection even when its cause chain carries transport sentinels,
// timeouts beat generic transport, and unknown errors fall through.
func TestClassify(t *testing.T) {
	cases := []struct {
		err   error
		class string
		code  string
	}{
		{nil, "", ""},
		{&bus.RemoteError{Msg: "no", Code: "core.coin_busy"}, ClassProtocol, "core.coin_busy"},
		{fmt.Errorf("call: %w", &bus.RemoteError{Msg: "x", Code: "core.frozen"}), ClassProtocol, "core.frozen"},
		{timeoutErr{}, ClassTimeout, ""},
		{fmt.Errorf("send: %w", bus.ErrUnreachable), ClassTransport, ""},
		{bus.ErrClosed, ClassTransport, ""},
		{errors.New("mystery"), ClassOther, ""},
	}
	for _, c := range cases {
		class, code := Classify(c.err)
		if class != c.class || code != c.code {
			t.Fatalf("Classify(%v) = %q,%q want %q,%q", c.err, class, code, c.class, c.code)
		}
	}
	// A remote rejection carrying a registered sentinel but no explicit
	// code still yields the stable wire code.
	rejected := core.ErrAlreadyDeposited
	if class, code := Classify(&bus.RemoteError{Msg: rejected.Error(), Code: "core.already_deposited"}); class != ClassProtocol || code != "core.already_deposited" {
		t.Fatalf("already-deposited classification = %q,%q", class, code)
	}
}

type timeoutErr struct{}

func (timeoutErr) Error() string { return "deadline exceeded" }
func (timeoutErr) Timeout() bool { return true }
