// Package load is WhoPay's open-loop load harness (DESIGN.md §12): it
// spawns many lightweight peer actors against a live broker (and optional
// DHT) over tcpbus, issues protocol operations at a configured arrival
// rate rather than in request-response lockstep, and records per-operation
// latency into HDR-style log-bucketed histograms. Because every operation
// is timed from its *intended* start — not from when a free worker got
// around to sending it — a stalled broker inflates the tail instead of
// silently thinning the arrival stream (no coordinated omission).
//
// The harness is exposed through `whopay-bench -load` with a named
// scenario matrix (steady, flash-crowd, hot-coin, mass-downtime,
// double-spend-flood, partition), each runnable with or without the
// write-ahead log, and emits machine-readable BENCH_load_<scenario>.json
// artifacts so latency trajectories stay diffable across PRs. Every run
// ends with a ledger audit: the world is drained back to the broker and
// value conservation plus the no-double-spend invariant are checked
// exactly, the same arbiter the chaos suite uses.
package load

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: log-linear, HDR-style. Values are nanoseconds.
// Each power of two is split into 1<<histSubBits linear sub-buckets, so the
// relative quantization error is bounded by 2^-histSubBits (~3.1%) across
// the whole range — unlike fixed-bucket histograms, the tail keeps the same
// relative resolution as the body, which is what p999 needs.
const (
	histSubBits = 5
	histSubs    = 1 << histSubBits
	// histMaxNs caps recorded values (~18 minutes); anything longer is a
	// wedged operation, not a latency.
	histMaxNs = int64(1) << 40
	// histBuckets: values below histSubs get an exact bucket each; every
	// further power of two [2^e, 2^(e+1)) for e in [histSubBits, 40]
	// contributes histSubs sub-buckets.
	histBuckets = histSubs + (40-histSubBits+1)*histSubs
)

// Hist is a concurrent HDR-style latency histogram: one atomic counter per
// log-linear bucket plus atomic count/sum/max, so thousands of actor
// goroutines record without a lock. The zero value is not usable; call
// NewHist.
type Hist struct {
	counts []atomic.Int64
	count  atomic.Int64
	sumNs  atomic.Int64
	maxNs  atomic.Int64
}

// NewHist returns an empty histogram.
func NewHist() *Hist {
	return &Hist{counts: make([]atomic.Int64, histBuckets)}
}

// bucketIdx maps a non-negative nanosecond value to its bucket.
func bucketIdx(v int64) int {
	if v < histSubs {
		return int(v)
	}
	if v > histMaxNs {
		v = histMaxNs
	}
	e := bits.Len64(uint64(v)) - 1 // 2^e <= v < 2^(e+1)
	sub := int(v>>(uint(e)-histSubBits)) - histSubs
	return (e-histSubBits)*histSubs + histSubs + sub
}

// bucketUpper returns the (inclusive) upper bound of bucket i in
// nanoseconds — quantiles report this bound, so they never understate.
func bucketUpper(i int) int64 {
	if i < histSubs {
		return int64(i)
	}
	g := (i - histSubs) / histSubs
	sub := (i - histSubs) % histSubs
	e := g + histSubBits
	return int64(histSubs+sub+1)<<(uint(e)-histSubBits) - 1
}

// Record adds one observation.
func (h *Hist) Record(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketIdx(ns)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(ns)
	for {
		cur := h.maxNs.Load()
		if ns <= cur || h.maxNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Hist) Count() int64 { return h.count.Load() }

// Max returns the largest observation.
func (h *Hist) Max() time.Duration { return time.Duration(h.maxNs.Load()) }

// Mean returns the arithmetic mean (0 for an empty histogram).
func (h *Hist) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNs.Load() / n)
}

// Quantile returns the q-quantile (0 < q <= 1), e.g. 0.5 for p50, 0.999
// for p999. The answer is a bucket upper bound, so it overstates by at
// most the bucket's relative width (~3%). Returns 0 for an empty
// histogram. Reads race writers by design (a live scrape); the result is
// a consistent-enough snapshot for reporting.
func (h *Hist) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q*float64(total) + 0.5)
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= target {
			return time.Duration(bucketUpper(i))
		}
	}
	return h.Max()
}

// Quantiles is the percentile summary a load report carries.
type Quantiles struct {
	Count int64
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	P999  time.Duration
	Max   time.Duration
	Mean  time.Duration
}

// Summary extracts the report quantiles in one pass-per-quantile.
func (h *Hist) Summary() Quantiles {
	return Quantiles{
		Count: h.Count(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.Max(),
		Mean:  h.Mean(),
	}
}
