package load

import (
	"errors"
	"fmt"
	"math/rand"

	"whopay/internal/coin"
	"whopay/internal/core"
)

// Operations are the verbs a scenario mixes. Each takes the world plus a
// per-intent deterministic rng and returns nil (success), ErrSkip (no
// eligible state), or the protocol/transport error the driver classifies.
//
// Coin-safety discipline (the chaos suite's, verbatim): a coin whose
// operation failed with a definitive protocol rejection goes back into
// circulation — the rejection proves nothing changed hands. A coin whose
// operation failed in transport is ambiguous (the owner or broker may have
// committed the rebind even though we never saw the reply), so it is
// parked: retrying it toward a different payee could sign a second binding
// and frame an honest owner. Parked coins are redeemed by the post-run
// drain from wallet ground truth.

// OpMint purchases a fresh coin and issues it to a random online actor,
// putting a new spendable coin into circulation.
func (w *World) OpMint(rng *rand.Rand) error {
	owner := w.pickOnline(rng, -1)
	if owner == nil {
		return ErrSkip
	}
	holder := w.pickOnline(rng, owner.Idx)
	if holder == nil {
		holder = owner
	}
	id, err := owner.Peer.Purchase(1, false)
	if err != nil {
		return err
	}
	w.minted.Add(1)
	if err := owner.Peer.IssueTo(holder.Peer.Addr(), id); err != nil {
		// The coin stays self-held at the owner; the drain redeems it.
		w.parked.Add(1)
		return err
	}
	holder.giveCoin(id)
	return nil
}

// OpPurchase is the flash-crowd storm verb: a bare purchase, no issue. The
// coin stays self-held; the drain settles it.
func (w *World) OpPurchase(rng *rand.Rand) error {
	a := w.pickOnline(rng, -1)
	if a == nil {
		return ErrSkip
	}
	if _, err := a.Peer.Purchase(1, false); err != nil {
		return err
	}
	w.minted.Add(1)
	return nil
}

// OpTransfer spends a random spendable coin to a random payee via the
// owner, falling back to the broker's downtime path when the owner is
// unreachable (same coin, same payee — the safe retry).
func (w *World) OpTransfer(rng *rand.Rand) error {
	payer, id, ok := w.takeReady(rng)
	if !ok {
		return w.OpMint(rng) // restock instead of idling
	}
	payee := w.pickOnline(rng, payer.Idx)
	if payee == nil {
		payer.giveCoin(id)
		return ErrSkip
	}
	err := payer.Peer.TransferTo(payee.Peer.Addr(), id)
	if class, _ := Classify(err); err != nil && class != ClassProtocol {
		err = payer.Peer.TransferViaBroker(payee.Peer.Addr(), id)
	}
	return w.settleTransfer(payer, payee, id, err)
}

// OpDowntimeTransfer spends through the broker unconditionally — the
// paper's downtime path, which mass-downtime keeps under constant load.
func (w *World) OpDowntimeTransfer(rng *rand.Rand) error {
	payer, id, ok := w.takeReady(rng)
	if !ok {
		return w.OpMint(rng)
	}
	payee := w.pickOnline(rng, payer.Idx)
	if payee == nil {
		payer.giveCoin(id)
		return ErrSkip
	}
	err := payer.Peer.TransferViaBroker(payee.Peer.Addr(), id)
	return w.settleTransfer(payer, payee, id, err)
}

// settleTransfer applies the coin-safety discipline to a transfer outcome.
func (w *World) settleTransfer(payer, payee *Actor, id coin.ID, err error) error {
	switch class, _ := Classify(err); {
	case err == nil:
		payee.giveCoin(id)
		return nil
	case class == ClassProtocol:
		payer.giveCoin(id) // definitive rejection: still the payer's coin
		return err
	default:
		w.parked.Add(1) // ambiguous: park for the drain
		return err
	}
}

// OpRenew renews a random spendable coin's binding (owner path when the
// owner answers, broker otherwise — Peer.Renew picks).
func (w *World) OpRenew(rng *rand.Rand) error {
	holder, id, ok := w.takeReady(rng)
	if !ok {
		return ErrSkip
	}
	_, err := holder.Peer.Renew(id)
	switch class, _ := Classify(err); {
	case err == nil, class == ClassProtocol:
		holder.giveCoin(id)
		return err
	default:
		w.parked.Add(1)
		return err
	}
}

// OpDeposit redeems a random spendable coin at the broker.
func (w *World) OpDeposit(rng *rand.Rand) error {
	holder, id, ok := w.takeReady(rng)
	if !ok {
		return ErrSkip
	}
	err := holder.Peer.Deposit(id, holder.Peer.ID())
	if err != nil {
		// Rejected or ambiguous, the coin leaves circulation either
		// way: a rejection here (stale binding) would only repeat.
		w.parked.Add(1)
	}
	return err
}

// OpDoubleSpend deposits a coin and replays the identical request. The
// broker must credit once and reject the copy; an accepted replay is the
// one outcome the scenario exists to rule out.
func (w *World) OpDoubleSpend(rng *rand.Rand) error {
	holder, id, ok := w.takeReady(rng)
	if !ok {
		return w.OpMint(rng)
	}
	first, replay := holder.Peer.DepositTwice(id, holder.Peer.ID())
	if first != nil {
		w.parked.Add(1)
		return first
	}
	switch class, _ := Classify(replay); {
	case replay == nil:
		w.dsAccepted.Add(1)
		return fmt.Errorf("load: broker accepted a deposit replay for %s", id)
	case errors.Is(replay, core.ErrAlreadyDeposited):
		w.dsRejected.Add(1)
		return nil
	case class == ClassProtocol:
		// Rejected, but not with the canonical verdict — suspicious
		// enough to surface.
		return replay
	default:
		// The replay never landed; the first deposit stands.
		return nil
	}
}

// OpHotTransfer spends a coin from the shared hot set — deliberately
// non-exclusive, so concurrent intents race on the same coin and the
// owner's service lock (ErrCoinBusy), holder checks (ErrNotHolder,
// ErrUnknownCoin) and binding freshness (ErrStaleBinding) all fire. Those
// rejections are the scenario's expected output, not failures of the
// harness.
func (w *World) OpHotTransfer(rng *rand.Rand) error {
	e, from := w.pickHot(rng)
	if e == nil {
		return ErrSkip
	}
	target := w.pickOnline(rng, from.Idx)
	if target == nil {
		return ErrSkip
	}
	err := from.Peer.TransferTo(target.Peer.Addr(), e.id)
	switch class, _ := Classify(err); {
	case err == nil:
		w.hotMu.Lock()
		if e.holder == from.Idx && !e.parked {
			e.holder = target.Idx
		}
		w.hotMu.Unlock()
		return nil
	case class == ClassProtocol:
		return err // lost the race; the coin is where it is
	default:
		w.hotMu.Lock()
		if e.holder == from.Idx {
			e.parked = true
		}
		w.hotMu.Unlock()
		w.parked.Add(1)
		return err
	}
}

// OpHotRenew renews a hot coin — renewal and transfer contending on the
// same owner service lock.
func (w *World) OpHotRenew(rng *rand.Rand) error {
	e, from := w.pickHot(rng)
	if e == nil {
		return ErrSkip
	}
	_, err := from.Peer.Renew(e.id)
	if class, _ := Classify(err); err != nil && class != ClassProtocol {
		w.hotMu.Lock()
		if e.holder == from.Idx {
			e.parked = true
		}
		w.hotMu.Unlock()
		w.parked.Add(1)
	}
	return err
}

// OpHotVerify re-checks a hot coin's public binding against the DHT — the
// paper's real-time double-spend watch read. The same few bindings are
// read over and over by their holders, which is exactly the read storm
// the client lease cache sheds (DESIGN.md §14). Losing a transfer race
// surfaces as unknown-coin or a stale check; that is the scenario's
// contention, not a harness failure.
func (w *World) OpHotVerify(rng *rand.Rand) error {
	e, from := w.pickHot(rng)
	if e == nil {
		return ErrSkip
	}
	err := from.Peer.VerifyHeldCoin(e.id)
	if errors.Is(err, core.ErrDetectionOff) {
		return ErrSkip
	}
	return err
}

// pickHot snapshots a random live hot-set entry and its believed holder.
func (w *World) pickHot(rng *rand.Rand) (*hotCoin, *Actor) {
	if len(w.hot) == 0 {
		return nil, nil
	}
	w.hotMu.Lock()
	defer w.hotMu.Unlock()
	for t := 0; t < 4; t++ {
		e := w.hot[rng.Intn(len(w.hot))]
		if !e.parked {
			return e, w.Actors[e.holder]
		}
	}
	return nil, nil
}
