package load

import (
	"fmt"
	"os"
	"testing"
	"time"

	"whopay/internal/bus"
	"whopay/internal/dht/replica"
)

// TestHotCoinLeaseComparison runs the hot-coin scenario three ways — as
// defined (quorum replication with the client lease cache), with the lease
// cache effectively off (a 1ns TTL — every read pays the full quorum), and
// with replication stripped back to the legacy single-copy DHT — and logs
// the latency profiles side by side. It regenerates the evidence behind
// results/dht_replica_bench.txt, so it only runs when asked:
//
//	WHOPAY_LEASE_CMP=1 go test -run TestHotCoinLeaseComparison -v ./internal/load/
func TestHotCoinLeaseComparison(t *testing.T) {
	if os.Getenv("WHOPAY_LEASE_CMP") == "" {
		t.Skip("set WHOPAY_LEASE_CMP=1 to run the lease on/off comparison")
	}
	sc, _ := FindScenario("hot-coin")
	variant := func(name string, rep *replica.Config) string {
		v := *sc
		v.DHTReplication = rep
		if rep == nil {
			v.DHTPersist = false
		}
		base := WorldConfig{Actors: 16, Seed: 42, Network: bus.NewMemory()}
		w, err := NewWorld(v.WorldConfig(base))
		if err != nil {
			t.Fatalf("%s world: %v", name, err)
		}
		defer w.Close()
		run := NewRun(w, &v, RunConfig{
			Rate:       400,
			Ops:        4000,
			Seed:       42,
			DrainGrace: 60 * time.Second,
		})
		res := run.Run()
		audit := w.DrainAndAudit()
		if len(audit.Violations) > 0 {
			t.Fatalf("%s: audit violations: %v", name, audit.Violations)
		}
		hits, misses, _, _ := w.DHTLeaseStats()
		line := fmt.Sprintf("%-28s p50=%.2fms p90=%.2fms p99=%.2fms max=%.2fms  completed=%d failed=%d lease hits/misses=%d/%d",
			name,
			float64(res.Hist.Quantile(0.50))/1e6,
			float64(res.Hist.Quantile(0.90))/1e6,
			float64(res.Hist.Quantile(0.99))/1e6,
			float64(res.Hist.Max())/1e6,
			res.Completed, res.Failed, hits, misses)
		t.Log(line)
		return line
	}
	variant("hot-coin legacy single-copy", nil)
	variant("hot-coin 3/2/2 lease off", &replica.Config{N: 3, W: 2, R: 2, LeaseTTL: time.Nanosecond})
	variant("hot-coin 3/2/2 + lease", sc.DHTReplication)
}
