package load

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// ReportSchema versions the BENCH_load_*.json layout. Bump on breaking
// changes so trajectory diffing across PRs can tell layouts apart.
const ReportSchema = "whopay/bench-load/v1"

// ConfigEcho is the run's configuration, echoed into the artifact so a
// trajectory diff can tell a code regression from a knob change. No git
// revision and no timestamps — artifacts must be byte-comparable across
// reruns of the same tree.
type ConfigEcho struct {
	Actors       int     `json:"actors"`
	WarmCoins    int     `json:"warm_coins"`
	HotCoins     int     `json:"hot_coins,omitempty"`
	Detection    bool    `json:"detection"`
	DHTNodes     int     `json:"dht_nodes,omitempty"`
	Faults       bool    `json:"faults"`
	Seed         int64   `json:"seed"`
	Rate         float64 `json:"rate_ops_per_sec"`
	Ops          int     `json:"ops,omitempty"`
	DurationSec  float64 `json:"duration_sec,omitempty"`
	Scheme       string  `json:"scheme"`
	WAL          bool    `json:"wal"`
	Fsync        string  `json:"fsync,omitempty"`
	GobWire      bool    `json:"gob_wire,omitempty"`
	Channels     int     `json:"channels,omitempty"`
	DepositBatch int     `json:"deposit_batch,omitempty"`
	Shards       int     `json:"shards,omitempty"`
	Replicas     int     `json:"replicas,omitempty"`
	LeaseTTLMs   float64 `json:"lease_ttl_ms,omitempty"`
	// DHTNWR echoes the DHT replication quorum as "N/W/R"; empty when the
	// run used the legacy single-copy cluster.
	DHTNWR     string `json:"dht_nwr,omitempty"`
	DHTPersist bool   `json:"dht_persist,omitempty"`
}

// LatencyMs is the percentile summary in milliseconds, computed from
// intended start times — no coordinated omission.
type LatencyMs struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
}

// ErrorReport splits failures by class; ProtocolUnexpected counts the
// protocol rejections outside the scenario's expected set — the number a
// strict gate fails on.
type ErrorReport struct {
	Timeouts           int64            `json:"timeouts"`
	Transport          int64            `json:"transport"`
	Protocol           int64            `json:"protocol"`
	ProtocolUnexpected int64            `json:"protocol_unexpected"`
	Other              int64            `json:"other"`
	Rejections         map[string]int64 `json:"rejections,omitempty"`
}

// Report is one scenario run's machine-readable artifact.
type Report struct {
	Schema   string `json:"schema"`
	Scenario string `json:"scenario"`
	Summary  string `json:"summary"`

	Config      ConfigEcho `json:"config"`
	Interrupted bool       `json:"interrupted,omitempty"`

	Scheduled    int     `json:"scheduled"`
	Completed    int64   `json:"completed"`
	Failed       int64   `json:"failed"`
	SkippedOps   int64   `json:"skipped_ops,omitempty"`
	Dropped      int64   `json:"dropped,omitempty"`
	TargetRate   float64 `json:"target_rate"`
	AchievedRate float64 `json:"achieved_rate"`
	ElapsedSec   float64 `json:"elapsed_sec"`

	LatencyMs LatencyMs   `json:"latency_ms"`
	Errors    ErrorReport `json:"errors"`

	EventsFired []string           `json:"events_fired,omitempty"`
	Obs         map[string]float64 `json:"obs,omitempty"`

	Channels *ChannelStats  `json:"channels,omitempty"`
	Failover *FailoverStats `json:"failover,omitempty"`
	DHT      *DHTStats      `json:"dht,omitempty"`

	Audit Audit `json:"audit"`
}

// FailoverStats is the broker-failover scenario's extract: how many
// leaders were killed, how long each shard took to serve again (wall time
// from crash to a promoted follower answering — the lease TTL is the
// floor), and how much client traffic was rerouted by redirect hints.
type FailoverStats struct {
	LeadersKilled int       `json:"leaders_killed"`
	RecoverMs     []float64 `json:"recover_ms"`
	RecoverMsMax  float64   `json:"recover_ms_max"`
	PromoteMsMean float64   `json:"promote_ms_mean,omitempty"`
	Redirects     int64     `json:"redirects"`
	RedirectRate  float64   `json:"redirect_rate"` // redirects per completed op
}

// DHTStats is the replicated-DHT extract (DESIGN.md §14): node kills and
// recovery times, quorum-write tallies and anti-entropy work summed over
// the cluster, and the client-side lease cache's hit rate — the number the
// hot-coin read path is bought with. StaleReads must stay zero.
type DHTStats struct {
	NodesKilled   int64     `json:"nodes_killed"`
	RecoverMs     []float64 `json:"recover_ms,omitempty"`
	RecoverMsMax  float64   `json:"recover_ms_max,omitempty"`
	QuorumWrites  float64   `json:"quorum_writes"`
	QuorumFails   float64   `json:"quorum_write_failures"`
	SweepRounds   float64   `json:"sweep_rounds"`
	SweepRepairs  float64   `json:"sweep_repairs"`
	LeaseHits     uint64    `json:"lease_hits"`
	LeaseMisses   uint64    `json:"lease_misses"`
	LeaseHitRate  float64   `json:"lease_hit_rate"`
	StaleReads    uint64    `json:"stale_reads"`
	ReadsRepaired uint64    `json:"reads_repaired"`
}

// ChannelStats summarizes micropay-channel activity: windows opened,
// paywords streamed, windows recycled by chain exhaustion, and the
// settlements that converted window balances into WhoPay coins.
type ChannelStats struct {
	Opened       int64 `json:"opened"`
	Pays         int64 `json:"pays"`
	Recycled     int64 `json:"recycled"`
	Settlements  int64 `json:"settlements"`
	SettledValue int64 `json:"settled_value"`
}

// obsExports is the registry slice a report carries: transport health and
// broker WAL cost, the counters the tentpole's error accounting leans on.
// WAL metrics are labeled by entity; the broker is the journaling one.
var obsExports = []struct {
	name   string
	labels map[string]string
}{
	{"whopay_tcpbus_calls_total", nil},
	{"whopay_tcpbus_dials_total", nil},
	{"whopay_tcpbus_dial_errors_total", nil},
	{"whopay_tcpbus_reconnects_total", nil},
	{"whopay_tcpbus_timeouts_total", nil},
	{"whopay_tcpbus_open_conns", nil},
	{"whopay_tcpbus_outbound_conns", nil},
	{"whopay_tcpbus_frames_tx_total", nil},
	{"whopay_tcpbus_frames_rx_total", nil},
	{"whopay_tcpbus_bytes_tx_total", nil},
	{"whopay_tcpbus_bytes_rx_total", nil},
	{"whopay_wal_fsync_seconds", map[string]string{"entity": "broker"}},
	{"whopay_wal_errors_total", map[string]string{"entity": "broker"}},
	{"whopay_broker_deposit_batch_flushes", nil},
}

// BuildReport assembles the artifact for one finished (or interrupted)
// run.
func BuildReport(r *Run, res Result, audit Audit) Report {
	w, sc, rc := r.W, r.Sc, r.Cfg
	q := res.Hist.Summary()
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

	rep := Report{
		Schema:   ReportSchema,
		Scenario: sc.Name,
		Summary:  sc.Summary,
		Config: ConfigEcho{
			Actors:       w.cfg.Actors,
			WarmCoins:    w.cfg.WarmCoins,
			HotCoins:     w.cfg.HotCoins,
			Detection:    w.cfg.Detection,
			DHTNodes:     w.cfg.DHTNodes,
			Faults:       w.cfg.Faults,
			Seed:         rc.Seed,
			Rate:         rc.Rate,
			Ops:          rc.Ops,
			DurationSec:  rc.Duration.Seconds(),
			Scheme:       w.cfg.Scheme.Name(),
			WAL:          w.cfg.WALDir != "",
			Fsync:        walPolicyName(w),
			GobWire:      w.cfg.GobWire,
			Channels:     w.cfg.Channels,
			DepositBatch: w.cfg.DepositBatch,
			Shards:       w.cfg.Shards,
			Replicas:     w.cfg.Replicas,
			LeaseTTLMs:   ms(w.cfg.LeaseTTL),
			DHTNWR:       dhtNWR(w),
			DHTPersist:   w.cfg.DHTPersist,
		},
		Interrupted: res.Stopped,
		Scheduled:   res.Scheduled,
		Completed:   res.Completed,
		Failed:      res.Failed,
		SkippedOps:  res.Skipped,
		Dropped:     res.Dropped,
		TargetRate:  rc.Rate,
		ElapsedSec:  res.Elapsed.Seconds(),
		EventsFired: r.EventsFired(),
		Audit:       audit,
	}
	if res.Elapsed > 0 {
		rep.AchievedRate = float64(res.Completed) / res.Elapsed.Seconds()
	}
	rep.LatencyMs = LatencyMs{
		Count: q.Count,
		P50:   ms(q.P50),
		P90:   ms(q.P90),
		P99:   ms(q.P99),
		P999:  ms(q.P999),
		Max:   ms(q.Max),
		Mean:  ms(q.Mean),
	}
	rep.Errors = ErrorReport{
		Timeouts:   res.Errors.Timeouts,
		Transport:  res.Errors.Transport,
		Protocol:   res.Errors.Protocol,
		Other:      res.Errors.Other,
		Rejections: res.Errors.Rejections,
	}
	for code, n := range res.Errors.Rejections {
		if !sc.ExpectsRejection(code) {
			rep.Errors.ProtocolUnexpected += n
		}
	}
	rep.Obs = make(map[string]float64)
	for _, exp := range obsExports {
		if v, ok := w.Reg.Value(exp.name, exp.labels); ok {
			rep.Obs[exp.name] = v
		}
	}
	// Deposit-batch occupancy: the histogram rides the duration API with
	// occupancy n recorded as n seconds, so Sum() is total deposits
	// flushed and Sum/Count is the mean batch size — the amortization
	// actually achieved under this load.
	if h := w.Reg.Histogram("whopay_broker_deposit_batch_occupancy", nil, nil); h.Count() > 0 {
		rep.Obs["whopay_broker_deposit_batch_deposits"] = h.Sum()
		rep.Obs["whopay_broker_deposit_batch_occupancy_mean"] = h.Sum() / float64(h.Count())
	}
	if opened := w.channelsOpened.Load(); opened > 0 {
		rep.Channels = &ChannelStats{
			Opened:       opened,
			Pays:         w.channelPays.Load(),
			Recycled:     w.channelRecycled.Load(),
			Settlements:  w.channelSettles.Load(),
			SettledValue: w.channelSettled.Load(),
		}
	}
	if w.Fed != nil {
		fo := &FailoverStats{Redirects: w.Redirects()}
		for _, d := range w.FailoverRecoveries() {
			v := ms(d)
			fo.RecoverMs = append(fo.RecoverMs, v)
			if v > fo.RecoverMsMax {
				fo.RecoverMsMax = v
			}
		}
		fo.LeadersKilled = len(fo.RecoverMs)
		if res.Completed > 0 {
			fo.RedirectRate = float64(fo.Redirects) / float64(res.Completed)
		}
		// Promotion latency (lease win → serving broker) from the cluster
		// histogram, summed across shards.
		var sum float64
		var count int64
		for s := 0; s < w.Fed.Shards(); s++ {
			lbl := map[string]string{"shard": fmt.Sprintf("%d", s)}
			h := w.Reg.Histogram("whopay_fed_failover_seconds", lbl, nil)
			sum += h.Sum()
			count += h.Count()
		}
		if count > 0 {
			fo.PromoteMsMean = sum / float64(count) * 1000
		}
		for s := 0; s < w.Fed.Shards(); s++ {
			lbl := map[string]string{"shard": fmt.Sprintf("%d", s)}
			if v, ok := w.Reg.Value("whopay_fed_failovers_total", lbl); ok {
				rep.Obs["whopay_fed_failovers_total"] += v
			}
		}
		rep.Failover = fo
	}
	if w.cfg.DHTReplication != nil && w.Cluster != nil {
		kills, recoveries := w.DHTKillStats()
		ds := &DHTStats{NodesKilled: kills}
		for _, d := range recoveries {
			v := ms(d)
			ds.RecoverMs = append(ds.RecoverMs, v)
			if v > ds.RecoverMsMax {
				ds.RecoverMsMax = v
			}
		}
		// Per-node counters are labeled by slot entity; sum the cluster.
		for i := range w.Cluster.Nodes() {
			lbl := map[string]string{"entity": fmt.Sprintf("dht-%d", i)}
			for name, dst := range map[string]*float64{
				"whopay_dht_quorum_writes_total":         &ds.QuorumWrites,
				"whopay_dht_quorum_write_failures_total": &ds.QuorumFails,
				"whopay_dht_sweep_rounds_total":          &ds.SweepRounds,
				"whopay_dht_sweep_repairs_total":         &ds.SweepRepairs,
			} {
				if v, ok := w.Reg.Value(name, lbl); ok {
					*dst += v
				}
			}
		}
		ds.LeaseHits, ds.LeaseMisses, ds.StaleReads, ds.ReadsRepaired = w.DHTLeaseStats()
		if total := ds.LeaseHits + ds.LeaseMisses; total > 0 {
			ds.LeaseHitRate = float64(ds.LeaseHits) / float64(total)
		}
		rep.DHT = ds
	}
	return rep
}

// dhtNWR renders the replication quorum ("3/2/2"), empty when off.
func dhtNWR(w *World) string {
	r := w.cfg.DHTReplication
	if r == nil {
		return ""
	}
	nodes := w.cfg.DHTNodes
	if nodes <= 0 {
		nodes = 3 // the world's default cluster size
	}
	n := r.WithDefaults(nodes)
	return fmt.Sprintf("%d/%d/%d", n.N, n.W, n.R)
}

// walPolicyName renders the world's fsync policy, empty when no WAL.
func walPolicyName(w *World) string {
	if w.cfg.WALDir == "" {
		return ""
	}
	return w.cfg.Fsync.String()
}

// ReportFileName names the artifact: BENCH_load_<scenario>.json, with a
// _wal suffix for the journaling variant so both variants of one scenario
// can live side by side. Scenario-name hyphens become underscores so the
// artifact basename splits cleanly on "_".
func ReportFileName(scenario string, wal bool) string {
	scenario = strings.ReplaceAll(scenario, "-", "_")
	if wal {
		return "BENCH_load_" + scenario + "_wal.json"
	}
	return "BENCH_load_" + scenario + ".json"
}

// WriteReport writes the artifact under dir (created on demand).
func WriteReport(dir string, rep Report) (string, error) {
	if dir == "" {
		dir = "."
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("load: report dir: %w", err)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", fmt.Errorf("load: encoding report: %w", err)
	}
	path := filepath.Join(dir, ReportFileName(rep.Scenario, rep.Config.WAL))
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("load: writing report: %w", err)
	}
	return path, nil
}
