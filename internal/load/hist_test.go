package load

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestHistBucketRoundTrip checks the log-linear bucket math: every value
// lands in a bucket whose inclusive upper bound is >= the value, and the
// bound overstates by at most the advertised relative error (~2^-5).
func TestHistBucketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	values := []int64{0, 1, 31, 32, 33, 63, 64, 1023, 1024, 1 << 20, histMaxNs - 1, histMaxNs}
	for i := 0; i < 10000; i++ {
		values = append(values, rng.Int63n(histMaxNs))
	}
	for _, v := range values {
		idx := bucketIdx(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketIdx(%d) = %d out of range [0,%d)", v, idx, histBuckets)
		}
		up := bucketUpper(idx)
		if up < v {
			t.Fatalf("bucketUpper(bucketIdx(%d)) = %d understates", v, up)
		}
		if v >= histSubs {
			// Relative error bound: bucket width / value <= 2^-histSubBits.
			if float64(up-v) > float64(v)/float64(histSubs)+1 {
				t.Fatalf("bucket for %d too wide: upper %d (err %.4f)", v, up, float64(up-v)/float64(v))
			}
		}
	}
	// The upper bound of each bucket must map back to the same bucket —
	// otherwise quantiles could report a value from the wrong bucket.
	for i := 0; i < histBuckets; i++ {
		up := bucketUpper(i)
		if up > histMaxNs {
			break
		}
		if got := bucketIdx(up); got != i {
			t.Fatalf("bucketIdx(bucketUpper(%d)) = %d", i, got)
		}
	}
}

// TestHistExactSmallValues: sub-histSubs values get a bucket each, so tiny
// latencies are reported exactly.
func TestHistExactSmallValues(t *testing.T) {
	h := NewHist()
	h.Record(7 * time.Nanosecond)
	if got := h.Quantile(0.5); got != 7*time.Nanosecond {
		t.Fatalf("p50 of single 7ns observation = %v", got)
	}
	if h.Count() != 1 || h.Max() != 7*time.Nanosecond || h.Mean() != 7*time.Nanosecond {
		t.Fatalf("count/max/mean = %d/%v/%v", h.Count(), h.Max(), h.Mean())
	}
}

// TestHistQuantiles records a known uniform distribution and checks the
// percentiles land within one bucket of the true order statistics.
func TestHistQuantiles(t *testing.T) {
	h := NewHist()
	const n = 100000
	for i := 1; i <= n; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != n {
		t.Fatalf("count = %d", h.Count())
	}
	check := func(q float64, want time.Duration) {
		got := h.Quantile(q)
		if got < want {
			t.Fatalf("q%.3f = %v understates true %v", q, got, want)
		}
		if float64(got) > float64(want)*(1+2.0/histSubs) {
			t.Fatalf("q%.3f = %v overstates true %v beyond bucket error", q, got, want)
		}
	}
	check(0.50, 50*time.Millisecond)
	check(0.90, 90*time.Millisecond)
	check(0.99, 99*time.Millisecond)
	check(0.999, time.Duration(99900)*time.Microsecond)
	if h.Max() != n*time.Microsecond {
		t.Fatalf("max = %v", h.Max())
	}
	s := h.Summary()
	if s.P50 != h.Quantile(0.5) || s.P999 != h.Quantile(0.999) || s.Count != n {
		t.Fatalf("summary disagrees with direct quantiles: %+v", s)
	}
}

// TestHistEmpty: the zero-observation histogram reports zeros, not panics.
func TestHistEmpty(t *testing.T) {
	h := NewHist()
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
}

// TestHistConcurrentRecord hammers one histogram from many goroutines; the
// total count and sum must come out exact (the buckets are atomic).
func TestHistConcurrentRecord(t *testing.T) {
	h := NewHist()
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Record(time.Duration(rng.Int63n(int64(time.Second))))
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
	}
	if cum != workers*per {
		t.Fatalf("bucket sum = %d, want %d", cum, workers*per)
	}
}
