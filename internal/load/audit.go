package load

import (
	"errors"
	"fmt"
	"time"

	"whopay/internal/coin"
	"whopay/internal/core"
)

// Audit is the post-run ledger verdict: the world healed and drained back
// to the broker, then conservation and no-double-spend checked exactly —
// the same arbiter the chaos suite uses. Violations is empty on a clean
// run.
type Audit struct {
	Skipped bool `json:"skipped,omitempty"` // run aborted; no drain ran

	Issued    int64 `json:"issued"`    // value the broker minted
	Minted    int64 `json:"minted"`    // value actors observed arriving
	Ghost     int64 `json:"ghost"`     // purchases whose response was lost
	Deposited int64 `json:"deposited"` // value redeemed after the drain
	Balances  int64 `json:"balances"`  // sum of actor ledger balances

	Parked             int64 `json:"parked_coins"`
	DoubleDepositCases int64 `json:"double_deposit_cases"`
	DSRejected         int64 `json:"replays_rejected"`
	DSAccepted         int64 `json:"replays_accepted"`

	// SettlementsPending is the cross-shard settlements still unacked when
	// the audit ran — non-zero only if the post-drain wait timed out.
	SettlementsPending int `json:"settlements_pending,omitempty"`

	// DHT replication verdicts (DESIGN.md §14); meaningful only when the
	// run replicated the binding list. DHTStaleReads counts
	// backwards-in-time reads the lease watermark observed — a non-zero
	// value means a quorum read returned older state than one before it.
	// DHTDivergence is the replica-set digest disagreement remaining after
	// the drain's convergence wait (anti-entropy parity gate).
	DHTStaleReads uint64 `json:"dht_stale_reads,omitempty"`
	DHTRepaired   uint64 `json:"dht_reads_repaired,omitempty"`
	DHTDivergence int    `json:"dht_divergence,omitempty"`
	DHTConverged  bool   `json:"dht_converged,omitempty"`
	DHTReplicated bool   `json:"dht_replicated,omitempty"`

	Conserved     bool     `json:"conserved"`
	NoDoubleSpend bool     `json:"no_double_spend"`
	Violations    []string `json:"violations,omitempty"`
}

// DrainAndAudit heals the network, brings every actor back online, drains
// every recoverable coin to the broker, and audits the ledger.
//
// The drain follows the chaos suite's quarantine discipline: snapshot who
// holds what before depositing anything, so a self-held coin some peer
// also holds (a ghost delivery — the owner's confirmation was lost) is
// redeemed from the holder's copy and never re-issued, which would sign a
// second binding and frame the owner.
func (w *World) DrainAndAudit() Audit {
	w.HealNetwork()
	w.RestartDownDHTNodes() // digest parity needs the full replica set live
	for _, a := range w.Actors {
		if a.isOffline() {
			a.setOffline(false)
			_ = a.Peer.GoOnline() // the healed network makes sync best-effort safe
		}
	}

	// Channels close first: final settlements issue their coins into
	// vendor wallets, and the held-coin snapshot below must see them.
	w.settleChannels()

	heldByAnyone := make(map[coin.ID]bool)
	for _, a := range w.Actors {
		for _, id := range a.Peer.HeldCoins() {
			heldByAnyone[id] = true
		}
	}

	_ = eachIndex(len(w.Actors), func(i int) error {
		p := w.Actors[i].Peer
		for _, id := range p.HeldCoins() {
			sweepDeposit(p, id)
		}
		return nil
	})
	_ = eachIndex(len(w.Actors), func(i int) error {
		p := w.Actors[i].Peer
		for _, id := range p.SelfHeldCoins() {
			if heldByAnyone[id] {
				continue
			}
			if err := p.IssueTo(p.Addr(), id); err != nil {
				continue
			}
			sweepDeposit(p, id)
		}
		return nil
	})

	// Under federation, a foreign-shard deposit is committed before its
	// settlement lands on the payout's home shard; conservation compares
	// per-shard ledgers, so every settlement must be acked first.
	w.drainSettlements(30 * time.Second)

	return w.audit(false)
}

// drainSettlements waits until no live leader has unacked cross-shard
// settlements. A timeout is not fatal here — the audit reports the residue
// and the conservation check surfaces what it cost.
func (w *World) drainSettlements(timeout time.Duration) {
	if w.Fed == nil {
		return
	}
	deadline := time.Now().Add(timeout)
	for w.Fed.PendingSettlements() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
}

// AuditOnly computes the ledger verdict without draining — for aborted
// runs, where partial numbers beat none but conservation cannot be
// asserted (outstanding coins are not a violation, so only hard evidence
// of double spending counts).
func (w *World) AuditOnly() Audit {
	a := w.audit(true)
	return a
}

// audit gathers the numbers and applies the invariants. Under federation
// the ledger is the sum over shard leaders: issuance and redemption happen
// on a coin's home shard, payout credit on the reference's home shard, so
// per-shard sums compose into the same global invariants.
func (w *World) audit(skipped bool) Audit {
	brokers := w.brokers()
	a := Audit{
		Skipped:    skipped,
		Minted:     w.minted.Load(),
		Parked:     w.parked.Load(),
		DSRejected: w.dsRejected.Load(),
		DSAccepted: w.dsAccepted.Load(),
	}
	if w.Fed != nil {
		a.SettlementsPending = w.Fed.PendingSettlements()
	}
	if w.cfg.DHTReplication != nil && w.Cluster != nil {
		a.DHTReplicated = true
		_, _, a.DHTStaleReads, a.DHTRepaired = w.DHTLeaseStats()
		if !skipped {
			a.DHTConverged = w.Cluster.WaitConverged(10 * time.Second)
			a.DHTDivergence = w.Cluster.Divergence()
		}
	}
	for _, b := range brokers {
		a.Issued += b.IssuedValue()
		a.Deposited += b.DepositedValue()
	}
	a.Ghost = a.Issued - a.Minted
	for _, actor := range w.Actors {
		for _, b := range brokers {
			a.Balances += b.Balance(actor.Peer.ID())
		}
	}
	for _, b := range brokers {
		for _, fc := range b.FraudCases() {
			if fc.Kind == "double-deposit" {
				a.DoubleDepositCases++
			}
		}
	}

	violate := func(format string, args ...any) {
		a.Violations = append(a.Violations, fmt.Sprintf(format, args...))
	}
	if a.Ghost < 0 {
		violate("ghost accounting negative: broker issued %d, actors observed %d", a.Issued, a.Minted)
	}
	a.Conserved = true
	if !skipped {
		if a.SettlementsPending > 0 {
			a.Conserved = false
			violate("%d cross-shard settlements never acked", a.SettlementsPending)
		}
		if a.Deposited != a.Issued-a.Ghost {
			a.Conserved = false
			violate("value not conserved: issued %d, ghost %d, redeemed %d", a.Issued, a.Ghost, a.Deposited)
		}
		if a.Balances != a.Deposited {
			a.Conserved = false
			violate("credited balances %d != redeemed value %d", a.Balances, a.Deposited)
		}
		if a.DHTReplicated && !a.DHTConverged {
			violate("dht replicas diverged after drain: %d replica slots behind", a.DHTDivergence)
		}
	}
	a.NoDoubleSpend = true
	if a.Deposited > a.Issued {
		a.NoDoubleSpend = false
		violate("double spend accepted: redeemed %d of %d issued", a.Deposited, a.Issued)
	}
	if a.DSAccepted > 0 {
		a.NoDoubleSpend = false
		violate("broker accepted %d deposit replays", a.DSAccepted)
	}
	if a.DHTStaleReads > 0 {
		a.NoDoubleSpend = false
		violate("dht: %d stale quorum reads observed (lease watermark went backwards)", a.DHTStaleReads)
	}
	for _, b := range brokers {
		for _, fc := range b.FraudCases() {
			if fc.Kind == "owner-fraud" || fc.Punished != "" {
				a.NoDoubleSpend = false
				violate("honest party punished: kind=%s punished=%q coin=%s", fc.Kind, fc.Punished, fc.CoinID)
			}
		}
	}
	for _, actor := range w.Actors {
		for _, b := range brokers {
			if b.Frozen(actor.Peer.ID()) {
				a.NoDoubleSpend = false
				violate("honest actor %s frozen", actor.Peer.ID())
			}
		}
	}
	return a
}

// sweepDeposit redeems one held coin after healing, pulling a missed
// binding from the public list when the broker reports ours stale (a
// downtime renewal whose confirmation and notification were both lost).
// Remaining failures mean another party holds the authoritative binding;
// their deposit settles the coin, and conservation is the arbiter.
func sweepDeposit(p *core.Peer, id coin.ID) {
	err := p.Deposit(id, p.ID())
	if err == nil || errors.Is(err, core.ErrAlreadyDeposited) {
		return
	}
	if errors.Is(err, core.ErrStaleBinding) {
		_ = p.RecoverHeldBinding(id)
		_ = p.Deposit(id, p.ID())
	}
}
