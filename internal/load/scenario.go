package load

import (
	"fmt"
	"math/rand"
	"time"

	"whopay/internal/bus"
	"whopay/internal/dht/replica"
)

// WeightedOp is one verb in a scenario's traffic mix.
type WeightedOp struct {
	Name   string
	Weight int
	Do     func(*World, *rand.Rand) error
}

// Event is a world mutation fired partway through a run, at the given
// fraction of the planned schedule.
type Event struct {
	Frac float64
	Name string
	Do   func(*World, *rand.Rand)
}

// Scenario is one named profile of the load matrix: how the world is
// shaped, what the traffic mix is, what happens to the network mid-run,
// and which protocol rejections the profile legitimately produces (a
// hot-coin run *wants* ErrCoinBusy; anything outside the list is an
// unexpected protocol error).
type Scenario struct {
	Name    string
	Summary string

	Detection    bool
	DHTNodes     int
	WarmCoins    int
	HotCoins     int
	Channels     int
	DepositBatch int
	Faults       bool
	Shards       int
	Replicas     int
	LeaseTTL     time.Duration

	// DHTReplication turns on the DHT quorum/anti-entropy subsystem and
	// DHTPersist journals the nodes (node-kill events need restartable
	// nodes). See WorldConfig.
	DHTReplication *replica.Config
	DHTPersist     bool

	Mix                []WeightedOp
	Events             []Event
	ExpectedRejections []string
}

// ExpectsRejection reports whether a protocol wire code is part of this
// scenario's expected output.
func (s *Scenario) ExpectsRejection(code string) bool {
	for _, c := range s.ExpectedRejections {
		if c == code {
			return true
		}
	}
	return false
}

// pickOp draws one verb from the mix.
func (s *Scenario) pickOp(rng *rand.Rand) WeightedOp {
	total := 0
	for _, op := range s.Mix {
		total += op.Weight
	}
	r := rng.Intn(total)
	for _, op := range s.Mix {
		if r < op.Weight {
			return op
		}
		r -= op.Weight
	}
	return s.Mix[len(s.Mix)-1]
}

// WorldConfig merges the scenario's world shape into a base config (which
// carries the deployment knobs: actor count, seed, transport, WAL).
func (s *Scenario) WorldConfig(base WorldConfig) WorldConfig {
	base.Detection = s.Detection
	base.DHTNodes = s.DHTNodes
	base.WarmCoins = s.WarmCoins
	base.HotCoins = s.HotCoins
	base.Channels = s.Channels
	if base.DepositBatch == 0 {
		base.DepositBatch = s.DepositBatch // a CLI override wins
	}
	base.Faults = s.Faults
	base.Shards = s.Shards
	base.Replicas = s.Replicas
	base.LeaseTTL = s.LeaseTTL
	base.DHTReplication = s.DHTReplication
	base.DHTPersist = s.DHTPersist
	return base
}

// contentionRejections are the codes coin races legitimately produce: a
// lost race on the owner's service lock, a holder that no longer holds, a
// binding that moved underfoot, an offer that lapsed, and the generic
// payment-refused verdict.
var contentionRejections = []string{
	"core.coin_busy",
	"core.not_holder",
	"core.unknown_coin",
	"core.stale_binding",
	"core.no_offer",
	"core.payment_failed",
}

// Scenarios returns the load matrix. Definitions are rebuilt on every call
// so callers can't corrupt the shared tables.
func Scenarios() []*Scenario {
	return []*Scenario{
		{
			Name:      "steady",
			Summary:   "balanced mix over a clean network — the baseline trajectory",
			WarmCoins: 4,
			Mix: []WeightedOp{
				{Name: "transfer", Weight: 50, Do: (*World).OpTransfer},
				{Name: "mint", Weight: 15, Do: (*World).OpMint},
				{Name: "renew", Weight: 15, Do: (*World).OpRenew},
				{Name: "deposit", Weight: 20, Do: (*World).OpDeposit},
			},
		},
		{
			Name:      "flash-crowd",
			Summary:   "purchase storm — everyone mints at once, the broker's hot path",
			WarmCoins: 2,
			Mix: []WeightedOp{
				{Name: "purchase", Weight: 80, Do: (*World).OpPurchase},
				{Name: "transfer", Weight: 20, Do: (*World).OpTransfer},
			},
		},
		{
			Name:      "hot-coin",
			Summary:   "contention on a few shared coins — service locks and the DHT witness path under fire",
			Detection: true,
			DHTNodes:  3,
			// Quorum replication with the hot-coin lease cache: the same
			// few bindings are read over and over, so leases carry the
			// read load (DESIGN.md §14).
			DHTReplication: &replica.Config{N: 3, W: 2, R: 2},
			WarmCoins:      2,
			HotCoins:       8,
			Mix: []WeightedOp{
				{Name: "hot-transfer", Weight: 45, Do: (*World).OpHotTransfer},
				{Name: "hot-verify", Weight: 25, Do: (*World).OpHotVerify},
				{Name: "hot-renew", Weight: 15, Do: (*World).OpHotRenew},
				{Name: "transfer", Weight: 15, Do: (*World).OpTransfer},
			},
			ExpectedRejections: contentionRejections,
		},
		{
			Name:      "mass-downtime",
			Summary:   "owner churn — peers drop off and rejoin while traffic leans on the broker's downtime path",
			Detection: true,
			DHTNodes:  3,
			WarmCoins: 4,
			Faults:    true,
			Mix: []WeightedOp{
				{Name: "transfer", Weight: 40, Do: (*World).OpTransfer},
				{Name: "downtime-transfer", Weight: 25, Do: (*World).OpDowntimeTransfer},
				{Name: "renew", Weight: 10, Do: (*World).OpRenew},
				{Name: "deposit", Weight: 15, Do: (*World).OpDeposit},
				{Name: "mint", Weight: 10, Do: (*World).OpMint},
			},
			Events:             churnEvents(9),
			ExpectedRejections: contentionRejections,
		},
		{
			Name:      "double-spend-flood",
			Summary:   "deposit replays at volume — the broker must credit once and reject every copy",
			Detection: true,
			DHTNodes:  3,
			WarmCoins: 3,
			Mix: []WeightedOp{
				{Name: "double-spend", Weight: 50, Do: (*World).OpDoubleSpend},
				{Name: "transfer", Weight: 30, Do: (*World).OpTransfer},
				{Name: "mint", Weight: 20, Do: (*World).OpMint},
			},
			ExpectedRejections: contentionRejections,
		},
		{
			Name: "micropay",
			Summary: "micropayment channels — paywords on the hot path, windows settled in " +
				"single WhoPay payments, broker deposits batched",
			WarmCoins:    2,
			Channels:     8,
			DepositBatch: 16,
			Mix: []WeightedOp{
				{Name: "channel-pay", Weight: 70, Do: (*World).OpChannelPay},
				{Name: "channel-settle", Weight: 8, Do: (*World).OpChannelSettle},
				{Name: "deposit", Weight: 10, Do: (*World).OpDeposit},
				{Name: "transfer", Weight: 7, Do: (*World).OpTransfer},
				{Name: "mint", Weight: 5, Do: (*World).OpMint},
			},
			ExpectedRejections: append([]string{"core.no_channel", "core.channel_closed"}, contentionRejections...),
		},
		{
			Name: "broker-failover",
			Summary: "federated trust root under crash-failover — shard leaders killed mid-run, " +
				"followers promote from mirrored logs, clients ride retries and redirects",
			WarmCoins: 4,
			Shards:    2,
			Replicas:  2,
			LeaseTTL:  250 * time.Millisecond,
			Mix: []WeightedOp{
				{Name: "transfer", Weight: 40, Do: (*World).OpTransfer},
				{Name: "mint", Weight: 20, Do: (*World).OpMint},
				{Name: "renew", Weight: 10, Do: (*World).OpRenew},
				{Name: "deposit", Weight: 30, Do: (*World).OpDeposit},
			},
			Events: []Event{
				{Frac: 0.35, Name: "kill-leader", Do: (*World).KillNextLeader},
				{Frac: 0.70, Name: "kill-leader-2", Do: (*World).KillNextLeader},
			},
			// A kill window legitimately surfaces the federation verdicts
			// (redirects that ran out of retry budget) and retried deposits
			// that had already committed.
			ExpectedRejections: append([]string{
				"core.not_leader",
				"core.wrong_shard",
				"core.already_deposited",
			}, contentionRejections...),
		},
		{
			Name: "dht-node-kill",
			Summary: "DHT replica killed mid-transfer-storm — quorum writes ride the surviving " +
				"majority, the restarted node catches up by anti-entropy, leases absorb hot reads",
			Detection:      true,
			DHTNodes:       3,
			DHTReplication: &replica.Config{N: 3, W: 2, R: 2},
			DHTPersist:     true,
			WarmCoins:      3,
			HotCoins:       6,
			Mix: []WeightedOp{
				{Name: "hot-transfer", Weight: 35, Do: (*World).OpHotTransfer},
				{Name: "transfer", Weight: 25, Do: (*World).OpTransfer},
				{Name: "hot-verify", Weight: 15, Do: (*World).OpHotVerify},
				{Name: "hot-renew", Weight: 10, Do: (*World).OpHotRenew},
				{Name: "mint", Weight: 15, Do: (*World).OpMint},
			},
			Events: []Event{
				{Frac: 0.35, Name: "kill-dht-node", Do: (*World).KillDHTNode},
				{Frac: 0.65, Name: "restart-dht-node", Do: (*World).RestartDHTNode},
			},
			// A kill window legitimately surfaces quorum failures (a write
			// caught with the coordinator down mid-fan-out) on top of the
			// usual contention codes.
			ExpectedRejections: append([]string{"dht.quorum_failed"}, contentionRejections...),
		},
		{
			Name:      "partition",
			Summary:   "a quarter of the actors cut off mid-run, healed later — errors spike, invariants must not",
			Detection: true,
			DHTNodes:  3,
			WarmCoins: 4,
			Faults:    true,
			Mix: []WeightedOp{
				{Name: "transfer", Weight: 45, Do: (*World).OpTransfer},
				{Name: "renew", Weight: 15, Do: (*World).OpRenew},
				{Name: "deposit", Weight: 20, Do: (*World).OpDeposit},
				{Name: "mint", Weight: 20, Do: (*World).OpMint},
			},
			Events: []Event{
				{Frac: 0.30, Name: "cut-region", Do: func(w *World, _ *rand.Rand) { w.CutRegion() }},
				{Frac: 0.70, Name: "heal", Do: func(w *World, _ *rand.Rand) { w.HealNetwork() }},
			},
			ExpectedRejections: contentionRejections,
		},
	}
}

// FindScenario resolves a profile by name.
func FindScenario(name string) (*Scenario, bool) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return nil, false
}

// ScenarioNames lists the matrix in definition order.
func ScenarioNames() []string {
	var names []string
	for _, s := range Scenarios() {
		names = append(names, s.Name)
	}
	return names
}

// churnEvents spreads n churn toggles evenly across the run.
func churnEvents(n int) []Event {
	var evs []Event
	for i := 1; i <= n; i++ {
		evs = append(evs, Event{
			Frac: float64(i) / float64(n+1),
			Name: fmt.Sprintf("churn-%d", i),
			Do:   (*World).Churn,
		})
	}
	return evs
}

// Churn toggles roughly a tenth of the actors between online and offline,
// keeping at least two thirds up. Going down is the full downtime protocol
// plus a network cut (GoOffline, then partitioned from everyone); coming
// back reverses the order so the rejoin Sync can reach the broker.
func (w *World) Churn(rng *rand.Rand) {
	if w.FB == nil {
		return
	}
	n := len(w.Actors)
	offline := 0
	for _, a := range w.Actors {
		if a.isOffline() {
			offline++
		}
	}
	for t := 0; t < n/10+1; t++ {
		a := w.Actors[rng.Intn(n)]
		if a.isOffline() {
			w.FB.Unpartition([]bus.Address{a.Peer.Addr()}, w.addrsExcept(a.Idx))
			a.setOffline(false)
			_ = a.Peer.GoOnline() // sync may fail under faults; lazy checks recover
			offline--
		} else if offline < n/3 {
			a.Peer.GoOffline()
			w.FB.Partition([]bus.Address{a.Peer.Addr()}, w.addrsExcept(a.Idx))
			a.setOffline(true)
			offline++
		}
	}
}

// CutRegion partitions the last quarter of the actors from everything else
// — actors, broker, judge, DHT. The cut actors stay in the op mix on
// purpose: their failures are the scenario's measurement, not noise.
func (w *World) CutRegion() {
	if w.FB == nil {
		return
	}
	n := len(w.Actors)
	var cut, rest []bus.Address
	for i, a := range w.Actors {
		if i >= n*3/4 {
			cut = append(cut, a.Peer.Addr())
		} else {
			rest = append(rest, a.Peer.Addr())
		}
	}
	rest = append(rest, w.infraAddrs()...)
	w.FB.Partition(rest, cut)
}

// HealNetwork lifts every configured fault.
func (w *World) HealNetwork() {
	if w.FB != nil {
		w.FB.Heal()
	}
}

// infraAddrs lists the non-actor endpoints: broker(s), judge, DHT nodes.
func (w *World) infraAddrs() []bus.Address {
	addrs := append(w.brokerAddrs(), w.JudgeSrv.Addr())
	if w.Cluster != nil {
		addrs = append(addrs, w.Cluster.Addrs()...)
	}
	return addrs
}

// addrsExcept lists every endpoint except actor i's.
func (w *World) addrsExcept(i int) []bus.Address {
	addrs := w.infraAddrs()
	for _, a := range w.Actors {
		if a.Idx != i {
			addrs = append(addrs, a.Peer.Addr())
		}
	}
	return addrs
}
