package load

import (
	"math/rand"
	"time"
)

// seqMix spreads intent sequence numbers into independent rng streams
// (splitmix-style odd constant), so concurrent operations draw
// deterministic, uncorrelated randomness from one seed.
const seqMix uint64 = 0x9E3779B97F4A7C15

// RunConfig shapes one scenario run on an existing world.
type RunConfig struct {
	// Rate is the open-loop arrival rate, operations per second.
	Rate float64
	// Ops and Duration bound the schedule exactly as in DriverConfig.
	Ops      int
	Duration time.Duration
	// Seed derives every intent's rng; same seed, same op sequence.
	Seed int64
	// Clock and DrainGrace pass through to the driver.
	Clock      Clock
	DrainGrace time.Duration
}

// Run binds a scenario to a world and a driver. The Driver is exported so
// a signal handler can Stop a run in flight and still collect the partial
// Result.
type Run struct {
	W      *World
	Sc     *Scenario
	Cfg    RunConfig
	Driver *Driver

	eventsFired []string
}

// NewRun prepares a run: every intent draws its own deterministic rng from
// the seed and its sequence number, picks a verb from the scenario mix,
// and executes it against the world.
func NewRun(w *World, sc *Scenario, rc RunConfig) *Run {
	r := &Run{W: w, Sc: sc, Cfg: rc}
	r.Driver = NewDriver(DriverConfig{
		Rate:       rc.Rate,
		Ops:        rc.Ops,
		Duration:   rc.Duration,
		Clock:      rc.Clock,
		DrainGrace: rc.DrainGrace,
		Do: func(seq int) error {
			rng := rand.New(rand.NewSource(rc.Seed + int64(uint64(seq)*seqMix)))
			return sc.pickOp(rng).Do(w, rng)
		},
	})
	return r
}

// planned returns the schedule's intended span on the clock.
func (r *Run) planned() time.Duration {
	var opsDur time.Duration
	if r.Cfg.Rate > 0 && r.Cfg.Ops > 0 {
		opsDur = time.Duration(float64(r.Cfg.Ops) / r.Cfg.Rate * float64(time.Second))
	}
	switch {
	case opsDur > 0 && r.Cfg.Duration > 0 && r.Cfg.Duration < opsDur:
		return r.Cfg.Duration
	case opsDur > 0:
		return opsDur
	default:
		return r.Cfg.Duration
	}
}

// Run executes the schedule, firing scenario events at their fractions of
// the planned span, and blocks until the drain finishes.
func (r *Run) Run() Result {
	evDone := make(chan struct{})
	go func() {
		defer close(evDone)
		clock := r.Driver.cfg.Clock
		start := clock.Now()
		span := r.planned()
		evRng := rand.New(rand.NewSource(r.Cfg.Seed ^ 0x5bf0363db2e3d35))
		for _, ev := range r.Sc.Events {
			clock.Wait(start.Add(time.Duration(ev.Frac*float64(span))), r.Driver.done)
			if r.Driver.Stopped() {
				return
			}
			ev.Do(r.W, evRng)
			r.eventsFired = append(r.eventsFired, ev.Name)
		}
	}()
	res := r.Driver.Run()
	r.Driver.Stop() // release the event goroutine's waits
	<-evDone
	return res
}

// EventsFired lists the scenario events that actually ran, in order. Valid
// after Run returns.
func (r *Run) EventsFired() []string {
	return append([]string(nil), r.eventsFired...)
}
