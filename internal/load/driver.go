package load

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"whopay/internal/bus"
)

// Clock abstracts time for the open-loop scheduler so the no-backpressure
// contract is testable under a virtual clock. The wall clock is the
// default.
type Clock interface {
	Now() time.Time
	// Wait blocks until the clock reaches t or until cancel is closed,
	// whichever comes first.
	Wait(t time.Time, cancel <-chan struct{})
}

// wallClock is the production clock.
type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

func (wallClock) Wait(t time.Time, cancel <-chan struct{}) {
	d := time.Until(t)
	if d <= 0 {
		return
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-cancel:
	}
}

// ErrSkip marks an operation that could not run for want of world state
// (no online payee, an empty wallet with nothing to spend). Skipped
// operations are tallied separately — neither a success (they would
// pollute the latency distribution with no-op timings) nor a failure.
var ErrSkip = errors.New("load: op skipped")

// Error classes the driver tallies. Protocol rejections additionally get a
// per-code breakdown so scenarios can declare which rejections they expect
// (a hot-coin run *wants* ErrCoinBusy).
const (
	ClassTimeout   = "timeout"
	ClassTransport = "transport"
	ClassProtocol  = "protocol"
	ClassOther     = "other"
)

// Classify buckets an operation error into a driver class plus, for
// protocol rejections, the sentinel's stable wire code ("core.coin_busy").
// Protocol rejections are checked first: a handler that *answered* is never
// a transport problem, whatever its message says.
func Classify(err error) (class, code string) {
	if err == nil {
		return "", ""
	}
	var remote *bus.RemoteError
	if errors.As(err, &remote) {
		code = remote.Code
		if code == "" {
			code = bus.ErrorCode(remote)
		}
		if code == "" {
			code = "unknown"
		}
		return ClassProtocol, code
	}
	var to interface{ Timeout() bool }
	if errors.As(err, &to) && to.Timeout() {
		return ClassTimeout, ""
	}
	if errors.Is(err, bus.ErrUnreachable) || errors.Is(err, bus.ErrClosed) {
		return ClassTransport, ""
	}
	// A client-side protocol sentinel (a quorum read that could not gather
	// R answers fails locally, without a RemoteError wrapper) still has a
	// registered wire code — classify it like its remote twin.
	if code := bus.ErrorCode(err); code != "" {
		return ClassProtocol, code
	}
	return ClassOther, ""
}

// ErrorCounts aggregates one run's failures by class.
type ErrorCounts struct {
	Timeouts   int64
	Transport  int64
	Protocol   int64
	Other      int64
	Rejections map[string]int64 // protocol rejections by wire code
}

// DriverConfig configures one open-loop run.
type DriverConfig struct {
	// Rate is the intended arrival rate in operations per second (> 0).
	Rate float64
	// Ops bounds the number of intents scheduled. 0 means "until
	// Duration".
	Ops int
	// Duration bounds the schedule in (clock) time when Ops is 0; with
	// both set, whichever ends first wins.
	Duration time.Duration
	// Do executes operation seq. It runs on its own goroutine — the
	// scheduler never waits for it, which is the whole point.
	Do func(seq int) error
	// Clock defaults to the wall clock.
	Clock Clock
	// DrainGrace bounds how long Run waits for in-flight operations
	// after the last intent fired (default 30s, wall time). Operations
	// still running at the deadline are counted as Dropped.
	DrainGrace time.Duration
	// OnDone, when set, observes every completed operation with its
	// intended start time and measured latency (tests, debugging).
	OnDone func(seq int, intended time.Time, lat time.Duration, err error)
}

// Result is one run's outcome.
type Result struct {
	Scheduled int   // intents dispatched
	Completed int64 // operations that returned success
	Failed    int64 // operations that returned an error
	Skipped   int64 // operations that returned ErrSkip
	Dropped   int64 // still in flight when the drain grace expired
	Errors    ErrorCounts
	Hist      *Hist // latency of successful operations, intended-start based
	Elapsed   time.Duration
	Stopped   bool // Stop was called before the schedule completed
}

// Driver runs one open-loop schedule. Intents are generated at fixed
// arrival times start + i/Rate; each is dispatched on its own goroutine the
// moment its time arrives, regardless of how many earlier operations are
// still in flight. Latency is measured from the *intended* arrival time, so
// a stalled target charges its stall to every operation queued behind it —
// the coordinated-omission-proof measurement.
type Driver struct {
	cfg  DriverConfig
	hist *Hist

	done     chan struct{}
	stopOnce sync.Once

	completed atomic.Int64
	failed    atomic.Int64
	skipped   atomic.Int64

	errMu      sync.Mutex
	timeouts   int64
	transport  int64
	protocol   int64
	other      int64
	rejections map[string]int64
}

// NewDriver validates the config and prepares a run.
func NewDriver(cfg DriverConfig) *Driver {
	if cfg.Clock == nil {
		cfg.Clock = wallClock{}
	}
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = 30 * time.Second
	}
	return &Driver{
		cfg:        cfg,
		hist:       NewHist(),
		done:       make(chan struct{}),
		rejections: make(map[string]int64),
	}
}

// Stop aborts the schedule: no further intents are dispatched. In-flight
// operations still get the drain grace to finish. Safe to call from any
// goroutine, more than once.
func (d *Driver) Stop() {
	d.stopOnce.Do(func() { close(d.done) })
}

// Stopped reports whether Stop has been called.
func (d *Driver) Stopped() bool {
	select {
	case <-d.done:
		return true
	default:
		return false
	}
}

// Run executes the schedule and blocks until every dispatched operation
// finished or the drain grace expired. It may be called once.
func (d *Driver) Run() Result {
	if d.cfg.Rate <= 0 || d.cfg.Do == nil || (d.cfg.Ops <= 0 && d.cfg.Duration <= 0) {
		return Result{Hist: d.hist}
	}
	start := d.cfg.Clock.Now()
	interval := float64(time.Second) / d.cfg.Rate

	var wg sync.WaitGroup
	scheduled := 0
	for i := 0; ; i++ {
		if d.cfg.Ops > 0 && i >= d.cfg.Ops {
			break
		}
		offset := time.Duration(float64(i) * interval)
		if d.cfg.Duration > 0 && offset >= d.cfg.Duration {
			break
		}
		at := start.Add(offset)
		d.cfg.Clock.Wait(at, d.done)
		if d.Stopped() {
			break
		}
		scheduled++
		wg.Add(1)
		go func(seq int, at time.Time) {
			defer wg.Done()
			err := d.cfg.Do(seq)
			lat := d.cfg.Clock.Now().Sub(at)
			switch {
			case err == nil:
				d.hist.Record(lat)
				d.completed.Add(1)
			case errors.Is(err, ErrSkip):
				d.skipped.Add(1)
			default:
				d.failed.Add(1)
				d.countError(err)
			}
			if d.cfg.OnDone != nil {
				d.cfg.OnDone(seq, at, lat, err)
			}
		}(i, at)
	}

	dropped := waitTimeout(&wg, d.cfg.DrainGrace)
	res := Result{
		Scheduled: scheduled,
		Completed: d.completed.Load(),
		Failed:    d.failed.Load(),
		Skipped:   d.skipped.Load(),
		Hist:      d.hist,
		Elapsed:   d.cfg.Clock.Now().Sub(start),
		Stopped:   d.Stopped(),
	}
	if dropped {
		res.Dropped = int64(scheduled) - res.Completed - res.Failed - res.Skipped
	}
	d.errMu.Lock()
	res.Errors = ErrorCounts{
		Timeouts:   d.timeouts,
		Transport:  d.transport,
		Protocol:   d.protocol,
		Other:      d.other,
		Rejections: make(map[string]int64, len(d.rejections)),
	}
	for k, v := range d.rejections {
		res.Errors.Rejections[k] = v
	}
	d.errMu.Unlock()
	return res
}

// countError tallies one failure under the error lock (failures are the
// rare path; successes never take it).
func (d *Driver) countError(err error) {
	class, code := Classify(err)
	d.errMu.Lock()
	defer d.errMu.Unlock()
	switch class {
	case ClassTimeout:
		d.timeouts++
	case ClassTransport:
		d.transport++
	case ClassProtocol:
		d.protocol++
		d.rejections[code]++
	default:
		d.other++
	}
}

// waitTimeout waits for wg up to grace (wall time, deliberately — a virtual
// clock must not be able to wedge the drain). Returns true on timeout.
func waitTimeout(wg *sync.WaitGroup, grace time.Duration) bool {
	ch := make(chan struct{})
	go func() {
		wg.Wait()
		close(ch)
	}()
	select {
	case <-ch:
		return false
	case <-time.After(grace):
		return true
	}
}
