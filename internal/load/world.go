package load

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"whopay/internal/bus"
	"whopay/internal/bus/faultbus"
	"whopay/internal/bus/tcpbus"
	"whopay/internal/coin"
	"whopay/internal/core"
	"whopay/internal/dht"
	"whopay/internal/dht/replica"
	"whopay/internal/federation"
	"whopay/internal/obs"
	"whopay/internal/sig"
	"whopay/internal/wal"
)

// worldWorkers bounds the parallelism of actor construction and warmup
// (each actor enrolls over the bus — expensive group-signature setup).
const worldWorkers = 16

// WorldConfig sizes and wires one live load world.
type WorldConfig struct {
	// Actors is the number of peer actors (> 0).
	Actors int
	// Host is the TCP bind host (default 127.0.0.1). Ignored when
	// Network overrides the transport.
	Host string
	// Scheme defaults to ECDSA P-256 — the paper's cost regime.
	Scheme sig.Scheme
	// CredPool is each actor's initial group-credential pool (default 8;
	// the pool auto-refills over the bus when it runs dry).
	CredPool int
	// Seed derives all load randomness (actor choice, op mix) and the
	// faultbus schedule.
	Seed int64
	// WarmCoins is how many spendable coins each actor starts with.
	WarmCoins int
	// HotCoins is the size of the shared contended-coin set (hot-coin
	// scenario; 0 disables).
	HotCoins int
	// Detection enables the DHT public binding list: owners publish,
	// holders watch, payees cross-check — and stale bindings become
	// recoverable after faults.
	Detection bool
	// DHTNodes sizes the cluster when Detection is on (default 3).
	DHTNodes int
	// DHTReplication turns on the DHT quorum/anti-entropy subsystem
	// (DESIGN.md §14) on the cluster and every client: quorum writes,
	// quorum reads with read-repair, background digest sweeps, and the
	// hot-coin lease cache. Nil keeps the legacy single-copy cluster.
	DHTReplication *replica.Config
	// DHTPersist journals every DHT node (under a temp root unless WALDir
	// is set), so node-kill events can restart nodes from their journals.
	DHTPersist bool
	// Channels is the micropay channel-pool size: the warmup opens this
	// many payer→vendor channels and the channel verbs keep the pool
	// stocked as windows exhaust and recycle (0: no channels).
	Channels int
	// DepositBatch enables the broker's deposit-batching stage with this
	// flush size (0: off — every deposit takes the sequential path).
	DepositBatch int
	// DepositLinger bounds how long the first deposit of a batch waits
	// for company (default 2ms when DepositBatch is on).
	DepositLinger time.Duration
	// Shards and Replicas, when either exceeds 1, replace the single
	// broker with a federated cluster: Shards trust-root partitions, each
	// Replicas-wide with WAL-streamed mirrors and lease failover. Actors
	// route by coin ID through the cluster and follow redirects.
	Shards   int
	Replicas int
	// LeaseTTL is the federation lease TTL — the worst-case leaderless
	// window after a crash (0: the federation default).
	LeaseTTL time.Duration
	// WALDir, when non-empty, journals the broker (the serialization hot
	// spot durability actually taxes) under this directory.
	WALDir string
	// Fsync is the journal's fsync policy.
	Fsync wal.Policy
	// Reg collects metrics from the transport, broker, and WAL (default:
	// a fresh registry).
	Reg *obs.Registry
	// Faults wraps the transport in a seeded faultbus so scenario events
	// can cut partitions and churn owners.
	Faults bool
	// CallTimeout is the per-call deadline on the TCP transport (default
	// 10s). Ignored when Network is set.
	CallTimeout time.Duration
	// GobWire forces the legacy one-connection-per-call gob wire instead
	// of the framed binary protocol — the A/B knob for measuring what the
	// codec + multiplexed transport buy under load. Ignored when Network
	// is set.
	GobWire bool
	// Network overrides the transport (tests use the in-memory bus);
	// nil builds a real tcpbus on Host.
	Network bus.Network
}

// Actor is one lightweight peer in the load world. Its ready queue holds
// the coins this actor may spend; take/give keep coin use exclusive, so
// ordinary-mix operations never contend on a coin (contention is what the
// hot-coin set is for). A coin that saw an ambiguous transport failure is
// parked — never returned to the queue — because retrying it toward a
// different payee could sign a second binding and frame an honest owner;
// the post-run drain redeems parked coins from ground truth instead.
type Actor struct {
	Idx  int
	Peer *core.Peer

	mu      sync.Mutex
	ready   []coin.ID
	offline bool
}

// takeCoin pops a spendable coin, or reports none.
func (a *Actor) takeCoin() (coin.ID, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.ready) == 0 {
		return "", false
	}
	id := a.ready[len(a.ready)-1]
	a.ready = a.ready[:len(a.ready)-1]
	return id, true
}

// giveCoin returns (or delivers) a spendable coin.
func (a *Actor) giveCoin(id coin.ID) {
	a.mu.Lock()
	a.ready = append(a.ready, id)
	a.mu.Unlock()
}

// readyLen reports the queue depth.
func (a *Actor) readyLen() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.ready)
}

// setOffline flips the churn flag (mass-downtime events).
func (a *Actor) setOffline(v bool) {
	a.mu.Lock()
	a.offline = v
	a.mu.Unlock()
}

// isOffline reports the churn flag.
func (a *Actor) isOffline() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.offline
}

// hotCoin is one entry of the shared contended-coin set. holder tracks who
// we believe holds it; parked entries saw an ambiguous failure and are
// left for the drain.
type hotCoin struct {
	id     coin.ID
	holder int
	parked bool
}

// World is a live WhoPay deployment sized for load: a broker (optionally
// journaling), a judge server, an optional DHT cluster, and Actors peers —
// all listening on the same transport, which is a real tcpbus unless a
// test injects the in-memory bus.
type World struct {
	cfg WorldConfig
	tcp bool

	Reg      *obs.Registry
	Net      bus.Network
	FB       *faultbus.Network // nil unless cfg.Faults
	Dir      *core.Directory
	JudgeSrv *core.JudgeServer
	Broker   *core.Broker        // nil under federation — use brokers()
	Fed      *federation.Cluster // nil unless Shards/Replicas federate
	Cluster  *dht.Cluster        // nil unless cfg.Detection
	Actors   []*Actor

	// fedWalTmp is the federation journal root when the run supplied no
	// WALDir (federated brokers always journal — the mirror IS the log).
	fedWalTmp string
	// dhtWalTmp is the DHT journal root when DHTPersist is on without a
	// WALDir.
	dhtWalTmp string

	// DHT node-kill bookkeeping: kill→restarted wall time per node kill.
	dhtKills   atomic.Int64
	dhtMu      sync.Mutex
	dhtDown    []int // node indexes currently killed, restart order
	dhtRecover []time.Duration

	// Failover bookkeeping: kill→serving-again wall time per leader kill.
	foKills   atomic.Int64
	foMu      sync.Mutex
	foRecover []time.Duration

	// minted is the value actors observed entering circulation; the gap
	// to Broker.IssuedValue() is ghost value (a purchase response lost
	// in flight). Mix coins all have value 1; channel-settlement coins
	// carry a whole window balance and are observed at settlement.
	minted atomic.Int64
	// parked counts coins pulled from circulation after ambiguous
	// failures, redeemed only by the drain.
	parked atomic.Int64
	// Double-spend-flood accounting: replays the broker rejected vs
	// accepted (accepted must stay zero).
	dsRejected atomic.Int64
	dsAccepted atomic.Int64

	hotMu sync.Mutex
	hot   []*hotCoin

	// Micropay channel pool (see channels.go): chans is the ready stack
	// verbs check channels out of (coin-style exclusivity), allChans
	// remembers every channel the run opened so the drain can close them.
	chanMu   sync.Mutex
	chans    []*loadChannel
	allChans []*loadChannel

	channelsOpened  atomic.Int64
	channelPays     atomic.Int64
	channelRecycled atomic.Int64
	channelSettles  atomic.Int64
	channelSettled  atomic.Int64 // value settled into WhoPay coins
}

// addr names an endpoint: a real bind request over TCP (ephemeral port),
// a logical name on the in-memory bus.
func (w *World) addr(name string) bus.Address {
	if w.tcp {
		return bus.Address(w.cfg.Host + ":0")
	}
	return bus.Address(name)
}

// NewWorld builds and warms a load world: every entity constructed and
// listening, every actor enrolled with WarmCoins spendable coins, the hot
// set (if any) minted and distributed. Fault injection is idle until a
// scenario event turns it on, so construction runs on a clean network.
func NewWorld(cfg WorldConfig) (*World, error) {
	if cfg.Actors <= 0 {
		return nil, errors.New("load: world needs at least one actor")
	}
	if cfg.Host == "" {
		cfg.Host = "127.0.0.1"
	}
	if cfg.Scheme == nil {
		cfg.Scheme = sig.ECDSA{}
	}
	if cfg.CredPool <= 0 {
		cfg.CredPool = 8
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 10 * time.Second
	}
	if cfg.Reg == nil {
		cfg.Reg = obs.NewRegistry()
	}
	core.RegisterWireTypes()

	w := &World{cfg: cfg, Reg: cfg.Reg, tcp: cfg.Network == nil}
	base := cfg.Network
	if base == nil {
		topts := []tcpbus.Option{
			tcpbus.WithObs(cfg.Reg),
			tcpbus.WithCallTimeout(cfg.CallTimeout),
			tcpbus.WithDialTimeout(5 * time.Second),
		}
		if cfg.GobWire {
			topts = append(topts, tcpbus.WithGobWire())
		}
		base = tcpbus.New(topts...)
	}
	w.Net = base
	if cfg.Faults {
		w.FB = faultbus.New(base, cfg.Seed)
		w.Net = w.FB
	}
	w.Dir = core.NewDirectory()

	judge, err := core.NewJudge(cfg.Scheme)
	if err != nil {
		return nil, fmt.Errorf("load: judge: %w", err)
	}
	w.JudgeSrv, err = core.NewJudgeServer(w.Net, w.addr("judge"), judge, cfg.Scheme)
	if err != nil {
		return nil, fmt.Errorf("load: judge server: %w", err)
	}

	// The cluster must exist before the broker (the broker's DHT client
	// needs bound addresses), and the broker's key is only trusted
	// afterwards — safe, because no binding traffic flows until ops run.
	var dhtAddrs []bus.Address
	if cfg.Detection {
		n := cfg.DHTNodes
		if n <= 0 {
			n = 3
		}
		var dhtWAL *wal.Config
		if cfg.DHTPersist {
			dhtRoot := ""
			if cfg.WALDir != "" {
				dhtRoot = filepath.Join(cfg.WALDir, "dht")
			} else {
				dhtRoot, err = os.MkdirTemp("", "whopay-load-dht-")
				if err != nil {
					return nil, fmt.Errorf("load: dht wal root: %w", err)
				}
				w.dhtWalTmp = dhtRoot
			}
			dhtWAL = &wal.Config{Dir: dhtRoot, Policy: cfg.Fsync, Obs: cfg.Reg}
		}
		w.Cluster, err = dht.NewClusterWithConfig(dht.ClusterConfig{
			Network:     w.Net,
			Scheme:      cfg.Scheme,
			Nodes:       n,
			Replicas:    2,
			AddrFor:     func(i int) bus.Address { return w.addr(fmt.Sprintf("dht:%d", i)) },
			Persistence: dhtWAL,
			Obs:         cfg.Reg,
			Replication: cfg.DHTReplication,
		})
		if err != nil {
			w.Close()
			return nil, fmt.Errorf("load: dht cluster: %w", err)
		}
		dhtAddrs = w.Cluster.Addrs()
	}

	var depositBatch *core.DepositBatchConfig
	if cfg.DepositBatch > 0 {
		linger := cfg.DepositLinger
		if linger <= 0 {
			linger = 2 * time.Millisecond
		}
		depositBatch = &core.DepositBatchConfig{MaxBatch: cfg.DepositBatch, MaxLinger: linger}
	}
	if cfg.Shards > 1 || cfg.Replicas > 1 {
		// Federated trust root. Mirror replication is the log, so the
		// cluster always journals: under WALDir when the run persists,
		// under a temp root otherwise.
		federation.RegisterWireTypes() // replication frames cross the real wire
		fedRoot := ""
		if cfg.WALDir != "" {
			fedRoot = filepath.Join(cfg.WALDir, "federation")
		} else {
			fedRoot, err = os.MkdirTemp("", "whopay-load-fed-")
			if err != nil {
				w.Close()
				return nil, fmt.Errorf("load: federation wal root: %w", err)
			}
			w.fedWalTmp = fedRoot
		}
		w.Fed, err = federation.Start(federation.Config{
			Shards:   cfg.Shards,
			Replicas: cfg.Replicas,
			Network:  w.Net,
			Broker: core.BrokerConfig{
				Scheme:         cfg.Scheme,
				Directory:      w.Dir,
				GroupPub:       judge.GroupPublicKey(),
				DHTNodes:       dhtAddrs,
				DHTReplication: cfg.DHTReplication,
				DepositBatch:   depositBatch,
			},
			Wal:      wal.Config{Dir: fedRoot, Policy: cfg.Fsync},
			LeaseTTL: cfg.LeaseTTL,
			Obs:      cfg.Reg,
			AddrFor: func(s, r int) bus.Address {
				return w.addr(fmt.Sprintf("fed-s%dr%d", s, r))
			},
		})
		if err != nil {
			w.Close()
			return nil, fmt.Errorf("load: federation: %w", err)
		}
		if w.Cluster != nil {
			for s := 0; s < w.Fed.Shards(); s++ {
				w.Cluster.Trust(w.Fed.BrokerPub(s))
			}
		}
	} else {
		var brokerWAL *wal.Config
		if cfg.WALDir != "" {
			brokerWAL = &wal.Config{
				Dir:    filepath.Join(cfg.WALDir, "broker"),
				Policy: cfg.Fsync,
				Obs:    cfg.Reg,
				Entity: "broker",
			}
		}
		w.Broker, err = core.NewBroker(core.BrokerConfig{
			Network:        w.Net,
			Addr:           w.addr("broker"),
			Scheme:         cfg.Scheme,
			Directory:      w.Dir,
			GroupPub:       judge.GroupPublicKey(),
			DHTNodes:       dhtAddrs,
			DHTReplication: cfg.DHTReplication,
			Persistence:    brokerWAL,
			Obs:            cfg.Reg,
			DepositBatch:   depositBatch,
		})
		if err != nil {
			w.Close()
			return nil, fmt.Errorf("load: broker: %w", err)
		}
		if w.Cluster != nil {
			w.Cluster.Trust(w.Broker.PublicKey())
		}
	}

	if err := w.spawnActors(dhtAddrs); err != nil {
		w.Close()
		return nil, err
	}
	if err := w.warmup(); err != nil {
		w.Close()
		return nil, err
	}
	return w, nil
}

// spawnActors builds and enrolls every actor in parallel.
func (w *World) spawnActors(dhtAddrs []bus.Address) error {
	cfg := w.cfg
	brokerAddr, brokerPub := w.brokerIdentity()
	var router core.ShardRouter
	var retry *bus.RetryPolicy
	if w.Fed != nil {
		router = w.Fed
		// The retry budget must outlive a leaderless window: backoff sums
		// past the lease TTL, so an op issued into a failover rides
		// retries and redirects to the promoted follower.
		retry = &bus.RetryPolicy{
			MaxAttempts: 8,
			BaseDelay:   25 * time.Millisecond,
			MaxDelay:    300 * time.Millisecond,
			Factor:      2,
		}
	}
	w.Actors = make([]*Actor, cfg.Actors)
	return eachIndex(cfg.Actors, func(i int) error {
		id := fmt.Sprintf("actor-%04d", i)
		p, err := core.NewPeer(core.PeerConfig{
			ID:                 id,
			Network:            w.Net,
			Addr:               w.addr("peer:" + id),
			Scheme:             cfg.Scheme,
			Directory:          w.Dir,
			BrokerAddr:         brokerAddr,
			BrokerPub:          brokerPub,
			Router:             router,
			Retry:              retry,
			JudgeAddr:          w.JudgeSrv.Addr(),
			CredPool:           cfg.CredPool,
			DHTNodes:           dhtAddrs,
			DHTReplication:     cfg.DHTReplication,
			PublishBindings:    cfg.Detection,
			WatchHeldCoins:     cfg.Detection,
			CheckPublicBinding: cfg.Detection,
		})
		if err != nil {
			return fmt.Errorf("load: actor %d: %w", i, err)
		}
		w.Actors[i] = &Actor{Idx: i, Peer: p}
		return nil
	})
}

// brokerIdentity returns the fallback broker address and key actors are
// configured with: the single broker, or shard 0's founding leader under
// federation (the Router keeps both current from there).
func (w *World) brokerIdentity() (bus.Address, sig.PublicKey) {
	if w.Fed == nil {
		return w.Broker.BoundAddr(), w.Broker.PublicKey()
	}
	addr, _ := w.Fed.Leader(0)
	return addr, w.Fed.BrokerPub(0)
}

// brokers lists the live trust roots: the single broker, or every shard's
// current leader. Ledger reads (audit, balances) sum over this.
func (w *World) brokers() []*core.Broker {
	if w.Fed == nil {
		return []*core.Broker{w.Broker}
	}
	out := make([]*core.Broker, 0, w.Fed.Shards())
	for s := 0; s < w.Fed.Shards(); s++ {
		if b, _, ok := w.Fed.LeaderBroker(s); ok {
			out = append(out, b)
		}
	}
	return out
}

// brokerAddrs lists every broker endpoint: the single broker's, or all
// federation nodes' (leaders and followers — partitions cut them all).
func (w *World) brokerAddrs() []bus.Address {
	if w.Fed == nil {
		return []bus.Address{w.Broker.BoundAddr()}
	}
	var out []bus.Address
	for s := 0; s < w.Fed.Shards(); s++ {
		for r := 0; r < w.Fed.Replicas(); r++ {
			out = append(out, w.Fed.Node(s, r).Addr())
		}
	}
	return out
}

// Redirects sums the redirect hints actors' retry layers followed — the
// failover scenario's client-visible rerouting count.
func (w *World) Redirects() int64 {
	var total int64
	for _, a := range w.Actors {
		total += a.Peer.Redirects()
	}
	return total
}

// FailoverRecoveries returns each leader kill's wall-clock time from crash
// to a follower serving the shard again (lease expiry included).
func (w *World) FailoverRecoveries() []time.Duration {
	w.foMu.Lock()
	defer w.foMu.Unlock()
	return append([]time.Duration(nil), w.foRecover...)
}

// KillNextLeader is the broker-failover scenario event: crash-stop the
// next shard's leader (round-robin across kills) and record the time until
// a promoted follower serves the shard again. The lease is not released —
// the shard stays leaderless for a full TTL, exactly like a real crash.
func (w *World) KillNextLeader(_ *rand.Rand) {
	if w.Fed == nil {
		return
	}
	shard := int(w.foKills.Add(1)-1) % w.Fed.Shards()
	start := time.Now()
	if _, err := w.Fed.KillLeader(shard); err != nil {
		return
	}
	if _, err := w.Fed.WaitLeader(shard, 30*time.Second); err != nil {
		return
	}
	w.foMu.Lock()
	w.foRecover = append(w.foRecover, time.Since(start))
	w.foMu.Unlock()
}

// KillDHTNode is the dht-node-kill scenario event: crash-stop one DHT node
// (round-robin, never the last one standing) mid-storm. The node's endpoint
// unregisters, so quorum writes ride on the surviving W-of-N majority and
// client reads fall back to the remaining replicas.
func (w *World) KillDHTNode(_ *rand.Rand) {
	if w.Cluster == nil {
		return
	}
	n := len(w.Cluster.Nodes())
	w.dhtMu.Lock()
	if len(w.dhtDown) >= n-2 { // keep a read quorum alive (N=3 → at most 1 down)
		w.dhtMu.Unlock()
		return
	}
	idx := int(w.dhtKills.Add(1)-1) % n
	for contains(w.dhtDown, idx) {
		idx = (idx + 1) % n
	}
	w.dhtDown = append(w.dhtDown, idx)
	w.dhtMu.Unlock()
	_ = w.Cluster.Kill(idx)
}

// RestartDHTNode recovers the oldest killed DHT node from its journal and
// records the kill→serving-again wall time. Anti-entropy sweeps then close
// whatever the node missed while down.
func (w *World) RestartDHTNode(_ *rand.Rand) {
	if w.Cluster == nil {
		return
	}
	w.dhtMu.Lock()
	if len(w.dhtDown) == 0 {
		w.dhtMu.Unlock()
		return
	}
	idx := w.dhtDown[0]
	w.dhtDown = w.dhtDown[1:]
	w.dhtMu.Unlock()
	start := time.Now()
	if err := w.Cluster.Restart(idx); err != nil {
		return
	}
	w.dhtMu.Lock()
	w.dhtRecover = append(w.dhtRecover, time.Since(start))
	w.dhtMu.Unlock()
}

// RestartDownDHTNodes brings every still-killed DHT node back (drain phase:
// the audit needs the full replica set live for digest parity).
func (w *World) RestartDownDHTNodes() {
	for {
		w.dhtMu.Lock()
		empty := len(w.dhtDown) == 0
		w.dhtMu.Unlock()
		if empty {
			return
		}
		w.RestartDHTNode(nil)
	}
}

// DHTKillStats reports the node-kill count and per-restart recovery times.
func (w *World) DHTKillStats() (kills int64, recoveries []time.Duration) {
	w.dhtMu.Lock()
	defer w.dhtMu.Unlock()
	return w.dhtKills.Load(), append([]time.Duration(nil), w.dhtRecover...)
}

// DHTLeaseStats sums every actor's client-side lease cache counters.
func (w *World) DHTLeaseStats() (hits, misses, stale, repaired uint64) {
	for _, a := range w.Actors {
		h, m, s, r := a.Peer.DHTLeaseStats()
		hits, misses, stale, repaired = hits+h, misses+m, stale+s, repaired+r
	}
	return hits, misses, stale, repaired
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// warmup pre-funds every actor's ready queue and mints the hot set. Warm
// coins are issued to the next actor over, so the owner and the holder
// differ from the first transfer on (the remote-owner path is the normal
// one).
func (w *World) warmup() error {
	n := len(w.Actors)
	if w.cfg.WarmCoins > 0 {
		err := eachIndex(n, func(i int) error {
			owner := w.Actors[i]
			holder := w.Actors[(i+1)%n]
			for j := 0; j < w.cfg.WarmCoins; j++ {
				id, err := owner.Peer.Purchase(1, false)
				if err != nil {
					return fmt.Errorf("load: warm purchase (actor %d): %w", i, err)
				}
				w.minted.Add(1)
				if err := owner.Peer.IssueTo(holder.Peer.Addr(), id); err != nil {
					return fmt.Errorf("load: warm issue (actor %d): %w", i, err)
				}
				holder.giveCoin(id)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	for k := 0; k < w.cfg.HotCoins; k++ {
		owner := w.Actors[k%n]
		holder := w.Actors[(k+1)%n]
		id, err := owner.Peer.Purchase(1, false)
		if err != nil {
			return fmt.Errorf("load: hot purchase: %w", err)
		}
		w.minted.Add(1)
		if err := owner.Peer.IssueTo(holder.Peer.Addr(), id); err != nil {
			return fmt.Errorf("load: hot issue: %w", err)
		}
		w.hot = append(w.hot, &hotCoin{id: id, holder: holder.Idx})
	}
	for k := 0; k < w.cfg.Channels; k++ {
		payer := w.Actors[k%n]
		vendor := w.Actors[(k+1)%n]
		if _, err := w.openChannelBetween(payer, vendor); err != nil {
			return fmt.Errorf("load: warm channel: %w", err)
		}
	}
	return nil
}

// pickOnline returns a random online actor other than excl (-1: no
// exclusion), or nil when none qualifies.
func (w *World) pickOnline(rng *rand.Rand, excl int) *Actor {
	n := len(w.Actors)
	for t := 0; t < 8; t++ {
		a := w.Actors[rng.Intn(n)]
		if a.Idx != excl && !a.isOffline() {
			return a
		}
	}
	start := rng.Intn(n)
	for off := 0; off < n; off++ {
		a := w.Actors[(start+off)%n]
		if a.Idx != excl && !a.isOffline() {
			return a
		}
	}
	return nil
}

// takeReady pops a spendable coin from a random online actor (a few random
// probes, then a sweep), or reports none anywhere.
func (w *World) takeReady(rng *rand.Rand) (*Actor, coin.ID, bool) {
	n := len(w.Actors)
	for t := 0; t < 8; t++ {
		a := w.Actors[rng.Intn(n)]
		if a.isOffline() {
			continue
		}
		if id, ok := a.takeCoin(); ok {
			return a, id, true
		}
	}
	start := rng.Intn(n)
	for off := 0; off < n; off++ {
		a := w.Actors[(start+off)%n]
		if a.isOffline() {
			continue
		}
		if id, ok := a.takeCoin(); ok {
			return a, id, true
		}
	}
	return nil, "", false
}

// MintedValue reports the value actors observed entering circulation.
func (w *World) MintedValue() int64 { return w.minted.Load() }

// ParkedCoins reports how many coins ambiguous failures pulled from
// circulation before the drain.
func (w *World) ParkedCoins() int64 { return w.parked.Load() }

// DoubleSpends reports the flood accounting: broker-rejected replays and
// broker-accepted replays (the latter must be zero).
func (w *World) DoubleSpends() (rejected, accepted int64) {
	return w.dsRejected.Load(), w.dsAccepted.Load()
}

// Close tears the world down. Safe on a partially built world.
func (w *World) Close() {
	for _, a := range w.Actors {
		if a != nil {
			_ = a.Peer.Close()
		}
	}
	if w.Cluster != nil {
		w.Cluster.Close()
	}
	if w.Fed != nil {
		_ = w.Fed.Close()
	}
	if w.Broker != nil {
		_ = w.Broker.Close()
	}
	if w.JudgeSrv != nil {
		_ = w.JudgeSrv.Close()
	}
	if w.fedWalTmp != "" {
		_ = os.RemoveAll(w.fedWalTmp)
	}
	if w.dhtWalTmp != "" {
		_ = os.RemoveAll(w.dhtWalTmp)
	}
}

// eachIndex runs fn(0..n-1) across worldWorkers goroutines and returns the
// first error.
func eachIndex(n int, fn func(i int) error) error {
	workers := worldWorkers
	if workers > n {
		workers = n
	}
	var (
		next   atomic.Int64
		wg     sync.WaitGroup
		mu     sync.Mutex
		first  error
		failed atomic.Bool
	)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}
