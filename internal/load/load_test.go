package load

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"whopay/internal/bus"
)

// runScenario spins up a small world on the in-memory bus, runs the named
// scenario, and returns the run plus its result.
func runScenario(t *testing.T, name string, actors, ops int) (*World, *Run, Result) {
	t.Helper()
	sc, ok := FindScenario(name)
	if !ok {
		t.Fatalf("unknown scenario %q", name)
	}
	base := WorldConfig{
		Actors:  actors,
		Seed:    42,
		Network: bus.NewMemory(),
	}
	w, err := NewWorld(sc.WorldConfig(base))
	if err != nil {
		t.Fatalf("world: %v", err)
	}
	t.Cleanup(w.Close)
	run := NewRun(w, sc, RunConfig{
		Rate:       500,
		Ops:        ops,
		Seed:       42,
		DrainGrace: 60 * time.Second,
	})
	return w, run, run.Run()
}

// TestLoadMatrix runs every scenario of the matrix end-to-end on the
// in-memory bus and holds each to the acceptance bar: the run completes,
// and the post-run ledger audit finds zero invariant violations —
// conservation and no-double-spend hold under contention, churn, replay
// floods, and partitions alike.
func TestLoadMatrix(t *testing.T) {
	for _, name := range ScenarioNames() {
		t.Run(name, func(t *testing.T) {
			w, _, res := runScenario(t, name, 6, 120)
			if res.Scheduled != 120 {
				t.Fatalf("scheduled %d/120 intents", res.Scheduled)
			}
			if res.Dropped != 0 {
				t.Fatalf("%d operations dropped at drain grace", res.Dropped)
			}
			if res.Completed == 0 {
				t.Fatalf("no operation succeeded (failed=%d skipped=%d errors=%+v)",
					res.Failed, res.Skipped, res.Errors)
			}
			audit := w.DrainAndAudit()
			if len(audit.Violations) > 0 {
				t.Fatalf("ledger audit violations: %v\naudit: %+v", audit.Violations, audit)
			}
			if !audit.Conserved || !audit.NoDoubleSpend {
				t.Fatalf("audit flags: %+v", audit)
			}
		})
	}
}

// TestLoadSteadyCleanErrors: the steady profile on a clean network must
// produce zero protocol errors of any kind — it is the strict-gate
// baseline CI leans on.
func TestLoadSteadyCleanErrors(t *testing.T) {
	w, run, res := runScenario(t, "steady", 6, 150)
	if res.Errors.Protocol != 0 || res.Errors.Other != 0 || res.Errors.Timeouts != 0 || res.Errors.Transport != 0 {
		t.Fatalf("steady run produced errors: %+v", res.Errors)
	}
	audit := w.DrainAndAudit()
	rep := BuildReport(run, res, audit)
	if rep.Errors.ProtocolUnexpected != 0 {
		t.Fatalf("unexpected protocol errors: %+v", rep.Errors)
	}
}

// TestLoadDoubleSpendFloodRejectsReplays: the flood scenario must actually
// exercise the replay path, and the broker must reject every copy.
func TestLoadDoubleSpendFloodRejectsReplays(t *testing.T) {
	w, _, _ := runScenario(t, "double-spend-flood", 6, 150)
	rejected, accepted := w.DoubleSpends()
	if rejected == 0 {
		t.Fatal("flood ran but no deposit replay was attempted — the scenario is not exercising the attack")
	}
	if accepted != 0 {
		t.Fatalf("broker accepted %d deposit replays", accepted)
	}
	audit := w.DrainAndAudit()
	if len(audit.Violations) > 0 {
		t.Fatalf("audit: %v", audit.Violations)
	}
	if audit.DoubleDepositCases == 0 {
		t.Fatal("broker recorded no double-deposit fraud cases")
	}
}

// TestLoadReportArtifact: the JSON artifact round-trips with the pinned
// schema, echoes the run config, and carries the latency summary and the
// audit verdict.
func TestLoadReportArtifact(t *testing.T) {
	w, run, res := runScenario(t, "steady", 5, 100)
	audit := w.DrainAndAudit()
	rep := BuildReport(run, res, audit)

	if rep.Schema != ReportSchema || rep.Scenario != "steady" {
		t.Fatalf("schema/scenario = %q/%q", rep.Schema, rep.Scenario)
	}
	if rep.Config.Actors != 5 || rep.Config.Seed != 42 || rep.Config.Rate != 500 {
		t.Fatalf("config echo: %+v", rep.Config)
	}
	if rep.Config.WAL || rep.Config.Fsync != "" {
		t.Fatalf("wal-off run reports wal: %+v", rep.Config)
	}
	if rep.LatencyMs.Count != res.Completed {
		t.Fatalf("latency count %d != completed %d", rep.LatencyMs.Count, res.Completed)
	}
	if rep.LatencyMs.P50 <= 0 || rep.LatencyMs.P999 < rep.LatencyMs.P50 {
		t.Fatalf("degenerate percentiles: %+v", rep.LatencyMs)
	}
	if rep.AchievedRate <= 0 {
		t.Fatalf("achieved rate %v", rep.AchievedRate)
	}
	if !rep.Audit.Conserved {
		t.Fatalf("audit in report: %+v", rep.Audit)
	}

	dir := t.TempDir()
	path, err := WriteReport(dir, rep)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	if filepath.Base(path) != "BENCH_load_steady.json" {
		t.Fatalf("artifact name: %s", path)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	var decoded Report
	if err := json.Unmarshal(buf, &decoded); err != nil {
		t.Fatalf("artifact not valid JSON: %v", err)
	}
	if decoded.Schema != ReportSchema || decoded.Scheduled != rep.Scheduled {
		t.Fatalf("round trip lost data: %+v", decoded)
	}
	if ReportFileName("steady", true) != "BENCH_load_steady_wal.json" {
		t.Fatal("wal variant file name")
	}
}

// TestLoadPartitionEventsFire: the partition scenario's cut and heal events
// run at their fractions of the schedule.
func TestLoadPartitionEventsFire(t *testing.T) {
	_, run, res := runScenario(t, "partition", 6, 150)
	fired := run.EventsFired()
	if len(fired) != 2 || fired[0] != "cut-region" || fired[1] != "heal" {
		t.Fatalf("events fired: %v", fired)
	}
	if res.Scheduled != 150 {
		t.Fatalf("scheduled %d", res.Scheduled)
	}
}
