package store_test

import (
	"fmt"
	"sync"
	"testing"

	"whopay/internal/store"
)

// memJournal records mutations in order (and can fail on demand).
type memJournal struct {
	mu   sync.Mutex
	muts []journalMut
	fail error
}

type journalMut struct {
	table string
	del   bool
	key   string
	val   string
}

func (j *memJournal) LogSet(table string, key, val []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.fail != nil {
		return j.fail
	}
	j.muts = append(j.muts, journalMut{table: table, key: string(key), val: string(val)})
	return nil
}

func (j *memJournal) LogDelete(table string, key []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.fail != nil {
		return j.fail
	}
	j.muts = append(j.muts, journalMut{table: table, del: true, key: string(key)})
	return nil
}

func newDurable(j store.Journal) *store.Durable[string, string] {
	s := store.NewSharded[string, string](4, store.StringHash[string])
	return store.NewDurable(s, "t", j, store.StringCodec[string](), store.StringCodec[string]())
}

func TestDurableJournalsMutations(t *testing.T) {
	j := &memJournal{}
	d := newDurable(j)

	d.Set("a", "1")
	if !d.Insert("b", "2") {
		t.Fatal("Insert b failed")
	}
	if d.Insert("b", "3") {
		t.Fatal("duplicate Insert succeeded")
	}
	d.GetOrInsert("c", func() string { return "4" })
	d.GetOrInsert("c", func() string { return "nope" })
	d.Compute("a", func(cur string, _ bool) (string, store.Op) { return cur + "!", store.OpSet })
	d.ComputeIfPresent("b", func(string) (string, store.Op) { return "", store.OpDelete })
	if _, ok := d.GetAndDelete("c"); !ok {
		t.Fatal("GetAndDelete c missed")
	}
	if d.Delete("missing") {
		t.Fatal("Delete of absent key reported true")
	}

	want := []journalMut{
		{table: "t", key: "a", val: "1"},
		{table: "t", key: "b", val: "2"},
		{table: "t", key: "c", val: "4"},
		{table: "t", key: "a", val: "1!"},
		{table: "t", del: true, key: "b"},
		{table: "t", del: true, key: "c"},
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.muts) != len(want) {
		t.Fatalf("journal has %d mutations, want %d: %+v", len(j.muts), len(want), j.muts)
	}
	for i := range want {
		if j.muts[i] != want[i] {
			t.Fatalf("journal[%d] = %+v, want %+v", i, j.muts[i], want[i])
		}
	}
	if err := d.Err(); err != nil {
		t.Fatalf("unexpected Err: %v", err)
	}
}

func TestDurableReplayReproducesState(t *testing.T) {
	j := &memJournal{}
	d := newDurable(j)
	d.Set("a", "1")
	d.Set("b", "2")
	d.Set("a", "3")
	d.Delete("b")
	d.Set("c", "4")

	replayed := newDurable(nil)
	j.mu.Lock()
	muts := append([]journalMut(nil), j.muts...)
	j.mu.Unlock()
	for _, m := range muts {
		var err error
		if m.del {
			err = replayed.ApplyDelete([]byte(m.key))
		} else {
			err = replayed.ApplySet([]byte(m.key), []byte(m.val))
		}
		if err != nil {
			t.Fatalf("apply %+v: %v", m, err)
		}
	}
	got := replayed.Snapshot()
	want := map[string]string{"a": "3", "c": "4"}
	if len(got) != len(want) {
		t.Fatalf("replayed state %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("replayed[%q] = %q, want %q", k, got[k], v)
		}
	}
}

func TestDurableNilJournalPassthrough(t *testing.T) {
	d := newDurable(nil)
	d.Set("a", "1")
	if v, ok := d.Get("a"); !ok || v != "1" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("Err on passthrough: %v", err)
	}
}

// TestDurableConcurrentSameKeyOrder hammers one key: the journal's final
// record for the key must match the store's final value (journal order is
// memory order per key, because logging happens under the shard lock).
func TestDurableConcurrentSameKeyOrder(t *testing.T) {
	j := &memJournal{}
	d := newDurable(j)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				d.Set("hot", fmt.Sprintf("%d-%d", g, i))
			}
		}(g)
	}
	wg.Wait()
	final, _ := d.Get("hot")
	j.mu.Lock()
	defer j.mu.Unlock()
	last := j.muts[len(j.muts)-1]
	if last.key != "hot" || last.val != final {
		t.Fatalf("journal tail %+v disagrees with store value %q", last, final)
	}
}

func TestDurableErrCapturesJournalFailure(t *testing.T) {
	j := &memJournal{fail: fmt.Errorf("disk gone")}
	d := newDurable(j)
	d.Set("a", "1")
	// The in-memory mutation still applies (responses must not diverge
	// from the nil-journal path); the failure is retained.
	if v, ok := d.Get("a"); !ok || v != "1" {
		t.Fatalf("mutation dropped on journal failure: %q %v", v, ok)
	}
	if err := d.Err(); err == nil {
		t.Fatal("Err lost the journal failure")
	}
}

func TestCodecs(t *testing.T) {
	u := store.Uint64Codec()
	b, err := u.Enc(42)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := u.Dec(b); err != nil || v != 42 {
		t.Fatalf("uint64 round trip: %d %v", v, err)
	}
	if _, err := u.Dec([]byte{1}); err == nil {
		t.Fatal("short uint64 accepted")
	}

	type rec struct{ A, B string }
	g := store.GobCodec[rec]()
	rb, err := g.Enc(rec{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	rb2, err := g.Enc(rec{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if string(rb) != string(rb2) {
		t.Fatal("gob codec is not deterministic for equal input")
	}
	if v, err := g.Dec(rb); err != nil || v != (rec{"x", "y"}) {
		t.Fatalf("gob round trip: %+v %v", v, err)
	}

	unit := store.UnitCodec()
	ub, err := unit.Enc(struct{}{})
	if err != nil || len(ub) != 0 {
		t.Fatalf("unit codec: %v %v", ub, err)
	}
}
