package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"sync"
)

// Journal receives durable mutations. The write-ahead-log-backed
// implementation lives with the entities (internal/core, internal/dht); the
// store layer only defines the contract so it stays free of I/O concerns.
// Implementations must be safe for concurrent use — Durable calls them under
// shard write locks of independent shards.
type Journal interface {
	// LogSet records that val is now stored under key in table.
	LogSet(table string, key, val []byte) error
	// LogDelete records that key was removed from table.
	LogDelete(table string, key []byte) error
}

// Codec converts keys or values to and from their journaled byte form.
// Encodings must be deterministic (byte-identical for equal input) so
// snapshots and the gob round-trip suite can assert stability.
type Codec[T any] struct {
	Enc func(T) ([]byte, error)
	Dec func([]byte) (T, error)
}

// StringCodec encodes string-like types as their raw bytes.
func StringCodec[T ~string]() Codec[T] {
	return Codec[T]{
		Enc: func(v T) ([]byte, error) { return []byte(v), nil },
		Dec: func(b []byte) (T, error) { return T(b), nil },
	}
}

// Uint64Codec encodes uint64 keys big-endian (sorts like the integers).
func Uint64Codec() Codec[uint64] {
	return Codec[uint64]{
		Enc: func(v uint64) ([]byte, error) { return binary.BigEndian.AppendUint64(nil, v), nil },
		Dec: func(b []byte) (uint64, error) {
			if len(b) != 8 {
				return 0, fmt.Errorf("store: uint64 key of %d bytes", len(b))
			}
			return binary.BigEndian.Uint64(b), nil
		},
	}
}

// UnitCodec encodes struct{} values (membership tables) as empty bytes.
func UnitCodec() Codec[struct{}] {
	return Codec[struct{}]{
		Enc: func(struct{}) ([]byte, error) { return nil, nil },
		Dec: func([]byte) (struct{}, error) { return struct{}{}, nil },
	}
}

// GobCodec encodes values with a fresh gob encoder per call, so every
// encoding is self-contained (replayable in isolation) and deterministic for
// map-free types.
func GobCodec[T any]() Codec[T] {
	return Codec[T]{
		Enc: func(v T) ([]byte, error) {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
				return nil, err
			}
			return buf.Bytes(), nil
		},
		Dec: func(b []byte) (T, error) {
			var v T
			err := gob.NewDecoder(bytes.NewReader(b)).Decode(&v)
			return v, err
		},
	}
}

// Durable decorates a Sharded store with write-ahead journaling: every
// mutation is logged — under the owning shard's write lock, so the journal
// order matches the memory order per key — before the mutating call returns.
// With a nil Journal it is a pure passthrough with zero added locking, which
// is what keeps the Persistence:nil configuration byte-for-byte compatible
// with the in-memory-only behavior.
//
// Journal or codec failures never block the in-memory mutation (the
// protocol response must not diverge from the nil-journal path); the first
// failure is retained for the entity to surface via Err.
type Durable[K comparable, V any] struct {
	*Sharded[K, V]
	table string
	j     Journal
	kc    Codec[K]
	vc    Codec[V]

	errMu sync.Mutex
	err   error
}

// NewDurable wraps s. A nil journal disables journaling entirely.
func NewDurable[K comparable, V any](s *Sharded[K, V], table string, j Journal, kc Codec[K], vc Codec[V]) *Durable[K, V] {
	return &Durable[K, V]{Sharded: s, table: table, j: j, kc: kc, vc: vc}
}

// Table returns the journal table name.
func (d *Durable[K, V]) Table() string { return d.table }

// Err returns the first journaling or codec failure, if any.
func (d *Durable[K, V]) Err() error {
	d.errMu.Lock()
	defer d.errMu.Unlock()
	return d.err
}

// fail retains the first error.
func (d *Durable[K, V]) fail(err error) {
	if err == nil {
		return
	}
	d.errMu.Lock()
	if d.err == nil {
		d.err = err
	}
	d.errMu.Unlock()
}

// logSet journals one set (call under the key's shard lock).
func (d *Durable[K, V]) logSet(k K, v V) {
	kb, err := d.kc.Enc(k)
	if err != nil {
		d.fail(fmt.Errorf("store: %s key encode: %w", d.table, err))
		return
	}
	vb, err := d.vc.Enc(v)
	if err != nil {
		d.fail(fmt.Errorf("store: %s value encode: %w", d.table, err))
		return
	}
	d.fail(d.j.LogSet(d.table, kb, vb))
}

// logDelete journals one delete (call under the key's shard lock).
func (d *Durable[K, V]) logDelete(k K) {
	kb, err := d.kc.Enc(k)
	if err != nil {
		d.fail(fmt.Errorf("store: %s key encode: %w", d.table, err))
		return
	}
	d.fail(d.j.LogDelete(d.table, kb))
}

// Set stores and journals v under k.
func (d *Durable[K, V]) Set(k K, v V) {
	if d.j == nil {
		d.Sharded.Set(k, v)
		return
	}
	d.Sharded.Compute(k, func(V, bool) (V, Op) {
		d.logSet(k, v)
		return v, OpSet
	})
}

// Insert stores and journals v under k when absent.
func (d *Durable[K, V]) Insert(k K, v V) bool {
	if d.j == nil {
		return d.Sharded.Insert(k, v)
	}
	inserted := false
	d.Sharded.Compute(k, func(cur V, exists bool) (V, Op) {
		if exists {
			return cur, OpKeep
		}
		inserted = true
		d.logSet(k, v)
		return v, OpSet
	})
	return inserted
}

// GetOrInsert returns the value under k, inserting (and journaling) mk()
// when absent.
func (d *Durable[K, V]) GetOrInsert(k K, mk func() V) V {
	if d.j == nil {
		return d.Sharded.GetOrInsert(k, mk)
	}
	v, _ := d.Sharded.Compute(k, func(cur V, exists bool) (V, Op) {
		if exists {
			return cur, OpKeep
		}
		v := mk()
		d.logSet(k, v)
		return v, OpSet
	})
	return v
}

// Delete removes (and journals) the entry under k.
func (d *Durable[K, V]) Delete(k K) bool {
	if d.j == nil {
		return d.Sharded.Delete(k)
	}
	deleted := false
	d.Sharded.Compute(k, func(cur V, exists bool) (V, Op) {
		if !exists {
			return cur, OpKeep
		}
		deleted = true
		d.logDelete(k)
		return cur, OpDelete
	})
	return deleted
}

// GetAndDelete removes (and journals) and returns the entry under k.
func (d *Durable[K, V]) GetAndDelete(k K) (V, bool) {
	if d.j == nil {
		return d.Sharded.GetAndDelete(k)
	}
	var out V
	found := false
	d.Sharded.Compute(k, func(cur V, exists bool) (V, Op) {
		if !exists {
			return cur, OpKeep
		}
		out, found = cur, true
		d.logDelete(k)
		return cur, OpDelete
	})
	return out, found
}

// Compute runs f under the shard lock and journals the resulting set or
// delete before the lock is released.
func (d *Durable[K, V]) Compute(k K, f func(cur V, exists bool) (V, Op)) (V, bool) {
	if d.j == nil {
		return d.Sharded.Compute(k, f)
	}
	return d.Sharded.Compute(k, func(cur V, exists bool) (V, Op) {
		next, op := f(cur, exists)
		switch op {
		case OpSet:
			d.logSet(k, next)
		case OpDelete:
			if exists {
				d.logDelete(k)
			}
		}
		return next, op
	})
}

// ComputeIfPresent is Compute for existing entries only.
func (d *Durable[K, V]) ComputeIfPresent(k K, f func(cur V) (V, Op)) (V, bool) {
	if d.j == nil {
		return d.Sharded.ComputeIfPresent(k, f)
	}
	return d.Sharded.ComputeIfPresent(k, func(cur V) (V, Op) {
		next, op := f(cur)
		switch op {
		case OpSet:
			d.logSet(k, next)
		case OpDelete:
			d.logDelete(k)
		}
		return next, op
	})
}

// ApplySet decodes and applies a replayed set without journaling.
func (d *Durable[K, V]) ApplySet(key, val []byte) error {
	k, err := d.kc.Dec(key)
	if err != nil {
		return fmt.Errorf("store: %s replay key: %w", d.table, err)
	}
	v, err := d.vc.Dec(val)
	if err != nil {
		return fmt.Errorf("store: %s replay value: %w", d.table, err)
	}
	d.Sharded.Set(k, v)
	return nil
}

// ApplyDelete decodes and applies a replayed delete without journaling.
func (d *Durable[K, V]) ApplyDelete(key []byte) error {
	k, err := d.kc.Dec(key)
	if err != nil {
		return fmt.Errorf("store: %s replay key: %w", d.table, err)
	}
	d.Sharded.Delete(k)
	return nil
}

// EmitAll streams the store's current entries as encoded set mutations —
// the snapshot writer's per-table feed.
func (d *Durable[K, V]) EmitAll(emit func(key, val []byte) error) error {
	var failed error
	d.Sharded.Range(func(k K, v V) bool {
		kb, err := d.kc.Enc(k)
		if err != nil {
			failed = fmt.Errorf("store: %s snapshot key encode: %w", d.table, err)
			return false
		}
		vb, err := d.vc.Enc(v)
		if err != nil {
			failed = fmt.Errorf("store: %s snapshot value encode: %w", d.table, err)
			return false
		}
		if err := emit(kb, vb); err != nil {
			failed = err
			return false
		}
		return true
	})
	return failed
}
