package store

// Ledger is a sharded account ledger with atomic debit and credit. The
// broker keeps purchase budgets and deposit payouts in one; because each
// account's balance lives in an independently locked shard, purchases and
// deposits against different accounts never contend.
//
// An account's balance springs into existence at the configured initial
// value the first time it is credited or debited — the broker's credit
// regime (BrokerConfig.InitialCredit) funds every identity on first touch.
// Balance reads never materialize entries, so monitoring the ledger is a
// pure read path.
type Ledger struct {
	accounts *Sharded[string, int64]
	initial  int64
}

// NewLedger creates a ledger with the given shard count (DefaultShards when
// non-positive). initial is the balance an account starts at on first
// credit or debit (0 for a pure payout ledger).
func NewLedger(shards int, initial int64) *Ledger {
	return &Ledger{accounts: NewSharded[string, int64](shards, StringHash[string]), initial: initial}
}

// Balance returns the account's balance: the stored value, or the initial
// balance for an account never touched. Read-only — it never creates the
// account.
func (l *Ledger) Balance(acct string) int64 {
	if v, ok := l.accounts.Get(acct); ok {
		return v
	}
	return l.initial
}

// Credit atomically adds amount (which may be negative for adjustments) to
// the account, materializing it at the initial balance first, and returns
// the new balance.
func (l *Ledger) Credit(acct string, amount int64) int64 {
	v, _ := l.accounts.Compute(acct, func(cur int64, exists bool) (int64, Op) {
		if !exists {
			cur = l.initial
		}
		return cur + amount, OpSet
	})
	return v
}

// TryDebit atomically subtracts amount from the account when the balance
// covers it, materializing the account at the initial balance first. It
// returns the resulting balance and whether the debit happened; on refusal
// the ledger is unchanged.
func (l *Ledger) TryDebit(acct string, amount int64) (int64, bool) {
	ok := false
	v, _ := l.accounts.Compute(acct, func(cur int64, exists bool) (int64, Op) {
		if !exists {
			cur = l.initial
		}
		if cur < amount {
			return cur, OpSet // materialize, but refuse the debit
		}
		ok = true
		return cur - amount, OpSet
	})
	return v, ok
}

// Snapshot copies every materialized account balance.
func (l *Ledger) Snapshot() map[string]int64 { return l.accounts.Snapshot() }

// Accounts returns the number of materialized accounts.
func (l *Ledger) Accounts() int { return l.accounts.Len() }
