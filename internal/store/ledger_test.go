package store

import (
	"fmt"
	"sync"
	"testing"
)

func TestLedgerInitialBalance(t *testing.T) {
	l := NewLedger(8, 100)
	if got := l.Balance("alice"); got != 100 {
		t.Fatalf("untouched balance = %d", got)
	}
	if l.Accounts() != 0 {
		t.Fatal("Balance materialized an account")
	}
	if got := l.Credit("alice", 5); got != 105 {
		t.Fatalf("credit = %d", got)
	}
	if l.Accounts() != 1 {
		t.Fatalf("accounts = %d", l.Accounts())
	}
}

func TestLedgerTryDebit(t *testing.T) {
	l := NewLedger(8, 10)
	if bal, ok := l.TryDebit("bob", 4); !ok || bal != 6 {
		t.Fatalf("debit within initial credit: %d, %v", bal, ok)
	}
	if bal, ok := l.TryDebit("bob", 7); ok || bal != 6 {
		t.Fatalf("overdraft allowed: %d, %v", bal, ok)
	}
	if bal, ok := l.TryDebit("bob", 6); !ok || bal != 0 {
		t.Fatalf("exact debit: %d, %v", bal, ok)
	}
	// Zero-initial ledger: debits refuse until credited.
	z := NewLedger(8, 0)
	if _, ok := z.TryDebit("carol", 1); ok {
		t.Fatal("debit from empty zero-initial account")
	}
	z.Credit("carol", 3)
	if bal, ok := z.TryDebit("carol", 2); !ok || bal != 1 {
		t.Fatalf("debit after credit: %d, %v", bal, ok)
	}
}

// TestLedgerConservation runs concurrent transfers between accounts and
// checks no value appears or vanishes: the atomic debit/credit pair may
// be split, but refused debits must not move money.
func TestLedgerConservation(t *testing.T) {
	const (
		accounts   = 8
		initial    = 1000
		goroutines = 8
		perG       = 5000
	)
	l := NewLedger(4, initial)
	// Materialize everyone.
	for i := 0; i < accounts; i++ {
		l.Credit(fmt.Sprintf("a%d", i), 0)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				from := fmt.Sprintf("a%d", (g+i)%accounts)
				to := fmt.Sprintf("a%d", (g+i+1)%accounts)
				if _, ok := l.TryDebit(from, 3); ok {
					l.Credit(to, 3)
				}
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, bal := range l.Snapshot() {
		if bal < 0 {
			t.Fatalf("negative balance %d", bal)
		}
		total += bal
	}
	if total != accounts*initial {
		t.Fatalf("conservation broken: total %d, want %d", total, accounts*initial)
	}
}
