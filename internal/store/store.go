// Package store is the sharded in-memory state substrate WhoPay's
// request-serving entities (the broker, peers, and DHT nodes) keep their
// coin, account, and subscription state in.
//
// The paper's scalability argument is that the broker only handles
// purchases, deposits, syncs, and downtime operations — so it must sustain
// heavy concurrent load. A single mutex over a monolith of maps serializes
// every request; Sharded splits the key space over independently locked
// shards so requests touching different coins or accounts never contend.
// The only cross-request ordering the protocol actually needs — the
// validate→deliver→commit sequence per coin — stays with the per-coin
// service locks the entities keep on top of this substrate.
//
// A Sharded store is deliberately map-shaped rather than storage-shaped:
// every primitive (Get/Set/Compute/Range/Snapshot) is expressible against a
// durable backend with per-key compare-and-swap, so a persistent
// implementation can slot in behind the same API without touching the
// protocol code.
package store

import "sync"

// DefaultShards is the shard count used when a constructor receives a
// non-positive one. 32 shards keep lock contention negligible for the
// simulator's workloads while staying cheap to snapshot.
const DefaultShards = 32

// Op tells Compute and ComputeIfPresent what to do with the entry after the
// closure returns.
type Op int

const (
	// OpKeep leaves the entry exactly as it was (a read, or an in-place
	// mutation of a reference value the caller owns).
	OpKeep Op = iota
	// OpSet stores the returned value under the key.
	OpSet
	// OpDelete removes the entry.
	OpDelete
)

// shard is one lock domain. Entries never move between shards, so a key's
// entire lifetime is ordered by a single RWMutex.
type shard[K comparable, V any] struct {
	mu sync.RWMutex
	m  map[K]V
}

// Sharded is a hash-sharded map with per-shard read/write locking and
// atomic read-modify-write primitives. The zero value is not usable; create
// stores with NewSharded. Safe for concurrent use.
type Sharded[K comparable, V any] struct {
	hash   func(K) uint64
	shards []shard[K, V]
	mask   uint64
}

// NewSharded creates a store with the given shard count (rounded up to a
// power of two; DefaultShards when non-positive) and hash function.
func NewSharded[K comparable, V any](shards int, hash func(K) uint64) *Sharded[K, V] {
	if hash == nil {
		panic("store: nil hash function")
	}
	if shards <= 0 {
		shards = DefaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	s := &Sharded[K, V]{hash: hash, shards: make([]shard[K, V], n), mask: uint64(n - 1)}
	for i := range s.shards {
		s.shards[i].m = make(map[K]V)
	}
	return s
}

// StringHash is a hash function for string-like keys (FNV-1a). WhoPay's hot
// keys — coin IDs, identities, payout references — are strings or string
// wrappers around uniformly random public keys, which FNV spreads well.
func StringHash[K ~string](k K) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(k); i++ {
		h ^= uint64(k[i])
		h *= 1099511628211
	}
	return h
}

// shardFor routes a key to its lock domain. The upper hash bits are folded
// in so hashes whose entropy sits above the mask still spread.
func (s *Sharded[K, V]) shardFor(k K) *shard[K, V] {
	h := s.hash(k)
	h ^= h >> 32
	h ^= h >> 16
	return &s.shards[h&s.mask]
}

// ShardCount returns the number of lock domains.
func (s *Sharded[K, V]) ShardCount() int { return len(s.shards) }

// ShardIndex returns the shard a key routes to (tests and distribution
// metrics).
func (s *Sharded[K, V]) ShardIndex(k K) int {
	h := s.hash(k)
	h ^= h >> 32
	h ^= h >> 16
	return int(h & s.mask)
}

// Get returns the value stored under k.
func (s *Sharded[K, V]) Get(k K) (V, bool) {
	sh := s.shardFor(k)
	sh.mu.RLock()
	v, ok := sh.m[k]
	sh.mu.RUnlock()
	return v, ok
}

// Set stores v under k, replacing any existing value.
func (s *Sharded[K, V]) Set(k K, v V) {
	sh := s.shardFor(k)
	sh.mu.Lock()
	sh.m[k] = v
	sh.mu.Unlock()
}

// Insert stores v under k only if the key is absent, reporting whether it
// stored.
func (s *Sharded[K, V]) Insert(k K, v V) bool {
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, exists := sh.m[k]; exists {
		return false
	}
	sh.m[k] = v
	return true
}

// GetOrInsert returns the value under k, inserting mk() first when absent.
// mk runs under the shard lock and must not touch the store.
func (s *Sharded[K, V]) GetOrInsert(k K, mk func() V) V {
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if v, exists := sh.m[k]; exists {
		return v
	}
	v := mk()
	sh.m[k] = v
	return v
}

// Delete removes the entry under k, reporting whether one existed.
func (s *Sharded[K, V]) Delete(k K) bool {
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, exists := sh.m[k]; !exists {
		return false
	}
	delete(sh.m, k)
	return true
}

// GetAndDelete removes and returns the entry under k.
func (s *Sharded[K, V]) GetAndDelete(k K) (V, bool) {
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	v, ok := sh.m[k]
	if ok {
		delete(sh.m, k)
	}
	return v, ok
}

// Compute runs f on the current entry under the shard's write lock — the
// atomic read-modify-write primitive. f receives the current value (zero
// when absent) and decides the entry's fate via Op. Compute returns the
// entry's value and presence after applying the op. f must not touch the
// store (self-deadlock).
func (s *Sharded[K, V]) Compute(k K, f func(cur V, exists bool) (V, Op)) (V, bool) {
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur, exists := sh.m[k]
	next, op := f(cur, exists)
	switch op {
	case OpSet:
		sh.m[k] = next
		return next, true
	case OpDelete:
		delete(sh.m, k)
		var zero V
		return zero, false
	default:
		return cur, exists
	}
}

// ComputeIfPresent runs f only when k has an entry, under the shard's write
// lock. It returns the resulting value and whether an entry remains.
func (s *Sharded[K, V]) ComputeIfPresent(k K, f func(cur V) (V, Op)) (V, bool) {
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur, exists := sh.m[k]
	if !exists {
		var zero V
		return zero, false
	}
	next, op := f(cur)
	switch op {
	case OpSet:
		sh.m[k] = next
		return next, true
	case OpDelete:
		delete(sh.m, k)
		var zero V
		return zero, false
	default:
		return cur, true
	}
}

// View runs f on the current entry under the shard's read lock. Use it to
// read reference values (inner maps, slices) that writers mutate under
// Compute: the closure sees a consistent value and must copy anything it
// keeps.
func (s *Sharded[K, V]) View(k K, f func(cur V, exists bool)) {
	sh := s.shardFor(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	v, ok := sh.m[k]
	f(v, ok)
}

// Range calls f for every entry until f returns false. Each shard is
// visited under its read lock; the traversal is consistent per shard but
// not across shards — entries inserted or deleted concurrently in
// not-yet-visited shards may or may not appear.
func (s *Sharded[K, V]) Range(f func(k K, v V) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, v := range sh.m {
			if !f(k, v) {
				sh.mu.RUnlock()
				return
			}
		}
		sh.mu.RUnlock()
	}
}

// Keys returns every key (per-shard consistent, order unspecified).
func (s *Sharded[K, V]) Keys() []K {
	out := make([]K, 0, s.Len())
	s.Range(func(k K, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}

// Snapshot copies the store into a plain map (per-shard consistent).
func (s *Sharded[K, V]) Snapshot() map[K]V {
	out := make(map[K]V, s.Len())
	s.Range(func(k K, v V) bool {
		out[k] = v
		return true
	})
	return out
}

// Len returns the number of entries.
func (s *Sharded[K, V]) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}
