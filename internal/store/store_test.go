package store

import (
	"fmt"
	"sync"
	"testing"
)

func TestBasicOps(t *testing.T) {
	s := NewSharded[string, int](8, StringHash[string])
	if _, ok := s.Get("a"); ok {
		t.Fatal("ghost entry")
	}
	s.Set("a", 1)
	if v, ok := s.Get("a"); !ok || v != 1 {
		t.Fatalf("Get = %d, %v", v, ok)
	}
	if s.Insert("a", 2) {
		t.Fatal("Insert replaced an existing entry")
	}
	if !s.Insert("b", 2) {
		t.Fatal("Insert refused a fresh key")
	}
	if got := s.GetOrInsert("c", func() int { return 3 }); got != 3 {
		t.Fatalf("GetOrInsert inserted %d", got)
	}
	if got := s.GetOrInsert("c", func() int { return 99 }); got != 3 {
		t.Fatalf("GetOrInsert replaced: %d", got)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if v, ok := s.GetAndDelete("b"); !ok || v != 2 {
		t.Fatalf("GetAndDelete = %d, %v", v, ok)
	}
	if s.Delete("b") {
		t.Fatal("deleted a ghost")
	}
	if !s.Delete("a") {
		t.Fatal("Delete missed")
	}
	if got := len(s.Keys()); got != 1 {
		t.Fatalf("Keys len = %d", got)
	}
}

func TestComputeOps(t *testing.T) {
	s := NewSharded[string, int](4, StringHash[string])
	// Absent + OpKeep: nothing materializes.
	if _, present := s.Compute("x", func(cur int, ok bool) (int, Op) {
		if ok {
			t.Fatal("phantom entry")
		}
		return 0, OpKeep
	}); present {
		t.Fatal("OpKeep materialized an entry")
	}
	// Absent + OpSet inserts.
	if v, present := s.Compute("x", func(cur int, ok bool) (int, Op) { return 7, OpSet }); !present || v != 7 {
		t.Fatalf("Compute insert = %d, %v", v, present)
	}
	// Present + OpDelete removes and reports absence.
	if _, present := s.Compute("x", func(cur int, ok bool) (int, Op) {
		if !ok || cur != 7 {
			t.Fatalf("Compute saw %d, %v", cur, ok)
		}
		return 0, OpDelete
	}); present {
		t.Fatal("OpDelete left the entry")
	}
	// ComputeIfPresent skips absent keys entirely.
	ran := false
	if _, present := s.ComputeIfPresent("x", func(cur int) (int, Op) {
		ran = true
		return cur, OpKeep
	}); present || ran {
		t.Fatal("ComputeIfPresent ran on an absent key")
	}
	s.Set("x", 1)
	if v, present := s.ComputeIfPresent("x", func(cur int) (int, Op) { return cur + 1, OpSet }); !present || v != 2 {
		t.Fatalf("ComputeIfPresent = %d, %v", v, present)
	}
}

// TestComputeAtomicity hammers a small key set with read-modify-write
// increments from many goroutines; any lost update means Compute is not
// atomic.
func TestComputeAtomicity(t *testing.T) {
	s := NewSharded[string, int](8, StringHash[string])
	const (
		goroutines = 16
		perG       = 2000
		keys       = 5
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				k := fmt.Sprintf("k%d", (g+i)%keys)
				s.Compute(k, func(cur int, ok bool) (int, Op) { return cur + 1, OpSet })
			}
		}(g)
	}
	wg.Wait()
	total := 0
	s.Range(func(_ string, v int) bool { total += v; return true })
	if total != goroutines*perG {
		t.Fatalf("lost updates: counted %d, want %d", total, goroutines*perG)
	}
}

// TestSnapshotConsistency moves a conserved quantity between two keys in
// the SAME shard while snapshotting concurrently: per-shard consistency
// means every snapshot must see the invariant intact.
func TestSnapshotConsistency(t *testing.T) {
	s := NewSharded[string, int](4, StringHash[string])
	// Find two keys in the same shard.
	a := "a0"
	b := ""
	for i := 1; i < 10000; i++ {
		k := fmt.Sprintf("a%d", i)
		if s.ShardIndex(k) == s.ShardIndex(a) {
			b = k
			break
		}
	}
	if b == "" {
		t.Fatal("no shard sibling found")
	}
	const total = 1000
	s.Set(a, total)
	s.Set(b, 0)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			// Each move is two separate critical sections, so a snapshot
			// may catch at most the one unit in flight — per-shard
			// consistency bounds the tear to exactly that.
			s.Compute(a, func(cur int, ok bool) (int, Op) { return cur - 1, OpSet })
			s.Compute(b, func(cur int, ok bool) (int, Op) { return cur + 1, OpSet })
		}
	}()
	for i := 0; i < 200; i++ {
		snap := s.Snapshot()
		sum := snap[a] + snap[b]
		if sum != total && sum != total-1 {
			t.Fatalf("torn snapshot: %d + %d", snap[a], snap[b])
		}
	}
	<-done
	snap := s.Snapshot()
	if snap[a]+snap[b] != total {
		t.Fatalf("conservation broken: %d + %d", snap[a], snap[b])
	}
}

// TestShardDistribution checks the string hash spreads realistic keys
// (random-ish hex and sequential identities) across shards without any
// shard hogging the population.
func TestShardDistribution(t *testing.T) {
	s := NewSharded[string, struct{}](32, StringHash[string])
	counts := make([]int, s.ShardCount())
	const n = 32 * 256
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("peer-%d/coin-%x", i%97, i*2654435761)
		counts[s.ShardIndex(k)]++
		s.Set(k, struct{}{})
	}
	want := n / s.ShardCount()
	for i, c := range counts {
		if c < want/4 || c > want*4 {
			t.Fatalf("shard %d holds %d of %d keys (expected near %d)", i, c, n, want)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
}

func TestShardCountRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{0, DefaultShards}, {-3, DefaultShards}, {1, 1}, {2, 2}, {3, 4}, {30, 32}, {33, 64}} {
		s := NewSharded[string, int](tc.in, StringHash[string])
		if s.ShardCount() != tc.want {
			t.Fatalf("NewSharded(%d) → %d shards, want %d", tc.in, s.ShardCount(), tc.want)
		}
	}
}

func TestRangeEarlyExit(t *testing.T) {
	s := NewSharded[int, int](8, func(k int) uint64 { return uint64(k) })
	for i := 0; i < 100; i++ {
		s.Set(i, i)
	}
	seen := 0
	s.Range(func(int, int) bool {
		seen++
		return seen < 10
	})
	if seen != 10 {
		t.Fatalf("Range visited %d entries after early exit", seen)
	}
}
