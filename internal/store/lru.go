package store

import "sync"

// LRU is a hash-sharded, bounded, least-recently-used cache. It shares
// Sharded's shard layer design — the same power-of-two shard routing over a
// caller-supplied hash, one lock domain per shard — but each shard
// additionally threads its entries on an intrusive recency list so inserts
// beyond the capacity bound evict the coldest entry in O(1) under the same
// lock that ordered the access. Eviction only ever happens inside the
// victim's own shard, so the per-key lock-lifetime guarantee of Sharded
// carries over and LRU never takes two locks at once.
//
// The capacity bound is enforced per shard (capacity is split evenly,
// rounded up), which keeps the global structure lock-free: Len() never
// exceeds Cap(), and a hot shard cannot starve a cold one of its budget.
// Safe for concurrent use. The zero value is not usable; create caches with
// NewLRU.
type LRU[K comparable, V any] struct {
	hash        func(K) uint64
	shards      []lruShard[K, V]
	mask        uint64
	perShardCap int
}

// lruShard is one lock domain: a map for O(1) lookup plus an intrusive
// doubly-linked recency list (head = most recent, tail = eviction victim).
type lruShard[K comparable, V any] struct {
	mu   sync.Mutex
	m    map[K]*lruEntry[K, V]
	head *lruEntry[K, V]
	tail *lruEntry[K, V]
}

type lruEntry[K comparable, V any] struct {
	k          K
	v          V
	prev, next *lruEntry[K, V]
}

// NewLRU creates a cache holding at most ~capacity entries, split across the
// given shard count (rounded up to a power of two; DefaultShards when
// non-positive). Capacity defaults to 1024 when non-positive. Because the
// bound is per shard, the exact global bound is Cap() = ceil(capacity /
// shards) * shards ≥ capacity.
func NewLRU[K comparable, V any](capacity, shards int, hash func(K) uint64) *LRU[K, V] {
	if hash == nil {
		panic("store: nil hash function")
	}
	if capacity <= 0 {
		capacity = 1024
	}
	if shards <= 0 {
		shards = DefaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	l := &LRU[K, V]{
		hash:        hash,
		shards:      make([]lruShard[K, V], n),
		mask:        uint64(n - 1),
		perShardCap: (capacity + n - 1) / n,
	}
	for i := range l.shards {
		l.shards[i].m = make(map[K]*lruEntry[K, V])
	}
	return l
}

// shardFor routes a key to its lock domain (same fold as Sharded.shardFor).
func (l *LRU[K, V]) shardFor(k K) *lruShard[K, V] {
	h := l.hash(k)
	h ^= h >> 32
	h ^= h >> 16
	return &l.shards[h&l.mask]
}

// Cap returns the exact global capacity bound.
func (l *LRU[K, V]) Cap() int { return l.perShardCap * len(l.shards) }

// Get returns the value under k and marks it most recently used.
func (l *LRU[K, V]) Get(k K) (V, bool) {
	sh := l.shardFor(k)
	sh.mu.Lock()
	e, ok := sh.m[k]
	if !ok {
		sh.mu.Unlock()
		var zero V
		return zero, false
	}
	sh.moveToFront(e)
	v := e.v
	sh.mu.Unlock()
	return v, true
}

// Add stores v under k (replacing any existing value), marks it most
// recently used, and evicts the coldest entry if the shard is over budget.
func (l *LRU[K, V]) Add(k K, v V) {
	sh := l.shardFor(k)
	sh.mu.Lock()
	if e, ok := sh.m[k]; ok {
		e.v = v
		sh.moveToFront(e)
		sh.mu.Unlock()
		return
	}
	e := &lruEntry[K, V]{k: k, v: v}
	sh.m[k] = e
	sh.pushFront(e)
	if len(sh.m) > l.perShardCap {
		victim := sh.tail
		sh.unlink(victim)
		delete(sh.m, victim.k)
	}
	sh.mu.Unlock()
}

// Remove drops the entry under k, reporting whether one existed.
func (l *LRU[K, V]) Remove(k K) bool {
	sh := l.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.m[k]
	if !ok {
		return false
	}
	sh.unlink(e)
	delete(sh.m, k)
	return true
}

// Purge drops every entry.
func (l *LRU[K, V]) Purge() {
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		sh.m = make(map[K]*lruEntry[K, V])
		sh.head, sh.tail = nil, nil
		sh.mu.Unlock()
	}
}

// Len returns the number of cached entries.
func (l *LRU[K, V]) Len() int {
	n := 0
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// pushFront links e as the most recently used entry. Callers hold sh.mu.
func (sh *lruShard[K, V]) pushFront(e *lruEntry[K, V]) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

// unlink removes e from the recency list. Callers hold sh.mu.
func (sh *lruShard[K, V]) unlink(e *lruEntry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// moveToFront re-links e as most recently used. Callers hold sh.mu.
func (sh *lruShard[K, V]) moveToFront(e *lruEntry[K, V]) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}
