package store

import (
	"fmt"
	"sync"
	"testing"
)

func newTestLRU(capacity, shards int) *LRU[string, int] {
	return NewLRU[string, int](capacity, shards, StringHash[string])
}

func TestLRUBasics(t *testing.T) {
	l := newTestLRU(8, 1)
	if _, ok := l.Get("a"); ok {
		t.Fatal("empty LRU returned a value")
	}
	l.Add("a", 1)
	l.Add("b", 2)
	if v, ok := l.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	l.Add("a", 10) // replace
	if v, _ := l.Get("a"); v != 10 {
		t.Fatalf("replaced value = %d", v)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	if !l.Remove("b") {
		t.Fatal("Remove(b) = false")
	}
	if l.Remove("b") {
		t.Fatal("second Remove(b) = true")
	}
	if _, ok := l.Get("b"); ok {
		t.Fatal("removed key still present")
	}
	l.Purge()
	if l.Len() != 0 {
		t.Fatalf("Len after Purge = %d", l.Len())
	}
	if _, ok := l.Get("a"); ok {
		t.Fatal("purged key still present")
	}
}

// TestLRUEvictionBound: the cache never holds more entries than its
// capacity, no matter how many keys pass through it.
func TestLRUEvictionBound(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		l := newTestLRU(64, shards)
		cap := l.Cap()
		for i := 0; i < 10*cap; i++ {
			l.Add(fmt.Sprintf("key-%d", i), i)
			if got := l.Len(); got > cap {
				t.Fatalf("shards=%d: Len %d exceeds Cap %d", shards, got, cap)
			}
		}
		if l.Len() != cap {
			t.Fatalf("shards=%d: Len %d after overfill, want full cache %d", shards, l.Len(), cap)
		}
	}
}

// TestLRUEvictsLeastRecent: within one shard, a Get protects an entry from
// the next eviction and the coldest entry goes first.
func TestLRUEvictsLeastRecent(t *testing.T) {
	l := newTestLRU(3, 1)
	l.Add("a", 1)
	l.Add("b", 2)
	l.Add("c", 3)
	l.Get("a")    // a is now most recent; b is coldest
	l.Add("d", 4) // evicts b
	if _, ok := l.Get("b"); ok {
		t.Fatal("coldest entry survived eviction")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := l.Get(k); !ok {
			t.Fatalf("entry %q evicted out of order", k)
		}
	}
}

func TestLRUDefaults(t *testing.T) {
	l := NewLRU[string, int](0, 0, StringHash[string])
	if l.Cap() <= 0 {
		t.Fatalf("default Cap = %d", l.Cap())
	}
	l.Add("x", 1)
	if v, ok := l.Get("x"); !ok || v != 1 {
		t.Fatalf("Get(x) = %d, %v", v, ok)
	}
}

// TestLRUConcurrent hammers one LRU from many goroutines with overlapping
// key ranges — meaningful under -race, and the bound must hold throughout.
func TestLRUConcurrent(t *testing.T) {
	l := newTestLRU(128, 8)
	cap := l.Cap()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("key-%d", (g*37+i)%300)
				switch i % 4 {
				case 0:
					l.Add(k, i)
				case 1:
					l.Get(k)
				case 2:
					l.Add(k, -i)
				default:
					l.Remove(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := l.Len(); got > cap {
		t.Fatalf("Len %d exceeds Cap %d after concurrent hammer", got, cap)
	}
}
