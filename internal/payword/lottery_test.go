package payword

import (
	"errors"
	"testing"
)

func TestLotteryMalformedTickets(t *testing.T) {
	suite, payer := testSuite()
	_, stranger := testSuite()
	var nonce [32]byte
	nonce[0], nonce[31] = 0x5a, 0xa5
	issue := func() *Ticket {
		tk, err := IssueTicket(suite, payer, "vendor-1", 3, 7, 9, nonce)
		if err != nil {
			t.Fatal(err)
		}
		return tk
	}

	cases := []struct {
		name   string
		mutate func(*Ticket)
		// wantBadCommitment: the mutation breaks the signature binding and
		// must surface as ErrBadCommitment. The zero-divisor case fails its
		// own precheck before any signature work.
		wantBadCommitment bool
	}{
		{"tampered vendor", func(tk *Ticket) { tk.Vendor = "vendor-2" }, true},
		{"tampered serial", func(tk *Ticket) { tk.Serial++ }, true},
		{"tampered win divisor", func(tk *Ticket) { tk.WinDivisor++ }, true},
		{"tampered prize", func(tk *Ticket) { tk.Prize = 1 << 20 }, true},
		{"tampered nonce", func(tk *Ticket) { tk.VendorNonce[0] ^= 0xff }, true},
		{"flipped signature byte", func(tk *Ticket) { tk.Sig[0] ^= 0x01 }, true},
		{"truncated signature", func(tk *Ticket) { tk.Sig = tk.Sig[:len(tk.Sig)/2] }, true},
		{"empty signature", func(tk *Ticket) { tk.Sig = nil }, true},
		{"foreign payer key", func(tk *Ticket) { tk.Payer = stranger.Public.Clone() }, true},
		{"zero win divisor", func(tk *Ticket) { tk.WinDivisor = 0 }, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tk := issue()
			tc.mutate(tk)
			won, payout, err := CheckTicket(suite, tk)
			if err == nil {
				t.Fatalf("malformed ticket accepted (won=%v payout=%d)", won, payout)
			}
			if won || payout != 0 {
				t.Fatalf("rejected ticket still reported won=%v payout=%d", won, payout)
			}
			if got := errors.Is(err, ErrBadCommitment); got != tc.wantBadCommitment {
				t.Fatalf("errors.Is(err, ErrBadCommitment) = %v, want %v (err: %v)", got, tc.wantBadCommitment, err)
			}
		})
	}
}

// TestLotteryTicketUntouchedStillValid pins the table's baseline: the ticket
// the mutations start from verifies, so a rejection really is the mutation's
// doing.
func TestLotteryTicketUntouchedStillValid(t *testing.T) {
	suite, payer := testSuite()
	var nonce [32]byte
	tk, err := IssueTicket(suite, payer, "vendor-1", 3, 7, 9, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := CheckTicket(suite, tk); err != nil {
		t.Fatalf("baseline ticket rejected: %v", err)
	}
}

// TestClaimWrongChainSettlement drives the settlement evidence through the
// cross-chain confusions a dishonest vendor could try: presenting one
// chain's high-water word against another chain's commitment, re-pointing a
// claim at a different vendor's commitment, or stretching the index past the
// committed length. Every variant must fail verification.
func TestClaimWrongChainSettlement(t *testing.T) {
	suite, payer := testSuite()
	newSpentVendor := func(vendor string, n, spend int) (*Chain, *Vendor) {
		t.Helper()
		ch, err := NewChain(suite, payer, vendor, n)
		if err != nil {
			t.Fatal(err)
		}
		v, err := NewVendor(suite, vendor, ch.Commitment())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < spend; i++ {
			p, err := ch.Pay()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := v.Receive(p); err != nil {
				t.Fatal(err)
			}
		}
		return ch, v
	}
	chA, vA := newSpentVendor("vendor-a", 8, 5)
	_, vB := newSpentVendor("vendor-b", 8, 3)

	cases := []struct {
		name    string
		claim   func() SettlementClaim
		wantErr error
	}{
		{
			// Vendor A's words settled against vendor B's commitment: the
			// hash walk cannot reach B's root.
			"foreign chain words",
			func() SettlementClaim {
				c := vA.Claim()
				c.Commitment = vB.Claim().Commitment
				return c
			},
			ErrBadPayword,
		},
		{
			// Commitment re-dedicated to another vendor: the signature no
			// longer covers the message.
			"re-pointed vendor name",
			func() SettlementClaim {
				c := vA.Claim()
				c.Commitment.Vendor = "vendor-b"
				return c
			},
			ErrBadCommitment,
		},
		{
			"index beyond chain length",
			func() SettlementClaim {
				c := vA.Claim()
				c.LastIndex = chA.Commitment().Length + 1
				return c
			},
			ErrBadPayword,
		},
		{
			"inflated index on real words",
			func() SettlementClaim {
				c := vA.Claim()
				c.LastIndex++
				return c
			},
			ErrBadPayword,
		},
		{
			"deflated index on real words",
			func() SettlementClaim {
				c := vA.Claim()
				c.LastIndex--
				return c
			},
			ErrBadPayword,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			owed, err := VerifyClaim(suite, tc.claim())
			if err == nil {
				t.Fatalf("wrong-chain claim verified for %d units", owed)
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
			if owed != 0 {
				t.Fatalf("rejected claim still reported %d units owed", owed)
			}
		})
	}

	// The untampered claims both still settle — the baseline for the table.
	if owed, err := VerifyClaim(suite, vA.Claim()); err != nil || owed != 5 {
		t.Fatalf("vendor A claim = (%d, %v), want (5, nil)", owed, err)
	}
	if owed, err := VerifyClaim(suite, vB.Claim()); err != nil || owed != 3 {
		t.Fatalf("vendor B claim = (%d, %v), want (3, nil)", owed, err)
	}
}
