package payword

import (
	"testing"
)

// FuzzPaywordSpend drives Vendor.Receive with attacker-shaped payments — the
// vendor-side hot path a malicious payer controls byte for byte. The chain
// and its commitment are fixed once; each fuzz iteration spins up a fresh
// vendor and fires two payments whose index, word, and root the fuzzer picks
// (with an escape hatch that substitutes the chain's true word, so the
// accept path stays reachable). Invariants:
//
//   - Receive never panics, whatever the payment contains.
//   - A payment is accepted only if it is the chain's true word at an index
//     strictly above the vendor's high-water mark — credit is impossible to
//     forge without the preimage.
//   - Accepted value is exact: delta == index - lastIndex, Owed() == index.
//   - A rejected payment leaves the vendor's state untouched.
//   - Whatever Receive accepted, the resulting settlement claim verifies
//     offline for exactly the owed amount.
func FuzzPaywordSpend(f *testing.F) {
	suite, payer := testSuite()
	const chainLen = 8
	ch, err := NewChain(suite, payer, "v", chainLen)
	if err != nil {
		f.Fatal(err)
	}
	c := ch.Commitment()
	real := make([]Payment, 0, chainLen)
	for i := 0; i < chainLen; i++ {
		p, err := ch.Pay()
		if err != nil {
			f.Fatal(err)
		}
		real = append(real, p)
	}

	// Seeds: an honest pair, a skip, a replay, a stale index, an overflow
	// index, a forged word, and a wrong-root payment.
	f.Add(uint32(1), true, []byte{}, uint32(2), true, []byte{}, false)
	f.Add(uint32(3), true, []byte{}, uint32(7), true, []byte{}, false)
	f.Add(uint32(2), true, []byte{}, uint32(2), true, []byte{}, false)
	f.Add(uint32(5), true, []byte{}, uint32(1), true, []byte{}, false)
	f.Add(uint32(chainLen+1), false, []byte{1, 2, 3}, uint32(0), false, []byte{}, false)
	f.Add(uint32(1), false, []byte{0xde, 0xad, 0xbe, 0xef}, uint32(1), true, []byte{}, false)
	f.Add(uint32(1), true, []byte{}, uint32(2), true, []byte{}, true)

	f.Fuzz(func(t *testing.T, idx1 uint32, real1 bool, w1 []byte,
		idx2 uint32, real2 bool, w2 []byte, flipRoot bool) {
		v, err := NewVendor(suite, "v", c)
		if err != nil {
			t.Fatal(err)
		}
		build := func(idx uint32, useReal bool, wb []byte) Payment {
			p := Payment{Root: c.Root, Index: idx}
			if useReal && idx >= 1 && idx <= chainLen {
				p.W = real[idx-1].W
			} else {
				copy(p.W[:], wb)
			}
			if flipRoot {
				p.Root[0] ^= 0x01
			}
			return p
		}
		var last uint32
		spend := func(idx uint32, useReal bool, wb []byte) {
			p := build(idx, useReal, wb)
			delta, err := v.Receive(p)
			if err != nil {
				if delta != 0 {
					t.Fatalf("rejected payment credited delta %d", delta)
				}
				if v.Owed() != int(last) {
					t.Fatalf("rejection moved the high-water mark: owed %d, want %d", v.Owed(), last)
				}
				return
			}
			// Accepted: this must be the genuine chain, the genuine word,
			// and a strictly advancing index.
			if flipRoot {
				t.Fatalf("payment with a foreign root accepted at index %d", idx)
			}
			if idx < 1 || idx > chainLen || idx <= last {
				t.Fatalf("accepted index %d with high-water mark %d (chain length %d)", idx, last, chainLen)
			}
			if p.W != real[idx-1].W {
				t.Fatalf("accepted a forged word at index %d", idx)
			}
			if delta != int(idx-last) {
				t.Fatalf("delta = %d, want %d", delta, idx-last)
			}
			last = idx
			if v.Owed() != int(last) {
				t.Fatalf("Owed() = %d, want %d", v.Owed(), last)
			}
		}
		spend(idx1, real1, w1)
		spend(idx2, real2, w2)

		// Whatever was accepted must settle offline for exactly that much.
		owed, err := VerifyClaim(suite, v.Claim())
		if err != nil {
			t.Fatalf("claim after fuzzed spends failed to verify: %v", err)
		}
		if owed != int(last) {
			t.Fatalf("claim settles %d units, vendor accepted %d", owed, last)
		}
	})
}
