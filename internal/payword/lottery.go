package payword

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"whopay/internal/sig"
)

// Lottery tickets (Rivest, Financial Cryptography '97) are the other
// aggregation mechanism in the paper's related work: instead of paying one
// cent per download, the payer issues a ticket that wins a dollar with
// probability 1/100. Expected value matches, and only winning tickets touch
// the settlement layer, cutting its load by the win probability.
//
// Construction: the payer signs (vendor, serial, winDivisor, prize). The
// ticket wins iff H(payerSig || vendorNonce) mod winDivisor == 0, where the
// vendor contributes a nonce *before* the ticket is issued so neither side
// can bias the draw alone.

// Ticket is a probabilistic micropayment: worth Prize units with
// probability 1/WinDivisor.
type Ticket struct {
	Vendor      string
	Serial      uint64
	WinDivisor  uint32
	Prize       uint32
	VendorNonce [32]byte
	Payer       sig.PublicKey
	Sig         []byte
}

func (tk *Ticket) message() []byte {
	msg := make([]byte, 0, 96+len(tk.Vendor)+len(tk.Payer))
	msg = append(msg, "whopay/lottery/ticket/1"...)
	msg = append(msg, byte(len(tk.Vendor)))
	msg = append(msg, tk.Vendor...)
	msg = binary.BigEndian.AppendUint64(msg, tk.Serial)
	msg = binary.BigEndian.AppendUint32(msg, tk.WinDivisor)
	msg = binary.BigEndian.AppendUint32(msg, tk.Prize)
	msg = append(msg, tk.VendorNonce[:]...)
	msg = append(msg, tk.Payer...)
	return msg
}

// IssueTicket creates and signs a ticket for vendor using the payer's keys.
// vendorNonce must have been received from the vendor for this serial.
func IssueTicket(suite sig.Suite, payerKeys sig.KeyPair, vendor string, serial uint64, winDivisor, prize uint32, vendorNonce [32]byte) (*Ticket, error) {
	if winDivisor == 0 || prize == 0 {
		return nil, fmt.Errorf("payword: winDivisor and prize must be positive")
	}
	tk := &Ticket{
		Vendor:      vendor,
		Serial:      serial,
		WinDivisor:  winDivisor,
		Prize:       prize,
		VendorNonce: vendorNonce,
		Payer:       payerKeys.Public.Clone(),
	}
	var err error
	tk.Sig, err = suite.Sign(payerKeys.Private, tk.message())
	if err != nil {
		return nil, fmt.Errorf("payword: signing ticket: %w", err)
	}
	return tk, nil
}

// CheckTicket verifies the ticket signature and reports whether it won and
// its payout in units. Deterministic: any party reaches the same verdict.
func CheckTicket(suite sig.Suite, tk *Ticket) (won bool, payout int, err error) {
	if tk.WinDivisor == 0 {
		return false, 0, fmt.Errorf("payword: zero win divisor")
	}
	if err := suite.Verify(tk.Payer, tk.message(), tk.Sig); err != nil {
		return false, 0, fmt.Errorf("%w: %v", ErrBadCommitment, err)
	}
	h := sha256.New()
	h.Write(tk.Sig)
	h.Write(tk.VendorNonce[:])
	digest := h.Sum(nil)
	draw := binary.BigEndian.Uint64(digest[:8])
	if draw%uint64(tk.WinDivisor) == 0 {
		return true, int(tk.Prize), nil
	}
	return false, 0, nil
}
