// Package payword implements the PayWord hash-chain micropayment scheme of
// Rivest and Shamir, plus Rivest's electronic lottery tickets — the two
// aggregation mechanisms the paper's related-work section positions against
// WhoPay and suggests layering on top of it ("each pair of users maintains a
// soft credit window between themselves and only makes payments when this
// window reaches a threshold value", Section 7).
//
// A PayWord chain is w0 <- H(w1) <- H(w2) … <- H(wn): the payer commits to
// the root w0 with a signature, then releases successive preimages, each
// worth one unit. The vendor stores only the highest payword received and
// settles the aggregate amount with a single WhoPay payment.
package payword

import (
	"crypto/sha256"
	"errors"
	"fmt"

	"whopay/internal/sig"
)

// Errors returned by this package.
var (
	// ErrChainExhausted is returned by Pay when the chain has no unspent
	// paywords left.
	ErrChainExhausted = errors.New("payword: chain exhausted")
	// ErrBadCommitment is returned when a commitment signature does not
	// verify.
	ErrBadCommitment = errors.New("payword: invalid commitment")
	// ErrBadPayword is returned when a payword does not hash back to the
	// last accepted value.
	ErrBadPayword = errors.New("payword: payword does not extend the chain")
	// ErrWrongChain is returned when a payment references a different
	// commitment than the vendor holds.
	ErrWrongChain = errors.New("payword: payment for a different chain")
)

// Word is one element of a hash chain.
type Word [32]byte

func hashWord(w Word) Word { return sha256.Sum256(w[:]) }

// Commitment is the payer's signed promise backing a chain: the chain root,
// its length (credit ceiling), the vendor it is dedicated to, and a
// signature by the payer's key. Vendor-specific commitments prevent a chain
// from being double-spent across vendors (the limitation the paper notes:
// PayWord aggregates only per merchant).
type Commitment struct {
	Vendor string
	Root   Word
	Length uint32
	Payer  sig.PublicKey
	Sig    []byte
}

func (c *Commitment) message() []byte {
	msg := make([]byte, 0, 64+len(c.Vendor)+len(c.Payer))
	msg = append(msg, "whopay/payword/commitment/1"...)
	msg = append(msg, byte(len(c.Vendor)))
	msg = append(msg, c.Vendor...)
	msg = append(msg, c.Root[:]...)
	msg = append(msg, byte(c.Length>>24), byte(c.Length>>16), byte(c.Length>>8), byte(c.Length))
	msg = append(msg, c.Payer...)
	return msg
}

// Payment is one released payword: index i and the word w_i with
// H^i(w_i) == root.
type Payment struct {
	Root  Word
	Index uint32
	W     Word
}

// Chain is the payer-side state: the full preimage chain and a cursor.
// Not safe for concurrent use (a chain belongs to one payer-vendor session).
type Chain struct {
	commitment Commitment
	words      []Word // words[i] = w_i, words[0] = root
	next       uint32
}

// NewChain builds a length-n chain dedicated to vendor and signs the
// commitment with the payer's private key via suite.
func NewChain(suite sig.Suite, payerKeys sig.KeyPair, vendor string, n int) (*Chain, error) {
	if n < 1 || n > 1<<20 {
		return nil, fmt.Errorf("payword: chain length %d out of range", n)
	}
	kp, err := suite.GenerateKey()
	if err != nil {
		return nil, fmt.Errorf("payword: sampling chain seed: %w", err)
	}
	seed := sha256.Sum256(append([]byte("whopay/payword/seed"), kp.Private...))
	words := make([]Word, n+1)
	words[n] = seed
	for i := n - 1; i >= 0; i-- {
		words[i] = hashWord(words[i+1])
	}
	c := Commitment{
		Vendor: vendor,
		Root:   words[0],
		Length: uint32(n),
		Payer:  payerKeys.Public.Clone(),
	}
	c.Sig, err = suite.Sign(payerKeys.Private, c.message())
	if err != nil {
		return nil, fmt.Errorf("payword: signing commitment: %w", err)
	}
	return &Chain{commitment: c, words: words}, nil
}

// Commitment returns the signed commitment to present to the vendor.
func (ch *Chain) Commitment() Commitment { return ch.commitment }

// Remaining reports how many unit payments are left on the chain.
func (ch *Chain) Remaining() int { return int(ch.commitment.Length - ch.next) }

// Pay releases the next payword, worth one unit.
func (ch *Chain) Pay() (Payment, error) {
	if ch.next >= ch.commitment.Length {
		return Payment{}, ErrChainExhausted
	}
	ch.next++
	return Payment{Root: ch.commitment.Root, Index: ch.next, W: ch.words[ch.next]}, nil
}

// Vendor is the vendor-side state: it verifies the commitment once, then
// verifies each payment with hash operations only (the cheapness that makes
// PayWord a micropayment scheme). Not safe for concurrent use.
type Vendor struct {
	name       string
	commitment Commitment
	lastIndex  uint32
	lastWord   Word
}

// NewVendor accepts a commitment after verifying its signature.
func NewVendor(suite sig.Suite, name string, c Commitment) (*Vendor, error) {
	if c.Vendor != name {
		return nil, fmt.Errorf("%w: commitment is for vendor %q", ErrWrongChain, c.Vendor)
	}
	if err := suite.Verify(c.Payer, c.message(), c.Sig); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCommitment, err)
	}
	return &Vendor{name: name, commitment: c, lastWord: c.Root}, nil
}

// Receive verifies one payment and returns its incremental value in units
// (usually 1; >1 when paywords were skipped, which pays for all skipped
// units at once — a standard PayWord feature).
func (v *Vendor) Receive(p Payment) (int, error) {
	if p.Root != v.commitment.Root {
		return 0, ErrWrongChain
	}
	if p.Index <= v.lastIndex || p.Index > v.commitment.Length {
		return 0, fmt.Errorf("%w: index %d not in (%d, %d]", ErrBadPayword, p.Index, v.lastIndex, v.commitment.Length)
	}
	w := p.W
	for i := p.Index; i > v.lastIndex; i-- {
		w = hashWord(w)
	}
	if w != v.lastWord {
		return 0, ErrBadPayword
	}
	delta := int(p.Index - v.lastIndex)
	v.lastIndex = p.Index
	v.lastWord = p.W
	return delta, nil
}

// Owed returns the total units received so far — the amount to settle with
// one aggregate WhoPay payment.
func (v *Vendor) Owed() int { return int(v.lastIndex) }

// SettlementClaim is the evidence a vendor presents when settling: the
// signed commitment and the highest payword. Anyone can verify it offline.
type SettlementClaim struct {
	Commitment Commitment
	LastIndex  uint32
	LastWord   Word
}

// Claim produces the vendor's settlement evidence.
func (v *Vendor) Claim() SettlementClaim {
	return SettlementClaim{Commitment: v.commitment, LastIndex: v.lastIndex, LastWord: v.lastWord}
}

// VerifyClaim checks settlement evidence: commitment signature plus the
// hash chain from the last word back to the root. Returns the owed units.
func VerifyClaim(suite sig.Suite, claim SettlementClaim) (int, error) {
	c := claim.Commitment
	if err := suite.Verify(c.Payer, c.message(), c.Sig); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadCommitment, err)
	}
	if claim.LastIndex > c.Length {
		return 0, fmt.Errorf("%w: index beyond chain length", ErrBadPayword)
	}
	w := claim.LastWord
	for i := claim.LastIndex; i > 0; i-- {
		w = hashWord(w)
	}
	if w != c.Root {
		return 0, ErrBadPayword
	}
	return int(claim.LastIndex), nil
}
