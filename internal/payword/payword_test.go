package payword

import (
	"errors"
	"testing"
	"testing/quick"

	"whopay/internal/sig"
)

func testSuite() (sig.Suite, sig.KeyPair) {
	suite := sig.Suite{Scheme: sig.NewNull(200)}
	kp, err := suite.GenerateKey()
	if err != nil {
		panic(err)
	}
	return suite, kp
}

func TestChainPayReceive(t *testing.T) {
	suite, payer := testSuite()
	ch, err := NewChain(suite, payer, "vendor-1", 10)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewVendor(suite, "vendor-1", ch.Commitment())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		p, err := ch.Pay()
		if err != nil {
			t.Fatalf("Pay %d: %v", i, err)
		}
		delta, err := v.Receive(p)
		if err != nil {
			t.Fatalf("Receive %d: %v", i, err)
		}
		if delta != 1 {
			t.Fatalf("Receive %d delta = %d, want 1", i, delta)
		}
	}
	if v.Owed() != 10 {
		t.Fatalf("Owed = %d, want 10", v.Owed())
	}
	if _, err := ch.Pay(); !errors.Is(err, ErrChainExhausted) {
		t.Fatalf("Pay past end = %v, want ErrChainExhausted", err)
	}
}

func TestSkippedPaywordsPayAggregate(t *testing.T) {
	suite, payer := testSuite()
	ch, err := NewChain(suite, payer, "v", 10)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewVendor(suite, "v", ch.Commitment())
	if err != nil {
		t.Fatal(err)
	}
	var p Payment
	for i := 0; i < 5; i++ {
		p, err = ch.Pay()
		if err != nil {
			t.Fatal(err)
		}
	}
	// Vendor only sees the 5th payword; it is worth 5 units.
	delta, err := v.Receive(p)
	if err != nil {
		t.Fatal(err)
	}
	if delta != 5 {
		t.Fatalf("delta = %d, want 5", delta)
	}
}

func TestVendorRejectsReplay(t *testing.T) {
	suite, payer := testSuite()
	ch, err := NewChain(suite, payer, "v", 4)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewVendor(suite, "v", ch.Commitment())
	if err != nil {
		t.Fatal(err)
	}
	p, err := ch.Pay()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Receive(p); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Receive(p); !errors.Is(err, ErrBadPayword) {
		t.Fatalf("replay = %v, want ErrBadPayword", err)
	}
}

func TestVendorRejectsForgedWord(t *testing.T) {
	suite, payer := testSuite()
	ch, err := NewChain(suite, payer, "v", 4)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewVendor(suite, "v", ch.Commitment())
	if err != nil {
		t.Fatal(err)
	}
	p, err := ch.Pay()
	if err != nil {
		t.Fatal(err)
	}
	p.W[0] ^= 0xff
	if _, err := v.Receive(p); !errors.Is(err, ErrBadPayword) {
		t.Fatalf("forged = %v, want ErrBadPayword", err)
	}
}

func TestVendorRejectsForeignChain(t *testing.T) {
	suite, payer := testSuite()
	ch1, err := NewChain(suite, payer, "v", 4)
	if err != nil {
		t.Fatal(err)
	}
	ch2, err := NewChain(suite, payer, "v", 4)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewVendor(suite, "v", ch1.Commitment())
	if err != nil {
		t.Fatal(err)
	}
	p, err := ch2.Pay()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Receive(p); !errors.Is(err, ErrWrongChain) {
		t.Fatalf("foreign chain = %v, want ErrWrongChain", err)
	}
}

func TestVendorRejectsWrongVendorCommitment(t *testing.T) {
	suite, payer := testSuite()
	ch, err := NewChain(suite, payer, "other-vendor", 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewVendor(suite, "v", ch.Commitment()); !errors.Is(err, ErrWrongChain) {
		t.Fatalf("got %v, want ErrWrongChain", err)
	}
}

func TestVendorRejectsTamperedCommitment(t *testing.T) {
	suite, payer := testSuite()
	ch, err := NewChain(suite, payer, "v", 4)
	if err != nil {
		t.Fatal(err)
	}
	c := ch.Commitment()
	c.Length = 1 << 19 // inflate the credit ceiling
	if _, err := NewVendor(suite, "v", c); !errors.Is(err, ErrBadCommitment) {
		t.Fatalf("got %v, want ErrBadCommitment", err)
	}
}

func TestSettlementClaim(t *testing.T) {
	suite, payer := testSuite()
	ch, err := NewChain(suite, payer, "v", 8)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewVendor(suite, "v", ch.Commitment())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		p, err := ch.Pay()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := v.Receive(p); err != nil {
			t.Fatal(err)
		}
	}
	owed, err := VerifyClaim(suite, v.Claim())
	if err != nil {
		t.Fatal(err)
	}
	if owed != 6 {
		t.Fatalf("VerifyClaim = %d, want 6", owed)
	}
	// Vendor inflating the claim must fail.
	claim := v.Claim()
	claim.LastIndex++
	if _, err := VerifyClaim(suite, claim); !errors.Is(err, ErrBadPayword) {
		t.Fatalf("inflated claim = %v, want ErrBadPayword", err)
	}
}

func TestChainLengthValidation(t *testing.T) {
	suite, payer := testSuite()
	if _, err := NewChain(suite, payer, "v", 0); err == nil {
		t.Fatal("NewChain accepted length 0")
	}
	if _, err := NewChain(suite, payer, "v", 1<<21); err == nil {
		t.Fatal("NewChain accepted oversized length")
	}
}

// TestChainProperty: for random chain lengths and payment patterns, the
// vendor's owed total equals the payer's spent count.
func TestChainProperty(t *testing.T) {
	suite, payer := testSuite()
	f := func(lenSeed, spendSeed uint8) bool {
		n := int(lenSeed%40) + 1
		spend := int(spendSeed) % (n + 1)
		ch, err := NewChain(suite, payer, "v", n)
		if err != nil {
			return false
		}
		v, err := NewVendor(suite, "v", ch.Commitment())
		if err != nil {
			return false
		}
		for i := 0; i < spend; i++ {
			p, err := ch.Pay()
			if err != nil {
				return false
			}
			if _, err := v.Receive(p); err != nil {
				return false
			}
		}
		owed, err := VerifyClaim(suite, v.Claim())
		return err == nil && owed == spend && ch.Remaining() == n-spend
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLotteryTicketRoundTrip(t *testing.T) {
	suite, payer := testSuite()
	var nonce [32]byte
	nonce[0] = 42
	tk, err := IssueTicket(suite, payer, "v", 1, 100, 100, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := CheckTicket(suite, tk); err != nil {
		t.Fatalf("CheckTicket: %v", err)
	}
}

func TestLotteryDeterministic(t *testing.T) {
	suite, payer := testSuite()
	var nonce [32]byte
	tk, err := IssueTicket(suite, payer, "v", 7, 4, 4, nonce)
	if err != nil {
		t.Fatal(err)
	}
	won1, pay1, err := CheckTicket(suite, tk)
	if err != nil {
		t.Fatal(err)
	}
	won2, pay2, err := CheckTicket(suite, tk)
	if err != nil {
		t.Fatal(err)
	}
	if won1 != won2 || pay1 != pay2 {
		t.Fatal("lottery verdict not deterministic")
	}
}

func TestLotteryTamperedTicketRejected(t *testing.T) {
	suite, payer := testSuite()
	var nonce [32]byte
	tk, err := IssueTicket(suite, payer, "v", 1, 2, 2, nonce)
	if err != nil {
		t.Fatal(err)
	}
	tk.Prize = 1 << 30
	if _, _, err := CheckTicket(suite, tk); err == nil {
		t.Fatal("tampered ticket accepted")
	}
}

func TestLotteryWinRateRoughlyFair(t *testing.T) {
	suite, payer := testSuite()
	const divisor, trials = 4, 400
	wins := 0
	for i := 0; i < trials; i++ {
		var nonce [32]byte
		nonce[0], nonce[1] = byte(i), byte(i>>8)
		tk, err := IssueTicket(suite, payer, "v", uint64(i), divisor, divisor, nonce)
		if err != nil {
			t.Fatal(err)
		}
		won, payout, err := CheckTicket(suite, tk)
		if err != nil {
			t.Fatal(err)
		}
		if won {
			wins++
			if payout != divisor {
				t.Fatalf("payout = %d, want %d", payout, divisor)
			}
		}
	}
	// Expected 100 wins; allow a generous band (binomial sd ≈ 8.7).
	if wins < 55 || wins > 145 {
		t.Fatalf("wins = %d/%d, far from expected 1/%d rate", wins, trials, divisor)
	}
}

func TestLotteryValidation(t *testing.T) {
	suite, payer := testSuite()
	var nonce [32]byte
	if _, err := IssueTicket(suite, payer, "v", 1, 0, 5, nonce); err == nil {
		t.Fatal("accepted zero divisor")
	}
	if _, err := IssueTicket(suite, payer, "v", 1, 5, 0, nonce); err == nil {
		t.Fatal("accepted zero prize")
	}
}

func BenchmarkPayReceive(b *testing.B) {
	suite, payer := testSuite()
	const chainLen = 1 << 16
	newPair := func() (*Chain, *Vendor) {
		ch, err := NewChain(suite, payer, "v", chainLen)
		if err != nil {
			b.Fatal(err)
		}
		v, err := NewVendor(suite, "v", ch.Commitment())
		if err != nil {
			b.Fatal(err)
		}
		return ch, v
	}
	ch, v := newPair()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ch.Remaining() == 0 {
			b.StopTimer()
			ch, v = newPair()
			b.StartTimer()
		}
		p, err := ch.Pay()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := v.Receive(p); err != nil {
			b.Fatal(err)
		}
	}
}
