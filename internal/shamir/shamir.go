// Package shamir implements Shamir's (K, N) threshold secret sharing over a
// 256-bit prime field.
//
// The paper (Section 3.2) notes that the judge's group master private key
// "can be divided among N judges using Shamir's secret sharing protocol and
// at least K judges are needed in order to recover the key". This package is
// that substrate: core.Judge can escrow its master key across a judge panel
// so no single judge can deanonymize users.
package shamir

import (
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"
)

// Errors returned by Split and Combine.
var (
	ErrThreshold    = errors.New("shamir: threshold must satisfy 2 <= k <= n")
	ErrSecretRange  = errors.New("shamir: secret too large for the field")
	ErrTooFewShares = errors.New("shamir: not enough shares")
	ErrDuplicateX   = errors.New("shamir: duplicate share indices")
	ErrShareRange   = errors.New("shamir: share value outside field")
)

// fieldPrime is the field modulus: 2^256 - 189, the largest 256-bit prime.
// Secrets up to 31 bytes are always representable; 32-byte secrets are
// accepted when numerically below the prime (callers splitting uniformly
// random 32-byte keys should retry generation in the astronomically unlikely
// out-of-range case).
var fieldPrime, _ = new(big.Int).SetString(
	"115792089237316195423570985008687907853269984665640564039457584007913129639747", 10)

// Share is one point (X, Y) on the secret polynomial. X is never zero (the
// secret lives at X = 0).
type Share struct {
	X uint16
	Y *big.Int
}

// Clone returns an independent copy of the share.
func (s Share) Clone() Share {
	return Share{X: s.X, Y: new(big.Int).Set(s.Y)}
}

// Split divides secret into n shares such that any k reconstruct it and any
// k-1 reveal nothing (information-theoretically). The secret is interpreted
// as a big-endian integer and must be below the field prime.
func Split(secret []byte, k, n int) ([]Share, error) {
	if k < 2 || n < k || n > 65535 {
		return nil, ErrThreshold
	}
	s := new(big.Int).SetBytes(secret)
	if s.Cmp(fieldPrime) >= 0 {
		return nil, ErrSecretRange
	}
	// Random polynomial f(x) = s + c1·x + … + c(k-1)·x^(k-1) mod p.
	coeffs := make([]*big.Int, k)
	coeffs[0] = s
	for i := 1; i < k; i++ {
		c, err := rand.Int(rand.Reader, fieldPrime)
		if err != nil {
			return nil, fmt.Errorf("shamir: sampling coefficient: %w", err)
		}
		coeffs[i] = c
	}
	shares := make([]Share, n)
	for i := 0; i < n; i++ {
		x := uint16(i + 1)
		shares[i] = Share{X: x, Y: eval(coeffs, x)}
	}
	return shares, nil
}

// eval computes f(x) by Horner's rule in the field.
func eval(coeffs []*big.Int, x uint16) *big.Int {
	xi := big.NewInt(int64(x))
	y := new(big.Int)
	for i := len(coeffs) - 1; i >= 0; i-- {
		y.Mul(y, xi)
		y.Add(y, coeffs[i])
		y.Mod(y, fieldPrime)
	}
	return y
}

// Combine reconstructs the secret from at least k shares via Lagrange
// interpolation at x = 0. The original byte length must be supplied so
// leading zero bytes are restored. Supplying fewer than k shares yields a
// different (wrong) value, never an error the math can detect — callers
// enforce the threshold; Combine only rejects structural problems.
func Combine(shares []Share, secretLen int) ([]byte, error) {
	if len(shares) < 2 {
		return nil, ErrTooFewShares
	}
	seen := make(map[uint16]bool, len(shares))
	for _, sh := range shares {
		if sh.X == 0 || sh.Y == nil {
			return nil, ErrShareRange
		}
		if sh.Y.Sign() < 0 || sh.Y.Cmp(fieldPrime) >= 0 {
			return nil, ErrShareRange
		}
		if seen[sh.X] {
			return nil, ErrDuplicateX
		}
		seen[sh.X] = true
	}
	secret := new(big.Int)
	num := new(big.Int)
	den := new(big.Int)
	term := new(big.Int)
	for i, si := range shares {
		// Lagrange basis at 0: Π_{j≠i} (-xj)/(xi-xj).
		num.SetInt64(1)
		den.SetInt64(1)
		for j, sj := range shares {
			if j == i {
				continue
			}
			num.Mul(num, big.NewInt(-int64(sj.X)))
			num.Mod(num, fieldPrime)
			den.Mul(den, big.NewInt(int64(si.X)-int64(sj.X)))
			den.Mod(den, fieldPrime)
		}
		den.ModInverse(den, fieldPrime)
		term.Mul(si.Y, num)
		term.Mod(term, fieldPrime)
		term.Mul(term, den)
		term.Mod(term, fieldPrime)
		secret.Add(secret, term)
		secret.Mod(secret, fieldPrime)
	}
	raw := secret.Bytes()
	if len(raw) > secretLen {
		return nil, fmt.Errorf("shamir: reconstructed value needs %d bytes, caller allotted %d (wrong share set?)", len(raw), secretLen)
	}
	out := make([]byte, secretLen)
	copy(out[secretLen-len(raw):], raw)
	return out, nil
}
