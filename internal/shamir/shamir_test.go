package shamir

import (
	"bytes"
	"crypto/rand"
	"errors"
	"math/big"
	mrand "math/rand"
	"testing"
	"testing/quick"
)

func TestSplitCombineRoundTrip(t *testing.T) {
	secret := []byte("the judge's master group signing key!")[:31]
	shares, err := Split(secret, 3, 5)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if len(shares) != 5 {
		t.Fatalf("got %d shares, want 5", len(shares))
	}
	got, err := Combine(shares[:3], len(secret))
	if err != nil {
		t.Fatalf("Combine: %v", err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatalf("Combine = %x, want %x", got, secret)
	}
}

func TestCombineAnySubset(t *testing.T) {
	secret := make([]byte, 31)
	if _, err := rand.Read(secret); err != nil {
		t.Fatal(err)
	}
	shares, err := Split(secret, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	subsets := [][]int{{0, 1, 2}, {3, 4, 5}, {0, 2, 4}, {1, 3, 5}, {5, 0, 3}, {0, 1, 2, 3, 4, 5}}
	for _, idx := range subsets {
		sub := make([]Share, len(idx))
		for i, j := range idx {
			sub[i] = shares[j]
		}
		got, err := Combine(sub, len(secret))
		if err != nil {
			t.Fatalf("Combine(%v): %v", idx, err)
		}
		if !bytes.Equal(got, secret) {
			t.Fatalf("Combine(%v) mismatch", idx)
		}
	}
}

func TestTooFewSharesGiveWrongSecret(t *testing.T) {
	secret := make([]byte, 31)
	if _, err := rand.Read(secret); err != nil {
		t.Fatal(err)
	}
	shares, err := Split(secret, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Combine(shares[:2], len(secret))
	if err != nil {
		// A size error is also an acceptable "you got garbage" signal.
		return
	}
	if bytes.Equal(got, secret) {
		t.Fatal("2 of 3 shares reconstructed the secret — threshold broken")
	}
}

func TestLeadingZerosPreserved(t *testing.T) {
	secret := make([]byte, 31)
	secret[30] = 0x7 // value 7 with 30 leading zero bytes
	shares, err := Split(secret, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Combine(shares[:2], len(secret))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatalf("got %x, want %x", got, secret)
	}
}

func TestSplitValidation(t *testing.T) {
	secret := []byte("s")
	cases := []struct {
		name string
		k, n int
	}{
		{"k too small", 1, 5},
		{"k > n", 4, 3},
		{"n too large", 2, 70000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Split(secret, tc.k, tc.n); !errors.Is(err, ErrThreshold) {
				t.Fatalf("Split(%d,%d) = %v, want ErrThreshold", tc.k, tc.n, err)
			}
		})
	}
}

func TestSecretTooLargeRejected(t *testing.T) {
	big := bytes.Repeat([]byte{0xff}, 32) // 2^256-1 > prime
	if _, err := Split(big, 2, 3); !errors.Is(err, ErrSecretRange) {
		t.Fatalf("Split = %v, want ErrSecretRange", err)
	}
}

func TestCombineValidation(t *testing.T) {
	secret := []byte("valid secret")
	shares, err := Split(secret, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Run("too few", func(t *testing.T) {
		if _, err := Combine(shares[:1], len(secret)); !errors.Is(err, ErrTooFewShares) {
			t.Fatalf("got %v, want ErrTooFewShares", err)
		}
	})
	t.Run("duplicate x", func(t *testing.T) {
		dup := []Share{shares[0], shares[0].Clone()}
		if _, err := Combine(dup, len(secret)); !errors.Is(err, ErrDuplicateX) {
			t.Fatalf("got %v, want ErrDuplicateX", err)
		}
	})
	t.Run("zero x", func(t *testing.T) {
		bad := []Share{{X: 0, Y: big.NewInt(1)}, shares[1]}
		if _, err := Combine(bad, len(secret)); !errors.Is(err, ErrShareRange) {
			t.Fatalf("got %v, want ErrShareRange", err)
		}
	})
	t.Run("nil y", func(t *testing.T) {
		bad := []Share{{X: 9, Y: nil}, shares[1]}
		if _, err := Combine(bad, len(secret)); !errors.Is(err, ErrShareRange) {
			t.Fatalf("got %v, want ErrShareRange", err)
		}
	})
	t.Run("y out of field", func(t *testing.T) {
		bad := []Share{{X: 9, Y: new(big.Int).Add(fieldPrime, big.NewInt(1))}, shares[1]}
		if _, err := Combine(bad, len(secret)); !errors.Is(err, ErrShareRange) {
			t.Fatalf("got %v, want ErrShareRange", err)
		}
	})
}

func TestTamperedShareChangesSecret(t *testing.T) {
	secret := make([]byte, 16)
	if _, err := rand.Read(secret); err != nil {
		t.Fatal(err)
	}
	shares, err := Split(secret, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	shares[1].Y.Add(shares[1].Y, big.NewInt(1))
	shares[1].Y.Mod(shares[1].Y, fieldPrime)
	got, err := Combine(shares, 32)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got[32-16:], secret) {
		t.Fatal("tampered share still reconstructed the secret")
	}
}

// TestRoundTripProperty: for random secrets and random valid (k, n), any k
// shares reconstruct the secret.
func TestRoundTripProperty(t *testing.T) {
	rng := mrand.New(mrand.NewSource(42))
	f := func(raw [31]byte) bool {
		k := 2 + rng.Intn(4) // 2..5
		n := k + rng.Intn(4) // k..k+3
		shares, err := Split(raw[:], k, n)
		if err != nil {
			return false
		}
		rng.Shuffle(len(shares), func(i, j int) { shares[i], shares[j] = shares[j], shares[i] })
		got, err := Combine(shares[:k], len(raw))
		if err != nil {
			return false
		}
		return bytes.Equal(got, raw[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSplit3of5(b *testing.B) {
	secret := make([]byte, 31)
	if _, err := rand.Read(secret); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Split(secret, 3, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCombine3of5(b *testing.B) {
	secret := make([]byte, 31)
	if _, err := rand.Read(secret); err != nil {
		b.Fatal(err)
	}
	shares, err := Split(secret, 3, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Combine(shares[:3], len(secret)); err != nil {
			b.Fatal(err)
		}
	}
}
