package ppay

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"whopay/internal/bus"
	"whopay/internal/core"
	"whopay/internal/sig"
)

// PeerConfig configures a PPay peer.
type PeerConfig struct {
	ID         string
	Network    bus.Network
	Addr       bus.Address
	Scheme     sig.Scheme
	Recorder   sig.Recorder
	Clock      core.Clock
	Directory  *core.Directory
	BrokerAddr bus.Address
	BrokerPub  sig.PublicKey
	Prober     core.Prober
	Presence   core.Presence
}

// ownedState tracks a coin this peer owns.
type ownedState struct {
	c        *Coin
	seq      uint64
	holder   string
	selfHeld bool
}

// Peer is a PPay participant.
type Peer struct {
	cfg   PeerConfig
	suite sig.Suite
	keys  sig.KeyPair
	ep    bus.Endpoint
	ops   core.OpCounter

	mu        sync.Mutex
	owned     map[uint64]*ownedState
	held      map[uint64]*Assignment
	heldOrder []uint64
}

// NewPeer creates and registers a PPay peer.
func NewPeer(cfg PeerConfig) (*Peer, error) {
	if cfg.Network == nil || cfg.Scheme == nil || cfg.Directory == nil || cfg.ID == "" {
		return nil, errors.New("ppay: peer needs ID, Network, Scheme and Directory")
	}
	if cfg.Addr == "" {
		cfg.Addr = bus.Address("ppay-peer:" + cfg.ID)
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	p := &Peer{
		cfg:   cfg,
		suite: sig.Suite{Scheme: cfg.Scheme, Rec: cfg.Recorder},
		owned: make(map[uint64]*ownedState),
		held:  make(map[uint64]*Assignment),
	}
	keys, err := cfg.Scheme.GenerateKey()
	if err != nil {
		return nil, fmt.Errorf("ppay: peer keygen: %w", err)
	}
	p.keys = keys
	cfg.Directory.Register(cfg.ID, keys.Public, cfg.Addr)
	ep, err := cfg.Network.Listen(cfg.Addr, p.handle)
	if err != nil {
		return nil, fmt.Errorf("ppay: peer listen: %w", err)
	}
	p.ep = ep
	return p, nil
}

// ID returns the peer's identity.
func (p *Peer) ID() string { return p.cfg.ID }

// Addr returns the peer's address.
func (p *Peer) Addr() bus.Address { return p.cfg.Addr }

// Ops snapshots this peer's operation counts.
func (p *Peer) Ops() core.OpCounts { return p.ops.Snapshot() }

// Close stops the peer.
func (p *Peer) Close() error { return p.ep.Close() }

// HeldCoins lists held coin serials, oldest first.
func (p *Peer) HeldCoins() []uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]uint64, len(p.heldOrder))
	copy(out, p.heldOrder)
	return out
}

// HeldAssignment returns the assignment for a held coin.
func (p *Peer) HeldAssignment(serial uint64) (Assignment, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	a, ok := p.held[serial]
	if !ok {
		return Assignment{}, false
	}
	return *a, true
}

func (p *Peer) handle(from bus.Address, msg any) (any, error) {
	switch m := msg.(type) {
	case TransferRequest:
		return p.handleTransferRequest(m)
	case DeliverAssignment:
		return p.handleDeliver(m)
	default:
		return nil, fmt.Errorf("%w: peer got %T", ErrBadRequest, msg)
	}
}

// Purchase buys a coin; the buyer becomes owner and holder.
func (p *Peer) Purchase(value int64) (uint64, error) {
	sigBytes, err := p.suite.Sign(p.keys.Private, []byte("ppay/purchase/"+p.cfg.ID))
	if err != nil {
		return 0, err
	}
	resp, err := p.ep.Call(p.cfg.BrokerAddr, PurchaseRequest{Buyer: p.cfg.ID, Value: value, Sig: sigBytes})
	if err != nil {
		return 0, fmt.Errorf("ppay: purchase: %w", err)
	}
	pr, ok := resp.(PurchaseResponse)
	if !ok {
		return 0, fmt.Errorf("%w: unexpected %T", ErrBadRequest, resp)
	}
	c := pr.Coin
	if err := c.Verify(p.suite, p.cfg.BrokerPub); err != nil {
		return 0, err
	}
	p.mu.Lock()
	p.owned[c.Serial] = &ownedState{c: &c, selfHeld: true}
	p.mu.Unlock()
	p.ops.Inc(core.OpPurchase)
	return c.Serial, nil
}

// IssueTo issues a self-held coin to the payee, naming them in the coin —
// PPay has no payee anonymity.
func (p *Peer) IssueTo(payeeID string, serial uint64) error {
	p.mu.Lock()
	os, ok := p.owned[serial]
	if !ok || !os.selfHeld {
		p.mu.Unlock()
		return ErrUnknownCoin
	}
	c := os.c
	p.mu.Unlock()
	entry, ok := p.cfg.Directory.Lookup(payeeID)
	if !ok {
		return fmt.Errorf("%w: payee %q", ErrUnknownIdent, payeeID)
	}
	a := &Assignment{Coin: *c, Holder: payeeID, Seq: 1}
	var err error
	if a.Sig, err = p.suite.Sign(p.keys.Private, a.message()); err != nil {
		return err
	}
	if _, err := p.ep.Call(entry.Addr, DeliverAssignment{Assignment: *a}); err != nil {
		return fmt.Errorf("ppay: delivering issue: %w", err)
	}
	p.mu.Lock()
	os.selfHeld = false
	os.seq = 1
	os.holder = payeeID
	p.mu.Unlock()
	p.ops.Inc(core.OpIssue)
	return nil
}

// handleDeliver accepts an assignment naming this peer as holder.
func (p *Peer) handleDeliver(m DeliverAssignment) (any, error) {
	a := m.Assignment
	if a.Holder != p.cfg.ID {
		return nil, fmt.Errorf("%w: assignment names %q", ErrBadRequest, a.Holder)
	}
	if err := a.Coin.Verify(p.suite, p.cfg.BrokerPub); err != nil {
		return nil, err
	}
	signer := p.cfg.BrokerPub
	if !a.ByBroker {
		entry, ok := p.cfg.Directory.Lookup(a.Coin.Owner)
		if !ok {
			return nil, fmt.Errorf("%w: owner %q", ErrUnknownIdent, a.Coin.Owner)
		}
		signer = entry.Pub
	}
	if err := p.suite.Verify(signer, a.message(), a.Sig); err != nil {
		return nil, fmt.Errorf("%w: assignment: %v", ErrBadRequest, err)
	}
	p.mu.Lock()
	if _, already := p.held[a.Coin.Serial]; !already {
		p.heldOrder = append(p.heldOrder, a.Coin.Serial)
	}
	p.held[a.Coin.Serial] = &a
	p.mu.Unlock()
	return DeliverResponse{}, nil
}

// handleTransferRequest services a transfer for a coin this peer owns.
func (p *Peer) handleTransferRequest(m TransferRequest) (any, error) {
	p.mu.Lock()
	os, ok := p.owned[m.Serial]
	p.mu.Unlock()
	if !ok {
		return nil, ErrUnknownCoin
	}
	// Catch up from broker-era evidence if newer.
	if m.Assignment.ByBroker && m.Assignment.Seq > os.seq {
		if err := p.suite.Verify(p.cfg.BrokerPub, m.Assignment.message(), m.Assignment.Sig); err == nil {
			p.mu.Lock()
			os.seq = m.Assignment.Seq
			os.holder = m.Assignment.Holder
			os.selfHeld = false
			p.mu.Unlock()
			p.ops.Inc(core.OpLazySync)
		}
	}
	p.mu.Lock()
	curSeq, curHolder := os.seq, os.holder
	c := os.c
	p.mu.Unlock()
	if m.Seq != curSeq || m.Holder != curHolder {
		return nil, ErrStaleSeq
	}
	entry, ok := p.cfg.Directory.Lookup(m.Holder)
	if !ok {
		return nil, fmt.Errorf("%w: holder %q", ErrUnknownIdent, m.Holder)
	}
	if err := p.suite.Verify(entry.Pub, transferMessage(m.Serial, m.Seq, m.NewHolder, m.Holder), m.Sig); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotHolder, err)
	}
	next := &Assignment{Coin: *c, Holder: m.NewHolder, Seq: curSeq + 1}
	var err error
	if next.Sig, err = p.suite.Sign(p.keys.Private, next.message()); err != nil {
		return nil, err
	}
	if _, err := p.ep.Call(m.PayeeAddr, DeliverAssignment{Assignment: *next}); err != nil {
		return TransferResponse{OK: false}, nil
	}
	p.mu.Lock()
	os.seq = next.Seq
	os.holder = next.Holder
	p.mu.Unlock()
	p.ops.Inc(core.OpTransfer)
	return TransferResponse{OK: true}, nil
}

// TransferTo spends a held coin via its owner.
func (p *Peer) TransferTo(payeeID string, serial uint64) error {
	return p.transfer(payeeID, serial, false)
}

// TransferViaBroker spends a held coin via the broker (downtime protocol).
func (p *Peer) TransferViaBroker(payeeID string, serial uint64) error {
	return p.transfer(payeeID, serial, true)
}

func (p *Peer) transfer(payeeID string, serial uint64, viaBroker bool) error {
	p.mu.Lock()
	a, ok := p.held[serial]
	p.mu.Unlock()
	if !ok {
		return ErrUnknownCoin
	}
	payee, ok := p.cfg.Directory.Lookup(payeeID)
	if !ok {
		return fmt.Errorf("%w: payee %q", ErrUnknownIdent, payeeID)
	}
	sigBytes, err := p.suite.Sign(p.keys.Private, transferMessage(serial, a.Seq, payeeID, p.cfg.ID))
	if err != nil {
		return err
	}
	req := TransferRequest{
		OwnerID:    a.Coin.Owner,
		Serial:     serial,
		Seq:        a.Seq,
		NewHolder:  payeeID,
		PayeeAddr:  payee.Addr,
		Holder:     p.cfg.ID,
		Sig:        sigBytes,
		Assignment: *a,
	}
	var target bus.Address
	if viaBroker {
		target = p.cfg.BrokerAddr
	} else {
		owner, ok := p.cfg.Directory.Lookup(a.Coin.Owner)
		if !ok {
			return fmt.Errorf("%w: owner %q", ErrUnknownIdent, a.Coin.Owner)
		}
		target = owner.Addr
	}
	raw, err := p.ep.Call(target, req)
	if err != nil {
		return fmt.Errorf("ppay: transfer: %w", err)
	}
	tr, ok := raw.(TransferResponse)
	if !ok || !tr.OK {
		return fmt.Errorf("%w: transfer refused", ErrBadRequest)
	}
	p.mu.Lock()
	delete(p.held, serial)
	for i, sn := range p.heldOrder {
		if sn == serial {
			p.heldOrder = append(p.heldOrder[:i], p.heldOrder[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
	if viaBroker {
		p.ops.Inc(core.OpDowntimeTransfer)
	}
	return nil
}

// Deposit redeems a held coin; PPay deposits are identified.
func (p *Peer) Deposit(serial uint64) error {
	p.mu.Lock()
	a, ok := p.held[serial]
	p.mu.Unlock()
	if !ok {
		return ErrUnknownCoin
	}
	sigBytes, err := p.suite.Sign(p.keys.Private, depositMessage(p.cfg.ID, serial, a.Seq))
	if err != nil {
		return err
	}
	raw, err := p.ep.Call(p.cfg.BrokerAddr, DepositRequest{Depositor: p.cfg.ID, Assignment: *a, Sig: sigBytes})
	if err != nil {
		return fmt.Errorf("ppay: deposit: %w", err)
	}
	if _, ok := raw.(DepositResponse); !ok {
		return fmt.Errorf("%w: unexpected %T", ErrBadRequest, raw)
	}
	p.mu.Lock()
	delete(p.held, serial)
	for i, sn := range p.heldOrder {
		if sn == serial {
			p.heldOrder = append(p.heldOrder[:i], p.heldOrder[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
	p.ops.Inc(core.OpDeposit)
	return nil
}

// Sync fetches broker-era assignments for owned coins after rejoin.
func (p *Peer) Sync() error {
	sigBytes, err := p.suite.Sign(p.keys.Private, []byte("ppay/sync/"+p.cfg.ID))
	if err != nil {
		return err
	}
	raw, err := p.ep.Call(p.cfg.BrokerAddr, SyncRequest{Identity: p.cfg.ID, Sig: sigBytes})
	if err != nil {
		return fmt.Errorf("ppay: sync: %w", err)
	}
	sr, ok := raw.(SyncResponse)
	if !ok {
		return fmt.Errorf("%w: unexpected %T", ErrBadRequest, raw)
	}
	for i := range sr.Assignments {
		a := sr.Assignments[i]
		if !a.ByBroker || p.suite.Verify(p.cfg.BrokerPub, a.message(), a.Sig) != nil {
			continue
		}
		p.mu.Lock()
		if os, owns := p.owned[a.Coin.Serial]; owns && a.Seq > os.seq {
			os.seq = a.Seq
			os.holder = a.Holder
			os.selfHeld = false
		}
		p.mu.Unlock()
	}
	p.ops.Inc(core.OpSync)
	return nil
}
