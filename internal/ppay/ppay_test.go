package ppay

import (
	"errors"
	"strings"
	"testing"
	"time"

	"whopay/internal/bus"
	"whopay/internal/core"
	"whopay/internal/sig"
)

type fixture struct {
	net    *bus.Memory
	scheme sig.Scheme
	dir    *core.Directory
	broker *Broker
	clock  time.Time
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{
		net:    bus.NewMemory(),
		scheme: sig.NewNull(3000),
		dir:    core.NewDirectory(),
	}
	broker, err := NewBroker(BrokerConfig{
		Network:   f.net,
		Addr:      "ppay-broker",
		Scheme:    f.scheme,
		Directory: f.dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.broker = broker
	t.Cleanup(func() { broker.Close() })
	return f
}

func (f *fixture) addPeer(t *testing.T, id string) *Peer {
	t.Helper()
	p, err := NewPeer(PeerConfig{
		ID:         id,
		Network:    f.net,
		Addr:       bus.Address("pp:" + id),
		Scheme:     f.scheme,
		Directory:  f.dir,
		BrokerAddr: "ppay-broker",
		BrokerPub:  f.broker.PublicKey(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestPPayLifecycle(t *testing.T) {
	f := newFixture(t)
	u := f.addPeer(t, "u")
	v := f.addPeer(t, "v")
	w := f.addPeer(t, "w")

	sn, err := u.Purchase(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo("v", sn); err != nil {
		t.Fatal(err)
	}
	if got := v.HeldCoins(); len(got) != 1 || got[0] != sn {
		t.Fatalf("v holds %v", got)
	}
	if err := v.TransferTo("w", sn); err != nil {
		t.Fatal(err)
	}
	if len(v.HeldCoins()) != 0 || len(w.HeldCoins()) != 1 {
		t.Fatal("transfer bookkeeping wrong")
	}
	if err := w.Deposit(sn); err != nil {
		t.Fatal(err)
	}
	if f.broker.Balance("w") != 1 {
		t.Fatalf("balance = %d", f.broker.Balance("w"))
	}
	if u.Ops().Get(core.OpTransfer) != 1 {
		t.Fatal("owner transfer not counted")
	}
}

// TestPPayExposesIdentities demonstrates the anonymity gap WhoPay closes:
// the assignment the payee receives names the payer-chain in the clear.
func TestPPayExposesIdentities(t *testing.T) {
	f := newFixture(t)
	u := f.addPeer(t, "owner-u")
	v := f.addPeer(t, "payer-v")
	w := f.addPeer(t, "payee-w")
	sn, err := u.Purchase(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo("payer-v", sn); err != nil {
		t.Fatal(err)
	}
	if err := v.TransferTo("payee-w", sn); err != nil {
		t.Fatal(err)
	}
	a, ok := w.HeldAssignment(sn)
	if !ok {
		t.Fatal("w lost the coin")
	}
	// The coin names its owner; the assignment names the payee; the
	// owner learned the payer's identity from the transfer request.
	if a.Coin.Owner != "owner-u" || a.Holder != "payee-w" {
		t.Fatalf("assignment = %+v", a)
	}
}

func TestPPayDowntimeTransferAndSync(t *testing.T) {
	f := newFixture(t)
	u := f.addPeer(t, "u")
	v := f.addPeer(t, "v")
	w := f.addPeer(t, "w")
	x := f.addPeer(t, "x")
	sn, err := u.Purchase(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo("v", sn); err != nil {
		t.Fatal(err)
	}
	f.net.SetOnline("pp:u", false)
	if err := v.TransferTo("w", sn); err == nil {
		t.Fatal("transfer via offline owner succeeded")
	}
	if err := v.TransferViaBroker("w", sn); err != nil {
		t.Fatal(err)
	}
	if f.broker.Ops().Get(core.OpDowntimeTransfer) != 1 {
		t.Fatal("downtime transfer not counted")
	}
	f.net.SetOnline("pp:u", true)
	if err := u.Sync(); err != nil {
		t.Fatal(err)
	}
	// Owner services the next hop after syncing.
	if err := w.TransferTo("x", sn); err != nil {
		t.Fatalf("post-sync transfer: %v", err)
	}
	if err := x.Deposit(sn); err != nil {
		t.Fatal(err)
	}
}

func TestPPayDoubleSpendRejected(t *testing.T) {
	f := newFixture(t)
	u := f.addPeer(t, "u")
	v := f.addPeer(t, "v")
	_ = f.addPeer(t, "w")
	x := f.addPeer(t, "x")
	sn, err := u.Purchase(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo("v", sn); err != nil {
		t.Fatal(err)
	}
	v.mu.Lock()
	stale := *v.held[sn]
	v.mu.Unlock()
	if err := v.TransferTo("w", sn); err != nil {
		t.Fatal(err)
	}
	// Replay the stale assignment toward x.
	sigBytes, err := v.suite.Sign(v.keys.Private, transferMessage(sn, stale.Seq, "x", "v"))
	if err != nil {
		t.Fatal(err)
	}
	xEntry, _ := f.dir.Lookup("x")
	uEntry, _ := f.dir.Lookup("u")
	_, err = v.ep.Call(uEntry.Addr, TransferRequest{
		OwnerID: "u", Serial: sn, Seq: stale.Seq, NewHolder: "x",
		PayeeAddr: xEntry.Addr, Holder: "v", Sig: sigBytes, Assignment: stale,
	})
	var remote *bus.RemoteError
	if !errors.As(err, &remote) || !strings.Contains(remote.Msg, "stale") {
		t.Fatalf("double spend = %v, want stale rejection", err)
	}
	if len(x.HeldCoins()) != 0 {
		t.Fatal("double-spent coin delivered")
	}
}

func TestPPayDoubleDepositRejected(t *testing.T) {
	f := newFixture(t)
	u := f.addPeer(t, "u")
	v := f.addPeer(t, "v")
	sn, err := u.Purchase(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo("v", sn); err != nil {
		t.Fatal(err)
	}
	v.mu.Lock()
	stale := *v.held[sn]
	v.mu.Unlock()
	if err := v.Deposit(sn); err != nil {
		t.Fatal(err)
	}
	sigBytes, err := v.suite.Sign(v.keys.Private, depositMessage("v", sn, stale.Seq))
	if err != nil {
		t.Fatal(err)
	}
	_, err = v.ep.Call("ppay-broker", DepositRequest{Depositor: "v", Assignment: stale, Sig: sigBytes})
	if err == nil {
		t.Fatal("double deposit accepted")
	}
	if f.broker.Balance("v") != 1 {
		t.Fatalf("balance = %d", f.broker.Balance("v"))
	}
}

func TestPPayForgedAssignmentRejected(t *testing.T) {
	f := newFixture(t)
	u := f.addPeer(t, "u")
	v := f.addPeer(t, "v")
	sn, err := u.Purchase(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo("v", sn); err != nil {
		t.Fatal(err)
	}
	// v forges an assignment inflating the value.
	v.mu.Lock()
	forged := *v.held[sn]
	v.mu.Unlock()
	forged.Coin.Value = 1000
	sigBytes, err := v.suite.Sign(v.keys.Private, depositMessage("v", sn, forged.Seq))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.ep.Call("ppay-broker", DepositRequest{Depositor: "v", Assignment: forged, Sig: sigBytes}); err == nil {
		t.Fatal("forged coin value accepted")
	}
}

func TestPPayPurchaseValidation(t *testing.T) {
	f := newFixture(t)
	u := f.addPeer(t, "u")
	if _, err := u.Purchase(0); err == nil {
		t.Fatal("zero-value purchase accepted")
	}
}
