// Package ppay implements PPay (Yang & Garcia-Molina, CCS 2003), the
// peer-to-peer micropayment scheme WhoPay inherits its architecture from
// and compares against (paper Section 3.1).
//
// PPay coins are broker-signed serial numbers naming their owner:
// C = {U, sn}skB. An issued coin names its holder BY IDENTITY:
// {C, H, seq}skU — which is exactly the anonymity gap WhoPay closes by
// replacing identities with fresh public keys. Transfers route through the
// coin's owner (or the broker during owner downtime), as in WhoPay, so the
// load-distribution story is the same; the privacy story is not: every
// participant of every transaction is identified to every other
// participant, and the owner accumulates a complete transaction history
// per coin.
//
// The implementation mirrors internal/core closely (same bus, same op
// counters) so simulations can swap the two systems and measure the delta:
// identical load distribution, cheaper crypto (no group signatures), zero
// anonymity.
package ppay

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"whopay/internal/bus"
	"whopay/internal/core"
	"whopay/internal/sig"
)

// Errors returned by PPay entities.
var (
	ErrUnknownCoin  = errors.New("ppay: unknown coin")
	ErrNotHolder    = errors.New("ppay: requester is not the holder")
	ErrStaleSeq     = errors.New("ppay: stale sequence number")
	ErrBadRequest   = errors.New("ppay: bad request")
	ErrUnknownIdent = errors.New("ppay: unknown identity")
)

// Coin is the broker-signed birth certificate: {U, sn}skB.
type Coin struct {
	Owner  string
	Serial uint64
	Value  int64
	Sig    []byte
}

func (c *Coin) message() []byte {
	out := []byte("ppay/coin/1")
	out = append(out, byte(len(c.Owner)))
	out = append(out, c.Owner...)
	out = binary.BigEndian.AppendUint64(out, c.Serial)
	out = binary.BigEndian.AppendUint64(out, uint64(c.Value))
	return out
}

// Verify checks the broker signature.
func (c *Coin) Verify(suite sig.Suite, brokerPub sig.PublicKey) error {
	if err := suite.Verify(brokerPub, c.message(), c.Sig); err != nil {
		return fmt.Errorf("%w: coin: %v", ErrBadRequest, err)
	}
	return nil
}

// Assignment is an issued/transferred coin: {C, H, seq}skU (or skB when
// ByBroker — the downtime protocol's "layered" broker assignment).
type Assignment struct {
	Coin     Coin
	Holder   string
	Seq      uint64
	ByBroker bool
	Sig      []byte
}

func (a *Assignment) message() []byte {
	out := []byte("ppay/assign/1")
	out = append(out, a.Coin.message()...)
	out = append(out, byte(len(a.Holder)))
	out = append(out, a.Holder...)
	out = binary.BigEndian.AppendUint64(out, a.Seq)
	if a.ByBroker {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	return out
}

// Wire messages.
type (
	// PurchaseRequest buys a coin.
	PurchaseRequest struct {
		Buyer string
		Value int64
		Sig   []byte
	}
	// PurchaseResponse returns the minted coin.
	PurchaseResponse struct{ Coin Coin }
	// TransferRequest asks the owner (or broker) to reassign a coin:
	// the paper's {W, CV}skV. Note it names BOTH identities in the
	// clear.
	TransferRequest struct {
		OwnerID   string
		Serial    uint64
		Seq       uint64
		NewHolder string
		PayeeAddr bus.Address
		Holder    string
		Sig       []byte
		// Assignment is the holder's current assignment, evidence
		// for broker-era verification.
		Assignment Assignment
	}
	// DeliverAssignment hands the new assignment to the payee.
	DeliverAssignment struct{ Assignment Assignment }
	// DeliverResponse acknowledges.
	DeliverResponse struct{}
	// TransferResponse reports the outcome.
	TransferResponse struct{ OK bool }
	// DepositRequest redeems a coin — identified, unlike WhoPay.
	DepositRequest struct {
		Depositor  string
		Assignment Assignment
		Sig        []byte
	}
	// DepositResponse confirms.
	DepositResponse struct{ Amount int64 }
	// SyncRequest fetches broker-era assignments after rejoin.
	SyncRequest struct {
		Identity string
		Sig      []byte
	}
	// SyncResponse returns them.
	SyncResponse struct{ Assignments []Assignment }
)

func transferMessage(serial, seq uint64, newHolder, holder string) []byte {
	out := []byte("ppay/transfer/1")
	out = binary.BigEndian.AppendUint64(out, serial)
	out = binary.BigEndian.AppendUint64(out, seq)
	out = append(out, byte(len(newHolder)))
	out = append(out, newHolder...)
	out = append(out, byte(len(holder)))
	out = append(out, holder...)
	return out
}

func depositMessage(depositor string, serial, seq uint64) []byte {
	out := []byte("ppay/deposit/1")
	out = append(out, byte(len(depositor)))
	out = append(out, depositor...)
	out = binary.BigEndian.AppendUint64(out, serial)
	out = binary.BigEndian.AppendUint64(out, seq)
	return out
}

// Broker mints, redeems, and services downtime operations.
type Broker struct {
	suite     sig.Suite
	keys      sig.KeyPair
	ep        bus.Endpoint
	dir       *core.Directory
	clock     core.Clock
	ops       core.OpCounter
	mu        sync.Mutex
	nextSn    uint64
	coins     map[uint64]*Coin
	downtime  map[uint64]*Assignment
	pending   map[string][]uint64
	deposited map[uint64]bool
	balances  map[string]int64
}

// BrokerConfig configures a PPay broker.
type BrokerConfig struct {
	Network   bus.Network
	Addr      bus.Address
	Scheme    sig.Scheme
	Recorder  sig.Recorder
	Clock     core.Clock
	Directory *core.Directory
}

// NewBroker starts a PPay broker.
func NewBroker(cfg BrokerConfig) (*Broker, error) {
	if cfg.Network == nil || cfg.Scheme == nil || cfg.Directory == nil {
		return nil, errors.New("ppay: broker needs Network, Scheme and Directory")
	}
	if cfg.Addr == "" {
		cfg.Addr = "ppay-broker"
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	b := &Broker{
		suite:     sig.Suite{Scheme: cfg.Scheme, Rec: cfg.Recorder},
		dir:       cfg.Directory,
		clock:     cfg.Clock,
		coins:     make(map[uint64]*Coin),
		downtime:  make(map[uint64]*Assignment),
		pending:   make(map[string][]uint64),
		deposited: make(map[uint64]bool),
		balances:  make(map[string]int64),
	}
	keys, err := cfg.Scheme.GenerateKey()
	if err != nil {
		return nil, fmt.Errorf("ppay: broker keygen: %w", err)
	}
	b.keys = keys
	ep, err := cfg.Network.Listen(cfg.Addr, b.handle)
	if err != nil {
		return nil, fmt.Errorf("ppay: broker listen: %w", err)
	}
	b.ep = ep
	return b, nil
}

// Addr returns the broker address.
func (b *Broker) Addr() bus.Address { return b.ep.Addr() }

// PublicKey returns the broker key.
func (b *Broker) PublicKey() sig.PublicKey { return b.keys.Public.Clone() }

// Ops snapshots the broker's operation counts.
func (b *Broker) Ops() core.OpCounts { return b.ops.Snapshot() }

// Balance returns deposits credited to an identity.
func (b *Broker) Balance(identity string) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.balances[identity]
}

// Close stops the broker.
func (b *Broker) Close() error { return b.ep.Close() }

func (b *Broker) handle(from bus.Address, msg any) (any, error) {
	switch m := msg.(type) {
	case PurchaseRequest:
		return b.handlePurchase(m)
	case TransferRequest:
		return b.handleDowntimeTransfer(m)
	case DepositRequest:
		return b.handleDeposit(m)
	case SyncRequest:
		return b.handleSync(m)
	default:
		return nil, fmt.Errorf("%w: broker got %T", ErrBadRequest, msg)
	}
}

func (b *Broker) handlePurchase(m PurchaseRequest) (any, error) {
	entry, ok := b.dir.Lookup(m.Buyer)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownIdent, m.Buyer)
	}
	if err := b.suite.Verify(entry.Pub, []byte("ppay/purchase/"+m.Buyer), m.Sig); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if m.Value <= 0 {
		return nil, fmt.Errorf("%w: bad value", ErrBadRequest)
	}
	b.mu.Lock()
	b.nextSn++
	sn := b.nextSn
	b.mu.Unlock()
	c := &Coin{Owner: m.Buyer, Serial: sn, Value: m.Value}
	var err error
	if c.Sig, err = b.suite.Sign(b.keys.Private, c.message()); err != nil {
		return nil, err
	}
	b.mu.Lock()
	b.coins[sn] = c
	b.mu.Unlock()
	b.ops.Inc(core.OpPurchase)
	return PurchaseResponse{Coin: *c}, nil
}

// currentAssignment resolves the authoritative assignment, mirroring the
// WhoPay broker's two verification flavors.
func (b *Broker) currentAssignment(c *Coin, presented *Assignment) (*Assignment, error) {
	b.mu.Lock()
	stored := b.downtime[c.Serial]
	b.mu.Unlock()
	if stored != nil && presented != nil && stored.Seq == presented.Seq && stored.Holder == presented.Holder {
		return stored, nil
	}
	if presented == nil {
		return nil, fmt.Errorf("%w: no assignment presented", ErrBadRequest)
	}
	signer := sig.PublicKey(nil)
	if presented.ByBroker {
		signer = b.keys.Public
	} else {
		entry, ok := b.dir.Lookup(c.Owner)
		if !ok {
			return nil, fmt.Errorf("%w: owner %q", ErrUnknownIdent, c.Owner)
		}
		signer = entry.Pub
	}
	if err := b.suite.Verify(signer, presented.message(), presented.Sig); err != nil {
		return nil, fmt.Errorf("%w: assignment: %v", ErrBadRequest, err)
	}
	if stored != nil && presented.Seq <= stored.Seq {
		return nil, fmt.Errorf("%w: presented %d, broker has %d", ErrStaleSeq, presented.Seq, stored.Seq)
	}
	return presented, nil
}

func (b *Broker) handleDowntimeTransfer(m TransferRequest) (any, error) {
	b.mu.Lock()
	c, ok := b.coins[m.Serial]
	deposited := b.deposited[m.Serial]
	b.mu.Unlock()
	if !ok || deposited {
		return nil, ErrUnknownCoin
	}
	cur, err := b.currentAssignment(c, &m.Assignment)
	if err != nil {
		return nil, err
	}
	if cur.Holder != m.Holder || cur.Seq != m.Seq {
		return nil, ErrNotHolder
	}
	entry, ok := b.dir.Lookup(m.Holder)
	if !ok {
		return nil, fmt.Errorf("%w: holder %q", ErrUnknownIdent, m.Holder)
	}
	if err := b.suite.Verify(entry.Pub, transferMessage(m.Serial, m.Seq, m.NewHolder, m.Holder), m.Sig); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotHolder, err)
	}
	next := &Assignment{Coin: *c, Holder: m.NewHolder, Seq: cur.Seq + 1, ByBroker: true}
	if next.Sig, err = b.suite.Sign(b.keys.Private, next.message()); err != nil {
		return nil, err
	}
	if _, err := b.ep.Call(m.PayeeAddr, DeliverAssignment{Assignment: *next}); err != nil {
		return TransferResponse{OK: false}, nil
	}
	b.mu.Lock()
	b.downtime[m.Serial] = next
	b.pending[c.Owner] = append(b.pending[c.Owner], m.Serial)
	b.mu.Unlock()
	b.ops.Inc(core.OpDowntimeTransfer)
	return TransferResponse{OK: true}, nil
}

func (b *Broker) handleDeposit(m DepositRequest) (any, error) {
	b.mu.Lock()
	c, ok := b.coins[m.Assignment.Coin.Serial]
	deposited := b.deposited[m.Assignment.Coin.Serial]
	b.mu.Unlock()
	if !ok {
		return nil, ErrUnknownCoin
	}
	if deposited {
		return nil, fmt.Errorf("%w: already deposited", ErrBadRequest)
	}
	cur, err := b.currentAssignment(c, &m.Assignment)
	if err != nil {
		return nil, err
	}
	if cur.Holder != m.Depositor {
		return nil, ErrNotHolder
	}
	entry, ok := b.dir.Lookup(m.Depositor)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownIdent, m.Depositor)
	}
	if err := b.suite.Verify(entry.Pub, depositMessage(m.Depositor, c.Serial, cur.Seq), m.Sig); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotHolder, err)
	}
	b.mu.Lock()
	b.deposited[c.Serial] = true
	b.balances[m.Depositor] += c.Value
	delete(b.downtime, c.Serial)
	b.mu.Unlock()
	b.ops.Inc(core.OpDeposit)
	return DepositResponse{Amount: c.Value}, nil
}

func (b *Broker) handleSync(m SyncRequest) (any, error) {
	entry, ok := b.dir.Lookup(m.Identity)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownIdent, m.Identity)
	}
	if err := b.suite.Verify(entry.Pub, []byte("ppay/sync/"+m.Identity), m.Sig); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	b.mu.Lock()
	serials := b.pending[m.Identity]
	delete(b.pending, m.Identity)
	var out []Assignment
	for _, sn := range serials {
		if a := b.downtime[sn]; a != nil {
			out = append(out, *a)
			delete(b.downtime, sn)
		}
	}
	b.mu.Unlock()
	b.ops.Inc(core.OpSync)
	return SyncResponse{Assignments: out}, nil
}
