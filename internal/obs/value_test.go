package obs

import (
	"testing"
	"time"
)

// TestRegistryValue pins the read-side accessor: every metric kind is
// readable through one API without creating series as a side effect and
// without the kind-mismatch panics of the typed accessors — what report
// builders (the load harness) rely on to scrape a live registry.
func TestRegistryValue(t *testing.T) {
	reg := NewRegistry()
	lbl := Labels{"entity": "broker"}

	reg.Counter("wp_c_total", nil).Add(3)
	reg.Gauge("wp_g", lbl).Set(-7)
	reg.CounterFunc("wp_cf_total", lbl, func() int64 { return 41 })
	reg.GaugeFunc("wp_gf", nil, func() float64 { return 2.5 })
	h := reg.Histogram("wp_h_seconds", lbl, []float64{0.1, 1})
	h.Observe(50 * time.Millisecond)
	h.Observe(2 * time.Second)

	cases := []struct {
		name   string
		labels Labels
		want   float64
	}{
		{"wp_c_total", nil, 3},
		{"wp_g", lbl, -7},
		{"wp_cf_total", lbl, 41},
		{"wp_gf", nil, 2.5},
		{"wp_h_seconds", lbl, 2}, // histograms report their observation count
	}
	for _, c := range cases {
		got, found := reg.Value(c.name, c.labels)
		if !found || got != c.want {
			t.Fatalf("Value(%q,%v) = %v,%v want %v,true", c.name, c.labels, got, found, c.want)
		}
	}

	// Misses never create series: unknown family, unknown label set, and a
	// nil registry all report absence.
	if _, found := reg.Value("wp_missing", nil); found {
		t.Fatal("unknown family reported found")
	}
	if _, found := reg.Value("wp_c_total", lbl); found {
		t.Fatal("unknown label set reported found")
	}
	if _, found := reg.Value("wp_g", nil); found {
		t.Fatal("label-less read of a labeled family reported found")
	}
	var nilReg *Registry
	if _, found := nilReg.Value("wp_c_total", nil); found {
		t.Fatal("nil registry reported found")
	}

	// The miss lookups above must not have materialized series: the typed
	// accessor still creates fresh ones (no kind conflicts), and Value on a
	// labeled family with other labels still misses.
	if got := reg.Counter("wp_c_total", nil).Value(); got != 3 {
		t.Fatalf("counter perturbed by Value reads: %d", got)
	}
}
