// Package obs is WhoPay's zero-dependency observability subsystem
// (DESIGN.md §11): a metrics registry (atomic counters, gauges, and
// fixed-bucket latency histograms exposed in Prometheus text format),
// lightweight protocol tracing (one span per logical operation, with the
// trace ID propagated through transport envelopes so a multi-hop transfer
// yields one coherent trace across payer, owner, payee, and broker), and a
// runtime admin HTTP server mounting /metrics, /healthz, /traces, and
// net/http/pprof.
//
// The subsystem is disabled by default: every entity takes a nil-default
// *Registry knob, and all metric handles are nil-safe no-ops, so with the
// knob unset no clock is read, no allocation happens, and message counts
// and error shapes are byte-identical to an uninstrumented build. The
// paper's cost metrics (exact message counts in bus.Memory, micro-op
// recorders) therefore keep working unchanged.
package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Labels attach constant dimensions to a metric at creation time (e.g.
// entity="peer-0", op="transfer"). Label sets are canonicalized, so the
// same name+labels always yields the same metric instance.
type Labels map[string]string

// Counter is a monotonically increasing metric. All methods are safe on a
// nil receiver (no-ops), so instrumented code needs no enabled/disabled
// branches.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored — counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. Nil-safe like Counter.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefBuckets is the default latency bucket layout: exponential from 10µs to
// 10s, sized for the spread between an in-memory protocol hop (~100µs), a
// TCP round-trip, and an fsync-bound operation.
var DefBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3,
	100e-3, 250e-3, 500e-3, 1, 2.5, 10,
}

// Histogram is a fixed-bucket latency histogram: one atomic counter per
// bucket plus an atomic sum and count, so concurrent observers never take a
// lock. Bounds are upper bounds in seconds; an implicit +Inf bucket catches
// the tail. Nil-safe: Observe and Start on a nil histogram do nothing —
// notably Start does not even read the clock, keeping disabled hot paths
// identical to uninstrumented ones.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumNs   atomic.Int64 // sum of observations in nanoseconds
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.buckets = make([]atomic.Int64, len(h.bounds)+1)
	return h
}

// Start returns the current time for a later ObserveSince, or the zero time
// on a nil histogram (so disabled paths never read the clock).
func (h *Histogram) Start() time.Time {
	if h == nil {
		return time.Time{}
	}
	return time.Now()
}

// ObserveSince records the elapsed time since t0; it is a no-op on a nil
// histogram or a zero t0 (the Start of a disabled histogram).
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil || t0.IsZero() {
		return
	}
	h.Observe(time.Since(t0))
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	secs := d.Seconds()
	i := 0
	for i < len(h.bounds) && secs > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations in seconds (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sumNs.Load()) / float64(time.Second)
}

// snapshot returns cumulative bucket counts (Prometheus histograms are
// cumulative), the total count, and the sum. Reads are atomic per bucket
// but not across buckets; exposition tolerates the skew (a scrape races
// writers by design).
func (h *Histogram) snapshot() (cum []int64, count int64, sum float64) {
	cum = make([]int64, len(h.buckets))
	var acc int64
	for i := range h.buckets {
		acc += h.buckets[i].Load()
		cum[i] = acc
	}
	return cum, h.count.Load(), h.Sum()
}

// metricKind discriminates what a family holds.
type metricKind int

const (
	// kindUnset marks a family created by Help before any instrument
	// touched it; the first instrument registration adopts it.
	kindUnset metricKind = iota
	kindCounter
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k metricKind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// series is one labeled instance inside a family.
type series struct {
	labels string // canonical rendered label string, "" for none
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

// family groups every series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	order  []string // label strings in first-registration order (sorted at exposition)
	series map[string]*series
}

// Registry is the root of the observability subsystem: a named collection
// of metrics, a span tracer, and a set of health checks, all served by the
// admin endpoint. The nil *Registry is the disabled state — every accessor
// returns nil handles whose methods are no-ops. Safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // registration order; sorted at exposition

	tracerOnce sync.Once
	tracer     *Tracer

	healthMu sync.Mutex
	health   []healthEntry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns (creating on demand) the family and series for
// name+labels. It panics on a kind mismatch — two call sites disagreeing on
// what a name means is a programming error worth failing loudly on.
func (r *Registry) lookup(name string, labels Labels, kind metricKind) *series {
	key := canonLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
		r.names = append(r.names, name)
	}
	if f.kind == kindUnset {
		f.kind = kind
	}
	if f.kind != kind {
		panic("obs: metric " + name + " registered with conflicting kinds")
	}
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter returns the counter for name+labels, creating it on first use.
// Returns nil (a no-op handle) on a nil registry.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	s := r.lookup(name, labels, kindCounter)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns the gauge for name+labels (nil on a nil registry).
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	s := r.lookup(name, labels, kindGauge)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// Histogram returns the histogram for name+labels with the given bucket
// bounds (DefBuckets when nil). Bounds are fixed at first registration;
// later calls reuse the existing instance. Nil on a nil registry.
func (r *Registry) Histogram(name string, labels Labels, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	s := r.lookup(name, labels, kindHistogram)
	if s.h == nil {
		s.h = newHistogram(bounds)
	}
	return s.h
}

// CounterFunc registers a counter whose value is read from fn at exposition
// time — the bridge for pre-existing atomics (bus.RetryCaller retry counts,
// sig cache hits) that should not be double-counted into a second atomic.
// fn must be safe for concurrent use. No-op on a nil registry.
func (r *Registry) CounterFunc(name string, labels Labels, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	s := r.lookup(name, labels, kindCounterFunc)
	s.fn = func() float64 { return float64(fn()) }
}

// GaugeFunc registers a gauge read from fn at exposition time (live store
// sizes, cache occupancy). No-op on a nil registry.
func (r *Registry) GaugeFunc(name string, labels Labels, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	s := r.lookup(name, labels, kindGaugeFunc)
	s.fn = fn
}

// Help sets the HELP text for a metric family (shown in the exposition).
func (r *Registry) Help(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		f.help = help
	} else {
		r.families[name] = &family{name: name, help: help, kind: kindUnset, series: make(map[string]*series)}
		r.names = append(r.names, name)
	}
}

// Value reads the current value of the series name+labels without creating
// it — the read-side counterpart of the typed accessors, safe on any kind
// (Counter/Gauge on a func-backed family panics; Value never does).
// Counters and gauges return their stored value, func-backed series invoke
// their function, histograms return their observation count. The second
// return is false when the family or series does not exist, and always on
// a nil registry.
func (r *Registry) Value(name string, labels Labels) (float64, bool) {
	if r == nil {
		return 0, false
	}
	key := canonLabels(labels)
	r.mu.Lock()
	var s *series
	if f, ok := r.families[name]; ok {
		s = f.series[key]
	}
	r.mu.Unlock()
	if s == nil {
		return 0, false
	}
	// fn runs outside the registry lock: functions are required to be
	// concurrency-safe but may themselves touch the registry.
	switch {
	case s.fn != nil:
		return sanitizeFloat(s.fn()), true
	case s.c != nil:
		return float64(s.c.Value()), true
	case s.g != nil:
		return float64(s.g.Value()), true
	case s.h != nil:
		return float64(s.h.Count()), true
	}
	return 0, false
}

// Tracer returns the registry's span tracer, creating it (with the default
// ring capacity) on first use. Nil on a nil registry.
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	r.tracerOnce.Do(func() { r.tracer = NewTracer(DefaultTraceCap) })
	return r.tracer
}

// sanity guard: exposition must render non-finite func values as something
// Prometheus parsers accept.
func sanitizeFloat(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	return v
}
