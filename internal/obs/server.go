package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"time"
)

// healthEntry is one named liveness/durability probe.
type healthEntry struct {
	name  string
	check func() (detail string, err error)
}

// RegisterHealth adds a named health check to the registry. check returns a
// human-readable detail string and a non-nil error when unhealthy; /healthz
// runs every check on each request and returns 503 if any fails. Entities
// self-register their PersistenceErr probes here when given a registry.
// No-op on a nil registry.
func (r *Registry) RegisterHealth(name string, check func() (detail string, err error)) {
	if r == nil || check == nil {
		return
	}
	r.healthMu.Lock()
	r.health = append(r.health, healthEntry{name: name, check: check})
	r.healthMu.Unlock()
}

// healthResult is one check's outcome in the /healthz JSON body.
type healthResult struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
	Err    string `json:"err,omitempty"`
}

// runHealth executes every registered check.
func (r *Registry) runHealth() (results []healthResult, healthy bool) {
	r.healthMu.Lock()
	checks := append([]healthEntry(nil), r.health...)
	r.healthMu.Unlock()
	healthy = true
	results = make([]healthResult, 0, len(checks))
	for _, c := range checks {
		detail, err := c.check()
		res := healthResult{Name: c.name, OK: err == nil, Detail: detail}
		if err != nil {
			res.Err = err.Error()
			healthy = false
		}
		results = append(results, res)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	return results, healthy
}

// Handler returns the admin HTTP mux: /metrics (Prometheus text),
// /healthz (JSON; 503 when any check fails), /traces (JSON span records,
// optionally filtered by ?trace=ID), and /debug/pprof.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		results, healthy := r.runHealth()
		w.Header().Set("Content-Type", "application/json")
		if !healthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(struct {
			Healthy bool           `json:"healthy"`
			Checks  []healthResult `json:"checks"`
		}{healthy, results})
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, req *http.Request) {
		var spans []SpanRecord
		if t := r.Tracer(); t != nil {
			if id := req.URL.Query().Get("trace"); id != "" {
				spans = t.Trace(id)
			} else {
				spans = t.Spans()
			}
		}
		if spans == nil {
			spans = []SpanRecord{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(spans)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running admin endpoint; Close shuts it down.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Addr reports the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and severs open connections.
func (s *Server) Close() error { return s.srv.Close() }

// Serve binds the admin HTTP server on addr (e.g. ":9090" or
// "127.0.0.1:0") and serves the registry's Handler in a background
// goroutine until Close. Returns the running server so callers can log the
// bound address and shut it down.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Handler:           r.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	return &Server{srv: srv, ln: ln}, nil
}
