#include "textflag.h"

// func gkey() uintptr
//
// Returns the current goroutine's g pointer from thread-local storage —
// a stable identity for the goroutine's whole lifetime, two instructions
// instead of the multi-microsecond runtime.Stack traceback the portable
// fallback needs.
TEXT ·gkey(SB), NOSPLIT, $0-8
	MOVQ (TLS), AX
	MOVQ AX, ret+0(FP)
	RET
