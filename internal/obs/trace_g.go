//go:build amd64 || arm64

package obs

// gkey returns a stable identity for the current goroutine: its g pointer,
// read straight from the runtime's TLS slot (g_amd64.s / g_arm64.s). The g
// struct never moves while the goroutine lives (stacks move; g does not),
// so the value is a valid map key for goroutine-local storage at a few
// nanoseconds per call. A g may be recycled after its goroutine exits, but
// the gls protocol removes a goroutine's entry whenever its context
// empties, so reuse only matters for a goroutine that dies with a span
// still open — already a bug at the call site.
func gkey() uintptr
