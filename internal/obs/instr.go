package obs

import (
	"sync"
	"time"
)

// Instr is an entity's handle into the obs subsystem: it opens a span plus
// a latency-histogram observation around each logical operation, and counts
// errored operations. A nil *Instr — the state when an entity's Obs knob is
// unset — makes Begin/End pure no-ops that read no clock and allocate
// nothing, so uninstrumented runs stay byte-identical.
type Instr struct {
	reg    *Registry
	entity string
	tracer *Tracer

	mu    sync.RWMutex
	hists map[string]*Histogram // op → latency histogram, built on demand
}

// NewInstr returns an instrumentation handle for the named entity, or nil
// when reg is nil, so the disabled state costs one pointer comparison per
// operation.
func NewInstr(reg *Registry, entity string) *Instr {
	if reg == nil {
		return nil
	}
	reg.Help("whopay_op_seconds", "Latency of WhoPay protocol operations, by entity and operation.")
	reg.Help("whopay_op_errors_total", "Protocol operations that returned an error, by entity and operation.")
	return &Instr{
		reg:    reg,
		entity: entity,
		tracer: reg.Tracer(),
		hists:  make(map[string]*Histogram),
	}
}

// OpSpan carries one in-flight operation's trace span and latency timer
// between Begin and End. The zero value (from a nil Instr) is inert.
type OpSpan struct {
	span *Span
	hist *Histogram
	t0   time.Time
	op   string
}

// Begin opens a span for op and starts its latency timer.
func (in *Instr) Begin(op string) OpSpan {
	if in == nil {
		return OpSpan{}
	}
	h := in.hist(op)
	return OpSpan{span: in.tracer.StartSpan(in.entity, op), hist: h, t0: time.Now(), op: op}
}

// End closes the operation: records the latency, counts the error if any,
// and finishes the span. Must run on the goroutine that called Begin.
func (in *Instr) End(s OpSpan, err error) {
	if in == nil || s.span == nil {
		return
	}
	s.hist.ObserveSince(s.t0)
	if err != nil {
		in.reg.Counter("whopay_op_errors_total", Labels{"entity": in.entity, "op": s.op}).Inc()
	}
	s.span.End(err)
}

// hist returns the latency histogram for op, caching the handle so the hot
// path avoids the registry's mutex after first use.
func (in *Instr) hist(op string) *Histogram {
	in.mu.RLock()
	h, ok := in.hists[op]
	in.mu.RUnlock()
	if ok {
		return h
	}
	h = in.reg.Histogram("whopay_op_seconds", Labels{"entity": in.entity, "op": op}, nil)
	in.mu.Lock()
	in.hists[op] = h
	in.mu.Unlock()
	return h
}
