//go:build !amd64 && !arm64

package obs

import (
	"bytes"
	"runtime"
)

// gkey returns a stable identity for the current goroutine. Portable
// fallback: the goroutine ID parsed from the first line of runtime.Stack
// ("goroutine 123 [running]:"). runtime.Stack symbolizes the whole stack
// even for a tiny buffer, so this costs microseconds at protocol stack
// depths — the amd64/arm64 builds read the g pointer from TLS instead.
func gkey() uintptr {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	b := buf[:n]
	b = bytes.TrimPrefix(b, []byte("goroutine "))
	if i := bytes.IndexByte(b, ' '); i >= 0 {
		b = b[:i]
	}
	var id uintptr
	for _, c := range b {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uintptr(c-'0')
	}
	return id
}
