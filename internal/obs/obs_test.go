package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestNilRegistryNoOps proves the disabled state end to end: every handle
// off a nil registry is nil, and every method on those nil handles is a
// no-op — the contract the core entities rely on to stay byte-identical
// with observability off.
func TestNilRegistryNoOps(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x_total", nil)
	g := reg.Gauge("x", nil)
	h := reg.Histogram("x_seconds", nil, nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(-1)
	if !h.Start().IsZero() {
		t.Fatal("nil histogram Start must not read the clock")
	}
	h.ObserveSince(time.Time{})
	h.Observe(time.Second)
	reg.CounterFunc("f_total", nil, func() int64 { return 1 })
	reg.GaugeFunc("f", nil, func() float64 { return 1 })
	reg.Help("x_total", "help")
	reg.RegisterHealth("x", func() (string, error) { return "", nil })
	if err := reg.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
	if reg.Tracer() != nil {
		t.Fatal("nil registry must have a nil tracer")
	}
	sp := reg.Tracer().StartSpan("e", "op")
	sp.End(nil)
	in := NewInstr(nil, "e")
	if in != nil {
		t.Fatal("NewInstr(nil) must be nil")
	}
	os := in.Begin("op")
	in.End(os, errors.New("x"))
}

// TestCounterRejectsNegative documents that counters are monotonic.
func TestCounterRejectsNegative(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("mono_total", nil)
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter after Add(-3) = %d, want 5", got)
	}
}

// TestRegistryKindConflictPanics pins the fail-loud contract for name
// collisions across metric kinds.
func TestRegistryKindConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dual", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("gauge under a counter name must panic")
		}
	}()
	reg.Gauge("dual", nil)
}

// TestHelpBeforeInstrument covers the common registration order — Help
// first, instrument second — which must not count as a kind conflict.
func TestHelpBeforeInstrument(t *testing.T) {
	reg := NewRegistry()
	reg.Help("pre_total", "declared before the counter exists")
	reg.Counter("pre_total", nil).Inc()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# TYPE pre_total counter") {
		t.Fatalf("exposition lost the adopted kind:\n%s", buf.String())
	}
}

// TestPrometheusGolden locks the exact exposition bytes for a registry with
// every metric kind, label escaping, and a histogram. Regenerate with
// go test ./internal/obs -run Golden -update.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()

	reg.Help("wp_requests_total", "Requests served.")
	reg.Counter("wp_requests_total", Labels{"entity": "broker", "op": "deposit"}).Add(7)
	reg.Counter("wp_requests_total", Labels{"entity": "peer-1", "op": "transfer"}).Add(3)

	reg.Help("wp_open_conns", "Open connections.")
	reg.Gauge("wp_open_conns", nil).Set(4)

	reg.Help("wp_escape_total", "Label escaping corner cases.")
	reg.Counter("wp_escape_total", Labels{"path": `a"b\c` + "\n"}).Inc()

	reg.Help("wp_cache_total", "Read through a CounterFunc.")
	reg.CounterFunc("wp_cache_total", Labels{"outcome": "hit"}, func() int64 { return 42 })
	reg.GaugeFunc("wp_load", nil, func() float64 { return 2.5 })

	reg.Help("wp_op_seconds", "Operation latency.")
	h := reg.Histogram("wp_op_seconds", Labels{"op": "purchase"}, []float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(50 * time.Millisecond)
	h.Observe(500 * time.Millisecond)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "expo.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestRegistryRaceHammer runs writers of every kind, dynamic series
// creation, span recording, and concurrent scrapes together; its value is
// under -race, where any unsynchronized access in the registry shows up.
func TestRegistryRaceHammer(t *testing.T) {
	reg := NewRegistry()
	tr := reg.Tracer()
	const writers, iters = 8, 2000
	var done atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer done.Add(1)
			c := reg.Counter("hammer_total", Labels{"w": fmt.Sprint(w % 4)})
			g := reg.Gauge("hammer_gauge", nil)
			h := reg.Histogram("hammer_seconds", Labels{"w": fmt.Sprint(w % 2)}, nil)
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(time.Duration(i%1000) * time.Microsecond)
				// Dynamic get-or-create on a hot path, as instr.hist does.
				reg.Counter("hammer_dyn_total", Labels{"k": fmt.Sprint(i % 8)}).Inc()
				sp := tr.StartSpan("hammer", "op")
				if i%3 == 0 {
					sp.End(errors.New("boom"))
				} else {
					sp.End(nil)
				}
			}
		}(w)
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for done.Load() < writers {
				if err := reg.WritePrometheus(io.Discard); err != nil {
					t.Error(err)
					return
				}
				tr.Spans()
			}
		}()
	}
	wg.Wait()
	var total int64
	for w := 0; w < 4; w++ {
		total += reg.Counter("hammer_total", Labels{"w": fmt.Sprint(w)}).Value()
	}
	if total != writers*iters {
		t.Fatalf("hammer_total sum = %d, want %d", total, writers*iters)
	}
	if got := reg.Histogram("hammer_seconds", Labels{"w": "0"}, nil).Count(); got != writers/2*iters {
		t.Fatalf("histogram count = %d, want %d", got, writers/2*iters)
	}
}

// TestSpanNesting proves same-goroutine parentage: a span opened while
// another is active becomes its child, and ending the child restores the
// parent as the ambient context.
func TestSpanNesting(t *testing.T) {
	tr := NewTracer(16)
	parent := tr.StartSpan("peer", "transfer")
	child := tr.StartSpan("peer", "sign")
	child.End(nil)
	mid, _ := Current()
	parent.End(nil)
	after, _ := Current()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	// Ring records in End order: child first.
	if spans[0].ParentID != spans[1].SpanID {
		t.Fatalf("child parent = %q, want %q", spans[0].ParentID, spans[1].SpanID)
	}
	if spans[0].TraceID != spans[1].TraceID {
		t.Fatal("nested spans must share a trace")
	}
	if mid != spans[1].TraceID {
		t.Fatal("ending the child must restore the parent context")
	}
	if after != "" {
		t.Fatalf("ending the root must clear the context, got %q", after)
	}
}

// TestAdoptPropagatesRemoteParent models the transport server side: Adopt
// installs a remote trace identity, spans started under it join that trace,
// and release restores the prior (empty) context.
func TestAdoptPropagatesRemoteParent(t *testing.T) {
	tr := NewTracer(16)
	release := Adopt("remotetrace", "remotespan")
	sp := tr.StartSpan("broker", "serve-deposit")
	sp.End(nil)
	release()
	if id, _ := Current(); id != "" {
		t.Fatalf("release must clear adopted context, got %q", id)
	}
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(spans))
	}
	if spans[0].TraceID != "remotetrace" || spans[0].ParentID != "remotespan" {
		t.Fatalf("span = %+v, want adopted trace/parent", spans[0])
	}
}

// TestTracerRingBound proves the ring drops oldest-first at capacity.
func TestTracerRingBound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		sp := tr.StartSpan("e", fmt.Sprintf("op-%d", i))
		sp.End(nil)
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d, want 4", len(spans))
	}
	for i, s := range spans {
		if want := fmt.Sprintf("op-%d", 6+i); s.Op != want {
			t.Fatalf("spans[%d].Op = %q, want %q (oldest-first)", i, s.Op, want)
		}
	}
}

// TestSpanErrRecorded pins that failures land in the record.
func TestSpanErrRecorded(t *testing.T) {
	tr := NewTracer(4)
	sp := tr.StartSpan("e", "op")
	sp.End(errors.New("kaput"))
	if got := tr.Spans()[0].Err; got != "kaput" {
		t.Fatalf("Err = %q", got)
	}
}

// TestAdminEndpoints boots the admin server on a loopback port and walks
// /metrics, /healthz (healthy and unhealthy), and /traces.
func TestAdminEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("admin_smoke_total", nil).Inc()
	sp := reg.Tracer().StartSpan("e", "smoke")
	sp.End(nil)
	healthy := atomic.Bool{}
	healthy.Store(true)
	reg.RegisterHealth("flip", func() (string, error) {
		if healthy.Load() {
			return "ok", nil
		}
		return "", errors.New("down")
	})

	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "admin_smoke_total 1") {
		t.Fatalf("/metrics = %d\n%s", code, body)
	}
	code, body = get("/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"healthy":true`) {
		t.Fatalf("healthy /healthz = %d %s", code, body)
	}
	healthy.Store(false)
	code, body = get("/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy /healthz = %d %s", code, body)
	}
	code, body = get("/traces")
	if code != http.StatusOK {
		t.Fatalf("/traces = %d", code)
	}
	var recs []SpanRecord
	if err := json.Unmarshal([]byte(body), &recs); err != nil {
		t.Fatalf("/traces not JSON: %v\n%s", err, body)
	}
	if len(recs) != 1 || recs[0].Op != "smoke" {
		t.Fatalf("/traces = %+v", recs)
	}
	// Filtered to a bogus trace ID: empty array, still valid JSON.
	code, body = get("/traces?trace=nosuch")
	if code != http.StatusOK || strings.TrimSpace(body) != "[]" {
		t.Fatalf("filtered /traces = %d %q", code, body)
	}
}
