package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
)

// canonLabels renders a label set into its canonical exposition form:
// `k1="v1",k2="v2"` with keys sorted and values escaped, or "" for an empty
// set. The canonical string doubles as the series map key.
func canonLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue applies the Prometheus text-format escaping rules for
// label values: backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// mergeLabels appends extra to a canonical label string (used for the
// histogram `le` label, which must come after the series labels).
func mergeLabels(canon, extra string) string {
	if canon == "" {
		return extra
	}
	if extra == "" {
		return canon
	}
	return canon + "," + extra
}

// formatFloat renders a metric value the way Prometheus expects: shortest
// representation that round-trips, with +Inf/-Inf spelled out.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, each preceded
// by optional # HELP and mandatory # TYPE lines, histogram series expanded
// into cumulative _bucket{le=...} lines plus _sum and _count. Safe to call
// concurrently with metric writers; values within one scrape may be
// mutually skewed by in-flight updates, which the format permits.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)

	r.mu.Lock()
	names := append([]string(nil), r.names...)
	sort.Strings(names)
	fams := make([]*family, 0, len(names))
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	for _, f := range fams {
		r.mu.Lock()
		help := f.help
		kind := f.kind
		keys := append([]string(nil), f.order...)
		sort.Strings(keys)
		sers := make([]*series, 0, len(keys))
		for _, k := range keys {
			sers = append(sers, f.series[k])
		}
		r.mu.Unlock()
		if len(sers) == 0 {
			continue
		}
		if help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(strings.ReplaceAll(strings.ReplaceAll(help, "\\", `\\`), "\n", `\n`))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(kind.promType())
		bw.WriteByte('\n')
		for _, s := range sers {
			switch kind {
			case kindCounter:
				writeSample(bw, f.name, "", s.labels, formatFloat(float64(s.c.Value())))
			case kindGauge:
				writeSample(bw, f.name, "", s.labels, formatFloat(float64(s.g.Value())))
			case kindCounterFunc, kindGaugeFunc:
				if s.fn != nil {
					writeSample(bw, f.name, "", s.labels, formatFloat(sanitizeFloat(s.fn())))
				}
			case kindHistogram:
				cum, count, sum := s.h.snapshot()
				for i, bound := range s.h.bounds {
					le := `le="` + formatFloat(bound) + `"`
					writeSample(bw, f.name, "_bucket", mergeLabels(s.labels, le), strconv.FormatInt(cum[i], 10))
				}
				writeSample(bw, f.name, "_bucket", mergeLabels(s.labels, `le="+Inf"`), strconv.FormatInt(cum[len(cum)-1], 10))
				writeSample(bw, f.name, "_sum", s.labels, formatFloat(sum))
				writeSample(bw, f.name, "_count", s.labels, strconv.FormatInt(count, 10))
			}
		}
	}
	return bw.Flush()
}

func writeSample(bw *bufio.Writer, name, suffix, labels, value string) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if labels != "" {
		bw.WriteByte('{')
		bw.WriteString(labels)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}
