package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// Protocol tracing without context.Context: the bus.Handler signature
// (func(from Address, msg any)) predates the obs subsystem and threads no
// context, so trace identity rides on goroutine-local storage keyed by
// goroutine identity (gkey — the g pointer on amd64/arm64, the parsed
// goroutine ID elsewhere). The in-memory bus runs handlers synchronously on
// the caller's goroutine, so a span started by a payer is automatically the
// parent of spans the owner and broker start while serving the same call.
// Across tcpbus the identity crosses the wire in two optional envelope
// fields (TraceID/SpanID) — Inject reads the caller's ambient context into
// the envelope, Adopt installs it on the serving goroutine.
//
// The whole mechanism is gated on a package-level atomic flag that flips on
// the first StartSpan/Adopt: until then Inject is one atomic load and the
// goroutine lookup never runs, so programs that never trace pay nothing.

// traceCtx is the ambient trace identity of one goroutine.
type traceCtx struct {
	traceID string
	spanID  string
}

// glsShards spreads the goroutine→context map over independently locked
// shards so concurrent traced goroutines don't serialize on one mutex.
const glsShards = 64

type glsShard struct {
	mu sync.Mutex
	m  map[uintptr]traceCtx
}

var gls [glsShards]*glsShard

// tracingActive flips to true on the first StartSpan/Adopt and never
// resets. While false, Inject and Current return empty without touching
// the gls — the only cost tracing imposes on a program that never uses it.
var tracingActive atomic.Bool

func init() {
	for i := range gls {
		gls[i] = &glsShard{m: make(map[uintptr]traceCtx)}
	}
}

// shardFor picks a lock shard for a goroutine key. Keys are g pointers on
// the fast-path architectures, so the low bits carry no entropy
// (allocation alignment); Fibonacci hashing spreads them before reducing.
func shardFor(id uintptr) *glsShard {
	return gls[(uint64(id)*0x9e3779b97f4a7c15)>>58&(glsShards-1)]
}

func getCtx(id uintptr) (traceCtx, bool) {
	s := shardFor(id)
	s.mu.Lock()
	c, ok := s.m[id]
	s.mu.Unlock()
	return c, ok
}

func setCtx(id uintptr, c traceCtx) {
	s := shardFor(id)
	s.mu.Lock()
	if c.traceID == "" {
		delete(s.m, id) // empty context = not traced; drop the entry so the map can't leak
	} else {
		s.m[id] = c
	}
	s.mu.Unlock()
}

// Current returns the goroutine's ambient trace and span IDs ("" when
// untraced). Cheap when tracing has never been activated.
func Current() (traceID, spanID string) {
	if !tracingActive.Load() {
		return "", ""
	}
	c, _ := getCtx(gkey())
	return c.traceID, c.spanID
}

// Inject returns the identity a transport should stamp on an outgoing
// message envelope. Identical to Current; the name marks intent at call
// sites in tcpbus.
func Inject() (traceID, spanID string) { return Current() }

// Adopt installs a remote trace identity on the current goroutine and
// returns a release function that MUST be called (on the same goroutine)
// when the handler returns. Transports call it when an incoming envelope
// carries a trace ID, so spans started while serving the request join the
// caller's trace.
func Adopt(traceID, spanID string) (release func()) {
	if traceID == "" {
		return func() {}
	}
	tracingActive.Store(true)
	id := gkey()
	prev, had := getCtx(id)
	setCtx(id, traceCtx{traceID: traceID, spanID: spanID})
	return func() {
		if had {
			setCtx(id, prev)
		} else {
			setCtx(id, traceCtx{})
		}
	}
}

// ID generation: an 8-byte random process base (crypto/rand, drawn once)
// plus an atomic counter, hex-encoded. Unique across processes with
// overwhelming probability, and allocation-light per span.
var (
	idBase [8]byte
	idInit sync.Once
	idCtr  atomic.Uint64
)

func newID() string {
	idInit.Do(func() {
		if _, err := rand.Read(idBase[:]); err != nil {
			// Fall back to a counter-only scheme; uniqueness within the
			// process still holds, which is all single-process tests need.
			binary.BigEndian.PutUint64(idBase[:], 0x9e3779b97f4a7c15)
		}
	})
	var b [16]byte
	copy(b[:8], idBase[:])
	binary.BigEndian.PutUint64(b[8:], idCtr.Add(1))
	return hex.EncodeToString(b[:])
}

// SpanRecord is the completed form of a span, as stored in the ring and
// serialized by /traces.
type SpanRecord struct {
	TraceID  string        `json:"trace_id"`
	SpanID   string        `json:"span_id"`
	ParentID string        `json:"parent_id,omitempty"`
	Entity   string        `json:"entity"`
	Op       string        `json:"op"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Err      string        `json:"err,omitempty"`
}

// Span is an in-flight traced operation. Start and End must run on the
// same goroutine (the bus model already guarantees this: a handler serves
// one request start-to-finish on one goroutine). Nil-safe: End on a nil
// span is a no-op.
type Span struct {
	tracer   *Tracer
	rec      SpanRecord
	gid      uintptr
	prev     traceCtx
	hadPrev  bool
	finished bool
}

// DefaultTraceCap bounds the in-memory span ring: new records overwrite
// the oldest once full, so a long-running daemon's trace memory stays
// constant while the freshest operations remain inspectable.
const DefaultTraceCap = 4096

// Tracer records completed spans into a bounded ring.
type Tracer struct {
	mu   sync.Mutex
	ring []SpanRecord
	next int
	n    int
}

// NewTracer returns a tracer retaining the last cap spans (DefaultTraceCap
// if cap <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{ring: make([]SpanRecord, capacity)}
}

// StartSpan opens a span for op on behalf of entity. If the goroutine
// already carries a trace identity (a parent span on this goroutine, or an
// Adopt from an incoming envelope) the new span joins that trace as a
// child; otherwise it roots a fresh trace. Returns nil (a no-op span) on a
// nil tracer.
func (t *Tracer) StartSpan(entity, op string) *Span {
	if t == nil {
		return nil
	}
	tracingActive.Store(true)
	id := gkey()
	prev, had := getCtx(id)
	sp := &Span{
		tracer:  t,
		gid:     id,
		prev:    prev,
		hadPrev: had,
		rec: SpanRecord{
			SpanID: newID(),
			Entity: entity,
			Op:     op,
			Start:  time.Now(),
		},
	}
	if prev.traceID != "" {
		sp.rec.TraceID = prev.traceID
		sp.rec.ParentID = prev.spanID
	} else {
		sp.rec.TraceID = newID()
	}
	setCtx(id, traceCtx{traceID: sp.rec.TraceID, spanID: sp.rec.SpanID})
	return sp
}

// End closes the span, restores the goroutine's previous trace context, and
// records the result. err may be nil. Idempotent; no-op on a nil span.
func (s *Span) End(err error) {
	if s == nil || s.finished {
		return
	}
	s.finished = true
	s.rec.Duration = time.Since(s.rec.Start)
	if err != nil {
		s.rec.Err = err.Error()
	}
	if s.hadPrev {
		setCtx(s.gid, s.prev)
	} else {
		setCtx(s.gid, traceCtx{})
	}
	s.tracer.record(s.rec)
}

// TraceID reports the span's trace identity ("" on nil), letting callers
// remember which trace an operation belonged to (whopayd uses it to print
// the demo transfer's trace).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.rec.TraceID
}

func (t *Tracer) record(rec SpanRecord) {
	t.mu.Lock()
	t.ring[t.next] = rec
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
}

// Spans returns the retained records, oldest first.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, t.n)
	if t.n == len(t.ring) {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring[:t.n]...)
	}
	return out
}

// Trace returns the retained spans belonging to one trace, oldest first.
func (t *Tracer) Trace(traceID string) []SpanRecord {
	var out []SpanRecord
	for _, r := range t.Spans() {
		if r.TraceID == traceID {
			out = append(out, r)
		}
	}
	return out
}
