package central

import (
	"testing"

	"whopay/internal/bus"
	"whopay/internal/core"
	"whopay/internal/sig"
)

type fixture struct {
	net    *bus.Memory
	scheme sig.Scheme
	dir    *core.Directory
	judge  *core.Judge
	broker *Broker
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{net: bus.NewMemory(), scheme: sig.NewNull(4000), dir: core.NewDirectory()}
	judge, err := core.NewJudge(f.scheme)
	if err != nil {
		t.Fatal(err)
	}
	f.judge = judge
	broker, err := NewBroker(BrokerConfig{
		Network: f.net, Addr: "central-broker", Scheme: f.scheme,
		Directory: f.dir, GroupPub: judge.GroupPublicKey(),
	})
	if err != nil {
		t.Fatal(err)
	}
	f.broker = broker
	t.Cleanup(func() { broker.Close() })
	return f
}

func (f *fixture) addClient(t *testing.T, id string) *Client {
	t.Helper()
	c, err := NewClient(id, f.net, f.scheme, nil, f.dir, "central-broker", f.judge)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestCentralLifecycle(t *testing.T) {
	f := newFixture(t)
	a := f.addClient(t, "alice")
	b := f.addClient(t, "bob")
	id, err := a.Buy(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Pay(b.Addr(), id); err != nil {
		t.Fatal(err)
	}
	held := b.Held()
	if len(held) != 1 || held[0] != id {
		t.Fatalf("bob holds %v", held)
	}
	if err := b.Redeem(id, "bob-ref"); err != nil {
		t.Fatal(err)
	}
	if f.broker.Balance("bob-ref") != 1 {
		t.Fatalf("balance = %d", f.broker.Balance("bob-ref"))
	}
}

// TestCentralBrokerServicesAllTransfers: the defining property — and flaw
// — of the centralized design.
func TestCentralBrokerServicesAllTransfers(t *testing.T) {
	f := newFixture(t)
	a := f.addClient(t, "alice")
	b := f.addClient(t, "bob")
	c := f.addClient(t, "carol")
	const n = 5
	for i := 0; i < n; i++ {
		id, err := a.Buy(1)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Pay(b.Addr(), id); err != nil {
			t.Fatal(err)
		}
		if err := b.Pay(c.Addr(), id); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.broker.Ops().Get(core.OpTransfer); got != 2*n {
		t.Fatalf("broker transfers = %d, want %d (all of them)", got, 2*n)
	}
}

// TestCentralDoubleSpendRejected: the ledger's sequence check stops stale
// holders.
func TestCentralDoubleSpendRejected(t *testing.T) {
	f := newFixture(t)
	a := f.addClient(t, "alice")
	b := f.addClient(t, "bob")
	c := f.addClient(t, "carol")
	id, err := a.Buy(1)
	if err != nil {
		t.Fatal(err)
	}
	// Keep a's holder state, pay b, then replay toward c.
	a.mu.Lock()
	stale := a.held[id]
	a.mu.Unlock()
	if err := a.Pay(b.Addr(), id); err != nil {
		t.Fatal(err)
	}
	a.mu.Lock()
	a.held[id] = stale
	a.mu.Unlock()
	if err := a.Pay(c.Addr(), id); err == nil {
		t.Fatal("double spend accepted")
	}
}

// TestCentralFairness: the judge opens a move's group signature.
func TestCentralFairness(t *testing.T) {
	f := newFixture(t)
	a := f.addClient(t, "alice")
	b := f.addClient(t, "bob")
	id, err := a.Buy(1)
	if err != nil {
		t.Fatal(err)
	}
	// Build the move request by hand so we can open its signature.
	a.mu.Lock()
	cc := a.held[id]
	a.mu.Unlock()
	raw, err := a.ep.Call(b.Addr(), receiveKey{Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	rk := raw.(receivedKey)
	msg := moveMessage(cc.c.Pub, rk.HolderPub, cc.seq)
	gs, err := a.member.Sign(a.suite, msg)
	if err != nil {
		t.Fatal(err)
	}
	identity, err := f.judge.Open(msg, gs)
	if err != nil {
		t.Fatal(err)
	}
	if identity != "alice" {
		t.Fatalf("judge opened %q", identity)
	}
}
