// Package central implements a centralized anonymous transfer system in
// the style of Burk–Pfitzmann / Vo–Hohenberger (paper Sections 1 and 7):
// coins are public keys and holders are anonymous one-time keys exactly as
// in WhoPay, but *every* transfer goes through the central broker. It is
// the paper's anonymity baseline and scalability anti-pattern: secure,
// anonymous, fair — and the broker handles 100% of the transfer load.
//
// The implementation reuses WhoPay's coin and group-signature substrates so
// the only variable in comparisons is where transfers are serviced.
package central

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"whopay/internal/bus"
	"whopay/internal/coin"
	"whopay/internal/core"
	"whopay/internal/groupsig"
	"whopay/internal/sig"
)

// Errors returned by the central system.
var (
	ErrUnknownCoin = errors.New("central: unknown coin")
	ErrNotHolder   = errors.New("central: requester is not the holder")
	ErrBadRequest  = errors.New("central: bad request")
	ErrSpent       = errors.New("central: coin already deposited")
)

// Wire messages.
type (
	// BuyRequest purchases a coin; the broker binds it to the buyer's
	// initial holder key immediately (there is no separate issue step:
	// with a central ledger, owner and broker are the same entity).
	BuyRequest struct {
		Buyer     string
		HolderPub sig.PublicKey
		Value     int64
		Sig       []byte
	}
	// BuyResponse returns the minted coin.
	BuyResponse struct{ Coin coin.Coin }
	// MoveRequest re-binds a coin to a new holder key. Signed by the
	// current holder key plus a group signature — anonymous, openable.
	MoveRequest struct {
		CoinPub   sig.PublicKey
		NewHolder sig.PublicKey
		Seq       uint64
		HolderSig []byte
		GroupSig  groupsig.Signature
	}
	// MoveResponse acknowledges with the new sequence number.
	MoveResponse struct{ Seq uint64 }
	// RedeemRequest deposits a coin to a payout reference.
	RedeemRequest struct {
		CoinPub   sig.PublicKey
		PayoutRef string
		Seq       uint64
		HolderSig []byte
		GroupSig  groupsig.Signature
	}
	// RedeemResponse confirms the amount.
	RedeemResponse struct{ Amount int64 }
)

func moveMessage(coinPub, newHolder sig.PublicKey, seq uint64) []byte {
	out := []byte("central/move/1")
	out = append(out, coinPub...)
	out = append(out, newHolder...)
	out = append(out, byte(seq>>56), byte(seq>>48), byte(seq>>40), byte(seq>>32), byte(seq>>24), byte(seq>>16), byte(seq>>8), byte(seq))
	return out
}

func redeemMessage(coinPub sig.PublicKey, payoutRef string, seq uint64) []byte {
	out := []byte("central/redeem/1")
	out = append(out, coinPub...)
	out = append(out, byte(len(payoutRef)))
	out = append(out, payoutRef...)
	out = append(out, byte(seq>>56), byte(seq>>48), byte(seq>>40), byte(seq>>32), byte(seq>>24), byte(seq>>16), byte(seq>>8), byte(seq))
	return out
}

type ledgerEntry struct {
	c      *coin.Coin
	holder sig.PublicKey
	seq    uint64
	spent  bool
}

// Broker is the central bank and transfer servicer.
type Broker struct {
	suite    sig.Suite
	keys     sig.KeyPair
	ep       bus.Endpoint
	dir      *core.Directory
	groupPub sig.PublicKey
	ops      core.OpCounter

	mu       sync.Mutex
	ledger   map[coin.ID]*ledgerEntry
	balances map[string]int64
}

// BrokerConfig configures the central broker.
type BrokerConfig struct {
	Network   bus.Network
	Addr      bus.Address
	Scheme    sig.Scheme
	Recorder  sig.Recorder
	Clock     core.Clock
	Directory *core.Directory
	GroupPub  sig.PublicKey
}

// NewBroker starts the central broker.
func NewBroker(cfg BrokerConfig) (*Broker, error) {
	if cfg.Network == nil || cfg.Scheme == nil || cfg.Directory == nil {
		return nil, errors.New("central: broker needs Network, Scheme and Directory")
	}
	if cfg.Addr == "" {
		cfg.Addr = "central-broker"
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	b := &Broker{
		suite:    sig.Suite{Scheme: cfg.Scheme, Rec: cfg.Recorder},
		dir:      cfg.Directory,
		groupPub: cfg.GroupPub,
		ledger:   make(map[coin.ID]*ledgerEntry),
		balances: make(map[string]int64),
	}
	keys, err := cfg.Scheme.GenerateKey()
	if err != nil {
		return nil, fmt.Errorf("central: broker keygen: %w", err)
	}
	b.keys = keys
	ep, err := cfg.Network.Listen(cfg.Addr, b.handle)
	if err != nil {
		return nil, fmt.Errorf("central: broker listen: %w", err)
	}
	b.ep = ep
	return b, nil
}

// Addr returns the broker's address.
func (b *Broker) Addr() bus.Address { return b.ep.Addr() }

// PublicKey returns the broker's key.
func (b *Broker) PublicKey() sig.PublicKey { return b.keys.Public.Clone() }

// Ops snapshots the broker's operation counts. Moves count as transfers —
// the apples-to-apples comparison with WhoPay's distributed transfers.
func (b *Broker) Ops() core.OpCounts { return b.ops.Snapshot() }

// Balance returns credits to a payout reference.
func (b *Broker) Balance(ref string) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.balances[ref]
}

// Close stops the broker.
func (b *Broker) Close() error { return b.ep.Close() }

func (b *Broker) handle(from bus.Address, msg any) (any, error) {
	switch m := msg.(type) {
	case BuyRequest:
		return b.handleBuy(m)
	case MoveRequest:
		return b.handleMove(m)
	case RedeemRequest:
		return b.handleRedeem(m)
	default:
		return nil, fmt.Errorf("%w: broker got %T", ErrBadRequest, msg)
	}
}

func (b *Broker) handleBuy(m BuyRequest) (any, error) {
	entry, ok := b.dir.Lookup(m.Buyer)
	if !ok {
		return nil, fmt.Errorf("%w: buyer %q", ErrBadRequest, m.Buyer)
	}
	msg := append([]byte("central/buy/"+m.Buyer), m.HolderPub...)
	if err := b.suite.Verify(entry.Pub, msg, m.Sig); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if m.Value <= 0 {
		return nil, fmt.Errorf("%w: bad value", ErrBadRequest)
	}
	coinKeys, err := b.suite.GenerateKey()
	if err != nil {
		return nil, err
	}
	c := &coin.Coin{Pub: coinKeys.Public, Value: m.Value}
	if c.Sig, err = b.suite.Sign(b.keys.Private, c.Message()); err != nil {
		return nil, err
	}
	b.mu.Lock()
	b.ledger[c.ID()] = &ledgerEntry{c: c, holder: m.HolderPub.Clone(), seq: 1}
	b.mu.Unlock()
	b.ops.Inc(core.OpPurchase)
	return BuyResponse{Coin: *c}, nil
}

func (b *Broker) handleMove(m MoveRequest) (any, error) {
	b.mu.Lock()
	le, ok := b.ledger[coin.ID(m.CoinPub)]
	b.mu.Unlock()
	if !ok {
		return nil, ErrUnknownCoin
	}
	if le.spent {
		return nil, ErrSpent
	}
	if m.Seq != le.seq {
		return nil, fmt.Errorf("%w: seq %d, ledger has %d", ErrNotHolder, m.Seq, le.seq)
	}
	msg := moveMessage(m.CoinPub, m.NewHolder, m.Seq)
	if err := b.suite.Verify(le.holder, msg, m.HolderSig); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotHolder, err)
	}
	if err := groupsig.Verify(b.suite, b.groupPub, msg, m.GroupSig); err != nil {
		return nil, fmt.Errorf("%w: group signature: %v", ErrBadRequest, err)
	}
	b.mu.Lock()
	le.holder = m.NewHolder.Clone()
	le.seq++
	seq := le.seq
	b.mu.Unlock()
	b.ops.Inc(core.OpTransfer)
	return MoveResponse{Seq: seq}, nil
}

func (b *Broker) handleRedeem(m RedeemRequest) (any, error) {
	b.mu.Lock()
	le, ok := b.ledger[coin.ID(m.CoinPub)]
	b.mu.Unlock()
	if !ok {
		return nil, ErrUnknownCoin
	}
	if le.spent {
		return nil, ErrSpent
	}
	if m.Seq != le.seq {
		return nil, fmt.Errorf("%w: seq mismatch", ErrNotHolder)
	}
	msg := redeemMessage(m.CoinPub, m.PayoutRef, m.Seq)
	if err := b.suite.Verify(le.holder, msg, m.HolderSig); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotHolder, err)
	}
	if err := groupsig.Verify(b.suite, b.groupPub, msg, m.GroupSig); err != nil {
		return nil, fmt.Errorf("%w: group signature: %v", ErrBadRequest, err)
	}
	b.mu.Lock()
	le.spent = true
	b.balances[m.PayoutRef] += le.c.Value
	b.mu.Unlock()
	b.ops.Inc(core.OpDeposit)
	return RedeemResponse{Amount: le.c.Value}, nil
}

// Client is a user of the central system.
type Client struct {
	id     string
	suite  sig.Suite
	keys   sig.KeyPair
	member *groupsig.MemberKey
	ep     bus.Endpoint
	broker bus.Address
	ops    core.OpCounter

	mu   sync.Mutex
	held map[coin.ID]clientCoin
}

type clientCoin struct {
	c          *coin.Coin
	holderKeys sig.KeyPair
	seq        uint64
}

// NewClient creates a central-system client enrolled with the judge.
func NewClient(id string, network bus.Network, scheme sig.Scheme, rec sig.Recorder, dir *core.Directory, brokerAddr bus.Address, judge *core.Judge) (*Client, error) {
	c := &Client{
		id:     id,
		suite:  sig.Suite{Scheme: scheme, Rec: rec},
		broker: brokerAddr,
		held:   make(map[coin.ID]clientCoin),
	}
	keys, err := scheme.GenerateKey()
	if err != nil {
		return nil, err
	}
	c.keys = keys
	member, err := judge.Enroll(id, 32)
	if err != nil {
		return nil, err
	}
	c.member = member
	addr := bus.Address("central:" + id)
	dir.Register(id, keys.Public, addr)
	ep, err := network.Listen(addr, func(from bus.Address, msg any) (any, error) {
		return c.handle(msg)
	})
	if err != nil {
		return nil, err
	}
	c.ep = ep
	return c, nil
}

// receiveKey messages let payees hand fresh holder keys to payers.
type receiveKey struct{ Value int64 }

// receivedKey answers with a fresh holder key.
type receivedKey struct{ HolderPub sig.PublicKey }

// coinHandoff completes the payment out of band of the broker: the payer
// tells the payee which coin now binds to its key.
type coinHandoff struct {
	Coin coin.Coin
	Seq  uint64
}

func (c *Client) handle(msg any) (any, error) {
	switch m := msg.(type) {
	case receiveKey:
		kp, err := c.suite.GenerateKey()
		if err != nil {
			return nil, err
		}
		c.mu.Lock()
		c.held["pending:"+coin.ID(kp.Public)] = clientCoin{holderKeys: kp}
		c.mu.Unlock()
		return receivedKey{HolderPub: kp.Public}, nil
	case coinHandoff:
		// Find the pending key this coin was moved to. In a real
		// deployment the payee verifies with the broker; here the
		// handoff carries the coin and the payee trusts but could
		// audit.
		c.mu.Lock()
		defer c.mu.Unlock()
		for k, cc := range c.held {
			if len(k) > 8 && k[:8] == "pending:" && cc.c == nil {
				cc.c = m.Coin.Clone()
				cc.seq = m.Seq
				delete(c.held, k)
				c.held[m.Coin.ID()] = cc
				return struct{}{}, nil
			}
		}
		return nil, fmt.Errorf("%w: no pending key", ErrBadRequest)
	default:
		return nil, fmt.Errorf("%w: client got %T", ErrBadRequest, msg)
	}
}

// Ops snapshots the client's operation counts.
func (c *Client) Ops() core.OpCounts { return c.ops.Snapshot() }

// Addr returns the client's address.
func (c *Client) Addr() bus.Address { return c.ep.Addr() }

// Close stops the client.
func (c *Client) Close() error { return c.ep.Close() }

// Buy purchases a coin bound to a fresh holder key.
func (c *Client) Buy(value int64) (coin.ID, error) {
	kp, err := c.suite.GenerateKey()
	if err != nil {
		return "", err
	}
	msg := append([]byte("central/buy/"+c.id), kp.Public...)
	sigBytes, err := c.suite.Sign(c.keys.Private, msg)
	if err != nil {
		return "", err
	}
	raw, err := c.ep.Call(c.broker, BuyRequest{Buyer: c.id, HolderPub: kp.Public, Value: value, Sig: sigBytes})
	if err != nil {
		return "", err
	}
	br, ok := raw.(BuyResponse)
	if !ok {
		return "", fmt.Errorf("%w: unexpected %T", ErrBadRequest, raw)
	}
	cc := br.Coin
	c.mu.Lock()
	c.held[cc.ID()] = clientCoin{c: cc.Clone(), holderKeys: kp, seq: 1}
	c.mu.Unlock()
	c.ops.Inc(core.OpPurchase)
	return cc.ID(), nil
}

// Pay moves a held coin to the payee — through the broker, always.
func (c *Client) Pay(payee bus.Address, id coin.ID) error {
	c.mu.Lock()
	cc, ok := c.held[id]
	c.mu.Unlock()
	if !ok {
		return ErrUnknownCoin
	}
	raw, err := c.ep.Call(payee, receiveKey{Value: cc.c.Value})
	if err != nil {
		return err
	}
	rk, ok := raw.(receivedKey)
	if !ok {
		return fmt.Errorf("%w: unexpected %T", ErrBadRequest, raw)
	}
	msg := moveMessage(cc.c.Pub, rk.HolderPub, cc.seq)
	holderSig, err := c.suite.Sign(cc.holderKeys.Private, msg)
	if err != nil {
		return err
	}
	gs, err := c.member.Sign(c.suite, msg)
	if err != nil {
		return err
	}
	rawMove, err := c.ep.Call(c.broker, MoveRequest{
		CoinPub: cc.c.Pub.Clone(), NewHolder: rk.HolderPub, Seq: cc.seq,
		HolderSig: holderSig, GroupSig: gs,
	})
	if err != nil {
		return err
	}
	mr, ok := rawMove.(MoveResponse)
	if !ok {
		return fmt.Errorf("%w: unexpected %T", ErrBadRequest, rawMove)
	}
	if _, err := c.ep.Call(payee, coinHandoff{Coin: *cc.c, Seq: mr.Seq}); err != nil {
		return err
	}
	c.mu.Lock()
	delete(c.held, id)
	c.mu.Unlock()
	return nil
}

// Redeem deposits a held coin.
func (c *Client) Redeem(id coin.ID, payoutRef string) error {
	c.mu.Lock()
	cc, ok := c.held[id]
	c.mu.Unlock()
	if !ok {
		return ErrUnknownCoin
	}
	msg := redeemMessage(cc.c.Pub, payoutRef, cc.seq)
	holderSig, err := c.suite.Sign(cc.holderKeys.Private, msg)
	if err != nil {
		return err
	}
	gs, err := c.member.Sign(c.suite, msg)
	if err != nil {
		return err
	}
	if _, err := c.ep.Call(c.broker, RedeemRequest{
		CoinPub: cc.c.Pub.Clone(), PayoutRef: payoutRef, Seq: cc.seq,
		HolderSig: holderSig, GroupSig: gs,
	}); err != nil {
		return err
	}
	c.mu.Lock()
	delete(c.held, id)
	c.mu.Unlock()
	c.ops.Inc(core.OpDeposit)
	return nil
}

// Held lists held coins.
func (c *Client) Held() []coin.ID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]coin.ID, 0, len(c.held))
	for id, cc := range c.held {
		if cc.c != nil {
			out = append(out, id)
		}
	}
	return out
}
