package wal

import (
	"io"
	"os"
	"path/filepath"
)

// FS is the filesystem surface the log needs. The OS implementation is the
// default; tests inject crash-injecting wrappers (internal/wal/crashfs) to
// kill the log at exact byte boundaries.
type FS interface {
	// MkdirAll creates dir and parents.
	MkdirAll(dir string) error
	// ReadDir lists the file names (not paths) in dir.
	ReadDir(dir string) ([]string, error)
	// Create opens path for writing, truncating any existing file.
	Create(path string) (File, error)
	// OpenAppend opens path for appending, creating it if absent.
	OpenAppend(path string) (File, error)
	// Open opens path read-only.
	Open(path string) (ReadFile, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
}

// File is a writable log file.
type File interface {
	io.Writer
	// Sync flushes written bytes to stable storage.
	Sync() error
	io.Closer
}

// ReadFile is a readable log file.
type ReadFile interface {
	io.Reader
	io.Closer
}

// OS returns the real-filesystem implementation.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

func (osFS) Create(path string) (File, error) {
	return os.OpenFile(filepath.Clean(path), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

func (osFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(filepath.Clean(path), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
}

func (osFS) Open(path string) (ReadFile, error) { return os.Open(filepath.Clean(path)) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(path string) error { return os.Remove(path) }
