package wal

import (
	"fmt"
	"io"
	"path/filepath"
	"strings"
)

// Replication helpers: a federation leader streams its log to followers
// frame-by-frame via Config.OnAppend; these functions cover the catch-up
// path — listing the live files with their sizes and shipping whole files
// to a follower whose mirror diverged (fresh replica, missed stream, torn
// local tail).

// SegmentName renders the on-disk name of segment seq — the name OnAppend's
// seg argument refers to.
func SegmentName(seq uint64) string { return fileName("seg-", seq) }

// FileInfo describes one live log file for replication catch-up.
type FileInfo struct {
	// Name is the file's base name (seg-XXXXXXXX.wal or snap-XXXXXXXX.wal).
	Name string
	// Size is the file's byte length.
	Size int64
}

// ListFiles lists a log directory's live files in replay order (snapshot
// first, then segments ascending), with sizes. fs nil means the OS.
func ListFiles(fs FS, dir string) ([]FileInfo, error) {
	if fs == nil {
		fs = OS()
	}
	names, err := Files(fs, dir)
	if err != nil {
		return nil, err
	}
	infos := make([]FileInfo, 0, len(names))
	for _, path := range names {
		// Files returns dir-joined paths; replication wants base names.
		size, err := fileSize(fs, path)
		if err != nil {
			return nil, err
		}
		infos = append(infos, FileInfo{Name: filepath.Base(path), Size: size})
	}
	return infos, nil
}

// ReadFileBytes returns the full contents of one log file. name must be a
// bare log file name (no path separators). fs nil means the OS.
func ReadFileBytes(fs FS, dir, name string) ([]byte, error) {
	if fs == nil {
		fs = OS()
	}
	if name != filepath.Base(name) || strings.ContainsAny(name, `/\`) {
		return nil, fmt.Errorf("wal: bad log file name %q", name)
	}
	f, err := fs.Open(filepath.Join(dir, name))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// IsLogFile reports whether name is a log segment or snapshot file name.
func IsLogFile(name string) bool {
	if _, ok := parseName(name, "seg-"); ok {
		return true
	}
	_, ok := parseName(name, "snap-")
	return ok
}

// fileSize measures a file through the FS abstraction (which has no stat).
func fileSize(fs FS, path string) (int64, error) {
	f, err := fs.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n, err := io.Copy(io.Discard, f)
	if err != nil {
		return 0, err
	}
	return n, nil
}
