package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Op is a mutation kind inside a record.
type Op byte

// Mutation operations.
const (
	OpSet    Op = 1
	OpDelete Op = 2
)

// Mutation is one table mutation. A WAL record is a batch of mutations
// applied atomically on replay: either the whole record passes its CRC and
// every mutation applies, or the record is discarded whole — multi-store
// protocol commits (mint a coin and remember its buyer; re-bind and record
// the relinquishment proof) journal as one batch so a crash can never
// half-apply them.
//
// Values are full states, not deltas, so re-applying a mutation is
// idempotent — the property that lets snapshots race concurrent appends
// (see Log.Snapshot).
type Mutation struct {
	Table string
	Op    Op
	Key   []byte
	Val   []byte // nil for OpDelete
}

// Set builds a set mutation.
func Set(table string, key, val []byte) Mutation {
	return Mutation{Table: table, Op: OpSet, Key: key, Val: val}
}

// Delete builds a delete mutation.
func Delete(table string, key []byte) Mutation {
	return Mutation{Table: table, Op: OpDelete, Key: key}
}

// EncodeBatch serializes mutations into one record payload: a uvarint count
// followed by, per mutation, uvarint-prefixed table and key, the op byte,
// and (for sets) a uvarint-prefixed value. The encoding is deterministic —
// byte-identical for equal input — so the gob round-trip suite can assert
// stability.
func EncodeBatch(muts []Mutation) []byte {
	size := binary.MaxVarintLen64
	for _, m := range muts {
		size += 2*binary.MaxVarintLen64 + len(m.Table) + len(m.Key) + 1
		if m.Op == OpSet {
			size += binary.MaxVarintLen64 + len(m.Val)
		}
	}
	buf := make([]byte, 0, size)
	buf = binary.AppendUvarint(buf, uint64(len(muts)))
	for _, m := range muts {
		buf = binary.AppendUvarint(buf, uint64(len(m.Table)))
		buf = append(buf, m.Table...)
		buf = append(buf, byte(m.Op))
		buf = binary.AppendUvarint(buf, uint64(len(m.Key)))
		buf = append(buf, m.Key...)
		if m.Op == OpSet {
			buf = binary.AppendUvarint(buf, uint64(len(m.Val)))
			buf = append(buf, m.Val...)
		}
	}
	return buf
}

// errTruncatedBatch reports a syntactically short batch payload. It should
// be unreachable for CRC-validated records; replay surfaces it as corruption.
var errTruncatedBatch = errors.New("wal: truncated mutation batch")

// DecodeBatch inverts EncodeBatch.
func DecodeBatch(p []byte) ([]Mutation, error) {
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, errTruncatedBatch
	}
	p = p[n:]
	if count > uint64(len(p)) { // each mutation takes >= 1 byte
		return nil, fmt.Errorf("wal: batch claims %d mutations in %d bytes", count, len(p))
	}
	muts := make([]Mutation, 0, count)
	readBlob := func() ([]byte, error) {
		n, w := binary.Uvarint(p)
		if w <= 0 || n > uint64(len(p)-w) {
			return nil, errTruncatedBatch
		}
		blob := p[w : w+int(n)]
		p = p[w+int(n):]
		return blob, nil
	}
	for i := uint64(0); i < count; i++ {
		table, err := readBlob()
		if err != nil {
			return nil, err
		}
		if len(p) == 0 {
			return nil, errTruncatedBatch
		}
		op := Op(p[0])
		p = p[1:]
		key, err := readBlob()
		if err != nil {
			return nil, err
		}
		m := Mutation{Table: string(table), Op: op, Key: append([]byte(nil), key...)}
		switch op {
		case OpSet:
			val, err := readBlob()
			if err != nil {
				return nil, err
			}
			m.Val = append([]byte(nil), val...)
		case OpDelete:
		default:
			return nil, fmt.Errorf("wal: unknown mutation op %d", op)
		}
		muts = append(muts, m)
	}
	return muts, nil
}
