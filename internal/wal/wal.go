// Package wal implements the write-ahead log behind WhoPay's crash-safe
// durability (DESIGN.md §10): a segmented, CRC-checksummed, length-prefixed
// append log with configurable fsync policy, segment rotation, and a
// compaction/snapshot writer.
//
// On-disk layout (one directory per entity):
//
//	seg-00000001.wal   appended records, oldest segment first
//	seg-00000002.wal   ...
//	snap-00000002.wal  compacted state covering segments <= 2
//
// Each record is framed as
//
//	[length uint32 BE][crc32(payload) uint32 BE][payload]
//
// and a snapshot is simply a compacted record stream in the same framing, so
// one reader serves both. Recovery replays the newest snapshot, then every
// later segment in order; a truncated or corrupted tail record fails its CRC
// and cleanly ends replay of that file — a torn record is discarded whole,
// never half-applied.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"whopay/internal/obs"
)

// Policy selects when appended records are fsynced to stable storage.
type Policy int

const (
	// FsyncNever leaves flushing to the OS: fastest, loses the page-cache
	// tail on power failure (not on process crash).
	FsyncNever Policy = iota
	// FsyncInterval syncs at most once per Config.Interval, bounding the
	// loss window while amortizing the fsync cost.
	FsyncInterval
	// FsyncAlways syncs after every append: an acknowledged operation is
	// durable even across power failure.
	FsyncAlways
)

// String names the policy (flag parsing in whopay-bench, results files).
func (p Policy) String() string {
	switch p {
	case FsyncNever:
		return "never"
	case FsyncInterval:
		return "interval"
	case FsyncAlways:
		return "always"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy reads a policy name as printed by String.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "never":
		return FsyncNever, nil
	case "interval":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (never|interval|always)", s)
}

// Defaults for zero Config fields.
const (
	DefaultInterval      = 100 * time.Millisecond
	DefaultSegmentSize   = 4 << 20
	DefaultSnapshotEvery = 8 << 20
)

// maxRecordLen bounds a single record so a corrupted length prefix cannot
// drive a giant allocation; anything larger is treated as a torn tail.
const maxRecordLen = 16 << 20

// frameHeaderLen is the per-record framing overhead: length + CRC.
const frameHeaderLen = 8

// Config configures a Log. Entities take a *Config knob (nil = no
// persistence, today's pure in-memory behavior).
type Config struct {
	// Dir holds the entity's segments and snapshots (created on demand).
	Dir string
	// Policy is the fsync policy (default FsyncNever).
	Policy Policy
	// Interval is the FsyncInterval period (default DefaultInterval).
	Interval time.Duration
	// SegmentSize rotates to a fresh segment once the current one exceeds
	// this many bytes (default DefaultSegmentSize).
	SegmentSize int64
	// SnapshotEvery is the live-byte threshold above which entities cut a
	// snapshot (default DefaultSnapshotEvery). The log itself never
	// decides to snapshot — the owning entity does, because only it can
	// emit its state.
	SnapshotEvery int64
	// FS overrides the filesystem (crash injection); default the OS.
	FS FS
	// Obs, when set, records WAL metrics (fsync latency, segment
	// rotations, snapshots, I/O errors) into the registry. Nil (the
	// default) keeps the log byte-identical to an uninstrumented one.
	Obs *obs.Registry
	// Entity labels this log's metrics (default: the base name of Dir).
	Entity string
	// OnAppend, when set, observes every committed record: the segment
	// sequence number, the byte offset of the frame within that segment,
	// and the raw frame bytes (header + payload) exactly as written. It is
	// invoked synchronously inside the log's write lock after the local
	// write (and fsync, per policy) succeeded, so callbacks see appends in
	// total order — the hook federation's leader uses to stream its log to
	// followers byte-for-byte. The callback must not call back into the
	// log.
	OnAppend func(seg uint64, off int64, frame []byte)
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.SegmentSize <= 0 {
		c.SegmentSize = DefaultSegmentSize
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = DefaultSnapshotEvery
	}
	if c.FS == nil {
		c.FS = OS()
	}
	return c
}

// Sub returns a copy of the config rooted at a subdirectory — how a cluster
// hands each node its own log directory under one configured root.
func (c *Config) Sub(name string) *Config {
	if c == nil {
		return nil
	}
	sub := *c
	sub.Dir = filepath.Join(c.Dir, name)
	return &sub
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Log is a segmented append log. Safe for concurrent use. Replay must
// finish before the first Append.
type Log struct {
	cfg Config
	fs  FS

	mu         sync.Mutex
	cur        File   // current append segment
	curSeq     uint64 // its sequence number
	curSize    int64  // bytes written to it (including recovered bytes)
	sealedLive int64  // valid bytes in sealed segments newer than the snapshot
	lastSync   time.Time
	closed     bool
	appended   bool // set on first Append; Replay refuses afterwards

	// replay plan captured at Open
	snapFile   string   // newest snapshot, "" if none
	replaySegs []uint64 // segments newer than the snapshot, in order

	snapBusy atomic.Bool

	// obs handles (nil-safe no-ops when Config.Obs is unset)
	mFsync     *obs.Histogram
	mRotations *obs.Counter
	mSnapshots *obs.Counter
	mErrors    *obs.Counter
}

// Open opens (or creates) the log in cfg.Dir, scanning the newest segment
// for a torn tail: a segment whose last record is incomplete or fails its
// CRC is sealed as-is and appending continues in a fresh segment, so damaged
// bytes are never written after.
func Open(cfg Config) (*Log, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("wal: Config.Dir required")
	}
	fs := cfg.FS
	if err := fs.MkdirAll(cfg.Dir); err != nil {
		return nil, fmt.Errorf("wal: mkdir: %w", err)
	}
	names, err := fs.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("wal: readdir: %w", err)
	}

	var snapSeq, maxSeq uint64
	var segs []uint64
	for _, name := range names {
		if seq, ok := parseName(name, "snap-"); ok {
			if seq > snapSeq {
				snapSeq = seq
			}
			if seq > maxSeq {
				maxSeq = seq
			}
			continue
		}
		if seq, ok := parseName(name, "seg-"); ok {
			segs = append(segs, seq)
			if seq > maxSeq {
				maxSeq = seq
			}
			continue
		}
		// Leftover temporaries from an interrupted snapshot are garbage.
		if filepath.Ext(name) == ".tmp" {
			_ = fs.Remove(filepath.Join(cfg.Dir, name))
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })

	l := &Log{cfg: cfg, fs: fs, lastSync: time.Now()}
	if cfg.Obs != nil {
		entity := cfg.Entity
		if entity == "" {
			entity = filepath.Base(cfg.Dir)
		}
		lbl := obs.Labels{"entity": entity}
		cfg.Obs.Help("whopay_wal_fsync_seconds", "Latency of WAL fsync calls.")
		cfg.Obs.Help("whopay_wal_segment_rotations_total", "WAL segments opened (including the initial one).")
		cfg.Obs.Help("whopay_wal_snapshots_total", "WAL snapshots successfully installed.")
		cfg.Obs.Help("whopay_wal_errors_total", "WAL write/sync failures.")
		l.mFsync = cfg.Obs.Histogram("whopay_wal_fsync_seconds", lbl, nil)
		l.mRotations = cfg.Obs.Counter("whopay_wal_segment_rotations_total", lbl)
		l.mSnapshots = cfg.Obs.Counter("whopay_wal_snapshots_total", lbl)
		l.mErrors = cfg.Obs.Counter("whopay_wal_errors_total", lbl)
	}
	if snapSeq > 0 {
		l.snapFile = filepath.Join(cfg.Dir, fileName("snap-", snapSeq))
	}
	// Segments at or below the snapshot are superseded (normally deleted
	// when the snapshot was cut; a crash mid-cleanup can leave them).
	for _, seq := range segs {
		if seq > snapSeq {
			l.replaySegs = append(l.replaySegs, seq)
		}
	}

	if n := len(l.replaySegs); n > 0 {
		// Size every live segment (liveSize drives snapshot thresholds)
		// and check the newest for a torn tail.
		for i, seq := range l.replaySegs {
			valid, clean, err := scanFile(fs, filepath.Join(cfg.Dir, fileName("seg-", seq)), nil)
			if err != nil {
				return nil, err
			}
			last := i == n-1
			if last && clean {
				f, err := fs.OpenAppend(filepath.Join(cfg.Dir, fileName("seg-", seq)))
				if err != nil {
					return nil, fmt.Errorf("wal: reopen segment: %w", err)
				}
				l.cur, l.curSeq, l.curSize = f, seq, valid
			} else {
				l.sealedLive += valid
			}
		}
	}
	if l.cur == nil {
		if err := l.rotateLocked(maxSeq + 1); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// Replay streams every durable record — newest snapshot first, then later
// segments in order — to fn. It must run before the first Append. A record
// that fails its CRC ends replay of that file (the torn tail discarded as a
// unit); fn returning an error aborts the replay.
func (l *Log) Replay(fn func(payload []byte) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.appended {
		l.mu.Unlock()
		return errors.New("wal: Replay after Append")
	}
	snap, segs := l.snapFile, append([]uint64(nil), l.replaySegs...)
	dir := l.cfg.Dir
	l.mu.Unlock()

	if snap != "" {
		if _, _, err := scanFile(l.fs, snap, fn); err != nil {
			return err
		}
	}
	for _, seq := range segs {
		if _, _, err := scanFile(l.fs, filepath.Join(dir, fileName("seg-", seq)), fn); err != nil {
			return err
		}
	}
	return nil
}

// Append frames payload as one record and writes it, rotating segments and
// syncing per the configured policy. The record is durable per the policy
// when Append returns.
func (l *Log) Append(payload []byte) error {
	if len(payload) > maxRecordLen {
		return fmt.Errorf("wal: record of %d bytes exceeds max %d", len(payload), maxRecordLen)
	}
	buf := make([]byte, frameHeaderLen+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[frameHeaderLen:], payload)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.appended = true
	seg, off := l.curSeq, l.curSize
	if _, err := l.cur.Write(buf); err != nil {
		l.mErrors.Inc()
		return fmt.Errorf("wal: append: %w", err)
	}
	l.curSize += int64(len(buf))
	if err := l.syncLocked(false); err != nil {
		return err
	}
	if l.cfg.OnAppend != nil {
		l.cfg.OnAppend(seg, off, buf)
	}
	if l.curSize >= l.cfg.SegmentSize {
		if err := l.sealLocked(); err != nil {
			return err
		}
		if err := l.rotateLocked(l.curSeq + 1); err != nil {
			return err
		}
	}
	return nil
}

// Sync forces an fsync of the current segment regardless of policy (epoch
// fences, pre-delivery intents).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked(true)
}

// LiveSize returns the bytes of record data not yet covered by a snapshot —
// the replay cost of a crash right now. Entities compare it against
// Config.SnapshotEvery.
func (l *Log) LiveSize() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sealedLive + l.curSize
}

// SnapshotDue reports whether LiveSize has crossed the snapshot threshold
// and no snapshot is already in flight.
func (l *Log) SnapshotDue() bool {
	return l.LiveSize() >= l.cfg.SnapshotEvery && !l.snapBusy.Load()
}

// Snapshot compacts the log: it seals the current segment, asks emit to
// write the entity's full state as records (emit receives an append
// function using the standard framing), and atomically installs the result
// as the new replay root, deleting the segments it covers.
//
// emit runs without the log lock held, so entities may read their stores
// (which journal into this log on other goroutines) freely; mutations racing
// the state read land in the post-rotation segment and are re-applied on
// replay, which is safe because every record carries a full value (set) or a
// tombstone (delete) — re-application is idempotent.
func (l *Log) Snapshot(emit func(app func(payload []byte) error) error) error {
	if !l.snapBusy.CompareAndSwap(false, true) {
		return nil // one at a time; the next threshold check retries
	}
	defer l.snapBusy.Store(false)

	// Phase 1 (locked): seal and rotate so the snapshot has a stable cover
	// point — everything in segments <= snapSeq.
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if err := l.sealLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	snapSeq := l.curSeq
	sealedBytes := l.sealedLive
	covered := append([]uint64(nil), l.replaySegs...)
	oldSnap := l.snapFile
	if err := l.rotateLocked(snapSeq + 1); err != nil {
		l.mu.Unlock()
		return err
	}
	l.mu.Unlock()

	// Phase 2 (unlocked): stream state into a temporary file and fsync it
	// before the rename — a crash mid-write leaves only ignorable garbage.
	tmp := filepath.Join(l.cfg.Dir, fileName("snap-", snapSeq)+".tmp")
	f, err := l.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: snapshot create: %w", err)
	}
	app := func(payload []byte) error {
		if len(payload) > maxRecordLen {
			return fmt.Errorf("wal: snapshot record of %d bytes exceeds max %d", len(payload), maxRecordLen)
		}
		buf := make([]byte, frameHeaderLen+len(payload))
		binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
		binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
		copy(buf[frameHeaderLen:], payload)
		_, err := f.Write(buf)
		return err
	}
	if err := emit(app); err != nil {
		_ = f.Close()
		_ = l.fs.Remove(tmp)
		return fmt.Errorf("wal: snapshot emit: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: snapshot close: %w", err)
	}
	final := filepath.Join(l.cfg.Dir, fileName("snap-", snapSeq))
	if err := l.fs.Rename(tmp, final); err != nil {
		return fmt.Errorf("wal: snapshot install: %w", err)
	}

	// Phase 3 (locked): the snapshot is the new replay root; covered
	// segments and the previous snapshot are garbage.
	l.mu.Lock()
	l.snapFile = final
	live := l.replaySegs[:0]
	for _, seq := range l.replaySegs {
		if seq > snapSeq {
			live = append(live, seq)
		}
	}
	l.replaySegs = live
	l.sealedLive -= sealedBytes
	l.mu.Unlock()
	for _, seq := range covered {
		_ = l.fs.Remove(filepath.Join(l.cfg.Dir, fileName("seg-", seq)))
	}
	if oldSnap != "" && oldSnap != final {
		_ = l.fs.Remove(oldSnap)
	}
	l.mSnapshots.Inc()
	return nil
}

// Close syncs and closes the current segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.cur != nil {
		if err := l.cur.Sync(); err != nil {
			_ = l.cur.Close()
			return err
		}
		return l.cur.Close()
	}
	return nil
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.cfg.Dir }

// syncLocked applies the fsync policy; force bypasses it.
func (l *Log) syncLocked(force bool) error {
	switch {
	case force, l.cfg.Policy == FsyncAlways:
	case l.cfg.Policy == FsyncInterval && time.Since(l.lastSync) >= l.cfg.Interval:
	default:
		return nil
	}
	t0 := l.mFsync.Start()
	if err := l.cur.Sync(); err != nil {
		l.mErrors.Inc()
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.mFsync.ObserveSince(t0)
	l.lastSync = time.Now()
	return nil
}

// sealLocked syncs and closes the current segment (it stays replayable) and
// moves its bytes into the sealed-live tally.
func (l *Log) sealLocked() error {
	if l.cur == nil {
		return nil
	}
	if err := l.cur.Sync(); err != nil {
		return fmt.Errorf("wal: seal sync: %w", err)
	}
	if err := l.cur.Close(); err != nil {
		return fmt.Errorf("wal: seal close: %w", err)
	}
	l.sealedLive += l.curSize
	l.curSize = 0
	l.cur = nil
	return nil
}

// rotateLocked opens a fresh segment with the given sequence number.
func (l *Log) rotateLocked(seq uint64) error {
	f, err := l.fs.Create(filepath.Join(l.cfg.Dir, fileName("seg-", seq)))
	if err != nil {
		l.mErrors.Inc()
		return fmt.Errorf("wal: new segment: %w", err)
	}
	l.cur, l.curSeq, l.curSize = f, seq, 0
	l.replaySegs = append(l.replaySegs, seq)
	l.mRotations.Inc()
	return nil
}

// fileName formats prefix + zero-padded sequence.
func fileName(prefix string, seq uint64) string { return fmt.Sprintf("%s%08d.wal", prefix, seq) }

// parseName inverts fileName.
func parseName(name, prefix string) (uint64, bool) {
	if len(name) != len(prefix)+8+4 || name[:len(prefix)] != prefix || name[len(name)-4:] != ".wal" {
		return 0, false
	}
	var seq uint64
	for _, c := range name[len(prefix) : len(name)-4] {
		if c < '0' || c > '9' {
			return 0, false
		}
		seq = seq*10 + uint64(c-'0')
	}
	return seq, true
}

// scanFile reads records from path, calling fn (when non-nil) per valid
// payload. It returns the byte count of valid records and whether the file
// ended exactly at a record boundary (clean). A short or CRC-failing tail is
// not an error — it is the torn write recovery exists for.
func scanFile(fs FS, path string, fn func(payload []byte) error) (valid int64, clean bool, err error) {
	f, err := fs.Open(path)
	if err != nil {
		return 0, false, fmt.Errorf("wal: open %s: %w", path, err)
	}
	defer f.Close()
	var header [frameHeaderLen]byte
	for {
		if _, err := io.ReadFull(f, header[:]); err != nil {
			return valid, err == io.EOF, nil
		}
		length := binary.BigEndian.Uint32(header[0:4])
		sum := binary.BigEndian.Uint32(header[4:8])
		if length > maxRecordLen {
			return valid, false, nil // corrupted length: torn tail
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return valid, false, nil // short payload: torn tail
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return valid, false, nil // corrupted payload: discard whole record
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return valid, false, err
			}
		}
		valid += frameHeaderLen + int64(length)
	}
}

// Files returns the replay-relevant files of dir in replay order (newest
// snapshot first, then later segments) — test and tooling surface.
func Files(fs FS, dir string) ([]string, error) {
	if fs == nil {
		fs = OS()
	}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var snapSeq uint64
	var segs []uint64
	for _, name := range names {
		if seq, ok := parseName(name, "snap-"); ok && seq > snapSeq {
			snapSeq = seq
		}
		if seq, ok := parseName(name, "seg-"); ok {
			segs = append(segs, seq)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	var out []string
	if snapSeq > 0 {
		out = append(out, filepath.Join(dir, fileName("snap-", snapSeq)))
	}
	for _, seq := range segs {
		if seq > snapSeq {
			out = append(out, filepath.Join(dir, fileName("seg-", seq)))
		}
	}
	return out, nil
}

// RecordOffsets returns the cumulative byte offsets of every valid record
// boundary in path, starting with 0 — the crash-injection sweep truncates at
// (and around) each of these.
func RecordOffsets(fs FS, path string) ([]int64, error) {
	if fs == nil {
		fs = OS()
	}
	offsets := []int64{0}
	var off int64
	_, _, err := scanFile(fs, path, func(payload []byte) error {
		off += frameHeaderLen + int64(len(payload))
		offsets = append(offsets, off)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return offsets, nil
}
