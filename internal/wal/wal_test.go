package wal_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"whopay/internal/wal"
	"whopay/internal/wal/crashfs"
)

// payload builds a distinguishable record body.
func payload(i int) []byte { return []byte(fmt.Sprintf("record-%04d-%s", i, "xxxxxxxxxxxxxxxx")) }

// replayAll opens dir and returns every replayed payload.
func replayAll(t *testing.T, cfg wal.Config) [][]byte {
	t.Helper()
	l, err := wal.Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	var got [][]byte
	if err := l.Replay(func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := wal.Config{Dir: dir, Policy: wal.FsyncAlways}
	l, err := wal.Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := l.Append(payload(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got := replayAll(t, cfg)
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	for i, p := range got {
		if !bytes.Equal(p, payload(i)) {
			t.Fatalf("record %d = %q, want %q", i, p, payload(i))
		}
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	cfg := wal.Config{Dir: dir, SegmentSize: 128} // tiny: rotate every few records
	l, err := wal.Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		if err := l.Append(payload(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	files, err := wal.Files(nil, dir)
	if err != nil {
		t.Fatalf("Files: %v", err)
	}
	if len(files) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %v", files)
	}
	got := replayAll(t, cfg)
	if len(got) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(got), n)
	}
}

func TestReopenAppendsContinue(t *testing.T) {
	dir := t.TempDir()
	cfg := wal.Config{Dir: dir}
	l, err := wal.Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(payload(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l, err = wal.Open(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if err := l.Replay(func([]byte) error { return nil }); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	for i := 5; i < 10; i++ {
		if err := l.Append(payload(i)); err != nil {
			t.Fatalf("Append after reopen: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got := replayAll(t, cfg)
	if len(got) != 10 {
		t.Fatalf("replayed %d records, want 10", len(got))
	}
	for i, p := range got {
		if !bytes.Equal(p, payload(i)) {
			t.Fatalf("record %d = %q, want %q", i, p, payload(i))
		}
	}
}

// TestTornTailTruncationSweep kills the log at every byte offset of the final
// segment: replay must always yield an exact record prefix — the torn record
// is discarded by CRC, never half-applied — and appending afterwards must not
// resurrect it.
func TestTornTailTruncationSweep(t *testing.T) {
	master := t.TempDir()
	cfg := wal.Config{Dir: master}
	l, err := wal.Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const n = 8
	for i := 0; i < n; i++ {
		if err := l.Append(payload(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	files, err := wal.Files(nil, master)
	if err != nil || len(files) != 1 {
		t.Fatalf("Files: %v %v", files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	offsets, err := wal.RecordOffsets(nil, files[0])
	if err != nil {
		t.Fatalf("RecordOffsets: %v", err)
	}
	if len(offsets) != n+1 {
		t.Fatalf("got %d boundaries, want %d", len(offsets), n+1)
	}
	boundary := make(map[int64]int) // offset -> records before it
	for i, off := range offsets {
		boundary[off] = i
	}

	for cut := 0; cut <= len(data); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(files[0])), data[:cut], 0o644); err != nil {
			t.Fatalf("truncate copy: %v", err)
		}
		sub := wal.Config{Dir: dir}
		got := replayAll(t, sub)
		// Replay must be the longest record prefix that fits in cut bytes.
		want := 0
		for _, off := range offsets {
			if off <= int64(cut) {
				want = boundary[off]
			}
		}
		if len(got) != want {
			t.Fatalf("cut at %d: replayed %d records, want %d", cut, len(got), want)
		}
		for i, p := range got {
			if !bytes.Equal(p, payload(i)) {
				t.Fatalf("cut at %d: record %d corrupted", cut, i)
			}
		}
		// Recovery must be able to continue appending cleanly.
		l2, err := wal.Open(sub)
		if err != nil {
			t.Fatalf("cut at %d: reopen: %v", cut, err)
		}
		if err := l2.Replay(func([]byte) error { return nil }); err != nil {
			t.Fatalf("cut at %d: replay: %v", cut, err)
		}
		if err := l2.Append([]byte("post-crash")); err != nil {
			t.Fatalf("cut at %d: append after recovery: %v", cut, err)
		}
		if err := l2.Close(); err != nil {
			t.Fatalf("cut at %d: close: %v", cut, err)
		}
		final := replayAll(t, sub)
		if len(final) != want+1 || !bytes.Equal(final[want], []byte("post-crash")) {
			t.Fatalf("cut at %d: post-recovery log has %d records, want %d", cut, len(final), want+1)
		}
	}
}

// TestCorruptRecordDiscarded flips a byte mid-file: replay stops before the
// damaged record rather than applying garbage.
func TestCorruptRecordDiscarded(t *testing.T) {
	dir := t.TempDir()
	cfg := wal.Config{Dir: dir}
	l, err := wal.Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 6; i++ {
		if err := l.Append(payload(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	files, _ := wal.Files(nil, dir)
	offsets, _ := wal.RecordOffsets(nil, files[0])
	data, _ := os.ReadFile(files[0])
	data[offsets[3]+10] ^= 0xFF // damage record 3's payload
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	got := replayAll(t, cfg)
	if len(got) != 3 {
		t.Fatalf("replayed %d records past corruption, want 3", len(got))
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	cfg := wal.Config{Dir: dir, SegmentSize: 256}
	l, err := wal.Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 30; i++ {
		if err := l.Append(payload(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	pre := l.LiveSize()
	// Compact to two summary records.
	err = l.Snapshot(func(app func([]byte) error) error {
		if err := app([]byte("state-a")); err != nil {
			return err
		}
		return app([]byte("state-b"))
	})
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if l.LiveSize() >= pre {
		t.Fatalf("LiveSize %d did not shrink from %d after snapshot", l.LiveSize(), pre)
	}
	for i := 30; i < 35; i++ {
		if err := l.Append(payload(i)); err != nil {
			t.Fatalf("Append after snapshot: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got := replayAll(t, cfg)
	want := [][]byte{[]byte("state-a"), []byte("state-b")}
	for i := 30; i < 35; i++ {
		want = append(want, payload(i))
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	// The covered segments must be gone.
	files, _ := wal.Files(nil, dir)
	if len(files) > 3 {
		t.Fatalf("compaction left %d files: %v", len(files), files)
	}
}

// TestCrashfsByteSweep drives the log through a crash at every byte budget:
// recovery with the real filesystem must always see an intact record prefix.
func TestCrashfsByteSweep(t *testing.T) {
	// Probe run: count the total bytes of the scripted append sequence.
	script := func(l *wal.Log) error {
		for i := 0; i < 10; i++ {
			if err := l.Append(payload(i)); err != nil {
				return err
			}
		}
		return nil
	}
	probeDir := t.TempDir()
	counter := crashfs.Count(wal.OS())
	l, err := wal.Open(wal.Config{Dir: probeDir, FS: counter})
	if err != nil {
		t.Fatalf("probe Open: %v", err)
	}
	if err := script(l); err != nil {
		t.Fatalf("probe script: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("probe Close: %v", err)
	}
	total := counter.Written()
	if total == 0 {
		t.Fatal("probe wrote nothing")
	}

	for budget := int64(0); budget <= total; budget++ {
		dir := t.TempDir()
		cfs := crashfs.Limit(wal.OS(), budget)
		l, err := wal.Open(wal.Config{Dir: dir, FS: cfs})
		if err != nil {
			continue // crashed during setup: nothing durable to check
		}
		_ = script(l) // expected to fail at the crash point
		// No Close: the process died. Recover with the real filesystem.
		got := replayAll(t, wal.Config{Dir: dir})
		if int64(len(got)) > budget/int64(len(payload(0)))+1 {
			t.Fatalf("budget %d: %d records survived, more than written", budget, len(got))
		}
		for i, p := range got {
			if !bytes.Equal(p, payload(i)) {
				t.Fatalf("budget %d: record %d corrupted after crash", budget, i)
			}
		}
	}
}

func TestBatchCodecRoundTripDeterministic(t *testing.T) {
	muts := []wal.Mutation{
		wal.Set("coins", []byte("k1"), []byte("v1")),
		wal.Delete("downtime", []byte("k2")),
		wal.Set("ledger", []byte(""), nil),
	}
	enc := wal.EncodeBatch(muts)
	dec, err := wal.DecodeBatch(enc)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(dec) != len(muts) {
		t.Fatalf("decoded %d mutations, want %d", len(dec), len(muts))
	}
	for i := range muts {
		if dec[i].Table != muts[i].Table || dec[i].Op != muts[i].Op ||
			!bytes.Equal(dec[i].Key, muts[i].Key) || !bytes.Equal(dec[i].Val, muts[i].Val) {
			t.Fatalf("mutation %d round-trip mismatch: %+v vs %+v", i, dec[i], muts[i])
		}
	}
	if !bytes.Equal(wal.EncodeBatch(dec), enc) {
		t.Fatal("re-encoding decoded batch is not byte-identical")
	}
	// Corrupted batches must error, not panic.
	for cut := 0; cut < len(enc); cut++ {
		_, _ = wal.DecodeBatch(enc[:cut])
	}
}

func TestPolicyParse(t *testing.T) {
	for _, p := range []wal.Policy{wal.FsyncNever, wal.FsyncInterval, wal.FsyncAlways} {
		got, err := wal.ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := wal.ParsePolicy("bogus"); err == nil {
		t.Fatal("ParsePolicy accepted garbage")
	}
}
