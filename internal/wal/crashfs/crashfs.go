// Package crashfs wraps a wal.FS with a byte budget that models a process
// kill at an exact write boundary: once the budget is exhausted, the write
// in flight is cut short (its allowed prefix reaches the underlying file —
// the prefix-loss crash model) and every later operation fails with
// ErrCrashed. Recovering with the real filesystem then sees exactly the
// bytes a crashed process would have left behind.
//
// Sweeping the budget from 0 to the byte count of a full run drives the
// crash-injection suites: every byte boundary, including mid-record, is a
// crash point.
package crashfs

import (
	"errors"
	"sync"

	"whopay/internal/wal"
)

// ErrCrashed is returned by every operation after the budget runs out.
var ErrCrashed = errors.New("crashfs: simulated crash")

// FS is a crash-injecting wal.FS decorator. Safe for concurrent use.
type FS struct {
	inner wal.FS

	mu      sync.Mutex
	budget  int64 // remaining bytes; <0 = unlimited
	count   bool  // tally written instead of limiting
	written int64
	crashed bool
}

// Limit wraps inner so writes crash after budget total bytes.
func Limit(inner wal.FS, budget int64) *FS {
	return &FS{inner: inner, budget: budget}
}

// Count wraps inner with no limit, tallying bytes written — the probe run
// that sizes the sweep.
func Count(inner wal.FS) *FS {
	return &FS{inner: inner, budget: -1, count: true}
}

// Written returns the bytes written through the wrapper so far.
func (f *FS) Written() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.written
}

// Crashed reports whether the budget has run out.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// admit grants up to n bytes of write, crashing at the boundary.
func (f *FS) admit(n int) (allowed int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, ErrCrashed
	}
	if f.budget < 0 || f.count {
		f.written += int64(n)
		return n, nil
	}
	if int64(n) <= f.budget {
		f.budget -= int64(n)
		f.written += int64(n)
		return n, nil
	}
	allowed = int(f.budget)
	f.budget = 0
	f.written += int64(allowed)
	f.crashed = true
	return allowed, ErrCrashed
}

// alive fails fast once crashed (metadata operations stop too: the process
// is dead).
func (f *FS) alive() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

// MkdirAll implements wal.FS.
func (f *FS) MkdirAll(dir string) error {
	if err := f.alive(); err != nil {
		return err
	}
	return f.inner.MkdirAll(dir)
}

// ReadDir implements wal.FS.
func (f *FS) ReadDir(dir string) ([]string, error) {
	if err := f.alive(); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(dir)
}

// Create implements wal.FS.
func (f *FS) Create(path string) (wal.File, error) {
	if err := f.alive(); err != nil {
		return nil, err
	}
	inner, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, inner: inner}, nil
}

// OpenAppend implements wal.FS.
func (f *FS) OpenAppend(path string) (wal.File, error) {
	if err := f.alive(); err != nil {
		return nil, err
	}
	inner, err := f.inner.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, inner: inner}, nil
}

// Open implements wal.FS.
func (f *FS) Open(path string) (wal.ReadFile, error) {
	if err := f.alive(); err != nil {
		return nil, err
	}
	return f.inner.Open(path)
}

// Rename implements wal.FS.
func (f *FS) Rename(oldpath, newpath string) error {
	if err := f.alive(); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements wal.FS.
func (f *FS) Remove(path string) error {
	if err := f.alive(); err != nil {
		return err
	}
	return f.inner.Remove(path)
}

type file struct {
	fs    *FS
	inner wal.File
}

// Write admits at most the remaining budget, so the crash cuts the record
// mid-frame exactly at the boundary byte.
func (w *file) Write(p []byte) (int, error) {
	allowed, err := w.fs.admit(len(p))
	if allowed > 0 {
		if n, werr := w.inner.Write(p[:allowed]); werr != nil {
			return n, werr
		}
	}
	if err != nil {
		return allowed, err
	}
	return allowed, nil
}

// Sync flushes when still alive.
func (w *file) Sync() error {
	if err := w.fs.alive(); err != nil {
		return err
	}
	return w.inner.Sync()
}

// Close always closes the underlying file (a crashed process's descriptors
// close too); the error reflects crash state.
func (w *file) Close() error {
	err := w.inner.Close()
	if cerr := w.fs.alive(); cerr != nil {
		return cerr
	}
	return err
}
