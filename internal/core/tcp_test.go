package core

import (
	"errors"
	"sync"
	"testing"

	"whopay/internal/bus"
	"whopay/internal/bus/tcpbus"
	"whopay/internal/sig"
)

var registerOnce sync.Once

// TestLifecycleOverTCP runs the purchase → issue → transfer → deposit flow
// over real TCP sockets with gob framing and ECDSA signatures — the full
// production stack, no in-memory shortcuts.
func TestLifecycleOverTCP(t *testing.T) {
	registerOnce.Do(RegisterWireTypes)
	network := tcpbus.New()
	scheme := sig.ECDSA{}
	dir := NewDirectory()
	judge, err := NewJudge(scheme)
	if err != nil {
		t.Fatal(err)
	}
	broker, err := NewBroker(BrokerConfig{
		Network:   network,
		Addr:      "127.0.0.1:0",
		Scheme:    scheme,
		Directory: dir,
		GroupPub:  judge.GroupPublicKey(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()
	// The broker bound an ephemeral port; peers must dial the real one.
	brokerAddr := brokerBoundAddr(broker)

	newTCPPeer := func(id string) *Peer {
		p, err := NewPeer(PeerConfig{
			ID:         id,
			Network:    network,
			Addr:       "127.0.0.1:0",
			Scheme:     scheme,
			Directory:  dir,
			BrokerAddr: brokerAddr,
			BrokerPub:  broker.PublicKey(),
			Judge:      judge,
			CredPool:   4,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		// Directory must carry the bound address, not the ":0" we
		// asked for.
		dir.Register(id, p.PublicKey(), p.ep.Addr())
		return p
	}
	u := newTCPPeer("u")
	v := newTCPPeer("v")
	w := newTCPPeer("w")

	id, err := u.Purchase(3, false)
	if err != nil {
		t.Fatalf("Purchase over TCP: %v", err)
	}
	if err := u.IssueTo(v.ep.Addr(), id); err != nil {
		t.Fatalf("IssueTo over TCP: %v", err)
	}
	if err := v.TransferTo(w.ep.Addr(), id); err != nil {
		t.Fatalf("TransferTo over TCP: %v", err)
	}
	if err := w.Deposit(id, "w-payout"); err != nil {
		t.Fatalf("Deposit over TCP: %v", err)
	}
	if broker.Balance("w-payout") != 3 {
		t.Fatalf("balance = %d", broker.Balance("w-payout"))
	}
}

// brokerBoundAddr exposes the broker's actually-bound endpoint address.
func brokerBoundAddr(b *Broker) bus.Address { return b.ep.Addr() }

// TestCoinBusySurvivesTCPHop proves the sentinel-code plumbing end to end:
// a busy rejection raised by an owner is still matchable with errors.Is
// after crossing a real TCP/gob hop, where only the wire code — not the
// in-process error chain — can travel. Retry layers above the bus depend on
// exactly this to tell "try again shortly" from "give up".
func TestCoinBusySurvivesTCPHop(t *testing.T) {
	registerOnce.Do(RegisterWireTypes)
	network := tcpbus.New()
	scheme := sig.ECDSA{}
	dir := NewDirectory()
	judge, err := NewJudge(scheme)
	if err != nil {
		t.Fatal(err)
	}
	broker, err := NewBroker(BrokerConfig{
		Network:   network,
		Addr:      "127.0.0.1:0",
		Scheme:    scheme,
		Directory: dir,
		GroupPub:  judge.GroupPublicKey(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()

	newTCPPeer := func(id string) *Peer {
		p, err := NewPeer(PeerConfig{
			ID:         id,
			Network:    network,
			Addr:       "127.0.0.1:0",
			Scheme:     scheme,
			Directory:  dir,
			BrokerAddr: brokerBoundAddr(broker),
			BrokerPub:  broker.PublicKey(),
			Judge:      judge,
			CredPool:   4,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		dir.Register(id, p.PublicKey(), p.ep.Addr())
		return p
	}
	owner := newTCPPeer("tcp-busy-owner")
	holder := newTCPPeer("tcp-busy-holder")

	id, err := owner.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.IssueTo(holder.ep.Addr(), id); err != nil {
		t.Fatal(err)
	}

	// Pin the coin's service lock so the owner deterministically answers
	// busy, as it would mid-way through servicing a concurrent transfer.
	oc, _ := owner.owned.Get(id)
	oc.svc.Lock()
	_, err = holder.Renew(id)
	oc.svc.Unlock()
	if !errors.Is(err, ErrCoinBusy) {
		t.Fatalf("renew against busy coin over TCP: got %v, want errors.Is ErrCoinBusy", err)
	}
	if code := bus.ErrorCode(err); code != "core.coin_busy" {
		t.Fatalf("wire code = %q, want core.coin_busy", code)
	}

	// Busy commits nothing: the same renewal succeeds once the lock frees.
	if _, err := holder.Renew(id); err != nil {
		t.Fatalf("retry after busy over TCP: %v", err)
	}
}

// TestCoinShop exercises the issuer-anonymity extension: customers buy
// from a shop and pay each other only with anonymous transfers; the shop
// services the transfer load of its coins.
func TestCoinShop(t *testing.T) {
	f := newFixture(t, fixtureOpts{detection: true})
	shopPeer := f.addPeer("shop", nil)
	shop := NewShop(shopPeer, 2)
	alice := f.addPeer("alice", nil)
	bob := f.addPeer("bob", nil)

	if err := shop.Stock(3, 1); err != nil {
		t.Fatal(err)
	}
	if shop.Inventory(1) != 3 {
		t.Fatalf("inventory = %d", shop.Inventory(1))
	}
	id, err := shop.Vend(alice.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if shop.Inventory(1) != 2 {
		t.Fatalf("inventory after vend = %d", shop.Inventory(1))
	}
	// Alice pays Bob by transfer — never by issue, so her identity never
	// appears in a coin.
	method, err := alice.Pay(bob.Addr(), 1, PolicyIII)
	if err != nil {
		t.Fatal(err)
	}
	if method != MethodTransferOnline {
		t.Fatalf("method = %v, want transfer via shop", method)
	}
	if shop.Ops().Get(OpTransfer) != 1 {
		t.Fatal("shop did not service the transfer")
	}
	// Restock-on-demand path.
	for i := 0; i < 3; i++ {
		if _, err := shop.Vend(bob.Addr(), 1); err != nil {
			t.Fatal(err)
		}
	}
	_ = id
}
