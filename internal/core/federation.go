package core

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"time"

	"whopay/internal/bus"
	"whopay/internal/coin"
	"whopay/internal/sig"
	"whopay/internal/store"
	"whopay/internal/wal"
)

// Broker federation (DESIGN.md §13). The coin-ID space is partitioned across
// N broker shards by the same SHA-256 hashing idiom the DHT uses for binding
// keys; each shard is a full Broker serving only the coins (and payout
// references) that hash to it. Clients route by coin ID, a shard that
// receives a foreign key rejects with ErrWrongShard (carrying a redirect
// hint), and a replica that is not its shard's current leader rejects with
// ErrNotLeader — both classified retryable-with-redirect at the bus layer,
// so a plain RetryCaller converges on the right endpoint.
//
// Deposits whose payout reference homes on another shard settle through a
// two-phase path: the deposit shard journals a settlement intent in its WAL,
// then pushes a SettleRequest to the payout shard, which journals the credit
// into a durable dedup table before applying it. A crash anywhere in between
// recovers to exactly-once — unacked intents are resent, and the payout
// shard's dedup table absorbs replays.

// ShardOfKey maps a routing key — raw coin-ID bytes or a payout reference —
// to its home shard among n. The SHA-256 prefix idiom matches dht.KeyFor, so
// the distribution properties are the ones the DHT already relies on.
func ShardOfKey(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := sha256.Sum256([]byte(key))
	return int(binary.BigEndian.Uint64(h[:8]) % uint64(n))
}

// FederationConfig makes a broker one shard of a federated trust root. The
// broker then serves only keys that home on its shard, rejects foreign keys
// with ErrWrongShard (plus a leader hint when LeaderAddr knows one), and
// settles cross-shard deposit credits through the two-phase settlement path.
type FederationConfig struct {
	// Index is this shard's position in [0, Shards).
	Index int
	// Shards is the shard count of the federation.
	Shards int
	// LeaderAddr resolves the current leader of a shard — redirect hints
	// and the settlement path use it. It may be nil (no hints, settlement
	// retries until a resolver appears) and may return false while a
	// failover is in progress.
	LeaderAddr func(shard int) (bus.Address, bool)
	// ShardPub resolves a shard's broker signing key so settlement
	// requests can be authenticated. Nil disables verification (trusted
	// single-process deployments and tests).
	ShardPub func(shard int) (sig.PublicKey, bool)
	// SettleRetry is the resend cadence for unacked settlements (default
	// 50ms; tests and the load harness shrink or stretch it).
	SettleRetry time.Duration
}

// SettleRequest pushes one cross-shard deposit credit from the shard that
// redeemed the coin to the shard that owns the payout reference. CoinID is
// the redeemed coin (the exactly-once key), Sig is by the sending shard's
// broker key over settleMessage.
type SettleRequest struct {
	CoinID    []byte
	PayoutRef string
	Amount    int64
	FromShard int
	Sig       []byte
}

// SettleResponse acknowledges a settlement (idempotent: replays of an
// already-applied settlement ack without crediting again).
type SettleResponse struct{}

func settleMessage(coinID []byte, payoutRef string, amount int64, fromShard int) []byte {
	out := []byte("whopay/msg/settle/1")
	out = appendBytes(out, coinID)
	out = appendBytes(out, []byte(payoutRef))
	out = binary.BigEndian.AppendUint64(out, uint64(amount))
	out = binary.BigEndian.AppendUint64(out, uint64(fromShard))
	return out
}

// settleRec is the deposit shard's journaled settlement state for one
// cross-shard coin: the intent (Done false, written before the first send)
// and the acknowledgement (Done true). Exported fields for gob.
type settleRec struct {
	Ref    string
	Amount int64
	Done   bool
}

// settledRec is the payout shard's durable dedup record for one applied
// settlement.
type settledRec struct {
	Ref    string
	Amount int64
}

func codecSettled() store.Codec[*settledRec] {
	return store.Codec[*settledRec]{
		Enc: func(r *settledRec) ([]byte, error) { return gobEnc(*r) },
		Dec: func(b []byte) (*settledRec, error) {
			var r settledRec
			if err := gobDec(b, &r); err != nil {
				return nil, err
			}
			return &r, nil
		},
	}
}

// defaultSettleRetry is the resend cadence for unacked settlements.
const defaultSettleRetry = 50 * time.Millisecond

// localKey reports whether a routing key homes on this broker's shard
// (always true for an unfederated broker).
func (b *Broker) localKey(key string) bool {
	return b.fed == nil || ShardOfKey(key, b.fed.Shards) == b.fed.Index
}

// wrongShardErr builds the ErrWrongShard rejection for a foreign key,
// attaching the owning shard's leader address as a redirect hint when known.
func (b *Broker) wrongShardErr(key string) error {
	home := ShardOfKey(key, b.fed.Shards)
	err := fmt.Errorf("%w: key homes on shard %d, this is shard %d", ErrWrongShard, home, b.fed.Index)
	if b.fed.LeaderAddr != nil {
		if addr, ok := b.fed.LeaderAddr(home); ok {
			err = bus.WithRedirect(err, addr)
		}
	}
	return err
}

// checkShard gates one dispatched message by its routing key. Sync requests
// pass everywhere (owners fan out across shards); everything else names a
// coin (or, for settlements, a payout reference) with exactly one home.
func (b *Broker) checkShard(msg any) error {
	switch m := msg.(type) {
	case PurchaseRequest:
		if !b.localKey(string(m.CoinPub)) {
			return b.wrongShardErr(string(m.CoinPub))
		}
	case BatchPurchaseRequest:
		for _, pub := range m.CoinPubs {
			if !b.localKey(string(pub)) {
				return b.wrongShardErr(string(pub))
			}
		}
	case TransferRequest:
		if !b.localKey(string(m.Body.CoinPub)) {
			return b.wrongShardErr(string(m.Body.CoinPub))
		}
	case RenewRequest:
		if !b.localKey(string(m.CoinPub)) {
			return b.wrongShardErr(string(m.CoinPub))
		}
	case DepositRequest:
		if !b.localKey(string(m.CoinPub)) {
			return b.wrongShardErr(string(m.CoinPub))
		}
	case BatchDepositRequest:
		for i := range m.Deposits {
			if !b.localKey(string(m.Deposits[i].CoinPub)) {
				return b.wrongShardErr(string(m.Deposits[i].CoinPub))
			}
		}
	case LayeredDepositRequest:
		if !b.localKey(string(m.LC.Base.ID())) {
			return b.wrongShardErr(string(m.LC.Base.ID()))
		}
	case FraudReport:
		if !b.localKey(string(m.CoinPub)) {
			return b.wrongShardErr(string(m.CoinPub))
		}
	case SettleRequest:
		if !b.localKey(m.PayoutRef) {
			return b.wrongShardErr(m.PayoutRef)
		}
	}
	return nil
}

// creditPayout applies a deposit's credit to its payout reference: directly
// into the ledger when the reference homes here, through the two-phase
// settlement path when it homes on another shard. id is the redeemed coin —
// the settlement's exactly-once key.
func (b *Broker) creditPayout(id coin.ID, payoutRef string, amount int64) {
	if b.localKey(payoutRef) {
		b.ledger.Credit(payoutRef, amount)
		return
	}
	b.journalSettle(id, settleRec{Ref: payoutRef, Amount: amount})
	b.settleMu.Lock()
	b.settleState[id] = settleRec{Ref: payoutRef, Amount: amount}
	b.settleMu.Unlock()
	b.kickSettle()
}

// journalSettle journals one settlement-state transition (intent or ack).
func (b *Broker) journalSettle(id coin.ID, rec settleRec) {
	if b.persist == nil {
		return
	}
	val, err := gobEnc(rec)
	if err != nil {
		b.persist.fail(err)
		return
	}
	b.persist.batch(wal.Set(tblSettle, []byte(id), val))
}

// kickSettle nudges the settlement loop without blocking.
func (b *Broker) kickSettle() {
	select {
	case b.settleKick <- struct{}{}:
	default:
	}
}

// PendingSettlements counts cross-shard deposit credits not yet acknowledged
// by their payout shard. The load harness drains on it before auditing.
func (b *Broker) PendingSettlements() int {
	b.settleMu.Lock()
	defer b.settleMu.Unlock()
	n := 0
	for _, rec := range b.settleState {
		if !rec.Done {
			n++
		}
	}
	return n
}

// settleLoop resends unacked settlements until the payout shard accepts
// them. One goroutine per federated broker; exits on Close.
func (b *Broker) settleLoop() {
	defer close(b.settleDone)
	retry := b.fed.SettleRetry
	if retry <= 0 {
		retry = defaultSettleRetry
	}
	tick := time.NewTicker(retry)
	defer tick.Stop()
	for {
		select {
		case <-b.settleStop:
			return
		case <-b.settleKick:
		case <-tick.C:
		}
		b.drainSettlements()
	}
}

// drainSettlements attempts one delivery round over the pending set.
func (b *Broker) drainSettlements() {
	b.settleMu.Lock()
	pending := make(map[coin.ID]settleRec)
	for id, rec := range b.settleState {
		if !rec.Done {
			pending[id] = rec
		}
	}
	b.settleMu.Unlock()
	for id, rec := range pending {
		select {
		case <-b.settleStop:
			return
		default:
		}
		if b.trySettle(id, rec) {
			rec.Done = true
			b.journalSettle(id, rec)
			b.settleMu.Lock()
			b.settleState[id] = rec
			b.settleMu.Unlock()
		}
	}
}

// trySettle pushes one settlement to the payout shard's leader. False means
// "retry later" — the leader is unknown, unreachable, or mid-failover.
func (b *Broker) trySettle(id coin.ID, rec settleRec) bool {
	if b.fed.LeaderAddr == nil {
		return false
	}
	home := ShardOfKey(rec.Ref, b.fed.Shards)
	addr, ok := b.fed.LeaderAddr(home)
	if !ok {
		return false
	}
	req := SettleRequest{
		CoinID:    []byte(id),
		PayoutRef: rec.Ref,
		Amount:    rec.Amount,
		FromShard: b.fed.Index,
	}
	sigBytes, err := b.suite.Sign(b.keys.Private, settleMessage(req.CoinID, req.PayoutRef, req.Amount, req.FromShard))
	if err != nil {
		return false
	}
	req.Sig = sigBytes
	resp, err := b.settleCaller.Call(addr, req)
	if err != nil {
		return false
	}
	_, ok = resp.(SettleResponse)
	return ok
}

// handleSettle applies one incoming cross-shard settlement exactly once: the
// durable dedup insert is the commit point, recovery replays the credit from
// it, and a replay of an applied settlement acks without crediting again.
func (b *Broker) handleSettle(m SettleRequest) (any, error) {
	if m.Amount <= 0 || m.PayoutRef == "" || len(m.CoinID) == 0 {
		return nil, fmt.Errorf("%w: malformed settlement", ErrBadRequest)
	}
	if b.fed != nil && b.fed.ShardPub != nil {
		pub, ok := b.fed.ShardPub(m.FromShard)
		if !ok {
			return nil, fmt.Errorf("%w: settlement from unknown shard %d", ErrBadRequest, m.FromShard)
		}
		if err := b.suite.Verify(pub, settleMessage(m.CoinID, m.PayoutRef, m.Amount, m.FromShard), m.Sig); err != nil {
			return nil, fmt.Errorf("%w: settlement signature: %v", ErrBadRequest, err)
		}
	}
	id := coin.ID(m.CoinID)
	if !b.settled.Insert(id, &settledRec{Ref: m.PayoutRef, Amount: m.Amount}) {
		return SettleResponse{}, nil
	}
	b.ledger.Credit(m.PayoutRef, m.Amount)
	return SettleResponse{}, nil
}

// --- peer-side routing ---------------------------------------------------

// ShardRouter resolves a federated trust root for a peer: which shard owns a
// key, who currently leads it, and which broker key that shard signs with.
// Implementations must be safe for concurrent use and should reflect
// failovers promptly (internal/federation.Cluster.Router is the in-process
// one).
type ShardRouter interface {
	// NumShards is the federation's shard count.
	NumShards() int
	// Leader returns the current leader address of a shard, false while a
	// failover is still electing one.
	Leader(shard int) (bus.Address, bool)
	// BrokerPub returns the shard's broker signing key (stable across
	// failovers — promotion recovers the journaled key).
	BrokerPub(shard int) sig.PublicKey
}

// shardOf maps a routing key to its shard under the peer's router.
func (p *Peer) shardOf(key string) int {
	if p.cfg.Router == nil {
		return 0
	}
	return ShardOfKey(key, p.cfg.Router.NumShards())
}

// brokerPubFor resolves the broker signing key that vouches for a coin:
// the owning shard's key under federation, the configured one otherwise.
func (p *Peer) brokerPubFor(key string) sig.PublicKey {
	if p.cfg.Router == nil {
		return p.cfg.BrokerPub
	}
	if pub := p.cfg.Router.BrokerPub(p.shardOf(key)); len(pub) > 0 {
		return pub
	}
	return p.cfg.BrokerPub
}

// brokerCallRounds bounds how many resolve-and-call rounds a federated
// broker call makes. Each round re-resolves the leader, and the inner retry
// layer already backs off within a round, so a handful of rounds spans a
// failover window.
const brokerCallRounds = 3

// callBroker routes one broker-bound call by its key. Under federation the
// call goes to the owning shard's leader; redirect hints and transient
// failures are retried by the inner caller, and a round that still fails
// re-resolves leadership (it may have moved mid-failover) before trying
// again.
func (p *Peer) callBroker(key string, msg any) (any, error) {
	return p.callShard(p.shardOf(key), msg)
}

// callShard routes one broker-bound call to a specific shard's leader, with
// the same resolve-and-retry rounds as callBroker. The configured BrokerAddr
// is the fallback while a failover has no leader yet.
func (p *Peer) callShard(shard int, msg any) (any, error) {
	if p.cfg.Router == nil {
		return p.call(p.cfg.BrokerAddr, msg)
	}
	var lastErr error
	for round := 0; round < brokerCallRounds; round++ {
		addr := p.cfg.BrokerAddr
		if a, ok := p.cfg.Router.Leader(shard); ok {
			addr = a
		}
		resp, err := p.call(addr, msg)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !bus.Transient(err) && !bus.Redirectable(err) {
			return nil, err
		}
	}
	return nil, lastErr
}
