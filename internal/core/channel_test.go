package core

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"whopay/internal/coin"
	"whopay/internal/payword"
)

// The micropayment-channel suite (DESIGN.md §12): a payer opens a PayWord
// chain against a vendor, streams unit payments off the WhoPay hot path, and
// settles the accumulated window with a single purchase+issue. These tests
// pin the window lifecycle — threshold settles, TTL expiry, chain
// exhaustion, close idempotence — and the vendor-side safety properties:
// exact-replay idempotence and one-coin-one-channel settlement credit.

// openTestChannel builds a payer/vendor pair and opens a channel between
// them with the given options.
func openTestChannel(t *testing.T, opts ChannelOptions) (*fixture, *Peer, *Peer, payword.Word) {
	t.Helper()
	f := newFixture(t, fixtureOpts{})
	payer := f.addPeer("chan-payer", nil)
	vendor := f.addPeer("chan-vendor", nil)
	root, err := payer.OpenChannel(vendor.Addr(), opts)
	if err != nil {
		t.Fatalf("OpenChannel: %v", err)
	}
	return f, payer, vendor, root
}

// vendorCoinValues lists the face values of the vendor's held coins — the
// settlement payments a channel produced.
func vendorCoinValues(t *testing.T, vendor *Peer) []int64 {
	t.Helper()
	var vals []int64
	for _, id := range vendor.HeldCoins() {
		hc, ok := vendor.held.Get(id)
		if !ok {
			t.Fatalf("held coin %s vanished", id)
		}
		vals = append(vals, hc.c.Value)
	}
	return vals
}

func TestChannelPayProgression(t *testing.T) {
	_, payer, vendor, root := openTestChannel(t, ChannelOptions{Capacity: 10})
	for i := int64(1); i <= 3; i++ {
		rc, err := payer.ChannelPay(root)
		if err != nil {
			t.Fatalf("ChannelPay %d: %v", i, err)
		}
		if rc.Owed != i || rc.Won {
			t.Fatalf("receipt %d = %+v, want Owed=%d Won=false", i, rc, i)
		}
	}
	owed, remaining, ok := payer.ChannelBalance(root)
	if !ok || owed != 3 || remaining != 7 {
		t.Fatalf("ChannelBalance = (%d, %d, %v), want (3, 7, true)", owed, remaining, ok)
	}
	if out, ok := vendor.VendorChannelOutstanding(root); !ok || out != 3 {
		t.Fatalf("VendorChannelOutstanding = (%d, %v), want (3, true)", out, ok)
	}
	// No settlement yet: the vendor holds no WhoPay coins.
	if n := len(vendor.HeldCoins()); n != 0 {
		t.Fatalf("vendor holds %d coins before any settlement", n)
	}
	// An unknown root is not a channel.
	if _, err := payer.ChannelPay(payword.Word{1}); !errors.Is(err, ErrNoChannel) {
		t.Fatalf("pay on unknown root = %v, want ErrNoChannel", err)
	}
	if _, _, ok := payer.ChannelBalance(payword.Word{1}); ok {
		t.Fatal("ChannelBalance reported an unknown root")
	}
}

func TestChannelThresholdAutoSettle(t *testing.T) {
	f, payer, vendor, root := openTestChannel(t, ChannelOptions{Capacity: 10, SettleThreshold: 3})
	for i := 0; i < 2; i++ {
		if _, err := payer.ChannelPay(root); err != nil {
			t.Fatal(err)
		}
	}
	rc, err := payer.ChannelPay(root)
	if err != nil {
		t.Fatalf("threshold payment: %v", err)
	}
	if rc.Owed != 0 {
		t.Fatalf("post-settle receipt owed %d, want 0", rc.Owed)
	}
	if out, _ := vendor.VendorChannelOutstanding(root); out != 0 {
		t.Fatalf("vendor outstanding %d after threshold settle, want 0", out)
	}
	vals := vendorCoinValues(t, vendor)
	if len(vals) != 1 || vals[0] != 3 {
		t.Fatalf("vendor settlement coins = %v, want [3]", vals)
	}
	// The window stays open and keeps accruing toward the next settle.
	if rc, err := payer.ChannelPay(root); err != nil || rc.Owed != 1 {
		t.Fatalf("post-settle pay = (%+v, %v), want Owed=1", rc, err)
	}
	// The settlement coin is real WhoPay value: the vendor deposits it.
	if err := vendor.Deposit(vendor.HeldCoins()[0], vendor.ID()); err != nil {
		t.Fatalf("depositing settlement coin: %v", err)
	}
	if bal := f.broker.Balance(vendor.ID()); bal != 3 {
		t.Fatalf("vendor balance %d after settlement deposit, want 3", bal)
	}
}

func TestChannelSettleAndCloseIdempotent(t *testing.T) {
	_, payer, vendor, root := openTestChannel(t, ChannelOptions{Capacity: 10})
	for i := 0; i < 2; i++ {
		if _, err := payer.ChannelPay(root); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := payer.SettleChannel(root); err != nil || n != 2 {
		t.Fatalf("SettleChannel = (%d, %v), want (2, nil)", n, err)
	}
	// A clean balance settles as a no-op, no coin purchased.
	if n, err := payer.SettleChannel(root); err != nil || n != 0 {
		t.Fatalf("repeat SettleChannel = (%d, %v), want (0, nil)", n, err)
	}
	if _, err := payer.ChannelPay(root); err != nil {
		t.Fatal(err)
	}
	if n, err := payer.CloseChannel(root); err != nil || n != 1 {
		t.Fatalf("CloseChannel = (%d, %v), want (1, nil)", n, err)
	}
	// The closed channel is gone: a repeat close reports no such channel.
	if _, err := payer.CloseChannel(root); !errors.Is(err, ErrNoChannel) {
		t.Fatalf("repeat CloseChannel = %v, want ErrNoChannel", err)
	}
	if _, err := payer.ChannelPay(root); !errors.Is(err, ErrNoChannel) {
		t.Fatalf("pay after close = %v, want ErrNoChannel", err)
	}
	if _, err := payer.SettleChannel(root); !errors.Is(err, ErrNoChannel) {
		t.Fatalf("settle after close = %v, want ErrNoChannel", err)
	}
	vals := vendorCoinValues(t, vendor)
	if len(vals) != 2 || vals[0]+vals[1] != 3 {
		t.Fatalf("vendor settlement coins = %v, want two coins totaling 3", vals)
	}
	if out, _ := vendor.VendorChannelOutstanding(root); out != 0 {
		t.Fatalf("vendor outstanding %d after close, want 0", out)
	}
}

func TestChannelTTLExpiry(t *testing.T) {
	f, payer, vendor, root := openTestChannel(t, ChannelOptions{Capacity: 10, TTL: time.Minute})
	if _, err := payer.ChannelPay(root); err != nil {
		t.Fatal(err)
	}
	f.clock.Advance(2 * time.Minute)
	// The first payment after expiry settles the window, closes the
	// channel, and reports the closure.
	if _, err := payer.ChannelPay(root); !errors.Is(err, ErrChannelClosed) {
		t.Fatalf("pay after TTL = %v, want ErrChannelClosed", err)
	}
	vals := vendorCoinValues(t, vendor)
	if len(vals) != 1 || vals[0] != 1 {
		t.Fatalf("vendor settlement coins = %v, want [1]", vals)
	}
	if _, err := payer.ChannelPay(root); !errors.Is(err, ErrNoChannel) {
		t.Fatalf("pay on expired channel = %v, want ErrNoChannel", err)
	}
}

func TestChannelCapacityExhaustion(t *testing.T) {
	_, payer, vendor, root := openTestChannel(t, ChannelOptions{Capacity: 3})
	for i := 0; i < 3; i++ {
		if _, err := payer.ChannelPay(root); err != nil {
			t.Fatalf("pay %d: %v", i, err)
		}
	}
	if _, err := payer.ChannelPay(root); !errors.Is(err, ErrChannelClosed) {
		t.Fatalf("pay past capacity = %v, want ErrChannelClosed", err)
	}
	vals := vendorCoinValues(t, vendor)
	if len(vals) != 1 || vals[0] != 3 {
		t.Fatalf("vendor settlement coins = %v, want [3]", vals)
	}
	// Recycle: a fresh window against the same vendor opens cleanly.
	root2, err := payer.OpenChannel(vendor.Addr(), ChannelOptions{Capacity: 3})
	if err != nil {
		t.Fatalf("reopening channel: %v", err)
	}
	if rc, err := payer.ChannelPay(root2); err != nil || rc.Owed != 1 {
		t.Fatalf("pay on recycled channel = (%+v, %v), want Owed=1", rc, err)
	}
}

// TestChannelPayExactReplayIdempotent drives the vendor handler directly
// with a byte-identical replay of the last payment — the retry a payer sends
// after a dropped reply. The vendor must answer from its cache without
// double-accruing.
func TestChannelPayExactReplayIdempotent(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	vendor := f.addPeer("replay-vendor", nil)
	keys, err := vendor.suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	chain, err := payword.NewChain(vendor.suite, keys, string(vendor.Addr()), 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vendor.handleChannelOpen(ChannelOpenRequest{Commitment: chain.Commitment()}); err != nil {
		t.Fatalf("handleChannelOpen: %v", err)
	}
	root := chain.Commitment().Root

	pay, err := chain.Pay()
	if err != nil {
		t.Fatal(err)
	}
	first, err := vendor.handleChannelPay(ChannelPayRequest{Payment: pay})
	if err != nil {
		t.Fatalf("first delivery: %v", err)
	}
	replay, err := vendor.handleChannelPay(ChannelPayRequest{Payment: pay})
	if err != nil {
		t.Fatalf("exact replay rejected: %v", err)
	}
	if !reflect.DeepEqual(first, replay) {
		t.Fatalf("replay answered differently:\n first  %+v\n replay %+v", first, replay)
	}
	if out, _ := vendor.VendorChannelOutstanding(root); out != 1 {
		t.Fatalf("outstanding %d after replay, want 1 (no double accrual)", out)
	}
	// The next genuine payment still advances normally.
	pay2, err := chain.Pay()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := vendor.handleChannelPay(ChannelPayRequest{Payment: pay2})
	if err != nil {
		t.Fatal(err)
	}
	if pr := resp.(ChannelPayResponse); pr.Owed != 2 {
		t.Fatalf("owed %d after second payment, want 2", pr.Owed)
	}
	// A ticket on a plain payword channel is a protocol violation.
	pay3, err := chain.Pay()
	if err != nil {
		t.Fatal(err)
	}
	tk := &payword.Ticket{}
	if _, err := vendor.handleChannelPay(ChannelPayRequest{Payment: pay3, Ticket: tk}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("ticket on payword channel = %v, want ErrBadRequest", err)
	}
}

// TestSettlementCoinPinnedToOneChannel exercises the vendor's settleRecord
// map: a coin that settled channel A can be replayed against A (idempotent)
// but can never credit channel B, and a never-delivered coin credits
// nothing.
func TestSettlementCoinPinnedToOneChannel(t *testing.T) {
	_, payer, vendor, rootA := openTestChannel(t, ChannelOptions{Capacity: 10})
	rootB, err := payer.OpenChannel(vendor.Addr(), ChannelOptions{Capacity: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := payer.ChannelPay(rootA); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := payer.SettleChannel(rootA); err != nil || n != 2 {
		t.Fatalf("SettleChannel = (%d, %v), want (2, nil)", n, err)
	}
	held := vendor.HeldCoins()
	if len(held) != 1 {
		t.Fatalf("vendor holds %d coins, want 1", len(held))
	}
	coinID := held[0]

	// Replaying the close against the same channel is idempotent — the
	// recorded amount, no double credit.
	raw, err := vendor.handleChannelClose(ChannelCloseRequest{Root: rootA, CoinID: coinID})
	if err != nil {
		t.Fatalf("close replay: %v", err)
	}
	if cr := raw.(ChannelCloseResponse); cr.Settled != 2 {
		t.Fatalf("replayed close settled %d, want 2", cr.Settled)
	}
	if out, _ := vendor.VendorChannelOutstanding(rootA); out != 0 {
		t.Fatalf("outstanding %d after replayed close, want 0", out)
	}

	// The same coin presented for channel B must be rejected outright.
	if _, err := vendor.handleChannelClose(ChannelCloseRequest{Root: rootB, CoinID: coinID}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("cross-channel coin = %v, want ErrBadRequest", err)
	}
	// A coin the vendor never received credits nothing.
	if _, err := vendor.handleChannelClose(ChannelCloseRequest{Root: rootB, CoinID: coin.ID("ghost")}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("undelivered coin = %v, want ErrBadRequest", err)
	}
}

func TestLotteryChannelDeterministicWins(t *testing.T) {
	// WinDivisor 1 wins every draw: each payment accrues the full prize —
	// deterministic, so the test asserts exact balances.
	_, payer, vendor, root := openTestChannel(t, ChannelOptions{
		Capacity: 8, Lottery: true, WinDivisor: 1, Prize: 5,
	})
	for i := int64(1); i <= 3; i++ {
		rc, err := payer.ChannelPay(root)
		if err != nil {
			t.Fatalf("lottery pay %d: %v", i, err)
		}
		if !rc.Won || rc.Owed != 5*i {
			t.Fatalf("receipt %d = %+v, want Won=true Owed=%d", i, rc, 5*i)
		}
	}
	if out, _ := vendor.VendorChannelOutstanding(root); out != 15 {
		t.Fatalf("vendor outstanding %d, want 15", out)
	}
	if n, err := payer.SettleChannel(root); err != nil || n != 15 {
		t.Fatalf("SettleChannel = (%d, %v), want (15, nil)", n, err)
	}
	vals := vendorCoinValues(t, vendor)
	if len(vals) != 1 || vals[0] != 15 {
		t.Fatalf("vendor settlement coins = %v, want [15]", vals)
	}
}

func TestLotteryChannelNeedsTerms(t *testing.T) {
	_, payer, vendor, _ := openTestChannel(t, ChannelOptions{Capacity: 4})
	if _, err := payer.OpenChannel(vendor.Addr(), ChannelOptions{Lottery: true}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("lottery channel without terms = %v, want ErrBadRequest", err)
	}
	if _, err := payer.OpenChannel(vendor.Addr(), ChannelOptions{Lottery: true, WinDivisor: 100}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("lottery channel without prize = %v, want ErrBadRequest", err)
	}
}
