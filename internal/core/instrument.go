package core

import "whopay/internal/obs"

// instr aliases the shared obs instrumentation handle (DESIGN.md §11); the
// nil value is the disabled state and makes Begin/End free.
type instr = obs.Instr

// newInstr mirrors obs.NewInstr for core's call sites.
func newInstr(reg *obs.Registry, entity string) *instr { return obs.NewInstr(reg, entity) }

// registerCacheMetrics exposes a sig cache's hit/miss tallies as counter
// funcs — reads of the cache's existing atomics, nothing added to the
// verify hot path.
func registerCacheMetrics(reg *obs.Registry, entity string, stats func() (hits, misses, keyHits, keyMisses int64)) {
	if reg == nil || stats == nil {
		return
	}
	reg.Help("whopay_sigcache_results_total", "Verify-memo cache lookups, by entity and outcome.")
	reg.Help("whopay_sigcache_keys_total", "Decoded-key cache lookups, by entity and outcome.")
	reg.CounterFunc("whopay_sigcache_results_total", obs.Labels{"entity": entity, "outcome": "hit"},
		func() int64 { h, _, _, _ := stats(); return h })
	reg.CounterFunc("whopay_sigcache_results_total", obs.Labels{"entity": entity, "outcome": "miss"},
		func() int64 { _, m, _, _ := stats(); return m })
	reg.CounterFunc("whopay_sigcache_keys_total", obs.Labels{"entity": entity, "outcome": "hit"},
		func() int64 { _, _, kh, _ := stats(); return kh })
	reg.CounterFunc("whopay_sigcache_keys_total", obs.Labels{"entity": entity, "outcome": "miss"},
		func() int64 { _, _, _, km := stats(); return km })
}

// registerOpCounts exposes an entity's OpCounter (the paper's message-count
// bookkeeping) as counter funcs, one series per operation.
func registerOpCounts(reg *obs.Registry, entity string, ops *OpCounter) {
	if reg == nil || ops == nil {
		return
	}
	reg.Help("whopay_ops_total", "Completed WhoPay protocol operations, by entity and operation (the paper's op tallies).")
	for op := Op(0); op < NumOps; op++ {
		op := op
		reg.CounterFunc("whopay_ops_total", obs.Labels{"entity": entity, "op": op.String()},
			func() int64 { return ops.Snapshot()[op] })
	}
}
