package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"whopay/internal/coin"
	"whopay/internal/wal"
)

// mintHeld purchases a coin and self-issues it so the peer holds it,
// returning the id — the setup every deposit test needs.
func mintHeld(t testing.TB, p *Peer, value int64) coin.ID {
	t.Helper()
	id, err := p.Purchase(value, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.IssueTo(p.Addr(), id); err != nil {
		t.Fatal(err)
	}
	return id
}

// TestDepositBatchingOutcomes: with the batching stage on, deposits must
// produce the sequential path's outcomes — credit once, reject the replay
// with ErrAlreadyDeposited, and record the double-deposit fraud case.
func TestDepositBatchingOutcomes(t *testing.T) {
	f := newFixture(t, fixtureOpts{
		persist:      &wal.Config{Dir: t.TempDir(), Policy: wal.FsyncAlways},
		depositBatch: &DepositBatchConfig{MaxBatch: 8, MaxLinger: time.Millisecond},
	})
	alice := f.addPeer("alice", nil)

	id := mintHeld(t, alice, 5)
	first, replay := alice.DepositTwice(id, "payout:alice")
	if first != nil {
		t.Fatalf("first deposit through the batcher: %v", first)
	}
	if !errors.Is(replay, ErrAlreadyDeposited) {
		t.Fatalf("replay error = %v, want ErrAlreadyDeposited", replay)
	}
	if got := f.broker.Balance("payout:alice"); got != 5 {
		t.Fatalf("payout balance = %d, want 5", got)
	}
	cases := f.broker.FraudCases()
	if len(cases) != 1 || cases[0].Kind != "double-deposit" {
		t.Fatalf("fraud cases = %+v, want one double-deposit", cases)
	}
}

// TestDepositBatchingConcurrentDurable: many concurrent deposits flow
// through the batcher, every one is credited exactly once, and the batched
// journal records survive a broker crash/recovery — replays against the
// recovered broker still bounce.
func TestDepositBatchingConcurrentDurable(t *testing.T) {
	f := newFixture(t, fixtureOpts{
		persist:      &wal.Config{Dir: t.TempDir(), Policy: wal.FsyncNever},
		depositBatch: &DepositBatchConfig{MaxBatch: 16, MaxLinger: time.Millisecond},
	})
	alice := f.addPeer("alice", nil)

	const n = 48
	ids := make([]coin.ID, n)
	for i := range ids {
		ids[i] = mintHeld(t, alice, 1)
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = alice.Deposit(ids[i], "payout:many")
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("deposit %d: %v", i, err)
		}
	}
	if got := f.broker.Balance("payout:many"); got != n {
		t.Fatalf("payout balance = %d, want %d", got, n)
	}

	f.restartBroker()
	if got := f.broker.DepositedValue(); got != n {
		t.Fatalf("recovered deposited value = %d, want %d", got, n)
	}
}

// TestDepositManyMixedOutcomes drives the explicit BatchDepositRequest
// message: good deposits credit, and a within-batch duplicate of the same
// coin is demultiplexed to its own ErrAlreadyDeposited without poisoning
// its neighbors.
func TestDepositManyMixedOutcomes(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	alice := f.addPeer("alice", nil)

	a := mintHeld(t, alice, 2)
	b := mintHeld(t, alice, 3)
	outcomes, err := alice.DepositMany([]coin.ID{a, b, a}, "payout:mixed")
	if err != nil {
		t.Fatalf("DepositMany: %v", err)
	}
	if outcomes[0] != nil || outcomes[1] != nil {
		t.Fatalf("clean entries errored: %v / %v", outcomes[0], outcomes[1])
	}
	if !errors.Is(outcomes[2], ErrAlreadyDeposited) {
		t.Fatalf("duplicate entry error = %v, want ErrAlreadyDeposited", outcomes[2])
	}
	if got := f.broker.Balance("payout:mixed"); got != 5 {
		t.Fatalf("payout balance = %d, want 5", got)
	}
	if held := alice.HeldCoins(); len(held) != 0 {
		t.Fatalf("deposited coins still held: %v", held)
	}
	cases := f.broker.FraudCases()
	if len(cases) != 1 || cases[0].Kind != "double-deposit" {
		t.Fatalf("fraud cases = %+v, want one double-deposit", cases)
	}
}

// TestBatchDepositEmptyRejected: an empty batch is a malformed request.
func TestBatchDepositEmptyRejected(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	alice := f.addPeer("alice", nil)
	_, err := alice.call(f.broker.Addr(), BatchDepositRequest{})
	if !errors.Is(err, ErrBadRequest) {
		t.Fatalf("empty batch error = %v, want ErrBadRequest", err)
	}
}

// BenchmarkDepositBatch measures broker deposit throughput under an
// fsync-per-commit journal with 64 concurrent depositors: batch=1 is
// today's sequential path (nil batching config — one verify round and one
// fsync per deposit); batch=64 flushes whole groups through one signature
// fan-out and one journal append. The ratio is the amortization win.
func BenchmarkDepositBatch(b *testing.B) {
	for _, batch := range []int{1, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			var bc *DepositBatchConfig
			if batch > 1 {
				// A short linger lets a flush gather the whole worker
				// cohort instead of whatever queued during the last fsync.
				bc = &DepositBatchConfig{MaxBatch: batch, MaxLinger: 2 * time.Millisecond}
			}
			f := newFixture(b, fixtureOpts{
				persist:      &wal.Config{Dir: b.TempDir(), Policy: wal.FsyncAlways},
				depositBatch: bc,
			})
			alice := f.addPeer("alice", nil)
			ids, err := alice.PurchaseBatch(b.N, 1)
			if err != nil {
				b.Fatal(err)
			}
			for _, id := range ids {
				if err := alice.IssueTo(alice.Addr(), id); err != nil {
					b.Fatal(err)
				}
			}

			const workers = 64
			var next atomic.Int64
			var wg sync.WaitGroup
			b.ResetTimer()
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := int(next.Add(1)) - 1
						if i >= len(ids) {
							return
						}
						if err := alice.Deposit(ids[i], "payout:bench"); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
		})
	}
}
