package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"whopay/internal/coin"
)

// TestConcurrentPayments hammers the system from many goroutines at once:
// concurrent purchases, issues, transfers and deposits across a shared
// broker and DHT. Run under -race this validates the locking discipline of
// every entity; the conservation check validates the protocol under
// interleaving.
func TestConcurrentPayments(t *testing.T) {
	f := newFixture(t, fixtureOpts{detection: true})
	const n = 6
	peers := make([]*Peer, n)
	for i := range peers {
		peers[i] = f.addPeer(fmt.Sprintf("c%d", i), nil)
	}
	// Seed every peer with a coin so transfers dominate.
	for i, p := range peers {
		id, err := p.Purchase(1, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.IssueTo(peers[(i+1)%n].Addr(), id); err != nil {
			t.Fatal(err)
		}
	}

	const perPeer = 20
	var wg sync.WaitGroup
	errs := make(chan error, n*perPeer)
	for i := range peers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < perPeer; k++ {
				payee := peers[(i+1+k%(n-1))%n]
				if _, err := peers[i].Pay(payee.Addr(), 1, PolicyI); err != nil {
					errs <- fmt.Errorf("peer %d pay %d: %w", i, k, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		// Concurrent transfers of the SAME coin can race benignly
		// (one wins, the other retries through policy fallback and
		// purchases); a hard failure here means the fallback chain
		// itself broke.
		t.Error(err)
	}

	// Conservation under concurrency.
	var circulating int64
	for _, p := range peers {
		circulating += p.HeldValue()
		p.owned.Range(func(_ coin.ID, oc *ownedCoin) bool {
			if oc.selfHeld {
				circulating += oc.c.Value
			}
			return true
		})
	}
	if minted := f.broker.IssuedValue(); minted != f.broker.DepositedValue()+circulating {
		t.Fatalf("value leak under concurrency: minted %d, redeemed %d, circulating %d",
			minted, f.broker.DepositedValue(), circulating)
	}
}

// TestCoinBusyContention: the per-coin service lock rejects — rather than
// queues — concurrent work on the same coin, and the rejection is the
// retryable ErrCoinBusy sentinel: once the in-flight service finishes, a
// plain retry of the loser succeeds because nothing was committed against it.
func TestCoinBusyContention(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	owner := f.addPeer("busy-owner", nil)
	holder := f.addPeer("busy-holder", nil)
	w := f.addPeer("busy-w", nil)
	x := f.addPeer("busy-x", nil)

	id, err := owner.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.IssueTo(holder.Addr(), id); err != nil {
		t.Fatal(err)
	}

	// Pin the coin's service lock, exactly as another in-flight transfer
	// would hold it, so contention is deterministic rather than a timing
	// lottery.
	oc, _ := owner.owned.Get(id)
	oc.svc.Lock()

	// A renewal against the busy coin must come back as the ErrCoinBusy
	// sentinel — still matchable with errors.Is after the bus hop — and
	// must not have advanced anything.
	if _, err := holder.Renew(id); !errors.Is(err, ErrCoinBusy) {
		oc.svc.Unlock()
		t.Fatalf("renew against busy coin: got %v, want ErrCoinBusy", err)
	}

	// Two transfers of the busy coin, fired concurrently: both lose, both
	// with the retryable code, neither commits.
	buildReq := func(payee *Peer) TransferRequest {
		resp, err := holder.ep.Call(payee.Addr(), OfferRequest{Value: 1})
		if err != nil {
			t.Fatal(err)
		}
		hc, _ := holder.held.Get(id)
		req, err := holder.buildTransfer(hc, payee.Addr(), resp.(OfferResponse))
		if err != nil {
			t.Fatal(err)
		}
		return req
	}
	hc, _ := holder.held.Get(id)
	reqW, reqX := buildReq(w), buildReq(x)

	var wg sync.WaitGroup
	busyErrs := make([]error, 2)
	for i, req := range []TransferRequest{reqW, reqX} {
		wg.Add(1)
		go func(i int, req TransferRequest) {
			defer wg.Done()
			_, busyErrs[i] = holder.callOwner(hc.c, req)
		}(i, req)
	}
	wg.Wait()
	for i, err := range busyErrs {
		if !errors.Is(err, ErrCoinBusy) {
			t.Fatalf("concurrent transfer %d against busy coin: got %v, want ErrCoinBusy", i, err)
		}
	}

	// The in-flight service completes; the losers retry. The first retry
	// wins — its request is still current, because busy rejections commit
	// nothing. The second is then genuinely stale, not busy: ErrCoinBusy
	// precisely distinguishes "try again" from "give up".
	oc.svc.Unlock()
	raw, err := holder.callOwner(hc.c, reqW)
	if err != nil {
		t.Fatalf("retry after busy: %v", err)
	}
	if tr := raw.(TransferResponse); !tr.OK {
		t.Fatalf("retry after busy refused: %s", tr.Reason)
	}
	if _, err := holder.callOwner(hc.c, reqX); !errors.Is(err, ErrStaleBinding) {
		t.Fatalf("replay of superseded transfer: got %v, want ErrStaleBinding", err)
	}
	if got := len(w.HeldCoins()); got != 1 {
		t.Fatalf("winner holds %d coins, want 1", got)
	}
	if got := len(x.HeldCoins()); got != 0 {
		t.Fatalf("loser holds %d coins, want 0", got)
	}
}

// TestConcurrentDoubleSpendRace: two transfer requests citing the same
// sequence number race each other; per-coin service serialization
// guarantees at most one succeeds — the TOCTOU double spend is impossible.
func TestConcurrentDoubleSpendRace(t *testing.T) {
	for round := 0; round < 10; round++ {
		f := newFixture(t, fixtureOpts{})
		u := f.addPeer(fmt.Sprintf("u%d", round), nil)
		v := f.addPeer(fmt.Sprintf("v%d", round), nil)
		w := f.addPeer(fmt.Sprintf("w%d", round), nil)
		x := f.addPeer(fmt.Sprintf("x%d", round), nil)

		id, err := u.Purchase(1, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := u.IssueTo(v.Addr(), id); err != nil {
			t.Fatal(err)
		}
		// Build two racing transfer requests from the same holder state.
		hc, _ := v.held.Get(id)
		buildReq := func(payee *Peer) TransferRequest {
			resp, err := v.ep.Call(payee.Addr(), OfferRequest{Value: 1})
			if err != nil {
				t.Fatal(err)
			}
			req, err := v.buildTransfer(hc, payee.Addr(), resp.(OfferResponse))
			if err != nil {
				t.Fatal(err)
			}
			return req
		}
		reqW := buildReq(w)
		reqX := buildReq(x)

		var wg sync.WaitGroup
		results := make([]error, 2)
		for i, req := range []TransferRequest{reqW, reqX} {
			wg.Add(1)
			go func(i int, req TransferRequest) {
				defer wg.Done()
				raw, err := v.callOwner(hc.c, req)
				if err != nil {
					results[i] = err
					return
				}
				if tr := raw.(TransferResponse); !tr.OK {
					results[i] = fmt.Errorf("refused: %s", tr.Reason)
				}
			}(i, req)
		}
		wg.Wait()

		wins := 0
		for _, err := range results {
			if err == nil {
				wins++
			}
		}
		if wins > 1 {
			t.Fatalf("round %d: both racing transfers succeeded — double spend", round)
		}
		// Exactly one payee may hold the coin.
		holders := len(w.HeldCoins()) + len(x.HeldCoins())
		if holders > 1 {
			t.Fatalf("round %d: coin held by %d payees", round, holders)
		}
		if wins == 1 && holders != 1 {
			t.Fatalf("round %d: winner reported but coin lost", round)
		}
	}
}
