package core

import (
	"errors"
	"strings"
	"testing"

	"whopay/internal/bus"
	"whopay/internal/sig"
)

// TestBrokerFlavorTwoBitComparison: after a first downtime operation the
// broker holds the coin's binding, so the next downtime operation verifies
// the presented binding by bit-comparison alone — the paper's "flavor two"
// — with no extra signature verification of the binding.
func TestBrokerFlavorTwoBitComparison(t *testing.T) {
	var bRec sig.Counter
	f := newFixtureWithBrokerRecorder(t, &bRec)
	u := f.addPeer("u", nil)
	v := f.addPeer("v", nil)
	w := f.addPeer("w", nil)
	id, err := u.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatal(err)
	}
	u.GoOffline()
	// First downtime op: flavor one (verify the owner-signed binding).
	if err := v.TransferViaBroker(w.Addr(), id); err != nil {
		t.Fatal(err)
	}
	flavor1 := bRec.Snapshot()
	// Second downtime op: the broker now has state; flavor two.
	if err := w.TransferViaBroker(v.Addr(), id); err != nil {
		t.Fatal(err)
	}
	flavor2 := bRec.Snapshot()

	// Flavor one verifies holder sig + group sig + presented binding =
	// 2 regular verifies; flavor two skips the binding verification =
	// 1 regular verify.
	v1 := flavor1.Verifies
	v2 := flavor2.Verifies - flavor1.Verifies
	if v2 >= v1 {
		t.Fatalf("flavor two (%d verifies) not cheaper than flavor one (%d)", v2, v1)
	}
}

// TestBrokerBudget: with InitialCredit set, purchases debit and deposits
// refill; overdrafts are rejected with ErrInsufficientFunds.
func TestBrokerBudget(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	broker, err := NewBroker(BrokerConfig{
		Network:       f.net,
		Addr:          "broker-budget",
		Scheme:        f.scheme,
		Clock:         f.clock.Now,
		Directory:     f.dir,
		GroupPub:      f.judge.GroupPublicKey(),
		InitialCredit: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { broker.Close() })
	f.broker = broker

	buyer := f.addPeer("buyer", nil)
	payee := f.addPeer("payee", nil)
	if _, err := buyer.Purchase(1, false); err != nil {
		t.Fatal(err)
	}
	if _, err := buyer.Purchase(1, false); err != nil {
		t.Fatal(err)
	}
	// Budget exhausted.
	_, err = buyer.Purchase(1, false)
	var remote *bus.RemoteError
	if !errors.As(err, &remote) || !strings.Contains(remote.Msg, "insufficient") {
		t.Fatalf("overdraft = %v, want insufficient funds", err)
	}
	if broker.Balance("buyer") != 0 {
		t.Fatalf("balance = %d", broker.Balance("buyer"))
	}
	// Issue one coin to the payee; the payee deposits it to its own
	// account and can then purchase.
	ids := buyer.SelfHeldCoins()
	if err := buyer.IssueTo(payee.Addr(), ids[0]); err != nil {
		t.Fatal(err)
	}
	heldID := payee.HeldCoins()[0]
	if err := payee.Deposit(heldID, "payee"); err != nil {
		t.Fatal(err)
	}
	if broker.Balance("payee") != 3 { // 2 initial + 1 deposit
		t.Fatalf("payee balance = %d", broker.Balance("payee"))
	}
	if _, err := payee.Purchase(1, false); err != nil {
		t.Fatalf("funded purchase: %v", err)
	}
	// Policy-level integration: a broke payer with an offline coin falls
	// through purchase-issue to deposit-purchase-issue even under
	// policy I-style preference... (policy I lacks the deposit method,
	// so it simply fails; policy III succeeds).
	u2 := f.addPeer("owner2", nil)
	broke := f.addPeer("broke", nil)
	id2, err := u2.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u2.IssueTo(broke.Addr(), id2); err != nil {
		t.Fatal(err)
	}
	// Exhaust broke's budget and wallet: buy both allowed coins and
	// issue them away, leaving only the offline-owner coin.
	for i := 0; i < 2; i++ {
		bid, err := broke.Purchase(1, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := broke.IssueTo(payee.Addr(), bid); err != nil {
			t.Fatal(err)
		}
	}
	u2.GoOffline()
	method, err := broke.Pay(payee.Addr(), 1, PolicyIII)
	if err != nil {
		t.Fatalf("policy III broke payment: %v", err)
	}
	if method != MethodDepositPurchaseIssue {
		t.Fatalf("method = %v, want deposit-purchase-issue", method)
	}
}

// TestPolicyIIbNeverUsesBrokerUntilLast: II.b prefers buying over downtime
// transfers.
func TestPolicyIIbNeverUsesBrokerUntilLast(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	owner := f.addPeer("owner", nil)
	payer := f.addPeer("payer", nil)
	payee := f.addPeer("payee", nil)
	id, err := owner.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.IssueTo(payer.Addr(), id); err != nil {
		t.Fatal(err)
	}
	owner.GoOffline()
	// II.b: transfer-online (no), issue-existing (no), purchase-issue
	// (yes) — never touches the downtime path here.
	f.pay(payer, payee, PolicyIIb, MethodPurchaseIssue)
	if f.broker.Ops().Get(OpDowntimeTransfer) != 0 {
		t.Fatal("II.b used a downtime transfer prematurely")
	}
	// But with purchasing impossible (frozen), II.b does fall back to
	// the broker transfer.
	f.broker.Freeze("payer")
	f.pay(payer, payee, PolicyIIb, MethodTransferViaBroker)
}

// TestBrokerRejectsUnknownMessage covers the default dispatch arm.
func TestBrokerRejectsUnknownMessage(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	ep, err := f.net.Listen("stranger", func(bus.Address, any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if _, err := ep.Call(f.broker.Addr(), 42); err == nil {
		t.Fatal("broker accepted an unknown message type")
	}
}

// TestPeerRejectsUnknownMessage covers the peer's default dispatch arm.
func TestPeerRejectsUnknownMessage(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	p := f.addPeer("p", nil)
	ep, err := f.net.Listen("stranger", func(bus.Address, any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if _, err := ep.Call(p.Addr(), "gibberish"); err == nil {
		t.Fatal("peer accepted an unknown message type")
	}
}

// TestDepositUnknownCoin and double-spend of never-issued coins.
func TestDepositUnknownCoin(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	v := f.addPeer("v", nil)
	if err := v.Deposit("no-such-coin", "ref"); !errors.Is(err, ErrUnknownCoin) {
		t.Fatalf("got %v, want ErrUnknownCoin", err)
	}
}

// TestTransferUnknownCoin covers payer-side validation.
func TestTransferUnknownCoin(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	v := f.addPeer("v", nil)
	w := f.addPeer("w", nil)
	if err := v.TransferTo(w.Addr(), "no-such-coin"); !errors.Is(err, ErrUnknownCoin) {
		t.Fatalf("got %v, want ErrUnknownCoin", err)
	}
	if _, err := v.Renew("no-such-coin"); !errors.Is(err, ErrUnknownCoin) {
		t.Fatalf("got %v, want ErrUnknownCoin", err)
	}
}

// TestIssueRequiresSelfHeld: an owner cannot re-issue an already-issued
// coin.
func TestIssueRequiresSelfHeld(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	u := f.addPeer("u", nil)
	v := f.addPeer("v", nil)
	w := f.addPeer("w", nil)
	id, err := u.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(w.Addr(), id); err == nil {
		t.Fatal("double issue via IssueTo succeeded")
	}
}

// TestBatchPurchase: one round-trip, one signature, n coins.
func TestBatchPurchase(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	var rec sig.Counter
	u := f.addPeer("u", &rec)
	v := f.addPeer("v", nil)
	ids, err := u.PurchaseBatch(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 5 || len(u.SelfHeldCoins()) != 5 {
		t.Fatalf("batch = %d coins", len(ids))
	}
	// Cost: 5 keygens but only ONE signature and 5 verifies.
	snap := rec.Snapshot()
	if snap.Signs != 1 || snap.KeyGens != 5 {
		t.Fatalf("batch micro-ops = %+v", snap)
	}
	// One purchase op, not five.
	if f.broker.Ops().Get(OpPurchase) != 1 {
		t.Fatalf("purchases = %d", f.broker.Ops().Get(OpPurchase))
	}
	// The coins are ordinary coins: issue one end to end.
	if err := u.IssueTo(v.Addr(), ids[2]); err != nil {
		t.Fatal(err)
	}
	if v.HeldValue() != 1 {
		t.Fatal("batch coin not spendable")
	}
	if f.broker.IssuedValue() != 5 {
		t.Fatalf("issued value = %d", f.broker.IssuedValue())
	}
}

// TestBatchPurchaseValidation: bad batches bounce.
func TestBatchPurchaseValidation(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	u := f.addPeer("u", nil)
	if _, err := u.PurchaseBatch(0, 1); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := u.PurchaseBatch(3, -1); err == nil {
		t.Fatal("negative value accepted")
	}
	f.broker.Freeze("u")
	if _, err := u.PurchaseBatch(2, 1); err == nil {
		t.Fatal("frozen buyer batched")
	}
}

// TestBatchPurchaseBudget: the batch debits value × n.
func TestBatchPurchaseBudget(t *testing.T) {
	var rec sig.Counter
	f := newFixtureWithBrokerRecorder(t, &rec)
	broker, err := NewBroker(BrokerConfig{
		Network:       f.net,
		Addr:          "broker3",
		Scheme:        f.scheme,
		Clock:         f.clock.Now,
		Directory:     f.dir,
		GroupPub:      f.judge.GroupPublicKey(),
		InitialCredit: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { broker.Close() })
	f.broker = broker
	u := f.addPeer("u", nil)
	if _, err := u.PurchaseBatch(4, 1); err == nil {
		t.Fatal("overdraft batch accepted")
	}
	if _, err := u.PurchaseBatch(3, 1); err != nil {
		t.Fatal(err)
	}
	if broker.Balance("u") != 0 {
		t.Fatalf("balance = %d", broker.Balance("u"))
	}
}
