package core

import (
	"errors"
	"fmt"
	mrand "math/rand"
	"os"
	"strconv"
	"testing"

	"whopay/internal/coin"
	"whopay/internal/wal"
	"whopay/internal/wal/crashfs"
)

// The crash suite is the chaos suite's durability sibling: instead of
// dropping messages, it kills an entity's journal at exact byte boundaries
// (internal/wal/crashfs, prefix-loss model), recovers the entity from the
// bytes a dead process would have left behind, and asserts the same safety
// invariants over the recovered world:
//
//  1. Recovery always succeeds: a torn or corrupt journal tail is
//     CRC-detected and discarded, never half-applied.
//  2. No double spend: redeemed value never exceeds minted value, and the
//     recovered books stay internally consistent (credited balances equal
//     redeemed value).
//  3. At-most-one ambiguous operation: the driver is sequential and stops
//     at the first journaling failure, so after a drain the only value that
//     may go unredeemed is the single operation in flight at the crash —
//     acked from memory but cut from the journal.
//  4. Faults never punish honest parties: no owner-fraud verdicts, nobody
//     frozen, even when recovery resurrects pre-crash custody views.
//
// Crash points are swept exhaustively through the downtime-transfer window
// (the multi-record commit the paper's Section 4 protocol depends on) and
// sampled across the rest of the run; WHOPAY_CRASH_SEED seeds the sampling
// and WHOPAY_CRASH_BUDGET pins one exact byte budget for reproduction.

// crashStep is one scripted operation. atStake is the coin value that may
// legitimately go unredeemed if the crash cuts this step's journal writes.
type crashStep struct {
	name    string
	atStake int64
	run     func() error
}

// crashWorld is one broker-crash scenario: a persisted broker (journal on
// the injected filesystem), three plain peers, and a scripted workload
// touching every journaled table.
type crashWorld struct {
	t            *testing.T
	f            *fixture
	alice        *Peer
	bob          *Peer
	carol        *Peer
	idA, idB     coin.ID
	idC          coin.ID
	aliceOffline bool
	steps        []crashStep
}

func newBrokerCrashWorld(t *testing.T, dir string, fs wal.FS) *crashWorld {
	t.Helper()
	f := newFixture(t, fixtureOpts{persist: &wal.Config{Dir: dir, Policy: wal.FsyncNever, FS: fs}})
	w := &crashWorld{t: t, f: f}
	w.alice = f.addPeer("alice", nil)
	w.bob = f.addPeer("bob", nil)
	w.carol = f.addPeer("carol", nil)
	w.steps = []crashStep{
		{"purchase-a", 3, func() error { id, err := w.alice.Purchase(3, false); w.idA = id; return err }},
		{"purchase-b", 5, func() error { id, err := w.alice.Purchase(5, false); w.idB = id; return err }},
		{"purchase-c", 7, func() error { id, err := w.bob.Purchase(7, false); w.idC = id; return err }},
		{"issue-a", 0, func() error { return w.alice.IssueTo(w.bob.Addr(), w.idA) }},
		{"issue-c-self", 0, func() error { return w.bob.IssueTo(w.bob.Addr(), w.idC) }},
		{"deposit-c", 7, func() error { return w.bob.Deposit(w.idC, w.bob.ID()) }},
		{"offline", 0, func() error { w.alice.GoOffline(); w.aliceOffline = true; return nil }},
		{"downtime-transfer", 3, func() error { return w.bob.TransferViaBroker(w.carol.Addr(), w.idA) }},
		{"online", 0, func() error { err := w.alice.GoOnline(); w.aliceOffline = err != nil; return err }},
		{"deposit-a", 3, func() error { return w.carol.Deposit(w.idA, w.carol.ID()) }},
		{"freeze", 0, func() error { w.f.broker.Freeze("mallory"); return nil }},
	}
	return w
}

// runSteps executes the workload, stopping at the first journaling failure
// (the modeled process death). It returns the index of the crashing step,
// or -1 when the whole workload completed with a healthy journal. Steps
// themselves must not fail: journal failures never block the in-memory
// protocol, so any error is a driver bug, not a crash symptom.
func (w *crashWorld) runSteps(after func(i int)) int {
	w.t.Helper()
	for i, step := range w.steps {
		if err := step.run(); err != nil {
			w.t.Fatalf("step %s: %v", step.name, err)
		}
		if after != nil {
			after(i)
		}
		if w.f.broker.PersistenceErr() != nil {
			return i
		}
	}
	return -1
}

func (w *crashWorld) peers() []*Peer { return []*Peer{w.alice, w.bob, w.carol} }

// crashSweepDeposit mirrors the chaos sweep: redeem one coin, pulling a
// missed binding from the public list on a stale report, tolerating coins
// the recovered broker no longer knows (the one ambiguous operation).
func crashSweepDeposit(p *Peer, id coin.ID) {
	err := p.Deposit(id, p.ID())
	if err == nil || errors.Is(err, ErrAlreadyDeposited) {
		return
	}
	if errors.Is(err, ErrStaleBinding) {
		_ = p.RecoverHeldBinding(id)
		_ = p.Deposit(id, p.ID())
	}
}

// drain heals the world after recovery and redeems every redeemable coin.
// Self-held coins that any peer also holds are skipped: re-issuing one
// would sign a second binding for the same sequence and frame an honest
// owner (same guard as the chaos recovery phase).
func (w *crashWorld) drain() {
	if w.aliceOffline {
		_ = w.alice.GoOnline()
		w.aliceOffline = false
	}
	heldByAnyone := make(map[coin.ID]bool)
	for _, p := range w.peers() {
		for _, id := range p.HeldCoins() {
			heldByAnyone[id] = true
		}
	}
	for _, p := range w.peers() {
		for _, id := range p.HeldCoins() {
			crashSweepDeposit(p, id)
		}
	}
	for _, p := range w.peers() {
		for _, id := range p.SelfHeldCoins() {
			if heldByAnyone[id] {
				continue
			}
			if err := p.IssueTo(p.Addr(), id); err != nil {
				continue
			}
			crashSweepDeposit(p, id)
		}
	}
}

// assertCrashInvariants checks the recovered-and-drained books. allowed is
// the at-stake value of the crashing step: the only value that may remain
// unredeemed.
func (w *crashWorld) assertCrashInvariants(label string, allowed int64) {
	t := w.t
	t.Helper()
	fail := func(format string, args ...any) {
		t.Helper()
		t.Errorf("[%s] "+format, append([]any{label}, args...)...)
	}
	issued := w.f.broker.IssuedValue()
	deposited := w.f.broker.DepositedValue()
	if deposited > issued {
		fail("double spend accepted: redeemed %d of %d minted", deposited, issued)
	}
	var balances int64
	for _, p := range w.peers() {
		balances += w.f.broker.Balance(p.ID())
	}
	if balances != deposited {
		fail("credited balances %d != redeemed value %d", balances, deposited)
	}
	if leftover := issued - deposited; leftover != 0 && leftover != allowed {
		fail("value not conserved: minted %d, redeemed %d, leftover %d (allowed 0 or %d)",
			issued, deposited, leftover, allowed)
	}
	for _, fc := range w.f.broker.FraudCases() {
		if fc.Kind == "owner-fraud" || fc.Punished != "" {
			fail("honest party punished: case %+v", fc)
		}
	}
	for _, p := range w.peers() {
		if w.f.broker.Frozen(p.ID()) {
			fail("honest peer %s frozen", p.ID())
		}
	}
}

// crashSeed returns the sampling seed (WHOPAY_CRASH_SEED overrides).
func crashSeed(t *testing.T) int64 {
	if env := os.Getenv("WHOPAY_CRASH_SEED"); env != "" {
		seed, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("WHOPAY_CRASH_SEED=%q: %v", env, err)
		}
		return seed
	}
	return 1
}

// crashBudgets picks the byte budgets to sweep: every boundary of the
// exhaustive window, samples across the rest of [lo, hi], and hi+1 as the
// crash-free control. WHOPAY_CRASH_BUDGET pins a single budget.
func crashBudgets(t *testing.T, lo, hi, winLo, winHi, seed int64) []int64 {
	if env := os.Getenv("WHOPAY_CRASH_BUDGET"); env != "" {
		b, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("WHOPAY_CRASH_BUDGET=%q: %v", env, err)
		}
		return []int64{b}
	}
	rng := mrand.New(mrand.NewSource(seed))
	picked := make(map[int64]bool)
	add := func(b int64) {
		if b >= lo && b <= hi+1 {
			picked[b] = true
		}
	}
	// Small journals get the full treatment: every byte boundary is a
	// crash point.
	const exhaustiveCap = 8 << 10
	if hi-lo <= exhaustiveCap {
		for b := lo; b <= hi+1; b++ {
			add(b)
		}
	} else {
		// Exhaustive through the window (capped), the multi-record commit
		// most likely to tear; samples across the rest.
		const winCap = 1024
		if winHi-winLo <= winCap {
			for b := winLo; b <= winHi; b++ {
				add(b)
			}
		} else {
			for i := 0; i < winCap; i++ {
				add(winLo + rng.Int63n(winHi-winLo+1))
			}
		}
		const spread = 128
		for i := int64(0); i <= spread; i++ {
			add(lo + i*(hi-lo)/spread)
		}
		for i := 0; i < spread; i++ {
			add(lo + rng.Int63n(hi-lo+1))
		}
		add(lo)
		add(hi + 1) // control: the journal survives untouched
	}
	out := make([]int64, 0, len(picked))
	for b := range picked {
		out = append(out, b)
	}
	return out
}

// TestBrokerCrashSweep is the headline crash run: a probe sizes the
// journal and locates the downtime-transfer write window, then each chosen
// byte budget gets a fresh world, a crash, a recovery from the on-disk
// prefix, and the full invariant check.
func TestBrokerCrashSweep(t *testing.T) {
	// The sampling seed is derived per sweep — the env base hashed with
	// the test name — so the broker and peer sweeps draw independent
	// budget sets from one WHOPAY_CRASH_SEED, and re-running this test
	// alone samples exactly what it sampled inside the full run. A single
	// budget reproduces alone via WHOPAY_CRASH_BUDGET, which bypasses
	// sampling entirely.
	seed := deriveSeed(crashSeed(t), "TestBrokerCrashSweep")

	// Probe run: count bytes, note each step's write offsets.
	probeFS := crashfs.Count(wal.OS())
	probe := newBrokerCrashWorld(t, t.TempDir(), probeFS)
	setup := probeFS.Written()
	offsets := make([]int64, len(probe.steps))
	if crashed := probe.runSteps(func(i int) { offsets[i] = probeFS.Written() }); crashed != -1 {
		t.Fatalf("probe run crashed at step %d", crashed)
	}
	total := probeFS.Written()
	winLo, winHi := setup, total
	for i, step := range probe.steps {
		if step.name == "downtime-transfer" {
			if i > 0 {
				winLo = offsets[i-1]
			}
			winHi = offsets[i]
		}
	}

	budgets := crashBudgets(t, setup, total, winLo, winHi, seed)
	t.Logf("crash sweep: journal setup=%dB total=%dB, downtime window [%d,%d], %d crash points (seed %d)",
		setup, total, winLo, winHi, len(budgets), seed)

	for _, budget := range budgets {
		budget := budget
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			dir := t.TempDir()
			w := newBrokerCrashWorld(t, dir, crashfs.Limit(wal.OS(), budget))
			crashedAt := w.runSteps(nil)
			var allowed int64
			if crashedAt >= 0 {
				allowed = w.steps[crashedAt].atStake
			}
			// The process is dead; recover from the real filesystem.
			w.f.brokerCfg.Persistence = &wal.Config{Dir: dir, Policy: wal.FsyncNever}
			w.f.restartBroker()
			if !w.f.broker.Recovered() {
				t.Fatal("recovered broker reports no durable state")
			}
			w.drain()
			label := fmt.Sprintf("crash budget %d, step %d, sampling seed %d — reproduce alone with WHOPAY_CRASH_BUDGET=%d",
				budget, crashedAt, seed, budget)
			w.assertCrashInvariants(label, allowed)
		})
	}
}

// TestBrokerCorruptTailRecovers flips bytes in the newest journal segment
// of a cleanly finished run: recovery must CRC-detect the damage, seal the
// log there, and come back with internally consistent books — never a
// half-applied record.
func TestBrokerCorruptTailRecovers(t *testing.T) {
	for _, back := range []int64{1, 7, 64} {
		back := back
		t.Run(fmt.Sprintf("back=%d", back), func(t *testing.T) {
			dir := t.TempDir()
			w := newBrokerCrashWorld(t, dir, nil)
			if crashed := w.runSteps(nil); crashed != -1 {
				t.Fatalf("workload crashed at step %d without injection", crashed)
			}
			if err := w.f.broker.Close(); err != nil {
				t.Fatal(err)
			}
			files, err := wal.Files(nil, dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(files) == 0 {
				t.Fatal("no journal files after a persisted run")
			}
			path := files[len(files)-1]
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if int64(len(raw)) <= back {
				t.Skipf("segment smaller than corruption offset %d", back)
			}
			raw[int64(len(raw))-back] ^= 0xff
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			nb, err := RecoverBroker(w.f.brokerCfg)
			if err != nil {
				t.Fatalf("recovery from corrupt tail: %v", err)
			}
			w.f.broker = nb
			// The corruption may have discarded any suffix of the run, so
			// conservation is not assertable — internal consistency and
			// no-punishment are.
			issued := nb.IssuedValue()
			deposited := nb.DepositedValue()
			if deposited > issued {
				t.Errorf("double spend after corrupt-tail recovery: %d of %d", deposited, issued)
			}
			var balances int64
			for _, p := range w.peers() {
				balances += nb.Balance(p.ID())
			}
			if balances != deposited {
				t.Errorf("balances %d != redeemed %d after corrupt-tail recovery", balances, deposited)
			}
			for _, fc := range nb.FraudCases() {
				if fc.Kind == "owner-fraud" || fc.Punished != "" {
					t.Errorf("honest party punished after corruption: %+v", fc)
				}
			}
		})
	}
}

// TestPeerCrashSweep points the injector at a peer's wallet journal
// instead: the broker (plain, never crashing) is the ground truth that the
// recovered wallet can neither double-spend nor get punished, and at most
// the one ambiguous operation's value evaporates.
func TestPeerCrashSweep(t *testing.T) {
	// Derived per sweep, like TestBrokerCrashSweep: one env base, an
	// independent budget sample per test, single budgets pinned via
	// WHOPAY_CRASH_BUDGET.
	seed := deriveSeed(crashSeed(t), "TestPeerCrashSweep")

	type peerWorld struct {
		f          *fixture
		alice, bob *Peer
		carol      *Peer
		idA, idC   coin.ID
		steps      []crashStep
	}
	build := func(t *testing.T, dir string, fs wal.FS) *peerWorld {
		f := newFixture(t, fixtureOpts{})
		cfg := f.peerConfig("alice", nil)
		cfg.Persistence = &wal.Config{Dir: dir, Policy: wal.FsyncNever, FS: fs}
		w := &peerWorld{f: f}
		w.alice = f.addPeerWith(cfg)
		w.bob = f.addPeer("bob", nil)
		w.carol = f.addPeer("carol", nil)
		w.steps = []crashStep{
			{"purchase-a", 3, func() error { id, err := w.alice.Purchase(3, false); w.idA = id; return err }},
			{"purchase-b", 5, func() error { _, err := w.alice.Purchase(5, false); return err }},
			{"issue-a", 3, func() error { return w.alice.IssueTo(w.bob.Addr(), w.idA) }},
			{"transfer-a", 3, func() error { return w.bob.TransferTo(w.carol.Addr(), w.idA) }},
			{"purchase-c", 0, func() error { id, err := w.bob.Purchase(7, false); w.idC = id; return err }},
			{"issue-c", 7, func() error { return w.bob.IssueTo(w.alice.Addr(), w.idC) }},
			{"deposit-c", 7, func() error { return w.alice.Deposit(w.idC, w.alice.ID()) }},
		}
		return w
	}
	peersOf := func(w *peerWorld) []*Peer { return []*Peer{w.alice, w.bob, w.carol} }
	run := func(t *testing.T, w *peerWorld, after func(int)) int {
		t.Helper()
		for i, step := range w.steps {
			if err := step.run(); err != nil {
				t.Fatalf("step %s: %v", step.name, err)
			}
			if after != nil {
				after(i)
			}
			if w.alice.PersistenceErr() != nil {
				return i
			}
		}
		return -1
	}

	probeFS := crashfs.Count(wal.OS())
	probe := build(t, t.TempDir(), probeFS)
	setup := probeFS.Written()
	if crashed := run(t, probe, nil); crashed != -1 {
		t.Fatalf("probe run crashed at step %d", crashed)
	}
	total := probeFS.Written()
	budgets := crashBudgets(t, setup, total, setup, total, seed)
	t.Logf("peer crash sweep: journal setup=%dB total=%dB, %d crash points (seed %d)",
		setup, total, len(budgets), seed)

	for _, budget := range budgets {
		budget := budget
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			dir := t.TempDir()
			w := build(t, dir, crashfs.Limit(wal.OS(), budget))
			crashedAt := run(t, w, nil)
			var allowed int64
			if crashedAt >= 0 {
				allowed = w.steps[crashedAt].atStake
			}
			cfg := w.f.peerConfig("alice", nil)
			cfg.ID = w.alice.ID()
			cfg.Addr = w.alice.Addr()
			cfg.Persistence = &wal.Config{Dir: dir, Policy: wal.FsyncNever}
			w.alice = w.f.restartPeer(w.alice, cfg)
			if !w.alice.Recovered() {
				t.Fatal("recovered peer reports no durable state")
			}

			// Drain with the anti-framing guard: the recovered wallet may
			// believe it still owns a coin someone else provably holds.
			heldByAnyone := make(map[coin.ID]bool)
			for _, p := range peersOf(w) {
				for _, id := range p.HeldCoins() {
					heldByAnyone[id] = true
				}
			}
			for _, p := range peersOf(w) {
				for _, id := range p.HeldCoins() {
					crashSweepDeposit(p, id)
				}
			}
			for _, p := range peersOf(w) {
				for _, id := range p.SelfHeldCoins() {
					if heldByAnyone[id] {
						continue
					}
					if err := p.IssueTo(p.Addr(), id); err != nil {
						continue
					}
					crashSweepDeposit(p, id)
				}
			}

			label := fmt.Sprintf("peer crash budget %d, step %d, sampling seed %d — reproduce alone with WHOPAY_CRASH_BUDGET=%d",
				budget, crashedAt, seed, budget)
			issued := w.f.broker.IssuedValue()
			deposited := w.f.broker.DepositedValue()
			if deposited > issued {
				t.Errorf("[%s] double spend accepted: redeemed %d of %d minted", label, deposited, issued)
			}
			var balances int64
			for _, p := range peersOf(w) {
				balances += w.f.broker.Balance(p.ID())
			}
			if balances != deposited {
				t.Errorf("[%s] balances %d != redeemed %d", label, balances, deposited)
			}
			if leftover := issued - deposited; leftover != 0 && leftover != allowed {
				t.Errorf("[%s] leftover %d (allowed 0 or %d)", label, leftover, allowed)
			}
			for _, fc := range w.f.broker.FraudCases() {
				if fc.Kind == "owner-fraud" || fc.Punished != "" {
					t.Errorf("[%s] honest party punished: %+v", label, fc)
				}
			}
			for _, p := range peersOf(w) {
				if w.f.broker.Frozen(p.ID()) {
					t.Errorf("[%s] honest peer %s frozen", label, p.ID())
				}
			}
		})
	}
}

// TestCrashDHTRestartRejoin is the tentpole's third scenario at the system
// level: every DHT node crash-restarts mid-economy, and the public binding
// list — publishing, payee checks, watch notifications — keeps working on
// the recovered nodes, through to full redemption.
func TestCrashDHTRestartRejoin(t *testing.T) {
	f := newFixture(t, fixtureOpts{
		detection:  true,
		dhtPersist: &wal.Config{Dir: t.TempDir(), Policy: wal.FsyncNever},
	})
	alice := f.addPeer("alice", nil)
	bob := f.addPeer("bob", nil)
	carol := f.addPeer("carol", nil)

	idA, err := alice.Purchase(3, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.IssueTo(bob.Addr(), idA); err != nil {
		t.Fatal(err)
	}

	for i := range f.dhtCl.Nodes() {
		if err := f.dhtCl.Restart(i); err != nil {
			t.Fatalf("restarting DHT node %d: %v", i, err)
		}
	}
	for i, n := range f.dhtCl.Nodes() {
		if err := n.PersistenceErr(); err != nil {
			t.Fatalf("DHT node %d journaling: %v", i, err)
		}
	}

	// The published binding survived the restarts: carol's payee-side
	// public-binding check runs against the recovered nodes.
	if err := bob.TransferTo(carol.Addr(), idA); err != nil {
		t.Fatalf("transfer across restarted DHT: %v", err)
	}
	// New publications land on the recovered nodes too.
	idB, err := alice.Purchase(5, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.IssueTo(bob.Addr(), idB); err != nil {
		t.Fatalf("issue across restarted DHT: %v", err)
	}
	if err := carol.Deposit(idA, carol.ID()); err != nil {
		t.Fatal(err)
	}
	if err := bob.Deposit(idB, bob.ID()); err != nil {
		t.Fatal(err)
	}
	if got, want := f.broker.DepositedValue(), f.broker.IssuedValue(); got != want {
		t.Errorf("after drain: deposited %d != issued %d", got, want)
	}
}
