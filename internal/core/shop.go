package core

import (
	"fmt"

	"whopay/internal/bus"
	"whopay/internal/coin"
)

// Coin shops (paper Section 5.2, second approach to issuer anonymity):
// dedicated peers that purchase coins from the broker in bulk and issue
// them to ordinary peers for a fee. Ordinary peers then never issue coins
// themselves — every payment they make is an (anonymous) transfer — so the
// identity exposure of the issue procedure concentrates on shops, which do
// not care about anonymity.
//
// A shop is a regular Peer with stocking and vending behaviour layered on
// top: it remains the owner of every coin it vends and therefore services
// the transfers of all circulating shop coins — concentrating load exactly
// the way the paper's "super peer" discussion anticipates.

// Shop wraps a Peer acting as a coin shop.
type Shop struct {
	*Peer
	// FeePercent is the shop's margin, in percent, for bookkeeping.
	FeePercent int
}

// NewShop upgrades a peer into a coin shop.
func NewShop(p *Peer, feePercent int) *Shop {
	return &Shop{Peer: p, FeePercent: feePercent}
}

// Stock purchases n coins of the given value from the broker.
func (s *Shop) Stock(n int, value int64) error {
	for i := 0; i < n; i++ {
		if _, err := s.Purchase(value, false); err != nil {
			return fmt.Errorf("core: stocking shop: %w", err)
		}
	}
	return nil
}

// Inventory reports how many coins of the given value are available.
func (s *Shop) Inventory(value int64) int {
	n := 0
	s.owned.Range(func(_ coin.ID, oc *ownedCoin) bool {
		oc.mu.Lock()
		selfHeld := oc.selfHeld
		oc.mu.Unlock()
		if selfHeld && oc.c.Value == value {
			n++
		}
		return true
	})
	return n
}

// Vend issues one stocked coin to the customer (payment for the coin is
// out of band: in a deployment the customer transfers other coins or pays
// the shop's invoice; the vending itself is the issue protocol).
func (s *Shop) Vend(customer bus.Address, value int64) (coin.ID, error) {
	id, ok := s.pickSelfHeld(value)
	if !ok {
		// Restock on demand.
		if _, err := s.Purchase(value, false); err != nil {
			return "", fmt.Errorf("core: shop restock: %w", err)
		}
		id, ok = s.pickSelfHeld(value)
		if !ok {
			return "", ErrNoCoinAvailable
		}
	}
	if err := s.IssueTo(customer, id); err != nil {
		return "", err
	}
	return id, nil
}
