package core

import (
	"fmt"
	mrand "math/rand"
	"sync"
	"testing"
	"time"

	"whopay/internal/bus"
	"whopay/internal/dht"
	"whopay/internal/dht/replica"
	"whopay/internal/indirect"
	"whopay/internal/obs"
	"whopay/internal/sig"
	"whopay/internal/wal"
)

// fakeClock is a controllable Clock for protocol tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// fixtureOpts tweak the test world.
type fixtureOpts struct {
	scheme     sig.Scheme
	detection  bool // DHT + publishing + watching + payee checks
	syncMode   SyncMode
	indirect   bool
	dhtNodes   int
	retry      *bus.RetryPolicy // peers retry transient transport failures
	obs        *obs.Registry    // live observability registry (nil: disabled)
	persist    *wal.Config      // broker durability (nil: in-memory broker)
	dhtPersist *wal.Config      // DHT node durability (nil: in-memory nodes)

	// dhtReplication turns on quorum reads/writes, anti-entropy, and the
	// client lease cache for the cluster, the broker, and every peer
	// (DESIGN.md §14). Nil keeps the legacy single-copy DHT.
	dhtReplication *replica.Config

	depositBatch *DepositBatchConfig // broker deposit batching (nil: off)
}

type fixture struct {
	t      testing.TB
	net    *bus.Memory
	netAny bus.Network // overrides net when the test supplies its own
	scheme sig.Scheme
	clock  *fakeClock
	judge  *Judge
	dir    *Directory
	dhtCl  *dht.Cluster
	indirA []bus.Address
	broker *Broker
	opts   fixtureOpts
	seq    int

	brokerCfg BrokerConfig // as passed to NewBroker, for restarts
}

// restartBroker kills the broker (without any shutdown grace — Close only
// releases the bus address and journal handles) and recovers a new one from
// its durable state at the same address. Live peers keep their existing
// BrokerAddr and BrokerPub: recovery restores the same signing key, so
// nothing on the peer side changes.
func (f *fixture) restartBroker() {
	f.t.Helper()
	_ = f.broker.Close()
	nb, err := RecoverBroker(f.brokerCfg)
	if err != nil {
		f.t.Fatalf("broker recovery: %v", err)
	}
	f.broker = nb
}

// network returns the bus this fixture runs on.
func (f *fixture) network() bus.Network {
	if f.netAny != nil {
		return f.netAny
	}
	return f.net
}

func newFixture(t testing.TB, opts fixtureOpts) *fixture {
	t.Helper()
	if opts.scheme == nil {
		opts.scheme = sig.NewNull(1000)
	}
	if opts.dhtNodes == 0 {
		opts.dhtNodes = 4
	}
	f := &fixture{
		t:      t,
		net:    bus.NewMemory(),
		scheme: opts.scheme,
		clock:  newFakeClock(),
		dir:    NewDirectory(),
		opts:   opts,
	}
	judge, err := NewJudge(f.scheme)
	if err != nil {
		t.Fatal(err)
	}
	f.judge = judge

	// The cluster must trust the broker's key, and the broker's client
	// needs the node addresses: create the broker first against the
	// cluster's well-known addresses (dht:0..n-1), then the cluster.
	var dhtAddrs []bus.Address
	if opts.detection {
		for i := 0; i < opts.dhtNodes; i++ {
			dhtAddrs = append(dhtAddrs, bus.Address(fmt.Sprintf("dht:%d", i)))
		}
	}

	f.brokerCfg = BrokerConfig{
		Network:      f.net,
		Addr:         "broker",
		Scheme:       f.scheme,
		Clock:        f.clock.Now,
		Directory:    f.dir,
		GroupPub:     judge.GroupPublicKey(),
		DHTNodes:     dhtAddrs,
		Persistence:  opts.persist,
		Obs:          opts.obs,
		DepositBatch: opts.depositBatch,

		DHTReplication: opts.dhtReplication,
	}
	broker, err := NewBroker(f.brokerCfg)
	if err != nil {
		t.Fatal(err)
	}
	f.broker = broker
	t.Cleanup(func() { f.broker.Close() })

	if opts.detection {
		cluster, err := dht.NewClusterWithConfig(dht.ClusterConfig{
			Network:     f.net,
			Scheme:      f.scheme,
			Nodes:       opts.dhtNodes,
			Replicas:    2,
			Trusted:     []sig.PublicKey{broker.PublicKey()},
			Persistence: opts.dhtPersist,
			Replication: opts.dhtReplication,
		})
		if err != nil {
			t.Fatal(err)
		}
		f.dhtCl = cluster
		t.Cleanup(cluster.Close)
	}
	if opts.indirect {
		for i := 0; i < 2; i++ {
			addr := bus.Address(fmt.Sprintf("i3:%d", i))
			srv, err := indirect.NewServer(f.net, addr, f.scheme)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { srv.Close() })
			f.indirA = append(f.indirA, addr)
		}
	}
	return f
}

func (f *fixture) dhtAddrs() []bus.Address {
	if f.dhtCl == nil {
		return nil
	}
	return f.dhtCl.Addrs()
}

// addPeer creates a peer wired into the fixture world.
func (f *fixture) addPeer(id string, rec sig.Recorder) *Peer {
	f.t.Helper()
	return f.addPeerWith(f.peerConfig(id, rec))
}

// addPeerWith creates a peer from an explicit config (see peerConfig).
func (f *fixture) addPeerWith(cfg PeerConfig) *Peer {
	f.t.Helper()
	p, err := NewPeer(cfg)
	if err != nil {
		f.t.Fatal(err)
	}
	f.t.Cleanup(func() { p.Close() })
	return p
}

// restartPeer kills a peer and recovers a replacement from its durable
// wallet, reusing the same config (and thus the same address and identity).
func (f *fixture) restartPeer(p *Peer, cfg PeerConfig) *Peer {
	f.t.Helper()
	_ = p.Close()
	np, err := RecoverPeer(cfg)
	if err != nil {
		f.t.Fatalf("peer recovery: %v", err)
	}
	f.t.Cleanup(func() { np.Close() })
	return np
}

// peerConfig builds the config addPeer would use, so tests that restart
// peers can hold on to it.
func (f *fixture) peerConfig(id string, rec sig.Recorder) PeerConfig {
	f.t.Helper()
	f.seq++
	network := f.network()
	prober, _ := network.(Prober)
	presence, _ := network.(Presence)
	// Addresses are identity-neutral, as real IP addresses would be: the
	// paper scopes network-level anonymity to onion routing/Tarzan and
	// the application protocol must not leak identities itself.
	return PeerConfig{
		ID:                 id,
		Network:            network,
		Addr:               bus.Address(fmt.Sprintf("addr:%d", f.seq)),
		Scheme:             f.scheme,
		Recorder:           rec,
		Clock:              f.clock.Now,
		Directory:          f.dir,
		BrokerAddr:         f.broker.Addr(),
		BrokerPub:          f.broker.PublicKey(),
		Judge:              f.judge,
		DHTNodes:           f.dhtAddrs(),
		PublishBindings:    f.opts.detection,
		WatchHeldCoins:     f.opts.detection,
		CheckPublicBinding: f.opts.detection,
		IndirectServers:    f.indirA,
		SyncMode:           f.opts.syncMode,
		Prober:             prober,
		Presence:           presence,
		Rand:               mrand.New(mrand.NewSource(int64(f.seq) * 7919)),
		Retry:              f.opts.retry,
		Obs:                f.opts.obs,
		DHTReplication:     f.opts.dhtReplication,
	}
}

// dirAddr resolves an identity's address via the directory.
func (f *fixture) dirAddr(id string) bus.Address {
	f.t.Helper()
	entry, ok := f.dir.Lookup(id)
	if !ok {
		f.t.Fatalf("identity %q not in directory", id)
	}
	return entry.Addr
}

// pay is a helper asserting a specific payment method outcome.
func (f *fixture) pay(payer *Peer, payee *Peer, policy Policy, want Method) {
	f.t.Helper()
	got, err := payer.Pay(payee.Addr(), 1, policy)
	if err != nil {
		f.t.Fatalf("Pay: %v", err)
	}
	if got != want {
		f.t.Fatalf("Pay used %v, want %v", got, want)
	}
}
