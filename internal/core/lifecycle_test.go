package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"whopay/internal/bus"
	"whopay/internal/coin"
	"whopay/internal/sig"
)

// coin2Binding mirrors coin.Binding fields for hand-built test bindings.
type coin2Binding struct {
	CoinPub sig.PublicKey
	Holder  sig.PublicKey
	Seq     uint64
	Expiry  int64
}

func (b *coin2Binding) toBinding() *coin.Binding {
	return &coin.Binding{CoinPub: b.CoinPub, Holder: b.Holder, Seq: b.Seq, Expiry: b.Expiry}
}

// coinChallenge aliases coin.ChallengeMessage for test brevity.
func coinChallenge(pub sig.PublicKey, nonce []byte) []byte {
	return coin.ChallengeMessage(pub, nonce)
}

// TestFullCoinLifecycle walks a coin through the paper's Figure 1: U
// purchases, U issues to V, V transfers to W through U, W deposits at the
// broker.
func TestFullCoinLifecycle(t *testing.T) {
	f := newFixture(t, fixtureOpts{detection: true})
	u := f.addPeer("u", nil)
	v := f.addPeer("v", nil)
	w := f.addPeer("w", nil)

	id, err := u.Purchase(1, false)
	if err != nil {
		t.Fatalf("Purchase: %v", err)
	}
	if got := u.SelfHeldCoins(); len(got) != 1 || got[0] != id {
		t.Fatalf("SelfHeldCoins = %v", got)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatalf("IssueTo: %v", err)
	}
	if got := v.HeldCoins(); len(got) != 1 || got[0] != id {
		t.Fatalf("v.HeldCoins = %v", got)
	}
	if v.HeldValue() != 1 {
		t.Fatalf("v.HeldValue = %d", v.HeldValue())
	}
	if err := v.TransferTo(w.Addr(), id); err != nil {
		t.Fatalf("TransferTo: %v", err)
	}
	if len(v.HeldCoins()) != 0 {
		t.Fatal("v still holds the coin after transfer")
	}
	if got := w.HeldCoins(); len(got) != 1 || got[0] != id {
		t.Fatalf("w.HeldCoins = %v", got)
	}
	if err := w.Deposit(id, "w-payout"); err != nil {
		t.Fatalf("Deposit: %v", err)
	}
	if bal := f.broker.Balance("w-payout"); bal != 1 {
		t.Fatalf("Balance = %d, want 1", bal)
	}
	if f.broker.IssuedValue() != 1 || f.broker.DepositedValue() != 1 {
		t.Fatalf("issued/deposited = %d/%d", f.broker.IssuedValue(), f.broker.DepositedValue())
	}

	// Op attribution: u serviced one issue and one transfer.
	uOps := u.Ops()
	if uOps.Get(OpPurchase) != 1 || uOps.Get(OpIssue) != 1 || uOps.Get(OpTransfer) != 1 {
		t.Fatalf("u ops = %+v", uOps)
	}
	if w.Ops().Get(OpDeposit) != 1 {
		t.Fatalf("w ops = %+v", w.Ops())
	}
	bOps := f.broker.Ops()
	if bOps.Get(OpPurchase) != 1 || bOps.Get(OpDeposit) != 1 {
		t.Fatalf("broker ops = %+v", bOps)
	}
}

// TestLifecycleWithRealCrypto runs the same flow under Ed25519 to confirm
// nothing depends on the null scheme's quirks.
func TestLifecycleWithRealCrypto(t *testing.T) {
	f := newFixture(t, fixtureOpts{scheme: sig.Ed25519{}, detection: true})
	u := f.addPeer("u", nil)
	v := f.addPeer("v", nil)
	w := f.addPeer("w", nil)
	id, err := u.Purchase(5, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatal(err)
	}
	if err := v.TransferTo(w.Addr(), id); err != nil {
		t.Fatal(err)
	}
	if err := w.Deposit(id, "w"); err != nil {
		t.Fatal(err)
	}
	if f.broker.Balance("w") != 5 {
		t.Fatalf("balance = %d", f.broker.Balance("w"))
	}
}

// TestMultiHopTransfers pushes one coin through a chain of peers — the
// transferability property.
func TestMultiHopTransfers(t *testing.T) {
	f := newFixture(t, fixtureOpts{detection: true})
	owner := f.addPeer("owner", nil)
	peers := []*Peer{f.addPeer("p1", nil), f.addPeer("p2", nil), f.addPeer("p3", nil), f.addPeer("p4", nil)}

	id, err := owner.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.IssueTo(peers[0].Addr(), id); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(peers)-1; i++ {
		if err := peers[i].TransferTo(peers[i+1].Addr(), id); err != nil {
			t.Fatalf("hop %d: %v", i, err)
		}
	}
	last := peers[len(peers)-1]
	if err := last.Deposit(id, "end"); err != nil {
		t.Fatal(err)
	}
	if f.broker.Balance("end") != 1 {
		t.Fatal("final deposit not credited")
	}
	if owner.Ops().Get(OpTransfer) != 3 {
		t.Fatalf("owner transfers = %d, want 3", owner.Ops().Get(OpTransfer))
	}
}

// TestRenewalViaOwner checks seq advance and fresh expiry.
func TestRenewalViaOwner(t *testing.T) {
	f := newFixture(t, fixtureOpts{detection: true})
	u := f.addPeer("u", nil)
	v := f.addPeer("v", nil)
	id, err := u.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatal(err)
	}
	before, _ := v.HeldBinding(id)
	f.clock.Advance(48 * time.Hour)
	viaBroker, err := v.Renew(id)
	if err != nil {
		t.Fatalf("Renew: %v", err)
	}
	if viaBroker {
		t.Fatal("renewal went to the broker although the owner is online")
	}
	after, _ := v.HeldBinding(id)
	if after.Seq != before.Seq+1 {
		t.Fatalf("seq %d → %d, want +1", before.Seq, after.Seq)
	}
	if after.Expiry <= before.Expiry {
		t.Fatal("expiry not extended")
	}
	if u.Ops().Get(OpRenewal) != 1 {
		t.Fatalf("owner renewals = %d", u.Ops().Get(OpRenewal))
	}
}

// TestDowntimeTransferAndProactiveSync: the owner goes offline, the holder
// pays through the broker, the owner rejoins and syncs, then services the
// next hop itself.
func TestDowntimeTransferAndProactiveSync(t *testing.T) {
	f := newFixture(t, fixtureOpts{detection: true, syncMode: SyncProactive})
	u := f.addPeer("u", nil)
	v := f.addPeer("v", nil)
	w := f.addPeer("w", nil)
	x := f.addPeer("x", nil)

	id, err := u.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatal(err)
	}
	u.GoOffline()

	// Owner unreachable: direct transfer fails, broker path works.
	if err := v.TransferTo(w.Addr(), id); err == nil {
		t.Fatal("transfer via offline owner succeeded")
	}
	if err := v.TransferViaBroker(w.Addr(), id); err != nil {
		t.Fatalf("TransferViaBroker: %v", err)
	}
	wBinding, ok := w.HeldBinding(id)
	if !ok || !wBinding.ByBroker {
		t.Fatalf("w's binding = %+v, want broker-signed", wBinding)
	}
	if f.broker.Ops().Get(OpDowntimeTransfer) != 1 {
		t.Fatal("broker did not count the downtime transfer")
	}

	// Owner rejoins and proactively syncs; its local binding catches up.
	if err := u.GoOnline(); err != nil {
		t.Fatalf("GoOnline: %v", err)
	}
	ub, _ := u.OwnerBinding(id)
	if ub == nil || ub.Seq != wBinding.Seq {
		t.Fatalf("owner binding after sync = %+v, want seq %d", ub, wBinding.Seq)
	}
	if u.Ops().Get(OpSync) != 1 {
		t.Fatal("owner did not count the sync")
	}

	// The next transfer is serviced by the owner again.
	if err := w.TransferTo(x.Addr(), id); err != nil {
		t.Fatalf("post-sync transfer: %v", err)
	}
	if err := x.Deposit(id, "x"); err != nil {
		t.Fatal(err)
	}
}

// TestDowntimeRenewal renews through the broker while the owner sleeps.
func TestDowntimeRenewal(t *testing.T) {
	f := newFixture(t, fixtureOpts{detection: true})
	u := f.addPeer("u", nil)
	v := f.addPeer("v", nil)
	id, err := u.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatal(err)
	}
	u.GoOffline()
	viaBroker, err := v.Renew(id)
	if err != nil {
		t.Fatalf("Renew: %v", err)
	}
	if !viaBroker {
		t.Fatal("renewal claims owner path with owner offline")
	}
	binding, _ := v.HeldBinding(id)
	if !binding.ByBroker {
		t.Fatal("downtime renewal binding not broker-signed")
	}
	if f.broker.Ops().Get(OpDowntimeRenewal) != 1 {
		t.Fatal("broker did not count the downtime renewal")
	}
	if v.Ops().Get(OpDowntimeRenewal) != 1 {
		t.Fatal("holder did not count the downtime renewal")
	}
}

// TestLazySync: the owner rejoins lazily; the first request triggers a
// public-binding check and adoption, with no broker sync.
func TestLazySync(t *testing.T) {
	f := newFixture(t, fixtureOpts{detection: true, syncMode: SyncLazy})
	u := f.addPeer("u", nil)
	v := f.addPeer("v", nil)
	w := f.addPeer("w", nil)

	id, err := u.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatal(err)
	}
	u.GoOffline()
	if err := v.TransferViaBroker(w.Addr(), id); err != nil {
		t.Fatal(err)
	}
	if err := u.GoOnline(); err != nil {
		t.Fatal(err)
	}
	if u.Ops().Get(OpSync) != 0 {
		t.Fatal("lazy mode performed a proactive sync")
	}
	// The owner's state is stale until the next request forces a check.
	if err := w.TransferTo(v.Addr(), id); err != nil {
		t.Fatalf("transfer after lazy rejoin: %v", err)
	}
	uOps := u.Ops()
	if uOps.Get(OpCheck) != 1 {
		t.Fatalf("checks = %d, want 1", uOps.Get(OpCheck))
	}
	if uOps.Get(OpLazySync) != 1 {
		t.Fatalf("lazy syncs = %d, want 1", uOps.Get(OpLazySync))
	}
	if uOps.Get(OpTransfer) != 1 {
		t.Fatalf("transfers = %d, want 1", uOps.Get(OpTransfer))
	}
	// Second request on the same coin: no further check.
	if err := v.TransferTo(w.Addr(), id); err != nil {
		t.Fatal(err)
	}
	if u.Ops().Get(OpCheck) != 1 {
		t.Fatal("clean coin re-checked")
	}
}

// TestLazySyncWithoutDHT: the presented broker-signed binding alone lets
// the owner catch up.
func TestLazySyncWithoutDHT(t *testing.T) {
	f := newFixture(t, fixtureOpts{detection: false, syncMode: SyncLazy})
	u := f.addPeer("u", nil)
	v := f.addPeer("v", nil)
	w := f.addPeer("w", nil)
	id, err := u.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatal(err)
	}
	u.GoOffline()
	if err := v.TransferViaBroker(w.Addr(), id); err != nil {
		t.Fatal(err)
	}
	if err := u.GoOnline(); err != nil {
		t.Fatal(err)
	}
	if err := w.TransferTo(v.Addr(), id); err != nil {
		t.Fatalf("transfer with presented-binding catch-up: %v", err)
	}
	if u.Ops().Get(OpLazySync) != 1 {
		t.Fatalf("lazy syncs = %d, want 1", u.Ops().Get(OpLazySync))
	}
}

// TestAnonymousOwnerCoin exercises Section 5.2's third approach: coins
// without owner identity, reached through the indirection layer.
func TestAnonymousOwnerCoin(t *testing.T) {
	f := newFixture(t, fixtureOpts{detection: true, indirect: true})
	u := f.addPeer("u", nil)
	v := f.addPeer("v", nil)
	w := f.addPeer("w", nil)

	id, err := u.Purchase(1, true)
	if err != nil {
		t.Fatalf("anonymous Purchase: %v", err)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatalf("anonymous IssueTo: %v", err)
	}
	// The coin the payee received carries no owner identity.
	vb, _ := v.HeldBinding(id)
	if vb == nil {
		t.Fatal("v has no binding")
	}
	vhc, _ := v.held.Get(id)
	heldCoin := vhc.c
	if !heldCoin.Anonymous() {
		t.Fatal("delivered coin exposes an owner")
	}
	if strings.Contains(string(heldCoin.Owner), "u") {
		t.Fatal("owner identity leaked")
	}
	// Transfer routes through the indirection layer to the hidden owner.
	if err := v.TransferTo(w.Addr(), id); err != nil {
		t.Fatalf("anonymous TransferTo: %v", err)
	}
	if u.Ops().Get(OpTransfer) != 1 {
		t.Fatal("hidden owner did not service the transfer")
	}
	// Owner goes offline: broker path still works (the broker knows the
	// purchaser for sync purposes but the coin stays anonymous).
	u.GoOffline()
	if err := w.TransferViaBroker(v.Addr(), id); err != nil {
		t.Fatalf("anonymous downtime transfer: %v", err)
	}
	if err := v.Deposit(id, "v-payout"); err != nil {
		t.Fatal(err)
	}
}

// TestPurchaseValidation covers broker-side purchase rejections.
func TestPurchaseValidation(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	u := f.addPeer("u", nil)
	if _, err := u.Purchase(0, false); err == nil {
		t.Fatal("zero-value purchase accepted")
	}
	if _, err := u.Purchase(-3, false); err == nil {
		t.Fatal("negative-value purchase accepted")
	}
	// Frozen identity cannot buy.
	f.broker.Freeze("u")
	if _, err := u.Purchase(1, false); err == nil {
		t.Fatal("frozen identity purchased a coin")
	}
	if !f.broker.Frozen("u") {
		t.Fatal("Frozen lookup")
	}
}

// TestUnsolicitedDeliverRejected: a delivery with no matching offer fails.
func TestUnsolicitedDeliverRejected(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	u := f.addPeer("u", nil)
	v := f.addPeer("v", nil)
	id, err := u.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatal(err)
	}
	// Replay the same delivery: the offer was consumed.
	vb, _ := v.HeldBinding(id)
	uoc, _ := u.owned.Get(id)
	c := uoc.c
	_, err = u.ep.Call(v.Addr(), DeliverRequest{Coin: *c, Binding: *vb})
	var remote *bus.RemoteError
	if !errors.As(err, &remote) || !strings.Contains(remote.Msg, "no matching") {
		t.Fatalf("replayed deliver = %v, want no-offer rejection", err)
	}
}

// TestOfferExpiry: stale offers are pruned.
func TestOfferExpiry(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	v := f.addPeer("v", nil)
	if _, err := v.handleOffer(OfferRequest{Value: 1}); err != nil {
		t.Fatal(err)
	}
	n := v.offers.Len()
	if n != 1 {
		t.Fatalf("offers = %d", n)
	}
	f.clock.Advance(time.Hour)
	if _, err := v.handleOffer(OfferRequest{Value: 1}); err != nil {
		t.Fatal(err)
	}
	n = v.offers.Len()
	if n != 1 {
		t.Fatalf("offers after prune = %d, want 1", n)
	}
}

// TestDeliverToOfflinePayeeFailsCleanly: the holder keeps its coin when the
// payee disappears between offer and delivery.
func TestDeliverToOfflinePayeeFailsCleanly(t *testing.T) {
	f := newFixture(t, fixtureOpts{detection: true})
	u := f.addPeer("u", nil)
	v := f.addPeer("v", nil)
	w := f.addPeer("w", nil)
	id, err := u.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatal(err)
	}
	before, _ := v.HeldBinding(id)

	// Cut w off after it answers the offer but before delivery: wrap by
	// replacing w's availability mid-protocol is racy; instead point the
	// transfer at an address that answers offers but rejects delivery.
	rejector, err := f.net.Listen("rejector", func(from bus.Address, msg any) (any, error) {
		switch msg.(type) {
		case OfferRequest:
			return w.handleOffer(msg.(OfferRequest))
		default:
			return nil, errors.New("payee gone")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rejector.Close()

	if err := v.TransferTo("rejector", id); err == nil {
		t.Fatal("transfer to vanishing payee succeeded")
	}
	after, _ := v.HeldBinding(id)
	if after.Seq != before.Seq {
		t.Fatalf("holder binding moved %d → %d on failed delivery", before.Seq, after.Seq)
	}
	// The coin is still spendable.
	if err := v.TransferTo(w.Addr(), id); err != nil {
		t.Fatalf("retry to a live payee: %v", err)
	}
}

// TestValueMismatchRejected: delivering a coin whose face value differs
// from the offered value is rejected by the payee.
func TestValueMismatchRejected(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	u := f.addPeer("u", nil)
	v := f.addPeer("v", nil)
	id5, err := u.Purchase(5, false)
	if err != nil {
		t.Fatal(err)
	}
	// Open an offer for value 1, then hand-deliver the 5-valued coin
	// against it with an otherwise perfectly valid issue.
	resp, err := u.ep.Call(v.Addr(), OfferRequest{Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	offer := resp.(OfferResponse)
	oc, _ := u.owned.Get(id5)
	binding := &coin2Binding{
		CoinPub: oc.c.Pub.Clone(),
		Holder:  offer.HolderPub.Clone(),
		Seq:     1,
		Expiry:  f.clock.Now().Add(72 * time.Hour).Unix(),
	}
	bnd := binding.toBinding()
	if bnd.Sig, err = u.suite.Sign(oc.coinKeys.Private, bnd.Message()); err != nil {
		t.Fatal(err)
	}
	challengeSig, err := u.suite.Sign(u.keys.Private, coinChallenge(oc.c.Pub, offer.Nonce))
	if err != nil {
		t.Fatal(err)
	}
	_, err = u.ep.Call(v.Addr(), DeliverRequest{Coin: *oc.c, Binding: *bnd, ChallengeSig: challengeSig, Issue: true})
	var remote *bus.RemoteError
	if !errors.As(err, &remote) || !strings.Contains(remote.Msg, "value") {
		t.Fatalf("mismatched-value deliver = %v, want value rejection", err)
	}
}
