package core

import (
	"encoding/binary"

	"whopay/internal/coin"
	"whopay/internal/groupsig"
	"whopay/internal/payword"
	"whopay/internal/sig"
)

// Protocol messages. All are exported, gob-friendly value types so the same
// structs travel over the in-memory bus and the TCP transport.

// PurchaseRequest buys a coin from the broker (paper Section 4.2,
// Purchase). The buyer identifies itself — even for owner-anonymous coins
// the broker knows who purchased (it is paid out of band); anonymity
// concerns *transactions*, not the purchase itself.
type PurchaseRequest struct {
	Buyer     string
	CoinPub   sig.PublicKey
	Handle    []byte // non-nil mints an owner-anonymous coin (Section 5.2)
	Value     int64
	Anonymous bool
	Sig       []byte // by the buyer's identity key over purchaseMessage
}

func purchaseMessage(buyer string, coinPub sig.PublicKey, handle []byte, value int64, anonymous bool) []byte {
	out := []byte("whopay/msg/purchase/1")
	out = appendBytes(out, []byte(buyer))
	out = appendBytes(out, coinPub)
	out = appendBytes(out, handle)
	out = binary.BigEndian.AppendUint64(out, uint64(value))
	if anonymous {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	return out
}

// PurchaseResponse returns the freshly minted coin.
type PurchaseResponse struct {
	Coin coin.Coin
}

// BatchPurchaseRequest buys several coins under one authorization (paper
// Section 4.2: "It should be straightforward to modify this procedure to
// purchase coins in batch"). One signature covers all coin keys.
type BatchPurchaseRequest struct {
	Buyer    string
	CoinPubs []sig.PublicKey
	Value    int64 // per coin
	Sig      []byte
}

func batchPurchaseMessage(buyer string, coinPubs []sig.PublicKey, value int64) []byte {
	out := []byte("whopay/msg/batch-purchase/1")
	out = appendBytes(out, []byte(buyer))
	out = binary.BigEndian.AppendUint64(out, uint64(len(coinPubs)))
	for _, pub := range coinPubs {
		out = appendBytes(out, pub)
	}
	out = binary.BigEndian.AppendUint64(out, uint64(value))
	return out
}

// BatchPurchaseResponse returns the minted coins, in request order.
type BatchPurchaseResponse struct {
	Coins []coin.Coin
}

// OfferRequest opens a payment: payer → payee, "I will pay you one coin of
// this value". The payee answers with a fresh holder key and a challenge
// nonce (paper: "V generates a random public/private key pair ... and sends
// pkCV to U"; the nonce implements the payee's ownership challenge without
// an extra round trip — it travels payee → payer → owner, who signs it).
type OfferRequest struct {
	Value int64
}

// OfferResponse carries the payee's fresh holder key and challenge nonce.
type OfferResponse struct {
	HolderPub sig.PublicKey
	Nonce     []byte
}

// DeliverRequest completes a payment: owner (or broker) → payee, carrying
// the broker-signed coin, the new binding, and the answer to the payee's
// ownership challenge. GroupSig is set on owner-anonymous issues (Section
// 5.2: issuers sign with their group private keys).
type DeliverRequest struct {
	Coin         coin.Coin
	Binding      coin.Binding
	ChallengeSig []byte
	Issue        bool
	GroupSig     *groupsig.Signature
}

// DeliverResponse acknowledges acceptance.
type DeliverResponse struct{}

// TransferRequest asks a coin's owner (or the broker, during owner
// downtime) to re-bind the coin to a new holder. It is the paper's
// {{pkCW, CV}skCV}gkV: the body signed by the current holder key and a
// group signature for fairness. PresentedBinding is the holder's latest
// signed binding — evidence the owner or broker uses to catch up when its
// local state is stale ("flavor one" verification).
type TransferRequest struct {
	Body             coin.TransferBody
	HolderSig        []byte
	GroupSig         groupsig.Signature
	PresentedBinding *coin.Binding
}

// TransferResponse reports the outcome. On failure (e.g. the payee went
// away between offer and delivery) no state changed anywhere: the servicer
// delivers before committing, so the payer still holds the coin under its
// existing binding and can simply retry.
type TransferResponse struct {
	OK     bool
	Reason string
}

// RenewRequest extends a coin's expiry (paper Section 4.2, Renewal /
// Downtime renewal). Signed by the current holder key plus a group
// signature.
type RenewRequest struct {
	CoinPub          sig.PublicKey
	Seq              uint64
	HolderSig        []byte
	GroupSig         groupsig.Signature
	PresentedBinding *coin.Binding
}

func renewMessage(coinPub sig.PublicKey, seq uint64) []byte {
	out := []byte("whopay/msg/renew/1")
	out = appendBytes(out, coinPub)
	out = binary.BigEndian.AppendUint64(out, seq)
	return out
}

// RenewResponse returns the refreshed binding.
type RenewResponse struct {
	Binding coin.Binding
}

// DepositRequest redeems a coin at the broker. PayoutRef is an opaque
// payout reference (not an identity): the broker credits it without
// learning who the holder is.
type DepositRequest struct {
	CoinPub          sig.PublicKey
	PayoutRef        string
	HolderSig        []byte
	GroupSig         groupsig.Signature
	PresentedBinding *coin.Binding
}

func depositMessage(coinPub sig.PublicKey, payoutRef string, seq uint64) []byte {
	out := []byte("whopay/msg/deposit/1")
	out = appendBytes(out, coinPub)
	out = appendBytes(out, []byte(payoutRef))
	out = binary.BigEndian.AppendUint64(out, seq)
	return out
}

// DepositResponse confirms the credited amount.
type DepositResponse struct {
	Amount int64
}

// SyncRequest synchronizes an owner's binding state with the broker after
// rejoin (paper Section 4.2, Sync). The signature over the nonce is the
// challenge-response identity proof.
type SyncRequest struct {
	Identity string
	Nonce    []byte
	Sig      []byte
}

func syncMessage(identity string, nonce []byte) []byte {
	out := []byte("whopay/msg/sync/1")
	out = appendBytes(out, []byte(identity))
	out = appendBytes(out, nonce)
	return out
}

// SyncResponse returns the broker-maintained bindings for the owner's
// coins touched during its downtime.
type SyncResponse struct {
	Bindings []coin.Binding
}

// FraudReport is a holder's alarm: the public binding list shows the coin
// re-bound away from it without its consent. MyBinding is the reporter's
// signed binding; Observed is the conflicting one seen in the DHT.
type FraudReport struct {
	CoinPub   sig.PublicKey
	MyBinding coin.Binding
	Observed  coin.Binding
	GroupSig  groupsig.Signature // over the report, so the victim stays anonymous but accountable
}

func fraudReportMessage(coinPub sig.PublicKey, mine, observed *coin.Binding) []byte {
	out := []byte("whopay/msg/fraud/1")
	out = appendBytes(out, coinPub)
	out = appendBytes(out, mine.Message())
	out = appendBytes(out, observed.Message())
	return out
}

// FraudResponse acknowledges a report and states the broker's verdict so
// far.
type FraudResponse struct {
	CaseID   uint64
	Verdict  string
	Punished string // owner identity frozen, if any
}

// DisputeRequest asks a coin's owner to produce the relinquishment proofs
// covering sequence numbers (FromSeq, ToSeq] — the audit-trail walk the
// paper relies on: "the audit trails of peers and the broker ensure
// [fraud] will be detected and the culprits identified and punished".
type DisputeRequest struct {
	CoinPub sig.PublicKey
	FromSeq uint64
	ToSeq   uint64
}

// RelinquishProof is one audit-trail entry: the holder-signed request that
// authorized a re-binding. For renewals the signed message is the renewal
// request (holder unchanged); for transfers it is the transfer body.
type RelinquishProof struct {
	Renewal   bool
	Body      coin.TransferBody
	HolderSig []byte
	PrevHold  sig.PublicKey // the holder key that authorized (binding at Body.PrevSeq)
}

// DisputeResponse returns the owner's audit trail for the disputed range.
type DisputeResponse struct {
	Proofs []RelinquishProof
}

// ChannelOpenRequest opens a micropayment channel: payer → vendor,
// carrying a signed PayWord commitment (the paper's §7 aggregation layer).
// The vendor then accepts per-unit payments against the hash chain with no
// broker involvement and settles the accumulated balance into one WhoPay
// coin when the credit window closes. Lottery switches the channel to
// probabilistic settlement (Rivest's lottery tickets): every payment also
// carries a ticket worth Prize units with probability 1/WinDivisor, and
// only winning tickets accrue balance.
type ChannelOpenRequest struct {
	Commitment payword.Commitment
	Lottery    bool
	WinDivisor uint32
	Prize      uint32
}

// ChannelOpenResponse acknowledges the channel. Nonce is the vendor's draw
// nonce for the first lottery ticket (empty on plain channels).
type ChannelOpenResponse struct {
	Nonce []byte
}

// ChannelPayRequest streams one channel payment. Payment.Root identifies
// the channel; the payword hash walk proves every unit since the last one
// the vendor saw, so a dropped payment self-heals — the next index pays the
// gap. Ticket rides along on lottery channels.
type ChannelPayRequest struct {
	Payment payword.Payment
	Ticket  *payword.Ticket
}

// ChannelPayResponse reports the vendor's view: the balance accrued so far,
// whether the ticket won, and the draw nonce for the next ticket.
type ChannelPayResponse struct {
	Owed  int64
	Won   bool
	Nonce []byte
}

// ChannelCloseRequest settles a channel: the payer has issued a WhoPay coin
// (CoinID) to the vendor covering the outstanding balance and asks the
// vendor to credit it against the channel. Final also tears the channel
// down; otherwise the window reopens with the balance cleared.
type ChannelCloseRequest struct {
	Root   payword.Word
	CoinID coin.ID
	Final  bool
}

// ChannelCloseResponse confirms the amount settled.
type ChannelCloseResponse struct {
	Settled int64
}

// BatchDepositRequest redeems several coins in one request. The broker
// verifies the whole group in one signature-batch fan-out and commits it in
// one WAL append; each deposit still succeeds or fails alone.
type BatchDepositRequest struct {
	Deposits []DepositRequest
}

// BatchDepositResult is one deposit's outcome: Amount on success, or the
// wire error code and message the same lone DepositRequest would have
// produced.
type BatchDepositResult struct {
	Amount  int64
	ErrCode string
	ErrMsg  string
}

// BatchDepositResponse carries the per-deposit outcomes, in request order.
type BatchDepositResponse struct {
	Results []BatchDepositResult
}

// appendBytes appends a uvarint length prefix followed by the bytes.
func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}
