package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"whopay/internal/bus"
	"whopay/internal/coin"
	"whopay/internal/sig"
)

// snoopNetwork wraps the memory bus and records every message payload that
// crosses it, so tests can assert what an eavesdropper (or the recipient
// itself) could learn.
type snoopNetwork struct {
	*bus.Memory
	mu   chan struct{}
	seen []snooped
}

type snooped struct {
	from, to bus.Address
	payload  any
}

func newSnoopNetwork() *snoopNetwork {
	s := &snoopNetwork{Memory: bus.NewMemory(), mu: make(chan struct{}, 1)}
	s.mu <- struct{}{}
	return s
}

func (s *snoopNetwork) Listen(addr bus.Address, h bus.Handler) (bus.Endpoint, error) {
	wrapped := func(from bus.Address, msg any) (any, error) {
		<-s.mu
		s.seen = append(s.seen, snooped{from: from, to: addr, payload: msg})
		s.mu <- struct{}{}
		return h(from, msg)
	}
	return s.Memory.Listen(addr, wrapped)
}

// TestTransferAnonymity inspects every message of a transfer and checks
// that neither the payer's nor the payee's identity appears anywhere: the
// owner cannot tell who is paying whom, and payer and payee stay mutually
// anonymous (paper Section 4.3, Anonymity).
func TestTransferAnonymity(t *testing.T) {
	snoop := newSnoopNetwork()
	f := newFixtureOnNetwork(t, snoop)
	u := f.addPeer("owner-identity-u", nil)
	v := f.addPeer("payer-identity-v", nil)
	w := f.addPeer("payee-identity-w", nil)

	id, err := u.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatal(err)
	}

	<-snoop.mu
	snoop.seen = nil
	snoop.mu <- struct{}{}

	if err := v.TransferTo(w.Addr(), id); err != nil {
		t.Fatal(err)
	}

	<-snoop.mu
	msgs := append([]snooped(nil), snoop.seen...)
	snoop.mu <- struct{}{}

	if len(msgs) == 0 {
		t.Fatal("snoop saw nothing")
	}
	for _, m := range msgs {
		blob := fmt.Sprintf("%+v", m.payload)
		// The payer's and payee's identities must not appear in any
		// protocol message. (The owner's identity is inside the coin;
		// that is the documented base-design exposure.)
		if strings.Contains(blob, "payer-identity-v") {
			t.Fatalf("payer identity leaked in %T to %s: %s", m.payload, m.to, blob)
		}
		if strings.Contains(blob, "payee-identity-w") {
			t.Fatalf("payee identity leaked in %T to %s", m.payload, m.to)
		}
	}
}

// TestFairnessJudgeOpensTransfer: the group signature on a transfer
// request reveals nothing to the owner or broker, but the judge can open
// it and identify the payer — the SAFT fairness property end to end.
func TestFairnessJudgeOpensTransfer(t *testing.T) {
	snoop := newSnoopNetwork()
	f := newFixtureOnNetwork(t, snoop)
	u := f.addPeer("u", nil)
	v := f.addPeer("v", nil)
	w := f.addPeer("w", nil)

	id, err := u.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatal(err)
	}
	if err := v.TransferTo(w.Addr(), id); err != nil {
		t.Fatal(err)
	}

	<-snoop.mu
	var captured *TransferRequest
	for i := range snoop.seen {
		if tr, ok := snoop.seen[i].payload.(TransferRequest); ok {
			captured = &tr
		}
	}
	snoop.mu <- struct{}{}
	if captured == nil {
		t.Fatal("no TransferRequest observed")
	}
	identity, err := f.judge.Open(captured.Body.Message(), captured.GroupSig)
	if err != nil {
		t.Fatalf("judge.Open: %v", err)
	}
	if identity != "v" {
		t.Fatalf("judge identified %q, want v", identity)
	}
	// Nobody else can: a second judge's group rejects the signature.
	otherJudge, err := NewJudge(f.scheme)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := otherJudge.Open(captured.Body.Message(), captured.GroupSig); err == nil {
		t.Fatal("foreign judge opened the signature")
	}
}

// TestDepositAnonymity: the broker links purchase to deposit through the
// coin key (the paper accepts this) but never sees the depositor identity.
func TestDepositAnonymity(t *testing.T) {
	snoop := newSnoopNetwork()
	f := newFixtureOnNetwork(t, snoop)
	u := f.addPeer("u", nil)
	v := f.addPeer("very-secret-holder", nil)
	id, err := u.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatal(err)
	}
	<-snoop.mu
	snoop.seen = nil
	snoop.mu <- struct{}{}
	if err := v.Deposit(id, "anonymous-payout-ref"); err != nil {
		t.Fatal(err)
	}
	<-snoop.mu
	defer func() { snoop.mu <- struct{}{} }()
	for _, m := range snoop.seen {
		if m.to != "broker" {
			continue
		}
		blob := fmt.Sprintf("%+v", m.payload)
		if strings.Contains(blob, "very-secret-holder") {
			t.Fatalf("depositor identity reached the broker: %s", blob)
		}
	}
}

// TestHoldershipHiddenInBindings: bindings carry only one-time holder keys,
// never identities, and consecutive bindings for the same peer use
// different keys (unlinkability of holdership).
func TestHoldershipHiddenInBindings(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	u := f.addPeer("u", nil)
	v := f.addPeer("v", nil)
	id1, err := u.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := u.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id1); err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id2); err != nil {
		t.Fatal(err)
	}
	b1, _ := v.HeldBinding(id1)
	b2, _ := v.HeldBinding(id2)
	if bytes.Equal(b1.Holder, b2.Holder) {
		t.Fatal("two coins held under the same holder key — linkable")
	}
	if bytes.Contains(b1.Holder, []byte("v")) && len(b1.Holder) < 4 {
		t.Fatal("holder key suspiciously encodes identity")
	}
	if !bytes.Equal(b1.CoinPub, []byte(coin.ID(id1))) {
		t.Fatal("binding coin key mismatch")
	}
}

// newFixtureOnNetwork builds the standard fixture over a caller-supplied
// network (used by the snoop tests).
func newFixtureOnNetwork(t *testing.T, net bus.Network) *fixture {
	t.Helper()
	f := &fixture{
		t:      t,
		scheme: sig.NewNull(2000),
		clock:  newFakeClock(),
		dir:    NewDirectory(),
	}
	judge, err := NewJudge(f.scheme)
	if err != nil {
		t.Fatal(err)
	}
	f.judge = judge
	broker, err := NewBroker(BrokerConfig{
		Network:   net,
		Addr:      "broker",
		Scheme:    f.scheme,
		Clock:     f.clock.Now,
		Directory: f.dir,
		GroupPub:  judge.GroupPublicKey(),
	})
	if err != nil {
		t.Fatal(err)
	}
	f.broker = broker
	t.Cleanup(func() { broker.Close() })
	f.netAny = net
	return f
}
