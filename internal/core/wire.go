package core

import (
	"fmt"
	"math"
	"sync"

	"whopay/internal/coin"
	"whopay/internal/dht"
	"whopay/internal/groupsig"
	"whopay/internal/indirect"
	"whopay/internal/layered"
	"whopay/internal/payword"
	"whopay/internal/sig"
	"whopay/internal/wire"
)

// Fixed-layout wire codecs (internal/wire) for every protocol message in
// messages.go, judgeserver.go, and layered.go. Tags are the wire contract:
// stable across versions, assigned here, never reused. The gob
// registrations in gob.go remain the negotiated compatibility fallback.
const (
	tagPurchaseRequest       = 1
	tagPurchaseResponse      = 2
	tagBatchPurchaseRequest  = 3
	tagBatchPurchaseResponse = 4
	tagEnrollRequest         = 5
	tagEnrollResponse        = 6
	tagRefillRequest         = 7
	tagRefillResponse        = 8
	tagOfferRequest          = 9
	tagOfferResponse         = 10
	tagDeliverRequest        = 11
	tagDeliverResponse       = 12
	tagTransferRequest       = 13
	tagTransferResponse      = 14
	tagRenewRequest          = 15
	tagRenewResponse         = 16
	tagDepositRequest        = 17
	tagDepositResponse       = 18
	tagLayeredDepositRequest = 19
	tagSyncRequest           = 20
	tagSyncResponse          = 21
	tagFraudReport           = 22
	tagFraudResponse         = 23
	tagDisputeRequest        = 24
	tagDisputeResponse       = 25
	tagRelinquishProof       = 26
	tagChannelOpenRequest    = 27
	tagChannelOpenResponse   = 28
	tagChannelPayRequest     = 29
	tagChannelPayResponse    = 30
	tagChannelCloseRequest   = 31
	tagChannelCloseResponse  = 32
	tagBatchDepositRequest   = 33
	tagBatchDepositResponse  = 34
	tagSettleRequest         = 35
	tagSettleResponse        = 36
)

var wireCodecsOnce sync.Once

// registerWireCodecs installs the binary codecs for the core protocol
// messages plus the DHT and indirection layers.
func registerWireCodecs() {
	wireCodecsOnce.Do(func() {
		registerCoreWireCodecs()
		dht.RegisterWireCodecs()
		indirect.RegisterWireCodecs()
	})
}

// decodeKey reads a length-prefixed public key.
func decodeKey(d *wire.Decoder) (sig.PublicKey, error) {
	raw, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	return sig.PublicKey(raw), nil
}

// appendKeys / decodeKeys handle []sig.PublicKey fields. A corrupt count
// is rejected before allocation; zero-length decodes as nil (gob parity).
func appendKeys(dst []byte, keys []sig.PublicKey) []byte {
	dst = wire.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = wire.AppendBytes(dst, k)
	}
	return dst
}

func decodeKeys(d *wire.Decoder) ([]sig.PublicKey, error) {
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n > uint64(d.Len()) {
		return nil, fmt.Errorf("%w: %d keys declared, %d bytes remain", wire.ErrMalformed, n, d.Len())
	}
	out := make([]sig.PublicKey, 0, n)
	for i := uint64(0); i < n; i++ {
		k, err := decodeKey(d)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

// sliceCount reads and bounds-checks a collection count.
func sliceCount(d *wire.Decoder, what string) (uint64, error) {
	n, err := d.Uvarint()
	if err != nil {
		return 0, err
	}
	if n > uint64(d.Len()) {
		return 0, fmt.Errorf("%w: %d %s declared, %d bytes remain", wire.ErrMalformed, n, what, d.Len())
	}
	return n, nil
}

func registerCoreWireCodecs() {
	wire.Register(tagPurchaseRequest, "core.PurchaseRequest", PurchaseRequest{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(PurchaseRequest)
			dst = wire.AppendString(dst, m.Buyer)
			dst = wire.AppendBytes(dst, m.CoinPub)
			dst = wire.AppendBytes(dst, m.Handle)
			dst = wire.AppendInt(dst, m.Value)
			dst = wire.AppendBool(dst, m.Anonymous)
			dst = wire.AppendBytes(dst, m.Sig)
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m PurchaseRequest
			var err error
			if m.Buyer, err = d.String(); err != nil {
				return nil, err
			}
			if m.CoinPub, err = decodeKey(d); err != nil {
				return nil, err
			}
			if m.Handle, err = d.Bytes(); err != nil {
				return nil, err
			}
			if m.Value, err = d.Int(); err != nil {
				return nil, err
			}
			if m.Anonymous, err = d.Bool(); err != nil {
				return nil, err
			}
			if m.Sig, err = d.Bytes(); err != nil {
				return nil, err
			}
			return m, nil
		})
	wire.Register(tagPurchaseResponse, "core.PurchaseResponse", PurchaseResponse{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(PurchaseResponse)
			return m.Coin.AppendWire(dst), nil
		},
		func(d *wire.Decoder) (any, error) {
			c, err := coin.DecodeWireCoin(d)
			if err != nil {
				return nil, err
			}
			return PurchaseResponse{Coin: c}, nil
		})
	wire.Register(tagBatchPurchaseRequest, "core.BatchPurchaseRequest", BatchPurchaseRequest{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(BatchPurchaseRequest)
			dst = wire.AppendString(dst, m.Buyer)
			dst = appendKeys(dst, m.CoinPubs)
			dst = wire.AppendInt(dst, m.Value)
			dst = wire.AppendBytes(dst, m.Sig)
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m BatchPurchaseRequest
			var err error
			if m.Buyer, err = d.String(); err != nil {
				return nil, err
			}
			if m.CoinPubs, err = decodeKeys(d); err != nil {
				return nil, err
			}
			if m.Value, err = d.Int(); err != nil {
				return nil, err
			}
			if m.Sig, err = d.Bytes(); err != nil {
				return nil, err
			}
			return m, nil
		})
	wire.Register(tagBatchPurchaseResponse, "core.BatchPurchaseResponse", BatchPurchaseResponse{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(BatchPurchaseResponse)
			dst = wire.AppendUvarint(dst, uint64(len(m.Coins)))
			for i := range m.Coins {
				dst = m.Coins[i].AppendWire(dst)
			}
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m BatchPurchaseResponse
			n, err := sliceCount(d, "coins")
			if err != nil {
				return nil, err
			}
			if n > 0 {
				m.Coins = make([]coin.Coin, 0, n)
				for i := uint64(0); i < n; i++ {
					c, err := coin.DecodeWireCoin(d)
					if err != nil {
						return nil, err
					}
					m.Coins = append(m.Coins, c)
				}
			}
			return m, nil
		})
	wire.Register(tagEnrollRequest, "core.EnrollRequest", EnrollRequest{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(EnrollRequest)
			dst = wire.AppendString(dst, m.Identity)
			dst = wire.AppendInt(dst, int64(m.PoolSize))
			dst = wire.AppendBytes(dst, m.Pub)
			dst = wire.AppendBytes(dst, m.Sig)
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m EnrollRequest
			var err error
			if m.Identity, err = d.String(); err != nil {
				return nil, err
			}
			var n int64
			if n, err = d.Int(); err != nil {
				return nil, err
			}
			m.PoolSize = int(n)
			if m.Pub, err = decodeKey(d); err != nil {
				return nil, err
			}
			if m.Sig, err = d.Bytes(); err != nil {
				return nil, err
			}
			return m, nil
		})
	wire.Register(tagEnrollResponse, "core.EnrollResponse", EnrollResponse{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(EnrollResponse)
			dst = wire.AppendBytes(dst, m.GroupPub)
			dst = wire.AppendUvarint(dst, uint64(len(m.Credentials)))
			for i := range m.Credentials {
				dst = m.Credentials[i].AppendWire(dst)
			}
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m EnrollResponse
			var err error
			if m.GroupPub, err = decodeKey(d); err != nil {
				return nil, err
			}
			n, err := sliceCount(d, "credentials")
			if err != nil {
				return nil, err
			}
			if n > 0 {
				m.Credentials = make([]groupsig.IssuedCredential, 0, n)
				for i := uint64(0); i < n; i++ {
					ic, err := groupsig.DecodeWireIssuedCredential(d)
					if err != nil {
						return nil, err
					}
					m.Credentials = append(m.Credentials, ic)
				}
			}
			return m, nil
		})
	wire.Register(tagRefillRequest, "core.RefillRequest", RefillRequest{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(RefillRequest)
			dst = wire.AppendString(dst, m.Identity)
			dst = wire.AppendInt(dst, int64(m.N))
			dst = wire.AppendBytes(dst, m.Nonce)
			dst = wire.AppendBytes(dst, m.Sig)
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m RefillRequest
			var err error
			if m.Identity, err = d.String(); err != nil {
				return nil, err
			}
			var n int64
			if n, err = d.Int(); err != nil {
				return nil, err
			}
			m.N = int(n)
			if m.Nonce, err = d.Bytes(); err != nil {
				return nil, err
			}
			if m.Sig, err = d.Bytes(); err != nil {
				return nil, err
			}
			return m, nil
		})
	wire.Register(tagRefillResponse, "core.RefillResponse", RefillResponse{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(RefillResponse)
			dst = wire.AppendUvarint(dst, uint64(len(m.Credentials)))
			for i := range m.Credentials {
				dst = m.Credentials[i].AppendWire(dst)
			}
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m RefillResponse
			n, err := sliceCount(d, "credentials")
			if err != nil {
				return nil, err
			}
			if n > 0 {
				m.Credentials = make([]groupsig.IssuedCredential, 0, n)
				for i := uint64(0); i < n; i++ {
					ic, err := groupsig.DecodeWireIssuedCredential(d)
					if err != nil {
						return nil, err
					}
					m.Credentials = append(m.Credentials, ic)
				}
			}
			return m, nil
		})
	wire.Register(tagOfferRequest, "core.OfferRequest", OfferRequest{},
		func(dst []byte, v any) ([]byte, error) {
			return wire.AppendInt(dst, v.(OfferRequest).Value), nil
		},
		func(d *wire.Decoder) (any, error) {
			val, err := d.Int()
			if err != nil {
				return nil, err
			}
			return OfferRequest{Value: val}, nil
		})
	wire.Register(tagOfferResponse, "core.OfferResponse", OfferResponse{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(OfferResponse)
			dst = wire.AppendBytes(dst, m.HolderPub)
			dst = wire.AppendBytes(dst, m.Nonce)
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m OfferResponse
			var err error
			if m.HolderPub, err = decodeKey(d); err != nil {
				return nil, err
			}
			if m.Nonce, err = d.Bytes(); err != nil {
				return nil, err
			}
			return m, nil
		})
	wire.Register(tagDeliverRequest, "core.DeliverRequest", DeliverRequest{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(DeliverRequest)
			dst = m.Coin.AppendWire(dst)
			dst = m.Binding.AppendWire(dst)
			dst = wire.AppendBytes(dst, m.ChallengeSig)
			dst = wire.AppendBool(dst, m.Issue)
			dst = groupsig.AppendWireSignaturePtr(dst, m.GroupSig)
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m DeliverRequest
			var err error
			if m.Coin, err = coin.DecodeWireCoin(d); err != nil {
				return nil, err
			}
			if m.Binding, err = coin.DecodeWireBinding(d); err != nil {
				return nil, err
			}
			if m.ChallengeSig, err = d.Bytes(); err != nil {
				return nil, err
			}
			if m.Issue, err = d.Bool(); err != nil {
				return nil, err
			}
			if m.GroupSig, err = groupsig.DecodeWireSignaturePtr(d); err != nil {
				return nil, err
			}
			return m, nil
		})
	wire.Register(tagDeliverResponse, "core.DeliverResponse", DeliverResponse{},
		func(dst []byte, v any) ([]byte, error) { return dst, nil },
		func(d *wire.Decoder) (any, error) { return DeliverResponse{}, nil })
	wire.Register(tagTransferRequest, "core.TransferRequest", TransferRequest{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(TransferRequest)
			dst = m.Body.AppendWire(dst)
			dst = wire.AppendBytes(dst, m.HolderSig)
			dst = m.GroupSig.AppendWire(dst)
			dst = coin.AppendWireBindingPtr(dst, m.PresentedBinding)
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m TransferRequest
			var err error
			if m.Body, err = coin.DecodeWireTransferBody(d); err != nil {
				return nil, err
			}
			if m.HolderSig, err = d.Bytes(); err != nil {
				return nil, err
			}
			if m.GroupSig, err = groupsig.DecodeWireSignature(d); err != nil {
				return nil, err
			}
			if m.PresentedBinding, err = coin.DecodeWireBindingPtr(d); err != nil {
				return nil, err
			}
			return m, nil
		})
	wire.Register(tagTransferResponse, "core.TransferResponse", TransferResponse{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(TransferResponse)
			dst = wire.AppendBool(dst, m.OK)
			dst = wire.AppendString(dst, m.Reason)
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m TransferResponse
			var err error
			if m.OK, err = d.Bool(); err != nil {
				return nil, err
			}
			if m.Reason, err = d.String(); err != nil {
				return nil, err
			}
			return m, nil
		})
	wire.Register(tagRenewRequest, "core.RenewRequest", RenewRequest{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(RenewRequest)
			dst = wire.AppendBytes(dst, m.CoinPub)
			dst = wire.AppendU64(dst, m.Seq)
			dst = wire.AppendBytes(dst, m.HolderSig)
			dst = m.GroupSig.AppendWire(dst)
			dst = coin.AppendWireBindingPtr(dst, m.PresentedBinding)
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m RenewRequest
			var err error
			if m.CoinPub, err = decodeKey(d); err != nil {
				return nil, err
			}
			if m.Seq, err = d.U64(); err != nil {
				return nil, err
			}
			if m.HolderSig, err = d.Bytes(); err != nil {
				return nil, err
			}
			if m.GroupSig, err = groupsig.DecodeWireSignature(d); err != nil {
				return nil, err
			}
			if m.PresentedBinding, err = coin.DecodeWireBindingPtr(d); err != nil {
				return nil, err
			}
			return m, nil
		})
	wire.Register(tagRenewResponse, "core.RenewResponse", RenewResponse{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(RenewResponse)
			return m.Binding.AppendWire(dst), nil
		},
		func(d *wire.Decoder) (any, error) {
			b, err := coin.DecodeWireBinding(d)
			if err != nil {
				return nil, err
			}
			return RenewResponse{Binding: b}, nil
		})
	wire.Register(tagDepositRequest, "core.DepositRequest", DepositRequest{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(DepositRequest)
			return appendDepositRequest(dst, &m), nil
		},
		func(d *wire.Decoder) (any, error) {
			return decodeDepositRequest(d)
		})
	wire.Register(tagDepositResponse, "core.DepositResponse", DepositResponse{},
		func(dst []byte, v any) ([]byte, error) {
			return wire.AppendInt(dst, v.(DepositResponse).Amount), nil
		},
		func(d *wire.Decoder) (any, error) {
			amt, err := d.Int()
			if err != nil {
				return nil, err
			}
			return DepositResponse{Amount: amt}, nil
		})
	wire.Register(tagLayeredDepositRequest, "core.LayeredDepositRequest", LayeredDepositRequest{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(LayeredDepositRequest)
			dst = m.LC.AppendWire(dst)
			dst = wire.AppendString(dst, m.PayoutRef)
			dst = wire.AppendBytes(dst, m.HolderSig)
			dst = m.GroupSig.AppendWire(dst)
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m LayeredDepositRequest
			var err error
			if m.LC, err = layered.DecodeWireCoin(d); err != nil {
				return nil, err
			}
			if m.PayoutRef, err = d.String(); err != nil {
				return nil, err
			}
			if m.HolderSig, err = d.Bytes(); err != nil {
				return nil, err
			}
			if m.GroupSig, err = groupsig.DecodeWireSignature(d); err != nil {
				return nil, err
			}
			return m, nil
		})
	wire.Register(tagSyncRequest, "core.SyncRequest", SyncRequest{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(SyncRequest)
			dst = wire.AppendString(dst, m.Identity)
			dst = wire.AppendBytes(dst, m.Nonce)
			dst = wire.AppendBytes(dst, m.Sig)
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m SyncRequest
			var err error
			if m.Identity, err = d.String(); err != nil {
				return nil, err
			}
			if m.Nonce, err = d.Bytes(); err != nil {
				return nil, err
			}
			if m.Sig, err = d.Bytes(); err != nil {
				return nil, err
			}
			return m, nil
		})
	wire.Register(tagSyncResponse, "core.SyncResponse", SyncResponse{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(SyncResponse)
			dst = wire.AppendUvarint(dst, uint64(len(m.Bindings)))
			for i := range m.Bindings {
				dst = m.Bindings[i].AppendWire(dst)
			}
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m SyncResponse
			n, err := sliceCount(d, "bindings")
			if err != nil {
				return nil, err
			}
			if n > 0 {
				m.Bindings = make([]coin.Binding, 0, n)
				for i := uint64(0); i < n; i++ {
					b, err := coin.DecodeWireBinding(d)
					if err != nil {
						return nil, err
					}
					m.Bindings = append(m.Bindings, b)
				}
			}
			return m, nil
		})
	wire.Register(tagFraudReport, "core.FraudReport", FraudReport{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(FraudReport)
			dst = wire.AppendBytes(dst, m.CoinPub)
			dst = m.MyBinding.AppendWire(dst)
			dst = m.Observed.AppendWire(dst)
			dst = m.GroupSig.AppendWire(dst)
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m FraudReport
			var err error
			if m.CoinPub, err = decodeKey(d); err != nil {
				return nil, err
			}
			if m.MyBinding, err = coin.DecodeWireBinding(d); err != nil {
				return nil, err
			}
			if m.Observed, err = coin.DecodeWireBinding(d); err != nil {
				return nil, err
			}
			if m.GroupSig, err = groupsig.DecodeWireSignature(d); err != nil {
				return nil, err
			}
			return m, nil
		})
	wire.Register(tagFraudResponse, "core.FraudResponse", FraudResponse{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(FraudResponse)
			dst = wire.AppendU64(dst, m.CaseID)
			dst = wire.AppendString(dst, m.Verdict)
			dst = wire.AppendString(dst, m.Punished)
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m FraudResponse
			var err error
			if m.CaseID, err = d.U64(); err != nil {
				return nil, err
			}
			if m.Verdict, err = d.String(); err != nil {
				return nil, err
			}
			if m.Punished, err = d.String(); err != nil {
				return nil, err
			}
			return m, nil
		})
	wire.Register(tagDisputeRequest, "core.DisputeRequest", DisputeRequest{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(DisputeRequest)
			dst = wire.AppendBytes(dst, m.CoinPub)
			dst = wire.AppendU64(dst, m.FromSeq)
			dst = wire.AppendU64(dst, m.ToSeq)
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m DisputeRequest
			var err error
			if m.CoinPub, err = decodeKey(d); err != nil {
				return nil, err
			}
			if m.FromSeq, err = d.U64(); err != nil {
				return nil, err
			}
			if m.ToSeq, err = d.U64(); err != nil {
				return nil, err
			}
			return m, nil
		})
	wire.Register(tagDisputeResponse, "core.DisputeResponse", DisputeResponse{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(DisputeResponse)
			dst = wire.AppendUvarint(dst, uint64(len(m.Proofs)))
			for i := range m.Proofs {
				dst = appendRelinquishProof(dst, &m.Proofs[i])
			}
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m DisputeResponse
			n, err := sliceCount(d, "proofs")
			if err != nil {
				return nil, err
			}
			if n > 0 {
				m.Proofs = make([]RelinquishProof, 0, n)
				for i := uint64(0); i < n; i++ {
					p, err := decodeRelinquishProof(d)
					if err != nil {
						return nil, err
					}
					m.Proofs = append(m.Proofs, p)
				}
			}
			return m, nil
		})
	wire.Register(tagRelinquishProof, "core.RelinquishProof", RelinquishProof{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(RelinquishProof)
			return appendRelinquishProof(dst, &m), nil
		},
		func(d *wire.Decoder) (any, error) {
			return decodeRelinquishProof(d)
		})
	registerChannelWireCodecs()
}

// registerChannelWireCodecs installs the micropayment-channel and
// batch-deposit codecs (tags 27–34).
func registerChannelWireCodecs() {
	wire.Register(tagChannelOpenRequest, "core.ChannelOpenRequest", ChannelOpenRequest{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(ChannelOpenRequest)
			dst = appendCommitment(dst, &m.Commitment)
			dst = wire.AppendBool(dst, m.Lottery)
			dst = wire.AppendUvarint(dst, uint64(m.WinDivisor))
			dst = wire.AppendUvarint(dst, uint64(m.Prize))
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m ChannelOpenRequest
			var err error
			if m.Commitment, err = decodeCommitment(d); err != nil {
				return nil, err
			}
			if m.Lottery, err = d.Bool(); err != nil {
				return nil, err
			}
			if m.WinDivisor, err = decodeU32(d, "win divisor"); err != nil {
				return nil, err
			}
			if m.Prize, err = decodeU32(d, "prize"); err != nil {
				return nil, err
			}
			return m, nil
		})
	wire.Register(tagChannelOpenResponse, "core.ChannelOpenResponse", ChannelOpenResponse{},
		func(dst []byte, v any) ([]byte, error) {
			return wire.AppendBytes(dst, v.(ChannelOpenResponse).Nonce), nil
		},
		func(d *wire.Decoder) (any, error) {
			nonce, err := d.Bytes()
			if err != nil {
				return nil, err
			}
			return ChannelOpenResponse{Nonce: nonce}, nil
		})
	wire.Register(tagChannelPayRequest, "core.ChannelPayRequest", ChannelPayRequest{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(ChannelPayRequest)
			dst = appendPayment(dst, &m.Payment)
			dst = appendTicketPtr(dst, m.Ticket)
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m ChannelPayRequest
			var err error
			if m.Payment, err = decodePayment(d); err != nil {
				return nil, err
			}
			if m.Ticket, err = decodeTicketPtr(d); err != nil {
				return nil, err
			}
			return m, nil
		})
	wire.Register(tagChannelPayResponse, "core.ChannelPayResponse", ChannelPayResponse{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(ChannelPayResponse)
			dst = wire.AppendInt(dst, m.Owed)
			dst = wire.AppendBool(dst, m.Won)
			dst = wire.AppendBytes(dst, m.Nonce)
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m ChannelPayResponse
			var err error
			if m.Owed, err = d.Int(); err != nil {
				return nil, err
			}
			if m.Won, err = d.Bool(); err != nil {
				return nil, err
			}
			if m.Nonce, err = d.Bytes(); err != nil {
				return nil, err
			}
			return m, nil
		})
	wire.Register(tagChannelCloseRequest, "core.ChannelCloseRequest", ChannelCloseRequest{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(ChannelCloseRequest)
			dst = appendWord(dst, m.Root)
			dst = wire.AppendBytes(dst, []byte(m.CoinID))
			dst = wire.AppendBool(dst, m.Final)
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m ChannelCloseRequest
			var err error
			if m.Root, err = decodeWord(d); err != nil {
				return nil, err
			}
			var raw []byte
			if raw, err = d.Bytes(); err != nil {
				return nil, err
			}
			m.CoinID = coin.ID(raw)
			if m.Final, err = d.Bool(); err != nil {
				return nil, err
			}
			return m, nil
		})
	wire.Register(tagChannelCloseResponse, "core.ChannelCloseResponse", ChannelCloseResponse{},
		func(dst []byte, v any) ([]byte, error) {
			return wire.AppendInt(dst, v.(ChannelCloseResponse).Settled), nil
		},
		func(d *wire.Decoder) (any, error) {
			settled, err := d.Int()
			if err != nil {
				return nil, err
			}
			return ChannelCloseResponse{Settled: settled}, nil
		})
	wire.Register(tagBatchDepositRequest, "core.BatchDepositRequest", BatchDepositRequest{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(BatchDepositRequest)
			dst = wire.AppendUvarint(dst, uint64(len(m.Deposits)))
			for i := range m.Deposits {
				dst = appendDepositRequest(dst, &m.Deposits[i])
			}
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m BatchDepositRequest
			n, err := sliceCount(d, "deposits")
			if err != nil {
				return nil, err
			}
			if n > 0 {
				m.Deposits = make([]DepositRequest, 0, n)
				for i := uint64(0); i < n; i++ {
					dep, err := decodeDepositRequest(d)
					if err != nil {
						return nil, err
					}
					m.Deposits = append(m.Deposits, dep)
				}
			}
			return m, nil
		})
	wire.Register(tagBatchDepositResponse, "core.BatchDepositResponse", BatchDepositResponse{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(BatchDepositResponse)
			dst = wire.AppendUvarint(dst, uint64(len(m.Results)))
			for i := range m.Results {
				r := &m.Results[i]
				dst = wire.AppendInt(dst, r.Amount)
				dst = wire.AppendString(dst, r.ErrCode)
				dst = wire.AppendString(dst, r.ErrMsg)
			}
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m BatchDepositResponse
			n, err := sliceCount(d, "results")
			if err != nil {
				return nil, err
			}
			if n > 0 {
				m.Results = make([]BatchDepositResult, 0, n)
				for i := uint64(0); i < n; i++ {
					var r BatchDepositResult
					if r.Amount, err = d.Int(); err != nil {
						return nil, err
					}
					if r.ErrCode, err = d.String(); err != nil {
						return nil, err
					}
					if r.ErrMsg, err = d.String(); err != nil {
						return nil, err
					}
					m.Results = append(m.Results, r)
				}
			}
			return m, nil
		})
	wire.Register(tagSettleRequest, "core.SettleRequest", SettleRequest{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(SettleRequest)
			dst = wire.AppendBytes(dst, m.CoinID)
			dst = wire.AppendString(dst, m.PayoutRef)
			dst = wire.AppendInt(dst, m.Amount)
			dst = wire.AppendInt(dst, int64(m.FromShard))
			dst = wire.AppendBytes(dst, m.Sig)
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m SettleRequest
			var err error
			if m.CoinID, err = d.Bytes(); err != nil {
				return nil, err
			}
			if m.PayoutRef, err = d.String(); err != nil {
				return nil, err
			}
			if m.Amount, err = d.Int(); err != nil {
				return nil, err
			}
			from, err := d.Int()
			if err != nil {
				return nil, err
			}
			m.FromShard = int(from)
			if m.Sig, err = d.Bytes(); err != nil {
				return nil, err
			}
			return m, nil
		})
	wire.Register(tagSettleResponse, "core.SettleResponse", SettleResponse{},
		func(dst []byte, v any) ([]byte, error) { return dst, nil },
		func(d *wire.Decoder) (any, error) { return SettleResponse{}, nil })
}

// appendWord / decodeWord handle payword's fixed 32-byte hash values.
func appendWord(dst []byte, w payword.Word) []byte {
	return wire.AppendBytes(dst, w[:])
}

func decodeWord(d *wire.Decoder) (payword.Word, error) {
	var w payword.Word
	raw, err := d.Bytes()
	if err != nil {
		return w, err
	}
	if len(raw) != len(w) {
		return w, fmt.Errorf("%w: payword word is %d bytes, want %d", wire.ErrMalformed, len(raw), len(w))
	}
	copy(w[:], raw)
	return w, nil
}

// decodeU32 reads a uvarint bounded to uint32 range.
func decodeU32(d *wire.Decoder, what string) (uint32, error) {
	n, err := d.Uvarint()
	if err != nil {
		return 0, err
	}
	if n > math.MaxUint32 {
		return 0, fmt.Errorf("%w: %s %d overflows uint32", wire.ErrMalformed, what, n)
	}
	return uint32(n), nil
}

func appendCommitment(dst []byte, c *payword.Commitment) []byte {
	dst = wire.AppendString(dst, c.Vendor)
	dst = appendWord(dst, c.Root)
	dst = wire.AppendUvarint(dst, uint64(c.Length))
	dst = wire.AppendBytes(dst, c.Payer)
	dst = wire.AppendBytes(dst, c.Sig)
	return dst
}

func decodeCommitment(d *wire.Decoder) (payword.Commitment, error) {
	var c payword.Commitment
	var err error
	if c.Vendor, err = d.String(); err != nil {
		return c, err
	}
	if c.Root, err = decodeWord(d); err != nil {
		return c, err
	}
	if c.Length, err = decodeU32(d, "chain length"); err != nil {
		return c, err
	}
	if c.Payer, err = decodeKey(d); err != nil {
		return c, err
	}
	if c.Sig, err = d.Bytes(); err != nil {
		return c, err
	}
	return c, nil
}

func appendPayment(dst []byte, p *payword.Payment) []byte {
	dst = appendWord(dst, p.Root)
	dst = wire.AppendUvarint(dst, uint64(p.Index))
	dst = appendWord(dst, p.W)
	return dst
}

func decodePayment(d *wire.Decoder) (payword.Payment, error) {
	var p payword.Payment
	var err error
	if p.Root, err = decodeWord(d); err != nil {
		return p, err
	}
	if p.Index, err = decodeU32(d, "payment index"); err != nil {
		return p, err
	}
	if p.W, err = decodeWord(d); err != nil {
		return p, err
	}
	return p, nil
}

// appendTicketPtr / decodeTicketPtr use the same leading presence flag as
// coin.AppendWireBindingPtr, so nil survives the round trip (gob parity).
func appendTicketPtr(dst []byte, tk *payword.Ticket) []byte {
	if tk == nil {
		return wire.AppendBool(dst, false)
	}
	dst = wire.AppendBool(dst, true)
	dst = wire.AppendString(dst, tk.Vendor)
	dst = wire.AppendU64(dst, tk.Serial)
	dst = wire.AppendUvarint(dst, uint64(tk.WinDivisor))
	dst = wire.AppendUvarint(dst, uint64(tk.Prize))
	dst = wire.AppendBytes(dst, tk.VendorNonce[:])
	dst = wire.AppendBytes(dst, tk.Payer)
	dst = wire.AppendBytes(dst, tk.Sig)
	return dst
}

func decodeTicketPtr(d *wire.Decoder) (*payword.Ticket, error) {
	present, err := d.Bool()
	if err != nil {
		return nil, err
	}
	if !present {
		return nil, nil
	}
	tk := &payword.Ticket{}
	if tk.Vendor, err = d.String(); err != nil {
		return nil, err
	}
	if tk.Serial, err = d.U64(); err != nil {
		return nil, err
	}
	if tk.WinDivisor, err = decodeU32(d, "win divisor"); err != nil {
		return nil, err
	}
	if tk.Prize, err = decodeU32(d, "prize"); err != nil {
		return nil, err
	}
	var nonce payword.Word
	if nonce, err = decodeWord(d); err != nil {
		return nil, err
	}
	tk.VendorNonce = nonce
	if tk.Payer, err = decodeKey(d); err != nil {
		return nil, err
	}
	if tk.Sig, err = d.Bytes(); err != nil {
		return nil, err
	}
	return tk, nil
}

// appendDepositRequest / decodeDepositRequest mirror the standalone
// DepositRequest codec so batches nest the identical layout.
func appendDepositRequest(dst []byte, m *DepositRequest) []byte {
	dst = wire.AppendBytes(dst, m.CoinPub)
	dst = wire.AppendString(dst, m.PayoutRef)
	dst = wire.AppendBytes(dst, m.HolderSig)
	dst = m.GroupSig.AppendWire(dst)
	dst = coin.AppendWireBindingPtr(dst, m.PresentedBinding)
	return dst
}

func decodeDepositRequest(d *wire.Decoder) (DepositRequest, error) {
	var m DepositRequest
	var err error
	if m.CoinPub, err = decodeKey(d); err != nil {
		return m, err
	}
	if m.PayoutRef, err = d.String(); err != nil {
		return m, err
	}
	if m.HolderSig, err = d.Bytes(); err != nil {
		return m, err
	}
	if m.GroupSig, err = groupsig.DecodeWireSignature(d); err != nil {
		return m, err
	}
	if m.PresentedBinding, err = coin.DecodeWireBindingPtr(d); err != nil {
		return m, err
	}
	return m, nil
}

func appendRelinquishProof(dst []byte, p *RelinquishProof) []byte {
	dst = wire.AppendBool(dst, p.Renewal)
	dst = p.Body.AppendWire(dst)
	dst = wire.AppendBytes(dst, p.HolderSig)
	dst = wire.AppendBytes(dst, p.PrevHold)
	return dst
}

func decodeRelinquishProof(d *wire.Decoder) (RelinquishProof, error) {
	var p RelinquishProof
	var err error
	if p.Renewal, err = d.Bool(); err != nil {
		return p, err
	}
	if p.Body, err = coin.DecodeWireTransferBody(d); err != nil {
		return p, err
	}
	if p.HolderSig, err = d.Bytes(); err != nil {
		return p, err
	}
	if p.PrevHold, err = decodeKey(d); err != nil {
		return p, err
	}
	return p, nil
}
