package core

import (
	"fmt"
	"strings"
	"testing"

	"whopay/internal/groupsig"
)

// TestAnonymousCoinLazySyncCycle drives an owner-anonymous coin through a
// full churn cycle: downtime ops while the hidden owner sleeps, trigger
// re-registration and lazy catch-up on rejoin, then owner-serviced
// transfers again — the most protocol-dense path in the system.
func TestAnonymousCoinLazySyncCycle(t *testing.T) {
	f := newFixture(t, fixtureOpts{detection: true, indirect: true, syncMode: SyncLazy})
	u := f.addPeer("u", nil)
	v := f.addPeer("v", nil)
	w := f.addPeer("w", nil)

	id, err := u.Purchase(1, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatal(err)
	}
	u.GoOffline()
	// Direct (indirect-routed) transfer fails: the trigger target is
	// offline.
	if err := v.TransferTo(w.Addr(), id); err == nil {
		t.Fatal("transfer reached an offline hidden owner")
	}
	if err := v.TransferViaBroker(w.Addr(), id); err != nil {
		t.Fatalf("downtime transfer of anonymous coin: %v", err)
	}
	// Rejoin: triggers re-register, coins marked dirty.
	if err := u.GoOnline(); err != nil {
		t.Fatal(err)
	}
	if u.Ops().Get(OpSync) != 0 {
		t.Fatal("lazy peer synced proactively")
	}
	// The next transfer routes through the indirection layer to the
	// owner, which lazily catches up from the public binding list.
	if err := w.TransferTo(v.Addr(), id); err != nil {
		t.Fatalf("post-rejoin anonymous transfer: %v", err)
	}
	if u.Ops().Get(OpCheck) == 0 || u.Ops().Get(OpLazySync) == 0 {
		t.Fatalf("owner did not lazy-sync: %+v", u.Ops())
	}
	if err := v.Deposit(id, "v"); err != nil {
		t.Fatal(err)
	}
	if f.broker.Balance("v") != 1 {
		t.Fatal("deposit not credited")
	}
}

// TestSyncMultipleCoins: several coins of one owner get broker-era bindings
// during downtime; one sync reconciles all of them and clears broker state.
func TestSyncMultipleCoins(t *testing.T) {
	f := newFixture(t, fixtureOpts{detection: true, syncMode: SyncProactive})
	u := f.addPeer("u", nil)
	v := f.addPeer("v", nil)
	w := f.addPeer("w", nil)

	const n = 4
	ids := make([]interface{ String() string }, 0, n)
	for i := 0; i < n; i++ {
		id, err := u.Purchase(1, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := u.IssueTo(v.Addr(), id); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	u.GoOffline()
	for _, raw := range v.HeldCoins() {
		if err := v.TransferViaBroker(w.Addr(), raw); err != nil {
			t.Fatal(err)
		}
	}
	if err := u.GoOnline(); err != nil {
		t.Fatal(err)
	}
	if got := u.Ops().Get(OpSync); got != 1 {
		t.Fatalf("syncs = %d, want 1 (one per rejoin, covering all coins)", got)
	}
	// All owner bindings caught up; owner services the next hops.
	for _, raw := range w.HeldCoins() {
		if err := w.TransferTo(v.Addr(), raw); err != nil {
			t.Fatalf("post-sync transfer: %v", err)
		}
	}
	if got := u.Ops().Get(OpTransfer); got != n {
		t.Fatalf("owner transfers = %d, want %d", got, n)
	}
	// The broker dropped its downtime state after the sync: the next
	// downtime op uses flavor-one verification and still works.
	u.GoOffline()
	raw := v.HeldCoins()[0]
	if err := v.TransferViaBroker(w.Addr(), raw); err != nil {
		t.Fatalf("flavor-one downtime transfer after sync: %v", err)
	}
	_ = ids
}

// TestDisputeChainAcrossRenewalsAndBrokerOps: the audit-trail walk must
// verify chains that interleave owner transfers, renewals, and broker-era
// downtime operations.
func TestDisputeChainAcrossRenewalsAndBrokerOps(t *testing.T) {
	f := newFixture(t, fixtureOpts{detection: true, syncMode: SyncProactive})
	u := f.addPeer("u", nil)
	v := f.addPeer("v", nil)
	w := f.addPeer("w", nil)

	id, err := u.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatal(err)
	}
	vBinding, _ := v.HeldBinding(id)

	// Hop 1: owner transfer v→w; then w renews via owner; then owner
	// sleeps and w renews via broker; then downtime transfer w→v.
	if err := v.TransferTo(w.Addr(), id); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Renew(id); err != nil {
		t.Fatal(err)
	}
	u.GoOffline()
	if viaBroker, err := w.Renew(id); err != nil || !viaBroker {
		t.Fatalf("broker renewal: %v (viaBroker=%v)", err, viaBroker)
	}
	if err := w.TransferViaBroker(v.Addr(), id); err != nil {
		t.Fatal(err)
	}
	if err := u.GoOnline(); err != nil {
		t.Fatal(err)
	}
	final, _ := v.HeldBinding(id)

	// v's ORIGINAL binding vs the final one spans: owner transfer,
	// owner renewal, broker renewal, broker transfer. A (false) fraud
	// report must come back "legitimate" by walking all four eras.
	verdict := v.reportFraud(oc2pub(id), vBinding, final)
	if !strings.Contains(verdict, "legitimate") {
		t.Fatalf("verdict = %q, want legitimate (chain across 4 op kinds)", verdict)
	}
	if f.broker.Frozen("u") {
		t.Fatal("honest owner punished")
	}
}

// TestDisputeOwnerUnreachable: reports against sleeping owners stay pending
// rather than punishing in absentia.
func TestDisputeOwnerUnreachable(t *testing.T) {
	f := newFixture(t, fixtureOpts{detection: true})
	u := f.addPeer("u", nil)
	v := f.addPeer("v", nil)
	w := f.addPeer("w", nil)
	id, err := u.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatal(err)
	}
	vb, _ := v.HeldBinding(id)
	if err := v.TransferTo(w.Addr(), id); err != nil {
		t.Fatal(err)
	}
	wb, _ := w.HeldBinding(id)
	u.GoOffline()
	verdict := v.reportFraud(oc2pub(id), vb, wb)
	if !strings.Contains(verdict, "pending") {
		t.Fatalf("verdict = %q, want pending while owner offline", verdict)
	}
	if f.broker.Frozen("u") {
		t.Fatal("owner punished in absentia")
	}
	cases := f.broker.FraudCases()
	if len(cases) != 1 || cases[0].Kind != "owner-unreachable" {
		t.Fatalf("cases = %+v", cases)
	}
}

// TestBrokerEvidenceOpensAnonymousDowntimePayer: fairness through the
// broker path — the judge opens the group signature on a captured downtime
// transfer request.
func TestBrokerEvidenceOpensAnonymousDowntimePayer(t *testing.T) {
	snoop := newSnoopNetwork()
	f := newFixtureOnNetwork(t, snoop)
	u := f.addPeer("u", nil)
	v := f.addPeer("v", nil)
	w := f.addPeer("w", nil)
	id, err := u.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatal(err)
	}
	u.GoOffline()
	if err := v.TransferViaBroker(w.Addr(), id); err != nil {
		t.Fatal(err)
	}
	<-snoop.mu
	var captured *TransferRequest
	for i := range snoop.seen {
		if snoop.seen[i].to != "broker" {
			continue
		}
		if tr, ok := snoop.seen[i].payload.(TransferRequest); ok {
			captured = &tr
		}
	}
	snoop.mu <- struct{}{}
	if captured == nil {
		t.Fatal("no downtime TransferRequest captured")
	}
	// The broker saw no identity; the judge recovers it.
	identity, err := f.judge.Open(captured.Body.Message(), captured.GroupSig)
	if err != nil {
		t.Fatal(err)
	}
	if identity != "v" {
		t.Fatalf("opened %q, want v", identity)
	}
}

// TestManyPeersRoundRobin stress-drives one coin around a ring of peers
// under real crypto, validating long binding chains (seq growth, audit
// logs, DHT version growth).
func TestManyPeersRoundRobin(t *testing.T) {
	f := newFixture(t, fixtureOpts{detection: true})
	owner := f.addPeer("owner", nil)
	const n = 6
	ring := make([]*Peer, n)
	for i := range ring {
		ring[i] = f.addPeer(fmt.Sprintf("r%d", i), nil)
	}
	id, err := owner.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.IssueTo(ring[0].Addr(), id); err != nil {
		t.Fatal(err)
	}
	const laps = 3
	for hop := 0; hop < laps*n; hop++ {
		from := ring[hop%n]
		to := ring[(hop+1)%n]
		if err := from.TransferTo(to.Addr(), id); err != nil {
			t.Fatalf("hop %d: %v", hop, err)
		}
	}
	if got := owner.Ops().Get(OpTransfer); got != laps*n {
		t.Fatalf("owner transfers = %d, want %d", got, laps*n)
	}
	holder := ring[0]
	b, _ := holder.HeldBinding(id)
	if b == nil {
		t.Fatal("ring lost the coin")
	}
	if err := holder.Deposit(id, "ring"); err != nil {
		t.Fatal(err)
	}
	if f.broker.Balance("ring") != 1 {
		t.Fatal("final deposit")
	}
}

// TestAuditLogCapEviction: capped audit logs keep only the most recent
// proofs; disputes older than the cap cannot be answered (the documented
// trade-off the simulator accepts).
func TestAuditLogCapEviction(t *testing.T) {
	f := newFixture(t, fixtureOpts{detection: true})
	owner := f.addPeer("owner", nil)
	owner.cfg.AuditLogCap = 2
	a := f.addPeer("a", nil)
	b := f.addPeer("b", nil)
	id, err := owner.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.IssueTo(a.Addr(), id); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		from, to := a, b
		if i%2 == 1 {
			from, to = b, a
		}
		if err := from.TransferTo(to.Addr(), id); err != nil {
			t.Fatal(err)
		}
	}
	ownerOC, _ := owner.owned.Get(id)
	logLen := len(ownerOC.log)
	if logLen != 2 {
		t.Fatalf("audit log length = %d, want cap 2", logLen)
	}
}

// TestShopGroupSignatureFairness: even shop-issued coins stay fair — a
// transfer of a shop coin is openable by the judge.
func TestShopGroupSignatureFairness(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	shop := NewShop(f.addPeer("shop", nil), 1)
	alice := f.addPeer("alice", nil)
	bob := f.addPeer("bob", nil)
	if _, err := shop.Vend(alice.Addr(), 1); err != nil {
		t.Fatal(err)
	}
	id := alice.HeldCoins()[0]
	// Build the transfer request by hand to capture its group sig.
	resp, err := alice.ep.Call(bob.Addr(), OfferRequest{Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	offer := resp.(OfferResponse)
	hc, _ := alice.held.Get(id)
	req, err := alice.buildTransfer(hc, bob.Addr(), offer)
	if err != nil {
		t.Fatal(err)
	}
	var gs groupsig.Signature = req.GroupSig
	identity, err := f.judge.Open(req.Body.Message(), gs)
	if err != nil {
		t.Fatal(err)
	}
	if identity != "alice" {
		t.Fatalf("opened %q", identity)
	}
}
