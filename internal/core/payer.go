package core

import (
	"errors"
	"fmt"
	"strings"

	"whopay/internal/bus"
	"whopay/internal/coin"
	"whopay/internal/sig"
)

// Payer/holder-side protocol: purchasing, spending (transfer via owner or
// broker), renewing, depositing, and synchronizing.

// Purchase buys a coin of the given value from the broker. With anonymous
// set, the coin carries an indirection handle instead of the owner identity
// (paper Section 5.2) — this requires configured indirection servers.
func (p *Peer) Purchase(value int64, anonymous bool) (coin.ID, error) {
	sp := p.instr.Begin("purchase")
	id, err := p.purchase(value, anonymous)
	p.instr.End(sp, err)
	return id, err
}

func (p *Peer) purchase(value int64, anonymous bool) (coin.ID, error) {
	coinKeys, err := p.suite.GenerateKey()
	if err != nil {
		return "", fmt.Errorf("core: coin keygen: %w", err)
	}
	var handleKeys *sig.KeyPair
	var handle []byte
	if anonymous {
		if p.indir == nil {
			return "", errors.New("core: anonymous coins need indirection servers")
		}
		hk, err := p.suite.GenerateKey()
		if err != nil {
			return "", fmt.Errorf("core: handle keygen: %w", err)
		}
		handleKeys = &hk
		handle = hk.Public
		p.stateMu.Lock()
		p.trigVersion++
		version := p.trigVersion
		p.stateMu.Unlock()
		if err := p.indir.Register(p.suite, hk, p.cfg.Addr, version); err != nil {
			return "", fmt.Errorf("core: registering handle trigger: %w", err)
		}
	}

	req := PurchaseRequest{
		Buyer:     p.cfg.ID,
		CoinPub:   coinKeys.Public,
		Handle:    handle,
		Value:     value,
		Anonymous: anonymous,
	}
	if req.Sig, err = p.suite.Sign(p.keys.Private, purchaseMessage(req.Buyer, req.CoinPub, req.Handle, req.Value, req.Anonymous)); err != nil {
		return "", fmt.Errorf("core: signing purchase: %w", err)
	}
	resp, err := p.callBroker(string(coinKeys.Public), req)
	if err != nil {
		return "", fmt.Errorf("core: purchase: %w", err)
	}
	pr, ok := resp.(PurchaseResponse)
	if !ok {
		return "", fmt.Errorf("%w: unexpected purchase response %T", ErrBadRequest, resp)
	}
	c := pr.Coin
	if err := c.Verify(p.suite, p.brokerPubFor(string(coinKeys.Public))); err != nil {
		return "", fmt.Errorf("core: broker returned bad coin: %w", err)
	}
	if !c.Pub.Equal(coinKeys.Public) || c.Value != value {
		return "", fmt.Errorf("%w: broker returned mismatched coin", ErrBadRequest)
	}

	p.owned.Set(c.ID(), &ownedCoin{
		c:          c.Clone(),
		coinKeys:   coinKeys,
		handleKeys: handleKeys,
		selfHeld:   true,
	})
	p.saveOwned(c.ID())
	p.maybePersistSnapshot()
	p.ops.Inc(OpPurchase)
	return c.ID(), nil
}

// PurchaseBatch buys n coins of the given value under a single broker
// round-trip and one authorizing signature (paper Section 4.2's batch
// purchase). Only non-anonymous coins batch (anonymous coins each need
// their own indirection handle registration).
func (p *Peer) PurchaseBatch(n int, value int64) ([]coin.ID, error) {
	sp := p.instr.Begin("purchase-batch")
	ids, err := p.purchaseBatch(n, value)
	p.instr.End(sp, err)
	return ids, err
}

func (p *Peer) purchaseBatch(n int, value int64) ([]coin.ID, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: batch size %d", ErrBadRequest, n)
	}
	keys := make([]sig.KeyPair, n)
	pubs := make([]sig.PublicKey, n)
	for i := 0; i < n; i++ {
		kp, err := p.suite.GenerateKey()
		if err != nil {
			return nil, fmt.Errorf("core: batch coin keygen: %w", err)
		}
		keys[i] = kp
		pubs[i] = kp.Public
	}
	// Under federation the generated coins home on different shards: group
	// the batch by shard and issue one signed request per shard leader.
	// Unfederated, everything lands in one group (shard 0).
	groups := map[int][]int{}
	for i, pub := range pubs {
		shard := p.shardOf(string(pub))
		groups[shard] = append(groups[shard], i)
	}
	ids := make([]coin.ID, n)
	for _, idxs := range groups {
		gp := make([]sig.PublicKey, len(idxs))
		for j, i := range idxs {
			gp[j] = pubs[i]
		}
		req := BatchPurchaseRequest{Buyer: p.cfg.ID, CoinPubs: gp, Value: value}
		var err error
		if req.Sig, err = p.suite.Sign(p.keys.Private, batchPurchaseMessage(req.Buyer, gp, value)); err != nil {
			return nil, fmt.Errorf("core: signing batch purchase: %w", err)
		}
		resp, err := p.callBroker(string(gp[0]), req)
		if err != nil {
			return nil, fmt.Errorf("core: batch purchase: %w", err)
		}
		br, ok := resp.(BatchPurchaseResponse)
		if !ok || len(br.Coins) != len(idxs) {
			return nil, fmt.Errorf("%w: unexpected batch response", ErrBadRequest)
		}
		for j := range br.Coins {
			c := br.Coins[j]
			i := idxs[j]
			if err := c.Verify(p.suite, p.brokerPubFor(string(c.Pub))); err != nil {
				return nil, fmt.Errorf("core: broker returned bad batch coin: %w", err)
			}
			if !c.Pub.Equal(pubs[i]) || c.Value != value {
				return nil, fmt.Errorf("%w: batch coin %d mismatched", ErrBadRequest, i)
			}
			p.owned.Set(c.ID(), &ownedCoin{c: c.Clone(), coinKeys: keys[i], selfHeld: true})
			p.saveOwned(c.ID())
			ids[i] = c.ID()
		}
	}
	p.maybePersistSnapshot()
	p.ops.Inc(OpPurchase)
	return ids, nil
}

// callOwner routes a request to a coin's owner: directly for ordinary
// coins, through the indirection layer for owner-anonymous coins.
func (p *Peer) callOwner(c *coin.Coin, msg any) (any, error) {
	if c.Anonymous() {
		if p.indir == nil {
			return nil, errors.New("core: anonymous coin needs indirection servers")
		}
		return p.indir.Send(c.Handle, msg)
	}
	entry, ok := p.cfg.Directory.Lookup(c.Owner)
	if !ok {
		return nil, fmt.Errorf("%w: owner %q", ErrUnknownIdentity, c.Owner)
	}
	return p.call(entry.Addr, msg)
}

// buildTransfer prepares the signed transfer request for a held coin: the
// paper's {{pkCW, CV}skCV}gkV.
func (p *Peer) buildTransfer(hc *heldCoin, payee bus.Address, offer OfferResponse) (TransferRequest, error) {
	hc.mu.Lock()
	binding := hc.binding.Clone()
	hc.mu.Unlock()
	body := coin.TransferBody{
		CoinPub:   hc.c.Pub.Clone(),
		NewHolder: offer.HolderPub.Clone(),
		PrevSeq:   binding.Seq,
		Nonce:     offer.Nonce,
		PayeeAddr: string(payee),
	}
	// One canonical encoding per transfer: both signatures cover the same
	// bytes, and Message() allocates afresh on every call.
	msg := body.Message()
	holderSig, err := p.suite.Sign(hc.holderKeys.Private, msg)
	if err != nil {
		return TransferRequest{}, fmt.Errorf("core: signing transfer body: %w", err)
	}
	gs, err := p.member.Sign(p.suite, msg)
	if err != nil {
		return TransferRequest{}, fmt.Errorf("core: group-signing transfer: %w", err)
	}
	return TransferRequest{
		Body:             body,
		HolderSig:        holderSig,
		GroupSig:         gs,
		PresentedBinding: binding,
	}, nil
}

// transferCommon drives a transfer through the given servicer (the coin's
// owner or the broker).
func (p *Peer) transferCommon(payee bus.Address, id coin.ID, viaBroker bool) error {
	op := "transfer"
	if viaBroker {
		op = "downtime-transfer"
	}
	sp := p.instr.Begin(op)
	err := p.transferInner(payee, id, viaBroker)
	p.instr.End(sp, err)
	return err
}

func (p *Peer) transferInner(payee bus.Address, id coin.ID, viaBroker bool) error {
	hc, ok := p.held.Get(id)
	if !ok {
		return ErrUnknownCoin
	}
	hc.mu.Lock()
	hc.inFlight = true
	hc.mu.Unlock()
	defer func() {
		if cur, still := p.held.Get(id); still {
			cur.mu.Lock()
			cur.inFlight = false
			cur.mu.Unlock()
		}
	}()

	resp, err := p.call(payee, OfferRequest{Value: hc.c.Value})
	if err != nil {
		return fmt.Errorf("core: offering payment: %w", err)
	}
	offer, ok := resp.(OfferResponse)
	if !ok {
		return fmt.Errorf("%w: unexpected offer response %T", ErrBadRequest, resp)
	}
	req, err := p.buildTransfer(hc, payee, offer)
	if err != nil {
		return err
	}

	var raw any
	if viaBroker {
		raw, err = p.callBroker(string(hc.c.Pub), req)
	} else {
		raw, err = p.callOwner(hc.c, req)
	}
	if err != nil {
		return fmt.Errorf("core: transfer request: %w", err)
	}
	tr, ok := raw.(TransferResponse)
	if !ok {
		return fmt.Errorf("%w: unexpected transfer response %T", ErrBadRequest, raw)
	}
	if !tr.OK {
		return fmt.Errorf("%w: %s", ErrPaymentFailed, tr.Reason)
	}

	p.dropHeld(id)
	p.maybePersistSnapshot()
	p.unwatch(id)
	if viaBroker {
		p.ops.Inc(OpDowntimeTransfer)
	}
	return nil
}

// TransferTo spends a held coin by transferring it to the payee via the
// coin's owner (paper Section 4.2, Transfer).
func (p *Peer) TransferTo(payee bus.Address, id coin.ID) error {
	return p.transferCommon(payee, id, false)
}

// TransferViaBroker spends a held coin through the broker when the coin's
// owner is offline (paper Section 4.2, Downtime transfer).
func (p *Peer) TransferViaBroker(payee bus.Address, id coin.ID) error {
	return p.transferCommon(payee, id, true)
}

// buildRenew prepares a signed renewal request for a held coin.
func (p *Peer) buildRenew(hc *heldCoin) (RenewRequest, error) {
	hc.mu.Lock()
	binding := hc.binding.Clone()
	hc.mu.Unlock()
	msg := renewMessage(hc.c.Pub, binding.Seq)
	holderSig, err := p.suite.Sign(hc.holderKeys.Private, msg)
	if err != nil {
		return RenewRequest{}, fmt.Errorf("core: signing renewal: %w", err)
	}
	gs, err := p.member.Sign(p.suite, msg)
	if err != nil {
		return RenewRequest{}, fmt.Errorf("core: group-signing renewal: %w", err)
	}
	return RenewRequest{
		CoinPub:          hc.c.Pub.Clone(),
		Seq:              binding.Seq,
		HolderSig:        holderSig,
		GroupSig:         gs,
		PresentedBinding: binding,
	}, nil
}

// renewCommon drives a renewal through the owner or the broker.
func (p *Peer) renewCommon(id coin.ID, viaBroker bool) error {
	op := "renewal"
	if viaBroker {
		op = "downtime-renewal"
	}
	sp := p.instr.Begin(op)
	err := p.renewInner(id, viaBroker)
	p.instr.End(sp, err)
	return err
}

func (p *Peer) renewInner(id coin.ID, viaBroker bool) error {
	hc, ok := p.held.Get(id)
	if !ok {
		return ErrUnknownCoin
	}

	req, err := p.buildRenew(hc)
	if err != nil {
		return err
	}
	var raw any
	if viaBroker {
		raw, err = p.callBroker(string(hc.c.Pub), req)
	} else {
		raw, err = p.callOwner(hc.c, req)
	}
	if err != nil {
		return fmt.Errorf("core: renewal request: %w", err)
	}
	rr, ok := raw.(RenewResponse)
	if !ok {
		return fmt.Errorf("%w: unexpected renew response %T", ErrBadRequest, raw)
	}
	binding := rr.Binding
	if err := binding.VerifyFor(p.suite, hc.c, p.brokerPubFor(string(hc.c.Pub)), p.cfg.Clock()); err != nil {
		return fmt.Errorf("core: renewal returned bad binding: %w", err)
	}
	hc.mu.Lock()
	if !binding.Holder.Equal(hc.binding.Holder) {
		hc.mu.Unlock()
		return fmt.Errorf("%w: renewal re-bound the coin to a different holder", ErrBadRequest)
	}
	// The watch notification may already have adopted this binding (the
	// owner publishes before responding); only move forward.
	adopted := binding.Seq > hc.binding.Seq
	if adopted {
		hc.binding = binding.Clone()
	}
	hc.mu.Unlock()
	if adopted {
		p.saveHeld(id)
	}
	if viaBroker {
		p.ops.Inc(OpDowntimeRenewal)
	}
	return nil
}

// RenewViaOwner renews a held coin through its owner.
func (p *Peer) RenewViaOwner(id coin.ID) error { return p.renewCommon(id, false) }

// RenewViaBroker renews a held coin through the broker (downtime renewal).
func (p *Peer) RenewViaBroker(id coin.ID) error { return p.renewCommon(id, true) }

// isUnreachable reports whether err means the destination could not be
// reached — directly, or relayed through an indirection server (where the
// transport sentinel is flattened into the remote error text).
func isUnreachable(err error) bool {
	if errors.Is(err, bus.ErrUnreachable) {
		return true
	}
	var remote *bus.RemoteError
	return errors.As(err, &remote) && strings.Contains(remote.Msg, "unreachable")
}

// Renew renews a held coin, preferring the owner and falling back to the
// broker when the owner is unreachable. It reports whether the broker path
// was used.
func (p *Peer) Renew(id coin.ID) (viaBroker bool, err error) {
	err = p.RenewViaOwner(id)
	if err == nil {
		return false, nil
	}
	if isUnreachable(err) {
		return true, p.RenewViaBroker(id)
	}
	return false, err
}

// Deposit redeems a held coin at the broker, crediting payoutRef (paper
// Section 4.2, Deposit). The payout reference is opaque: the broker never
// learns who deposited.
func (p *Peer) Deposit(id coin.ID, payoutRef string) error {
	sp := p.instr.Begin("deposit")
	err := p.deposit(id, payoutRef)
	p.instr.End(sp, err)
	return err
}

func (p *Peer) deposit(id coin.ID, payoutRef string) error {
	hc, ok := p.held.Get(id)
	if !ok {
		return ErrUnknownCoin
	}
	hc.mu.Lock()
	binding := hc.binding.Clone()
	hc.mu.Unlock()

	msg := depositMessage(hc.c.Pub, payoutRef, binding.Seq)
	holderSig, err := p.suite.Sign(hc.holderKeys.Private, msg)
	if err != nil {
		return fmt.Errorf("core: signing deposit: %w", err)
	}
	gs, err := p.member.Sign(p.suite, msg)
	if err != nil {
		return fmt.Errorf("core: group-signing deposit: %w", err)
	}
	raw, err := p.callBroker(string(hc.c.Pub), DepositRequest{
		CoinPub:          hc.c.Pub.Clone(),
		PayoutRef:        payoutRef,
		HolderSig:        holderSig,
		GroupSig:         gs,
		PresentedBinding: binding,
	})
	if err != nil {
		return fmt.Errorf("core: deposit: %w", err)
	}
	if _, ok := raw.(DepositResponse); !ok {
		return fmt.Errorf("%w: unexpected deposit response %T", ErrBadRequest, raw)
	}
	p.dropHeld(id)
	p.maybePersistSnapshot()
	p.unwatch(id)
	p.ops.Inc(OpDeposit)
	return nil
}

// DepositMany redeems several held coins in one broker round trip
// (BatchDepositRequest): the broker verifies the whole group with one
// signature-batch fan-out and commits it under one atomic journal append.
// Outcomes come back positionally — outcomes[i] is nil when ids[i] was
// credited, and unwraps to the broker's protocol sentinel otherwise. The
// call-level error covers transport failure or a malformed response only.
func (p *Peer) DepositMany(ids []coin.ID, payoutRef string) ([]error, error) {
	sp := p.instr.Begin("deposit-batch")
	outcomes, err := p.depositMany(ids, payoutRef)
	p.instr.End(sp, err)
	return outcomes, err
}

func (p *Peer) depositMany(ids []coin.ID, payoutRef string) ([]error, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	reqs := make([]DepositRequest, len(ids))
	for i, id := range ids {
		hc, ok := p.held.Get(id)
		if !ok {
			return nil, fmt.Errorf("%w: batch entry %d", ErrUnknownCoin, i)
		}
		hc.mu.Lock()
		binding := hc.binding.Clone()
		hc.mu.Unlock()
		msg := depositMessage(hc.c.Pub, payoutRef, binding.Seq)
		holderSig, err := p.suite.Sign(hc.holderKeys.Private, msg)
		if err != nil {
			return nil, fmt.Errorf("core: signing batch deposit: %w", err)
		}
		gs, err := p.member.Sign(p.suite, msg)
		if err != nil {
			return nil, fmt.Errorf("core: group-signing batch deposit: %w", err)
		}
		reqs[i] = DepositRequest{
			CoinPub:          hc.c.Pub.Clone(),
			PayoutRef:        payoutRef,
			HolderSig:        holderSig,
			GroupSig:         gs,
			PresentedBinding: binding,
		}
	}
	// Under federation the coins home on different shards: group the batch
	// by shard, one request per shard leader, and stitch the outcomes back
	// positionally. Unfederated, everything lands in one group (shard 0).
	groups := map[int][]int{}
	for i := range reqs {
		shard := p.shardOf(string(reqs[i].CoinPub))
		groups[shard] = append(groups[shard], i)
	}
	outcomes := make([]error, len(ids))
	for _, idxs := range groups {
		greqs := make([]DepositRequest, len(idxs))
		for j, i := range idxs {
			greqs[j] = reqs[i]
		}
		raw, err := p.callBroker(string(greqs[0].CoinPub), BatchDepositRequest{Deposits: greqs})
		if err != nil {
			return nil, fmt.Errorf("core: batch deposit: %w", err)
		}
		br, ok := raw.(BatchDepositResponse)
		if !ok || len(br.Results) != len(idxs) {
			return nil, fmt.Errorf("%w: unexpected batch-deposit response %T", ErrBadRequest, raw)
		}
		for j, r := range br.Results {
			i := idxs[j]
			if r.ErrCode != "" || r.ErrMsg != "" {
				// Rebuild the remote error the way a direct call would have
				// surfaced it, so errors.Is on protocol sentinels keeps
				// working per entry.
				outcomes[i] = &bus.RemoteError{Msg: r.ErrMsg, Code: r.ErrCode}
				continue
			}
			p.dropHeld(ids[i])
			p.unwatch(ids[i])
			p.ops.Inc(OpDeposit)
		}
	}
	p.maybePersistSnapshot()
	return outcomes, nil
}

// DepositTwice deposits a held coin and then replays the identical wire
// request — the double spend any holder can always attempt, since nothing
// stops it from re-sending bytes it already signed. Like ForgeRebind and
// ForgeDoubleIssue this is an attack helper for tests and the load
// harness: a correct broker accepts the first deposit, rejects the replay
// with ErrAlreadyDeposited, and credits the payout reference exactly once.
// The first deposit's error (if any) is returned as first with no replay
// attempted; otherwise replay carries the broker's verdict on the copy.
func (p *Peer) DepositTwice(id coin.ID, payoutRef string) (first, replay error) {
	hc, ok := p.held.Get(id)
	if !ok {
		return ErrUnknownCoin, nil
	}
	hc.mu.Lock()
	binding := hc.binding.Clone()
	hc.mu.Unlock()
	coinPub := hc.c.Pub.Clone()
	holderKeys := hc.holderKeys

	if first = p.Deposit(id, payoutRef); first != nil {
		return first, nil
	}

	msg := depositMessage(coinPub, payoutRef, binding.Seq)
	holderSig, err := p.suite.Sign(holderKeys.Private, msg)
	if err != nil {
		return nil, fmt.Errorf("core: signing deposit replay: %w", err)
	}
	gs, err := p.member.Sign(p.suite, msg)
	if err != nil {
		return nil, fmt.Errorf("core: group-signing deposit replay: %w", err)
	}
	_, replay = p.callBroker(string(coinPub), DepositRequest{
		CoinPub:          coinPub,
		PayoutRef:        payoutRef,
		HolderSig:        holderSig,
		GroupSig:         gs,
		PresentedBinding: binding,
	})
	return nil, replay
}

// Sync performs the proactive owner synchronization (paper Section 4.2,
// Sync): the broker returns the bindings it maintained for this owner's
// coins during downtime.
func (p *Peer) Sync() error {
	sp := p.instr.Begin("sync")
	err := p.syncWithBroker()
	p.instr.End(sp, err)
	return err
}

func (p *Peer) syncWithBroker() error {
	// Every shard may have maintained bindings for this owner's coins, so
	// federated sync fans out to every shard leader and merges. Unfederated,
	// the loop is a single call to the configured broker.
	shards := 1
	if p.cfg.Router != nil {
		shards = p.cfg.Router.NumShards()
	}
	var bindings []coin.Binding
	for shard := 0; shard < shards; shard++ {
		nonce := p.randBytes(16)
		sigBytes, err := p.suite.Sign(p.keys.Private, syncMessage(p.cfg.ID, nonce))
		if err != nil {
			return fmt.Errorf("core: signing sync: %w", err)
		}
		raw, err := p.callShard(shard, SyncRequest{Identity: p.cfg.ID, Nonce: nonce, Sig: sigBytes})
		if err != nil {
			return fmt.Errorf("core: sync: %w", err)
		}
		sr, ok := raw.(SyncResponse)
		if !ok {
			return fmt.Errorf("%w: unexpected sync response %T", ErrBadRequest, raw)
		}
		bindings = append(bindings, sr.Bindings...)
	}
	now := p.cfg.Clock()
	for i := range bindings {
		binding := &bindings[i]
		oc, owns := p.owned.Get(coin.ID(binding.CoinPub))
		if !owns {
			continue
		}
		if !binding.ByBroker || binding.VerifyFor(p.suite, oc.c, p.brokerPubFor(string(binding.CoinPub)), now) != nil {
			continue
		}
		oc.mu.Lock()
		adopted := oc.binding == nil || binding.Seq > oc.binding.Seq
		if adopted {
			oc.binding = binding.Clone()
			oc.selfHeld = false
		}
		oc.dirty = false
		oc.mu.Unlock()
		if adopted {
			p.saveOwned(coin.ID(binding.CoinPub))
		}
	}
	p.maybePersistSnapshot()
	p.ops.Inc(OpSync)
	return nil
}
