package core

import (
	"testing"

	"whopay/internal/wal"
)

// WAL overhead benchmarks: the same protocol operation measured with no
// journal, with a journal that never fsyncs (OS page cache absorbs the
// write), and with fsync on every commit. The none/never gap is the cost
// of encoding + the write syscall; the never/always gap is the disk.

type walVariant struct {
	name string
	cfg  func(b *testing.B) *wal.Config
}

func walVariants() []walVariant {
	return []walVariant{
		{"none", func(b *testing.B) *wal.Config { return nil }},
		{"fsync=never", func(b *testing.B) *wal.Config {
			return &wal.Config{Dir: b.TempDir(), Policy: wal.FsyncNever}
		}},
		{"fsync=always", func(b *testing.B) *wal.Config {
			return &wal.Config{Dir: b.TempDir(), Policy: wal.FsyncAlways}
		}},
	}
}

// persistedPeer adds a peer journaling to its own directory under the
// variant's policy (or an in-memory peer for the nil variant).
func persistedPeer(b *testing.B, f *fixture, id string, v walVariant) *Peer {
	b.Helper()
	cfg := f.peerConfig(id, nil)
	cfg.Persistence = v.cfg(b)
	return f.addPeerWith(cfg)
}

// BenchmarkTransferWAL measures one owner-mediated transfer hop: the coin
// ping-pongs between two payees through its owner, so every iteration is a
// full TransferRequest/Deliver/Commit round with the broker, owner, and
// both peers journaling.
func BenchmarkTransferWAL(b *testing.B) {
	for _, v := range walVariants() {
		b.Run(v.name, func(b *testing.B) {
			f := newFixture(b, fixtureOpts{persist: v.cfg(b)})
			owner := persistedPeer(b, f, "owner", v)
			x := persistedPeer(b, f, "x", v)
			y := persistedPeer(b, f, "y", v)

			id, err := owner.Purchase(1, false)
			if err != nil {
				b.Fatal(err)
			}
			if err := owner.IssueTo(x.Addr(), id); err != nil {
				b.Fatal(err)
			}
			// A coin's record grows with every re-binding, so an unbounded
			// ping-pong would measure history growth, not steady-state hop
			// cost: retire the coin and mint a fresh one every 64 hops,
			// off the clock.
			const freshEvery = 64
			cur, nxt := x, y
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i > 0 && i%freshEvery == 0 {
					b.StopTimer()
					if err := cur.Deposit(id, "payout:bench"); err != nil {
						b.Fatal(err)
					}
					if id, err = owner.Purchase(1, false); err != nil {
						b.Fatal(err)
					}
					if err := owner.IssueTo(cur.Addr(), id); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
				if err := cur.TransferTo(nxt.Addr(), id); err != nil {
					b.Fatal(err)
				}
				cur, nxt = nxt, cur
			}
		})
	}
}

// BenchmarkDepositWAL measures a full coin lifecycle per iteration:
// purchase, self-issue, deposit. This is the heaviest journaling path —
// the broker commits a mint, a binding, and a payout per round.
func BenchmarkDepositWAL(b *testing.B) {
	for _, v := range walVariants() {
		b.Run(v.name, func(b *testing.B) {
			f := newFixture(b, fixtureOpts{persist: v.cfg(b)})
			alice := persistedPeer(b, f, "alice", v)

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id, err := alice.Purchase(1, false)
				if err != nil {
					b.Fatal(err)
				}
				if err := alice.IssueTo(alice.Addr(), id); err != nil {
					b.Fatal(err)
				}
				if err := alice.Deposit(id, "payout:bench"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
