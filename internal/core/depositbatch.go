package core

import (
	"fmt"
	"time"

	"whopay/internal/bus"
	"whopay/internal/coin"
	"whopay/internal/groupsig"
	"whopay/internal/obs"
	"whopay/internal/sig"
	"whopay/internal/wal"
)

// Deposit batching (DESIGN.md §12). Every deposit pays three signature
// verifications and, on a persisted broker, one WAL append with its fsync.
// Both amortize: sig.VerifyBatch fans a whole group's checks into one
// scheme-level batch, and wal.EncodeBatch commits a whole group's records
// in one atomic append. The batcher queues incoming deposits briefly —
// bounded by MaxBatch and MaxLinger — then flushes the group through one
// verify fan-out and one journal record, demultiplexing per-request errors
// so one bad deposit rejects alone.
//
// The stage is default-off: a nil BrokerConfig.DepositBatch keeps every
// deposit on the sequential handleDeposit path with behavior and error
// shapes identical to before this file existed. With batching on, the
// per-request outcomes (responses, errors, fraud cases, recorded crypto
// micro-ops) still match what sequential execution in arrival order would
// have produced; only the latency and journaling cadence change.

// DefaultDepositBatch is the flush size used when DepositBatchConfig
// leaves MaxBatch zero.
const DefaultDepositBatch = 64

// DepositBatchConfig sizes the broker's deposit-batching stage.
type DepositBatchConfig struct {
	// MaxBatch is the most deposits one flush serves (default
	// DefaultDepositBatch).
	MaxBatch int
	// MaxLinger bounds how long the first deposit of a batch waits for
	// company. Zero means no waiting: a flush takes whatever is already
	// queued and never delays a lone deposit.
	MaxLinger time.Duration
}

// depositJob carries one queued deposit and its reply channel.
type depositJob struct {
	req  DepositRequest
	resp chan depositResult
}

// depositResult is one deposit's outcome, exactly what dispatch returns.
type depositResult struct {
	resp any
	err  error
}

// depositBatcher is the queue + single flush worker. One worker keeps
// commit order deterministic (arrival order) without any cross-request
// locking; the expensive work inside a flush — the signature batch — fans
// out in parallel under a BatchVerifier scheme on its own.
type depositBatcher struct {
	b    *Broker
	cfg  DepositBatchConfig
	jobs chan depositJob
	quit chan struct{}
	done chan struct{}

	occupancy *obs.Histogram // deposits per flush (bucket = batch size)
	flushes   *obs.Counter
}

// depositOccupancyBounds buckets flush occupancy by batch size. The
// histogram rides the duration-valued Observe API: occupancy n is recorded
// as n seconds, so bucket bounds read directly as batch sizes and the
// series sum is the total number of deposits flushed through batches.
var depositOccupancyBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128}

func newDepositBatcher(b *Broker, cfg DepositBatchConfig) *depositBatcher {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultDepositBatch
	}
	q := &depositBatcher{
		b:    b,
		cfg:  cfg,
		jobs: make(chan depositJob, 4*cfg.MaxBatch),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	if reg := b.cfg.Obs; reg != nil {
		reg.Help("whopay_broker_deposit_batch_occupancy",
			"Deposits per batch flush, bucketed by batch size (the sum counts deposits flushed).")
		q.occupancy = reg.Histogram("whopay_broker_deposit_batch_occupancy", nil, depositOccupancyBounds)
		reg.Help("whopay_broker_deposit_batch_flushes", "Deposit batch flushes performed.")
		q.flushes = reg.Counter("whopay_broker_deposit_batch_flushes", nil)
		reg.Help("whopay_broker_deposit_queue_depth", "Deposits waiting in the batch queue.")
		reg.GaugeFunc("whopay_broker_deposit_queue_depth", nil, func() float64 { return float64(len(q.jobs)) })
	}
	go q.run()
	return q
}

// serve queues one deposit and waits for its flush. During shutdown the
// request is served inline on the sequential path instead, so no accepted
// request is ever dropped.
func (q *depositBatcher) serve(m DepositRequest) (any, error) {
	job := depositJob{req: m, resp: make(chan depositResult, 1)}
	select {
	case q.jobs <- job:
	case <-q.quit:
		return q.b.handleDeposit(m)
	}
	select {
	case r := <-job.resp:
		return r.resp, r.err
	case <-q.done:
		// The worker exited. Either it flushed this job on its way out
		// (the buffered response is already waiting) or the job was
		// enqueued after the final drain and will never be read — in
		// which case serving inline is the request's only execution.
		select {
		case r := <-job.resp:
			return r.resp, r.err
		default:
		}
		return q.b.handleDeposit(m)
	}
}

// stopAndWait stops the worker and blocks until queued jobs are answered.
func (q *depositBatcher) stopAndWait() {
	close(q.quit)
	<-q.done
}

func (q *depositBatcher) run() {
	defer close(q.done)
	for {
		var first depositJob
		select {
		case first = <-q.jobs:
		case <-q.quit:
			q.drain()
			return
		}
		q.flush(q.fill(first))
	}
}

// fill grows a batch from the queue until MaxBatch, the linger deadline,
// or (with no linger) the queue runs dry.
func (q *depositBatcher) fill(first depositJob) []depositJob {
	batch := append(make([]depositJob, 0, q.cfg.MaxBatch), first)
	if q.cfg.MaxLinger <= 0 {
		for len(batch) < q.cfg.MaxBatch {
			select {
			case job := <-q.jobs:
				batch = append(batch, job)
			default:
				return batch
			}
		}
		return batch
	}
	timer := time.NewTimer(q.cfg.MaxLinger)
	defer timer.Stop()
	for len(batch) < q.cfg.MaxBatch {
		select {
		case job := <-q.jobs:
			batch = append(batch, job)
		case <-timer.C:
			return batch
		case <-q.quit:
			return batch
		}
	}
	return batch
}

// drain answers whatever is still queued at shutdown, one flush each.
func (q *depositBatcher) drain() {
	for {
		select {
		case job := <-q.jobs:
			q.flush([]depositJob{job})
		default:
			return
		}
	}
}

func (q *depositBatcher) flush(batch []depositJob) {
	q.flushes.Inc()
	q.occupancy.Observe(time.Duration(len(batch)) * time.Second)
	reqs := make([]DepositRequest, len(batch))
	for i := range batch {
		reqs[i] = batch[i].req
	}
	results := q.b.flushDeposits(reqs)
	for i := range batch {
		batch[i].resp <- results[i]
	}
}

// pendingDeposit is a request that survived per-request validation and
// awaits the group verify + commit.
type pendingDeposit struct {
	c   *coin.Coin
	cur *coin.Binding
	msg []byte
}

// flushDeposits serves a group of deposits as one unit: per-request
// validation in arrival order, one signature-batch fan-out across the
// whole group, one atomic WAL record covering every commit, then
// per-request demux. Each deposit's outcome matches what sequential
// handleDeposit calls in the same order would have produced.
func (b *Broker) flushDeposits(reqs []DepositRequest) []depositResult {
	results := make([]depositResult, len(reqs))
	pending := make([]*pendingDeposit, len(reqs))
	claimed := make(map[coin.ID]bool, len(reqs))
	var deferred []int // within-batch duplicates, replayed sequentially
	var jobs []sig.VerifyJob
	var order []int // jobs[3k..3k+2] belong to reqs[order[k]]

	// Stage one: per-request validation, mirroring handleDeposit up to
	// (and including) the revoked-credential precheck of
	// verifyHolderAndGroup. A coin an earlier batch entry already claimed
	// is deferred to the sequential path after the commit, so its fraud
	// case and error come out exactly as sequential execution would have
	// produced them.
	for i := range reqs {
		m := &reqs[i]
		id := coin.ID(m.CoinPub)
		if claimed[id] {
			deferred = append(deferred, i)
			continue
		}
		c, ok := b.coins.Get(id)
		if !ok {
			results[i] = depositResult{err: ErrUnknownCoin}
			continue
		}
		if prior, _ := b.deposited.Get(id); prior != nil {
			b.recordCase(FraudCase{
				Kind:    "double-deposit",
				CoinID:  c.ID(),
				Verdict: "second deposit rejected; group signatures escrowed for the judge",
				GroupSigs: [][2]any{
					{depositMessage(m.CoinPub, prior.payoutRef, prior.binding.Seq), prior.groupSig},
					{depositMessage(m.CoinPub, m.PayoutRef, m.PresentedBinding.Seq), m.GroupSig},
				},
				Bindings: []coin.Binding{*prior.binding, *m.PresentedBinding},
			})
			results[i] = depositResult{err: ErrAlreadyDeposited}
			continue
		}
		cur, err := b.currentBinding(c, m.PresentedBinding)
		if err != nil {
			results[i] = depositResult{err: err}
			continue
		}
		msg := depositMessage(m.CoinPub, m.PayoutRef, cur.Seq)
		if b.suite.Rec != nil {
			b.suite.Rec.RecordVerify()
			b.suite.Rec.RecordGroupVerify()
		}
		if b.gsv != nil && b.gsv.IsRevoked(m.GroupSig.Cred.Serial) {
			if err := b.suite.Scheme.Verify(cur.Holder, msg, m.HolderSig); err != nil {
				results[i] = depositResult{err: fmt.Errorf("%w: %v", ErrNotHolder, err)}
				continue
			}
			results[i] = depositResult{err: fmt.Errorf("%w: group signature: %v", ErrBadRequest,
				fmt.Errorf("%w: serial %d", groupsig.ErrCredentialRevoked, m.GroupSig.Cred.Serial))}
			continue
		}
		claimed[id] = true
		pending[i] = &pendingDeposit{c: c, cur: cur, msg: msg}
		jobs = append(jobs,
			sig.VerifyJob{Pub: cur.Holder, Msg: msg, Sig: m.HolderSig},
			sig.VerifyJob{Pub: b.cfg.GroupPub, Msg: groupsig.CredentialMessage(m.GroupSig.Cred.Serial, m.GroupSig.Cred.Pub), Sig: m.GroupSig.Cred.Cert},
			sig.VerifyJob{Pub: m.GroupSig.Cred.Pub, Msg: msg, Sig: m.GroupSig.Sig},
		)
		order = append(order, i)
	}

	// Stage two: one verify fan-out over the whole group, demultiplexed
	// to the exact error shapes of verifyHolderAndGroup.
	if len(jobs) > 0 {
		errs := sig.VerifyBatch(b.suite.Scheme, jobs)
		for k, i := range order {
			var err error
			switch {
			case errs[3*k] != nil:
				err = fmt.Errorf("%w: %v", ErrNotHolder, errs[3*k])
			case errs[3*k+1] != nil:
				err = fmt.Errorf("%w: group signature: %v", ErrBadRequest,
					fmt.Errorf("%w: %v", groupsig.ErrNotMember, errs[3*k+1]))
			case errs[3*k+2] != nil:
				err = fmt.Errorf("%w: group signature: %v", ErrBadRequest,
					fmt.Errorf("%w: %v", groupsig.ErrBadSignature, errs[3*k+2]))
			}
			if err != nil {
				results[i] = depositResult{err: err}
				pending[i] = nil
			}
		}
	}

	// Stage three: commit in arrival order. Inserts go to the embedded
	// store (bypassing per-operation journaling) and the journal records
	// accumulate into ONE atomic batch appended before any waiter wakes —
	// the same journal-before-response guarantee as the sequential path,
	// at one fsync for the whole group.
	var muts []wal.Mutation
	var committed []int
	for i := range reqs {
		p := pending[i]
		if p == nil {
			continue
		}
		m := &reqs[i]
		id := coin.ID(m.CoinPub)
		rec := &depositRecord{
			binding:   p.cur.Clone(),
			groupSig:  m.GroupSig,
			payoutRef: m.PayoutRef,
			when:      b.cfg.Clock(),
		}
		if !b.deposited.Sharded.Insert(id, rec) {
			results[i] = depositResult{err: ErrAlreadyDeposited}
			continue
		}
		if b.persist != nil {
			val, err := encDepositRecord(rec)
			if err != nil {
				b.persist.fail(err)
			} else {
				muts = append(muts, wal.Set(tblDeposit, []byte(id), val))
			}
		}
		committed = append(committed, i)
	}
	if b.persist != nil {
		b.persist.batch(muts...)
	}
	for _, i := range committed {
		m := &reqs[i]
		p := pending[i]
		id := coin.ID(m.CoinPub)
		b.creditPayout(id, m.PayoutRef, p.c.Value)
		b.depositedValue.Add(p.c.Value)
		b.downtime.Delete(id)
		b.evictServiceLock(id)
		b.ops.Inc(OpDeposit)
		results[i] = depositResult{resp: DepositResponse{Amount: p.c.Value}}
	}

	// Within-batch duplicates replay sequentially after the commit: the
	// first claim is now visible in the deposited store, so the replay
	// takes the same double-deposit (or clean) path sequential execution
	// would have.
	for _, i := range deferred {
		resp, err := b.handleDeposit(reqs[i])
		results[i] = depositResult{resp: resp, err: err}
	}
	return results
}

// handleBatchDeposit serves an explicit batch-deposit message: the whole
// group goes through one flush regardless of whether the async batching
// stage is enabled, and each deposit's outcome is reported individually.
func (b *Broker) handleBatchDeposit(m BatchDepositRequest) (any, error) {
	if len(m.Deposits) == 0 {
		return nil, fmt.Errorf("%w: empty deposit batch", ErrBadRequest)
	}
	results := b.flushDeposits(m.Deposits)
	out := make([]BatchDepositResult, len(results))
	for i, r := range results {
		if r.err != nil {
			out[i] = BatchDepositResult{ErrCode: bus.ErrorCode(r.err), ErrMsg: r.err.Error()}
			continue
		}
		dr, _ := r.resp.(DepositResponse)
		out[i] = BatchDepositResult{Amount: dr.Amount}
	}
	return BatchDepositResponse{Results: out}, nil
}
