package core

import (
	"errors"
	"strings"
	"testing"

	"whopay/internal/groupsig"
	"whopay/internal/layered"
)

// TestLayeredOfflineHopsAndDeposit: a coin leaves the online system, hops
// offline twice (no broker, no owner, no DHT), and is redeemed by the
// final recipient.
func TestLayeredOfflineHopsAndDeposit(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	u := f.addPeer("u", nil)
	v := f.addPeer("v", nil)
	w := f.addPeer("w", nil)
	x := f.addPeer("x", nil)

	id, err := u.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatal(err)
	}
	lc, vKeys, err := v.ExportLayered(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.HeldCoins()) != 0 {
		t.Fatal("export left the held entry")
	}
	// Hop v→w: w generates its own key pair out of band.
	wKeys, err := w.Suite().GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	lc, err = layered.Hop(v.Suite(), lc, vKeys.Private, v.GroupMember(), wKeys.Public, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Hop w→x.
	xKeys, err := x.Suite().GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	lc, err = layered.Hop(w.Suite(), lc, wKeys.Private, w.GroupMember(), xKeys.Public, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The broker saw none of this. Now x redeems.
	if err := x.DepositLayered(lc, xKeys.Private, "x-ref"); err != nil {
		t.Fatalf("DepositLayered: %v", err)
	}
	if f.broker.Balance("x-ref") != 1 {
		t.Fatalf("balance = %d", f.broker.Balance("x-ref"))
	}
}

// TestLayeredForkCaughtAtDeposit: the offline double spend the paper warns
// about — both forks verify offline, the second redemption is rejected,
// and the judge identifies the forker from the escrowed layer signatures.
func TestLayeredForkCaughtAtDeposit(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	u := f.addPeer("u", nil)
	cheat := f.addPeer("cheater", nil)
	w := f.addPeer("w", nil)
	x := f.addPeer("x", nil)

	id, err := u.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(cheat.Addr(), id); err != nil {
		t.Fatal(err)
	}
	lc, cheatKeys, err := cheat.ExportLayered(id)
	if err != nil {
		t.Fatal(err)
	}
	// The cheater forks: pays both w and x offline with the same coin.
	wKeys, err := w.Suite().GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	xKeys, err := x.Suite().GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	forkW, err := layered.Hop(cheat.Suite(), lc, cheatKeys.Private, cheat.GroupMember(), wKeys.Public, 0)
	if err != nil {
		t.Fatal(err)
	}
	forkX, err := layered.Hop(cheat.Suite(), lc, cheatKeys.Private, cheat.GroupMember(), xKeys.Public, 0)
	if err != nil {
		t.Fatal(err)
	}
	// w redeems first and wins.
	if err := w.DepositLayered(forkW, wKeys.Private, "w-ref"); err != nil {
		t.Fatal(err)
	}
	// x's redemption is rejected and the fraud case records openable
	// evidence.
	err = x.DepositLayered(forkX, xKeys.Private, "x-ref")
	if err == nil {
		t.Fatal("fork redeemed twice")
	}
	if f.broker.Balance("x-ref") != 0 {
		t.Fatal("fork credited")
	}
	cases := f.broker.FraudCases()
	if len(cases) != 1 || cases[0].Kind != "layered-double-spend" {
		t.Fatalf("cases = %+v", cases)
	}
	// The judge opens the fork's layer signature: it names the cheater.
	found := false
	for _, pair := range cases[0].GroupSigs {
		msg := pair[0].([]byte)
		gs := pair[1].(groupsig.Signature)
		if identity, err := f.judge.Open(msg, gs); err == nil && identity == "cheater" {
			found = true
		}
	}
	if !found {
		t.Fatal("judge could not identify the forker from the escrowed evidence")
	}
}

// TestLayeredDepositValidation: garbage layered deposits are rejected.
func TestLayeredDepositValidation(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	u := f.addPeer("u", nil)
	v := f.addPeer("v", nil)
	id, err := u.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatal(err)
	}
	lc, vKeys, err := v.ExportLayered(id)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong head key: the redeemer cannot prove chain-head holdership.
	wrong, err := v.Suite().GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	if err := v.DepositLayered(lc, wrong.Private, "ref"); err == nil {
		t.Fatal("deposit with wrong head key accepted")
	}
	// Tampered base value: chain verification fails.
	bad := lc.Clone()
	bad.Base.Value = 1000
	err = v.DepositLayered(bad, vKeys.Private, "ref")
	if err == nil {
		t.Fatal("tampered layered coin accepted")
	}
	if !strings.Contains(err.Error(), "invalid") && !strings.Contains(err.Error(), "bad request") {
		t.Fatalf("unexpected error: %v", err)
	}
	// The honest deposit still works afterwards.
	if err := v.DepositLayered(lc, vKeys.Private, "ref"); err != nil {
		t.Fatalf("honest layered deposit: %v", err)
	}
}

// TestExportLayeredUnknownCoin covers the error path.
func TestExportLayeredUnknownCoin(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	v := f.addPeer("v", nil)
	if _, _, err := v.ExportLayered("nope"); !errors.Is(err, ErrUnknownCoin) {
		t.Fatalf("got %v, want ErrUnknownCoin", err)
	}
}
