package core

import (
	"errors"
	"strings"
	"testing"

	"whopay/internal/sig"
)

// TestRevokedCredentialRejectedByBroker runs the full revocation pipeline
// under real ECDSA (the Null fixtures bypass the verification cache, so
// this test is what proves cache and CRL compose): a peer transacts
// normally, the judge revokes it, the broker is fed the revoked serials,
// and the peer's outstanding credentials stop working for every
// broker-serviced operation — even though its earlier signatures were
// verified (and memoized) before the revocation.
func TestRevokedCredentialRejectedByBroker(t *testing.T) {
	f := newFixture(t, fixtureOpts{scheme: sig.ECDSA{}})
	u := f.addPeer("u", nil)
	v := f.addPeer("v", nil)

	// Warm path: v deposits a coin successfully, exercising its credentials
	// and the broker's verification cache.
	id, err := u.Purchase(2, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatal(err)
	}
	if err := v.Deposit(id, "v"); err != nil {
		t.Fatal(err)
	}

	// The judge revokes v; the broker learns the verdict.
	serials, pubs := f.judge.Revoke("v")
	if len(serials) == 0 {
		t.Fatal("Revoke returned no serials")
	}
	f.broker.RevokeCredentials(serials, pubs)

	// v still holds a coin-shaped wallet and unspent credentials, but the
	// broker now refuses them.
	id2, err := u.Purchase(3, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id2); err != nil {
		t.Fatal(err)
	}
	err = v.Deposit(id2, "v")
	if err == nil {
		t.Fatal("revoked peer deposited a coin")
	}
	if !errors.Is(err, ErrBadRequest) || !strings.Contains(err.Error(), "credential revoked") {
		t.Fatalf("deposit error = %v, want ErrBadRequest wrapping a credential revocation", err)
	}

	// Broker-serviced (downtime) transfer is refused the same way.
	w := f.addPeer("w", nil)
	err = v.TransferViaBroker(w.Addr(), id2)
	if err == nil {
		t.Fatal("revoked peer transferred via broker")
	}
	if !strings.Contains(err.Error(), "credential revoked") {
		t.Fatalf("transfer error = %v, want credential revocation", err)
	}

	// An unrevoked peer is untouched by the CRL.
	id3, err := u.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(w.Addr(), id3); err != nil {
		t.Fatal(err)
	}
	if err := w.Deposit(id3, "w"); err != nil {
		t.Fatalf("unrevoked peer's deposit failed: %v", err)
	}
}

// TestCryptoCacheKnob: DisableCryptoCache yields identical protocol
// behaviour — the cache is an execution strategy, not a semantic change.
func TestCryptoCacheKnob(t *testing.T) {
	f := newFixture(t, fixtureOpts{scheme: sig.ECDSA{}})
	u := f.addPeer("u", nil)
	// A peer with the cache disabled interoperates with cached entities.
	v, err := NewPeer(PeerConfig{
		ID: "v-nocache", Network: f.net, Scheme: f.scheme, Clock: f.clock.Now,
		Directory: f.dir, BrokerAddr: f.broker.Addr(), BrokerPub: f.broker.PublicKey(),
		Judge: f.judge, DisableCryptoCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	id, err := u.Purchase(2, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatal(err)
	}
	if err := v.Deposit(id, "v-nocache"); err != nil {
		t.Fatal(err)
	}
	// Invalidation entry points are safe no-ops without a cache.
	v.InvalidateCryptoCache()
	f.broker.InvalidateCryptoCache()
}
