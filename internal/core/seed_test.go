package core

import (
	"encoding/binary"
	"hash/fnv"
	"io"
)

// deriveSeed hashes a base seed with a (sub)test name, FNV-1a, so one
// environment seed fans out into an independent, deterministic stream per
// scenario: re-running a single subtest draws exactly the schedule it drew
// inside the full sweep, without replaying the rest. The result is kept
// non-negative so it reads cleanly in failure labels and env vars.
func deriveSeed(base int64, name string) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(base))
	_, _ = h.Write(b[:])
	_, _ = io.WriteString(h, name)
	return int64(h.Sum64() & (1<<63 - 1))
}
