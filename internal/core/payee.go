package core

import (
	"bytes"
	"fmt"

	"whopay/internal/coin"
	"whopay/internal/dht"
	"whopay/internal/sig"
	"whopay/internal/store"
)

// Payee-side protocol: answering payment offers, accepting deliveries, and
// watching the public binding list for double spends.

// handleOffer answers a payer's payment offer with a fresh holder key pair
// and a challenge nonce (paper: "W generates a random public/private key
// pair pkCW/skCW, keeps the private key skCW secret and sends the public
// key pkCW to V").
func (p *Peer) handleOffer(m OfferRequest) (any, error) {
	if m.Value <= 0 {
		return nil, fmt.Errorf("%w: non-positive value", ErrBadRequest)
	}
	holderKeys, err := p.suite.GenerateKey()
	if err != nil {
		return nil, fmt.Errorf("core: holder keygen: %w", err)
	}
	nonce := p.randBytes(16)
	now := p.cfg.Clock()
	// Prune expired offers so abandoned payments do not accumulate.
	var expired []string
	p.offers.Range(func(k string, po *pendingOffer) bool {
		if now.Sub(po.created) > p.cfg.OfferTTL {
			expired = append(expired, k)
		}
		return true
	})
	for _, k := range expired {
		p.offers.Delete(k)
	}
	p.offers.Set(string(holderKeys.Public), &pendingOffer{
		holderKeys: holderKeys,
		nonce:      nonce,
		value:      m.Value,
		created:    now,
	})
	return OfferResponse{HolderPub: holderKeys.Public, Nonce: nonce}, nil
}

// handleDeliver accepts a coin: it verifies the broker's signature on the
// coin, the binding to the holder key we minted for this offer, the
// owner's (or broker's) answer to our challenge, and — when configured —
// the public binding list. Only then does the payment count.
func (p *Peer) handleDeliver(m DeliverRequest) (any, error) {
	po, ok := p.offers.GetAndDelete(string(m.Binding.Holder))
	if !ok {
		return nil, ErrNoOffer
	}

	c := m.Coin
	brokerPub := p.brokerPubFor(string(c.Pub))
	if err := c.Verify(p.suite, brokerPub); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if c.Value != po.value {
		return nil, fmt.Errorf("%w: offered value %d, coin is %d", ErrBadRequest, po.value, c.Value)
	}
	binding := m.Binding
	if err := binding.VerifyFor(p.suite, &c, brokerPub, p.cfg.Clock()); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}

	// Ownership challenge: the deliverer must prove it controls the coin
	// — the broker key for downtime deliveries, the coin key for
	// owner-anonymous coins, the owner's identity key otherwise.
	challengeMsg := coin.ChallengeMessage(c.Pub, po.nonce)
	var challenger sig.PublicKey
	switch {
	case binding.ByBroker:
		challenger = brokerPub
	case c.Anonymous():
		challenger = c.Pub
	default:
		entry, found := p.cfg.Directory.Lookup(c.Owner)
		if !found {
			return nil, fmt.Errorf("%w: coin owner %q", ErrUnknownIdentity, c.Owner)
		}
		challenger = entry.Pub
	}
	if err := p.suite.Verify(challenger, challengeMsg, m.ChallengeSig); err != nil {
		return nil, fmt.Errorf("%w: ownership challenge failed: %v", ErrBadRequest, err)
	}

	// Owner-anonymous issues carry a group signature for fairness (paper
	// Section 5.2: "Peers sign their messages with their group private
	// keys when issuing coins").
	if m.Issue && c.Anonymous() {
		if m.GroupSig == nil {
			return nil, fmt.Errorf("%w: anonymous issue missing group signature", ErrBadRequest)
		}
		if err := p.gsv.Verify(p.suite, binding.Message(), *m.GroupSig); err != nil {
			return nil, fmt.Errorf("%w: issue group signature: %v", ErrBadRequest, err)
		}
	}

	// Real-time detection cross-check (Section 5.1): the public binding
	// list must not contradict the delivered binding. Owners publish
	// right after delivery, so "not yet published" is acceptable; a
	// *conflicting* record at or above our sequence is a double spend.
	if p.cfg.CheckPublicBinding && p.dhtc != nil && !binding.ByBroker {
		rec, found, err := p.dhtc.Get(dht.KeyFor(c.Pub))
		if err == nil && found {
			if rec.Version > binding.Seq {
				return nil, fmt.Errorf("%w: public binding already superseded (v%d > v%d)", ErrStaleBinding, rec.Version, binding.Seq)
			}
			if rec.Version == binding.Seq && !bytes.Equal(rec.Value, binding.Marshal()) {
				return nil, fmt.Errorf("%w: public binding conflicts at v%d — double spend", ErrStaleBinding, binding.Seq)
			}
		}
	}

	// A re-delivery of a coin we already hold keeps its original
	// acquisition stamp so wallet ordering stays stable.
	id := c.ID()
	p.held.Compute(id, func(cur *heldCoin, exists bool) (*heldCoin, store.Op) {
		order := p.heldSeq.Add(1)
		if exists {
			order = cur.order
		}
		next := &heldCoin{
			c:          c.Clone(),
			holderKeys: po.holderKeys,
			order:      order,
			binding:    binding.Clone(),
		}
		p.journalHeldSetLocked(id, next)
		return next, store.OpSet
	})

	if p.cfg.WatchHeldCoins && p.dhtc != nil {
		// Best-effort: a failed subscription only degrades detection.
		_ = p.dhtc.Subscribe(dht.KeyFor(c.Pub), p.cfg.Addr)
	}
	return DeliverResponse{}, nil
}

// VerifyHeldCoin audits a held coin against the public binding list on
// demand: it returns nil when the published binding matches ours (or no
// list is configured for this coin era), and an error describing the
// divergence otherwise — the synchronous complement to the asynchronous
// watch. Holders of high-value coins call it before shipping goods.
func (p *Peer) VerifyHeldCoin(id coin.ID) error {
	if p.dhtc == nil {
		return ErrDetectionOff
	}
	hc, ok := p.held.Get(id)
	if !ok {
		return ErrUnknownCoin
	}
	hc.mu.Lock()
	mine := hc.binding.Clone()
	hc.mu.Unlock()

	rec, found, err := p.dhtc.Get(dht.KeyFor(sig.PublicKey(id)))
	if err != nil {
		return fmt.Errorf("core: reading public binding: %w", err)
	}
	if !found {
		// Publish may trail delivery; treat as pending rather than
		// divergent.
		return nil
	}
	if rec.Version > mine.Seq {
		return fmt.Errorf("%w: public binding at seq %d outruns ours (%d)", ErrStaleBinding, rec.Version, mine.Seq)
	}
	if rec.Version == mine.Seq && !bytes.Equal(rec.Value, mine.Marshal()) {
		return fmt.Errorf("%w: public binding conflicts at seq %d — double spend", ErrStaleBinding, mine.Seq)
	}
	return nil
}

// RecoverHeldBinding re-reads a held coin's public binding and adopts a
// newer binding for the same holder — a renewal or broker refresh whose
// notification this peer missed (it was offline, or its subscription write
// was lost). The adoption rule is exactly handleNotify's: same holder,
// higher sequence, verifiable signature. Re-bindings to other holders are
// never adopted; those are the watch's business, not recovery's.
func (p *Peer) RecoverHeldBinding(id coin.ID) error {
	if p.dhtc == nil {
		return ErrDetectionOff
	}
	hc, ok := p.held.Get(id)
	if !ok {
		return ErrUnknownCoin
	}
	hc.mu.Lock()
	mine := hc.binding.Clone()
	hc.mu.Unlock()

	rec, found, err := p.dhtc.Get(dht.KeyFor(sig.PublicKey(id)))
	if err != nil {
		return fmt.Errorf("core: reading public binding: %w", err)
	}
	if !found {
		return nil
	}
	observed, err := coin.UnmarshalBinding(rec.Value)
	if err != nil {
		return fmt.Errorf("%w: malformed public binding record", ErrBadRequest)
	}
	if !observed.Holder.Equal(mine.Holder) || observed.Seq <= mine.Seq {
		return nil
	}
	if err := observed.Verify(p.suite, p.brokerPubFor(string(id)), p.cfg.Clock()); err != nil {
		return fmt.Errorf("%w: published binding: %v", ErrStaleBinding, err)
	}
	if cur, still := p.held.Get(id); still {
		cur.mu.Lock()
		adopted := observed.Seq > cur.binding.Seq
		if adopted {
			cur.binding = observed.Clone()
		}
		cur.mu.Unlock()
		if adopted {
			p.saveHeld(id)
		}
	}
	return nil
}

// handleNotify processes a register/notify event from the public binding
// list. An update that re-binds a coin we hold — and did not just transfer
// ourselves — is a double spend in progress: record an alert and report it.
func (p *Peer) handleNotify(m dht.Notify) (any, error) {
	if p.dhtc != nil {
		// Freshest possible view of the binding — refresh the lease cache
		// before any TTL would have expired the stale entry.
		p.dhtc.ObserveNotify(m.Rec)
	}
	observed, err := coin.UnmarshalBinding(m.Rec.Value)
	if err != nil {
		return dht.Ack{}, nil // garbage record; ACL should prevent this
	}
	id := coin.ID(observed.CoinPub)

	hc, ok := p.held.Get(id)
	if !ok {
		return dht.Ack{}, nil
	}
	hc.mu.Lock()
	if hc.inFlight {
		hc.mu.Unlock()
		return dht.Ack{}, nil
	}
	if observed.Holder.Equal(hc.binding.Holder) {
		// Same holder (a renewal we made, or a broker refresh): adopt
		// the newer binding for free.
		adopted := false
		if observed.Seq > hc.binding.Seq {
			if observed.Verify(p.suite, p.brokerPubFor(string(id)), p.cfg.Clock()) == nil {
				hc.binding = observed.Clone()
				adopted = true
			}
		}
		hc.mu.Unlock()
		if adopted {
			p.saveHeld(id)
		}
		return dht.Ack{}, nil
	}
	if observed.Seq < hc.binding.Seq {
		hc.mu.Unlock()
		return dht.Ack{}, nil // stale echo
	}
	alert := FraudAlert{CoinID: id, Mine: *hc.binding.Clone(), Observed: *observed}
	myBinding := hc.binding.Clone()
	hc.mu.Unlock()

	if p.cfg.AutoReportFraud {
		alert.Verdict = p.reportFraud(sig.PublicKey(id), myBinding, observed)
	}
	p.stateMu.Lock()
	p.alerts = append(p.alerts, alert)
	p.stateMu.Unlock()
	return dht.Ack{}, nil
}

// reportFraud files the double-spend evidence with the broker, signed with
// a group signature so the victim stays anonymous yet accountable.
func (p *Peer) reportFraud(coinPub sig.PublicKey, mine, observed *coin.Binding) string {
	msg := fraudReportMessage(coinPub, mine, observed)
	gs, err := p.member.Sign(p.suite, msg)
	if err != nil {
		return "report unsigned: " + err.Error()
	}
	resp, err := p.callBroker(string(coinPub), FraudReport{
		CoinPub:   coinPub.Clone(),
		MyBinding: *mine,
		Observed:  *observed,
		GroupSig:  gs,
	})
	if err != nil {
		return "report failed: " + err.Error()
	}
	fr, ok := resp.(FraudResponse)
	if !ok {
		return "report got unexpected response"
	}
	if fr.Punished != "" {
		return fr.Verdict + " (punished: " + fr.Punished + ")"
	}
	return fr.Verdict
}
