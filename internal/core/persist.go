package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"whopay/internal/coin"
	"whopay/internal/groupsig"
	"whopay/internal/sig"
	"whopay/internal/store"
	"whopay/internal/wal"
)

// Durability layer (DESIGN.md §10). Entities journal every protocol-relevant
// mutation into a write-ahead log before the response is sent; recovery
// replays the newest snapshot plus the segment tail and re-derives the
// redundant state (ledger balances, issued/deposited counters) from the
// journaled ground truth so a torn multi-record operation can never leave
// the books inconsistent.
//
// Two journaling styles coexist, picked per table by its atomicity need:
//
//   - store.Durable decorators journal single-store commits (a deposit's
//     record insert IS the atomic commit point; a freeze is one set).
//   - Handler-level batches journal multi-store commits (mint = coin +
//     buyer; a downtime re-binding = new binding + relinquishment proof +
//     sync queue) as ONE record, so a crash between the stores is
//     impossible by construction — a batch applies whole or not at all.

// Journal table names. Short on purpose: they prefix every record.
const (
	tblMeta     = "meta"   // "keys" -> keyPairRec
	tblCoin     = "coin"   // coin.ID -> coin.Coin (gob)
	tblBuyer    = "buyer"  // coin.ID -> purchaser identity
	tblDowntime = "down"   // coin.ID -> binding (canonical marshal)
	tblSync     = "sync"   // owner identity -> []coin.ID (gob)
	tblClaims   = "claim"  // coin.ID -> claimsRec (sorted, gob)
	tblIntent   = "intent" // coin.ID -> intentRec: journaled-only pre-delivery evidence
	tblDeposit  = "dep"    // coin.ID -> depositRec (gob)
	tblFrozen   = "frozen" // identity -> (unit)
	tblCase     = "case"   // case ID -> caseRec (gob)
	tblOwned    = "owned"  // coin.ID -> ownedRec (gob), peer logs
	tblHeld     = "held"   // coin.ID -> heldRec (gob), peer logs
	tblEpoch    = "epoch"  // DHT node epoch (lives in internal/dht; listed for the format doc)
	tblSettle   = "settle" // coin.ID -> settleRec (gob): outbound cross-shard settlement state
	tblSettled  = "stld"   // coin.ID -> settledRec (gob): inbound settlement dedup (payout shard)

	metaKeysKey = "keys"
)

// persistLog wraps a wal.Log with first-error retention and implements
// store.Journal for the Durable decorators. A journal failure never blocks
// the in-memory protocol (responses must not diverge from the nil-journal
// path); it is surfaced through PersistenceErr so operators and the crash
// suite can treat the entity as dead.
type persistLog struct {
	log *wal.Log

	mu  sync.Mutex
	err error
}

func (p *persistLog) fail(err error) {
	if err == nil {
		return
	}
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

// Err returns the first journaling failure.
func (p *persistLog) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// LogSet implements store.Journal.
func (p *persistLog) LogSet(table string, key, val []byte) error {
	err := p.log.Append(wal.EncodeBatch([]wal.Mutation{wal.Set(table, key, val)}))
	p.fail(err)
	return err
}

// LogDelete implements store.Journal.
func (p *persistLog) LogDelete(table string, key []byte) error {
	err := p.log.Append(wal.EncodeBatch([]wal.Mutation{wal.Delete(table, key)}))
	p.fail(err)
	return err
}

// batch appends one atomic multi-mutation record.
func (p *persistLog) batch(muts ...wal.Mutation) {
	if len(muts) == 0 {
		return
	}
	p.fail(p.log.Append(wal.EncodeBatch(muts)))
}

// gobEnc/gobDec are the journal's value codec for struct records. A fresh
// encoder per call keeps every record self-contained, and the journaled
// types are map-free, so encoding is deterministic (asserted by the gob
// round-trip suite).
func gobEnc(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDec(b []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(v)
}

// keyPairRec journals an entity's long-lived signing keys. Losing the
// broker's key on crash would orphan every outstanding coin — nothing could
// verify or sign again — so it is the first record of every fresh log.
type keyPairRec struct {
	Public  sig.PublicKey
	Private sig.PrivateKey
}

// depositRec is the journaled form of a depositRecord (whose fields are
// unexported and gob-invisible on purpose — the wire form is explicit).
type depositRec struct {
	Binding   coin.Binding
	GroupSig  groupsig.Signature
	PayoutRef string
	WhenUnix  int64 // UnixNano
}

func encDepositRecord(d *depositRecord) ([]byte, error) {
	return gobEnc(depositRec{
		Binding:   *d.binding,
		GroupSig:  d.groupSig,
		PayoutRef: d.payoutRef,
		WhenUnix:  d.when.UnixNano(),
	})
}

func decDepositRecord(b []byte) (*depositRecord, error) {
	var r depositRec
	if err := gobDec(b, &r); err != nil {
		return nil, err
	}
	return &depositRecord{
		binding:   r.Binding.Clone(),
		groupSig:  r.GroupSig,
		payoutRef: r.PayoutRef,
		when:      time.Unix(0, r.WhenUnix),
	}, nil
}

// codecDeposit adapts depositRecord for the Durable decorator.
func codecDeposit() store.Codec[*depositRecord] {
	return store.Codec[*depositRecord]{Enc: encDepositRecord, Dec: decDepositRecord}
}

// claimsRec journals a coin's broker-era relinquishment trail. The
// in-memory form is a map; the journaled form is sorted by sequence so
// encoding is deterministic.
type claimsRec struct {
	Seqs   []uint64
	Proofs []RelinquishProof
}

func encClaims(proofs map[uint64]RelinquishProof) ([]byte, error) {
	rec := claimsRec{Seqs: make([]uint64, 0, len(proofs)), Proofs: make([]RelinquishProof, 0, len(proofs))}
	for seq := range proofs {
		rec.Seqs = append(rec.Seqs, seq)
	}
	sort.Slice(rec.Seqs, func(i, j int) bool { return rec.Seqs[i] < rec.Seqs[j] })
	for _, seq := range rec.Seqs {
		rec.Proofs = append(rec.Proofs, proofs[seq])
	}
	return gobEnc(rec)
}

func decClaims(b []byte) (map[uint64]RelinquishProof, error) {
	var rec claimsRec
	if err := gobDec(b, &rec); err != nil {
		return nil, err
	}
	if len(rec.Seqs) != len(rec.Proofs) {
		return nil, errors.New("core: claims record seq/proof length mismatch")
	}
	out := make(map[uint64]RelinquishProof, len(rec.Seqs))
	for i, seq := range rec.Seqs {
		out[seq] = rec.Proofs[i]
	}
	return out, nil
}

// intentRec is the pre-delivery journal of a downtime re-binding: the
// holder's relinquishment proof, written and (policy permitting) synced
// BEFORE the new binding leaves the broker. If the broker dies between
// delivering to the payee and committing, recovery merges the proof into
// the audit trail, so the payee's broker-signed binding — alive in the
// world — can never later read as an unjustified re-binding and trigger a
// false punishment. The binding itself is deliberately NOT adopted into
// downtime state on recovery: an undelivered intent must not strand the
// coin with a holder that never received it (the no-stuck-coins invariant);
// the presented-evidence flavor of currentBinding accepts the delivered
// binding if it does exist.
type intentRec struct {
	Seq   uint64
	Proof RelinquishProof
}

// caseRec is the journaled form of a FraudCase: the GroupSigs [][2]any
// evidence pairs become parallel typed slices so gob needs no interface
// registration and the encoding stays deterministic.
type caseRec struct {
	ID       uint64
	Kind     string
	CoinID   coin.ID
	Verdict  string
	Punished string
	SigMsgs  [][]byte
	Sigs     []groupsig.Signature
	Bindings []coin.Binding
}

func encCase(fc FraudCase) ([]byte, error) {
	rec := caseRec{
		ID: fc.ID, Kind: fc.Kind, CoinID: fc.CoinID,
		Verdict: fc.Verdict, Punished: fc.Punished, Bindings: fc.Bindings,
	}
	for _, pair := range fc.GroupSigs {
		msg, ok1 := pair[0].([]byte)
		gs, ok2 := pair[1].(groupsig.Signature)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("core: fraud case %d has malformed evidence pair", fc.ID)
		}
		rec.SigMsgs = append(rec.SigMsgs, msg)
		rec.Sigs = append(rec.Sigs, gs)
	}
	return gobEnc(rec)
}

func decCase(b []byte) (FraudCase, error) {
	var rec caseRec
	if err := gobDec(b, &rec); err != nil {
		return FraudCase{}, err
	}
	if len(rec.SigMsgs) != len(rec.Sigs) {
		return FraudCase{}, errors.New("core: case record evidence length mismatch")
	}
	fc := FraudCase{
		ID: rec.ID, Kind: rec.Kind, CoinID: rec.CoinID,
		Verdict: rec.Verdict, Punished: rec.Punished, Bindings: rec.Bindings,
	}
	for i := range rec.SigMsgs {
		fc.GroupSigs = append(fc.GroupSigs, [2]any{rec.SigMsgs[i], rec.Sigs[i]})
	}
	return fc, nil
}

// codecCoinValue journals coins by gob (all fields exported, map-free).
func encCoin(c *coin.Coin) ([]byte, error) { return gobEnc(*c) }

func decCoin(b []byte) (*coin.Coin, error) {
	var c coin.Coin
	if err := gobDec(b, &c); err != nil {
		return nil, err
	}
	return &c, nil
}

// Bindings journal in their canonical marshaled form (coin.Binding.Marshal),
// the same bytes the DHT publishes — one codec, already deterministic.
func encBinding(bnd *coin.Binding) ([]byte, error) { return bnd.Marshal(), nil }

func decBinding(b []byte) (*coin.Binding, error) { return coin.UnmarshalBinding(b) }

// --- broker persistence -------------------------------------------------

// brokerPersist is the broker's durability runtime.
type brokerPersist struct {
	persistLog
}

// journalKeys writes (and force-syncs) the signing keys: they must survive
// any later crash or every coin in circulation dies with the broker.
func (b *Broker) journalKeys() {
	val, err := gobEnc(keyPairRec{Public: b.keys.Public, Private: b.keys.Private})
	if err != nil {
		b.persist.fail(err)
		return
	}
	b.persist.batch(wal.Set(tblMeta, []byte(metaKeysKey), val))
	b.persist.fail(b.persist.log.Sync())
}

// journalMint journals a purchase commit: every minted coin plus its buyer
// attribution, one atomic batch (a coin without its buyer would break
// anonymous-coin sync routing and the credit-regime ledger derivation).
func (b *Broker) journalMint(coins []*coin.Coin, buyer string) {
	if b.persist == nil {
		return
	}
	muts := make([]wal.Mutation, 0, 2*len(coins))
	for _, c := range coins {
		val, err := encCoin(c)
		if err != nil {
			b.persist.fail(err)
			return
		}
		muts = append(muts,
			wal.Set(tblCoin, []byte(c.ID()), val),
			wal.Set(tblBuyer, []byte(c.ID()), []byte(buyer)),
		)
	}
	b.persist.batch(muts...)
}

// journalIntent journals the pre-delivery half of a downtime re-binding
// (see intentRec).
func (b *Broker) journalIntent(id coin.ID, seq uint64, proof RelinquishProof) {
	if b.persist == nil {
		return
	}
	val, err := gobEnc(intentRec{Seq: seq, Proof: proof})
	if err != nil {
		b.persist.fail(err)
		return
	}
	b.persist.batch(wal.Set(tblIntent, []byte(id), val))
}

// journalDowntimeCommit journals a committed downtime re-binding or renewal:
// the new authoritative binding, the coin's full relinquishment trail, and
// the owner's full sync queue — one atomic batch, full values throughout, so
// replaying any interleaving of commits converges to the memory state. Call
// it after the in-memory commit, under the coin's service lock.
func (b *Broker) journalDowntimeCommit(id coin.ID, owner string) {
	if b.persist == nil {
		return
	}
	muts := make([]wal.Mutation, 0, 3)
	if binding, ok := b.downtime.Get(id); ok {
		muts = append(muts, wal.Set(tblDowntime, []byte(id), binding.Marshal()))
	}
	var claimsErr error
	b.relinquish.View(id, func(proofs map[uint64]RelinquishProof, ok bool) {
		if !ok {
			return
		}
		val, err := encClaims(proofs)
		if err != nil {
			claimsErr = err
			return
		}
		muts = append(muts, wal.Set(tblClaims, []byte(id), val))
	})
	if claimsErr != nil {
		b.persist.fail(claimsErr)
		return
	}
	if owner != "" {
		var syncErr error
		b.pendingSync.View(owner, func(ids []coin.ID, ok bool) {
			if !ok {
				return
			}
			val, err := gobEnc(ids)
			if err != nil {
				syncErr = err
				return
			}
			muts = append(muts, wal.Set(tblSync, []byte(owner), val))
		})
		if syncErr != nil {
			b.persist.fail(syncErr)
			return
		}
	}
	b.persist.batch(muts...)
}

// journalSyncDrain journals a completed owner synchronization: the sync
// queue entry and every drained downtime binding disappear in one batch.
func (b *Broker) journalSyncDrain(identity string, drained []coin.ID) {
	if b.persist == nil {
		return
	}
	muts := make([]wal.Mutation, 0, 1+len(drained))
	muts = append(muts, wal.Delete(tblSync, []byte(identity)))
	for _, id := range drained {
		muts = append(muts, wal.Delete(tblDowntime, []byte(id)))
	}
	b.persist.batch(muts...)
}

// journalCase journals one fraud-case append.
func (b *Broker) journalCase(fc FraudCase) {
	if b.persist == nil {
		return
	}
	val, err := encCase(fc)
	if err != nil {
		b.persist.fail(err)
		return
	}
	kb, err := store.Uint64Codec().Enc(fc.ID)
	if err != nil {
		b.persist.fail(err)
		return
	}
	b.persist.batch(wal.Set(tblCase, kb, val))
}

// PersistenceErr returns the first durability failure (journal append,
// snapshot, codec) since the broker started, or nil. A persisted broker
// whose log is failing is acknowledging operations it cannot make durable;
// operators must treat that as a crash.
func (b *Broker) PersistenceErr() error {
	if b.persist == nil {
		return nil
	}
	if err := b.persist.Err(); err != nil {
		return err
	}
	if err := b.deposited.Err(); err != nil {
		return err
	}
	return b.frozen.Err()
}

// maybePersistSnapshot cuts a compaction snapshot when the live log crosses
// the configured threshold. Called at the end of mutating handlers.
func (b *Broker) maybePersistSnapshot() {
	if b.persist != nil && b.persist.log.SnapshotDue() {
		b.persist.fail(b.CompactLog())
	}
}

// CompactLog writes a full-state snapshot and truncates the journal to it.
// Safe to call at any time on a persisted broker; a no-op otherwise.
func (b *Broker) CompactLog() error {
	if b.persist == nil {
		return nil
	}
	return b.persist.log.Snapshot(func(app func([]byte) error) error {
		emit := func(muts ...wal.Mutation) error { return app(wal.EncodeBatch(muts)) }
		keys, err := gobEnc(keyPairRec{Public: b.keys.Public, Private: b.keys.Private})
		if err != nil {
			return err
		}
		if err := emit(wal.Set(tblMeta, []byte(metaKeysKey), keys)); err != nil {
			return err
		}
		var failed error
		b.coins.Range(func(id coin.ID, c *coin.Coin) bool {
			val, err := encCoin(c)
			if err != nil {
				failed = err
				return false
			}
			muts := []wal.Mutation{wal.Set(tblCoin, []byte(id), val)}
			if buyer, ok := b.purchasedBy.Get(id); ok {
				muts = append(muts, wal.Set(tblBuyer, []byte(id), []byte(buyer)))
			}
			failed = emit(muts...)
			return failed == nil
		})
		if failed != nil {
			return failed
		}
		b.downtime.Range(func(id coin.ID, binding *coin.Binding) bool {
			failed = emit(wal.Set(tblDowntime, []byte(id), binding.Marshal()))
			return failed == nil
		})
		if failed != nil {
			return failed
		}
		b.pendingSync.Range(func(owner string, ids []coin.ID) bool {
			val, err := gobEnc(ids)
			if err != nil {
				failed = err
				return false
			}
			failed = emit(wal.Set(tblSync, []byte(owner), val))
			return failed == nil
		})
		if failed != nil {
			return failed
		}
		// Keys-then-View (not Range): encClaims must not run with the
		// shard lock held by an enclosing Range while the View re-locks.
		for _, id := range b.relinquish.Keys() {
			var val []byte
			var encErr error
			b.relinquish.View(id, func(proofs map[uint64]RelinquishProof, ok bool) {
				if ok {
					val, encErr = encClaims(proofs)
				}
			})
			if encErr != nil {
				return encErr
			}
			if val != nil {
				if err := emit(wal.Set(tblClaims, []byte(id), val)); err != nil {
					return err
				}
			}
		}
		if err := b.deposited.EmitAll(func(key, val []byte) error {
			return emit(wal.Set(tblDeposit, key, val))
		}); err != nil {
			return err
		}
		if err := b.frozen.EmitAll(func(key, val []byte) error {
			return emit(wal.Set(tblFrozen, key, val))
		}); err != nil {
			return err
		}
		if err := b.settled.EmitAll(func(key, val []byte) error {
			return emit(wal.Set(tblSettled, key, val))
		}); err != nil {
			return err
		}
		b.settleMu.Lock()
		settleSnap := make(map[coin.ID]settleRec, len(b.settleState))
		for id, rec := range b.settleState {
			settleSnap[id] = rec
		}
		b.settleMu.Unlock()
		for id, rec := range settleSnap {
			val, err := gobEnc(rec)
			if err != nil {
				return err
			}
			if err := emit(wal.Set(tblSettle, []byte(id), val)); err != nil {
				return err
			}
		}
		for _, fc := range b.FraudCases() {
			val, err := encCase(fc)
			if err != nil {
				return err
			}
			kb, err := store.Uint64Codec().Enc(fc.ID)
			if err != nil {
				return err
			}
			if err := emit(wal.Set(tblCase, kb, val)); err != nil {
				return err
			}
		}
		return nil
	})
}

// recoverBrokerState replays the journal into the broker's stores and
// re-derives the redundant state. It returns whether any durable state was
// found. Must run before the broker starts serving.
func (b *Broker) recoverBrokerState() (bool, error) {
	found := false
	intents := map[coin.ID]intentRec{}
	settles := map[coin.ID]settleRec{}
	err := b.persist.log.Replay(func(payload []byte) error {
		muts, err := wal.DecodeBatch(payload)
		if err != nil {
			return err
		}
		found = found || len(muts) > 0
		for _, m := range muts {
			if err := b.applyRecovered(m, intents, settles); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return found, err
	}
	if !found {
		return false, nil
	}

	// Merge journaled-only intents into the audit trail: a proof for a
	// sequence the committed trail already covers is superseded.
	for id, intent := range intents {
		seq, proof := intent.Seq, intent.Proof
		b.relinquish.Compute(id, func(proofs map[uint64]RelinquishProof, _ bool) (map[uint64]RelinquishProof, store.Op) {
			if proofs == nil {
				proofs = make(map[uint64]RelinquishProof)
			}
			if _, committed := proofs[seq]; !committed {
				proofs[seq] = proof
			}
			return proofs, store.OpSet
		})
	}

	// Re-derive: a deposited coin is out of downtime service, the ledger
	// is a pure function of mints and deposits, and the counters are sums.
	// Deriving instead of journaling these makes every torn multi-step
	// operation self-healing. Under federation the ledger only sees
	// locally-homed payout references; remote ones went (or still must
	// go) through the settlement path, whose state re-derives here too:
	// a remote-ref deposit without an acked settlement record — torn
	// before the intent was journaled, or mid-resend — re-queues, and the
	// payout shard's dedup table absorbs any replay.
	var issued, depositedTotal int64
	b.coins.Range(func(id coin.ID, c *coin.Coin) bool {
		issued += c.Value
		if b.cfg.InitialCredit > 0 {
			if buyer := b.ownerIdentity(c); buyer != "" {
				b.ledger.Credit(buyer, -c.Value)
			}
		}
		return true
	})
	b.deposited.Sharded.Range(func(id coin.ID, rec *depositRecord) bool {
		if c, ok := b.coins.Get(id); ok {
			depositedTotal += c.Value
			if b.localKey(rec.payoutRef) {
				b.ledger.Credit(rec.payoutRef, c.Value)
			} else if s, journaled := settles[id]; !journaled || !s.Done {
				settles[id] = settleRec{Ref: rec.payoutRef, Amount: c.Value}
			}
		}
		b.downtime.Delete(id)
		return true
	})
	b.settleMu.Lock()
	for id, rec := range settles {
		b.settleState[id] = rec
	}
	b.settleMu.Unlock()
	// Inbound settlements already applied replay their credits (the
	// durable dedup insert was the commit point).
	b.settled.Sharded.Range(func(_ coin.ID, rec *settledRec) bool {
		b.ledger.Credit(rec.Ref, rec.Amount)
		return true
	})
	b.issuedValue.Store(issued)
	b.depositedValue.Store(depositedTotal)

	b.casesMu.Lock()
	sort.Slice(b.cases, func(i, j int) bool { return b.cases[i].ID < b.cases[j].ID })
	for _, fc := range b.cases {
		if fc.ID > b.caseSeq {
			b.caseSeq = fc.ID
		}
	}
	b.casesMu.Unlock()
	return true, nil
}

// applyRecovered applies one replayed mutation (journaling suppressed:
// replay goes straight to the embedded stores).
func (b *Broker) applyRecovered(m wal.Mutation, intents map[coin.ID]intentRec, settles map[coin.ID]settleRec) error {
	id := coin.ID(m.Key)
	switch m.Table {
	case tblMeta:
		if string(m.Key) != metaKeysKey || m.Op != wal.OpSet {
			return fmt.Errorf("core: unknown meta record %q", m.Key)
		}
		var rec keyPairRec
		if err := gobDec(m.Val, &rec); err != nil {
			return err
		}
		b.keys = sig.KeyPair{Public: rec.Public, Private: rec.Private}
	case tblCoin:
		c, err := decCoin(m.Val)
		if err != nil {
			return err
		}
		b.coins.Set(id, c)
	case tblBuyer:
		b.purchasedBy.Set(id, string(m.Val))
	case tblDowntime:
		if m.Op == wal.OpDelete {
			b.downtime.Delete(id)
			return nil
		}
		binding, err := decBinding(m.Val)
		if err != nil {
			return err
		}
		b.downtime.Set(id, binding)
	case tblSync:
		if m.Op == wal.OpDelete {
			b.pendingSync.Delete(string(m.Key))
			return nil
		}
		var ids []coin.ID
		if err := gobDec(m.Val, &ids); err != nil {
			return err
		}
		b.pendingSync.Set(string(m.Key), ids)
	case tblClaims:
		proofs, err := decClaims(m.Val)
		if err != nil {
			return err
		}
		b.relinquish.Set(id, proofs)
	case tblIntent:
		var rec intentRec
		if err := gobDec(m.Val, &rec); err != nil {
			return err
		}
		intents[id] = rec
	case tblDeposit:
		if m.Op == wal.OpDelete {
			return errors.New("core: deposit records are never deleted")
		}
		return b.deposited.ApplySet(m.Key, m.Val)
	case tblFrozen:
		if m.Op == wal.OpDelete {
			return b.frozen.ApplyDelete(m.Key)
		}
		return b.frozen.ApplySet(m.Key, m.Val)
	case tblSettle:
		var rec settleRec
		if err := gobDec(m.Val, &rec); err != nil {
			return err
		}
		settles[id] = rec
	case tblSettled:
		if m.Op == wal.OpDelete {
			return errors.New("core: settlement dedup records are never deleted")
		}
		return b.settled.ApplySet(m.Key, m.Val)
	case tblCase:
		fc, err := decCase(m.Val)
		if err != nil {
			return err
		}
		b.casesMu.Lock()
		b.cases = append(b.cases, fc)
		b.casesMu.Unlock()
	default:
		return fmt.Errorf("core: broker journal has unknown table %q", m.Table)
	}
	return nil
}
