// Package core implements the WhoPay payment system itself (paper Section
// 4): the broker, peers (as coin owners, holders, payers and payees), the
// judge, and every protocol — purchase, issue, transfer, deposit, renewal,
// the downtime variants, synchronization (proactive and lazy), real-time
// double-spending detection over the DHT, dispute resolution, coin shops,
// and owner-anonymous coins over the indirection layer.
package core

import "sync/atomic"

// Op enumerates the coarse-grained operations the paper's load study counts
// (Section 6.2: "coin purchases, issues, transfers, deposits, renewals,
// downtime transfers, downtime renewals, synchronizations, checks, and lazy
// synchronizations").
type Op int

// The coarse-grained operations.
const (
	OpPurchase Op = iota
	OpIssue
	OpTransfer
	OpDeposit
	OpRenewal
	OpDowntimeTransfer
	OpDowntimeRenewal
	OpSync
	OpCheck
	OpLazySync
	NumOps
)

var opNames = [NumOps]string{
	"purchases",
	"issues",
	"transfers",
	"deposits",
	"renewals",
	"downtime transfers",
	"downtime renewals",
	"syncs",
	"checks",
	"lazy syncs",
}

// String implements fmt.Stringer.
func (op Op) String() string {
	if op < 0 || op >= NumOps {
		return "unknown-op"
	}
	return opNames[op]
}

// OpCounts is an immutable tally of operations by type.
type OpCounts [NumOps]int64

// Get returns the count for op.
func (c OpCounts) Get(op Op) int64 { return c[op] }

// Total sums all operation counts.
func (c OpCounts) Total() int64 {
	var t int64
	for _, v := range c {
		t += v
	}
	return t
}

// Add returns the element-wise sum.
func (c OpCounts) Add(other OpCounts) OpCounts {
	var out OpCounts
	for i := range c {
		out[i] = c[i] + other[i]
	}
	return out
}

// OpCounter tallies operations; safe for concurrent use.
type OpCounter struct {
	counts [NumOps]atomic.Int64
}

// Inc adds one to op's tally.
func (c *OpCounter) Inc(op Op) {
	if op >= 0 && op < NumOps {
		c.counts[op].Add(1)
	}
}

// Snapshot copies the current tallies.
func (c *OpCounter) Snapshot() OpCounts {
	var out OpCounts
	for i := range c.counts {
		out[i] = c.counts[i].Load()
	}
	return out
}
