package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"whopay/internal/bus"
	"whopay/internal/coin"
	"whopay/internal/dht"
	"whopay/internal/dht/replica"
	"whopay/internal/groupsig"
	"whopay/internal/obs"
	"whopay/internal/sig"
	"whopay/internal/store"
	"whopay/internal/wal"
)

// Clock supplies time to protocol entities; the simulator injects virtual
// time.
type Clock func() time.Time

// DefaultRenewalPeriod is the coin renewal period; the paper's simulations
// use 3 days.
const DefaultRenewalPeriod = 72 * time.Hour

// brokerShards is the lock-domain count for each of the broker's state
// stores. The broker is the system's hot spot — every purchase, deposit,
// sync, and downtime operation lands here — so it gets more shards than
// peers' wallets.
const brokerShards = 64

// BrokerConfig configures a Broker.
type BrokerConfig struct {
	// Network to listen on; Addr is the broker's address.
	Network bus.Network
	Addr    bus.Address
	// Scheme is the signature scheme; Recorder (optional) attributes the
	// broker's crypto micro-operations.
	Scheme   sig.Scheme
	Recorder sig.Recorder
	// Clock defaults to time.Now.
	Clock Clock
	// RenewalPeriod defaults to DefaultRenewalPeriod.
	RenewalPeriod time.Duration
	// Directory resolves identities (the trusted PKI).
	Directory *Directory
	// GroupPub is the judge's group public key.
	GroupPub sig.PublicKey
	// DHTNodes enables publishing downtime bindings to the public
	// binding list; empty disables.
	DHTNodes []bus.Address
	// DHTMode selects client routing (default OneHop).
	DHTMode dht.Mode
	// DHTReplication turns on quorum reads/writes on the broker's DHT
	// client (DESIGN.md §14). Nil keeps the legacy single-copy paths.
	DHTReplication *replica.Config
	// InitialCredit, when positive, funds every identity's account with
	// this amount and makes purchases debit it. Deposits credit the
	// payout reference's account, so depositing refills budgets — the
	// economics that make policy III's "deposit an offline coin, then
	// purchase" reachable. Zero means unlimited credit.
	InitialCredit int64
	// DisableCryptoCache turns off the verification fast path (DESIGN.md
	// §9): no decoded-key cache, no verify memoization, no parallel batch
	// fan-out. Default off (cache enabled); a Null scheme bypasses the
	// cache on its own.
	DisableCryptoCache bool
	// Persistence, when non-nil, makes the broker crash-safe: every
	// protocol-relevant mutation is journaled to a write-ahead log under
	// Persistence.Dir before the response is sent, and NewBroker recovers
	// any durable state it finds there (DESIGN.md §10). Nil keeps the
	// broker purely in-memory with behavior identical to before the
	// durability layer existed.
	Persistence *wal.Config
	// Obs, when non-nil, instruments the broker (DESIGN.md §11): a span
	// plus latency-histogram sample per served operation, WAL and
	// sig-cache metrics, and a /healthz check on PersistenceErr. Nil (the
	// default) keeps message counts, allocations, and error shapes
	// byte-identical to an uninstrumented broker.
	Obs *obs.Registry
	// Federation, when non-nil, makes this broker one shard of a
	// federated trust root (DESIGN.md §13): it serves only keys homing on
	// its shard, rejects foreign keys with ErrWrongShard redirects, and
	// settles cross-shard deposit credits through the two-phase
	// settlement path. Requires InitialCredit zero — purchase budgets
	// would need an account shard of their own.
	Federation *FederationConfig
	// DepositBatch, when non-nil, enables the deposit-batching stage
	// (DESIGN.md §12): incoming deposits queue briefly (bounded by
	// MaxBatch and MaxLinger), then one signature-batch fan-out verifies
	// the group and one atomic WAL record commits it, with per-request
	// error demux. Nil (the default) serves every deposit individually
	// with behavior and error shapes identical to before batching
	// existed.
	DepositBatch *DepositBatchConfig
}

// depositRecord remembers a redeemed coin.
type depositRecord struct {
	binding   *coin.Binding
	groupSig  groupsig.Signature
	payoutRef string
	when      time.Time
}

// FraudCase records detected or suspected fraud for the judge.
type FraudCase struct {
	ID       uint64
	Kind     string // "double-deposit", "owner-fraud", "owner-unreachable", "legitimate-chain"
	CoinID   coin.ID
	Verdict  string
	Punished string
	// Evidence for the judge: group signatures (openable) and the
	// conflicting bindings.
	GroupSigs [][2]any // pairs of (message bytes, groupsig.Signature)
	Bindings  []coin.Binding
}

// Broker is WhoPay's central bank: it mints and redeems coins, services
// downtime transfers and renewals, synchronizes owners after rejoin, and
// adjudicates fraud reports (with the judge for anonymous parties). It is
// the only entity that can create value. Safe for concurrent use.
//
// State lives in sharded stores (internal/store) so requests touching
// different coins or accounts proceed on independent lock domains; the
// per-coin service locks in svc remain the only cross-map ordering point
// (the validate→deliver→commit sequence of downtime operations must not
// interleave per coin). The fraud-case log keeps a dedicated mutex: it is
// an append-only audit record, not request-path state.
type Broker struct {
	cfg   BrokerConfig
	suite sig.Suite
	cache *sig.Cached        // nil when DisableCryptoCache
	gsv   *groupsig.Verifier // CRL-aware group-signature verifier
	keys  sig.KeyPair
	ep    bus.Endpoint
	dhtc  *dht.Client
	ops   OpCounter
	instr *instr // nil unless cfg.Obs is set

	svc         *store.Sharded[coin.ID, *sync.Mutex] // per-coin service serialization
	coins       *store.Sharded[coin.ID, *coin.Coin]
	purchasedBy *store.Sharded[coin.ID, string]
	downtime    *store.Sharded[coin.ID, *coin.Binding]
	pendingSync *store.Sharded[string, []coin.ID]
	relinquish  *store.Sharded[coin.ID, map[uint64]RelinquishProof] // audit trail for broker-era re-bindings
	deposited   *store.Durable[coin.ID, *depositRecord]
	ledger      *store.Ledger
	frozen      *store.Durable[string, struct{}]
	settled     *store.Durable[coin.ID, *settledRec] // payout-shard settlement dedup

	// Federation runtime (nil / unused on an unfederated broker).
	fed          *FederationConfig
	settleCaller bus.Caller
	settleMu     sync.Mutex
	settleState  map[coin.ID]settleRec // outbound settlements, by redeemed coin
	settleKick   chan struct{}
	settleStop   chan struct{}
	settleDone   chan struct{}

	persist   *persistLog     // nil when Persistence is not configured
	recovered bool            // durable state was found and replayed
	batcher   *depositBatcher // nil unless cfg.DepositBatch is set

	issuedValue    atomic.Int64
	depositedValue atomic.Int64

	casesMu sync.RWMutex
	cases   []FraudCase
	caseSeq uint64
}

// coinKey hashes coin IDs into store shards.
func coinKey(id coin.ID) uint64 { return store.StringHash(id) }

// NewBroker creates and starts a broker.
func NewBroker(cfg BrokerConfig) (*Broker, error) {
	if cfg.Network == nil || cfg.Scheme == nil || cfg.Directory == nil {
		return nil, errors.New("core: broker needs Network, Scheme and Directory")
	}
	if cfg.Addr == "" {
		cfg.Addr = "broker"
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.RenewalPeriod <= 0 {
		cfg.RenewalPeriod = DefaultRenewalPeriod
	}
	if cfg.Federation != nil {
		f := *cfg.Federation // copy: don't share the caller's struct
		if f.Shards <= 0 || f.Index < 0 || f.Index >= f.Shards {
			return nil, fmt.Errorf("core: federation shard %d of %d out of range", f.Index, f.Shards)
		}
		if cfg.InitialCredit > 0 {
			return nil, errors.New("core: federation does not support InitialCredit budgets")
		}
		cfg.Federation = &f
	}
	b := &Broker{
		cfg:         cfg,
		suite:       sig.Suite{Scheme: cfg.Scheme, Rec: cfg.Recorder},
		svc:         store.NewSharded[coin.ID, *sync.Mutex](brokerShards, coinKey),
		coins:       store.NewSharded[coin.ID, *coin.Coin](brokerShards, coinKey),
		purchasedBy: store.NewSharded[coin.ID, string](brokerShards, coinKey),
		downtime:    store.NewSharded[coin.ID, *coin.Binding](brokerShards, coinKey),
		pendingSync: store.NewSharded[string, []coin.ID](brokerShards, store.StringHash[string]),
		relinquish:  store.NewSharded[coin.ID, map[uint64]RelinquishProof](brokerShards, coinKey),
		ledger:      store.NewLedger(brokerShards, cfg.InitialCredit),
		fed:         cfg.Federation,
		settleState: map[coin.ID]settleRec{},
		settleKick:  make(chan struct{}, 1),
		settleStop:  make(chan struct{}),
		settleDone:  make(chan struct{}),
	}
	// A nil *persistLog must stay an untyped-nil Journal, or Durable would
	// see a non-nil interface and journal into nothing.
	var journal store.Journal
	if cfg.Persistence != nil {
		pc := *cfg.Persistence // copy: don't mutate the caller's config
		if cfg.Obs != nil {
			pc.Obs = cfg.Obs
			if pc.Entity == "" {
				pc.Entity = "broker"
			}
		}
		log, err := wal.Open(pc)
		if err != nil {
			return nil, fmt.Errorf("core: broker wal: %w", err)
		}
		b.persist = &persistLog{log: log}
		journal = b.persist
	}
	b.deposited = store.NewDurable(
		store.NewSharded[coin.ID, *depositRecord](brokerShards, coinKey),
		tblDeposit, journal, store.StringCodec[coin.ID](), codecDeposit())
	b.frozen = store.NewDurable(
		store.NewSharded[string, struct{}](brokerShards, store.StringHash[string]),
		tblFrozen, journal, store.StringCodec[string](), store.UnitCodec())
	b.settled = store.NewDurable(
		store.NewSharded[coin.ID, *settledRec](brokerShards, coinKey),
		tblSettled, journal, store.StringCodec[coin.ID](), codecSettled())
	if !cfg.DisableCryptoCache {
		b.suite, b.cache = sig.NewCachedSuite(b.suite, sig.CacheOptions{})
	}
	b.gsv = groupsig.NewVerifier(cfg.GroupPub)
	if b.cache != nil {
		// A revoked credential's one-time key must not keep satisfying
		// verifies out of the memo.
		b.gsv.OnRevoke = b.cache.InvalidateKey
	}
	if b.persist != nil {
		recovered, err := b.recoverBrokerState()
		if err != nil {
			_ = b.persist.log.Close()
			return nil, fmt.Errorf("core: broker recovery: %w", err)
		}
		b.recovered = recovered
	}
	if len(b.keys.Public) == 0 {
		// Fresh start (or no persistence): the broker's signing key is
		// setup, not operation cost.
		keys, err := cfg.Scheme.GenerateKey()
		if err != nil {
			return nil, fmt.Errorf("core: broker keygen: %w", err)
		}
		b.keys = keys
		if b.persist != nil {
			// The key must be durable before the first coin is signed:
			// losing it orphans every coin in circulation.
			b.journalKeys()
			if err := b.PersistenceErr(); err != nil {
				_ = b.persist.log.Close()
				return nil, fmt.Errorf("core: broker key journal: %w", err)
			}
		}
	}
	ep, err := cfg.Network.Listen(cfg.Addr, b.handle)
	if err != nil {
		if b.persist != nil {
			_ = b.persist.log.Close()
		}
		return nil, fmt.Errorf("core: broker listen: %w", err)
	}
	b.ep = ep
	// Adopt the actually-bound address (TCP ":0" binds pick a port).
	b.cfg.Addr = ep.Addr()
	if len(cfg.DHTNodes) > 0 {
		b.dhtc, err = dht.NewClient(ep, cfg.DHTNodes, cfg.DHTMode)
		if err != nil {
			_ = ep.Close()
			if b.persist != nil {
				_ = b.persist.log.Close()
			}
			return nil, fmt.Errorf("core: broker dht client: %w", err)
		}
		if cfg.DHTReplication != nil {
			b.dhtc.WithReplication(*cfg.DHTReplication)
		}
	}
	if cfg.Obs != nil {
		b.instr = newInstr(cfg.Obs, "broker")
		registerOpCounts(cfg.Obs, "broker", &b.ops)
		cfg.Obs.Help("whopay_broker_issued_value", "Total coin value issued and in circulation.")
		cfg.Obs.Help("whopay_broker_deposited_value", "Total coin value redeemed.")
		cfg.Obs.GaugeFunc("whopay_broker_issued_value", nil, func() float64 { return float64(b.IssuedValue()) })
		cfg.Obs.GaugeFunc("whopay_broker_deposited_value", nil, func() float64 { return float64(b.DepositedValue()) })
		if b.cache != nil {
			registerCacheMetrics(cfg.Obs, "broker", func() (int64, int64, int64, int64) {
				s := b.cache.Stats()
				return s.Hits, s.Misses, s.KeyHits, s.KeyMisses
			})
		}
		if b.persist != nil {
			cfg.Obs.RegisterHealth("broker-journal", func() (string, error) {
				if err := b.PersistenceErr(); err != nil {
					return "", err
				}
				return "journaling", nil
			})
		}
	}
	// Start the batching stage last: its metrics registration needs the
	// obs block above, and nothing can queue before the endpoint serves.
	if cfg.DepositBatch != nil {
		b.batcher = newDepositBatcher(b, *cfg.DepositBatch)
	}
	if b.fed != nil {
		// Settlement delivery retries transient failures and follows
		// redirect hints on its own; the outer loop only re-resolves
		// leadership between rounds.
		b.settleCaller = bus.NewRetryCaller(ep, bus.RetryPolicy{
			MaxAttempts: 2,
			BaseDelay:   5 * time.Millisecond,
			MaxDelay:    50 * time.Millisecond,
		})
		if cfg.Obs != nil {
			cfg.Obs.Help("whopay_fed_pending_settlements", "Cross-shard settlements awaiting payout-shard acknowledgement, by shard.")
			cfg.Obs.GaugeFunc("whopay_fed_pending_settlements",
				obs.Labels{"shard": fmt.Sprint(b.fed.Index)},
				func() float64 { return float64(b.PendingSettlements()) })
		}
		go b.settleLoop()
		// Recovery may have re-queued unacked settlements; deliver them.
		b.kickSettle()
	} else {
		close(b.settleDone)
	}
	return b, nil
}

// RecoverBroker starts a broker from the durable state under
// cfg.Persistence.Dir, failing when there is none (NewBroker also recovers
// opportunistically; this entry point is for restarts that must not
// silently mint a fresh broker with a fresh key).
func RecoverBroker(cfg BrokerConfig) (*Broker, error) {
	if cfg.Persistence == nil {
		return nil, errors.New("core: RecoverBroker needs cfg.Persistence")
	}
	b, err := NewBroker(cfg)
	if err != nil {
		return nil, err
	}
	if !b.recovered {
		_ = b.Close()
		return nil, fmt.Errorf("core: no durable broker state under %s", cfg.Persistence.Dir)
	}
	return b, nil
}

// Recovered reports whether this broker replayed durable state at startup.
func (b *Broker) Recovered() bool { return b.recovered }

// Addr returns the broker's bus address (the actually-bound one).
func (b *Broker) Addr() bus.Address { return b.cfg.Addr }

// BoundAddr is an alias of Addr, named for transports where the configured
// and bound addresses differ (TCP ":0").
func (b *Broker) BoundAddr() bus.Address { return b.cfg.Addr }

// PublicKey returns the broker's signing key; every entity verifies coins
// and downtime bindings against it.
func (b *Broker) PublicKey() sig.PublicKey { return b.keys.Public.Clone() }

// Close stops the broker and (when persisted) flushes and closes its
// journal.
func (b *Broker) Close() error {
	// Stop the settlement loop first: it calls out through the endpoint.
	if b.fed != nil {
		close(b.settleStop)
		<-b.settleDone
	}
	err := b.ep.Close()
	// Stop the batcher after the endpoint (no new deposits arrive) and
	// before the journal closes (queued deposits may still commit).
	if b.batcher != nil {
		b.batcher.stopAndWait()
	}
	if b.persist != nil {
		if lerr := b.persist.log.Close(); err == nil {
			err = lerr
		}
	}
	return err
}

// Ops returns a snapshot of the broker's operation counts (lock-free).
func (b *Broker) Ops() OpCounts { return b.ops.Snapshot() }

// Balance returns the amount credited to a payout reference by deposits
// (under the credit regime, also the remaining purchase budget of an
// identity using itself as payout reference). Read-only: it never stalls
// or materializes request-path state.
func (b *Broker) Balance(payoutRef string) int64 { return b.ledger.Balance(payoutRef) }

// IssuedValue is the total face value of coins minted so far (lock-free).
func (b *Broker) IssuedValue() int64 { return b.issuedValue.Load() }

// DepositedValue is the total face value redeemed so far (lock-free).
func (b *Broker) DepositedValue() int64 { return b.depositedValue.Load() }

// Freeze bars an identity from purchasing (judge-ordered punishment).
func (b *Broker) Freeze(identity string) { b.frozen.Set(identity, struct{}{}) }

// RevokeCredentials adds the given credential serials to the broker's CRL
// and invalidates every cached verification artifact tied to the matching
// one-time public keys. Feed it the return value of Judge.Revoke so a
// revoked member's outstanding credentials stop verifying immediately, even
// when a prior use was memoized.
func (b *Broker) RevokeCredentials(serials []uint64, pubs []sig.PublicKey) {
	b.gsv.Revoke(serials, pubs)
}

// InvalidateCryptoCache drops all memoized verification state. Call it on
// group-key rotation or any event that changes what "valid" means outside
// per-credential revocation. No-op when the cache is disabled.
func (b *Broker) InvalidateCryptoCache() {
	if b.cache != nil {
		b.cache.Invalidate()
	}
}

// Frozen reports whether identity is frozen (read-lock path only).
func (b *Broker) Frozen(identity string) bool {
	_, frozen := b.frozen.Get(identity)
	return frozen
}

// FraudCases returns recorded fraud cases (read lock on the case log only).
func (b *Broker) FraudCases() []FraudCase {
	b.casesMu.RLock()
	defer b.casesMu.RUnlock()
	return append([]FraudCase(nil), b.cases...)
}

// ServiceLocks reports how many per-coin service locks are live
// (tests/metrics for the eviction policy).
func (b *Broker) ServiceLocks() int { return b.svc.Len() }

// handle dispatches one protocol message, then cuts a compaction snapshot
// if the journal has crossed its growth threshold.
func (b *Broker) handle(from bus.Address, msg any) (any, error) {
	resp, err := b.dispatch(from, msg)
	b.maybePersistSnapshot()
	return resp, err
}

func (b *Broker) dispatch(_ bus.Address, msg any) (any, error) {
	// Federation shard gate: foreign keys bounce with a redirect hint
	// before any crypto or store work happens.
	if b.fed != nil {
		if err := b.checkShard(msg); err != nil {
			return nil, err
		}
	}
	// Each case opens a span + latency sample inline (no closure: a
	// wrapper func would allocate even with instrumentation disabled,
	// breaking the byte-identical contract of a nil Obs knob).
	switch m := msg.(type) {
	case PurchaseRequest:
		sp := b.instr.Begin("serve-purchase")
		resp, err := b.handlePurchase(m)
		b.instr.End(sp, err)
		return resp, err
	case BatchPurchaseRequest:
		sp := b.instr.Begin("serve-purchase-batch")
		resp, err := b.handleBatchPurchase(m)
		b.instr.End(sp, err)
		return resp, err
	case TransferRequest:
		sp := b.instr.Begin("serve-downtime-transfer")
		resp, err := b.handleDowntimeTransfer(m)
		b.instr.End(sp, err)
		return resp, err
	case RenewRequest:
		sp := b.instr.Begin("serve-downtime-renewal")
		resp, err := b.handleDowntimeRenew(m)
		b.instr.End(sp, err)
		return resp, err
	case DepositRequest:
		sp := b.instr.Begin("serve-deposit")
		var resp any
		var err error
		if b.batcher != nil {
			resp, err = b.batcher.serve(m)
		} else {
			resp, err = b.handleDeposit(m)
		}
		b.instr.End(sp, err)
		return resp, err
	case BatchDepositRequest:
		sp := b.instr.Begin("serve-deposit-batch")
		resp, err := b.handleBatchDeposit(m)
		b.instr.End(sp, err)
		return resp, err
	case LayeredDepositRequest:
		sp := b.instr.Begin("serve-layered-deposit")
		resp, err := b.handleLayeredDeposit(m)
		b.instr.End(sp, err)
		return resp, err
	case SyncRequest:
		sp := b.instr.Begin("serve-sync")
		resp, err := b.handleSync(m)
		b.instr.End(sp, err)
		return resp, err
	case FraudReport:
		sp := b.instr.Begin("serve-fraud-report")
		resp, err := b.handleFraudReport(m)
		b.instr.End(sp, err)
		return resp, err
	case SettleRequest:
		sp := b.instr.Begin("serve-settle")
		resp, err := b.handleSettle(m)
		b.instr.End(sp, err)
		return resp, err
	default:
		return nil, fmt.Errorf("%w: broker got %T", ErrBadRequest, msg)
	}
}

func (b *Broker) handlePurchase(m PurchaseRequest) (any, error) {
	entry, ok := b.cfg.Directory.Lookup(m.Buyer)
	if !ok {
		return nil, fmt.Errorf("%w: buyer %q", ErrUnknownIdentity, m.Buyer)
	}
	if err := b.suite.Verify(entry.Pub, purchaseMessage(m.Buyer, m.CoinPub, m.Handle, m.Value, m.Anonymous), m.Sig); err != nil {
		return nil, fmt.Errorf("%w: purchase signature: %v", ErrBadRequest, err)
	}
	if m.Value <= 0 {
		return nil, fmt.Errorf("%w: non-positive value", ErrBadRequest)
	}
	if len(m.CoinPub) == 0 {
		return nil, fmt.Errorf("%w: empty coin key", ErrBadRequest)
	}
	if m.Anonymous && len(m.Handle) == 0 {
		return nil, fmt.Errorf("%w: anonymous purchase needs a handle", ErrBadRequest)
	}

	c := &coin.Coin{Pub: m.CoinPub.Clone(), Value: m.Value}
	if m.Anonymous {
		c.Handle = append([]byte(nil), m.Handle...)
	} else {
		c.Owner = m.Buyer
	}

	// Cheap rejections before paying for the signature.
	if b.Frozen(m.Buyer) {
		return nil, fmt.Errorf("%w: %s", ErrFrozen, m.Buyer)
	}
	if _, exists := b.coins.Get(c.ID()); exists {
		return nil, fmt.Errorf("%w: coin key already registered", ErrBadRequest)
	}
	if b.cfg.InitialCredit > 0 && b.ledger.Balance(m.Buyer) < c.Value {
		return nil, fmt.Errorf("%w: %s", ErrInsufficientFunds, m.Buyer)
	}

	sigBytes, err := b.suite.Sign(b.keys.Private, c.Message())
	if err != nil {
		return nil, fmt.Errorf("core: signing coin: %w", err)
	}
	c.Sig = sigBytes

	// Commit: debit first, then register. A duplicate registration (the
	// buyer raced itself on the same coin key) refunds the debit, so
	// conservation holds without a global lock.
	if b.cfg.InitialCredit > 0 {
		if _, ok := b.ledger.TryDebit(m.Buyer, c.Value); !ok {
			return nil, fmt.Errorf("%w: %s", ErrInsufficientFunds, m.Buyer)
		}
	}
	if !b.coins.Insert(c.ID(), c) {
		if b.cfg.InitialCredit > 0 {
			b.ledger.Credit(m.Buyer, c.Value)
		}
		return nil, fmt.Errorf("%w: coin key already registered", ErrBadRequest)
	}
	b.purchasedBy.Set(c.ID(), m.Buyer)
	b.journalMint([]*coin.Coin{c}, m.Buyer)
	b.issuedValue.Add(c.Value)
	b.ops.Inc(OpPurchase)
	return PurchaseResponse{Coin: *c}, nil
}

// handleBatchPurchase mints several coins under one buyer signature. The
// batch counts as one purchase operation (that is its point: amortizing
// broker round-trips and signature checks).
func (b *Broker) handleBatchPurchase(m BatchPurchaseRequest) (any, error) {
	entry, ok := b.cfg.Directory.Lookup(m.Buyer)
	if !ok {
		return nil, fmt.Errorf("%w: buyer %q", ErrUnknownIdentity, m.Buyer)
	}
	if err := b.suite.Verify(entry.Pub, batchPurchaseMessage(m.Buyer, m.CoinPubs, m.Value), m.Sig); err != nil {
		return nil, fmt.Errorf("%w: batch purchase signature: %v", ErrBadRequest, err)
	}
	if m.Value <= 0 || len(m.CoinPubs) == 0 {
		return nil, fmt.Errorf("%w: empty batch or non-positive value", ErrBadRequest)
	}
	total := m.Value * int64(len(m.CoinPubs))

	if b.Frozen(m.Buyer) {
		return nil, fmt.Errorf("%w: %s", ErrFrozen, m.Buyer)
	}
	seen := make(map[coin.ID]bool, len(m.CoinPubs))
	for _, pub := range m.CoinPubs {
		id := coin.ID(pub)
		if len(pub) == 0 || seen[id] {
			return nil, fmt.Errorf("%w: empty or duplicate coin key in batch", ErrBadRequest)
		}
		seen[id] = true
		if _, exists := b.coins.Get(id); exists {
			return nil, fmt.Errorf("%w: coin key already registered", ErrBadRequest)
		}
	}
	if b.cfg.InitialCredit > 0 && b.ledger.Balance(m.Buyer) < total {
		return nil, fmt.Errorf("%w: %s needs %d", ErrInsufficientFunds, m.Buyer, total)
	}

	coins := make([]coin.Coin, 0, len(m.CoinPubs))
	for _, pub := range m.CoinPubs {
		c := coin.Coin{Owner: m.Buyer, Pub: pub.Clone(), Value: m.Value}
		sigBytes, err := b.suite.Sign(b.keys.Private, c.Message())
		if err != nil {
			return nil, fmt.Errorf("core: signing batch coin: %w", err)
		}
		c.Sig = sigBytes
		coins = append(coins, c)
	}

	// Commit: debit the whole batch, then register each coin; a duplicate
	// rolls back the coins registered so far (they are ours alone — the
	// keys were fresh) and refunds, keeping the batch all-or-nothing.
	if b.cfg.InitialCredit > 0 {
		if _, ok := b.ledger.TryDebit(m.Buyer, total); !ok {
			return nil, fmt.Errorf("%w: %s", ErrInsufficientFunds, m.Buyer)
		}
	}
	for i := range coins {
		c := &coins[i]
		if !b.coins.Insert(c.ID(), c) {
			for j := 0; j < i; j++ {
				b.coins.Delete(coins[j].ID())
				b.purchasedBy.Delete(coins[j].ID())
			}
			if b.cfg.InitialCredit > 0 {
				b.ledger.Credit(m.Buyer, total)
			}
			return nil, fmt.Errorf("%w: coin key already registered", ErrBadRequest)
		}
		b.purchasedBy.Set(c.ID(), m.Buyer)
	}
	if b.persist != nil {
		minted := make([]*coin.Coin, len(coins))
		for i := range coins {
			minted[i] = &coins[i]
		}
		b.journalMint(minted, m.Buyer)
	}
	b.issuedValue.Add(total)
	b.ops.Inc(OpPurchase)
	return BatchPurchaseResponse{Coins: coins}, nil
}

// currentBinding establishes the authoritative binding for a coin from the
// broker's downtime state and the holder's presented evidence, implementing
// both of the paper's downtime verification flavors: bit-comparison when
// the broker already holds matching state (flavor two), full signature
// verification otherwise (flavor one).
func (b *Broker) currentBinding(c *coin.Coin, presented *coin.Binding) (*coin.Binding, error) {
	if presented == nil {
		return nil, fmt.Errorf("%w: no binding presented", ErrBadRequest)
	}
	stored, _ := b.downtime.Get(c.ID())
	if stored != nil && stored.Equal(presented) {
		// Flavor two: bit-by-bit comparison, no crypto.
		return stored, nil
	}
	// Flavor one: verify the presented binding cryptographically. Expiry
	// is not enforced on evidence: a holder that slept through a renewal
	// period can still prove holdership; renewals exist to bound state,
	// not to confiscate coins.
	if err := presented.VerifyFor(b.suite, c, b.keys.Public, time.Time{}); err != nil {
		return nil, fmt.Errorf("%w: presented binding: %v", ErrStaleBinding, err)
	}
	if stored != nil && presented.Seq <= stored.Seq {
		return nil, fmt.Errorf("%w: presented seq %d, broker has %d", ErrStaleBinding, presented.Seq, stored.Seq)
	}
	return presented, nil
}

// lockCoin serializes servicing of one coin (the validate→deliver→commit
// sequence of downtime operations must not interleave). TryLock so a
// payee that calls back into the broker during delivery cannot deadlock it.
//
// Entries are created on demand and may be evicted at any time (deposit,
// PruneServiceLocks); after acquiring, the lock is revalidated against the
// store so an acquired-but-evicted mutex — which no longer serializes
// against a freshly created one — is never returned.
func (b *Broker) lockCoin(id coin.ID) (unlock func(), err error) {
	for {
		m := b.svc.GetOrInsert(id, func() *sync.Mutex { return &sync.Mutex{} })
		if !m.TryLock() {
			return nil, ErrCoinBusy
		}
		if cur, ok := b.svc.Get(id); ok && cur == m {
			return m.Unlock, nil
		}
		// Evicted between fetch and lock: retry against the live entry.
		m.Unlock()
	}
}

// evictServiceLock drops a coin's service lock. Safe at any time because
// lockCoin revalidates; called when the coin can no longer be serviced
// (deposited) or has long gone quiet (PruneServiceLocks).
func (b *Broker) evictServiceLock(id coin.ID) { b.svc.Delete(id) }

// PruneServiceLocks evicts per-coin service locks no live request needs:
// locks for deposited coins, and locks for coins whose broker-era downtime
// binding expired before now — they are recreated on demand if the coin
// revives (expiry does not confiscate). It returns the number evicted.
// Long-running brokers call this periodically so the lock table tracks the
// working set instead of every coin ever serviced.
func (b *Broker) PruneServiceLocks() int {
	now := b.cfg.Clock().Unix()
	evicted := 0
	for _, id := range b.svc.Keys() {
		if _, spent := b.deposited.Get(id); spent {
			b.evictServiceLock(id)
			evicted++
			continue
		}
		if binding, ok := b.downtime.Get(id); ok && binding.Expiry < now {
			b.evictServiceLock(id)
			evicted++
		}
	}
	return evicted
}

func (b *Broker) lookupActiveCoin(pub sig.PublicKey) (*coin.Coin, error) {
	id := coin.ID(pub)
	c, ok := b.coins.Get(id)
	if !ok {
		return nil, ErrUnknownCoin
	}
	if _, spent := b.deposited.Get(id); spent {
		return nil, ErrAlreadyDeposited
	}
	return c, nil
}

// recordRelinquish appends a broker-era relinquishment proof to the coin's
// audit trail. The inner map is mutated under the shard's write lock;
// readers copy it under View.
func (b *Broker) recordRelinquish(id coin.ID, seq uint64, proof RelinquishProof) {
	b.relinquish.Compute(id, func(proofs map[uint64]RelinquishProof, _ bool) (map[uint64]RelinquishProof, store.Op) {
		if proofs == nil {
			proofs = make(map[uint64]RelinquishProof)
		}
		proofs[seq] = proof
		return proofs, store.OpSet
	})
}

// queueSync marks a coin for the owner's next synchronization.
func (b *Broker) queueSync(owner string, id coin.ID) {
	if owner == "" {
		return
	}
	b.pendingSync.Compute(owner, func(ids []coin.ID, _ bool) ([]coin.ID, store.Op) {
		return append(ids, id), store.OpSet
	})
}

func (b *Broker) handleDowntimeTransfer(m TransferRequest) (any, error) {
	c, err := b.lookupActiveCoin(m.Body.CoinPub)
	if err != nil {
		return nil, err
	}
	unlock, err := b.lockCoin(c.ID())
	if err != nil {
		return nil, err
	}
	defer unlock()
	cur, err := b.currentBinding(c, m.PresentedBinding)
	if err != nil {
		return nil, err
	}
	if m.Body.PrevSeq != cur.Seq {
		return nil, fmt.Errorf("%w: request cites seq %d, current is %d", ErrStaleBinding, m.Body.PrevSeq, cur.Seq)
	}
	bodyMsg := m.Body.Message()
	if err := verifyHolderAndGroup(b.suite, b.gsv, b.cfg.GroupPub, cur.Holder, bodyMsg, m.HolderSig, m.GroupSig); err != nil {
		return nil, err
	}

	next := &coin.Binding{
		CoinPub: c.Pub.Clone(),
		Holder:  m.Body.NewHolder.Clone(),
		Seq:     cur.Seq + 1,
		// Transfers preserve expiry; only renewals extend (see
		// renewedExpiry).
		Expiry:   renewedExpiry(cur.Expiry, b.cfg.Clock(), b.cfg.RenewalPeriod, false),
		ByBroker: true,
	}
	if next.Sig, err = b.suite.Sign(b.keys.Private, next.Message()); err != nil {
		return nil, fmt.Errorf("core: signing downtime binding: %w", err)
	}
	challengeSig, err := b.suite.Sign(b.keys.Private, coin.ChallengeMessage(c.Pub, m.Body.Nonce))
	if err != nil {
		return nil, fmt.Errorf("core: signing challenge: %w", err)
	}

	// Journal the relinquishment intent before the new binding leaves the
	// broker: once the payee holds a broker-signed binding, the proof that
	// justified it must survive any crash (else the audit-trail walk would
	// read the re-binding as owner fraud — a false punishment).
	proof := RelinquishProof{Body: m.Body, HolderSig: m.HolderSig, PrevHold: cur.Holder.Clone()}
	b.journalIntent(c.ID(), cur.Seq, proof)

	// Deliver to the payee before committing: nothing to roll back if
	// the payee is gone.
	_, err = b.ep.Call(bus.Address(m.Body.PayeeAddr), DeliverRequest{
		Coin:         *c,
		Binding:      *next,
		ChallengeSig: challengeSig,
	})
	if err != nil {
		return TransferResponse{OK: false, Reason: "payee delivery failed: " + err.Error()}, nil
	}

	owner := b.ownerIdentity(c)
	b.downtime.Set(c.ID(), next)
	b.recordRelinquish(c.ID(), cur.Seq, proof)
	b.queueSync(owner, c.ID())
	b.journalDowntimeCommit(c.ID(), owner)

	b.publishBinding(next)
	b.ops.Inc(OpDowntimeTransfer)
	return TransferResponse{OK: true}, nil
}

// ownerIdentity resolves the identity to sync for a coin; for anonymous
// coins the broker still knows the purchaser.
func (b *Broker) ownerIdentity(c *coin.Coin) string {
	if c.Owner != "" {
		return c.Owner
	}
	buyer, _ := b.purchasedBy.Get(c.ID())
	return buyer
}

func (b *Broker) handleDowntimeRenew(m RenewRequest) (any, error) {
	c, err := b.lookupActiveCoin(m.CoinPub)
	if err != nil {
		return nil, err
	}
	unlock, err := b.lockCoin(c.ID())
	if err != nil {
		return nil, err
	}
	defer unlock()
	cur, err := b.currentBinding(c, m.PresentedBinding)
	if err != nil {
		return nil, err
	}
	if m.Seq != cur.Seq {
		return nil, fmt.Errorf("%w: request cites seq %d, current is %d", ErrStaleBinding, m.Seq, cur.Seq)
	}
	msg := renewMessage(m.CoinPub, m.Seq)
	if err := verifyHolderAndGroup(b.suite, b.gsv, b.cfg.GroupPub, cur.Holder, msg, m.HolderSig, m.GroupSig); err != nil {
		return nil, err
	}

	next := &coin.Binding{
		CoinPub:  c.Pub.Clone(),
		Holder:   cur.Holder.Clone(),
		Seq:      cur.Seq + 1,
		Expiry:   renewedExpiry(cur.Expiry, b.cfg.Clock(), b.cfg.RenewalPeriod, true),
		ByBroker: true,
	}
	if next.Sig, err = b.suite.Sign(b.keys.Private, next.Message()); err != nil {
		return nil, fmt.Errorf("core: signing renewal binding: %w", err)
	}

	owner := b.ownerIdentity(c)
	b.downtime.Set(c.ID(), next)
	b.recordRelinquish(c.ID(), cur.Seq, RelinquishProof{
		Renewal:   true,
		Body:      coin.TransferBody{CoinPub: c.Pub.Clone(), PrevSeq: cur.Seq},
		HolderSig: m.HolderSig,
		PrevHold:  cur.Holder.Clone(),
	})
	b.queueSync(owner, c.ID())
	b.journalDowntimeCommit(c.ID(), owner)

	b.publishBinding(next)
	b.ops.Inc(OpDowntimeRenewal)
	return RenewResponse{Binding: *next}, nil
}

func (b *Broker) handleDeposit(m DepositRequest) (any, error) {
	id := coin.ID(m.CoinPub)
	c, ok := b.coins.Get(id)
	if !ok {
		return nil, ErrUnknownCoin
	}
	prior, _ := b.deposited.Get(id)

	if prior != nil {
		// Double deposit: definitive fraud evidence. Both group
		// signatures are recorded so the judge can open them.
		b.recordCase(FraudCase{
			Kind:    "double-deposit",
			CoinID:  c.ID(),
			Verdict: "second deposit rejected; group signatures escrowed for the judge",
			GroupSigs: [][2]any{
				{depositMessage(m.CoinPub, prior.payoutRef, prior.binding.Seq), prior.groupSig},
				{depositMessage(m.CoinPub, m.PayoutRef, m.PresentedBinding.Seq), m.GroupSig},
			},
			Bindings: []coin.Binding{*prior.binding, *m.PresentedBinding},
		})
		return nil, ErrAlreadyDeposited
	}

	cur, err := b.currentBinding(c, m.PresentedBinding)
	if err != nil {
		return nil, err
	}
	msg := depositMessage(m.CoinPub, m.PayoutRef, cur.Seq)
	if err := verifyHolderAndGroup(b.suite, b.gsv, b.cfg.GroupPub, cur.Holder, msg, m.HolderSig, m.GroupSig); err != nil {
		return nil, err
	}

	// Commit: the Insert is the single atomic double-deposit gate.
	rec := &depositRecord{
		binding:   cur.Clone(),
		groupSig:  m.GroupSig,
		payoutRef: m.PayoutRef,
		when:      b.cfg.Clock(),
	}
	if !b.deposited.Insert(id, rec) {
		return nil, ErrAlreadyDeposited
	}
	b.creditPayout(id, m.PayoutRef, c.Value)
	b.depositedValue.Add(c.Value)
	b.downtime.Delete(id)
	// A deposited coin can never be serviced again (lookupActiveCoin
	// refuses first), so its service lock is garbage: evict it.
	b.evictServiceLock(id)
	b.ops.Inc(OpDeposit)
	return DepositResponse{Amount: c.Value}, nil
}

func (b *Broker) handleSync(m SyncRequest) (any, error) {
	entry, ok := b.cfg.Directory.Lookup(m.Identity)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownIdentity, m.Identity)
	}
	if err := b.suite.Verify(entry.Pub, syncMessage(m.Identity, m.Nonce), m.Sig); err != nil {
		return nil, fmt.Errorf("%w: sync signature: %v", ErrBadRequest, err)
	}
	ids, hadQueue := b.pendingSync.GetAndDelete(m.Identity)
	var bindings []coin.Binding
	var drained []coin.ID
	seen := make(map[coin.ID]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			continue
		}
		seen[id] = true
		if _, spent := b.deposited.Get(id); spent {
			continue
		}
		// The owner is authoritative again; future downtime operations
		// re-verify from presented evidence.
		if binding, ok := b.downtime.GetAndDelete(id); ok {
			bindings = append(bindings, *binding)
			drained = append(drained, id)
		}
	}
	if hadQueue {
		b.journalSyncDrain(m.Identity, drained)
	}
	b.ops.Inc(OpSync)
	return SyncResponse{Bindings: bindings}, nil
}

// publishBinding writes a binding to the public binding list. The broker is
// a trusted DHT writer, which is what keeps real-time detection working
// through owner downtime (paper Section 5.1).
func (b *Broker) publishBinding(binding *coin.Binding) {
	if b.dhtc == nil {
		return
	}
	key := dht.KeyFor(binding.CoinPub)
	rec, err := dht.SignRecord(b.suite, b.keys, key, binding.Seq, binding.Marshal())
	if err != nil {
		return
	}
	// Best effort: a failed publish degrades detection, not payment.
	_ = b.dhtc.Put(rec)
}

func (b *Broker) recordCase(fc FraudCase) uint64 {
	b.casesMu.Lock()
	b.caseSeq++
	fc.ID = b.caseSeq
	b.cases = append(b.cases, fc)
	b.casesMu.Unlock()
	b.journalCase(fc)
	return fc.ID
}

// handleFraudReport adjudicates a holder's double-spend alarm by walking
// the coin's audit trail (the paper's dispute story: owners must be able to
// prove every re-binding was authorized by the relinquishing holder).
func (b *Broker) handleFraudReport(m FraudReport) (any, error) {
	c, ok := b.coins.Get(coin.ID(m.CoinPub))
	if !ok {
		return nil, ErrUnknownCoin
	}
	reportMsg := fraudReportMessage(m.CoinPub, &m.MyBinding, &m.Observed)
	if err := b.gsv.Verify(b.suite, reportMsg, m.GroupSig); err != nil {
		return nil, fmt.Errorf("%w: report group signature: %v", ErrBadRequest, err)
	}
	// Both bindings must be genuine (expiry irrelevant for evidence).
	if err := m.MyBinding.VerifyFor(b.suite, c, b.keys.Public, time.Time{}); err != nil {
		return nil, fmt.Errorf("%w: reporter binding: %v", ErrBadRequest, err)
	}
	if err := m.Observed.VerifyFor(b.suite, c, b.keys.Public, time.Time{}); err != nil {
		return nil, fmt.Errorf("%w: observed binding: %v", ErrBadRequest, err)
	}
	if m.Observed.Seq < m.MyBinding.Seq {
		return nil, fmt.Errorf("%w: observed binding is older than reporter's", ErrBadRequest)
	}
	if m.Observed.Seq == m.MyBinding.Seq && m.MyBinding.Equal(&m.Observed) {
		return nil, fmt.Errorf("%w: bindings do not conflict", ErrBadRequest)
	}

	// Two distinct valid bindings with the same sequence number are
	// definitive owner fraud: no honest signer issues both.
	if m.Observed.Seq == m.MyBinding.Seq {
		return b.punishOwner(c, m, "conflicting bindings at same sequence")
	}

	// Otherwise ask the owner to prove the chain of relinquishments from
	// the reporter's sequence to the observed one.
	owner := b.ownerIdentity(c)
	entry, ok := b.cfg.Directory.Lookup(owner)
	if !ok {
		id := b.recordCase(FraudCase{
			Kind: "owner-unreachable", CoinID: c.ID(),
			Verdict:  "owner identity unresolvable; escalated to judge",
			Bindings: []coin.Binding{m.MyBinding, m.Observed},
		})
		return FraudResponse{CaseID: id, Verdict: "escalated"}, nil
	}
	resp, err := b.ep.Call(entry.Addr, DisputeRequest{CoinPub: m.CoinPub, FromSeq: m.MyBinding.Seq, ToSeq: m.Observed.Seq})
	if err != nil {
		id := b.recordCase(FraudCase{
			Kind: "owner-unreachable", CoinID: c.ID(),
			Verdict:  "owner did not answer dispute: " + err.Error(),
			Bindings: []coin.Binding{m.MyBinding, m.Observed},
		})
		return FraudResponse{CaseID: id, Verdict: "pending"}, nil
	}
	dr, ok := resp.(DisputeResponse)
	if !ok {
		return b.punishOwner(c, m, "owner returned malformed dispute response")
	}
	if err := b.verifyRelinquishChain(c, &m.MyBinding, &m.Observed, dr.Proofs); err != nil {
		return b.punishOwner(c, m, "audit trail does not justify re-binding: "+err.Error())
	}
	id := b.recordCase(FraudCase{
		Kind: "legitimate-chain", CoinID: c.ID(),
		Verdict:  "owner produced a valid relinquishment chain; reporter's binding was stale",
		Bindings: []coin.Binding{m.MyBinding, m.Observed},
	})
	return FraudResponse{CaseID: id, Verdict: "legitimate"}, nil
}

func (b *Broker) punishOwner(c *coin.Coin, m FraudReport, why string) (any, error) {
	owner := b.ownerIdentity(c)
	b.frozen.Set(owner, struct{}{})
	id := b.recordCase(FraudCase{
		Kind: "owner-fraud", CoinID: c.ID(),
		Verdict:  why,
		Punished: owner,
		GroupSigs: [][2]any{
			{fraudReportMessage(m.CoinPub, &m.MyBinding, &m.Observed), m.GroupSig},
		},
		Bindings: []coin.Binding{m.MyBinding, m.Observed},
	})
	return FraudResponse{CaseID: id, Verdict: "owner-fraud", Punished: owner}, nil
}

// verifyRelinquishChain walks holder-signed proofs from the reporter's
// binding to the observed binding, merging the owner's audit trail with the
// broker's own (downtime-era) entries.
func (b *Broker) verifyRelinquishChain(c *coin.Coin, from, to *coin.Binding, ownerProofs []RelinquishProof) error {
	chain := make(map[uint64]RelinquishProof, len(ownerProofs))
	for _, p := range ownerProofs {
		chain[p.Body.PrevSeq] = p
	}
	b.relinquish.View(c.ID(), func(proofs map[uint64]RelinquishProof, _ bool) {
		for seq, p := range proofs {
			if _, exists := chain[seq]; !exists {
				chain[seq] = p
			}
		}
	})

	holder := sig.PublicKey(from.Holder)
	for seq := from.Seq; seq < to.Seq; seq++ {
		p, ok := chain[seq]
		if !ok {
			return fmt.Errorf("no relinquishment proof for seq %d", seq)
		}
		if !holder.Equal(p.PrevHold) {
			return fmt.Errorf("proof at seq %d cites wrong holder", seq)
		}
		var msg []byte
		var next sig.PublicKey
		if p.Renewal {
			msg = renewMessage(c.Pub, seq)
			next = holder
		} else {
			if p.Body.PrevSeq != seq || !c.Pub.Equal(sig.PublicKey(p.Body.CoinPub)) {
				return fmt.Errorf("proof at seq %d cites wrong coin or seq", seq)
			}
			msg = p.Body.Message()
			next = sig.PublicKey(p.Body.NewHolder)
		}
		if err := b.suite.Verify(holder, msg, p.HolderSig); err != nil {
			return fmt.Errorf("proof at seq %d not signed by holder: %v", seq, err)
		}
		holder = next
	}
	if !holder.Equal(sig.PublicKey(to.Holder)) {
		return errors.New("chain ends at a different holder than observed")
	}
	return nil
}
