package core

import (
	"testing"

	"whopay/internal/obs"
	"whopay/internal/sig"
)

// Observability overhead benchmarks: the same owner-mediated transfer hop
// as BenchmarkTransferWAL's "none" variant, measured with instrumentation
// disabled (nil registry — the default for every deployment that doesn't
// opt in) and with a live registry recording latency histograms, op
// counters, and a span per operation.
//
// BenchmarkTransferWhoPay runs the production configuration (ECDSA P-256);
// the off/on gap there is the deployment-visible price of leaving
// observability enabled, with a <2% acceptance bar (results/obs_bench.txt).
// BenchmarkTransferObs runs the null scheme, which strips away crypto and
// exposes the instrumentation's absolute per-hop cost (a handful of spans,
// histogram samples, and counter bumps).

func benchTransferHop(b *testing.B, scheme sig.Scheme, reg *obs.Registry) {
	b.Helper()
	f := newFixture(b, fixtureOpts{scheme: scheme, obs: reg})
	owner := f.addPeer("owner", nil)
	x := f.addPeer("x", nil)
	y := f.addPeer("y", nil)

	id, err := owner.Purchase(1, false)
	if err != nil {
		b.Fatal(err)
	}
	if err := owner.IssueTo(x.Addr(), id); err != nil {
		b.Fatal(err)
	}
	// Same steady-state shape as BenchmarkTransferWAL: retire and re-mint
	// every 64 hops off the clock so coin-history growth doesn't pollute
	// the per-hop number.
	const freshEvery = 64
	cur, nxt := x, y
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%freshEvery == 0 {
			b.StopTimer()
			if err := cur.Deposit(id, "payout:bench"); err != nil {
				b.Fatal(err)
			}
			if id, err = owner.Purchase(1, false); err != nil {
				b.Fatal(err)
			}
			if err := owner.IssueTo(cur.Addr(), id); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		if err := cur.TransferTo(nxt.Addr(), id); err != nil {
			b.Fatal(err)
		}
		cur, nxt = nxt, cur
	}
	b.StopTimer()
	if reg != nil {
		// Sanity: the live variant must actually have recorded.
		if n := reg.Histogram("whopay_op_seconds", obs.Labels{"entity": "owner", "op": "serve-transfer"}, nil).Count(); n == 0 {
			b.Fatal("live registry recorded nothing")
		}
	}
}

// BenchmarkTransferWhoPay measures the production stack (ECDSA P-256) with
// observability off and on.
func BenchmarkTransferWhoPay(b *testing.B) {
	b.Run("obs=off", func(b *testing.B) { benchTransferHop(b, sig.ECDSA{}, nil) })
	b.Run("obs=on", func(b *testing.B) { benchTransferHop(b, sig.ECDSA{}, obs.NewRegistry()) })
}

// BenchmarkTransferObs measures the null-crypto protocol skeleton, where
// the instrumentation's absolute cost is the whole off/on gap.
func BenchmarkTransferObs(b *testing.B) {
	b.Run("obs=off", func(b *testing.B) { benchTransferHop(b, sig.NewNull(1000), nil) })
	b.Run("obs=on", func(b *testing.B) { benchTransferHop(b, sig.NewNull(1000), obs.NewRegistry()) })
}
