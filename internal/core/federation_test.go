package core

import (
	"errors"
	"fmt"
	mrand "math/rand"
	"sync"
	"testing"
	"time"

	"whopay/internal/bus"
	"whopay/internal/coin"
	"whopay/internal/sig"
	"whopay/internal/wal"
)

// fedFixture wires two directly-constructed federated brokers (shard 0 and
// shard 1) on one memory bus — the smallest world in which cross-shard
// settlement can be exercised and crashed deterministically, without the
// federation package's lease machinery in the way.
type fedFixture struct {
	t      *testing.T
	net    *bus.Memory
	scheme sig.Scheme
	clock  *fakeClock
	judge  *Judge
	dir    *Directory

	mu      sync.Mutex
	addrs   [2]bus.Address
	pubs    [2]sig.PublicKey
	brokers [2]*Broker
	cfgs    [2]BrokerConfig

	seq int
}

// fedRouter routes peers by the fixture's static shard table.
type fedRouter struct{ f *fedFixture }

func (r fedRouter) NumShards() int { return 2 }
func (r fedRouter) Leader(shard int) (bus.Address, bool) {
	r.f.mu.Lock()
	defer r.f.mu.Unlock()
	return r.f.addrs[shard], r.f.addrs[shard] != ""
}
func (r fedRouter) BrokerPub(shard int) sig.PublicKey {
	r.f.mu.Lock()
	defer r.f.mu.Unlock()
	return r.f.pubs[shard]
}

func newFedFixture(t *testing.T) *fedFixture {
	t.Helper()
	f := &fedFixture{
		t:      t,
		net:    bus.NewMemory(),
		scheme: sig.NewNull(1000),
		clock:  newFakeClock(),
		dir:    NewDirectory(),
	}
	judge, err := NewJudge(f.scheme)
	if err != nil {
		t.Fatal(err)
	}
	f.judge = judge
	for shard := 0; shard < 2; shard++ {
		f.cfgs[shard] = BrokerConfig{
			Network:   f.net,
			Addr:      bus.Address(fmt.Sprintf("fed-broker-%d", shard)),
			Scheme:    f.scheme,
			Clock:     f.clock.Now,
			Directory: f.dir,
			GroupPub:  judge.GroupPublicKey(),
			Persistence: &wal.Config{
				Dir:    t.TempDir(),
				Policy: wal.FsyncNever,
			},
			Federation: &FederationConfig{
				Index:  shard,
				Shards: 2,
				LeaderAddr: func(s int) (bus.Address, bool) {
					return fedRouter{f}.Leader(s)
				},
				ShardPub: func(s int) (sig.PublicKey, bool) {
					pub := fedRouter{f}.BrokerPub(s)
					return pub, len(pub) > 0
				},
				SettleRetry: 3 * time.Millisecond,
			},
		}
		b, err := NewBroker(f.cfgs[shard])
		if err != nil {
			t.Fatal(err)
		}
		f.setBroker(shard, b)
	}
	t.Cleanup(func() {
		for s := 0; s < 2; s++ {
			if b := f.broker(s); b != nil {
				b.Close()
			}
		}
	})
	return f
}

func (f *fedFixture) setBroker(shard int, b *Broker) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.brokers[shard] = b
	if b != nil {
		f.addrs[shard] = b.Addr()
		f.pubs[shard] = b.PublicKey()
	}
}

func (f *fedFixture) broker(shard int) *Broker {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.brokers[shard]
}

// crashBroker kills a shard's broker without grace; the shard is
// unreachable until recoverBroker.
func (f *fedFixture) crashBroker(shard int) {
	f.t.Helper()
	b := f.broker(shard)
	if b == nil {
		f.t.Fatalf("shard %d already down", shard)
	}
	_ = b.Close()
	f.mu.Lock()
	f.brokers[shard] = nil
	f.mu.Unlock()
}

// recoverBroker restarts a crashed shard from its journal.
func (f *fedFixture) recoverBroker(shard int) *Broker {
	f.t.Helper()
	b, err := RecoverBroker(f.cfgs[shard])
	if err != nil {
		f.t.Fatalf("recovering shard %d: %v", shard, err)
	}
	f.setBroker(shard, b)
	return b
}

func (f *fedFixture) addPeer(id string) *Peer {
	f.t.Helper()
	f.seq++
	p, err := NewPeer(PeerConfig{
		ID:         id,
		Network:    f.net,
		Addr:       bus.Address(fmt.Sprintf("fedaddr:%d", f.seq)),
		Scheme:     f.scheme,
		Clock:      f.clock.Now,
		Directory:  f.dir,
		BrokerAddr: f.addrs[0],
		BrokerPub:  f.pubs[0],
		Router:     fedRouter{f},
		Judge:      f.judge,
		Rand:       mrand.New(mrand.NewSource(int64(f.seq) * 60013)),
		Retry: &bus.RetryPolicy{
			MaxAttempts: 4,
			BaseDelay:   time.Millisecond,
			MaxDelay:    5 * time.Millisecond,
			Factor:      2,
		},
	})
	if err != nil {
		f.t.Fatal(err)
	}
	f.t.Cleanup(func() { p.Close() })
	return p
}

// refOnShard finds a payout reference homing on the wanted shard.
func refOnShard(shard int) string {
	for i := 0; ; i++ {
		ref := fmt.Sprintf("ref-%d", i)
		if ShardOfKey(ref, 2) == shard {
			return ref
		}
	}
}

// mintHeldOnShard purchases coins at payer and pays them to payee until the
// payee holds one whose ID homes on the wanted shard; returns that coin.
func mintHeldOnShard(t *testing.T, f *fedFixture, payer, payee *Peer, payeeID string, shard int) coin.ID {
	t.Helper()
	entry, ok := f.dir.Lookup(payeeID)
	if !ok {
		t.Fatalf("payee %q not in directory", payeeID)
	}
	for try := 0; try < 64; try++ {
		if _, err := payer.Purchase(1, false); err != nil {
			t.Fatalf("purchase: %v", err)
		}
		if _, err := payer.Pay(entry.Addr, 1, PolicyI); err != nil {
			t.Fatalf("pay: %v", err)
		}
		for _, id := range payee.HeldCoins() {
			if ShardOfKey(string(id), 2) == shard {
				return id
			}
		}
	}
	t.Fatalf("no coin homed on shard %d after 64 mints", shard)
	return ""
}

// waitBalance polls a broker's payout balance until it reaches want.
func waitBalance(t *testing.T, b *Broker, ref string, want int64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if got := b.Balance(ref); got == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("balance(%q) = %d, want %d after %v", ref, b.Balance(ref), want, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCrossShardSettlementCreditsHomeShard: a deposit redeemed on shard 0
// whose payout reference homes on shard 1 must credit shard 1 exactly once,
// with the intent journaled and acknowledged.
func TestCrossShardSettlementCreditsHomeShard(t *testing.T) {
	f := newFedFixture(t)
	u := f.addPeer("u")
	v := f.addPeer("v")
	ref := refOnShard(1)

	id := mintHeldOnShard(t, f, u, v, "v", 0)
	if err := v.Deposit(id, ref); err != nil {
		t.Fatalf("deposit: %v", err)
	}
	waitBalance(t, f.broker(1), ref, 1, 2*time.Second)
	// The intent must drain: Done recorded, nothing pending.
	deadline := time.Now().Add(2 * time.Second)
	for f.broker(0).PendingSettlements() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d settlements still pending", f.broker(0).PendingSettlements())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := f.broker(0).Balance(ref); got != 0 {
		t.Errorf("deposit shard kept a credit of %d for a foreign ref", got)
	}
}

// TestSettlementSurvivesDepositShardCrash: the payout shard is down when the
// deposit commits, the deposit shard crashes with the settlement pending,
// and both recover — the journaled intent must be resent and credit exactly
// once. This is the crash-between-intent-and-commit window.
func TestSettlementSurvivesDepositShardCrash(t *testing.T) {
	f := newFedFixture(t)
	u := f.addPeer("u")
	v := f.addPeer("v")
	ref := refOnShard(1)

	id := mintHeldOnShard(t, f, u, v, "v", 0)

	// Take the payout shard down; the deposit must still commit locally,
	// with the cross-shard credit parked as a pending intent.
	f.crashBroker(1)
	if err := v.Deposit(id, ref); err != nil {
		t.Fatalf("deposit with payout shard down: %v", err)
	}
	if got := f.broker(0).PendingSettlements(); got != 1 {
		t.Fatalf("pending settlements = %d, want 1", got)
	}

	// Crash the deposit shard too, then recover both. The intent lives in
	// shard 0's journal; recovery must re-queue and deliver it.
	f.crashBroker(0)
	f.recoverBroker(1)
	b0 := f.recoverBroker(0)
	if got := b0.PendingSettlements(); got != 1 {
		t.Fatalf("recovered pending settlements = %d, want 1", got)
	}
	waitBalance(t, f.broker(1), ref, 1, 2*time.Second)

	deadline := time.Now().Add(2 * time.Second)
	for b0.PendingSettlements() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("settlement never acknowledged after recovery")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSettlementReplayDedup: the payout shard must credit a settlement
// exactly once no matter how many times it is replayed — including across
// its own crash and recovery (the dedup record is durable).
func TestSettlementReplayDedup(t *testing.T) {
	f := newFedFixture(t)
	ref := refOnShard(1)
	b0, b1 := f.broker(0), f.broker(1)

	req := SettleRequest{
		CoinID:    []byte("settle-replay-coin"),
		PayoutRef: ref,
		Amount:    5,
		FromShard: 0,
	}
	var err error
	req.Sig, err = b0.suite.Sign(b0.keys.Private, settleMessage(req.CoinID, req.PayoutRef, req.Amount, req.FromShard))
	if err != nil {
		t.Fatal(err)
	}

	probe, err := f.net.Listen("probe", func(bus.Address, any) (any, error) {
		return nil, ErrBadRequest
	})
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()

	for i := 0; i < 3; i++ {
		resp, err := probe.Call(b1.Addr(), req)
		if err != nil {
			t.Fatalf("settle replay %d: %v", i, err)
		}
		if _, ok := resp.(SettleResponse); !ok {
			t.Fatalf("settle replay %d answered %T", i, resp)
		}
	}
	if got := b1.Balance(ref); got != 5 {
		t.Fatalf("balance after triple replay = %d, want 5 (exactly-once broken)", got)
	}

	// The dedup record must survive a crash: recover and replay again.
	f.crashBroker(1)
	b1 = f.recoverBroker(1)
	if got := b1.Balance(ref); got != 5 {
		t.Fatalf("balance after recovery = %d, want 5", got)
	}
	if _, err := probe.Call(b1.Addr(), req); err != nil {
		t.Fatalf("post-recovery replay: %v", err)
	}
	if got := b1.Balance(ref); got != 5 {
		t.Fatalf("balance after post-recovery replay = %d, want 5", got)
	}
}

// TestSettlementRejectsBadSignature: with ShardPub wired, a settlement not
// signed by the claimed shard's broker key must be refused.
func TestSettlementRejectsBadSignature(t *testing.T) {
	f := newFedFixture(t)
	ref := refOnShard(1)
	b1 := f.broker(1)

	req := SettleRequest{
		CoinID:    []byte("forged-coin"),
		PayoutRef: ref,
		Amount:    100,
		FromShard: 0,
		Sig:       []byte("not-a-signature"),
	}
	probe, err := f.net.Listen("probe", func(bus.Address, any) (any, error) {
		return nil, ErrBadRequest
	})
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()
	if _, err := probe.Call(b1.Addr(), req); err == nil {
		t.Fatal("payout shard accepted a forged settlement")
	}
	if got := b1.Balance(ref); got != 0 {
		t.Fatalf("forged settlement credited %d", got)
	}
}

// TestWrongShardRejectedWithRedirect: a request for a foreign coin must be
// refused with ErrWrongShard and a redirect hint at the owning shard.
func TestWrongShardRejectedWithRedirect(t *testing.T) {
	f := newFedFixture(t)
	u := f.addPeer("u")
	v := f.addPeer("v")
	id := mintHeldOnShard(t, f, u, v, "v", 1)

	// Replay the deposit shape at the WRONG shard directly.
	req := DepositRequest{CoinPub: sig.PublicKey(id), PayoutRef: "x"}
	probe, err := f.net.Listen("probe", func(bus.Address, any) (any, error) {
		return nil, ErrBadRequest
	})
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()
	_, err = probe.Call(f.broker(0).Addr(), req)
	if !errors.Is(err, ErrWrongShard) {
		t.Fatalf("wrong-shard deposit answered %v, want ErrWrongShard", err)
	}
	hint, ok := bus.RedirectHint(err)
	if !ok {
		t.Fatal("ErrWrongShard carried no redirect hint")
	}
	if want := f.broker(1).Addr(); hint != want {
		t.Errorf("redirect hint %q, want owning shard %q", hint, want)
	}
}
