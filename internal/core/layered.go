package core

import (
	"fmt"

	"whopay/internal/coin"
	"whopay/internal/groupsig"
	"whopay/internal/layered"
	"whopay/internal/sig"
)

// Layered-coin integration (paper Section 7): hops happen entirely offline
// via layered.Hop; the broker redeems the chain, which is also the moment
// offline double-spend forks are caught — exactly the trade-off the paper
// describes ("double spending is easier to commit and harder to defend
// than in online transfer systems. It has no real-time double spending
// detection.").

// MaxCoinLayers is the broker's accepted layer bound (paper: "a maximum
// number of layers can be imposed").
const MaxCoinLayers = layered.DefaultMaxLayers

// LayeredDepositRequest redeems a layered coin: the base coin and binding,
// the offline hop chain, and the chain head's signatures over the deposit.
type LayeredDepositRequest struct {
	LC        layered.Coin
	PayoutRef string
	HolderSig []byte // by the chain head's holder key
	GroupSig  groupsig.Signature
}

func layeredDepositMessage(coinPub sig.PublicKey, payoutRef string, layers int) []byte {
	out := []byte("whopay/msg/layered-deposit/1")
	out = appendBytes(out, coinPub)
	out = appendBytes(out, []byte(payoutRef))
	out = append(out, byte(layers))
	return out
}

// handleLayeredDeposit verifies the whole offline chain and credits the
// chain head. A second deposit of any fork of the same coin is rejected
// and every layer's group signature is escrowed for the judge: offline
// double spending is caught here, at redemption, with the cheater
// identifiable.
func (b *Broker) handleLayeredDeposit(m LayeredDepositRequest) (any, error) {
	lc := m.LC
	c, ok := b.coins.Get(lc.Base.ID())
	prior, _ := b.deposited.Get(lc.Base.ID())
	if !ok {
		return nil, ErrUnknownCoin
	}
	if err := lc.Verify(b.suite, b.keys.Public, b.cfg.GroupPub, MaxCoinLayers); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	// The chain must be anchored at the coin's authoritative binding.
	if _, err := b.currentBinding(c, &lc.Binding); err != nil {
		return nil, err
	}
	msg := layeredDepositMessage(c.Pub, m.PayoutRef, len(lc.Layers))
	head := lc.CurrentHolder()
	if err := verifyHolderAndGroup(b.suite, b.gsv, b.cfg.GroupPub, head, msg, m.HolderSig, m.GroupSig); err != nil {
		return nil, err
	}

	if prior != nil {
		// A fork of an already-redeemed coin: escrow every layer's
		// group signature — the judge opens them all and finds the
		// fork point's signer.
		evidence := [][2]any{{msg, m.GroupSig}}
		for _, step := range lc.CollapseProofs() {
			evidence = append(evidence, [2]any{step.Message, step.GroupSig})
		}
		b.recordCase(FraudCase{
			Kind:      "layered-double-spend",
			CoinID:    c.ID(),
			Verdict:   "fork of a redeemed layered coin; layer signatures escrowed for the judge",
			GroupSigs: evidence,
			Bindings:  []coin.Binding{lc.Binding},
		})
		return nil, ErrAlreadyDeposited
	}

	// Commit: the Insert is the single atomic double-deposit gate — a
	// racing fork of the same chain loses here.
	rec := &depositRecord{
		binding:   lc.Binding.Clone(),
		groupSig:  m.GroupSig,
		payoutRef: m.PayoutRef,
		when:      b.cfg.Clock(),
	}
	if !b.deposited.Insert(c.ID(), rec) {
		return nil, ErrAlreadyDeposited
	}
	b.creditPayout(c.ID(), m.PayoutRef, c.Value)
	b.depositedValue.Add(c.Value)
	b.downtime.Delete(c.ID())
	b.evictServiceLock(c.ID())
	b.ops.Inc(OpDeposit)
	return DepositResponse{Amount: c.Value}, nil
}

// ExportLayered converts a held coin into a layered coin ready for offline
// hops. The peer gives up its held entry: from now on the chain IS the
// coin, and whoever holds the chain head's key controls it.
func (p *Peer) ExportLayered(id coin.ID) (*layered.Coin, sig.KeyPair, error) {
	hc, ok := p.dropHeld(id)
	if !ok {
		return nil, sig.KeyPair{}, ErrUnknownCoin
	}
	hc.mu.Lock()
	lc := &layered.Coin{Base: *hc.c.Clone(), Binding: *hc.binding.Clone()}
	hc.mu.Unlock()
	keys := hc.holderKeys
	p.unwatch(id)
	return lc, keys, nil
}

// DepositLayered redeems a layered coin at the broker, crediting
// payoutRef. headPriv is the private half of the chain head's key.
func (p *Peer) DepositLayered(lc *layered.Coin, headPriv sig.PrivateKey, payoutRef string) error {
	msg := layeredDepositMessage(lc.Base.Pub, payoutRef, len(lc.Layers))
	holderSig, err := p.suite.Sign(headPriv, msg)
	if err != nil {
		return fmt.Errorf("core: signing layered deposit: %w", err)
	}
	gs, err := p.member.Sign(p.suite, msg)
	if err != nil {
		return fmt.Errorf("core: group-signing layered deposit: %w", err)
	}
	raw, err := p.callBroker(string(lc.Base.ID()), LayeredDepositRequest{
		LC:        *lc,
		PayoutRef: payoutRef,
		HolderSig: holderSig,
		GroupSig:  gs,
	})
	if err != nil {
		return fmt.Errorf("core: layered deposit: %w", err)
	}
	if _, ok := raw.(DepositResponse); !ok {
		return fmt.Errorf("%w: unexpected layered deposit response %T", ErrBadRequest, raw)
	}
	p.ops.Inc(OpDeposit)
	return nil
}

// GroupMember exposes the peer's group member key for offline layered hops
// (layered.Hop needs it to sign fairness layers).
func (p *Peer) GroupMember() *groupsig.MemberKey { return p.member }

// Suite exposes the peer's crypto suite for offline layered hops.
func (p *Peer) Suite() sig.Suite { return p.suite }
