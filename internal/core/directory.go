package core

import (
	"sync"

	"whopay/internal/bus"
	"whopay/internal/sig"
)

// Directory maps user identities to their public keys and bus addresses.
// It stands in for the PKI the paper assumes ("his identity (e.g., in the
// form of a public key certificate)") plus a peer locator. It is trusted
// infrastructure like the broker; in the networked deployment each daemon
// loads it from configuration. Safe for concurrent use.
type Directory struct {
	mu      sync.RWMutex
	entries map[string]DirEntry
}

// DirEntry is one registered identity.
type DirEntry struct {
	Pub  sig.PublicKey
	Addr bus.Address
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{entries: make(map[string]DirEntry)}
}

// Register binds identity to its public key and address, replacing any
// previous entry (peers may re-register after changing address).
func (d *Directory) Register(identity string, pub sig.PublicKey, addr bus.Address) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.entries[identity] = DirEntry{Pub: pub.Clone(), Addr: addr}
}

// Lookup returns the entry for identity.
func (d *Directory) Lookup(identity string) (DirEntry, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	e, ok := d.entries[identity]
	return e, ok
}

// Len reports the number of registered identities.
func (d *Directory) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.entries)
}
