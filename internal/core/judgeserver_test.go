package core

import (
	"strings"
	"testing"

	"whopay/internal/bus"
	"whopay/internal/bus/tcpbus"
	"whopay/internal/sig"
)

// TestRemoteEnrollment: peers enroll with a JudgeServer over the bus and
// transact normally; fairness (opening) still works because the judge
// retains the serial map.
func TestRemoteEnrollment(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	js, err := NewJudgeServer(f.net, "judge", f.judge, f.scheme)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { js.Close() })

	mk := func(id string) *Peer {
		p, err := NewPeer(PeerConfig{
			ID:         id,
			Network:    f.net,
			Addr:       bus.Address("remote-" + id),
			Scheme:     f.scheme,
			Clock:      f.clock.Now,
			Directory:  f.dir,
			BrokerAddr: f.broker.Addr(),
			BrokerPub:  f.broker.PublicKey(),
			JudgeAddr:  js.Addr(),
			CredPool:   2, // force refills
			Prober:     f.net,
			Presence:   f.net,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		return p
	}
	alice := mk("alice")
	bob := mk("bob")

	// Enough payments to exhaust the 2-credential pool and force a
	// refill RPC.
	for i := 0; i < 6; i++ {
		from, to := alice, bob
		if i%2 == 1 {
			from, to = bob, alice
		}
		if _, err := from.Pay(to.Addr(), 1, PolicyI); err != nil {
			t.Fatalf("payment %d: %v", i, err)
		}
	}
	// Fairness: capture one more transfer's group signature and open it.
	id := alice.HeldCoins()[0]
	resp, err := alice.ep.Call(bob.Addr(), OfferRequest{Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	hc, _ := alice.held.Get(id)
	req, err := alice.buildTransfer(hc, bob.Addr(), resp.(OfferResponse))
	if err != nil {
		t.Fatal(err)
	}
	identity, err := f.judge.Open(req.Body.Message(), req.GroupSig)
	if err != nil {
		t.Fatal(err)
	}
	if identity != "alice" {
		t.Fatalf("opened %q", identity)
	}
}

// TestRemoteEnrollmentValidation covers the server's rejection paths.
func TestRemoteEnrollmentValidation(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	js, err := NewJudgeServer(f.net, "judge", f.judge, f.scheme)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { js.Close() })
	ep, err := f.net.Listen("attacker", func(bus.Address, any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	kp, err := f.scheme.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	sign := func(msg []byte) []byte {
		s, err := f.scheme.Sign(kp.Private, msg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	// Happy path first: enroll "victim" under kp.
	req := EnrollRequest{Identity: "victim", PoolSize: 2, Pub: kp.Public}
	req.Sig = sign(enrollMessage("victim", 2, kp.Public))
	if _, err := ep.Call("judge", req); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		msg  any
		want string
	}{
		{"empty identity", EnrollRequest{PoolSize: 2, Pub: kp.Public}, "empty"},
		{"huge pool", func() any {
			r := EnrollRequest{Identity: "x", PoolSize: 100000, Pub: kp.Public}
			r.Sig = sign(enrollMessage("x", 100000, kp.Public))
			return r
		}(), "pool size"},
		{"bad signature", EnrollRequest{Identity: "y", PoolSize: 2, Pub: kp.Public, Sig: []byte("junk")}, "signature"},
		{"identity takeover", func() any {
			other, err := f.scheme.GenerateKey()
			if err != nil {
				t.Fatal(err)
			}
			r := EnrollRequest{Identity: "victim", PoolSize: 2, Pub: other.Public}
			s, err := f.scheme.Sign(other.Private, enrollMessage("victim", 2, other.Public))
			if err != nil {
				t.Fatal(err)
			}
			r.Sig = s
			return r
		}(), "different key"},
		{"refill unknown", RefillRequest{Identity: "ghost", N: 2}, "not enrolled"},
		{"refill bad sig", RefillRequest{Identity: "victim", N: 2, Sig: []byte("junk")}, "signature"},
		{"refill huge", func() any {
			r := RefillRequest{Identity: "victim", N: 100000}
			r.Sig = sign(refillMessage("victim", 100000, nil))
			return r
		}(), "refill size"},
		{"unknown message", 42, "judge got"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ep.Call("judge", tc.msg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error containing %q", err, tc.want)
			}
		})
	}

	// Legit refill still works.
	rr := RefillRequest{Identity: "victim", N: 3, Nonce: []byte("n")}
	rr.Sig = sign(refillMessage("victim", 3, []byte("n")))
	raw, err := ep.Call("judge", rr)
	if err != nil {
		t.Fatal(err)
	}
	if got := raw.(RefillResponse); len(got.Credentials) != 3 {
		t.Fatalf("refill returned %d credentials", len(got.Credentials))
	}
}

// TestRemoteEnrollmentOverTCP: the full multi-process shape — judge,
// broker and peers all on real sockets; the only shared object is the
// directory.
func TestRemoteEnrollmentOverTCP(t *testing.T) {
	registerOnce.Do(RegisterWireTypes)
	network := tcpbus.New()
	scheme := sig.ECDSA{}
	dir := NewDirectory()
	judge, err := NewJudge(scheme)
	if err != nil {
		t.Fatal(err)
	}
	js, err := NewJudgeServer(network, "127.0.0.1:0", judge, scheme)
	if err != nil {
		t.Fatal(err)
	}
	defer js.Close()
	broker, err := NewBroker(BrokerConfig{
		Network: network, Addr: "127.0.0.1:0", Scheme: scheme,
		Directory: dir, GroupPub: judge.GroupPublicKey(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()

	mk := func(id string) *Peer {
		p, err := NewPeer(PeerConfig{
			ID: id, Network: network, Addr: "127.0.0.1:0", Scheme: scheme,
			Directory: dir, BrokerAddr: broker.Addr(), BrokerPub: broker.PublicKey(),
			JudgeAddr: js.Addr(), CredPool: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		return p
	}
	u := mk("u")
	v := mk("v")
	id, err := u.Purchase(2, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatal(err)
	}
	if err := v.Deposit(id, "v-ref"); err != nil {
		t.Fatal(err)
	}
	if broker.Balance("v-ref") != 2 {
		t.Fatalf("balance = %d", broker.Balance("v-ref"))
	}
}
