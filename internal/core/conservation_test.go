package core

import (
	"fmt"
	mrand "math/rand"
	"testing"
	"time"

	"whopay/internal/coin"
)

// TestValueConservationFuzz drives a random mix of operations — payments
// under every policy, renewals, deposits, churn — and then checks the
// system's fundamental accounting invariant: every unit the broker ever
// minted is either redeemed or sitting in exactly one wallet. Double
// spending, lost deliveries, or bookkeeping bugs all violate it.
func TestValueConservationFuzz(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fuzzOnce(t, seed)
		})
	}
}

func fuzzOnce(t *testing.T, seed int64) {
	f := newFixture(t, fixtureOpts{detection: true, syncMode: SyncLazy})
	const n = 6
	peers := make([]*Peer, n)
	online := make([]bool, n)
	for i := range peers {
		peers[i] = f.addPeer(fmt.Sprintf("fz%d", i), nil)
		online[i] = true
	}
	rng := mrand.New(mrand.NewSource(seed))
	policies := []Policy{PolicyI, PolicyIIa, PolicyIIb, PolicyIII}

	const steps = 300
	payments, failures := 0, 0
	for s := 0; s < steps; s++ {
		f.clock.Advance(time.Duration(rng.Intn(3600)) * time.Second)
		switch rng.Intn(10) {
		case 0: // churn
			i := rng.Intn(n)
			if online[i] {
				peers[i].GoOffline()
				online[i] = false
			} else {
				if err := peers[i].GoOnline(); err != nil {
					t.Fatal(err)
				}
				online[i] = true
			}
		case 1: // renewal of a random held coin
			i := rng.Intn(n)
			if !online[i] {
				continue
			}
			held := peers[i].HeldCoins()
			if len(held) == 0 {
				continue
			}
			// Errors are fine (owner offline and broker path also
			// races churn); conservation must hold regardless.
			_, _ = peers[i].Renew(held[rng.Intn(len(held))])
		case 2: // deposit a random held coin
			i := rng.Intn(n)
			if !online[i] {
				continue
			}
			held := peers[i].HeldCoins()
			if len(held) == 0 {
				continue
			}
			_ = peers[i].Deposit(held[rng.Intn(len(held))], fmt.Sprintf("fz%d", i))
		default: // payment
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j || !online[i] || !online[j] {
				continue
			}
			if _, err := peers[i].Pay(peers[j].Addr(), 1, policies[rng.Intn(len(policies))]); err != nil {
				failures++
			} else {
				payments++
			}
		}
	}
	if payments == 0 {
		t.Fatal("fuzz made no payments")
	}

	// Conservation: minted == redeemed + circulating.
	minted := f.broker.IssuedValue()
	redeemed := f.broker.DepositedValue()
	var circulating int64
	for _, p := range peers {
		circulating += p.HeldValue()
		p.owned.Range(func(_ coin.ID, oc *ownedCoin) bool {
			if oc.selfHeld {
				circulating += oc.c.Value
			}
			return true
		})
	}
	if minted != redeemed+circulating {
		t.Fatalf("value leak: minted %d != redeemed %d + circulating %d (payments=%d failures=%d)",
			minted, redeemed, circulating, payments, failures)
	}
	// And nobody was framed: no fraud cases in an honest run.
	for _, c := range f.broker.FraudCases() {
		if c.Kind == "owner-fraud" || c.Punished != "" {
			t.Fatalf("honest fuzz produced punishment: %+v", c)
		}
	}
}
