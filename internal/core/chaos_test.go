package core

import (
	"errors"
	"fmt"
	mrand "math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"whopay/internal/bus"
	"whopay/internal/bus/faultbus"
	"whopay/internal/coin"
	"whopay/internal/payword"
)

// The chaos suite runs full coin lifecycles — purchase, issue, transfer,
// renewal, downtime fallback, deposit — under a randomized fault schedule
// (message drops on either side, duplicate delivery, added latency, flapping
// and offline endpoints) and asserts the protocol's safety invariants:
//
//  1. Value conservation: every minted coin is redeemed exactly once, except
//     coins whose mint confirmation was lost before the buyer learned the
//     coin existed (accounted as "ghost mints" — the buyer holds no key
//     material, so the value is provably unredeemable, not double-spent).
//  2. No accepted double spend: redeemed value never exceeds minted value,
//     and duplicate deliveries/deposits surface as rejected double-deposit
//     cases, never as credit.
//  3. Faults never punish honest parties: no "owner-fraud" verdicts, nobody
//     frozen. (Lost replies can make two parties hold the same coin; the
//     broker's first-deposit-wins plus escrowed evidence absorbs that.)
//  4. No coin is stuck: after the network heals, a deterministic recovery
//     sweep (deposit everything, pull missed bindings from the public list,
//     issue leftover self-held coins) redeems all non-ghost value.
//
// Every run is reproducible from its seed: the driver is sequential, peers
// draw protocol randomness from per-peer seeded sources (fixture), and the
// fault schedule comes from the faultbus's seeded generator. A failing run
// prints its seed; re-run that one scenario alone with
// WHOPAY_CHAOS_SEED=<seed> go test -run '<Test>/env'. Setting the env seed
// also fans the sweep's other subtests out to derived seeds (env seed
// hashed with the subtest name), so one env value explores fresh,
// individually reproducible schedules.

// chaosFaults is the fault profile every link suffers during the chaos
// phase. Rates are high enough that a ~70-round run injects dozens of
// faults, low enough that most lifecycles complete and exercise the
// downstream protocol too.
var chaosFaults = faultbus.Faults{
	DropRequest: 0.08,
	DropReply:   0.08,
	Duplicate:   0.06,
	LatencyMin:  20 * time.Microsecond,
	LatencyMax:  120 * time.Microsecond,
}

const (
	chaosPeers  = 4
	chaosRounds = 70
)

// chaosSummary aggregates the observable outcome of one run. Two runs with
// the same seed must produce identical summaries (the reproducibility test
// compares them); per-link stats and coin IDs are process-dependent (Null
// scheme keys are process-globally sequenced) and deliberately excluded.
type chaosSummary struct {
	Issued         int64
	Deposited      int64
	GhostMinted    int64
	Balances       int64
	DoubleDeposits int
	Faults         faultbus.LinkStats
	Retries        int64
}

type chaosWorld struct {
	t     *testing.T
	seed  int64
	f     *fixture
	fb    *faultbus.Network
	rng   *mrand.Rand
	peers []*Peer

	offline map[int]bool
	flapped map[int]bool
	// quarantined coins had a transfer/issue fail ambiguously: the payee
	// may hold a delivery whose confirmation was lost. Touching such a
	// coin again toward a DIFFERENT payee could make an honest owner sign
	// two bindings for the same sequence number — indistinguishable from
	// owner fraud. The driver therefore retries only toward the same
	// payee and otherwise parks the coin until the recovery sweep.
	quarantined map[coin.ID]bool
	// owned tracks each peer's purchases in order, because OwnedCoins()
	// iterates a map and coin IDs are not comparable across runs — the
	// sweep must walk coins in a seed-stable order.
	owned       [][]coin.ID
	ghostMinted int64

	// channels tracks the micropayment channels the channel-chaos schedule
	// opened; channelPaysOK counts payments that landed, so a vacuous
	// schedule is detectable.
	channels      []*chaosChannel
	channelPaysOK int
}

// chaosChannel is one tracked micropayment channel in the channel-chaos
// schedule. dead marks windows the protocol closed underneath us (TTL,
// exhaustion, or a vendor-side close we learned about through an error).
type chaosChannel struct {
	payer, vendor int
	root          payword.Word
	dead          bool
}

func newChaosWorld(t *testing.T, seed int64, retry *bus.RetryPolicy, batch *DepositBatchConfig) *chaosWorld {
	t.Helper()
	f := newFixture(t, fixtureOpts{detection: true, retry: retry, depositBatch: batch})
	w := &chaosWorld{
		t:           t,
		seed:        seed,
		f:           f,
		fb:          faultbus.New(f.net, seed),
		rng:         mrand.New(mrand.NewSource(seed)),
		offline:     make(map[int]bool),
		flapped:     make(map[int]bool),
		quarantined: make(map[coin.ID]bool),
		owned:       make([][]coin.ID, chaosPeers),
	}
	// Peers listen through the fault injector; the broker and DHT stay on
	// the reliable inner bus (they are the paper's managed infrastructure
	// — faults still hit every peer→broker and peer→DHT call, because
	// injection is caller-side).
	f.netAny = w.fb
	for i := 0; i < chaosPeers; i++ {
		w.peers = append(w.peers, f.addPeer(fmt.Sprintf("chaos-%d-%d", seed, i), nil))
	}
	return w
}

// purchase buys one coin for peer i, attributing lost-confirmation mints to
// the ghost account. The driver is the broker's only client, so the
// issued-value delta around a failed call is exactly what that call minted.
func (w *chaosWorld) purchase(i int) {
	before := w.f.broker.IssuedValue()
	id, err := w.peers[i].Purchase(1, false)
	if err != nil {
		w.ghostMinted += w.f.broker.IssuedValue() - before
		return
	}
	w.owned[i] = append(w.owned[i], id)
}

// pickHeld returns peer i's oldest non-quarantined held coin.
func (w *chaosWorld) pickHeld(i int) (coin.ID, bool) {
	for _, id := range w.peers[i].HeldCoins() {
		if !w.quarantined[id] {
			return id, true
		}
	}
	return "", false
}

// pickSelfOwned returns peer i's first still-self-held tracked purchase.
func (w *chaosWorld) pickSelfOwned(i int) (coin.ID, bool) {
	self := make(map[coin.ID]bool)
	for _, id := range w.peers[i].SelfHeldCoins() {
		self[id] = true
	}
	for _, id := range w.owned[i] {
		if self[id] && !w.quarantined[id] {
			return id, true
		}
	}
	return "", false
}

// onlineIdx lists indices of peers currently online, ascending.
func (w *chaosWorld) onlineIdx() []int {
	var out []int
	for i := range w.peers {
		if !w.offline[i] {
			out = append(out, i)
		}
	}
	return out
}

// transferOnce mirrors what the paper's payers do: try the owner, fall back
// to the broker's downtime path on a transport failure.
func transferOnce(p *Peer, payee bus.Address, id coin.ID) error {
	err := p.TransferTo(payee, id)
	if err != nil && isUnreachable(err) {
		err = p.TransferViaBroker(payee, id)
	}
	return err
}

// transfer moves one held coin from peer i to a fixed payee, retrying a few
// times toward the SAME payee (re-delivery overwrites any ghost state there)
// and quarantining the coin if the outcome stays ambiguous.
func (w *chaosWorld) transfer(i, j int) {
	id, ok := w.pickHeld(i)
	if !ok {
		w.purchase(i)
		return
	}
	payee := w.peers[j].Addr()
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if err = transferOnce(w.peers[i], payee, id); err == nil {
			return
		}
	}
	w.quarantined[id] = true
}

// issue spends one of peer i's self-held coins toward a fixed payee, under
// the same same-payee retry discipline as transfer.
func (w *chaosWorld) issue(i, j int) {
	id, ok := w.pickSelfOwned(i)
	if !ok {
		w.purchase(i)
		return
	}
	payee := w.peers[j].Addr()
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if err = w.peers[i].IssueTo(payee, id); err == nil {
			return
		}
	}
	w.quarantined[id] = true
}

// chaosPhase runs the randomized schedule. All randomness comes from w.rng
// and the faultbus's seeded generator, and the driver is single-threaded, so
// the whole phase replays exactly from the seed.
func (w *chaosWorld) chaosPhase() {
	w.fb.SetDefaults(chaosFaults)
	for round := 0; round < chaosRounds; round++ {
		online := w.onlineIdx()
		r := w.rng.Intn(100)
		switch {
		case r < 40: // transfer between two online peers
			if len(online) < 2 {
				break
			}
			i := online[w.rng.Intn(len(online))]
			j := online[w.rng.Intn(len(online))]
			if i == j {
				break
			}
			w.transfer(i, j)
		case r < 55: // renewal, owner-or-broker
			i := online[w.rng.Intn(len(online))]
			if id, ok := w.pickHeld(i); ok {
				_, _ = w.peers[i].Renew(id)
			}
		case r < 65: // issue a self-held coin
			if len(online) < 2 {
				break
			}
			i := online[w.rng.Intn(len(online))]
			j := online[w.rng.Intn(len(online))]
			if i == j {
				break
			}
			w.issue(i, j)
		case r < 75: // purchase
			i := online[w.rng.Intn(len(online))]
			w.purchase(i)
		case r < 83: // deposit mid-chaos
			i := online[w.rng.Intn(len(online))]
			if id, ok := w.pickHeld(i); ok {
				_ = w.peers[i].Deposit(id, w.peers[i].ID())
			}
		case r < 92: // flap toggle: the endpoint goes intermittent
			k := w.rng.Intn(len(w.peers))
			if w.flapped[k] {
				w.fb.SetFlap(w.peers[k].Addr(), 0)
				delete(w.flapped, k)
			} else {
				w.fb.SetFlap(w.peers[k].Addr(), 0.4)
				w.flapped[k] = true
			}
		default: // downtime proper: a peer leaves or rejoins
			k := w.rng.Intn(len(w.peers))
			if w.offline[k] {
				_ = w.peers[k].GoOnline() // sync may fail under faults
				delete(w.offline, k)
			} else if len(online) > 2 {
				w.peers[k].GoOffline()
				w.offline[k] = true
			}
		}
	}
}

// heldAnywhere snapshots every coin currently in any peer's held wallet.
func (w *chaosWorld) heldAnywhere() map[coin.ID]bool {
	m := make(map[coin.ID]bool)
	for _, p := range w.peers {
		for _, id := range p.HeldCoins() {
			m[id] = true
		}
	}
	return m
}

// channelOp runs one payer-side channel operation under settlement-coin
// accounting. Channel settlements purchase WhoPay coins inside the peer
// layer, so a failed op can leave a freshly minted coin in one of three
// places: self-held by the payer (IssueTo failed cleanly — track it so the
// sweep redeems it), held by the vendor (the close reply was lost — the
// vendor's own sweep redeems it), or in no wallet at all (the mint
// confirmation was lost — a ghost, provably unredeemable).
func (w *chaosWorld) channelOp(payer int, op func() error) {
	before := w.f.broker.IssuedValue()
	selfBefore := make(map[coin.ID]bool)
	for _, id := range w.peers[payer].SelfHeldCoins() {
		selfBefore[id] = true
	}
	heldBefore := w.heldAnywhere()
	err := op()
	delta := w.f.broker.IssuedValue() - before
	if err == nil || delta <= 0 {
		return
	}
	var newSelf []coin.ID
	for _, id := range w.peers[payer].SelfHeldCoins() {
		if !selfBefore[id] {
			newSelf = append(newSelf, id)
		}
	}
	if len(newSelf) > 0 {
		// Sorted before tracking: wallet iteration order is a map's, and
		// the sweep must walk coins in a seed-stable order.
		sort.Slice(newSelf, func(a, b int) bool { return newSelf[a] < newSelf[b] })
		w.owned[payer] = append(w.owned[payer], newSelf...)
		return
	}
	for id := range w.heldAnywhere() {
		if !heldBefore[id] {
			return // delivered to the vendor; its held-coin sweep redeems it
		}
	}
	w.ghostMinted += delta
}

// openChaosChannel opens a tracked channel from peer i to peer j. Opening
// mints nothing, so a failed open is just a lost window — no accounting.
func (w *chaosWorld) openChaosChannel(i, j int) {
	root, err := w.peers[i].OpenChannel(w.peers[j].Addr(), ChannelOptions{
		Capacity:        12,
		SettleThreshold: 5,
	})
	if err != nil {
		return
	}
	w.channels = append(w.channels, &chaosChannel{payer: i, vendor: j, root: root})
}

// channelPayOp streams one payment down a channel. A window the protocol
// closed underneath us (TTL, exhaustion, vendor-side close) is marked dead —
// the internal final settlement already ran, and its coin is accounted like
// any other settlement.
func (w *chaosWorld) channelPayOp(c *chaosChannel) {
	w.channelOp(c.payer, func() error {
		_, err := w.peers[c.payer].ChannelPay(c.root)
		if err == nil {
			w.channelPaysOK++
			return nil
		}
		if errors.Is(err, ErrChannelClosed) || errors.Is(err, ErrNoChannel) {
			c.dead = true
			return nil
		}
		return err
	})
}

// channelSettleOp settles a channel's balance mid-chaos without closing it.
func (w *chaosWorld) channelSettleOp(c *chaosChannel) {
	w.channelOp(c.payer, func() error {
		_, err := w.peers[c.payer].SettleChannel(c.root)
		if errors.Is(err, ErrChannelClosed) || errors.Is(err, ErrNoChannel) {
			c.dead = true
			return nil
		}
		return err
	})
}

// liveChannels lists tracked channels whose payer is currently online.
func (w *chaosWorld) liveChannels() []*chaosChannel {
	var out []*chaosChannel
	for _, c := range w.channels {
		if !c.dead && !w.offline[c.payer] {
			out = append(out, c)
		}
	}
	return out
}

// chaosChannelPhase is the channel variant of the chaos schedule: payword
// streams and window settlements dominate, with plain coin traffic, flap
// toggles, and downtime mixed in so channels and the base protocol stress
// each other.
func (w *chaosWorld) chaosChannelPhase() {
	w.fb.SetDefaults(chaosFaults)
	for round := 0; round < chaosRounds; round++ {
		online := w.onlineIdx()
		if len(online) == 0 {
			continue
		}
		r := w.rng.Intn(100)
		switch {
		case r < 35: // channel pay
			cs := w.liveChannels()
			if len(cs) == 0 {
				break
			}
			w.channelPayOp(cs[w.rng.Intn(len(cs))])
		case r < 45: // mid-window settle
			cs := w.liveChannels()
			if len(cs) == 0 {
				break
			}
			w.channelSettleOp(cs[w.rng.Intn(len(cs))])
		case r < 55: // open a fresh window
			if len(online) < 2 {
				break
			}
			i := online[w.rng.Intn(len(online))]
			j := online[w.rng.Intn(len(online))]
			if i == j {
				break
			}
			w.openChaosChannel(i, j)
		case r < 65: // coin transfer alongside the channels
			if len(online) < 2 {
				break
			}
			i := online[w.rng.Intn(len(online))]
			j := online[w.rng.Intn(len(online))]
			if i == j {
				break
			}
			w.transfer(i, j)
		case r < 73: // purchase
			w.purchase(online[w.rng.Intn(len(online))])
		case r < 81: // deposit mid-chaos (through the batching stage)
			i := online[w.rng.Intn(len(online))]
			if id, ok := w.pickHeld(i); ok {
				_ = w.peers[i].Deposit(id, w.peers[i].ID())
			}
		case r < 91: // flap toggle
			k := w.rng.Intn(len(w.peers))
			if w.flapped[k] {
				w.fb.SetFlap(w.peers[k].Addr(), 0)
				delete(w.flapped, k)
			} else {
				w.fb.SetFlap(w.peers[k].Addr(), 0.4)
				w.flapped[k] = true
			}
		default: // downtime toggle
			k := w.rng.Intn(len(w.peers))
			if w.offline[k] {
				_ = w.peers[k].GoOnline()
				delete(w.offline, k)
			} else if len(online) > 2 {
				w.peers[k].GoOffline()
				w.offline[k] = true
			}
		}
	}
}

// sweepDeposit redeems one held coin after healing, pulling a missed
// binding from the public binding list when the broker reports ours stale
// (a downtime renewal whose confirmation and notification were both lost).
func (w *chaosWorld) sweepDeposit(p *Peer, id coin.ID) {
	err := p.Deposit(id, p.ID())
	if err == nil || errors.Is(err, ErrAlreadyDeposited) {
		return
	}
	if errors.Is(err, ErrStaleBinding) {
		_ = p.RecoverHeldBinding(id)
		_ = p.Deposit(id, p.ID())
	}
	// Remaining failures mean another party holds the authoritative
	// binding for this coin; their deposit settles it. The conservation
	// assertion is the arbiter.
}

// recoveryPhase heals the network and drains every recoverable coin back to
// the broker, in a seed-stable order.
func (w *chaosWorld) recoveryPhase() {
	w.fb.Heal()
	for i := range w.peers {
		if w.offline[i] {
			_ = w.peers[i].GoOnline()
			delete(w.offline, i)
		}
	}

	// Close every channel before the wallet sweep: a final settlement
	// issues its coin into the vendor's held wallet, and the held-coin
	// snapshot below must see it. Windows the protocol already closed
	// answer ErrNoChannel and are skipped.
	for _, c := range w.channels {
		c := c
		w.channelOp(c.payer, func() error {
			_, err := w.peers[c.payer].CloseChannel(c.root)
			if errors.Is(err, ErrNoChannel) || errors.Is(err, ErrChannelClosed) {
				return nil
			}
			return err
		})
	}

	// Snapshot who holds what BEFORE depositing: a self-held coin that
	// some peer also holds was ghost-delivered (the owner's confirmation
	// was lost); re-issuing it would sign a second binding and frame the
	// owner, so the holder's copy is the one that gets redeemed.
	heldByAnyone := make(map[coin.ID]bool)
	for _, p := range w.peers {
		for _, id := range p.HeldCoins() {
			heldByAnyone[id] = true
		}
	}

	for _, p := range w.peers {
		for _, id := range p.HeldCoins() {
			w.sweepDeposit(p, id)
		}
	}

	// Self-held leftovers: issue to self, then redeem. Only coins no one
	// else ever received — see the snapshot above.
	for i, p := range w.peers {
		self := make(map[coin.ID]bool)
		for _, id := range p.SelfHeldCoins() {
			self[id] = true
		}
		for _, id := range w.owned[i] {
			if !self[id] || heldByAnyone[id] {
				continue
			}
			if err := p.IssueTo(p.Addr(), id); err != nil {
				continue
			}
			w.sweepDeposit(p, id)
		}
	}
}

func (w *chaosWorld) summary() chaosSummary {
	sum := chaosSummary{
		Issued:      w.f.broker.IssuedValue(),
		Deposited:   w.f.broker.DepositedValue(),
		GhostMinted: w.ghostMinted,
		Faults:      w.fb.TotalStats(),
	}
	for _, fc := range w.f.broker.FraudCases() {
		if fc.Kind == "double-deposit" {
			sum.DoubleDeposits++
		}
	}
	for _, p := range w.peers {
		sum.Balances += w.f.broker.Balance(p.ID())
		sum.Retries += p.Retries()
	}
	return sum
}

// runChaos executes one full seeded run and returns its summary.
func runChaos(t *testing.T, seed int64, retry *bus.RetryPolicy) chaosSummary {
	t.Helper()
	w := newChaosWorld(t, seed, retry, nil)

	// Quiescent warm-up: seed the economy so transfers dominate early
	// rounds. No faults are configured yet, so these cannot ghost.
	for i := range w.peers {
		w.purchase(i)
		w.purchase(i)
		w.issue(i, (i+1)%chaosPeers)
	}

	w.chaosPhase()
	w.recoveryPhase()

	sum := w.summary()
	assertChaosInvariants(t, seed, w, sum)
	return sum
}

func assertChaosInvariants(t *testing.T, seed int64, w *chaosWorld, sum chaosSummary) {
	t.Helper()
	// The repro recipe is subtest-exact: the printed seed, run as the
	// "env" case of this same top-level test, replays this one scenario
	// without the rest of the sweep (derived seeds included — they were
	// hashed from the env seed once and are ordinary literal seeds here).
	topTest, _, _ := strings.Cut(t.Name(), "/")
	fail := func(format string, args ...any) {
		t.Helper()
		t.Errorf("[chaos seed %d] "+format+
			" — reproduce alone with: WHOPAY_CHAOS_SEED=%d go test -run '%s/env' ./internal/core/",
			append(append([]any{seed}, args...), seed, topTest)...)
	}
	if sum.Deposited != sum.Issued-sum.GhostMinted {
		fail("value not conserved: minted %d, ghost-minted %d, redeemed %d",
			sum.Issued, sum.GhostMinted, sum.Deposited)
	}
	if sum.Deposited > sum.Issued {
		fail("double spend accepted: redeemed %d of %d minted", sum.Deposited, sum.Issued)
	}
	if sum.Balances != sum.Deposited {
		fail("credited balances %d != redeemed value %d", sum.Balances, sum.Deposited)
	}
	for _, fc := range w.f.broker.FraudCases() {
		if fc.Kind == "owner-fraud" || fc.Punished != "" {
			fail("honest party punished: case %+v", fc)
		}
	}
	for _, p := range w.peers {
		if w.f.broker.Frozen(p.ID()) {
			fail("honest peer %s frozen", p.ID())
		}
	}
	if sum.Faults.Injected() == 0 {
		fail("no faults injected — the schedule was vacuous")
	}
	t.Logf("chaos seed %d: minted %d (ghost %d), redeemed %d, faults %+v, double-deposit cases %d, retries %d",
		seed, sum.Issued, sum.GhostMinted, sum.Deposited, sum.Faults, sum.DoubleDeposits, sum.Retries)
}

// chaosCase is one subtest of a chaos sweep: a name and the seed it runs.
type chaosCase struct {
	name string
	seed int64
}

// chaosCases names the sweep's subtest matrix. Without WHOPAY_CHAOS_SEED
// the fixed base seeds run, one subtest each — the suite's green set. With
// it, the "env" case runs the literal environment seed (the reproduction
// path every failure label points at), and each base slot instead derives
// its seed by hashing the env seed with the subtest's full name — one env
// value fans out into fresh schedules, and any failing one is reproducible
// alone: its printed seed, run as the "env" case, replays it exactly.
func chaosCases(t *testing.T, testName string, base []int64) []chaosCase {
	env := os.Getenv("WHOPAY_CHAOS_SEED")
	if env == "" {
		cases := make([]chaosCase, 0, len(base))
		for _, s := range base {
			cases = append(cases, chaosCase{fmt.Sprintf("seed=%d", s), s})
		}
		return cases
	}
	envSeed, err := strconv.ParseInt(env, 10, 64)
	if err != nil {
		t.Fatalf("WHOPAY_CHAOS_SEED=%q: %v", env, err)
	}
	cases := []chaosCase{{"env", envSeed}}
	for i := range base {
		name := fmt.Sprintf("derived-%d", i)
		cases = append(cases, chaosCase{name, deriveSeed(envSeed, testName+"/"+name)})
	}
	return cases
}

// TestChaosLifecycles is the headline chaos run: many seeds, no retry layer
// (every fault surfaces raw), full invariant check per seed.
func TestChaosLifecycles(t *testing.T) {
	for _, c := range chaosCases(t, "TestChaosLifecycles", []int64{1, 2, 3, 4, 5, 6}) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			runChaos(t, c.seed, nil)
		})
	}
}

// TestChaosLifecyclesWithRetries runs the same schedule shape with the
// retry layer enabled: transient faults get absorbed by backoff (the sleep
// is stubbed out — scheduling, not wall-clock, is what's under test) and
// the invariants must hold identically. Protocol rejections must never be
// replayed, or the double-spend counters would light up.
func TestChaosLifecyclesWithRetries(t *testing.T) {
	retry := &bus.RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		Sleep:       func(time.Duration) {},
	}
	var retries int64
	for _, c := range chaosCases(t, "TestChaosLifecyclesWithRetries", []int64{101, 102, 103}) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			retries += runChaos(t, c.seed, retry).Retries
		})
	}
	if retries == 0 {
		t.Error("retry layer absorbed no faults across all seeds — wiring suspect")
	}
}

// runChaosChannels executes one seeded channel-chaos run: micropayment
// channels on the peers AND deposit batching on the broker, under the same
// drop/duplicate/flap schedule as the base suite. The invariants are
// identical — conservation, no accepted double spend, no honest party
// punished — because channels must not change what the ledger can do, only
// how often it is touched.
func runChaosChannels(t *testing.T, seed int64) chaosSummary {
	t.Helper()
	w := newChaosWorld(t, seed, nil, &DepositBatchConfig{
		MaxBatch:  8,
		MaxLinger: time.Millisecond,
	})

	// Quiescent warm-up: seed coins and one channel per peer before any
	// faults are configured, so the early rounds have windows to stream on.
	for i := range w.peers {
		w.purchase(i)
		w.purchase(i)
		w.openChaosChannel(i, (i+1)%chaosPeers)
	}

	w.chaosChannelPhase()
	w.recoveryPhase()

	sum := w.summary()
	assertChaosInvariants(t, seed, w, sum)
	if w.channelPaysOK == 0 {
		t.Errorf("[chaos seed %d] no channel payments landed — the channel schedule was vacuous", seed)
	}
	t.Logf("chaos seed %d: %d channel payments landed across %d windows", seed, w.channelPaysOK, len(w.channels))
	return sum
}

// TestChaosChannelLifecycles is the tentpole's chaos gate: channels and
// broker-side deposit batching enabled together under message drops and
// duplicates, full invariant check per seed.
func TestChaosChannelLifecycles(t *testing.T) {
	for _, c := range chaosCases(t, "TestChaosChannelLifecycles", []int64{21, 22, 23, 24}) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			runChaosChannels(t, c.seed)
		})
	}
}

// TestChaosSeedReproducibility replays one seed and demands an identical
// summary: same mints, same redemptions, same fault schedule. This is what
// makes a failing chaos run debuggable.
func TestChaosSeedReproducibility(t *testing.T) {
	a := runChaos(t, 7, nil)
	b := runChaos(t, 7, nil)
	if a != b {
		t.Fatalf("same seed, different runs:\n  first  %+v\n  second %+v", a, b)
	}
}
