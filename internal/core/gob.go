package core

import (
	"whopay/internal/bus/tcpbus"
	"whopay/internal/dht"
	"whopay/internal/indirect"
)

// RegisterWireTypes registers every protocol message with the TCP
// transport: the fixed-layout binary codecs that framed connections use,
// plus the gob registrations that remain the negotiated fallback for
// mixed-version interop. Call once before using tcpbus endpoints; the
// in-memory bus does not need it.
func RegisterWireTypes() {
	registerWireCodecs()
	for _, v := range []any{
		PurchaseRequest{}, PurchaseResponse{},
		BatchPurchaseRequest{}, BatchPurchaseResponse{},
		EnrollRequest{}, EnrollResponse{}, RefillRequest{}, RefillResponse{},
		OfferRequest{}, OfferResponse{},
		DeliverRequest{}, DeliverResponse{},
		TransferRequest{}, TransferResponse{},
		RenewRequest{}, RenewResponse{},
		DepositRequest{}, DepositResponse{},
		BatchDepositRequest{}, BatchDepositResponse{},
		SettleRequest{}, SettleResponse{},
		LayeredDepositRequest{},
		ChannelOpenRequest{}, ChannelOpenResponse{},
		ChannelPayRequest{}, ChannelPayResponse{},
		ChannelCloseRequest{}, ChannelCloseResponse{},
		SyncRequest{}, SyncResponse{},
		FraudReport{}, FraudResponse{},
		DisputeRequest{}, DisputeResponse{},
		RelinquishProof{},
		dht.PutMsg{}, dht.GetMsg{}, dht.GetResp{},
		dht.FindMsg{}, dht.FindResp{},
		dht.SubMsg{}, dht.Notify{}, dht.Ack{},
		dht.QuorumPutMsg{}, dht.QuorumAck{},
		dht.DigestMsg{}, dht.DigestResp{},
		dht.SweepMsg{}, dht.SweepResp{},
		dht.SweepKeysMsg{}, dht.SweepKeysResp{},
		dht.LeaseGetMsg{}, dht.LeaseResp{},
		indirect.RegisterMsg{}, indirect.ForwardMsg{}, indirect.Ack{},
	} {
		tcpbus.RegisterType(v)
	}
}
