package core

import (
	"reflect"
	"testing"

	"whopay/internal/bus/tcpbus"
	"whopay/internal/sig"
	"whopay/internal/wire"
)

// filledTransferRequest builds a representative hot-path message: the
// paper's per-hop transfer carries a body, a holder signature, a group
// signature, and usually a presented binding.
func filledTransferRequest(tb testing.TB) TransferRequest {
	tb.Helper()
	registerOnce.Do(RegisterWireTypes)
	var msg TransferRequest
	ctr := 0
	fillGob(reflect.ValueOf(&msg).Elem(), &ctr, 0)
	return msg
}

// BenchmarkWireCodecTransferRequest compares the hand-rolled codec against
// gob for the message every transfer hop sends. The gob side pays encoder
// construction per message because the transport historically opened a
// fresh stream per call — that is exactly the cost the codec removes.
func BenchmarkWireCodecTransferRequest(b *testing.B) {
	msg := filledTransferRequest(b)
	e, ok := wire.ByValue(msg)
	if !ok {
		b.Fatal("no codec registered for TransferRequest")
	}

	b.Run("wire-encode", func(b *testing.B) {
		wire.PutBuf(wire.GetBuf())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf, err := e.Enc(wire.GetBuf(), msg)
			if err != nil {
				b.Fatal(err)
			}
			wire.PutBuf(buf)
		}
	})
	b.Run("gob-encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := gobEnc(msg); err != nil {
				b.Fatal(err)
			}
		}
	})

	enc, err := e.Enc(nil, msg)
	if err != nil {
		b.Fatal(err)
	}
	gobBytes, err := gobEnc(msg)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("encoded size: wire=%dB gob=%dB", len(enc), len(gobBytes))

	b.Run("wire-decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := wire.Decode(e.Tag, enc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gob-decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var out TransferRequest
			if err := gobDec(gobBytes, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTransferWhoPayTCP measures the same owner-serviced transfer as
// BenchmarkTransferWhoPay, but over real TCP sockets — once on the framed
// binary wire and once forced onto the legacy one-connection-per-call gob
// wire. The delta is what the codec + multiplexed transport buy per hop.
func BenchmarkTransferWhoPayTCP(b *testing.B) {
	run := func(b *testing.B, opts ...tcpbus.Option) {
		registerOnce.Do(RegisterWireTypes)
		network := tcpbus.New(opts...)
		scheme := sig.ECDSA{}
		dir := NewDirectory()
		judge, err := NewJudge(scheme)
		if err != nil {
			b.Fatal(err)
		}
		broker, err := NewBroker(BrokerConfig{
			Network:   network,
			Addr:      "127.0.0.1:0",
			Scheme:    scheme,
			Directory: dir,
			GroupPub:  judge.GroupPublicKey(),
		})
		if err != nil {
			b.Fatal(err)
		}
		defer broker.Close()

		mk := func(id string) *Peer {
			p, err := NewPeer(PeerConfig{
				ID:         id,
				Network:    network,
				Addr:       "127.0.0.1:0",
				Scheme:     scheme,
				Directory:  dir,
				BrokerAddr: brokerBoundAddr(broker),
				BrokerPub:  broker.PublicKey(),
				Judge:      judge,
				CredPool:   b.N + 64,
			})
			if err != nil {
				b.Fatal(err)
			}
			dir.Register(id, p.PublicKey(), p.ep.Addr())
			return p
		}
		u, v, w := mk("u"), mk("v"), mk("w")
		defer u.Close()
		defer v.Close()
		defer w.Close()

		id, err := u.Purchase(1, false)
		if err != nil {
			b.Fatal(err)
		}
		if err := u.IssueTo(v.ep.Addr(), id); err != nil {
			b.Fatal(err)
		}
		from, to := v, w
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := from.TransferTo(to.ep.Addr(), id); err != nil {
				b.Fatal(err)
			}
			from, to = to, from
		}
	}

	b.Run("framed", func(b *testing.B) { run(b) })
	b.Run("gob", func(b *testing.B) { run(b, tcpbus.WithGobWire()) })
}
