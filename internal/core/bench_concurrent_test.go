package core

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"whopay/internal/coin"
)

// Concurrency benchmarks for the sharded state store. Run with a -cpu
// sweep (see `make bench-concurrent`) to see throughput scale with the
// number of client goroutines: under the old monolithic broker/peer
// mutexes these flatlined, because every purchase and every transfer
// serialized on one lock.
//
// The memory bus runs handlers on the caller's goroutine, so parallel
// benchmark workers really do execute broker/owner code concurrently.

// BenchmarkBrokerConcurrentPurchase hammers one broker with purchases
// from one peer per worker. The broker-side work (ledger debit, coin
// insert, purchase records) is spread across store shards; only workers
// colliding on a shard serialize.
func BenchmarkBrokerConcurrentPurchase(b *testing.B) {
	f := newFixture(b, fixtureOpts{})
	peers := make([]*Peer, runtime.GOMAXPROCS(0))
	for i := range peers {
		peers[i] = f.addPeer(fmt.Sprintf("bench-p%d", i), nil)
	}
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		p := peers[int(next.Add(1)-1)%len(peers)]
		for pb.Next() {
			if _, err := p.Purchase(1, false); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkOwnerConcurrentTransfer has ONE owner service transfers of
// many distinct coins at once: each worker owns a lane (two payees
// ping-ponging one coin), and every hop runs the owner's full
// validate→deliver→commit sequence. Per-coin svc locks never contend
// across lanes, so scaling here measures the owner's shared state maps.
func BenchmarkOwnerConcurrentTransfer(b *testing.B) {
	f := newFixture(b, fixtureOpts{})
	owner := f.addPeer("bench-owner", nil)
	type lane struct {
		x, y *Peer
		id   coin.ID
	}
	lanes := make([]lane, runtime.GOMAXPROCS(0))
	for i := range lanes {
		x := f.addPeer(fmt.Sprintf("bench-x%d", i), nil)
		y := f.addPeer(fmt.Sprintf("bench-y%d", i), nil)
		id, err := owner.Purchase(1, false)
		if err != nil {
			b.Fatal(err)
		}
		if err := owner.IssueTo(x.Addr(), id); err != nil {
			b.Fatal(err)
		}
		lanes[i] = lane{x: x, y: y, id: id}
	}
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// RunParallel spawns exactly GOMAXPROCS workers, so each lane
		// has a single goroutine and the swap below is unshared.
		l := &lanes[int(next.Add(1)-1)%len(lanes)]
		for pb.Next() {
			if err := l.x.TransferTo(l.y.Addr(), l.id); err != nil {
				b.Error(err)
				return
			}
			l.x, l.y = l.y, l.x
		}
	})
}
