package core

import (
	"fmt"

	"whopay/internal/groupsig"
	"whopay/internal/sig"
)

// Judge is the trusted fairness authority (paper Section 3.2): it enrolls
// users into the signature group and, when fraud is detected, opens group
// signatures to reveal the signers — and nothing else. The judge never
// participates in payments.
type Judge struct {
	mgr *groupsig.Manager
}

// NewJudge creates a judge managing a fresh group under scheme.
func NewJudge(scheme sig.Scheme) (*Judge, error) {
	mgr, err := groupsig.NewManager(scheme)
	if err != nil {
		return nil, fmt.Errorf("core: creating judge: %w", err)
	}
	return &Judge{mgr: mgr}, nil
}

// GroupPublicKey returns the key every entity uses to verify group
// signatures.
func (j *Judge) GroupPublicKey() sig.PublicKey { return j.mgr.GroupPublicKey() }

// Enroll registers identity and returns its group member key with a
// credential pool of the given size.
func (j *Judge) Enroll(identity string, poolSize int) (*groupsig.MemberKey, error) {
	return j.mgr.Enroll(identity, poolSize)
}

// Open reveals the identity behind a group signature over msg. This is the
// fairness operation: it exposes the one signer under investigation and no
// other transaction.
func (j *Judge) Open(msg []byte, gs groupsig.Signature) (string, error) {
	return j.mgr.Open(msg, gs)
}

// Revoke bars identity from obtaining further signing credentials. It
// returns the serials and one-time public keys of every credential already
// issued to the identity so relying parties can seed their CRLs (see
// Broker.RevokeCredentials and Peer.RevokeCredentials) — the judge itself
// keeps no connection to brokers or peers.
func (j *Judge) Revoke(identity string) (serials []uint64, pubs []sig.PublicKey) {
	return j.mgr.Revoke(identity)
}

// IsRevoked reports whether identity has been revoked.
func (j *Judge) IsRevoked(identity string) bool { return j.mgr.IsRevoked(identity) }

// Escrow splits the judge's master key across a judge panel, k of n to
// recover (paper: Shamir sharing across N judges).
func (j *Judge) Escrow(k, n int) ([]groupsig.KeyShare, error) { return j.mgr.EscrowMasterKey(k, n) }
