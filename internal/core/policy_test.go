package core

import (
	"testing"
)

// TestPayPurchasesWhenBroke: with an empty wallet every policy falls
// through to purchase-and-issue.
func TestPayPurchasesWhenBroke(t *testing.T) {
	for _, policy := range []Policy{PolicyI, PolicyIIa, PolicyIIb, PolicyIII} {
		t.Run(policy.String(), func(t *testing.T) {
			f := newFixture(t, fixtureOpts{})
			payer := f.addPeer("payer", nil)
			payee := f.addPeer("payee", nil)
			f.pay(payer, payee, policy, MethodPurchaseIssue)
			if payee.HeldValue() != 1 {
				t.Fatalf("payee value = %d", payee.HeldValue())
			}
		})
	}
}

// TestPayPrefersTransferOnline: holding a coin with an online owner, every
// policy transfers via the owner first.
func TestPayPrefersTransferOnline(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	owner := f.addPeer("owner", nil)
	payer := f.addPeer("payer", nil)
	payee := f.addPeer("payee", nil)
	id, err := owner.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.IssueTo(payer.Addr(), id); err != nil {
		t.Fatal(err)
	}
	for _, policy := range []Policy{PolicyI, PolicyIIa, PolicyIIb, PolicyIII} {
		// Only the first iteration has the held coin; re-arm by
		// paying it back.
		f.pay(payer, payee, policy, MethodTransferOnline)
		f.pay(payee, payer, PolicyI, MethodTransferOnline)
	}
}

// TestPolicyIUsesBrokerForOfflineCoin: user-centric policy sends offline
// coins through the broker.
func TestPolicyIUsesBrokerForOfflineCoin(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	owner := f.addPeer("owner", nil)
	payer := f.addPeer("payer", nil)
	payee := f.addPeer("payee", nil)
	id, err := owner.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.IssueTo(payer.Addr(), id); err != nil {
		t.Fatal(err)
	}
	owner.GoOffline()
	f.pay(payer, payee, PolicyI, MethodTransferViaBroker)
	if f.broker.Ops().Get(OpDowntimeTransfer) != 1 {
		t.Fatal("broker not involved")
	}
}

// TestPolicyIIIDepositsOfflineCoin: broker-centric policy liquidates the
// offline coin and issues a fresh one — "effectively moves the ownership of
// the coins from an offline peer to an online peer" — instead of a
// downtime transfer.
func TestPolicyIIIDepositsOfflineCoin(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	owner := f.addPeer("owner", nil)
	payer := f.addPeer("payer", nil)
	payee := f.addPeer("payee", nil)
	id, err := owner.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.IssueTo(payer.Addr(), id); err != nil {
		t.Fatal(err)
	}
	owner.GoOffline()
	f.pay(payer, payee, PolicyIII, MethodDepositPurchaseIssue)
	if f.broker.Ops().Get(OpDowntimeTransfer) != 0 {
		t.Fatal("policy III used a downtime transfer")
	}
	if f.broker.Ops().Get(OpDeposit) != 1 {
		t.Fatal("policy III did not deposit the offline coin")
	}
	// The dead coin was liquidated; the payee holds a fresh one owned by
	// the (online) payer.
	if len(payer.HeldCoins()) != 0 {
		t.Fatal("offline coin still held")
	}
	if payee.HeldValue() != 1 {
		t.Fatal("payee not paid")
	}
}

// TestPolicyIIIWithoutOfflineCoinPurchases: with no offline coin to
// liquidate, policy III injects fresh money.
func TestPolicyIIIWithoutOfflineCoinPurchases(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	payer := f.addPeer("payer", nil)
	payee := f.addPeer("payee", nil)
	f.pay(payer, payee, PolicyIII, MethodPurchaseIssue)
}

// TestPolicyIIIDepositLastResort: when the payer is frozen out of
// purchasing, policy III falls back to deposit-purchase... which also
// fails; instead verify the preference order directly plus the happy path
// via issue-existing.
func TestPolicyPreferenceOrders(t *testing.T) {
	cases := map[Policy][]Method{
		PolicyI:   {MethodTransferOnline, MethodTransferViaBroker, MethodIssueExisting, MethodPurchaseIssue},
		PolicyIIa: {MethodTransferOnline, MethodIssueExisting, MethodTransferViaBroker, MethodPurchaseIssue},
		PolicyIIb: {MethodTransferOnline, MethodIssueExisting, MethodPurchaseIssue, MethodTransferViaBroker},
		PolicyIII: {MethodTransferOnline, MethodIssueExisting, MethodDepositPurchaseIssue, MethodPurchaseIssue},
	}
	for policy, want := range cases {
		got := policy.Preferences()
		if len(got) != len(want) {
			t.Fatalf("%v: %v", policy, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v[%d] = %v, want %v", policy, i, got[i], want[i])
			}
		}
	}
}

// TestPolicyIIaPrefersIssueOverBroker: with both a self-held coin and an
// offline held coin, II.a issues instead of using the broker.
func TestPolicyIIaPrefersIssueOverBroker(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	owner := f.addPeer("owner", nil)
	payer := f.addPeer("payer", nil)
	payee := f.addPeer("payee", nil)
	id, err := owner.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.IssueTo(payer.Addr(), id); err != nil {
		t.Fatal(err)
	}
	if _, err := payer.Purchase(1, false); err != nil {
		t.Fatal(err)
	}
	owner.GoOffline()
	f.pay(payer, payee, PolicyIIa, MethodIssueExisting)
	// Policy I would have used the broker instead.
	if f.broker.Ops().Get(OpDowntimeTransfer) != 0 {
		t.Fatal("II.a used the broker")
	}
}

// TestPayValueMatters: a wallet full of 5-coins cannot pay 1.
func TestPayValueMatters(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	owner := f.addPeer("owner", nil)
	payer := f.addPeer("payer", nil)
	payee := f.addPeer("payee", nil)
	id, err := owner.Purchase(5, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.IssueTo(payer.Addr(), id); err != nil {
		t.Fatal(err)
	}
	// Pays 1 by purchasing a fresh unit coin, not with the held 5.
	method, err := payer.Pay(payee.Addr(), 1, PolicyI)
	if err != nil {
		t.Fatal(err)
	}
	if method != MethodPurchaseIssue {
		t.Fatalf("method = %v", method)
	}
	if payer.HeldValue() != 5 {
		t.Fatal("the 5-coin was spent for a 1-payment")
	}
}

// TestPayRejectsBadValue: non-positive payment values fail fast.
func TestPayRejectsBadValue(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	payer := f.addPeer("payer", nil)
	payee := f.addPeer("payee", nil)
	if _, err := payer.Pay(payee.Addr(), 0, PolicyI); err == nil {
		t.Fatal("zero-value pay accepted")
	}
}

// TestPolicyStringers cover the fmt.Stringer implementations.
func TestPolicyStringers(t *testing.T) {
	if PolicyI.String() != "I" || PolicyIII.String() != "III" || Policy(99).String() != "unknown-policy" {
		t.Fatal("policy names")
	}
	if MethodTransferOnline.String() != "transfer-online" || Method(99).String() != "unknown-method" {
		t.Fatal("method names")
	}
	if OpPurchase.String() != "purchases" || Op(99).String() != "unknown-op" {
		t.Fatal("op names")
	}
}
