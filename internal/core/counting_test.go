package core

import (
	"testing"

	"whopay/internal/sig"
)

// TestTransferMicroOpAccounting validates the claim the paper's cost model
// rests on (Section 6.2): "for peers, each transfer involves 1 key pair
// generation, 4 signature generations, 4 signature verifications, 1 group
// signature generation, and 1 group signature verification". Our protocol
// implementation must reproduce exactly that mix (the fourth signature
// generation is the owner's signed publish to the public binding list).
func TestTransferMicroOpAccounting(t *testing.T) {
	f := newFixture(t, fixtureOpts{detection: true})
	var uRec, vRec, wRec sig.Counter
	u := f.addPeer("u", &uRec)
	v := f.addPeer("v", &vRec)
	w := f.addPeer("w", &wRec)
	// Disable the extra detection work that the paper's accounting does
	// not include (watch subscriptions, payee DHT cross-checks) while
	// keeping the owner's publish.
	for _, p := range []*Peer{u, v, w} {
		p.cfg.WatchHeldCoins = false
		p.cfg.CheckPublicBinding = false
	}

	id, err := u.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatal(err)
	}

	base := uRec.Snapshot().Add(vRec.Snapshot()).Add(wRec.Snapshot())
	if err := v.TransferTo(w.Addr(), id); err != nil {
		t.Fatal(err)
	}
	delta := uRec.Snapshot().Add(vRec.Snapshot()).Add(wRec.Snapshot())
	got := sig.Snapshot{
		KeyGens:       delta.KeyGens - base.KeyGens,
		Signs:         delta.Signs - base.Signs,
		Verifies:      delta.Verifies - base.Verifies,
		GroupSigns:    delta.GroupSigns - base.GroupSigns,
		GroupVerifies: delta.GroupVerifies - base.GroupVerifies,
	}
	want := sig.Snapshot{KeyGens: 1, Signs: 4, Verifies: 4, GroupSigns: 1, GroupVerifies: 1}
	if got != want {
		t.Fatalf("transfer micro-ops = %+v, want %+v (the paper's Table 3 accounting)", got, want)
	}
}

// TestPurchaseMicroOpAccounting: purchase is 1 keygen + 1 sign + 1 verify
// on the peer, 1 verify + 1 sign on the broker.
func TestPurchaseMicroOpAccounting(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	var uRec sig.Counter
	u := f.addPeer("u", &uRec)
	if _, err := u.Purchase(1, false); err != nil {
		t.Fatal(err)
	}
	got := uRec.Snapshot()
	want := sig.Snapshot{KeyGens: 1, Signs: 1, Verifies: 1}
	if got != want {
		t.Fatalf("purchase peer micro-ops = %+v, want %+v", got, want)
	}
}

// TestRenewalMicroOpAccounting: a renewal via the owner costs the holder
// 1 sign + 1 group sign + 1 verify, the owner 1 verify + 1 group verify +
// 2 signs (binding + publish).
func TestRenewalMicroOpAccounting(t *testing.T) {
	f := newFixture(t, fixtureOpts{detection: true})
	var uRec, vRec sig.Counter
	u := f.addPeer("u", &uRec)
	v := f.addPeer("v", &vRec)
	for _, p := range []*Peer{u, v} {
		p.cfg.WatchHeldCoins = false
		p.cfg.CheckPublicBinding = false
	}
	id, err := u.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatal(err)
	}
	uBase, vBase := uRec.Snapshot(), vRec.Snapshot()
	if _, err := v.Renew(id); err != nil {
		t.Fatal(err)
	}
	uGot, vGot := uRec.Snapshot(), vRec.Snapshot()
	uDelta := sig.Snapshot{
		Signs:         uGot.Signs - uBase.Signs,
		Verifies:      uGot.Verifies - uBase.Verifies,
		GroupVerifies: uGot.GroupVerifies - uBase.GroupVerifies,
	}
	vDelta := sig.Snapshot{
		Signs:      vGot.Signs - vBase.Signs,
		Verifies:   vGot.Verifies - vBase.Verifies,
		GroupSigns: vGot.GroupSigns - vBase.GroupSigns,
	}
	if (uDelta != sig.Snapshot{Signs: 2, Verifies: 1, GroupVerifies: 1}) {
		t.Fatalf("owner renewal micro-ops = %+v", uDelta)
	}
	if (vDelta != sig.Snapshot{Signs: 1, Verifies: 1, GroupSigns: 1}) {
		t.Fatalf("holder renewal micro-ops = %+v", vDelta)
	}
}

// TestBrokerRecorder: a Recorder wired into the broker attributes downtime
// work to the broker.
func TestBrokerRecorder(t *testing.T) {
	net := newFixture(t, fixtureOpts{})
	_ = net // fixture without recorder exercised elsewhere; build one with.
	var bRec sig.Counter
	f := newFixtureWithBrokerRecorder(t, &bRec)
	u := f.addPeer("u", nil)
	v := f.addPeer("v", nil)
	w := f.addPeer("w", nil)
	id, err := u.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatal(err)
	}
	u.GoOffline()
	base := bRec.Snapshot()
	if err := v.TransferViaBroker(w.Addr(), id); err != nil {
		t.Fatal(err)
	}
	got := bRec.Snapshot()
	if got.Signs-base.Signs == 0 || got.Verifies-base.Verifies == 0 || got.GroupVerifies-base.GroupVerifies != 1 {
		t.Fatalf("broker micro-ops delta: %+v → %+v", base, got)
	}
}

// newFixtureWithBrokerRecorder builds a minimal world whose broker carries
// a Recorder.
func newFixtureWithBrokerRecorder(t *testing.T, rec sig.Recorder) *fixture {
	t.Helper()
	f := newFixture(t, fixtureOpts{})
	broker, err := NewBroker(BrokerConfig{
		Network:   f.net,
		Addr:      "broker2",
		Scheme:    f.scheme,
		Recorder:  rec,
		Clock:     f.clock.Now,
		Directory: f.dir,
		GroupPub:  f.judge.GroupPublicKey(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { broker.Close() })
	f.broker = broker
	return f
}
