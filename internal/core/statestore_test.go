package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"whopay/internal/coin"
)

// TestBrokerStateHammer drives the full coin lifecycle — purchase, issue,
// transfer (owner and broker paths), deposit, sync — from many goroutines
// against ONE broker. Each lane's coins are disjoint, so any failure is
// the broker's shared state racing, not protocol-level coin contention.
// Run under -race this validates the sharded store's locking; the final
// checks validate accounting (conservation) and service-lock hygiene
// (deposited coins must not leak svc entries).
func TestBrokerStateHammer(t *testing.T) {
	f := newFixture(t, fixtureOpts{syncMode: SyncLazy})
	const lanes = 8
	const iters = 25
	type lane struct{ u, v, w *Peer }
	ls := make([]lane, lanes)
	for i := range ls {
		ls[i] = lane{
			u: f.addPeer(fmt.Sprintf("hm-u%d", i), nil),
			v: f.addPeer(fmt.Sprintf("hm-v%d", i), nil),
			w: f.addPeer(fmt.Sprintf("hm-w%d", i), nil),
		}
	}

	var deposited sync.Map // coin.ID -> struct{}
	errs := make(chan error, lanes)
	var wg sync.WaitGroup
	for i := range ls {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l := ls[i]
			ref := fmt.Sprintf("hm-w%d", i)
			fail := func(step string, err error) {
				errs <- fmt.Errorf("lane %d %s: %w", i, step, err)
			}
			for k := 0; k < iters; k++ {
				id, err := l.u.Purchase(1, false)
				if err != nil {
					fail("purchase", err)
					return
				}
				if err := l.u.IssueTo(l.v.Addr(), id); err != nil {
					fail("issue", err)
					return
				}
				if k%2 == 0 {
					err = l.v.TransferTo(l.w.Addr(), id)
				} else {
					err = l.v.TransferViaBroker(l.w.Addr(), id)
				}
				if err != nil {
					fail("transfer", err)
					return
				}
				if k%3 != 0 {
					if err := l.w.Deposit(id, ref); err != nil {
						fail("deposit", err)
						return
					}
					deposited.Store(id, struct{}{})
				}
				if k%5 == 0 {
					if err := l.u.Sync(); err != nil {
						fail("sync", err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Conservation: every minted unit is redeemed or in exactly one wallet.
	var circulating int64
	for _, l := range ls {
		for _, p := range []*Peer{l.u, l.v, l.w} {
			circulating += p.HeldValue()
			p.owned.Range(func(_ coin.ID, oc *ownedCoin) bool {
				oc.mu.Lock()
				if oc.selfHeld {
					circulating += oc.c.Value
				}
				oc.mu.Unlock()
				return true
			})
		}
	}
	minted, redeemed := f.broker.IssuedValue(), f.broker.DepositedValue()
	if minted != redeemed+circulating {
		t.Fatalf("value leak under hammer: minted %d != redeemed %d + circulating %d",
			minted, redeemed, circulating)
	}

	// Service-lock hygiene: deposit evicts the per-coin lock inline, so no
	// redeemed coin may still pin an svc entry.
	deposited.Range(func(k, _ any) bool {
		if _, ok := f.broker.svc.Get(k.(coin.ID)); ok {
			t.Errorf("deposited coin retains a service lock")
		}
		return true
	})
}

// TestServiceLockEviction pins down the per-coin service-lock lifecycle:
// created on first broker servicing, evicted inline on deposit, pruned in
// bulk once the downtime binding expires, and recreated on demand if the
// coin is serviced again — expiry bounds broker state, it does not
// confiscate.
func TestServiceLockEviction(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	u := f.addPeer("ev-u", nil)
	v := f.addPeer("ev-v", nil)

	ids := make([]coin.ID, 3)
	for i := range ids {
		id, err := u.Purchase(1, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := u.IssueTo(v.Addr(), id); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	if got := f.broker.ServiceLocks(); got != 0 {
		t.Fatalf("purchase/issue created %d service locks, want 0", got)
	}

	// Broker-era renewals create one lock per serviced coin.
	for _, id := range ids {
		if err := v.RenewViaBroker(id); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.broker.ServiceLocks(); got != 3 {
		t.Fatalf("after 3 broker renewals: %d service locks, want 3", got)
	}

	// Deposit evicts its coin's lock inline.
	if err := v.Deposit(ids[0], "ev-v"); err != nil {
		t.Fatal(err)
	}
	if got := f.broker.ServiceLocks(); got != 2 {
		t.Fatalf("after deposit: %d service locks, want 2", got)
	}

	// Once the downtime bindings expire, pruning reclaims the rest.
	f.clock.Advance(30 * 24 * time.Hour)
	if got := f.broker.PruneServiceLocks(); got != 2 {
		t.Fatalf("PruneServiceLocks evicted %d, want 2", got)
	}
	if got := f.broker.ServiceLocks(); got != 0 {
		t.Fatalf("after prune: %d service locks, want 0", got)
	}

	// Eviction must not strand the coin: servicing it again just mints a
	// fresh lock (and the deposit path evicts it once more).
	if err := v.Deposit(ids[1], "ev-v"); err != nil {
		t.Fatalf("deposit after prune: %v", err)
	}
	if got := f.broker.ServiceLocks(); got != 0 {
		t.Fatalf("deposit after prune left %d service locks, want 0", got)
	}
	if got := f.broker.Balance("ev-v"); got != 2 {
		t.Fatalf("payout balance %d, want 2", got)
	}
}
