package core

import (
	"bytes"
	"reflect"
	"testing"

	"whopay/internal/dht"
	"whopay/internal/indirect"
	"whopay/internal/wire"
)

// The codec-parity suite: every message that crosses the TCP wire must
// survive wire-encode → decode → re-encode byte-for-byte, and the decoded
// value must match what a gob round trip of the same original produces
// field-for-field — the two wire formats are negotiated alternatives, so a
// semantic divergence between them (a field one format drops, a nil/empty
// disagreement) would make a node's behavior depend on which peer built it.

// wireMessages lists every protocol message (the wire subset of gobTypes).
func wireMessages() []any {
	return []any{
		PurchaseRequest{}, PurchaseResponse{},
		BatchPurchaseRequest{}, BatchPurchaseResponse{},
		EnrollRequest{}, EnrollResponse{}, RefillRequest{}, RefillResponse{},
		OfferRequest{}, OfferResponse{},
		DeliverRequest{}, DeliverResponse{},
		TransferRequest{}, TransferResponse{},
		RenewRequest{}, RenewResponse{},
		DepositRequest{}, DepositResponse{},
		BatchDepositRequest{}, BatchDepositResponse{},
		LayeredDepositRequest{},
		ChannelOpenRequest{}, ChannelOpenResponse{},
		ChannelPayRequest{}, ChannelPayResponse{},
		ChannelCloseRequest{}, ChannelCloseResponse{},
		SyncRequest{}, SyncResponse{},
		FraudReport{}, FraudResponse{},
		DisputeRequest{}, DisputeResponse{},
		RelinquishProof{},
		dht.PutMsg{}, dht.GetMsg{}, dht.GetResp{},
		dht.FindMsg{}, dht.FindResp{},
		dht.SubMsg{}, dht.Notify{}, dht.Ack{},
		dht.QuorumPutMsg{}, dht.QuorumAck{},
		dht.DigestMsg{}, dht.DigestResp{},
		dht.SweepMsg{}, dht.SweepResp{},
		dht.SweepKeysMsg{}, dht.SweepKeysResp{},
		dht.LeaseGetMsg{}, dht.LeaseResp{},
		indirect.RegisterMsg{}, indirect.ForwardMsg{}, indirect.Ack{},
	}
}

// TestEveryWireMessageHasCodec: the binary codec registry must cover the
// complete message set — a message falling back to gob silently would erode
// the transport's hot path one type at a time.
func TestEveryWireMessageHasCodec(t *testing.T) {
	RegisterWireTypes()
	for _, proto := range wireMessages() {
		if _, ok := wire.ByValue(proto); !ok {
			t.Errorf("%T has no registered wire codec", proto)
		}
	}
}

// TestWireCodecParity: for each wire message, both a fully populated value
// and the zero value must round-trip byte-stably through the binary codec
// and decode to exactly what gob decodes.
func TestWireCodecParity(t *testing.T) {
	RegisterWireTypes()
	for _, proto := range wireMessages() {
		proto := proto
		rt := reflect.TypeOf(proto)
		t.Run(rt.String(), func(t *testing.T) {
			for _, fill := range []bool{true, false} {
				orig := reflect.New(rt)
				if fill {
					ctr := 0
					fillGob(orig.Elem(), &ctr, 0)
				}
				v := orig.Elem().Interface()

				e, ok := wire.ByValue(v)
				if !ok {
					t.Fatalf("no codec for %T", v)
				}
				first, err := e.Enc(nil, v)
				if err != nil {
					t.Fatalf("wire encode (fill=%v): %v", fill, err)
				}
				decoded, err := wire.Decode(e.Tag, first)
				if err != nil {
					t.Fatalf("wire decode (fill=%v): %v", fill, err)
				}
				second, err := e.Enc(nil, decoded)
				if err != nil {
					t.Fatalf("wire re-encode (fill=%v): %v", fill, err)
				}
				if !bytes.Equal(first, second) {
					t.Errorf("wire encode→decode→encode not byte-identical (fill=%v): %d vs %d bytes",
						fill, len(first), len(second))
				}

				// gob semantics: what gob hands the remote handler for the
				// same original is the parity reference.
				gb, err := gobEnc(orig.Interface())
				if err != nil {
					t.Fatalf("gob encode (fill=%v): %v", fill, err)
				}
				gobbed := reflect.New(rt)
				if err := gobDec(gb, gobbed.Interface()); err != nil {
					t.Fatalf("gob decode (fill=%v): %v", fill, err)
				}
				if !reflect.DeepEqual(decoded, gobbed.Elem().Interface()) {
					t.Errorf("wire and gob decode diverge (fill=%v):\n wire %#v\n gob  %#v",
						fill, decoded, gobbed.Elem().Interface())
				}
			}
		})
	}
}

// TestForwardMsgInnerParity pins the indirection layer's any-valued inner
// field, which fillGob leaves nil: a registered inner type must ride its
// own codec and still decode to the identical value.
func TestForwardMsgInnerParity(t *testing.T) {
	RegisterWireTypes()
	var ctr int
	var inner TransferRequest
	fillGob(reflect.ValueOf(&inner).Elem(), &ctr, 0)
	msg := indirect.ForwardMsg{Handle: []byte("h1"), Inner: inner}

	e, ok := wire.ByValue(msg)
	if !ok {
		t.Fatal("no codec for ForwardMsg")
	}
	enc, err := e.Enc(nil, msg)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := wire.Decode(e.Tag, enc)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := decoded.(indirect.ForwardMsg)
	if !ok {
		t.Fatalf("decoded %T", decoded)
	}
	if !reflect.DeepEqual(got.Inner, inner) {
		t.Errorf("inner message mangled:\n got  %#v\n want %#v", got.Inner, inner)
	}
}

// FuzzWireDecodeRegistered drives arbitrary bytes through every registered
// codec (type confusion included: the same input hits every tag). Decoders
// must return an error or a value — never panic — and a successful decode
// must re-encode byte-identically (no two byte strings may decode to the
// same value without the canonical one winning).
func FuzzWireDecodeRegistered(f *testing.F) {
	RegisterWireTypes()
	entries := wire.Entries()
	// Seed with each type's canonical encoding of a filled value.
	for _, e := range entries {
		var ctr int
		orig := reflect.New(e.Type)
		fillGob(orig.Elem(), &ctr, 0)
		if enc, err := e.Enc(nil, orig.Elem().Interface()); err == nil {
			f.Add(enc)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, e := range entries {
			v, err := wire.Decode(e.Tag, data)
			if err != nil {
				continue
			}
			re, err := e.Enc(nil, v)
			if err != nil {
				t.Fatalf("%s: decoded value failed to re-encode: %v", e.Name, err)
			}
			if !bytes.Equal(re, data) {
				t.Fatalf("%s: non-canonical input decoded: %d in, %d out", e.Name, len(data), len(re))
			}
		}
	})
}
