package core

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"whopay/internal/coin"
	"whopay/internal/dht"
	"whopay/internal/indirect"
	"whopay/internal/wal"
)

// Every type that crosses a gob boundary — the TCP wire messages and the
// journaled record forms — must encode deterministically: encode → decode →
// encode has to reproduce the bytes exactly. Maps with more than one entry
// would break this (gob iterates them in random order), which is why the
// persisted formats flatten maps into sorted parallel slices; this suite is
// the regression net for that property.

// fillGob populates every settable field of v with distinct non-zero
// values drawn from a deterministic counter, so the round trip exercises
// each field rather than gob's omit-zero shortcut.
func fillGob(v reflect.Value, ctr *int, depth int) {
	if depth > 8 {
		return
	}
	switch v.Kind() {
	case reflect.String:
		*ctr++
		v.SetString(fmt.Sprintf("s%d", *ctr))
	case reflect.Bool:
		v.SetBool(true)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		*ctr++
		v.SetInt(int64(*ctr))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		*ctr++
		v.SetUint(uint64(*ctr % 200))
	case reflect.Float32, reflect.Float64:
		*ctr++
		v.SetFloat(float64(*ctr))
	case reflect.Slice:
		s := reflect.MakeSlice(v.Type(), 2, 2)
		for i := 0; i < 2; i++ {
			fillGob(s.Index(i), ctr, depth+1)
		}
		v.Set(s)
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			fillGob(v.Index(i), ctr, depth+1)
		}
	case reflect.Map:
		// One entry only: single-entry maps are the largest gob can encode
		// deterministically. Persisted formats must not carry maps at all.
		m := reflect.MakeMap(v.Type())
		k := reflect.New(v.Type().Key()).Elem()
		fillGob(k, ctr, depth+1)
		e := reflect.New(v.Type().Elem()).Elem()
		fillGob(e, ctr, depth+1)
		m.SetMapIndex(k, e)
		v.Set(m)
	case reflect.Ptr:
		p := reflect.New(v.Type().Elem())
		fillGob(p.Elem(), ctr, depth+1)
		v.Set(p)
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if f := v.Field(i); f.CanSet() {
				fillGob(f, ctr, depth+1)
			}
		}
	case reflect.Interface:
		// Left nil: interface fields need per-type gob registration and are
		// excluded from the persisted formats by design (see caseRec).
	}
}

func gobTypes() []any {
	return []any{
		// Wire messages (RegisterWireTypes).
		PurchaseRequest{}, PurchaseResponse{},
		BatchPurchaseRequest{}, BatchPurchaseResponse{},
		EnrollRequest{}, EnrollResponse{}, RefillRequest{}, RefillResponse{},
		OfferRequest{}, OfferResponse{},
		DeliverRequest{}, DeliverResponse{},
		TransferRequest{}, TransferResponse{},
		RenewRequest{}, RenewResponse{},
		DepositRequest{}, DepositResponse{},
		LayeredDepositRequest{},
		SyncRequest{}, SyncResponse{},
		FraudReport{}, FraudResponse{},
		DisputeRequest{}, DisputeResponse{},
		RelinquishProof{},
		dht.PutMsg{}, dht.GetMsg{}, dht.GetResp{},
		dht.FindMsg{}, dht.FindResp{},
		dht.SubMsg{}, dht.Notify{}, dht.Ack{},
		dht.QuorumPutMsg{}, dht.QuorumAck{},
		dht.DigestMsg{}, dht.DigestResp{},
		dht.SweepMsg{}, dht.SweepResp{},
		dht.SweepKeysMsg{}, dht.SweepKeysResp{},
		dht.LeaseGetMsg{}, dht.LeaseResp{},
		indirect.RegisterMsg{}, indirect.ForwardMsg{}, indirect.Ack{},
		// Journaled record forms (DESIGN.md §10): broker, peer, DHT.
		keyPairRec{}, depositRec{}, claimsRec{}, intentRec{}, caseRec{},
		ownedRec{}, heldRec{},
		coin.Coin{}, coin.Binding{},
		dht.Record{},
	}
}

func TestGobRoundTripByteStable(t *testing.T) {
	for _, proto := range gobTypes() {
		proto := proto
		t.Run(reflect.TypeOf(proto).String(), func(t *testing.T) {
			orig := reflect.New(reflect.TypeOf(proto))
			ctr := 0
			fillGob(orig.Elem(), &ctr, 0)

			first, err := gobEnc(orig.Interface())
			if err != nil {
				t.Fatalf("first encode: %v", err)
			}
			decoded := reflect.New(reflect.TypeOf(proto))
			if err := gobDec(first, decoded.Interface()); err != nil {
				t.Fatalf("decode: %v", err)
			}
			second, err := gobEnc(decoded.Interface())
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(first, second) {
				t.Errorf("encode→decode→encode not byte-identical:\n first  %d bytes\n second %d bytes",
					len(first), len(second))
			}
			if !reflect.DeepEqual(orig.Elem().Interface(), decoded.Elem().Interface()) {
				t.Error("decoded value differs from the original")
			}
		})
	}
}

// TestWALBatchRoundTripByteStable covers the journal's own framing: a
// mutation batch decodes to the same mutations and re-encodes to the same
// bytes.
func TestWALBatchRoundTripByteStable(t *testing.T) {
	muts := []wal.Mutation{
		wal.Set("coin", []byte("coin-key"), []byte("coin-value")),
		wal.Set("meta", []byte("keys"), bytes.Repeat([]byte{0xab}, 64)),
		wal.Delete("held", []byte("relinquished")),
		wal.Set("sub", []byte{0x00, 0xff}, nil),
	}
	first := wal.EncodeBatch(muts)
	decoded, err := wal.DecodeBatch(first)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	second := wal.EncodeBatch(decoded)
	if !bytes.Equal(first, second) {
		t.Errorf("batch encode→decode→encode not byte-identical: %d vs %d bytes", len(first), len(second))
	}
	if len(decoded) != len(muts) {
		t.Fatalf("decoded %d mutations, want %d", len(decoded), len(muts))
	}
	for i, m := range decoded {
		if m.Table != muts[i].Table || !bytes.Equal(m.Key, muts[i].Key) || m.Op != muts[i].Op {
			t.Errorf("mutation %d mangled: %+v vs %+v", i, m, muts[i])
		}
	}
}
