package core

import (
	"errors"

	"whopay/internal/bus"
)

// Sentinel errors for protocol rejections. Handlers return these; across
// the bus they surface as *bus.RemoteError with the message preserved.
var (
	// ErrUnknownCoin rejects operations on coins the entity never saw.
	ErrUnknownCoin = errors.New("core: unknown coin")
	// ErrUnknownIdentity rejects requests naming an unregistered user.
	ErrUnknownIdentity = errors.New("core: unknown identity")
	// ErrNotOwner rejects owner-only operations from non-owners.
	ErrNotOwner = errors.New("core: not the coin owner")
	// ErrNotHolder rejects holder-only operations when the requester
	// cannot prove current holdership — the double-spend front line.
	ErrNotHolder = errors.New("core: requester does not hold the coin")
	// ErrStaleBinding rejects operations citing an out-of-date binding.
	ErrStaleBinding = errors.New("core: stale binding")
	// ErrAlreadyDeposited rejects re-deposit of a spent coin.
	ErrAlreadyDeposited = errors.New("core: coin already deposited")
	// ErrFrozen rejects operations by punished identities.
	ErrFrozen = errors.New("core: identity frozen for fraud")
	// ErrBadRequest rejects malformed or unverifiable requests.
	ErrBadRequest = errors.New("core: bad request")
	// ErrInsufficientFunds rejects purchases beyond the buyer's account
	// balance (when the broker enforces budgets).
	ErrInsufficientFunds = errors.New("core: insufficient funds")
	// ErrNoOffer rejects deliveries that match no outstanding offer.
	ErrNoOffer = errors.New("core: no matching payment offer")
	// ErrCoinBusy rejects a request for a coin that is mid-service
	// (another transfer or renewal is in flight); retry.
	ErrCoinBusy = errors.New("core: coin busy, retry")
	// ErrNoCoinAvailable reports that a payment policy found no coin for
	// the chosen method.
	ErrNoCoinAvailable = errors.New("core: no coin available for payment method")
	// ErrPaymentFailed reports that every method in the policy failed.
	ErrPaymentFailed = errors.New("core: all payment methods failed")
	// ErrDetectionOff reports a detection API used without a DHT.
	ErrDetectionOff = errors.New("core: double-spending detection not configured")
	// ErrNoChannel rejects channel operations naming an unknown channel
	// root.
	ErrNoChannel = errors.New("core: no such channel")
	// ErrChannelClosed rejects payments on a channel already settled and
	// torn down.
	ErrChannelClosed = errors.New("core: channel closed")
	// ErrWrongShard rejects requests whose routing key homes on another
	// federation shard; the rejection carries a redirect hint to the
	// owning shard's leader when known.
	ErrWrongShard = errors.New("core: key belongs to another shard")
	// ErrNotLeader rejects requests served to a replica that is not its
	// shard's current leader; the rejection carries a redirect hint to
	// the leader when known.
	ErrNotLeader = errors.New("core: not the shard leader")
)

// init registers wire codes for every protocol sentinel, so errors.Is keeps
// working after a hop through tcpbus (which can only carry strings) and the
// retry layer can tell protocol rejections from transport failures. Codes
// are stable wire contract; never renumber.
func init() {
	for _, e := range []struct {
		code     string
		sentinel error
	}{
		{"core.unknown_coin", ErrUnknownCoin},
		{"core.unknown_identity", ErrUnknownIdentity},
		{"core.not_owner", ErrNotOwner},
		{"core.not_holder", ErrNotHolder},
		{"core.stale_binding", ErrStaleBinding},
		{"core.already_deposited", ErrAlreadyDeposited},
		{"core.frozen", ErrFrozen},
		{"core.bad_request", ErrBadRequest},
		{"core.insufficient_funds", ErrInsufficientFunds},
		{"core.no_offer", ErrNoOffer},
		{"core.coin_busy", ErrCoinBusy},
		{"core.no_coin_available", ErrNoCoinAvailable},
		{"core.payment_failed", ErrPaymentFailed},
		{"core.no_channel", ErrNoChannel},
		{"core.channel_closed", ErrChannelClosed},
		{"core.wrong_shard", ErrWrongShard},
		{"core.not_leader", ErrNotLeader},
	} {
		bus.RegisterErrorCode(e.code, e.sentinel)
	}
	// Shard-routing rejections are retryable-with-redirect: the retry
	// layer follows their hints instead of giving up.
	bus.RegisterRedirectCode("core.wrong_shard")
	bus.RegisterRedirectCode("core.not_leader")
}
