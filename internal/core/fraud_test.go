package core

import (
	"errors"
	"strings"
	"testing"

	"whopay/internal/bus"
	"whopay/internal/coin"
	"whopay/internal/dht"
	"whopay/internal/groupsig"
	"whopay/internal/sig"
)

// oc2pub recovers the coin public key from its ID.
func oc2pub(id coin.ID) sig.PublicKey { return sig.PublicKey(id) }

// TestHolderDoubleSpendRejected: a holder that already relinquished a coin
// cannot spend it again — the owner's sequence check stops it (paper:
// "only the current holder of a coin can transfer ... the coin").
func TestHolderDoubleSpendRejected(t *testing.T) {
	f := newFixture(t, fixtureOpts{detection: true})
	u := f.addPeer("u", nil)
	v := f.addPeer("v", nil)
	w := f.addPeer("w", nil)
	x := f.addPeer("x", nil)

	id, err := u.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatal(err)
	}
	// v keeps a copy of its holder state, transfers to w, then replays.
	vhc, _ := v.held.Get(id)
	stale := &heldCoin{
		c:          vhc.c.Clone(),
		holderKeys: vhc.holderKeys,
		binding:    vhc.binding.Clone(),
	}
	if err := v.TransferTo(w.Addr(), id); err != nil {
		t.Fatal(err)
	}
	// Replay: craft a second transfer from the stale holder state.
	resp, err := v.ep.Call(x.Addr(), OfferRequest{Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	offer := resp.(OfferResponse)
	req, err := v.buildTransfer(stale, x.Addr(), offer)
	if err != nil {
		t.Fatal(err)
	}
	_, err = v.callOwner(stale.c, req)
	var remote *bus.RemoteError
	if !errors.As(err, &remote) || !strings.Contains(remote.Msg, "stale") {
		t.Fatalf("double spend = %v, want stale-binding rejection", err)
	}
	if len(x.HeldCoins()) != 0 {
		t.Fatal("double-spent coin was delivered")
	}
}

// TestOwnerDoubleIssueCaughtByPayeeCheck: a colluding owner signs a second
// binding at the same sequence for a rival payee; the rival's public
// binding list check catches the conflict before accepting (Section 5.1:
// "a peer does not accept payment until verifying that the relevant public
// binding has been properly updated").
func TestOwnerDoubleIssueCaughtByPayeeCheck(t *testing.T) {
	f := newFixture(t, fixtureOpts{detection: true})
	u := f.addPeer("u", nil)
	v := f.addPeer("v", nil)
	rival := f.addPeer("rival", nil)

	id, err := u.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatal(err)
	}
	// The owner forges a same-sequence binding to the rival and tries to
	// deliver it as a fresh issue.
	resp, err := u.ep.Call(rival.Addr(), OfferRequest{Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	offer := resp.(OfferResponse)
	forged, err := u.ForgeDoubleIssue(id, offer.HolderPub)
	if err != nil {
		t.Fatal(err)
	}
	uoc, _ := u.owned.Get(id)
	c := uoc.c
	challengeSig, err := u.suite.Sign(u.keys.Private, coinChallenge(c.Pub, offer.Nonce))
	if err != nil {
		t.Fatal(err)
	}
	_, err = u.ep.Call(rival.Addr(), DeliverRequest{Coin: *c, Binding: *forged, ChallengeSig: challengeSig, Issue: true})
	var remote *bus.RemoteError
	if !errors.As(err, &remote) || !strings.Contains(remote.Msg, "double spend") {
		t.Fatalf("double issue = %v, want public-binding conflict", err)
	}
	if len(rival.HeldCoins()) != 0 {
		t.Fatal("rival accepted the double-issued coin")
	}
}

// TestWatcherCatchesFraudulentRebind: the owner fraudulently re-binds a
// held coin in the public list; the holder's watch fires, the report goes
// to the broker, the dispute finds no relinquishment proof, and the owner
// is frozen. This is the full real-time detection + fairness pipeline.
func TestWatcherCatchesFraudulentRebind(t *testing.T) {
	f := newFixture(t, fixtureOpts{detection: true})
	u := f.addPeer("u", nil)
	v := f.addPeer("v", nil)

	id, err := u.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatal(err)
	}
	// The owner signs a binding moving the coin to an accomplice key at
	// the next sequence and publishes it — as a real double spend toward
	// a second payee would.
	accomplice, err := u.suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	oc, _ := u.owned.Get(id)
	forged, err := u.ForgeRebind(id, accomplice.Public, oc.binding.Seq+1)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := dht.SignRecord(u.suite, oc.coinKeys, dht.KeyFor(oc.c.Pub), forged.Seq, forged.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if err := u.dhtc.Put(rec); err != nil {
		t.Fatalf("fraudulent publish rejected by DHT: %v", err)
	}

	// The publish notified v synchronously; the alert and verdict are
	// already in.
	alerts := v.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("alerts = %d, want 1", len(alerts))
	}
	if alerts[0].CoinID != id {
		t.Fatal("alert cites wrong coin")
	}
	if !strings.Contains(alerts[0].Verdict, "owner-fraud") {
		t.Fatalf("verdict = %q, want owner-fraud", alerts[0].Verdict)
	}
	if !f.broker.Frozen("u") {
		t.Fatal("fraudulent owner not frozen")
	}
	cases := f.broker.FraudCases()
	if len(cases) != 1 || cases[0].Kind != "owner-fraud" || cases[0].Punished != "u" {
		t.Fatalf("cases = %+v", cases)
	}
}

// TestLegitimateRebindNotPunished: a stale holder's false alarm is resolved
// by the owner's valid relinquishment chain.
func TestLegitimateRebindNotPunished(t *testing.T) {
	f := newFixture(t, fixtureOpts{detection: true})
	u := f.addPeer("u", nil)
	v := f.addPeer("v", nil)
	w := f.addPeer("w", nil)

	id, err := u.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatal(err)
	}
	vBinding, _ := v.HeldBinding(id)
	if err := v.TransferTo(w.Addr(), id); err != nil {
		t.Fatal(err)
	}
	wBinding, _ := w.HeldBinding(id)

	// v (now stale) files a report against the legitimate re-binding.
	verdict := v.reportFraud(oc2pub(id), vBinding, wBinding)
	if !strings.Contains(verdict, "legitimate") {
		t.Fatalf("verdict = %q, want legitimate", verdict)
	}
	if f.broker.Frozen("u") {
		t.Fatal("honest owner frozen on a false alarm")
	}
}

// TestDoubleDepositCaught: the second deposit of a coin is rejected and the
// evidence escrowed; the judge opens the group signatures to identify both
// depositors.
func TestDoubleDepositCaught(t *testing.T) {
	f := newFixture(t, fixtureOpts{detection: true})
	u := f.addPeer("u", nil)
	v := f.addPeer("v", nil)

	id, err := u.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatal(err)
	}
	// v keeps its holder state, deposits, then replays the deposit.
	vhc, _ := v.held.Get(id)
	stale := &heldCoin{
		c:          vhc.c.Clone(),
		holderKeys: vhc.holderKeys,
		binding:    vhc.binding.Clone(),
	}
	if err := v.Deposit(id, "first"); err != nil {
		t.Fatal(err)
	}
	// Replay: rebuild the deposit request from the stale state.
	msg := depositMessage(stale.c.Pub, "second", stale.binding.Seq)
	holderSig, err := v.suite.Sign(stale.holderKeys.Private, msg)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := v.member.Sign(v.suite, msg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = v.ep.Call(f.broker.Addr(), DepositRequest{
		CoinPub:          stale.c.Pub,
		PayoutRef:        "second",
		HolderSig:        holderSig,
		GroupSig:         gs,
		PresentedBinding: stale.binding,
	})
	if err == nil {
		t.Fatal("double deposit accepted")
	}
	if f.broker.Balance("second") != 0 {
		t.Fatal("double deposit credited")
	}
	cases := f.broker.FraudCases()
	if len(cases) != 1 || cases[0].Kind != "double-deposit" {
		t.Fatalf("cases = %+v", cases)
	}
	// Fairness: the judge opens the escrowed group signatures and finds
	// the depositor, learning nothing about anyone else.
	for _, pair := range cases[0].GroupSigs {
		msg := pair[0].([]byte)
		gsv := pair[1].(groupsig.Signature)
		opened, err := f.judge.Open(msg, gsv)
		if err != nil {
			t.Fatalf("judge.Open: %v", err)
		}
		if opened != "v" {
			t.Fatalf("judge opened %q, want v", opened)
		}
	}
}

// TestFraudReportValidation: garbage reports are rejected.
func TestFraudReportValidation(t *testing.T) {
	f := newFixture(t, fixtureOpts{detection: true})
	u := f.addPeer("u", nil)
	v := f.addPeer("v", nil)
	id, err := u.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatal(err)
	}
	vb, _ := v.HeldBinding(id)

	// Identical bindings: no conflict.
	verdict := v.reportFraud(oc2pub(id), vb, vb)
	if !strings.Contains(verdict, "report failed") {
		t.Fatalf("verdict = %q, want rejection", verdict)
	}
	// Tampered observed binding: bad signature.
	bad := vb.Clone()
	bad.Seq += 5
	verdict = v.reportFraud(oc2pub(id), vb, bad)
	if !strings.Contains(verdict, "report failed") {
		t.Fatalf("verdict = %q, want rejection", verdict)
	}
	if f.broker.Frozen("u") {
		t.Fatal("owner frozen on invalid evidence")
	}
}

// TestImposterCannotDeliver: an attacker who intercepted a coin's public
// data but owns neither the coin key nor the owner identity key cannot
// satisfy the payee's ownership challenge.
func TestImposterCannotDeliver(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	u := f.addPeer("u", nil)
	v := f.addPeer("v", nil)
	mallory := f.addPeer("mallory", nil)

	id, err := u.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatal(err)
	}
	// Mallory learns the coin's public material (she held it... no — she
	// just copies what v received) and tries to "pay" someone with it.
	vhc, _ := v.held.Get(id)
	c := vhc.c.Clone()
	binding := vhc.binding.Clone()

	resp, err := mallory.ep.Call(v.Addr(), OfferRequest{Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	offer := resp.(OfferResponse)
	// She cannot produce a binding to the fresh holder key (no coin
	// key), so she replays the old binding; and signs the challenge with
	// her own identity key.
	challengeSig, err := mallory.suite.Sign(mallory.keys.Private, coinChallenge(c.Pub, offer.Nonce))
	if err != nil {
		t.Fatal(err)
	}
	_, err = mallory.ep.Call(v.Addr(), DeliverRequest{Coin: *c, Binding: *binding, ChallengeSig: challengeSig})
	if err == nil {
		t.Fatal("imposter delivery accepted")
	}
	// Even with a correctly-targeted forged binding she lacks skC: craft
	// a binding naming the fresh holder but self-signed.
	forged := binding.Clone()
	forged.Holder = offer.HolderPub
	forged.Seq++
	if forged.Sig, err = mallory.suite.Sign(mallory.keys.Private, forged.Message()); err != nil {
		t.Fatal(err)
	}
	// A fresh offer (the previous one was consumed by the failed try).
	resp, err = mallory.ep.Call(v.Addr(), OfferRequest{Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	offer2 := resp.(OfferResponse)
	forged.Holder = offer2.HolderPub
	if forged.Sig, err = mallory.suite.Sign(mallory.keys.Private, forged.Message()); err != nil {
		t.Fatal(err)
	}
	challengeSig2, err := mallory.suite.Sign(mallory.keys.Private, coinChallenge(c.Pub, offer2.Nonce))
	if err != nil {
		t.Fatal(err)
	}
	_, err = mallory.ep.Call(v.Addr(), DeliverRequest{Coin: *c, Binding: *forged, ChallengeSig: challengeSig2})
	if err == nil {
		t.Fatal("forged-binding delivery accepted")
	}
	// v's wallet unchanged.
	if len(v.HeldCoins()) != 1 {
		t.Fatalf("v holds %d coins", len(v.HeldCoins()))
	}
}

// TestStolenTransferRequestCannotBeRedirected: a transfer request is bound
// to the payee's holder key and nonce; replaying it toward a different
// payee fails at every step.
func TestStolenTransferRequestCannotBeRedirected(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	u := f.addPeer("u", nil)
	v := f.addPeer("v", nil)
	w := f.addPeer("w", nil)
	mallory := f.addPeer("mallory2", nil)

	id, err := u.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatal(err)
	}
	// Build a legitimate transfer request toward w, then have mallory
	// replay it with HER address as payee: the owner delivers to the
	// body's PayeeAddr (inside the holder-signed body), not the sender,
	// so tampering the address breaks the signature.
	resp, err := v.ep.Call(w.Addr(), OfferRequest{Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	hc, _ := v.held.Get(id)
	req, err := v.buildTransfer(hc, w.Addr(), resp.(OfferResponse))
	if err != nil {
		t.Fatal(err)
	}
	tampered := req
	tampered.Body.PayeeAddr = string(mallory.Addr())
	if _, err := mallory.ep.Call(f.dirAddr("u"), tampered); err == nil {
		t.Fatal("tampered transfer request accepted")
	}
	// The untampered replay delivers to w — mallory gains nothing and
	// the payment completes exactly as v intended.
	raw, err := mallory.ep.Call(f.dirAddr("u"), req)
	if err != nil {
		t.Fatal(err)
	}
	if tr := raw.(TransferResponse); !tr.OK {
		t.Fatalf("legit replay failed: %s", tr.Reason)
	}
	if len(w.HeldCoins()) != 1 {
		t.Fatal("w did not receive the coin")
	}
}
