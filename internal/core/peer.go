package core

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	mrand "math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"whopay/internal/bus"
	"whopay/internal/coin"
	"whopay/internal/dht"
	"whopay/internal/dht/replica"
	"whopay/internal/groupsig"
	"whopay/internal/indirect"
	"whopay/internal/obs"
	"whopay/internal/sig"
	"whopay/internal/store"
	"whopay/internal/wal"
)

// SyncMode selects how an owner reconciles state after rejoining (paper
// Section 5.2): proactive synchronizes with the broker on every rejoin;
// lazy defers to a public-binding-list check on the first request per coin.
type SyncMode int

// Sync modes.
const (
	SyncProactive SyncMode = iota
	SyncLazy
)

// peerShards is the lock-domain count for a peer's wallet stores. Wallets
// are smaller than the broker's books, so fewer shards suffice.
const peerShards = 16

// Prober reports whether an address is currently reachable. The in-memory
// bus implements it; peers use it to pick payment methods ("transfer an
// online coin") without burning failed calls. Without a prober, peers probe
// by attempting the call.
type Prober interface {
	Online(addr bus.Address) bool
}

// Presence lets a peer announce its own availability to the transport (the
// in-memory bus implements it via SetOnline).
type Presence interface {
	SetOnline(addr bus.Address, online bool)
}

// PeerConfig configures a Peer.
type PeerConfig struct {
	// ID is the peer's identity (registered with the directory and the
	// judge).
	ID string
	// Network to listen on; Addr is the peer's address.
	Network bus.Network
	Addr    bus.Address
	// Scheme is the signature scheme; Recorder (optional) attributes
	// this peer's crypto micro-operations.
	Scheme   sig.Scheme
	Recorder sig.Recorder
	// Clock defaults to time.Now.
	Clock Clock
	// RenewalPeriod defaults to DefaultRenewalPeriod.
	RenewalPeriod time.Duration
	// Directory is the trusted identity/address registry.
	Directory *Directory
	// BrokerAddr and BrokerPub identify the broker.
	BrokerAddr bus.Address
	BrokerPub  sig.PublicKey
	// Router, when set, replaces the single-broker view with a federated
	// one: every broker-bound call is routed to the leader of the shard
	// owning the call's coin or payout key, verification uses the owning
	// shard's broker key, and ErrWrongShard/ErrNotLeader redirects are
	// followed (DESIGN.md §13). Nil keeps BrokerAddr/BrokerPub authoritative.
	Router ShardRouter
	// Judge enrolls the peer at construction; alternatively supply a
	// pre-enrolled Member plus GroupPub, or a JudgeAddr to enroll over
	// the bus (multi-process deployments; see JudgeServer).
	Judge     *Judge
	Member    *groupsig.MemberKey
	GroupPub  sig.PublicKey
	JudgeAddr bus.Address
	// CredPool is the initial group-credential pool size (default 32).
	CredPool int
	// DHTNodes enables the public binding list; empty disables.
	DHTNodes []bus.Address
	DHTMode  dht.Mode
	// DHTReplication turns on quorum reads/writes and the hot-coin lease
	// cache on the peer's DHT client (DESIGN.md §14). Nil keeps the legacy
	// single-copy paths.
	DHTReplication *replica.Config
	// PublishBindings controls whether this peer, as an owner, publishes
	// binding updates to the DHT.
	PublishBindings bool
	// WatchHeldCoins subscribes to held coins' public bindings and
	// raises (and reports) fraud alerts on unexpected re-bindings —
	// the real-time double-spending detection of Section 5.1.
	WatchHeldCoins bool
	// CheckPublicBinding makes the payee cross-check the public binding
	// list before finalizing acceptance.
	CheckPublicBinding bool
	// AutoReportFraud files a FraudReport with the broker when a watch
	// alarm fires (default true when WatchHeldCoins).
	AutoReportFraud bool
	// IndirectServers enable owner-anonymous coins (Section 5.2).
	IndirectServers []bus.Address
	// SyncMode selects proactive or lazy owner synchronization.
	SyncMode SyncMode
	// Prober and Presence integrate with the transport's availability
	// model (both optional).
	Prober   Prober
	Presence Presence
	// Rand, when set, makes all protocol randomness (nonces, initial
	// sequence numbers) deterministic — the simulator injects a seeded
	// source. Defaults to crypto/rand.
	Rand *mrand.Rand
	// OfferTTL bounds how long a payment offer stays open (default 10m).
	OfferTTL time.Duration
	// Retry, when set, wraps every outbound protocol call (to the broker,
	// owners, payees and the DHT) in capped exponential backoff with
	// jitter, retrying only transient transport failures — never protocol
	// rejections. Nil (the default) disables retries entirely, so message
	// counts stay exact for the simulator and the paper's cost metrics.
	Retry *bus.RetryPolicy
	// AuditLogCap bounds per-coin relinquishment logs (0 = unlimited).
	// The simulator caps them; real deployments keep full trails.
	AuditLogCap int
	// DisableCryptoCache turns off the verification fast path (DESIGN.md
	// §9): no decoded-key cache, no verify memoization, no parallel batch
	// fan-out. Default off (cache enabled); a Null scheme bypasses the
	// cache on its own.
	DisableCryptoCache bool
	// Persistence, when set, makes the wallet durable: identity keys and
	// every owned/held coin mutation are journaled to a write-ahead log
	// under Persistence.Dir before the operation is treated as done, and
	// NewPeer replays any existing journal at startup (see RecoverPeer).
	// Nil keeps the wallet purely in memory — the pre-existing behavior.
	Persistence *wal.Config
	// Obs, when non-nil, instruments the peer (DESIGN.md §11): spans and
	// latency histograms per protocol operation (client- and server-side),
	// WAL and sig-cache metrics, retry counts, and a /healthz check on
	// PersistenceErr. Nil (the default) keeps message counts, allocations,
	// and error shapes byte-identical to an uninstrumented peer.
	Obs *obs.Registry
}

// ownedCoin is the owner-side state for one coin. The coin, its keys and
// the handle keys are immutable after creation; everything mutable sits
// under mu. The store's shard locks only order map membership — entry
// state is the entry's own business.
type ownedCoin struct {
	// svc serializes servicing (transfer/renewal) of this coin: the
	// validate→deliver→commit sequence must not interleave, or two
	// requests citing the same sequence number could both deliver.
	// TryLock (never Lock) so a malicious payee that calls back into
	// the owner during delivery gets ErrCoinBusy instead of a deadlock.
	svc        sync.Mutex
	c          *coin.Coin
	coinKeys   sig.KeyPair
	handleKeys *sig.KeyPair

	mu       sync.Mutex
	binding  *coin.Binding // nil until first issued
	selfHeld bool
	dirty    bool // lazy sync: re-check the public binding before servicing
	log      map[uint64]RelinquishProof
	logOrder []uint64
}

// heldCoin is the holder-side state for one coin. c, holderKeys and order
// are immutable after insertion; binding and inFlight are guarded by mu.
type heldCoin struct {
	c          *coin.Coin
	holderKeys sig.KeyPair
	order      uint64 // acquisition stamp: HeldCoins and pickHeld sort by it

	mu       sync.Mutex
	binding  *coin.Binding
	inFlight bool // a transfer we initiated is in progress; ignore watch alarms
}

// pendingOffer is an open payment offer awaiting delivery (immutable).
type pendingOffer struct {
	holderKeys sig.KeyPair
	nonce      []byte
	value      int64
	created    time.Time
}

// FraudAlert records a watch alarm: the public binding list re-bound a coin
// this peer holds, without its consent.
type FraudAlert struct {
	CoinID   coin.ID
	Mine     coin.Binding
	Observed coin.Binding
	Verdict  string // broker's verdict if the alert was reported
}

// Peer is a WhoPay participant: owner of the coins it purchased, holder of
// the coins paid to it, payer and payee in transactions. Safe for
// concurrent use.
//
// Wallet state lives in sharded stores so payments against different coins
// proceed on independent lock domains. The lock hierarchy, outermost first:
// an owned coin's svc lock (service serialization), then store shard locks,
// then entry locks (ownedCoin.mu / heldCoin.mu) — never a store write while
// holding an entry lock, never an entry lock outlives the closure it was
// taken in during a Range.
type Peer struct {
	cfg    PeerConfig
	suite  sig.Suite
	cache  *sig.Cached        // nil when DisableCryptoCache
	gsv    *groupsig.Verifier // CRL-aware group-signature verifier
	keys   sig.KeyPair
	member *groupsig.MemberKey
	ep     bus.Endpoint
	caller bus.Caller // ep, or a RetryCaller around it when cfg.Retry is set
	dhtc   *dht.Client
	indir  *indirect.Client
	ops    OpCounter
	instr  *instr // nil unless cfg.Obs is set

	randMu sync.Mutex
	rand   *mrand.Rand

	owned   *store.Sharded[coin.ID, *ownedCoin]
	held    *store.Sharded[coin.ID, *heldCoin]
	offers  *store.Sharded[string, *pendingOffer]
	heldSeq atomic.Uint64 // acquisition stamps for held coins

	// Micropayment channels (DESIGN.md §12), both sides keyed by chain
	// root. settleCredits pins settlement coins to the channel they
	// credited (close-replay idempotence, no double-credit).
	channels      *store.Sharded[string, *payerChannel]
	vchannels     *store.Sharded[string, *vendorChannel]
	settleCredits *store.Sharded[coin.ID, *settleRecord]

	persist   *persistLog // nil when cfg.Persistence is nil
	recovered bool        // wallet state was replayed at startup

	// stateMu guards the peer-global scalars: presence, trigger
	// versioning, and the alert log.
	stateMu     sync.Mutex
	online      bool
	alerts      []FraudAlert
	trigVersion uint64
}

// NewPeer creates a peer, registers its identity with the directory,
// enrolls it with the judge (unless a member key is supplied), and starts
// listening. The peer starts online.
func NewPeer(cfg PeerConfig) (*Peer, error) {
	if cfg.Network == nil || cfg.Scheme == nil || cfg.Directory == nil {
		return nil, errors.New("core: peer needs Network, Scheme and Directory")
	}
	if cfg.ID == "" {
		return nil, errors.New("core: peer needs an ID")
	}
	if cfg.Addr == "" {
		cfg.Addr = bus.Address("peer:" + cfg.ID)
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.RenewalPeriod <= 0 {
		cfg.RenewalPeriod = DefaultRenewalPeriod
	}
	if cfg.CredPool <= 0 {
		cfg.CredPool = 32
	}
	if cfg.OfferTTL <= 0 {
		cfg.OfferTTL = 10 * time.Minute
	}
	if cfg.WatchHeldCoins && !cfg.AutoReportFraud {
		cfg.AutoReportFraud = true
	}
	p := &Peer{
		cfg:    cfg,
		suite:  sig.Suite{Scheme: cfg.Scheme, Rec: cfg.Recorder},
		rand:   cfg.Rand,
		online: true,
		owned:  store.NewSharded[coin.ID, *ownedCoin](peerShards, coinKey),
		held:   store.NewSharded[coin.ID, *heldCoin](peerShards, coinKey),
		offers: store.NewSharded[string, *pendingOffer](peerShards, store.StringHash[string]),

		channels:      store.NewSharded[string, *payerChannel](peerShards, store.StringHash[string]),
		vchannels:     store.NewSharded[string, *vendorChannel](peerShards, store.StringHash[string]),
		settleCredits: store.NewSharded[coin.ID, *settleRecord](peerShards, coinKey),
	}
	if !cfg.DisableCryptoCache {
		p.suite, p.cache = sig.NewCachedSuite(p.suite, sig.CacheOptions{})
	}
	if cfg.Persistence != nil {
		pc := *cfg.Persistence // copy: don't mutate the caller's config
		if cfg.Obs != nil {
			pc.Obs = cfg.Obs
			if pc.Entity == "" {
				pc.Entity = cfg.ID
			}
		}
		log, err := wal.Open(pc)
		if err != nil {
			return nil, fmt.Errorf("core: peer wal: %w", err)
		}
		p.persist = &persistLog{log: log}
		found, err := p.recoverPeerState()
		if err != nil {
			_ = log.Close()
			return nil, fmt.Errorf("core: peer recovery: %w", err)
		}
		p.recovered = found
	}
	if len(p.keys.Public) == 0 {
		// Identity keys are one-time enrollment setup, not part of any
		// operation's cost: generate them outside the recorded suite.
		keys, err := cfg.Scheme.GenerateKey()
		if err != nil {
			p.closePersist()
			return nil, fmt.Errorf("core: peer keygen: %w", err)
		}
		p.keys = keys
		if p.persist != nil {
			p.journalPeerKeys()
			if err := p.persist.Err(); err != nil {
				p.closePersist()
				return nil, fmt.Errorf("core: journaling peer keys: %w", err)
			}
		}
	}

	switch {
	case cfg.Member != nil:
		if len(cfg.GroupPub) == 0 {
			p.closePersist()
			return nil, errors.New("core: Member requires GroupPub")
		}
		p.member = cfg.Member
	case cfg.Judge != nil:
		member, err := cfg.Judge.Enroll(cfg.ID, cfg.CredPool)
		if err != nil {
			p.closePersist()
			return nil, fmt.Errorf("core: enrolling %s: %w", cfg.ID, err)
		}
		p.member = member
		p.cfg.GroupPub = cfg.Judge.GroupPublicKey()
	case cfg.JudgeAddr != "":
		// Remote enrollment happens after Listen (it needs the
		// endpoint).
	default:
		p.closePersist()
		return nil, errors.New("core: peer needs a Judge, a Member key, or a JudgeAddr")
	}

	ep, err := cfg.Network.Listen(cfg.Addr, p.handle)
	if err != nil {
		p.closePersist()
		return nil, fmt.Errorf("core: peer listen: %w", err)
	}
	p.ep = ep
	p.caller = ep
	if cfg.Retry != nil {
		p.caller = bus.NewRetryCaller(ep, *cfg.Retry)
	}
	// Adopt the actually-bound address (TCP ":0" binds pick a port).
	p.cfg.Addr = ep.Addr()
	cfg.Directory.Register(cfg.ID, p.keys.Public, p.cfg.Addr)

	if p.member == nil {
		member, groupPub, err := p.enrollRemotely(cfg.JudgeAddr, p.cfg.CredPool)
		if err != nil {
			_ = ep.Close()
			p.closePersist()
			return nil, fmt.Errorf("core: remote enrollment of %s: %w", cfg.ID, err)
		}
		p.member = member
		p.cfg.GroupPub = groupPub
	}
	// GroupPub is final here in all three enrollment branches, so the
	// CRL-aware verifier can bind to it.
	p.gsv = groupsig.NewVerifier(p.cfg.GroupPub)
	if p.cache != nil {
		p.gsv.OnRevoke = p.cache.InvalidateKey
	}
	if len(cfg.DHTNodes) > 0 {
		p.dhtc, err = dht.NewClient(ep, cfg.DHTNodes, cfg.DHTMode)
		if err != nil {
			_ = ep.Close()
			p.closePersist()
			return nil, fmt.Errorf("core: peer dht client: %w", err)
		}
		if cfg.Retry != nil {
			p.dhtc.WithRetry(*cfg.Retry)
		}
		if cfg.DHTReplication != nil {
			p.dhtc.WithReplication(*cfg.DHTReplication)
		}
	}
	if len(cfg.IndirectServers) > 0 {
		p.indir, err = indirect.NewClient(ep, cfg.IndirectServers)
		if err != nil {
			_ = ep.Close()
			p.closePersist()
			return nil, fmt.Errorf("core: peer indirect client: %w", err)
		}
	}
	if cfg.Obs != nil {
		p.instr = newInstr(cfg.Obs, cfg.ID)
		registerOpCounts(cfg.Obs, cfg.ID, &p.ops)
		cfg.Obs.Help("whopay_channels_open", "Open micropayment channels, by entity and side.")
		cfg.Obs.GaugeFunc("whopay_channels_open", obs.Labels{"entity": cfg.ID, "side": "payer"},
			func() float64 { return float64(p.openChannelCount(false)) })
		cfg.Obs.GaugeFunc("whopay_channels_open", obs.Labels{"entity": cfg.ID, "side": "vendor"},
			func() float64 { return float64(p.openChannelCount(true)) })
		if cfg.Retry != nil {
			cfg.Obs.Help("whopay_retries_total", "Transient-failure retries issued by the retry layer, by entity.")
			cfg.Obs.CounterFunc("whopay_retries_total", obs.Labels{"entity": cfg.ID}, p.Retries)
			cfg.Obs.Help("whopay_redirects_total", "Redirect hints followed by the retry layer, by entity.")
			cfg.Obs.CounterFunc("whopay_redirects_total", obs.Labels{"entity": cfg.ID}, p.Redirects)
		}
		if p.cache != nil {
			registerCacheMetrics(cfg.Obs, cfg.ID, func() (int64, int64, int64, int64) {
				s := p.cache.Stats()
				return s.Hits, s.Misses, s.KeyHits, s.KeyMisses
			})
		}
		if p.dhtc != nil && cfg.DHTReplication != nil {
			cfg.Obs.Help("whopay_dht_lease_hits_total", "DHT lease cache hits, by entity.")
			cfg.Obs.CounterFunc("whopay_dht_lease_hits_total", obs.Labels{"entity": cfg.ID},
				func() int64 { h, _, _, _ := p.dhtc.LeaseStats(); return int64(h) })
			cfg.Obs.Help("whopay_dht_lease_misses_total", "DHT lease cache misses, by entity.")
			cfg.Obs.CounterFunc("whopay_dht_lease_misses_total", obs.Labels{"entity": cfg.ID},
				func() int64 { _, m, _, _ := p.dhtc.LeaseStats(); return int64(m) })
			cfg.Obs.Help("whopay_dht_stale_reads_total", "Backwards-in-time DHT reads observed by the lease watermark (stale quorum reads), by entity.")
			cfg.Obs.CounterFunc("whopay_dht_stale_reads_total", obs.Labels{"entity": cfg.ID},
				func() int64 { _, _, s, _ := p.dhtc.LeaseStats(); return int64(s) })
			cfg.Obs.Help("whopay_dht_reads_repaired_total", "Stale DHT replicas back-filled by client read-repair, by entity.")
			cfg.Obs.CounterFunc("whopay_dht_reads_repaired_total", obs.Labels{"entity": cfg.ID},
				func() int64 { _, _, _, r := p.dhtc.LeaseStats(); return int64(r) })
		}
		if p.persist != nil {
			cfg.Obs.RegisterHealth(cfg.ID+"-journal", func() (string, error) {
				if err := p.PersistenceErr(); err != nil {
					return "", err
				}
				return "journaling", nil
			})
		}
	}
	return p, nil
}

// ID returns the peer's identity.
func (p *Peer) ID() string { return p.cfg.ID }

// Addr returns the peer's bus address (the actually-bound one).
func (p *Peer) Addr() bus.Address { return p.cfg.Addr }

// DHTLeaseStats reports the DHT client's lease cache counters (hits,
// misses, stale reads observed, replicas repaired). Zeros when the peer has
// no DHT client or replication is off.
func (p *Peer) DHTLeaseStats() (hits, misses, stale, repaired uint64) {
	if p.dhtc == nil {
		return 0, 0, 0, 0
	}
	return p.dhtc.LeaseStats()
}

// BoundAddr is an alias of Addr, named for transports where the configured
// and bound addresses differ (TCP ":0").
func (p *Peer) BoundAddr() bus.Address { return p.cfg.Addr }

// PublicKey returns the peer's identity key.
func (p *Peer) PublicKey() sig.PublicKey { return p.keys.Public.Clone() }

// Ops returns a snapshot of this peer's operation counts.
func (p *Peer) Ops() OpCounts { return p.ops.Snapshot() }

// RevokeCredentials adds the given credential serials to the peer's CRL and
// invalidates every cached verification artifact tied to the matching
// one-time public keys (see Judge.Revoke, Broker.RevokeCredentials).
func (p *Peer) RevokeCredentials(serials []uint64, pubs []sig.PublicKey) {
	p.gsv.Revoke(serials, pubs)
}

// InvalidateCryptoCache drops all memoized verification state (group-key
// rotation). No-op when the cache is disabled.
func (p *Peer) InvalidateCryptoCache() {
	if p.cache != nil {
		p.cache.Invalidate()
	}
}

// Close stops the peer and releases its journal (when persistent).
func (p *Peer) Close() error {
	err := p.ep.Close()
	p.closePersist()
	return err
}

// closePersist releases the journal handle, if any.
func (p *Peer) closePersist() {
	if p.persist != nil {
		_ = p.persist.log.Close()
	}
}

// Online reports the peer's own availability flag.
func (p *Peer) Online() bool {
	p.stateMu.Lock()
	defer p.stateMu.Unlock()
	return p.online
}

// GoOffline marks the peer offline (and tells the transport, when wired).
func (p *Peer) GoOffline() {
	p.stateMu.Lock()
	p.online = false
	p.stateMu.Unlock()
	if p.cfg.Presence != nil {
		p.cfg.Presence.SetOnline(p.cfg.Addr, false)
	}
}

// GoOnline brings the peer back: it re-announces presence, re-registers
// indirection triggers for its anonymous coins, and reconciles owner state
// per the configured sync mode — a broker synchronization (proactive) or
// marking owned coins for a lazy public-binding check on first use.
func (p *Peer) GoOnline() error {
	p.stateMu.Lock()
	p.online = true
	p.trigVersion++
	version := p.trigVersion
	p.stateMu.Unlock()

	var anon []*ownedCoin
	p.owned.Range(func(_ coin.ID, oc *ownedCoin) bool {
		if p.cfg.SyncMode == SyncLazy {
			oc.mu.Lock()
			oc.dirty = true
			oc.mu.Unlock()
		}
		if oc.handleKeys != nil {
			anon = append(anon, oc)
		}
		return true
	})

	if p.cfg.Presence != nil {
		p.cfg.Presence.SetOnline(p.cfg.Addr, true)
	}
	if p.indir != nil {
		for _, oc := range anon {
			if err := p.indir.Register(p.suite, *oc.handleKeys, p.cfg.Addr, version); err != nil {
				return fmt.Errorf("core: re-registering trigger: %w", err)
			}
		}
	}
	if p.cfg.SyncMode == SyncProactive {
		return p.Sync()
	}
	return nil
}

// call issues one outbound protocol call through the retry layer when one
// is configured (cfg.Retry), or straight through the endpoint otherwise.
// Inbound handling and endpoint lifecycle stay on p.ep.
func (p *Peer) call(to bus.Address, msg any) (any, error) {
	return p.caller.Call(to, msg)
}

// Retries reports how many outbound retries this peer has issued (zero
// when no retry policy is configured).
func (p *Peer) Retries() int64 {
	if rc, ok := p.caller.(*bus.RetryCaller); ok {
		return rc.Retries()
	}
	return 0
}

// Redirects reports how many redirect hints this peer has followed —
// ErrWrongShard/ErrNotLeader rejections that pointed at the right endpoint
// (zero when no retry policy is configured).
func (p *Peer) Redirects() int64 {
	if rc, ok := p.caller.(*bus.RetryCaller); ok {
		return rc.Redirects()
	}
	return 0
}

// handle dispatches one protocol message, then cuts a compaction snapshot
// when the journal has grown past its threshold (outside all store locks).
func (p *Peer) handle(from bus.Address, msg any) (any, error) {
	resp, err := p.dispatch(from, msg)
	p.maybePersistSnapshot()
	return resp, err
}

func (p *Peer) dispatch(_ bus.Address, msg any) (any, error) {
	// Each case opens a span + latency sample inline (no closure: a
	// wrapper func would allocate even with instrumentation disabled,
	// breaking the byte-identical contract of a nil Obs knob).
	switch m := msg.(type) {
	case OfferRequest:
		sp := p.instr.Begin("serve-offer")
		resp, err := p.handleOffer(m)
		p.instr.End(sp, err)
		return resp, err
	case DeliverRequest:
		sp := p.instr.Begin("serve-deliver")
		resp, err := p.handleDeliver(m)
		p.instr.End(sp, err)
		return resp, err
	case TransferRequest:
		sp := p.instr.Begin("serve-transfer")
		resp, err := p.handleTransferRequest(m)
		p.instr.End(sp, err)
		return resp, err
	case RenewRequest:
		sp := p.instr.Begin("serve-renewal")
		resp, err := p.handleRenewRequest(m)
		p.instr.End(sp, err)
		return resp, err
	case DisputeRequest:
		sp := p.instr.Begin("serve-dispute")
		resp, err := p.handleDispute(m)
		p.instr.End(sp, err)
		return resp, err
	case ChannelOpenRequest:
		sp := p.instr.Begin("serve-channel-open")
		resp, err := p.handleChannelOpen(m)
		p.instr.End(sp, err)
		return resp, err
	case ChannelPayRequest:
		sp := p.instr.Begin("serve-channel-pay")
		resp, err := p.handleChannelPay(m)
		p.instr.End(sp, err)
		return resp, err
	case ChannelCloseRequest:
		sp := p.instr.Begin("serve-channel-close")
		resp, err := p.handleChannelClose(m)
		p.instr.End(sp, err)
		return resp, err
	case dht.Notify:
		sp := p.instr.Begin("serve-notify")
		resp, err := p.handleNotify(m)
		p.instr.End(sp, err)
		return resp, err
	default:
		return nil, fmt.Errorf("%w: peer got %T", ErrBadRequest, msg)
	}
}

// randBytes draws protocol randomness from the injected source or
// crypto/rand.
func (p *Peer) randBytes(n int) []byte {
	out := make([]byte, n)
	if p.rand != nil {
		p.randMu.Lock()
		for i := range out {
			out[i] = byte(p.rand.Intn(256))
		}
		p.randMu.Unlock()
		return out
	}
	if _, err := rand.Read(out); err != nil {
		// crypto/rand failure is unrecoverable; fall back to a
		// time-derived nonce rather than panicking mid-protocol.
		binary.BigEndian.PutUint64(out, uint64(p.cfg.Clock().UnixNano()))
	}
	return out
}

// randSeq draws the random initial sequence number the paper assigns at
// issue time ("bind pkCU to pkCV, a randomly chosen sequence number").
func (p *Peer) randSeq() uint64 {
	if p.rand != nil {
		p.randMu.Lock()
		defer p.randMu.Unlock()
		return uint64(p.rand.Uint32()) + 1
	}
	return uint64(binary.BigEndian.Uint32(p.randBytes(4))) + 1
}

// HeldCoins lists the coins this peer currently holds, oldest first (by
// acquisition stamp).
func (p *Peer) HeldCoins() []coin.ID {
	type entry struct {
		id    coin.ID
		order uint64
	}
	var entries []entry
	p.held.Range(func(id coin.ID, hc *heldCoin) bool {
		entries = append(entries, entry{id, hc.order})
		return true
	})
	sort.Slice(entries, func(i, j int) bool { return entries[i].order < entries[j].order })
	out := make([]coin.ID, len(entries))
	for i, e := range entries {
		out[i] = e.id
	}
	return out
}

// HeldValue sums the face value of held coins.
func (p *Peer) HeldValue() int64 {
	var t int64
	p.held.Range(func(_ coin.ID, hc *heldCoin) bool {
		t += hc.c.Value
		return true
	})
	return t
}

// OwnedCoins lists the coins this peer owns (purchased).
func (p *Peer) OwnedCoins() []coin.ID { return p.owned.Keys() }

// SelfHeldCoins lists owned coins not yet issued (spendable by issue).
func (p *Peer) SelfHeldCoins() []coin.ID {
	var out []coin.ID
	p.owned.Range(func(id coin.ID, oc *ownedCoin) bool {
		oc.mu.Lock()
		selfHeld := oc.selfHeld
		oc.mu.Unlock()
		if selfHeld {
			out = append(out, id)
		}
		return true
	})
	return out
}

// HeldCoinOwner returns the owner identity of a held coin ("" for
// owner-anonymous coins). The simulator uses it to route renewals the way
// the paper's peers do — via the owner when online, the broker otherwise.
func (p *Peer) HeldCoinOwner(id coin.ID) (string, bool) {
	hc, ok := p.held.Get(id)
	if !ok {
		return "", false
	}
	return hc.c.Owner, true
}

// HeldBindingExpiry returns the expiry of the peer's binding for a held
// coin (zero time if unknown).
func (p *Peer) HeldBindingExpiry(id coin.ID) (time.Time, bool) {
	hc, ok := p.held.Get(id)
	if !ok {
		return time.Time{}, false
	}
	hc.mu.Lock()
	expiry := hc.binding.Expiry
	hc.mu.Unlock()
	return time.Unix(expiry, 0), true
}

// HeldBinding returns the peer's current binding for a held coin.
func (p *Peer) HeldBinding(id coin.ID) (*coin.Binding, bool) {
	hc, ok := p.held.Get(id)
	if !ok {
		return nil, false
	}
	hc.mu.Lock()
	defer hc.mu.Unlock()
	return hc.binding.Clone(), true
}

// OwnerBinding returns the owner-side binding for an owned coin (nil if
// never issued).
func (p *Peer) OwnerBinding(id coin.ID) (*coin.Binding, bool) {
	oc, ok := p.owned.Get(id)
	if !ok {
		return nil, false
	}
	oc.mu.Lock()
	defer oc.mu.Unlock()
	if oc.binding == nil {
		return nil, true
	}
	return oc.binding.Clone(), true
}

// Alerts returns fraud alerts raised by the double-spend watch.
func (p *Peer) Alerts() []FraudAlert {
	p.stateMu.Lock()
	defer p.stateMu.Unlock()
	return append([]FraudAlert(nil), p.alerts...)
}

// unwatch drops the DHT subscription for a relinquished coin.
func (p *Peer) unwatch(id coin.ID) {
	if p.dhtc == nil || !p.cfg.WatchHeldCoins {
		return
	}
	_ = p.dhtc.Unsubscribe(dht.KeyFor(sig.PublicKey(id)), p.cfg.Addr)
}
