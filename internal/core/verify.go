package core

import (
	"fmt"

	"whopay/internal/groupsig"
	"whopay/internal/sig"
)

// verifyHolderAndGroup checks the pair of signatures that guards every
// relinquishment-style request (downtime transfer, renew, deposit, owner
// service): the current holder's signature over msg, and the requester's
// group signature over the same msg for fairness.
//
// The three underlying checks — holder signature, judge certificate on the
// one-time credential, credential signature — are independent, so they run
// as one scheme-level batch and fan out in parallel under a BatchVerifier
// scheme. Recorded micro-ops (one Verify, one GroupVerify) and error
// precedence (holder first, then group, certificate before signature) are
// identical to the sequential pair this replaces.
//
// gsv, when non-nil, supplies the credential revocation list: a revoked
// serial fails closed before any group crypto runs (and before any memoized
// result could be consulted).
func verifyHolderAndGroup(suite sig.Suite, gsv *groupsig.Verifier, groupPub, holder sig.PublicKey, msg, holderSig []byte, gs groupsig.Signature) error {
	if suite.Rec != nil {
		suite.Rec.RecordVerify()
		suite.Rec.RecordGroupVerify()
	}
	if gsv != nil && gsv.IsRevoked(gs.Cred.Serial) {
		// Keep holder-error precedence even on the revocation path.
		if err := suite.Scheme.Verify(holder, msg, holderSig); err != nil {
			return fmt.Errorf("%w: %v", ErrNotHolder, err)
		}
		return fmt.Errorf("%w: group signature: %v", ErrBadRequest,
			fmt.Errorf("%w: serial %d", groupsig.ErrCredentialRevoked, gs.Cred.Serial))
	}
	errs := sig.VerifyBatch(suite.Scheme, []sig.VerifyJob{
		{Pub: holder, Msg: msg, Sig: holderSig},
		{Pub: groupPub, Msg: groupsig.CredentialMessage(gs.Cred.Serial, gs.Cred.Pub), Sig: gs.Cred.Cert},
		{Pub: gs.Cred.Pub, Msg: msg, Sig: gs.Sig},
	})
	if errs[0] != nil {
		return fmt.Errorf("%w: %v", ErrNotHolder, errs[0])
	}
	if errs[1] != nil {
		return fmt.Errorf("%w: group signature: %v", ErrBadRequest,
			fmt.Errorf("%w: %v", groupsig.ErrNotMember, errs[1]))
	}
	if errs[2] != nil {
		return fmt.Errorf("%w: group signature: %v", ErrBadRequest,
			fmt.Errorf("%w: %v", groupsig.ErrBadSignature, errs[2]))
	}
	return nil
}
