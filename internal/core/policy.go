package core

import (
	"errors"
	"fmt"
	"sort"

	"whopay/internal/bus"
	"whopay/internal/coin"
)

// Method is one way to make a payment (paper Section 6.1).
type Method int

// Payment methods, in the paper's vocabulary.
const (
	// MethodTransferOnline transfers a held coin whose owner is online,
	// via the owner.
	MethodTransferOnline Method = iota
	// MethodTransferViaBroker transfers a held coin whose owner is
	// offline, via the broker.
	MethodTransferViaBroker
	// MethodIssueExisting issues a self-held owned coin.
	MethodIssueExisting
	// MethodPurchaseIssue purchases a new coin and issues it.
	MethodPurchaseIssue
	// MethodDepositPurchaseIssue deposits a held offline coin, then
	// purchases and issues a new one (policy III's last resort).
	MethodDepositPurchaseIssue
)

var methodNames = map[Method]string{
	MethodTransferOnline:       "transfer-online",
	MethodTransferViaBroker:    "transfer-via-broker",
	MethodIssueExisting:        "issue-existing",
	MethodPurchaseIssue:        "purchase-issue",
	MethodDepositPurchaseIssue: "deposit-purchase-issue",
}

// String implements fmt.Stringer.
func (m Method) String() string {
	if s, ok := methodNames[m]; ok {
		return s
	}
	return "unknown-method"
}

// Policy is a preference order over payment methods (paper Section 6.1).
type Policy int

// The paper's policies. I and III are defined in the paper ("user-centric"
// and "broker-centric"); II.a and II.b appear in Table 1 as middle grounds
// but are not specified — our definitions are documented in DESIGN.md.
const (
	// PolicyI — user-centric: get rid of coins received from other peers
	// as quickly as possible.
	PolicyI Policy = iota
	// PolicyIIa — middle ground: prefer spending own coins before
	// touching the broker for offline transfers.
	PolicyIIa
	// PolicyIIb — middle ground: like I but buys before bothering the
	// broker with offline transfers.
	PolicyIIb
	// PolicyIII — broker-centric: avoid the broker as much as possible;
	// deposit offline coins only as a last resort.
	PolicyIII
)

var policyNames = map[Policy]string{
	PolicyI:   "I",
	PolicyIIa: "II.a",
	PolicyIIb: "II.b",
	PolicyIII: "III",
}

// String implements fmt.Stringer.
func (p Policy) String() string {
	if s, ok := policyNames[p]; ok {
		return s
	}
	return "unknown-policy"
}

// Preferences returns the policy's method order.
func (p Policy) Preferences() []Method {
	switch p {
	case PolicyI:
		return []Method{MethodTransferOnline, MethodTransferViaBroker, MethodIssueExisting, MethodPurchaseIssue}
	case PolicyIIa:
		return []Method{MethodTransferOnline, MethodIssueExisting, MethodTransferViaBroker, MethodPurchaseIssue}
	case PolicyIIb:
		return []Method{MethodTransferOnline, MethodIssueExisting, MethodPurchaseIssue, MethodTransferViaBroker}
	case PolicyIII:
		// The paper lists "purchase and issue" before "deposit an
		// offline coin, then purchase and issue", but also states
		// that policy III peers "deposit offline coins, and purchase
		// new coins to issue". The only executable reading that
		// produces that behaviour is to liquidate an offline coin
		// when one is held, and only inject fresh money when none is
		// (see DESIGN.md interpretation notes).
		return []Method{MethodTransferOnline, MethodIssueExisting, MethodDepositPurchaseIssue, MethodPurchaseIssue}
	default:
		return []Method{MethodTransferOnline, MethodTransferViaBroker, MethodIssueExisting, MethodPurchaseIssue}
	}
}

// ownerOnline classifies a held coin's owner availability using the prober
// (unknown counts as online so we at least attempt the transfer).
func (p *Peer) ownerOnline(hc *heldCoin) bool {
	if p.cfg.Prober == nil || hc.c.Anonymous() {
		return true
	}
	entry, ok := p.cfg.Directory.Lookup(hc.c.Owner)
	if !ok {
		return false
	}
	return p.cfg.Prober.Online(entry.Addr)
}

// pickHeld scans held coins of the given value in acquisition order and
// returns the first whose owner's availability matches wantOnline, skipping
// any in skip. Candidates are gathered in one wallet pass and probed
// oldest-first with an early exit: at high availability the first candidate
// almost always qualifies, so the (comparatively expensive) availability
// probes stay O(1) even for a large wallet.
func (p *Peer) pickHeld(value int64, wantOnline bool, skip map[coin.ID]bool) (coin.ID, bool) {
	type candidate struct {
		id    coin.ID
		order uint64
		hc    *heldCoin
	}
	var cands []candidate
	p.held.Range(func(id coin.ID, hc *heldCoin) bool {
		if !skip[id] && hc.c.Value == value {
			cands = append(cands, candidate{id, hc.order, hc})
		}
		return true
	})
	sort.Slice(cands, func(i, j int) bool { return cands[i].order < cands[j].order })
	for _, cand := range cands {
		if p.ownerOnline(cand.hc) == wantOnline {
			return cand.id, true
		}
	}
	return "", false
}

// Pay makes one payment of the given value to the payee, trying the
// methods in the peer's policy order. It returns the method that succeeded.
func (p *Peer) Pay(payee bus.Address, value int64, policy Policy) (Method, error) {
	if value <= 0 {
		return 0, fmt.Errorf("%w: non-positive value", ErrBadRequest)
	}
	var lastErr error
	for _, method := range policy.Preferences() {
		err := p.payWith(method, payee, value)
		if err == nil {
			return method, nil
		}
		if errors.Is(err, ErrNoCoinAvailable) {
			continue
		}
		lastErr = err
		// A hard failure of one method (e.g. owner went offline mid
		// transfer) still allows the next preference.
	}
	if lastErr == nil {
		lastErr = ErrNoCoinAvailable
	}
	return 0, fmt.Errorf("%w: %v", ErrPaymentFailed, lastErr)
}

func (p *Peer) payWith(method Method, payee bus.Address, value int64) error {
	switch method {
	case MethodTransferOnline:
		var skip map[coin.ID]bool
		var lastErr error = ErrNoCoinAvailable
		for {
			id, ok := p.pickHeld(value, true, skip)
			if !ok {
				return lastErr
			}
			if err := p.TransferTo(payee, id); err != nil {
				lastErr = err
				if isUnreachable(err) {
					// Owner vanished since probing; try the
					// next candidate.
					if skip == nil {
						skip = make(map[coin.ID]bool)
					}
					skip[id] = true
					continue
				}
				return err
			}
			return nil
		}
	case MethodTransferViaBroker:
		id, ok := p.pickHeld(value, false, nil)
		if !ok {
			return ErrNoCoinAvailable
		}
		return p.TransferViaBroker(payee, id)
	case MethodIssueExisting:
		id, ok := p.pickSelfHeld(value)
		if !ok {
			return ErrNoCoinAvailable
		}
		return p.IssueTo(payee, id)
	case MethodPurchaseIssue:
		id, err := p.Purchase(value, false)
		if err != nil {
			return err
		}
		return p.IssueTo(payee, id)
	case MethodDepositPurchaseIssue:
		id, ok := p.pickHeld(value, false, nil)
		if !ok {
			return ErrNoCoinAvailable
		}
		if err := p.Deposit(id, p.cfg.ID); err != nil {
			return err
		}
		id, err := p.Purchase(value, false)
		if err != nil {
			return err
		}
		return p.IssueTo(payee, id)
	default:
		return fmt.Errorf("%w: unknown method %d", ErrBadRequest, method)
	}
}

// pickSelfHeld selects the unissued owned coin of the given value with the
// smallest ID. The deterministic choice (rather than first map hit) keeps
// replayed runs — notably seeded chaos schedules — byte-for-byte repeatable.
func (p *Peer) pickSelfHeld(value int64) (coin.ID, bool) {
	var best coin.ID
	found := false
	p.owned.Range(func(id coin.ID, oc *ownedCoin) bool {
		if oc.c.Value != value {
			return true
		}
		oc.mu.Lock()
		selfHeld := oc.selfHeld
		oc.mu.Unlock()
		if selfHeld && (!found || id < best) {
			best = id
			found = true
		}
		return true
	})
	return best, found
}
