package core

import (
	"testing"
	"time"
)

// TestAccessors covers the small informational methods the other tests
// reach through richer paths or not at all.
func TestAccessors(t *testing.T) {
	f := newFixture(t, fixtureOpts{detection: true})
	u := f.addPeer("u", nil)
	v := f.addPeer("v", nil)

	if u.ID() != "u" {
		t.Fatalf("ID = %q", u.ID())
	}
	if u.BoundAddr() != u.Addr() {
		t.Fatal("BoundAddr != Addr on the memory bus")
	}
	if f.broker.BoundAddr() != f.broker.Addr() {
		t.Fatal("broker BoundAddr != Addr")
	}
	if !u.Online() {
		t.Fatal("fresh peer not online")
	}
	u.GoOffline()
	if u.Online() {
		t.Fatal("Online after GoOffline")
	}
	if err := u.GoOnline(); err != nil {
		t.Fatal(err)
	}
	if f.dir.Len() < 2 {
		t.Fatalf("directory Len = %d", f.dir.Len())
	}

	id, err := u.Purchase(3, false)
	if err != nil {
		t.Fatal(err)
	}
	owned := u.OwnedCoins()
	if len(owned) != 1 || owned[0] != id {
		t.Fatalf("OwnedCoins = %v", owned)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatal(err)
	}
	owner, ok := v.HeldCoinOwner(id)
	if !ok || owner != "u" {
		t.Fatalf("HeldCoinOwner = %q, %v", owner, ok)
	}
	expiry, ok := v.HeldBindingExpiry(id)
	if !ok || !expiry.After(f.clock.Now()) {
		t.Fatalf("HeldBindingExpiry = %v, %v", expiry, ok)
	}
	if _, ok := v.HeldCoinOwner("nope"); ok {
		t.Fatal("HeldCoinOwner found a ghost")
	}
	if _, ok := v.HeldBindingExpiry("nope"); ok {
		t.Fatal("HeldBindingExpiry found a ghost")
	}

	ops := u.Ops()
	if ops.Total() < 2 { // purchase + issue
		t.Fatalf("Total = %d", ops.Total())
	}
	sum := ops.Add(v.Ops())
	if sum.Total() < ops.Total() {
		t.Fatal("Add shrank the tally")
	}
}

// TestJudgeRevocationAndEscrow covers the judge facade.
func TestJudgeRevocationAndEscrow(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	if f.judge.IsRevoked("nobody") {
		t.Fatal("unknown identity revoked")
	}
	f.judge.Revoke("mallory")
	if !f.judge.IsRevoked("mallory") {
		t.Fatal("Revoke did not stick")
	}
	if _, err := f.judge.Enroll("mallory", 2); err == nil {
		t.Fatal("revoked identity enrolled")
	}
	shares, err := f.judge.Escrow(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 3 {
		t.Fatalf("shares = %d", len(shares))
	}
}

// TestGoOnlineWhileBrokerBusy: proactive rejoin close to the clock edge.
func TestGoOnlineProactiveIsOneSync(t *testing.T) {
	f := newFixture(t, fixtureOpts{syncMode: SyncProactive})
	u := f.addPeer("u", nil)
	for i := 0; i < 3; i++ {
		u.GoOffline()
		f.clock.Advance(time.Hour)
		if err := u.GoOnline(); err != nil {
			t.Fatal(err)
		}
	}
	if got := u.Ops().Get(OpSync); got != 3 {
		t.Fatalf("syncs = %d, want 3 (one per rejoin)", got)
	}
}

// TestVerifyHeldCoin: the on-demand audit agrees with the watch.
func TestVerifyHeldCoin(t *testing.T) {
	f := newFixture(t, fixtureOpts{detection: true})
	u := f.addPeer("u", nil)
	v := f.addPeer("v", nil)
	id, err := u.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IssueTo(v.Addr(), id); err != nil {
		t.Fatal(err)
	}
	if err := v.VerifyHeldCoin(id); err != nil {
		t.Fatalf("clean coin failed audit: %v", err)
	}
	if err := v.VerifyHeldCoin("ghost"); err == nil {
		t.Fatal("audited a ghost coin")
	}
	// The owner cheats: re-binds the coin publicly.
	accomplice, err := u.suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	ob, _ := u.OwnerBinding(id)
	forged, err := u.ForgeRebind(id, accomplice.Public, ob.Seq+1)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.PublishForgedBinding(id, forged); err != nil {
		t.Fatal(err)
	}
	if err := v.VerifyHeldCoin(id); err == nil {
		t.Fatal("audit missed the public re-binding")
	}
	// Without a DHT the audit declines to answer.
	f2 := newFixture(t, fixtureOpts{})
	p := f2.addPeer("p", nil)
	if err := p.VerifyHeldCoin("x"); err != ErrDetectionOff {
		t.Fatalf("got %v, want ErrDetectionOff", err)
	}
}
