package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"whopay/internal/bus"
	"whopay/internal/groupsig"
	"whopay/internal/sig"
)

// Remote enrollment: in single-process deployments peers enroll with an
// in-process *Judge; multi-process deployments run a JudgeServer and peers
// enroll over the bus (PeerConfig.JudgeAddr). Credential private keys cross
// the wire in the response — run the TCP transport over a confidential
// channel (TLS, WireGuard) in any real deployment.

// EnrollRequest registers an identity with the judge and requests an
// initial credential pool. The identity's public key is bound on first
// enrollment (trust-on-first-use); refills must be signed by it.
type EnrollRequest struct {
	Identity string
	PoolSize int
	Pub      sig.PublicKey
	Sig      []byte
}

func enrollMessage(identity string, poolSize int, pub sig.PublicKey) []byte {
	out := []byte("whopay/msg/enroll/1")
	out = appendBytes(out, []byte(identity))
	out = binary.BigEndian.AppendUint32(out, uint32(poolSize))
	out = appendBytes(out, pub)
	return out
}

// EnrollResponse carries the group public key and the member's initial
// credentials.
type EnrollResponse struct {
	GroupPub    sig.PublicKey
	Credentials []groupsig.IssuedCredential
}

// RefillRequest tops up a member's credential pool.
type RefillRequest struct {
	Identity string
	N        int
	Nonce    []byte
	Sig      []byte
}

func refillMessage(identity string, n int, nonce []byte) []byte {
	out := []byte("whopay/msg/refill/1")
	out = appendBytes(out, []byte(identity))
	out = binary.BigEndian.AppendUint32(out, uint32(n))
	out = appendBytes(out, nonce)
	return out
}

// RefillResponse carries fresh credentials.
type RefillResponse struct {
	Credentials []groupsig.IssuedCredential
}

// maxCredentialBatch bounds per-request issuance so a compromised member
// key cannot drain the judge.
const maxCredentialBatch = 256

// JudgeServer exposes a Judge over the bus.
type JudgeServer struct {
	judge  *Judge
	suite  sig.Suite
	ep     bus.Endpoint
	mu     sync.Mutex
	pubKey map[string]sig.PublicKey // identity -> enrollment key (TOFU)
}

// NewJudgeServer starts serving judge enrollment at addr.
func NewJudgeServer(network bus.Network, addr bus.Address, judge *Judge, scheme sig.Scheme) (*JudgeServer, error) {
	if judge == nil {
		return nil, errors.New("core: nil judge")
	}
	s := &JudgeServer{
		judge: judge,
		// Refills re-verify the same enrollment keys over and over — the
		// decoded-key cache makes that a one-time parse per identity.
		// (Null schemes bypass the cache internally.)
		suite:  sig.Suite{Scheme: sig.NewCached(scheme, sig.CacheOptions{})},
		pubKey: make(map[string]sig.PublicKey),
	}
	ep, err := network.Listen(addr, s.handle)
	if err != nil {
		return nil, fmt.Errorf("core: judge server listen: %w", err)
	}
	s.ep = ep
	return s, nil
}

// Addr returns the server's bound address.
func (s *JudgeServer) Addr() bus.Address { return s.ep.Addr() }

// Close stops the server.
func (s *JudgeServer) Close() error { return s.ep.Close() }

func (s *JudgeServer) handle(from bus.Address, msg any) (any, error) {
	switch m := msg.(type) {
	case EnrollRequest:
		return s.handleEnroll(m)
	case RefillRequest:
		return s.handleRefill(m)
	default:
		return nil, fmt.Errorf("%w: judge got %T", ErrBadRequest, msg)
	}
}

func (s *JudgeServer) handleEnroll(m EnrollRequest) (any, error) {
	if m.Identity == "" || len(m.Pub) == 0 {
		return nil, fmt.Errorf("%w: empty identity or key", ErrBadRequest)
	}
	if m.PoolSize <= 0 || m.PoolSize > maxCredentialBatch {
		return nil, fmt.Errorf("%w: pool size %d", ErrBadRequest, m.PoolSize)
	}
	if err := s.suite.Verify(m.Pub, enrollMessage(m.Identity, m.PoolSize, m.Pub), m.Sig); err != nil {
		return nil, fmt.Errorf("%w: enrollment signature: %v", ErrBadRequest, err)
	}
	s.mu.Lock()
	if existing, ok := s.pubKey[m.Identity]; ok && !existing.Equal(m.Pub) {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: identity %q already enrolled under a different key", ErrBadRequest, m.Identity)
	}
	s.pubKey[m.Identity] = m.Pub.Clone()
	s.mu.Unlock()

	creds, err := s.judge.mgr.EnrollRemote(m.Identity, m.PoolSize)
	if err != nil {
		return nil, err
	}
	return EnrollResponse{GroupPub: s.judge.GroupPublicKey(), Credentials: creds}, nil
}

func (s *JudgeServer) handleRefill(m RefillRequest) (any, error) {
	if m.N <= 0 || m.N > maxCredentialBatch {
		return nil, fmt.Errorf("%w: refill size %d", ErrBadRequest, m.N)
	}
	s.mu.Lock()
	pub, ok := s.pubKey[m.Identity]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q not enrolled here", ErrUnknownIdentity, m.Identity)
	}
	if err := s.suite.Verify(pub, refillMessage(m.Identity, m.N, m.Nonce), m.Sig); err != nil {
		return nil, fmt.Errorf("%w: refill signature: %v", ErrBadRequest, err)
	}
	creds, err := s.judge.mgr.IssueCredentials(m.Identity, m.N)
	if err != nil {
		return nil, err
	}
	return RefillResponse{Credentials: creds}, nil
}

// enrollRemotely performs the peer-side enrollment handshake and builds the
// member key with a refill RPC back to the judge.
func (p *Peer) enrollRemotely(judgeAddr bus.Address, poolSize int) (*groupsig.MemberKey, sig.PublicKey, error) {
	req := EnrollRequest{Identity: p.cfg.ID, PoolSize: poolSize, Pub: p.keys.Public}
	var err error
	if req.Sig, err = p.suite.Sign(p.keys.Private, enrollMessage(req.Identity, req.PoolSize, req.Pub)); err != nil {
		return nil, nil, fmt.Errorf("core: signing enrollment: %w", err)
	}
	raw, err := p.ep.Call(judgeAddr, req)
	if err != nil {
		return nil, nil, fmt.Errorf("core: remote enrollment: %w", err)
	}
	resp, ok := raw.(EnrollResponse)
	if !ok {
		return nil, nil, fmt.Errorf("%w: unexpected enrollment response %T", ErrBadRequest, raw)
	}
	refill := func(n int) ([]groupsig.IssuedCredential, error) {
		rr := RefillRequest{Identity: p.cfg.ID, N: n, Nonce: p.randBytes(16)}
		var err error
		if rr.Sig, err = p.suite.Sign(p.keys.Private, refillMessage(rr.Identity, rr.N, rr.Nonce)); err != nil {
			return nil, err
		}
		raw, err := p.ep.Call(judgeAddr, rr)
		if err != nil {
			return nil, err
		}
		resp, ok := raw.(RefillResponse)
		if !ok {
			return nil, fmt.Errorf("%w: unexpected refill response %T", ErrBadRequest, raw)
		}
		return resp.Credentials, nil
	}
	mk := groupsig.NewMemberKey(p.cfg.ID, resp.GroupPub, resp.Credentials, refill)
	return mk, resp.GroupPub, nil
}
