package core

import (
	"errors"
	"fmt"

	"whopay/internal/coin"
	"whopay/internal/sig"
	"whopay/internal/store"
	"whopay/internal/wal"
)

// Peer-side durability (DESIGN.md §10). A peer's wallet journals whole-entry
// states — one record per owned or held coin, rewritten on every mutation —
// rather than deltas: entries are small, full states make replay trivially
// idempotent, and the per-entry record is atomic (a torn write loses the
// whole update, never half a binding).
//
// Ordering: every journal append happens under the owning store shard's
// write lock (saveOwned/saveHeld go through Compute), so the journal order
// matches the memory order per coin even under concurrent payments.
// Lock order: store shard -> entry mutex -> log mutex, consistent with the
// peer's documented hierarchy.
//
// Not persisted, by design:
//   - pending offers: an open offer's holder key dies with the process; the
//     payer's delivery fails ErrNoOffer and the payment restarts cleanly.
//   - group member credentials: MemberKey holds judge-coupled secrets with
//     a refill channel; a recovered peer re-enrolls instead.
//   - fraud alerts and trigger versions: operational, reconstructible.

// ownedRec is the journaled form of an ownedCoin. The audit trail is stored
// as aligned slices in logOrder order (maps are gob-iteration-unstable).
type ownedRec struct {
	Coin       coin.Coin
	CoinKeys   sig.KeyPair
	HandleKeys *sig.KeyPair
	Binding    []byte // canonical marshal; nil when never issued
	SelfHeld   bool
	LogSeqs    []uint64
	LogProofs  []RelinquishProof
}

// encOwnedLocked encodes an owned coin; the caller holds oc.mu.
func encOwnedLocked(oc *ownedCoin) ([]byte, error) {
	rec := ownedRec{
		Coin:     *oc.c,
		CoinKeys: oc.coinKeys,
		SelfHeld: oc.selfHeld,
	}
	if oc.handleKeys != nil {
		hk := *oc.handleKeys
		rec.HandleKeys = &hk
	}
	if oc.binding != nil {
		rec.Binding = oc.binding.Marshal()
	}
	rec.LogSeqs = append([]uint64(nil), oc.logOrder...)
	for _, seq := range rec.LogSeqs {
		rec.LogProofs = append(rec.LogProofs, oc.log[seq])
	}
	return gobEnc(rec)
}

func decOwned(b []byte) (*ownedCoin, error) {
	var rec ownedRec
	if err := gobDec(b, &rec); err != nil {
		return nil, err
	}
	if len(rec.LogSeqs) != len(rec.LogProofs) {
		return nil, errors.New("core: owned record audit-trail length mismatch")
	}
	c := rec.Coin
	oc := &ownedCoin{
		c:          &c,
		coinKeys:   rec.CoinKeys,
		handleKeys: rec.HandleKeys,
		selfHeld:   rec.SelfHeld,
	}
	if len(rec.Binding) > 0 {
		binding, err := coin.UnmarshalBinding(rec.Binding)
		if err != nil {
			return nil, fmt.Errorf("core: owned record binding: %w", err)
		}
		oc.binding = binding
	}
	if len(rec.LogSeqs) > 0 {
		oc.log = make(map[uint64]RelinquishProof, len(rec.LogSeqs))
		oc.logOrder = rec.LogSeqs
		for i, seq := range rec.LogSeqs {
			oc.log[seq] = rec.LogProofs[i]
		}
	}
	return oc, nil
}

// heldRec is the journaled form of a heldCoin.
type heldRec struct {
	Coin       coin.Coin
	HolderKeys sig.KeyPair
	Order      uint64
	Binding    []byte
}

// encHeldLocked encodes a held coin; the caller holds hc.mu (or the entry
// is not yet published).
func encHeldLocked(hc *heldCoin) ([]byte, error) {
	return gobEnc(heldRec{
		Coin:       *hc.c,
		HolderKeys: hc.holderKeys,
		Order:      hc.order,
		Binding:    hc.binding.Marshal(),
	})
}

func decHeld(b []byte) (*heldCoin, error) {
	var rec heldRec
	if err := gobDec(b, &rec); err != nil {
		return nil, err
	}
	binding, err := coin.UnmarshalBinding(rec.Binding)
	if err != nil {
		return nil, fmt.Errorf("core: held record binding: %w", err)
	}
	c := rec.Coin
	return &heldCoin{
		c:          &c,
		holderKeys: rec.HolderKeys,
		order:      rec.Order,
		binding:    binding,
	}, nil
}

// journalPeerKeys writes (and force-syncs) the peer's identity keys.
func (p *Peer) journalPeerKeys() {
	val, err := gobEnc(keyPairRec{Public: p.keys.Public, Private: p.keys.Private})
	if err != nil {
		p.persist.fail(err)
		return
	}
	p.persist.batch(wal.Set(tblMeta, []byte(metaKeysKey), val))
	p.persist.fail(p.persist.log.Sync())
}

// saveOwned re-journals an owned coin's full current state. Call it after
// releasing the entry mutex at any mutation site; capture and append are
// atomic under the shard write lock plus oc.mu, so concurrent saves land in
// the journal in state order.
func (p *Peer) saveOwned(id coin.ID) {
	if p.persist == nil {
		return
	}
	p.owned.ComputeIfPresent(id, func(oc *ownedCoin) (*ownedCoin, store.Op) {
		oc.mu.Lock()
		val, err := encOwnedLocked(oc)
		oc.mu.Unlock()
		if err != nil {
			p.persist.fail(err)
		} else {
			p.persist.batch(wal.Set(tblOwned, []byte(id), val))
		}
		return oc, store.OpKeep
	})
}

// saveHeld re-journals a held coin's full current state (same discipline as
// saveOwned).
func (p *Peer) saveHeld(id coin.ID) {
	if p.persist == nil {
		return
	}
	p.held.ComputeIfPresent(id, func(hc *heldCoin) (*heldCoin, store.Op) {
		hc.mu.Lock()
		val, err := encHeldLocked(hc)
		hc.mu.Unlock()
		if err != nil {
			p.persist.fail(err)
		} else {
			p.persist.batch(wal.Set(tblHeld, []byte(id), val))
		}
		return hc, store.OpKeep
	})
}

// journalHeldSetLocked journals a held entry from inside a store Compute
// (the shard write lock is held; hc is fresh or entry-locked by the caller).
func (p *Peer) journalHeldSetLocked(id coin.ID, hc *heldCoin) {
	if p.persist == nil {
		return
	}
	val, err := encHeldLocked(hc)
	if err != nil {
		p.persist.fail(err)
		return
	}
	p.persist.batch(wal.Set(tblHeld, []byte(id), val))
}

// dropHeld removes a held coin, journaling the delete under the shard lock
// so it cannot interleave wrongly with a concurrent save. It returns the
// removed entry (relinquished coins must never resurrect on replay).
func (p *Peer) dropHeld(id coin.ID) (*heldCoin, bool) {
	var out *heldCoin
	found := false
	p.held.Compute(id, func(cur *heldCoin, exists bool) (*heldCoin, store.Op) {
		if !exists {
			return cur, store.OpKeep
		}
		out, found = cur, true
		if p.persist != nil {
			p.persist.batch(wal.Delete(tblHeld, []byte(id)))
		}
		return cur, store.OpDelete
	})
	return out, found
}

// PersistenceErr returns the first durability failure since the peer
// started, or nil.
func (p *Peer) PersistenceErr() error {
	if p.persist == nil {
		return nil
	}
	return p.persist.Err()
}

// Recovered reports whether this peer replayed durable state at startup.
func (p *Peer) Recovered() bool { return p.recovered }

// maybePersistSnapshot cuts a compaction snapshot when due. Never call it
// while holding a store shard lock (the emitter ranges the stores).
func (p *Peer) maybePersistSnapshot() {
	if p.persist != nil && p.persist.log.SnapshotDue() {
		p.persist.fail(p.CompactLog())
	}
}

// CompactLog writes a full-wallet snapshot and truncates the journal to it.
func (p *Peer) CompactLog() error {
	if p.persist == nil {
		return nil
	}
	return p.persist.log.Snapshot(func(app func([]byte) error) error {
		emit := func(muts ...wal.Mutation) error { return app(wal.EncodeBatch(muts)) }
		keys, err := gobEnc(keyPairRec{Public: p.keys.Public, Private: p.keys.Private})
		if err != nil {
			return err
		}
		if err := emit(wal.Set(tblMeta, []byte(metaKeysKey), keys)); err != nil {
			return err
		}
		var failed error
		p.owned.Range(func(id coin.ID, oc *ownedCoin) bool {
			oc.mu.Lock()
			val, err := encOwnedLocked(oc)
			oc.mu.Unlock()
			if err != nil {
				failed = err
				return false
			}
			failed = emit(wal.Set(tblOwned, []byte(id), val))
			return failed == nil
		})
		if failed != nil {
			return failed
		}
		p.held.Range(func(id coin.ID, hc *heldCoin) bool {
			hc.mu.Lock()
			val, err := encHeldLocked(hc)
			hc.mu.Unlock()
			if err != nil {
				failed = err
				return false
			}
			failed = emit(wal.Set(tblHeld, []byte(id), val))
			return failed == nil
		})
		return failed
	})
}

// recoverPeerState replays the journal into the wallet. Must run before the
// peer starts serving. Returns whether any durable state was found.
func (p *Peer) recoverPeerState() (bool, error) {
	found := false
	err := p.persist.log.Replay(func(payload []byte) error {
		muts, err := wal.DecodeBatch(payload)
		if err != nil {
			return err
		}
		found = found || len(muts) > 0
		for _, m := range muts {
			if err := p.applyRecovered(m); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return found, err
	}
	if !found {
		return false, nil
	}
	// Re-derive the scalars and mark owner state suspect: the world moved
	// while we were dead, exactly like downtime — the lazy-sync machinery
	// (or the next GoOnline) reconciles.
	var maxOrder uint64
	p.held.Range(func(_ coin.ID, hc *heldCoin) bool {
		if hc.order > maxOrder {
			maxOrder = hc.order
		}
		return true
	})
	p.heldSeq.Store(maxOrder)
	p.owned.Range(func(_ coin.ID, oc *ownedCoin) bool {
		oc.mu.Lock()
		oc.dirty = true
		oc.mu.Unlock()
		return true
	})
	return true, nil
}

// applyRecovered applies one replayed wallet mutation.
func (p *Peer) applyRecovered(m wal.Mutation) error {
	id := coin.ID(m.Key)
	switch m.Table {
	case tblMeta:
		if string(m.Key) != metaKeysKey || m.Op != wal.OpSet {
			return fmt.Errorf("core: unknown peer meta record %q", m.Key)
		}
		var rec keyPairRec
		if err := gobDec(m.Val, &rec); err != nil {
			return err
		}
		p.keys = sig.KeyPair{Public: rec.Public, Private: rec.Private}
	case tblOwned:
		if m.Op == wal.OpDelete {
			p.owned.Delete(id)
			return nil
		}
		oc, err := decOwned(m.Val)
		if err != nil {
			return err
		}
		p.owned.Set(id, oc)
	case tblHeld:
		if m.Op == wal.OpDelete {
			p.held.Delete(id)
			return nil
		}
		hc, err := decHeld(m.Val)
		if err != nil {
			return err
		}
		p.held.Set(id, hc)
	default:
		return fmt.Errorf("core: peer journal has unknown table %q", m.Table)
	}
	return nil
}

// RecoverPeer starts a peer from the durable wallet under
// cfg.Persistence.Dir, failing when there is none. The recovered peer
// re-enrolls with the judge (group credentials are not persisted) and comes
// up in the same state a rejoining owner would: call GoOnline to re-register
// indirection triggers and synchronize owner-side bindings.
func RecoverPeer(cfg PeerConfig) (*Peer, error) {
	if cfg.Persistence == nil {
		return nil, errors.New("core: RecoverPeer needs cfg.Persistence")
	}
	p, err := NewPeer(cfg)
	if err != nil {
		return nil, err
	}
	if !p.recovered {
		_ = p.Close()
		return nil, fmt.Errorf("core: no durable peer state under %s", cfg.Persistence.Dir)
	}
	return p, nil
}
