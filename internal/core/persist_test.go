package core

import (
	"errors"
	"testing"

	"whopay/internal/wal"
)

// These tests cover the broker's durability round trip at the unit level:
// journal → kill → recover → identical observable state. The byte-exact
// crash-point sweeps live in crash_test.go.

func persistedFixture(t *testing.T, cfg *wal.Config) *fixture {
	t.Helper()
	if cfg == nil {
		cfg = &wal.Config{Policy: wal.FsyncAlways}
	}
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	return newFixture(t, fixtureOpts{persist: cfg})
}

func TestBrokerRecoversDurableState(t *testing.T) {
	f := persistedFixture(t, nil)
	alice := f.addPeer("alice", nil)
	bob := f.addPeer("bob", nil)
	carol := f.addPeer("carol", nil)

	// Build up state of every journaled kind: minted coins, an issued
	// (held) coin, a deposited coin, a downtime re-binding, a frozen
	// identity, and a fraud case.
	idDeposit, err := alice.Purchase(3, false)
	if err != nil {
		t.Fatal(err)
	}
	idHeld, err := alice.Purchase(5, false)
	if err != nil {
		t.Fatal(err)
	}
	idSelf, err := alice.Purchase(7, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.IssueTo(bob.Addr(), idDeposit); err != nil {
		t.Fatal(err)
	}
	if err := bob.Deposit(idDeposit, bob.ID()); err != nil {
		t.Fatal(err)
	}
	if err := alice.IssueTo(bob.Addr(), idHeld); err != nil {
		t.Fatal(err)
	}
	// Downtime path: the owner goes offline, the holder re-binds to carol
	// through the broker.
	alice.GoOffline()
	if err := bob.TransferViaBroker(carol.Addr(), idHeld); err != nil {
		t.Fatal(err)
	}
	f.broker.Freeze("mallory")
	if err := f.broker.PersistenceErr(); err != nil {
		t.Fatalf("journaling failed before restart: %v", err)
	}

	wantIssued := f.broker.IssuedValue()
	wantDeposited := f.broker.DepositedValue()
	wantBalance := f.broker.Balance(bob.ID())
	wantCases := len(f.broker.FraudCases())

	f.restartBroker()

	if !f.broker.Recovered() {
		t.Fatal("restarted broker did not report recovered state")
	}
	if got := f.broker.IssuedValue(); got != wantIssued {
		t.Errorf("IssuedValue = %d, want %d", got, wantIssued)
	}
	if got := f.broker.DepositedValue(); got != wantDeposited {
		t.Errorf("DepositedValue = %d, want %d", got, wantDeposited)
	}
	if got := f.broker.Balance(bob.ID()); got != wantBalance {
		t.Errorf("Balance(bob) = %d, want %d", got, wantBalance)
	}
	if got := len(f.broker.FraudCases()); got != wantCases {
		t.Errorf("FraudCases = %d, want %d", got, wantCases)
	}
	if !f.broker.Frozen("mallory") {
		t.Error("freeze did not survive the restart")
	}
	if f.broker.Frozen("alice") || f.broker.Frozen("bob") {
		t.Error("recovery froze an honest identity")
	}

	// The already-deposited coin must stay deposited (white box: the
	// record is the double-deposit gate), and the broker must refuse to
	// service it again.
	if _, ok := f.broker.deposited.Get(idDeposit); !ok {
		t.Error("deposit record lost in restart")
	}
	c, ok := f.broker.coins.Get(idDeposit)
	if !ok {
		t.Fatal("coin registration lost in restart")
	}
	if _, err := f.broker.lookupActiveCoin(c.Pub); !errors.Is(err, ErrAlreadyDeposited) {
		t.Errorf("deposited coin serviceable after restart: %v", err)
	}

	// The downtime re-binding survived: carol deposits the re-bound coin
	// against the recovered broker's state (flavor-two bit comparison
	// against the replayed downtime binding).
	if err := carol.Deposit(idHeld, carol.ID()); err != nil {
		t.Errorf("deposit of re-bound coin after restart: %v", err)
	}

	// The owner's pending sync survived: alice rejoins cleanly and can
	// still spend her remaining self-held coin.
	if err := alice.GoOnline(); err != nil {
		t.Fatalf("owner rejoin after broker restart: %v", err)
	}
	if err := alice.IssueTo(bob.Addr(), idSelf); err != nil {
		t.Fatalf("issue after restart: %v", err)
	}
	if err := bob.Deposit(idSelf, bob.ID()); err != nil {
		t.Fatalf("deposit after restart: %v", err)
	}
	if got, want := f.broker.DepositedValue(), f.broker.IssuedValue(); got != want {
		t.Errorf("after full drain: deposited %d != issued %d", got, want)
	}
	if err := f.broker.PersistenceErr(); err != nil {
		t.Fatalf("journaling failed after restart: %v", err)
	}
}

func TestRecoverBrokerRequiresState(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	cfg := f.brokerCfg
	cfg.Addr = "broker-recover-empty"
	cfg.Persistence = &wal.Config{Dir: t.TempDir(), Policy: wal.FsyncAlways}
	if _, err := RecoverBroker(cfg); err == nil {
		t.Fatal("RecoverBroker succeeded with no durable state")
	}
	cfg.Persistence = nil
	if _, err := RecoverBroker(cfg); err == nil {
		t.Fatal("RecoverBroker succeeded without Persistence")
	}
}

// TestBrokerSnapshotCompaction drives enough traffic through a tiny
// journal budget that segments rotate and snapshots get cut, then proves a
// restart from the compacted log reproduces the books.
func TestBrokerSnapshotCompaction(t *testing.T) {
	f := persistedFixture(t, &wal.Config{
		Dir:           t.TempDir(),
		Policy:        wal.FsyncNever,
		SegmentSize:   4 << 10,
		SnapshotEvery: 16 << 10,
	})
	alice := f.addPeer("alice-compact", nil)
	bob := f.addPeer("bob-compact", nil)
	for i := 0; i < 60; i++ {
		id, err := alice.Purchase(2, false)
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := alice.IssueTo(bob.Addr(), id); err != nil {
				t.Fatal(err)
			}
			if err := bob.Deposit(id, bob.ID()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := f.broker.PersistenceErr(); err != nil {
		t.Fatalf("journaling: %v", err)
	}

	wantIssued := f.broker.IssuedValue()
	wantDeposited := f.broker.DepositedValue()
	wantBalance := f.broker.Balance(bob.ID())

	f.restartBroker()

	if got := f.broker.IssuedValue(); got != wantIssued {
		t.Errorf("IssuedValue = %d, want %d", got, wantIssued)
	}
	if got := f.broker.DepositedValue(); got != wantDeposited {
		t.Errorf("DepositedValue = %d, want %d", got, wantDeposited)
	}
	if got := f.broker.Balance(bob.ID()); got != wantBalance {
		t.Errorf("Balance(bob) = %d, want %d", got, wantBalance)
	}
}

func TestPeerRecoversWallet(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	aliceCfg := f.peerConfig("alice", nil)
	aliceCfg.Persistence = &wal.Config{Dir: t.TempDir(), Policy: wal.FsyncAlways}
	alice := f.addPeerWith(aliceCfg)
	bob := f.addPeer("bob", nil)
	carol := f.addPeer("carol", nil)

	// Owned coins in every state: issued-and-transferred (audit trail),
	// self-held, plus a held coin received from bob.
	idA, err := alice.Purchase(3, false)
	if err != nil {
		t.Fatal(err)
	}
	idB, err := alice.Purchase(5, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.IssueTo(bob.Addr(), idA); err != nil {
		t.Fatal(err)
	}
	if err := bob.TransferTo(carol.Addr(), idA); err != nil {
		t.Fatal(err)
	}
	idC, err := bob.Purchase(7, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := bob.IssueTo(alice.Addr(), idC); err != nil {
		t.Fatal(err)
	}
	if err := alice.PersistenceErr(); err != nil {
		t.Fatalf("journaling failed before restart: %v", err)
	}
	wantPub := alice.PublicKey()
	wantHeld := alice.HeldValue()

	alice = f.restartPeer(alice, aliceCfg)

	if !alice.Recovered() {
		t.Fatal("restarted peer did not report recovered state")
	}
	if !alice.PublicKey().Equal(wantPub) {
		t.Error("identity key changed across restart")
	}
	if got := len(alice.OwnedCoins()); got != 2 {
		t.Errorf("owned %d coins, want 2", got)
	}
	if got := alice.SelfHeldCoins(); len(got) != 1 || got[0] != idB {
		t.Errorf("self-held = %v, want [%s]", got, idB)
	}
	if got := alice.HeldCoins(); len(got) != 1 || got[0] != idC {
		t.Errorf("held = %v, want [%s]", got, idC)
	}
	if got := alice.HeldValue(); got != wantHeld {
		t.Errorf("held value = %d, want %d", got, wantHeld)
	}
	// White box: the issued coin's binding and audit trail survived.
	oc, ok := alice.owned.Get(idA)
	if !ok {
		t.Fatal("issued coin lost")
	}
	oc.mu.Lock()
	seq := uint64(0)
	if oc.binding != nil {
		seq = oc.binding.Seq
	}
	trail := len(oc.logOrder)
	oc.mu.Unlock()
	if seq == 0 {
		t.Error("issued coin recovered without a binding")
	}
	if trail != 1 {
		t.Errorf("audit trail has %d proofs, want 1", trail)
	}

	// The recovered wallet is fully operational: the held coin's holder key
	// still deposits, the recovered owner still services transfers and
	// renewals with its recovered coin keys, and the self-held coin spends.
	if err := alice.Deposit(idC, alice.ID()); err != nil {
		t.Fatalf("deposit of recovered held coin: %v", err)
	}
	if _, err := carol.Renew(idA); err != nil {
		t.Fatalf("renewal against recovered owner: %v", err)
	}
	if err := carol.TransferTo(bob.Addr(), idA); err != nil {
		t.Fatalf("transfer against recovered owner: %v", err)
	}
	if err := alice.IssueTo(bob.Addr(), idB); err != nil {
		t.Fatalf("issue of recovered self-held coin: %v", err)
	}
	if err := bob.Deposit(idA, bob.ID()); err != nil {
		t.Fatal(err)
	}
	if err := bob.Deposit(idB, bob.ID()); err != nil {
		t.Fatal(err)
	}
	if err := alice.PersistenceErr(); err != nil {
		t.Fatalf("journaling failed after restart: %v", err)
	}
}

func TestRecoverPeerRequiresState(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	cfg := f.peerConfig("dave", nil)
	cfg.Persistence = &wal.Config{Dir: t.TempDir(), Policy: wal.FsyncAlways}
	if _, err := RecoverPeer(cfg); err == nil {
		t.Fatal("RecoverPeer succeeded with no durable state")
	}
	cfg.Persistence = nil
	if _, err := RecoverPeer(cfg); err == nil {
		t.Fatal("RecoverPeer succeeded without Persistence")
	}
}

func TestPeerSnapshotCompaction(t *testing.T) {
	f := newFixture(t, fixtureOpts{})
	aliceCfg := f.peerConfig("alice-compact", nil)
	aliceCfg.Persistence = &wal.Config{
		Dir:           t.TempDir(),
		Policy:        wal.FsyncNever,
		SegmentSize:   4 << 10,
		SnapshotEvery: 8 << 10,
	}
	alice := f.addPeerWith(aliceCfg)
	bob := f.addPeer("bob-compact", nil)
	for i := 0; i < 60; i++ {
		id, err := alice.Purchase(2, false)
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := alice.IssueTo(bob.Addr(), id); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := alice.PersistenceErr(); err != nil {
		t.Fatalf("journaling: %v", err)
	}
	wantOwned := len(alice.OwnedCoins())
	wantSelf := len(alice.SelfHeldCoins())

	alice = f.restartPeer(alice, aliceCfg)

	if got := len(alice.OwnedCoins()); got != wantOwned {
		t.Errorf("owned = %d, want %d", got, wantOwned)
	}
	if got := len(alice.SelfHeldCoins()); got != wantSelf {
		t.Errorf("self-held = %d, want %d", got, wantSelf)
	}
}
