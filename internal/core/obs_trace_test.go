package core

import (
	"fmt"
	"strings"
	"testing"

	"whopay/internal/bus/tcpbus"
	"whopay/internal/obs"
	"whopay/internal/sig"
)

// TestTracePropagationOverTCP proves end-to-end trace stitching on the
// production stack: one anonymous transfer is a three-hop exchange — payer
// → payee (offer), payer → owner (transfer), owner → payee (deliver) —
// each hop crossing a real TCP socket. With a shared registry the trace
// identity rides the gob envelopes, so all three entities' server spans
// land in ONE trace rooted at the payer's client span.
func TestTracePropagationOverTCP(t *testing.T) {
	registerOnce.Do(RegisterWireTypes)
	reg := obs.NewRegistry()
	network := tcpbus.New(tcpbus.WithObs(reg))
	scheme := sig.ECDSA{}
	dir := NewDirectory()
	judge, err := NewJudge(scheme)
	if err != nil {
		t.Fatal(err)
	}
	broker, err := NewBroker(BrokerConfig{
		Network:   network,
		Addr:      "127.0.0.1:0",
		Scheme:    scheme,
		Directory: dir,
		GroupPub:  judge.GroupPublicKey(),
		Obs:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()

	newTCPPeer := func(id string) *Peer {
		p, err := NewPeer(PeerConfig{
			ID:         id,
			Network:    network,
			Addr:       "127.0.0.1:0",
			Scheme:     scheme,
			Directory:  dir,
			BrokerAddr: brokerBoundAddr(broker),
			BrokerPub:  broker.PublicKey(),
			Judge:      judge,
			CredPool:   4,
			Obs:        reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		dir.Register(id, p.PublicKey(), p.ep.Addr())
		return p
	}
	owner := newTCPPeer("trace-owner")
	payer := newTCPPeer("trace-payer")
	payee := newTCPPeer("trace-payee")

	id, err := owner.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.IssueTo(payer.ep.Addr(), id); err != nil {
		t.Fatal(err)
	}
	if err := payer.TransferTo(payee.ep.Addr(), id); err != nil {
		t.Fatal(err)
	}

	// Find the payer's root transfer span, then pull its whole trace.
	tr := reg.Tracer()
	var traceID, rootSpan string
	for _, s := range tr.Spans() {
		if s.Op == "transfer" && s.Entity == "trace-payer" {
			traceID, rootSpan = s.TraceID, s.SpanID
		}
	}
	if traceID == "" {
		t.Fatal("no transfer span recorded for the payer")
	}
	trace := tr.Trace(traceID)

	inTrace := make(map[string]bool, len(trace))
	entities := make(map[string]bool)
	ops := make(map[string]int)
	for _, s := range trace {
		inTrace[s.SpanID] = true
		entities[s.Entity] = true
		ops[s.Op]++
	}
	for _, want := range []string{"trace-payer", "trace-owner", "trace-payee"} {
		if !entities[want] {
			t.Errorf("trace %s is missing spans from %s (has %v)", traceID, want, keys(entities))
		}
	}
	for _, want := range []string{"transfer", "serve-offer", "serve-transfer", "serve-deliver"} {
		if ops[want] != 1 {
			t.Errorf("trace has %d %q spans, want 1 (ops: %v)", ops[want], want, ops)
		}
	}
	// Every non-root span's parent must resolve inside the same trace —
	// that is what makes it one stitched tree rather than four orphans.
	for _, s := range trace {
		if s.SpanID == rootSpan {
			if s.ParentID != "" {
				t.Errorf("root span has parent %q", s.ParentID)
			}
			continue
		}
		if s.ParentID == "" || !inTrace[s.ParentID] {
			t.Errorf("span %s/%s parent %q not in trace", s.Entity, s.Op, s.ParentID)
		}
	}
	// The three server-side spans crossed real sockets: their parents were
	// reconstructed from envelope fields, not shared memory.
	if ops["serve-deliver"] == 1 {
		var deliver, serveTransfer obs.SpanRecord
		for _, s := range trace {
			switch s.Op {
			case "serve-deliver":
				deliver = s
			case "serve-transfer":
				serveTransfer = s
			}
		}
		if deliver.ParentID != serveTransfer.SpanID {
			t.Errorf("serve-deliver parent = %s, want the owner's serve-transfer span %s",
				deliver.ParentID, serveTransfer.SpanID)
		}
	}
}

// TestUntracedTCPEnvelopeUnchanged pins the disabled-state wire contract:
// without a registry the transport injects nothing, so no span records
// exist anywhere and messages decode exactly as before.
func TestUntracedTCPEnvelopeUnchanged(t *testing.T) {
	registerOnce.Do(RegisterWireTypes)
	network := tcpbus.New() // no WithObs
	scheme := sig.ECDSA{}
	dir := NewDirectory()
	judge, err := NewJudge(scheme)
	if err != nil {
		t.Fatal(err)
	}
	broker, err := NewBroker(BrokerConfig{
		Network:   network,
		Addr:      "127.0.0.1:0",
		Scheme:    scheme,
		Directory: dir,
		GroupPub:  judge.GroupPublicKey(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()
	p, err := NewPeer(PeerConfig{
		ID:         "untraced",
		Network:    network,
		Addr:       "127.0.0.1:0",
		Scheme:     scheme,
		Directory:  dir,
		BrokerAddr: brokerBoundAddr(broker),
		BrokerPub:  broker.PublicKey(),
		Judge:      judge,
		CredPool:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	dir.Register("untraced", p.PublicKey(), p.ep.Addr())
	if _, err := p.Purchase(1, false); err != nil {
		t.Fatalf("purchase without obs: %v", err)
	}
}

func keys(m map[string]bool) string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return fmt.Sprintf("[%s]", strings.Join(out, " "))
}
