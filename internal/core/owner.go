package core

import (
	"fmt"
	"time"

	"whopay/internal/bus"
	"whopay/internal/coin"
	"whopay/internal/dht"
	"whopay/internal/sig"
)

// Owner-side protocol: issuing coins, servicing transfers and renewals for
// coins this peer owns, lazy synchronization, and dispute answering.

// IssueTo spends a self-held owned coin by issuing it to the payee (paper
// Section 4.2, Issue). For owner-anonymous coins the ownership challenge is
// answered with the coin key and a group signature accompanies the issue.
func (p *Peer) IssueTo(payee bus.Address, id coin.ID) error {
	sp := p.instr.Begin("issue")
	err := p.issueTo(payee, id)
	p.instr.End(sp, err)
	return err
}

func (p *Peer) issueTo(payee bus.Address, id coin.ID) error {
	oc, ok := p.owned.Get(id)
	if !ok {
		return ErrUnknownCoin
	}
	if !oc.svc.TryLock() {
		return ErrCoinBusy
	}
	defer oc.svc.Unlock()
	oc.mu.Lock()
	selfHeld := oc.selfHeld
	oc.mu.Unlock()
	if !selfHeld {
		return fmt.Errorf("%w: coin already issued", ErrNoCoinAvailable)
	}
	c := oc.c

	resp, err := p.call(payee, OfferRequest{Value: c.Value})
	if err != nil {
		return fmt.Errorf("core: offering payment: %w", err)
	}
	offer, ok := resp.(OfferResponse)
	if !ok {
		return fmt.Errorf("%w: unexpected offer response %T", ErrBadRequest, resp)
	}

	binding := &coin.Binding{
		CoinPub: c.Pub.Clone(),
		Holder:  offer.HolderPub.Clone(),
		Seq:     p.randSeq(),
		Expiry:  p.cfg.Clock().Add(p.cfg.RenewalPeriod).Unix(),
	}
	if binding.Sig, err = p.suite.Sign(oc.coinKeys.Private, binding.Message()); err != nil {
		return fmt.Errorf("core: signing issue binding: %w", err)
	}

	deliver := DeliverRequest{Coin: *c, Binding: *binding, Issue: true}
	challengeMsg := coin.ChallengeMessage(c.Pub, offer.Nonce)
	if c.Anonymous() {
		if deliver.ChallengeSig, err = p.suite.Sign(oc.coinKeys.Private, challengeMsg); err != nil {
			return fmt.Errorf("core: signing challenge: %w", err)
		}
		gs, err := p.member.Sign(p.suite, binding.Message())
		if err != nil {
			return fmt.Errorf("core: group-signing issue: %w", err)
		}
		deliver.GroupSig = &gs
	} else {
		if deliver.ChallengeSig, err = p.suite.Sign(p.keys.Private, challengeMsg); err != nil {
			return fmt.Errorf("core: signing challenge: %w", err)
		}
	}

	if _, err := p.call(payee, deliver); err != nil {
		return fmt.Errorf("core: delivering issue: %w", err)
	}

	oc.mu.Lock()
	oc.binding = binding
	oc.selfHeld = false
	oc.dirty = false
	oc.mu.Unlock()
	p.saveOwned(id)

	p.publishOwnedBinding(oc, binding)
	p.ops.Inc(OpIssue)
	return nil
}

// handleTransferRequest services a transfer of a coin this peer owns: it
// validates the current holder's relinquishment and group signature,
// re-binds the coin to the payee's fresh holder key, delivers, records the
// relinquishment proof in the audit trail, and publishes the new binding.
func (p *Peer) handleTransferRequest(m TransferRequest) (any, error) {
	id := coin.ID(m.Body.CoinPub)
	oc, ok := p.owned.Get(id)
	if !ok {
		return nil, ErrNotOwner
	}
	// Build the canonical messages before taking the coin's service lock:
	// they depend only on the request, and every byte of work done under
	// svc serializes all other requests for this coin.
	bodyMsg := m.Body.Message()
	challengeMsg := coin.ChallengeMessage(m.Body.CoinPub, m.Body.Nonce)
	if !oc.svc.TryLock() {
		return nil, ErrCoinBusy
	}
	defer oc.svc.Unlock()

	if err := p.ownerCatchUp(oc, m.PresentedBinding); err != nil {
		return nil, err
	}

	oc.mu.Lock()
	if oc.binding == nil {
		oc.mu.Unlock()
		return nil, fmt.Errorf("%w: coin was never issued", ErrStaleBinding)
	}
	cur := oc.binding.Clone()
	oc.mu.Unlock()
	c := oc.c

	if m.Body.PrevSeq != cur.Seq {
		return nil, fmt.Errorf("%w: request cites seq %d, current is %d", ErrStaleBinding, m.Body.PrevSeq, cur.Seq)
	}
	if err := verifyHolderAndGroup(p.suite, p.gsv, p.cfg.GroupPub, cur.Holder, bodyMsg, m.HolderSig, m.GroupSig); err != nil {
		return nil, err
	}

	next := &coin.Binding{
		CoinPub: c.Pub.Clone(),
		Holder:  m.Body.NewHolder.Clone(),
		Seq:     cur.Seq + 1,
		// A transfer does not extend the coin's life — renewals do.
		// (Otherwise a circulating coin would never need renewal and
		// the paper's renewal load could not exist.) A coin that sat
		// out its expiry with an offline holder is refreshed here.
		Expiry: renewedExpiry(cur.Expiry, p.cfg.Clock(), p.cfg.RenewalPeriod, false),
	}
	var err error
	if next.Sig, err = p.suite.Sign(oc.coinKeys.Private, next.Message()); err != nil {
		return nil, fmt.Errorf("core: signing transfer binding: %w", err)
	}
	deliver := DeliverRequest{Coin: *c, Binding: *next}
	if c.Anonymous() {
		deliver.ChallengeSig, err = p.suite.Sign(oc.coinKeys.Private, challengeMsg)
	} else {
		deliver.ChallengeSig, err = p.suite.Sign(p.keys.Private, challengeMsg)
	}
	if err != nil {
		return nil, fmt.Errorf("core: signing challenge: %w", err)
	}

	// Deliver before committing: a failed delivery leaves the original
	// holder bound, with nothing published to roll back.
	if _, err := p.call(bus.Address(m.Body.PayeeAddr), deliver); err != nil {
		return TransferResponse{OK: false, Reason: "payee delivery failed: " + err.Error()}, nil
	}

	oc.mu.Lock()
	oc.binding = next
	p.recordProofLocked(oc, RelinquishProof{Body: m.Body, HolderSig: m.HolderSig, PrevHold: cur.Holder.Clone()})
	oc.mu.Unlock()
	p.saveOwned(id)

	p.publishOwnedBinding(oc, next)
	p.ops.Inc(OpTransfer)
	return TransferResponse{OK: true}, nil
}

// handleRenewRequest services a renewal for a coin this peer owns: same
// holder, next sequence number, fresh expiry (paper Section 4.2, Renewal).
func (p *Peer) handleRenewRequest(m RenewRequest) (any, error) {
	id := coin.ID(m.CoinPub)
	oc, ok := p.owned.Get(id)
	if !ok {
		return nil, ErrNotOwner
	}
	// As in handleTransferRequest: message construction stays outside svc.
	msg := renewMessage(m.CoinPub, m.Seq)
	if !oc.svc.TryLock() {
		return nil, ErrCoinBusy
	}
	defer oc.svc.Unlock()
	if err := p.ownerCatchUp(oc, m.PresentedBinding); err != nil {
		return nil, err
	}

	oc.mu.Lock()
	if oc.binding == nil {
		oc.mu.Unlock()
		return nil, fmt.Errorf("%w: coin was never issued", ErrStaleBinding)
	}
	cur := oc.binding.Clone()
	oc.mu.Unlock()
	c := oc.c

	if m.Seq != cur.Seq {
		return nil, fmt.Errorf("%w: request cites seq %d, current is %d", ErrStaleBinding, m.Seq, cur.Seq)
	}
	if err := verifyHolderAndGroup(p.suite, p.gsv, p.cfg.GroupPub, cur.Holder, msg, m.HolderSig, m.GroupSig); err != nil {
		return nil, err
	}

	next := &coin.Binding{
		CoinPub: c.Pub.Clone(),
		Holder:  cur.Holder.Clone(),
		Seq:     cur.Seq + 1,
		Expiry:  renewedExpiry(cur.Expiry, p.cfg.Clock(), p.cfg.RenewalPeriod, true),
	}
	var err error
	if next.Sig, err = p.suite.Sign(oc.coinKeys.Private, next.Message()); err != nil {
		return nil, fmt.Errorf("core: signing renewal binding: %w", err)
	}

	oc.mu.Lock()
	oc.binding = next
	p.recordProofLocked(oc, RelinquishProof{
		Renewal:   true,
		Body:      coin.TransferBody{CoinPub: c.Pub.Clone(), PrevSeq: cur.Seq},
		HolderSig: m.HolderSig,
		PrevHold:  cur.Holder.Clone(),
	})
	oc.mu.Unlock()
	p.saveOwned(id)

	p.publishOwnedBinding(oc, next)
	p.ops.Inc(OpRenewal)
	return RenewResponse{Binding: *next}, nil
}

// renewedExpiry computes a binding's expiry. Renewals extend by the
// renewal period; transfers preserve the current expiry (refreshing it only
// when already past, so stale coins revive on their next hop instead of
// wedging).
func renewedExpiry(current int64, now time.Time, period time.Duration, renewal bool) int64 {
	if renewal || current <= now.Unix() {
		return now.Add(period).Unix()
	}
	return current
}

// ownerCatchUp reconciles the owner's local binding with reality after
// downtime. Under lazy sync the first request per coin triggers a public
// binding list check (counted as a "check"; an adoption is a "lazy sync" —
// the operations Figure 5 reports). Without a DHT the holder's presented
// broker-signed binding serves as the catch-up evidence. Callers hold
// oc.svc, so at most one catch-up runs per coin at a time.
func (p *Peer) ownerCatchUp(oc *ownedCoin, presented *coin.Binding) error {
	oc.mu.Lock()
	dirty := oc.dirty
	var localSeq uint64
	if oc.binding != nil {
		localSeq = oc.binding.Seq
	}
	oc.mu.Unlock()
	c := oc.c

	if dirty && p.dhtc != nil {
		p.ops.Inc(OpCheck)
		rec, found, err := p.dhtc.Get(dht.KeyFor(c.Pub))
		if err == nil && found && rec.Version > localSeq {
			if observed, perr := coin.UnmarshalBinding(rec.Value); perr == nil {
				// Only broker-signed records can legitimately
				// outrun the owner's own state.
				if observed.VerifyFor(p.suite, c, p.brokerPubFor(string(c.Pub)), time.Time{}) == nil && observed.ByBroker {
					oc.mu.Lock()
					oc.binding = observed
					oc.selfHeld = false
					oc.mu.Unlock()
					p.saveOwned(c.ID())
					p.ops.Inc(OpLazySync)
					localSeq = observed.Seq
				}
			}
		}
		oc.mu.Lock()
		oc.dirty = false
		oc.mu.Unlock()
	}

	// Fallback catch-up from presented evidence (also covers deployments
	// without a DHT): a valid broker-signed binding newer than ours
	// proves downtime operations we missed.
	if presented != nil && presented.ByBroker && presented.Seq > localSeq {
		if err := presented.VerifyFor(p.suite, c, p.brokerPubFor(string(c.Pub)), time.Time{}); err != nil {
			return fmt.Errorf("%w: presented binding: %v", ErrStaleBinding, err)
		}
		oc.mu.Lock()
		oc.binding = presented.Clone()
		oc.selfHeld = false
		oc.mu.Unlock()
		p.saveOwned(c.ID())
		p.ops.Inc(OpLazySync)
	}
	return nil
}

// recordProofLocked appends to the coin's audit trail, enforcing the
// configured cap. Callers hold oc.mu.
func (p *Peer) recordProofLocked(oc *ownedCoin, proof RelinquishProof) {
	if oc.log == nil {
		oc.log = make(map[uint64]RelinquishProof)
	}
	oc.log[proof.Body.PrevSeq] = proof
	oc.logOrder = append(oc.logOrder, proof.Body.PrevSeq)
	if cap := p.cfg.AuditLogCap; cap > 0 && len(oc.logOrder) > cap {
		evict := oc.logOrder[0]
		oc.logOrder = oc.logOrder[1:]
		delete(oc.log, evict)
	}
}

// publishOwnedBinding writes the binding to the public binding list, signed
// with the coin key (only the owner knows it — the DHT's write ACL).
func (p *Peer) publishOwnedBinding(oc *ownedCoin, binding *coin.Binding) {
	if p.dhtc == nil || !p.cfg.PublishBindings {
		return
	}
	rec, err := dht.SignRecord(p.suite, oc.coinKeys, dht.KeyFor(oc.c.Pub), binding.Seq, binding.Marshal())
	if err != nil {
		return
	}
	// Best effort: a failed publish degrades detection, not the payment.
	_ = p.dhtc.Put(rec)
}

// handleDispute answers the broker's audit-trail request with the
// relinquishment proofs covering [FromSeq, ToSeq).
func (p *Peer) handleDispute(m DisputeRequest) (any, error) {
	oc, ok := p.owned.Get(coin.ID(m.CoinPub))
	if !ok {
		return nil, ErrNotOwner
	}
	oc.mu.Lock()
	defer oc.mu.Unlock()
	var proofs []RelinquishProof
	for seq := m.FromSeq; seq < m.ToSeq; seq++ {
		if proof, found := oc.log[seq]; found {
			proofs = append(proofs, proof)
		}
	}
	return DisputeResponse{Proofs: proofs}, nil
}

// ForgeRebind exists for fraud-injection tests and examples: it makes this
// owner sign a binding handing the coin to an arbitrary key at an arbitrary
// sequence number, without holder consent — the owner double-spend the
// detection machinery must catch. It never touches local state.
func (p *Peer) ForgeRebind(id coin.ID, rival sig.PublicKey, seq uint64) (*coin.Binding, error) {
	oc, ok := p.owned.Get(id)
	if !ok {
		return nil, ErrUnknownCoin
	}
	oc.mu.Lock()
	if oc.binding == nil {
		oc.mu.Unlock()
		return nil, ErrUnknownCoin
	}
	forged := &coin.Binding{
		CoinPub: oc.c.Pub.Clone(),
		Holder:  rival.Clone(),
		Seq:     seq,
		Expiry:  oc.binding.Expiry,
	}
	oc.mu.Unlock()
	keys := oc.coinKeys
	var err error
	if forged.Sig, err = p.suite.Sign(keys.Private, forged.Message()); err != nil {
		return nil, err
	}
	return forged, nil
}

// PublishForgedBinding pushes a forged binding to the public binding list
// without touching local state — the second half of the owner double-spend
// the detection machinery must catch (fraud-injection support for tests and
// examples).
func (p *Peer) PublishForgedBinding(id coin.ID, forged *coin.Binding) error {
	if p.dhtc == nil {
		return ErrDetectionOff
	}
	oc, ok := p.owned.Get(id)
	if !ok {
		return ErrUnknownCoin
	}
	rec, err := dht.SignRecord(p.suite, oc.coinKeys, dht.KeyFor(oc.c.Pub), forged.Seq, forged.Marshal())
	if err != nil {
		return err
	}
	return p.dhtc.Put(rec)
}

// ForgeDoubleIssue forges a conflicting binding at the coin's current
// sequence number (see ForgeRebind).
func (p *Peer) ForgeDoubleIssue(id coin.ID, rival sig.PublicKey) (*coin.Binding, error) {
	oc, ok := p.owned.Get(id)
	if !ok {
		return nil, ErrUnknownCoin
	}
	oc.mu.Lock()
	if oc.binding == nil {
		oc.mu.Unlock()
		return nil, ErrUnknownCoin
	}
	seq := oc.binding.Seq
	oc.mu.Unlock()
	return p.ForgeRebind(id, rival, seq)
}
