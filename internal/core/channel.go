package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"whopay/internal/bus"
	"whopay/internal/coin"
	"whopay/internal/payword"
	"whopay/internal/sig"
)

// Micropayment channels (DESIGN.md §12): a payer opens a PayWord chain
// against a vendor and streams per-unit paywords — hash checks only, no
// signatures, no broker — then settles the accumulated balance with a
// single WhoPay purchase+issue when the credit window closes. This is the
// aggregation the paper's Section 7 sketches: "each pair of users maintains
// a soft credit window between themselves and only makes payments when this
// window reaches a threshold value."
//
// Channel state is in-memory on both ends: a crash loses only the unsettled
// tail of a window (bounded by the settle threshold / chain capacity),
// never settled WhoPay value. The payword stream is the ordering backbone —
// a dropped payment self-heals because the next payword pays for every
// skipped index (payword.Vendor.Receive), and an exact replay of the last
// payment is answered idempotently from the vendor's cached response.

// DefaultChannelCapacity is the chain length used when ChannelOptions.
// Capacity is zero: the maximum units a window can carry before it must
// close and settle.
const DefaultChannelCapacity = 1024

// ChannelOptions configures a payer-side micropayment channel.
type ChannelOptions struct {
	// Capacity is the PayWord chain length — the credit ceiling of the
	// window. Defaults to DefaultChannelCapacity.
	Capacity int
	// SettleThreshold auto-settles the channel (one WhoPay payment for
	// the whole balance) whenever the vendor-reported balance reaches it.
	// Zero means settlement only happens explicitly (SettleChannel /
	// CloseChannel) or when the window closes (capacity, TTL).
	SettleThreshold int64
	// TTL bounds the credit window in time: the first payment attempted
	// after expiry settles the balance, closes the channel, and returns
	// ErrChannelClosed. Zero disables expiry.
	TTL time.Duration
	// Lottery switches the channel to Rivest-style probabilistic
	// settlement: every payment carries a lottery ticket worth Prize
	// units with probability 1/WinDivisor, and only winning tickets
	// accrue balance. The payword stream still flows underneath as the
	// ordering and replay backbone. Expected cost per payment is
	// Prize/WinDivisor units.
	Lottery    bool
	WinDivisor uint32
	Prize      uint32
}

// ChannelReceipt is the payer-visible outcome of one channel payment.
type ChannelReceipt struct {
	// Owed is the vendor-reported unsettled balance after this payment.
	Owed int64
	// Won reports whether this payment's lottery ticket won (always
	// false on plain payword channels).
	Won bool
}

// payerChannel is the payer-side state of one channel. All operations on a
// channel serialize under mu — a PayWord chain is a single payer-vendor
// session and its cursor must not interleave.
type payerChannel struct {
	mu     sync.Mutex
	root   payword.Word
	vendor bus.Address
	chain  *payword.Chain
	keys   sig.KeyPair // chain identity: signs the commitment and tickets
	opts   ChannelOptions
	opened time.Time

	nonce       [32]byte // current vendor nonce (lottery ticket freshness)
	outstanding int64    // vendor-reported unsettled balance
	pending     coin.ID  // settlement coin issued but not yet acknowledged
	closed      bool
}

// vendorChannel is the vendor-side state of one channel.
type vendorChannel struct {
	mu    sync.Mutex
	vend  *payword.Vendor
	payer sig.PublicKey // commitment payer: pins ticket signers

	lottery    bool
	winDivisor uint32
	prize      uint32
	nonce      [32]byte

	accrued int64 // total value received (units, or won prizes)
	settled int64 // value already settled with WhoPay coins

	lastSet  bool // replay idempotence: cache of the last accepted payment
	lastPay  payword.Payment
	lastResp ChannelPayResponse

	closed bool
}

// settleRecord pins a settlement coin to the channel it credited, so a
// replayed close is idempotent and a coin can never credit two channels.
type settleRecord struct {
	root   payword.Word
	amount int64
}

func channelKey(root payword.Word) string { return string(root[:]) }

// OpenChannel opens a micropayment channel to the vendor peer at the given
// address: it builds a fresh PayWord chain dedicated to that vendor, sends
// the signed commitment, and returns the chain root — the channel handle
// every later call takes.
func (p *Peer) OpenChannel(vendor bus.Address, opts ChannelOptions) (payword.Word, error) {
	sp := p.instr.Begin("channel-open")
	root, err := p.openChannel(vendor, opts)
	p.instr.End(sp, err)
	return root, err
}

func (p *Peer) openChannel(vendor bus.Address, opts ChannelOptions) (payword.Word, error) {
	if opts.Capacity <= 0 {
		opts.Capacity = DefaultChannelCapacity
	}
	if opts.Lottery && (opts.WinDivisor == 0 || opts.Prize == 0) {
		return payword.Word{}, fmt.Errorf("%w: lottery channel needs WinDivisor and Prize", ErrBadRequest)
	}
	// The chain gets its own keypair: the commitment carries the public
	// key, so the vendor never learns the payer's WhoPay identity — the
	// channel inherits the coin layer's payer anonymity.
	keys, err := p.suite.GenerateKey()
	if err != nil {
		return payword.Word{}, fmt.Errorf("core: channel keygen: %w", err)
	}
	chain, err := payword.NewChain(p.suite, keys, string(vendor), opts.Capacity)
	if err != nil {
		return payword.Word{}, fmt.Errorf("core: building channel chain: %w", err)
	}
	c := chain.Commitment()
	raw, err := p.call(vendor, ChannelOpenRequest{
		Commitment: c,
		Lottery:    opts.Lottery,
		WinDivisor: opts.WinDivisor,
		Prize:      opts.Prize,
	})
	if err != nil {
		return payword.Word{}, fmt.Errorf("core: opening channel: %w", err)
	}
	or, ok := raw.(ChannelOpenResponse)
	if !ok {
		return payword.Word{}, fmt.Errorf("%w: unexpected channel-open response %T", ErrBadRequest, raw)
	}
	pc := &payerChannel{
		root:   c.Root,
		vendor: vendor,
		chain:  chain,
		keys:   keys,
		opts:   opts,
		opened: p.cfg.Clock(),
	}
	if len(or.Nonce) != len(pc.nonce) {
		return payword.Word{}, fmt.Errorf("%w: channel-open nonce is %d bytes", ErrBadRequest, len(or.Nonce))
	}
	copy(pc.nonce[:], or.Nonce)
	p.channels.Set(channelKey(c.Root), pc)
	return c.Root, nil
}

// ChannelPay streams one unit payment down the channel: a payword release
// and a hash check at the vendor — no signatures on the hot path. When the
// window closes underneath the payment (chain exhausted or TTL expired) the
// balance is settled, the channel is closed, and ErrChannelClosed is
// returned; the caller opens a fresh channel to continue.
func (p *Peer) ChannelPay(root payword.Word) (ChannelReceipt, error) {
	sp := p.instr.Begin("channel-pay")
	rc, err := p.channelPay(root)
	p.instr.End(sp, err)
	return rc, err
}

func (p *Peer) channelPay(root payword.Word) (ChannelReceipt, error) {
	pc, ok := p.channels.Get(channelKey(root))
	if !ok {
		return ChannelReceipt{}, ErrNoChannel
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.closed {
		return ChannelReceipt{}, ErrChannelClosed
	}
	if pc.opts.TTL > 0 && p.cfg.Clock().Sub(pc.opened) >= pc.opts.TTL {
		if _, err := p.settleChannelLocked(pc, true); err != nil {
			return ChannelReceipt{}, fmt.Errorf("core: settling expired channel: %w", err)
		}
		p.channels.Delete(channelKey(root))
		return ChannelReceipt{}, fmt.Errorf("%w: credit window expired", ErrChannelClosed)
	}

	pay, err := pc.chain.Pay()
	if errors.Is(err, payword.ErrChainExhausted) {
		if _, serr := p.settleChannelLocked(pc, true); serr != nil {
			return ChannelReceipt{}, fmt.Errorf("core: settling exhausted channel: %w", serr)
		}
		p.channels.Delete(channelKey(root))
		return ChannelReceipt{}, fmt.Errorf("%w: chain exhausted", ErrChannelClosed)
	}
	if err != nil {
		return ChannelReceipt{}, fmt.Errorf("core: channel pay: %w", err)
	}

	req := ChannelPayRequest{Payment: pay}
	if pc.opts.Lottery {
		tk, err := payword.IssueTicket(p.suite, pc.keys, string(pc.vendor),
			uint64(pay.Index), pc.opts.WinDivisor, pc.opts.Prize, pc.nonce)
		if err != nil {
			return ChannelReceipt{}, fmt.Errorf("core: issuing lottery ticket: %w", err)
		}
		req.Ticket = tk
	}
	raw, err := p.call(pc.vendor, req)
	if err != nil {
		// The payword is burned but not lost: the next release pays for
		// every skipped index (Vendor.Receive's delta), so a dropped
		// payment self-heals.
		return ChannelReceipt{}, fmt.Errorf("core: channel pay: %w", err)
	}
	pr, ok := raw.(ChannelPayResponse)
	if !ok {
		return ChannelReceipt{}, fmt.Errorf("%w: unexpected channel-pay response %T", ErrBadRequest, raw)
	}
	pc.outstanding = pr.Owed
	if pc.opts.Lottery && len(pr.Nonce) == len(pc.nonce) {
		copy(pc.nonce[:], pr.Nonce)
	}
	rc := ChannelReceipt{Owed: pr.Owed, Won: pr.Won}
	if pc.opts.SettleThreshold > 0 && pc.outstanding >= pc.opts.SettleThreshold {
		if _, err := p.settleChannelLocked(pc, false); err != nil {
			// The payment itself landed; the balance simply stays open
			// for the next settle attempt.
			return rc, fmt.Errorf("core: threshold settle: %w", err)
		}
		rc.Owed = pc.outstanding
	}
	return rc, nil
}

// SettleChannel settles the channel's outstanding balance now — one WhoPay
// purchase issued to the vendor — and keeps the window open. Returns the
// amount settled (zero when the balance was already clean).
func (p *Peer) SettleChannel(root payword.Word) (int64, error) {
	sp := p.instr.Begin("channel-settle")
	n, err := p.settleChannel(root)
	p.instr.End(sp, err)
	return n, err
}

func (p *Peer) settleChannel(root payword.Word) (int64, error) {
	pc, ok := p.channels.Get(channelKey(root))
	if !ok {
		return 0, ErrNoChannel
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.closed {
		return 0, ErrChannelClosed
	}
	return p.settleChannelLocked(pc, false)
}

// CloseChannel settles any outstanding balance and closes the window on
// both ends. Returns the amount settled by the close.
func (p *Peer) CloseChannel(root payword.Word) (int64, error) {
	sp := p.instr.Begin("channel-close")
	n, err := p.closeChannel(root)
	p.instr.End(sp, err)
	return n, err
}

func (p *Peer) closeChannel(root payword.Word) (int64, error) {
	pc, ok := p.channels.Get(channelKey(root))
	if !ok {
		return 0, ErrNoChannel
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.closed {
		return 0, nil
	}
	n, err := p.settleChannelLocked(pc, true)
	if err != nil {
		return 0, err
	}
	p.channels.Delete(channelKey(root))
	return n, nil
}

// settleChannelLocked converts the outstanding balance into one WhoPay
// payment: purchase a coin of exactly that value, issue it to the vendor,
// then present the coin ID in a close message so the vendor credits the
// channel. Caller holds pc.mu.
//
// Crash safety: the settlement coin is remembered in pc.pending from the
// moment it is issued until the vendor acknowledges the close, so a dropped
// close reply is retried with the same coin instead of buying a second one;
// the vendor's settleRecord map makes the replay idempotent.
func (p *Peer) settleChannelLocked(pc *payerChannel, final bool) (int64, error) {
	if pc.pending == "" {
		if pc.outstanding <= 0 && !final {
			return 0, nil
		}
		if pc.outstanding > 0 {
			id, err := p.Purchase(pc.outstanding, false)
			if err != nil {
				return 0, fmt.Errorf("core: buying settlement coin: %w", err)
			}
			if err := p.IssueTo(pc.vendor, id); err != nil {
				// The coin stays self-held and spendable; no value lost.
				return 0, fmt.Errorf("core: issuing settlement coin: %w", err)
			}
			pc.pending = id
		}
	}
	raw, err := p.call(pc.vendor, ChannelCloseRequest{Root: pc.root, CoinID: pc.pending, Final: final})
	if err != nil {
		return 0, fmt.Errorf("core: channel close: %w", err)
	}
	cr, ok := raw.(ChannelCloseResponse)
	if !ok {
		return 0, fmt.Errorf("%w: unexpected channel-close response %T", ErrBadRequest, raw)
	}
	pc.pending = ""
	pc.outstanding -= cr.Settled
	if pc.outstanding < 0 {
		pc.outstanding = 0
	}
	if final {
		pc.closed = true
	}
	return cr.Settled, nil
}

// ChannelBalance reports the payer's view of a channel: the vendor-reported
// unsettled balance and how many unit payments remain on the chain.
func (p *Peer) ChannelBalance(root payword.Word) (owed int64, remaining int, ok bool) {
	pc, found := p.channels.Get(channelKey(root))
	if !found {
		return 0, 0, false
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.outstanding, pc.chain.Remaining(), true
}

// VendorChannelOutstanding reports the vendor's view of a channel's
// unsettled balance (accrued minus settled).
func (p *Peer) VendorChannelOutstanding(root payword.Word) (int64, bool) {
	vc, found := p.vchannels.Get(channelKey(root))
	if !found {
		return 0, false
	}
	vc.mu.Lock()
	defer vc.mu.Unlock()
	return vc.accrued - vc.settled, true
}

// openChannelCount reports how many channels are open on each side — the
// feed for the whopay_channels_open gauges.
func (p *Peer) openChannelCount(vendorSide bool) (n int) {
	if vendorSide {
		p.vchannels.Range(func(_ string, vc *vendorChannel) bool {
			vc.mu.Lock()
			if !vc.closed {
				n++
			}
			vc.mu.Unlock()
			return true
		})
		return n
	}
	p.channels.Range(func(_ string, pc *payerChannel) bool {
		pc.mu.Lock()
		if !pc.closed {
			n++
		}
		pc.mu.Unlock()
		return true
	})
	return n
}

// handleChannelOpen is the vendor side of OpenChannel: verify the
// commitment signature, pin the lottery terms, mint the first ticket nonce.
func (p *Peer) handleChannelOpen(m ChannelOpenRequest) (any, error) {
	if m.Lottery && (m.WinDivisor == 0 || m.Prize == 0) {
		return nil, fmt.Errorf("%w: lottery channel needs WinDivisor and Prize", ErrBadRequest)
	}
	vend, err := payword.NewVendor(p.suite, string(p.cfg.Addr), m.Commitment)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	vc := &vendorChannel{
		vend:       vend,
		payer:      m.Commitment.Payer.Clone(),
		lottery:    m.Lottery,
		winDivisor: m.WinDivisor,
		prize:      m.Prize,
	}
	copy(vc.nonce[:], p.randBytes(len(vc.nonce)))
	if !p.vchannels.Insert(channelKey(m.Commitment.Root), vc) {
		return nil, fmt.Errorf("%w: channel already open for this chain", ErrBadRequest)
	}
	return ChannelOpenResponse{Nonce: vc.nonce[:]}, nil
}

// handleChannelPay is the vendor side of ChannelPay: a hash-walk check via
// payword.Vendor.Receive, plus ticket validation on lottery channels. An
// exact replay of the last accepted payment returns the cached response —
// retries after a dropped reply must not double-accrue.
func (p *Peer) handleChannelPay(m ChannelPayRequest) (any, error) {
	vc, ok := p.vchannels.Get(channelKey(m.Payment.Root))
	if !ok {
		return nil, ErrNoChannel
	}
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if vc.closed {
		return nil, ErrChannelClosed
	}
	if vc.lastSet && m.Payment == vc.lastPay {
		return vc.lastResp, nil
	}

	var won bool
	var payout int
	if vc.lottery {
		if m.Ticket == nil {
			return nil, fmt.Errorf("%w: lottery channel payment missing ticket", ErrBadRequest)
		}
		tk := m.Ticket
		switch {
		case tk.Serial != uint64(m.Payment.Index):
			return nil, fmt.Errorf("%w: ticket serial %d for payment %d", ErrBadRequest, tk.Serial, m.Payment.Index)
		case tk.VendorNonce != vc.nonce:
			return nil, fmt.Errorf("%w: stale ticket nonce", ErrBadRequest)
		case !tk.Payer.Equal(vc.payer):
			return nil, fmt.Errorf("%w: ticket signer is not the channel payer", ErrBadRequest)
		case tk.WinDivisor != vc.winDivisor || tk.Prize != vc.prize:
			return nil, fmt.Errorf("%w: ticket terms diverge from the channel's", ErrBadRequest)
		}
		var err error
		won, payout, err = payword.CheckTicket(p.suite, tk)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
	} else if m.Ticket != nil {
		return nil, fmt.Errorf("%w: unexpected lottery ticket on a payword channel", ErrBadRequest)
	}

	if _, err := vc.vend.Receive(m.Payment); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if vc.lottery {
		if won {
			vc.accrued += int64(payout)
		}
		// Fresh nonce per accepted payment: a ticket can never be
		// re-drawn hoping for a better outcome.
		copy(vc.nonce[:], p.randBytes(len(vc.nonce)))
	} else {
		// Owed is cumulative: delta-crediting would diverge from the
		// chain cursor after a self-healed skip.
		vc.accrued = int64(vc.vend.Owed())
	}
	resp := ChannelPayResponse{Owed: vc.accrued - vc.settled, Won: won, Nonce: vc.nonce[:]}
	vc.lastSet, vc.lastPay, vc.lastResp = true, m.Payment, resp
	return resp, nil
}

// handleChannelClose is the vendor side of settlement: the payer has just
// issued a WhoPay coin to this peer (it already sits in the held wallet)
// and names it here; the vendor credits the channel with the coin's face
// value. The settleRecord map pins each coin to one channel — a replayed
// close is answered idempotently and a coin can never credit two channels.
func (p *Peer) handleChannelClose(m ChannelCloseRequest) (any, error) {
	vc, ok := p.vchannels.Get(channelKey(m.Root))
	if !ok {
		return nil, ErrNoChannel
	}
	vc.mu.Lock()
	defer vc.mu.Unlock()

	var settled int64
	if m.CoinID != "" {
		if rec, seen := p.settleCredits.Get(m.CoinID); seen {
			if rec.root != m.Root {
				return nil, fmt.Errorf("%w: settlement coin already credited another channel", ErrBadRequest)
			}
			settled = rec.amount
		} else {
			hc, held := p.held.Get(m.CoinID)
			if !held {
				return nil, fmt.Errorf("%w: settlement coin not delivered", ErrBadRequest)
			}
			settled = hc.c.Value
			vc.settled += settled
			p.settleCredits.Set(m.CoinID, &settleRecord{root: m.Root, amount: settled})
		}
	}
	if m.Final {
		vc.closed = true
	}
	return ChannelCloseResponse{Settled: settled}, nil
}
