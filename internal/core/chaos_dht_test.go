package core

import (
	"fmt"
	mrand "math/rand"
	"testing"
	"time"

	"whopay/internal/bus/faultbus"
	"whopay/internal/coin"
	"whopay/internal/dht/replica"
	"whopay/internal/wal"
)

// newChaosDHTWorld is newChaosWorld with the replicated, persistent DHT:
// quorum 3/2/2 over three journaled nodes, so a node can be crash-stopped
// mid-storm and recovered from its journal. Sweeps run in the background
// at the replica package default interval.
func newChaosDHTWorld(t *testing.T, seed int64) *chaosWorld {
	t.Helper()
	f := newFixture(t, fixtureOpts{
		detection:      true,
		dhtNodes:       3,
		dhtReplication: &replica.Config{N: 3, W: 2, R: 2},
		dhtPersist:     &wal.Config{Dir: t.TempDir(), Policy: wal.FsyncAlways},
	})
	w := &chaosWorld{
		t:           t,
		seed:        seed,
		f:           f,
		fb:          faultbus.New(f.net, seed),
		rng:         mrand.New(mrand.NewSource(seed)),
		offline:     make(map[int]bool),
		flapped:     make(map[int]bool),
		quarantined: make(map[coin.ID]bool),
		owned:       make([][]coin.ID, chaosPeers),
	}
	f.netAny = w.fb
	for i := 0; i < chaosPeers; i++ {
		w.peers = append(w.peers, f.addPeer(fmt.Sprintf("chaos-dht-%d-%d", seed, i), nil))
	}
	return w
}

// TestChaosDHTNodeKill is the ROADMAP chaos extension for the replication
// subsystem: a DHT replica is crash-stopped in the middle of the transfer
// storm and recovered from its journal mid-storm, under the same fault
// schedule as the headline chaos run. The usual ledger invariants must
// hold (no double spend, no stuck coin), and on top of them the replica
// set must reach digest parity and no peer may ever observe a quorum read
// going backwards in time.
func TestChaosDHTNodeKill(t *testing.T) {
	for _, c := range chaosCases(t, "TestChaosDHTNodeKill", []int64{21, 22}) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			runChaosDHTNodeKill(t, c.seed)
		})
	}
}

func runChaosDHTNodeKill(t *testing.T, seed int64) {
	t.Helper()
	w := newChaosDHTWorld(t, seed)

	for i := range w.peers {
		w.purchase(i)
		w.purchase(i)
		w.issue(i, (i+1)%chaosPeers)
	}

	// Storm, crash a replica, storm on the surviving majority, recover it
	// from the journal, storm again. The kill point is mid-schedule and
	// the victim is seed-chosen, so the whole run replays from the seed.
	victim := w.rng.Intn(3)
	w.chaosPhase()
	if err := w.f.dhtCl.Kill(victim); err != nil {
		t.Fatalf("kill dht node %d: %v", victim, err)
	}
	w.chaosPhase()
	if err := w.f.dhtCl.Restart(victim); err != nil {
		t.Fatalf("restart dht node %d: %v", victim, err)
	}
	w.chaosPhase()
	w.recoveryPhase()

	sum := w.summary()
	assertChaosInvariants(t, seed, w, sum)

	fail := func(format string, args ...any) {
		t.Helper()
		t.Errorf("[chaos seed %d] "+format+
			" — reproduce alone with: WHOPAY_CHAOS_SEED=%d go test -run 'TestChaosDHTNodeKill/env' ./internal/core/",
			append(append([]any{seed}, args...), seed)...)
	}
	if !w.f.dhtCl.WaitConverged(10 * time.Second) {
		fail("anti-entropy never converged the restarted replica: %d slots diverged", w.f.dhtCl.Divergence())
	}
	var stale uint64
	for _, p := range w.peers {
		_, _, s, _ := p.DHTLeaseStats()
		stale += s
	}
	if stale > 0 {
		fail("%d stale quorum reads observed (a read went backwards past a committed write)", stale)
	}
}
