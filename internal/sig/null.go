package sig

import (
	"crypto/sha256"
	"encoding/binary"
	"sync/atomic"
)

// Null is a non-cryptographic Scheme for simulation. The load study in the
// paper (Section 6) counts operations rather than exercising real crypto, so
// the simulator runs the real protocol code under Null and attributes costs
// via Counter. Keys are process-unique (an atomic counter plus a per-instance
// tag), public and private halves are identical, and "signatures" are SHA-256
// tags that Verify recomputes. Null provides NO security; it exists so that
// protocol state machines behave identically — including signature
// mismatches on tampered messages — at simulation speed.
type Null struct {
	tag uint32
}

var _ Scheme = (*Null)(nil)

// _nullSeq makes every Null key unique within the process even across
// scheme instances.
var _nullSeq atomic.Uint64

// NewNull returns a Null scheme whose keys carry the given instance tag.
func NewNull(tag uint32) *Null { return &Null{tag: tag} }

const nullKeyLen = 12

// Name implements Scheme.
func (*Null) Name() string { return "null" }

// GenerateKey implements Scheme. Public and private keys are the same
// 12-byte value: 4-byte instance tag || 8-byte process-unique counter.
func (n *Null) GenerateKey() (KeyPair, error) {
	buf := make([]byte, nullKeyLen)
	binary.BigEndian.PutUint32(buf[0:4], n.tag)
	binary.BigEndian.PutUint64(buf[4:12], _nullSeq.Add(1))
	return KeyPair{Public: buf, Private: buf}, nil
}

// Sign implements Scheme.
func (n *Null) Sign(priv PrivateKey, msg []byte) ([]byte, error) {
	if len(priv) != nullKeyLen {
		return nil, ErrBadKey
	}
	return nullTag(priv, msg), nil
}

// Verify implements Scheme.
func (n *Null) Verify(pub PublicKey, msg []byte, sigBytes []byte) error {
	if len(pub) != nullKeyLen {
		return ErrBadKey
	}
	want := nullTag([]byte(pub), msg)
	if len(sigBytes) != len(want) {
		return ErrBadSignature
	}
	for i := range want {
		if sigBytes[i] != want[i] {
			return ErrBadSignature
		}
	}
	return nil
}

func nullTag(key, msg []byte) []byte {
	h := sha256.New()
	h.Write(key)
	h.Write(msg)
	return h.Sum(nil)[:16]
}
