package sig

import (
	"sync"
	"sync/atomic"
)

// VerifyJob is one signature check in a batch: did the holder of Pub sign
// Msg with Sig?
type VerifyJob struct {
	Pub PublicKey
	Msg []byte
	Sig []byte
}

// BatchVerifier is implemented by schemes that can check many signatures
// more cheaply than a sequential loop — by fanning out across a worker pool,
// sharing decoded keys, or consulting a memo. VerifyBatch returns one error
// slot per job, index-aligned: errs[i] is nil iff jobs[i] verified.
type BatchVerifier interface {
	VerifyBatch(jobs []VerifyJob) []error
}

// KeyDecoder is implemented by schemes whose Verify pays a per-call key
// decoding cost that can be hoisted and cached. DecodePublic parses pub once
// into the scheme's native form; VerifyDecoded checks a signature against
// that parsed key, skipping the decode. The decoded form must be safe for
// concurrent use and derived purely from the key bytes.
type KeyDecoder interface {
	DecodePublic(pub PublicKey) (any, error)
	VerifyDecoded(key any, msg, sigBytes []byte) error
}

// VerifyBatch checks every job against scheme. A scheme that implements
// BatchVerifier (such as Cached) handles the batch itself; anything else is
// checked sequentially. The result is index-aligned with jobs.
func VerifyBatch(scheme Scheme, jobs []VerifyJob) []error {
	if bv, ok := scheme.(BatchVerifier); ok {
		return bv.VerifyBatch(jobs)
	}
	errs := make([]error, len(jobs))
	for i, j := range jobs {
		errs[i] = scheme.Verify(j.Pub, j.Msg, j.Sig)
	}
	return errs
}

// VerifyBatch verifies every job and records one signature verification per
// job — batching is an execution strategy, not an accounting change, so the
// recorded micro-op counts are identical to a sequential loop of
// Suite.Verify calls.
func (s Suite) VerifyBatch(jobs []VerifyJob) []error {
	if s.Rec != nil {
		for range jobs {
			s.Rec.RecordVerify()
		}
	}
	return VerifyBatch(s.Scheme, jobs)
}

// fanOut runs verify over jobs[i] for every i using up to workers
// goroutines (including the caller), claiming indices by atomic stride so no
// job is checked twice and stragglers cannot stall a fixed partition.
func fanOut(verify func(VerifyJob) error, jobs []VerifyJob, workers int, errs []error) {
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var next atomic.Int64
	run := func() {
		for {
			i := int(next.Add(1) - 1)
			if i >= len(jobs) {
				return
			}
			errs[i] = verify(jobs[i])
		}
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 0; w < workers-1; w++ {
		go func() {
			defer wg.Done()
			run()
		}()
	}
	run()
	wg.Wait()
}
