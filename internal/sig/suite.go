package sig

import "sync/atomic"

// Recorder receives notifications for each cryptographic micro-operation.
// The load model of the paper (Table 3) weighs exactly these five
// micro-operations; entities in the simulator carry a Recorder so every
// operation is attributed to whoever performed it.
type Recorder interface {
	RecordKeyGen()
	RecordSign()
	RecordVerify()
	RecordGroupSign()
	RecordGroupVerify()
}

// Counter is a thread-safe Recorder that tallies micro-operations.
type Counter struct {
	keyGens       atomic.Int64
	signs         atomic.Int64
	verifies      atomic.Int64
	groupSigns    atomic.Int64
	groupVerifies atomic.Int64
}

var _ Recorder = (*Counter)(nil)

// RecordKeyGen implements Recorder.
func (c *Counter) RecordKeyGen() { c.keyGens.Add(1) }

// RecordSign implements Recorder.
func (c *Counter) RecordSign() { c.signs.Add(1) }

// RecordVerify implements Recorder.
func (c *Counter) RecordVerify() { c.verifies.Add(1) }

// RecordGroupSign implements Recorder.
func (c *Counter) RecordGroupSign() { c.groupSigns.Add(1) }

// RecordGroupVerify implements Recorder.
func (c *Counter) RecordGroupVerify() { c.groupVerifies.Add(1) }

// Snapshot is an immutable copy of a Counter's tallies.
type Snapshot struct {
	KeyGens       int64
	Signs         int64
	Verifies      int64
	GroupSigns    int64
	GroupVerifies int64
}

// Snapshot returns the current tallies.
func (c *Counter) Snapshot() Snapshot {
	return Snapshot{
		KeyGens:       c.keyGens.Load(),
		Signs:         c.signs.Load(),
		Verifies:      c.verifies.Load(),
		GroupSigns:    c.groupSigns.Load(),
		GroupVerifies: c.groupVerifies.Load(),
	}
}

// Add returns the element-wise sum of two snapshots.
func (s Snapshot) Add(other Snapshot) Snapshot {
	return Snapshot{
		KeyGens:       s.KeyGens + other.KeyGens,
		Signs:         s.Signs + other.Signs,
		Verifies:      s.Verifies + other.Verifies,
		GroupSigns:    s.GroupSigns + other.GroupSigns,
		GroupVerifies: s.GroupVerifies + other.GroupVerifies,
	}
}

// Suite bundles a Scheme with an optional Recorder. It is the per-entity
// crypto handle: all protocol code signs and verifies through a Suite so the
// operation is both performed and attributed in one step. A zero Recorder
// (nil) disables accounting.
type Suite struct {
	Scheme Scheme
	Rec    Recorder
}

// NewSuite returns a Suite over scheme with recording to rec (rec may be
// nil).
func NewSuite(scheme Scheme, rec Recorder) Suite {
	return Suite{Scheme: scheme, Rec: rec}
}

// GenerateKey creates a key pair and records the key generation.
func (s Suite) GenerateKey() (KeyPair, error) {
	if s.Rec != nil {
		s.Rec.RecordKeyGen()
	}
	return s.Scheme.GenerateKey()
}

// Sign signs msg and records a signature generation.
func (s Suite) Sign(priv PrivateKey, msg []byte) ([]byte, error) {
	if s.Rec != nil {
		s.Rec.RecordSign()
	}
	return s.Scheme.Sign(priv, msg)
}

// Verify verifies sig over msg and records a signature verification.
func (s Suite) Verify(pub PublicKey, msg []byte, sigBytes []byte) error {
	if s.Rec != nil {
		s.Rec.RecordVerify()
	}
	return s.Scheme.Verify(pub, msg, sigBytes)
}
