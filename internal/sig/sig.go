// Package sig provides the digital-signature substrate used throughout
// WhoPay. The paper benchmarks DSA-1024 (Table 2); we provide ECDSA P-256 as
// the modern stand-in, Ed25519 as an alternative, and a deterministic null
// scheme used by the load simulator where cryptographic strength is
// irrelevant but operation *counts* matter.
//
// Keys and signatures are opaque byte slices so they can be embedded in
// protocol messages, used as map keys (via string conversion), and shipped
// over any transport without scheme-specific marshaling at call sites.
package sig

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
)

// Common errors returned by Scheme implementations.
var (
	// ErrBadSignature is returned by Verify when the signature does not
	// validate against the message and public key.
	ErrBadSignature = errors.New("sig: invalid signature")
	// ErrBadKey is returned when a key cannot be decoded for the scheme.
	ErrBadKey = errors.New("sig: malformed key")
)

// PublicKey is an encoded public key. The encoding is scheme-specific but
// stable, so byte equality implies key equality within a scheme.
type PublicKey []byte

// PrivateKey is an encoded private key.
type PrivateKey []byte

// KeyPair bundles a public key with its private counterpart.
type KeyPair struct {
	Public  PublicKey
	Private PrivateKey
}

// Fingerprint returns the SHA-256 digest of the public key. It is the
// canonical short identifier for key-valued objects (coins are public keys,
// so coin IDs are fingerprints of coin keys).
func (pk PublicKey) Fingerprint() [32]byte {
	return sha256.Sum256(pk)
}

// String renders a short hex prefix of the fingerprint, for logs and tests.
func (pk PublicKey) String() string {
	fp := pk.Fingerprint()
	return hex.EncodeToString(fp[:6])
}

// Equal reports whether two public keys have identical encodings.
func (pk PublicKey) Equal(other PublicKey) bool {
	return bytes.Equal(pk, other)
}

// Clone returns an independent copy of the key so callers can retain it
// without aliasing a buffer they do not own.
func (pk PublicKey) Clone() PublicKey {
	if pk == nil {
		return nil
	}
	out := make(PublicKey, len(pk))
	copy(out, pk)
	return out
}

// Scheme is a digital signature scheme. Implementations must be safe for
// concurrent use.
type Scheme interface {
	// Name identifies the scheme (e.g. "ecdsa-p256").
	Name() string
	// GenerateKey creates a fresh key pair.
	GenerateKey() (KeyPair, error)
	// Sign signs msg with the private key.
	Sign(priv PrivateKey, msg []byte) ([]byte, error)
	// Verify checks sig over msg against pub. It returns nil if the
	// signature is valid and ErrBadSignature (or a decoding error)
	// otherwise.
	Verify(pub PublicKey, msg []byte, sigBytes []byte) error
}
